package fasttrack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fasttrack/internal/obs"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// This file implements the Monitor's lock-striped concurrent ingestion
// path. The locking discipline (see also internal/rr/stripe.go):
//
//   - Accesses (Read/Write) take the monitor's RWMutex in read mode plus
//     the lock of the accessed variable's stripe, so accesses on
//     different stripes run in parallel. This is legal because a
//     FastTrack access handler reads only the accessing thread's vector
//     clock and mutates only that variable's shadow state.
//   - Synchronization events (acquire, release, fork, join, volatile
//     accesses, barriers, wait) mutate cross-thread clocks, so they take
//     the RWMutex in write mode, excluding every stripe.
//   - An access by a thread the detector has not materialized yet also
//     takes the write lock (the thread table must grow); the ensured
//     watermark below makes that a once-per-thread slow path.
//
// What ordering survives: per stripe, accesses are checked in lock
// acquisition order, and every access observes all sync events recorded
// before it. The interleaving of accesses on different stripes is
// unspecified — exactly the freedom the algorithm's commutativity makes
// irrelevant to the reported race set.

// stripeLock is one stripe's lock plus its stripe-confined bookkeeping;
// padded so neighboring stripes do not share a cache line.
type stripeLock struct {
	sync.Mutex
	accesses  int64 // accesses delivered under this stripe's lock
	contended int64 // lock acquisitions that had to wait
	seen      int   // race-drain cursor for WithRaceHandler
	_         [32]byte
}

// shardMetrics caches the sharded path's obs handles (monitor.sharded.*
// namespace).
type shardMetrics struct {
	slow     *obs.Counter // accesses through the full-lock slow path
	inflight *obs.Gauge   // accesses currently inside the striped section
	peak     *obs.Gauge   // high-water mark of inflight
	cur      atomic.Int64 // backing count for inflight/peak
}

// WithShards enables lock-striped concurrent ingestion with n stripes.
// n <= 1 (the default) keeps the serial path: one lock, arrival-order
// delivery, race callbacks in report order. With n > 1, accesses to
// variables on different stripes are checked in parallel by the calling
// goroutines; the reported race set (variable, kind) is exactly the
// serial one, but report indices reflect a particular legal interleaving
// and WithRaceHandler callbacks are ordered only within a stripe.
//
// Sharding requires a detector that implements ShardedTool (FastTrack
// does), no stream validation (WithValidation must stay PolicyOff — the
// validator is inherently sequential), and no memory budget (its coarse
// fallback would remap variables across stripes). NewMonitor panics on
// any of these conflicts: they are configuration errors.
func WithShards(n int) MonitorOption {
	return func(c *monitorConfig) { c.shards = n }
}

// enableSharding wires the striped path up at NewMonitor time.
func (m *Monitor) enableSharding(tool Tool, cfg monitorConfig) {
	st, ok := tool.(rr.ShardedTool)
	if !ok {
		panic(fmt.Sprintf("fasttrack: WithShards(%d): tool %q does not support sharded ingestion",
			cfg.shards, tool.Name()))
	}
	if cfg.policy != PolicyOff {
		panic("fasttrack: WithShards is incompatible with WithValidation (the stream validator is sequential)")
	}
	if cfg.hints.MemoryBudget > 0 {
		panic("fasttrack: WithShards is incompatible with a memory budget")
	}
	st.EnableSharding(cfg.shards)
	m.disp.SetConcurrent()
	m.sharded = st
	m.stripes = make([]stripeLock, cfg.shards)
	m.sm = &shardMetrics{
		slow:     m.reg.Counter("monitor.sharded.slowPath"),
		inflight: m.reg.Gauge("monitor.sharded.inflight"),
		peak:     m.reg.Gauge("monitor.sharded.maxInflight"),
	}
	m.reg.Gauge("monitor.sharded.shards").Set(int64(cfg.shards))
}

// access delivers one Read/Write event on the striped fast path, or on
// the full-lock slow path when the accessing thread is not yet known to
// the detector.
func (m *Monitor) access(e trace.Event) error {
	// The watermark only grows, and thread states are never moved once
	// materialized, so a stale read here errs toward the slow path only.
	if e.Tid < 0 || e.Tid >= m.ensured.Load() {
		return m.slowAccess(e)
	}
	m.mu.RLock()
	// The mutable sharding state (disp, stripes) is released by Close;
	// it may only be touched after the closed check under the lock.
	if m.closed {
		m.mu.RUnlock()
		m.rejected.Add(1)
		return ErrMonitorClosed
	}
	s := rr.StripeOf(m.disp.MapVar(e.Target), len(m.stripes))

	// The parallelism gauges are sampled (~1/64 of accesses, decided by a
	// per-call predicate so the increment and decrement pair up): updating
	// a shared atomic on every access would reintroduce exactly the
	// cross-core cache-line traffic striping exists to avoid.
	sampled := e.Target&63 == 0
	if sampled {
		cur := m.sm.cur.Add(1)
		m.sm.inflight.Set(cur)
		m.sm.peak.Max(cur)
	}

	sl := &m.stripes[s]
	if !sl.TryLock() {
		sl.Lock()
		sl.contended++
	}
	sl.accesses++
	m.disp.Event(e)
	if m.onRace != nil {
		m.drainStripe(s, sl)
	}
	sl.Unlock()
	m.mu.RUnlock()

	if sampled {
		m.sm.inflight.Set(m.sm.cur.Add(-1))
	}
	return nil
}

// slowAccess delivers an access under full exclusion so the detector may
// materialize the accessing thread's state, then advances the watermark.
func (m *Monitor) slowAccess(e trace.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejected.Add(1)
		return ErrMonitorClosed
	}
	m.sm.slow.Inc()
	m.disp.Event(e)
	m.ensured.Store(int32(m.sharded.ThreadsMaterialized()))
	m.disp.SyncObs()
	if m.onRace != nil {
		s := rr.StripeOf(m.disp.MapVar(e.Target), len(m.stripes))
		m.drainStripe(s, &m.stripes[s])
	}
	return nil
}

// syncEvent delivers a synchronization event under full exclusion — it
// mutates thread/lock clocks that every stripe's access path reads.
func (m *Monitor) syncEvent(e trace.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejected.Add(1)
		return ErrMonitorClosed
	}
	m.disp.Event(e)
	// Fork/join/barrier (and any first event of a tid) can materialize
	// threads; publish the new watermark so their later accesses take
	// the fast path.
	m.ensured.Store(int32(m.sharded.ThreadsMaterialized()))
	// The striped access path skips per-event registry updates; bring
	// the live rr.* counters back in step while we hold full exclusion.
	m.disp.SyncObs()
	return nil
}

// drainStripe fires the race callback for stripe s's new warnings.
// Caller holds stripe lock s or the full write lock; sl.seen is guarded
// by the same.
func (m *Monitor) drainStripe(s int, sl *stripeLock) {
	races := m.sharded.StripeRaces(s)
	for ; sl.seen < len(races); sl.seen++ {
		m.onRace(races[sl.seen])
	}
}

// publishShardMetricsLocked copies the stripe-confined tallies into the
// registry. Caller holds the full write lock (which orders it after all
// stripe-locked updates).
func (m *Monitor) publishShardMetricsLocked() {
	if m.sharded == nil {
		return
	}
	m.disp.SyncObs()
	var accesses, contended int64
	for i := range m.stripes {
		accesses += m.stripes[i].accesses
		contended += m.stripes[i].contended
	}
	m.reg.Gauge("monitor.sharded.stripedAccesses").Set(accesses)
	m.reg.Gauge("monitor.sharded.contended").Set(contended)
}

// Shards returns the number of ingestion stripes (1 in serial mode).
// It answers from the immutable configuration so it stays correct (and
// lock-free) after Close releases the stripe state.
func (m *Monitor) Shards() int {
	if !m.shardedMode {
		return 1
	}
	return m.cfg.shards
}
