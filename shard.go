package fasttrack

import (
	"fmt"
	"sync"

	"fasttrack/internal/obs"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// This file implements the Monitor's lock-striped concurrent ingestion
// path. The locking discipline (see also internal/rr/stripe.go):
//
//   - Accesses (Read/Write) take the monitor's RWMutex in read mode plus
//     the lock of the accessed variable's stripe, so accesses on
//     different stripes run in parallel. This is legal because a
//     FastTrack access handler reads only the accessing thread's vector
//     clock and mutates only that variable's shadow state.
//   - Synchronization events (acquire, release, fork, join, volatile
//     accesses, barriers, wait) mutate cross-thread clocks, so they take
//     the RWMutex in write mode, excluding every stripe.
//   - An access by a thread the detector has not materialized yet also
//     takes the write lock (the thread table must grow); the ensured
//     watermark below makes that a once-per-thread slow path.
//
// What ordering survives: per stripe, accesses are checked in lock
// acquisition order, and every access observes all sync events recorded
// before it. The interleaving of accesses on different stripes is
// unspecified — exactly the freedom the algorithm's commutativity makes
// irrelevant to the reported race set.

// stripeLock is one stripe's lock plus its stripe-confined bookkeeping;
// padded so neighboring stripes do not share a cache line.
type stripeLock struct {
	sync.Mutex
	accesses  int64 // accesses delivered under this stripe's lock
	contended int64 // lock acquisitions that had to wait
	seen      int   // race-drain cursor for WithRaceHandler
	_         [32]byte
}

// shardMetrics caches the sharded path's obs handles (monitor.sharded.*
// namespace).
type shardMetrics struct {
	slow     *obs.Counter // accesses through the full-lock slow path
	inflight *obs.Gauge   // accesses currently inside the striped section
	peak     *obs.Gauge   // high-water mark of inflight
}

// WithShards enables lock-striped concurrent ingestion with n stripes.
// n <= 1 (the default) keeps the serial path: one lock, arrival-order
// delivery, race callbacks in report order. With n > 1, accesses to
// variables on different stripes are checked in parallel by the calling
// goroutines; the reported race set (variable, kind) is exactly the
// serial one, but report indices reflect a particular legal interleaving
// and WithRaceHandler callbacks are ordered only within a stripe.
//
// Sharding requires a detector that implements ShardedTool (FastTrack
// does), no stream validation (WithValidation must stay PolicyOff — the
// validator is inherently sequential), and no memory budget (its coarse
// fallback would remap variables across stripes). NewMonitor panics on
// any of these conflicts: they are configuration errors.
func WithShards(n int) MonitorOption {
	return func(c *monitorConfig) { c.shards = n }
}

// enableSharding wires the striped path up at NewMonitor time.
func (m *Monitor) enableSharding(tool Tool, cfg monitorConfig) {
	st, ok := tool.(rr.ShardedTool)
	if !ok {
		panic(fmt.Sprintf("fasttrack: WithShards(%d): tool %q does not support sharded ingestion",
			cfg.shards, tool.Name()))
	}
	if cfg.policy != PolicyOff {
		panic("fasttrack: WithShards is incompatible with WithValidation (the stream validator is sequential)")
	}
	if cfg.hints.MemoryBudget > 0 {
		panic("fasttrack: WithShards is incompatible with a memory budget")
	}
	st.EnableSharding(cfg.shards)
	m.disp.SetConcurrent()
	m.sharded = st
	m.stripes = make([]stripeLock, cfg.shards)
	m.sm = &shardMetrics{
		slow:     m.reg.Counter("monitor.sharded.slowPath"),
		inflight: m.reg.Gauge("monitor.sharded.inflight"),
		peak:     m.reg.Gauge("monitor.sharded.maxInflight"),
	}
	m.reg.Gauge("monitor.sharded.shards").Set(int64(cfg.shards))
}

// access delivers one Read/Write event on the striped fast path, or on
// the full-lock slow path when the accessing thread is not yet known to
// the detector.
func (m *Monitor) access(e trace.Event) error {
	// The watermark only grows, and thread states are never moved once
	// materialized, so a stale read here errs toward the slow path only.
	if e.Tid < 0 || e.Tid >= m.ensured.Load() {
		return m.slowAccess(e)
	}
	m.mu.RLock()
	// The mutable sharding state (disp, stripes) is released by Close;
	// it may only be touched after the closed check under the lock.
	if m.closed {
		m.mu.RUnlock()
		m.rejected.Add(1)
		return ErrMonitorClosed
	}
	s := rr.StripeOf(m.disp.MapVar(e.Target), len(m.stripes))

	// The parallelism gauges are sampled (~1/64 of accesses, decided by a
	// per-call predicate so the increment and decrement pair up): updating
	// a shared atomic on every access would reintroduce exactly the
	// cross-core cache-line traffic striping exists to avoid. The gauge's
	// own atomic is the single source of truth — each sampled access adds
	// a delta on entry and subtracts it on exit, so concurrent samples
	// cannot interleave a stale Set over a fresher count.
	sampled := e.Target&63 == 0
	if sampled {
		m.sm.peak.Max(m.sm.inflight.Add(1))
	}

	sl := &m.stripes[s]
	if !sl.TryLock() {
		sl.Lock()
		sl.contended++
	}
	sl.accesses++
	m.disp.Event(e)
	if m.onRace != nil {
		m.drainStripe(s, sl)
	}
	sl.Unlock()
	m.mu.RUnlock()

	if sampled {
		m.sm.inflight.Add(-1)
	}
	return nil
}

// slowAccess delivers an access under full exclusion so the detector may
// materialize the accessing thread's state, then advances the watermark.
func (m *Monitor) slowAccess(e trace.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejected.Add(1)
		return ErrMonitorClosed
	}
	m.sm.slow.Inc()
	m.disp.Event(e)
	m.ensured.Store(int32(m.sharded.ThreadsMaterialized()))
	m.disp.SyncObs()
	if m.onRace != nil {
		s := rr.StripeOf(m.disp.MapVar(e.Target), len(m.stripes))
		m.drainStripe(s, &m.stripes[s])
	}
	return nil
}

// syncEvent delivers a synchronization event under full exclusion — it
// mutates thread/lock clocks that every stripe's access path reads.
func (m *Monitor) syncEvent(e trace.Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejected.Add(1)
		return ErrMonitorClosed
	}
	m.disp.Event(e)
	// Fork/join/barrier (and any first event of a tid) can materialize
	// threads; publish the new watermark so their later accesses take
	// the fast path.
	m.ensured.Store(int32(m.sharded.ThreadsMaterialized()))
	// The striped access path skips per-event registry updates; bring
	// the live rr.* counters back in step while we hold full exclusion.
	m.disp.SyncObs()
	return nil
}

// ingestBatchSharded is IngestBatch's striped implementation. It walks
// the batch as an alternation of access runs and sync events: each
// maximal run of consecutive Read/Write events is delivered through
// accessRun (one RWMutex.RLock, one lock acquisition per touched
// stripe), and each sync event flushes through syncEvent as a
// serialization barrier, exactly where it sat in the batch. A batch is
// therefore cut only at run/sync boundaries when Close intervenes, and
// the accepted prefix count n is exact.
func (m *Monitor) ingestBatchSharded(events []trace.Event) (int, error) {
	n := 0
	for n < len(events) {
		if k := events[n].Kind; k == trace.Read || k == trace.Write {
			j := n + 1
			for j < len(events) {
				if k := events[j].Kind; k != trace.Read && k != trace.Write {
					break
				}
				j++
			}
			accepted, err := m.accessRun(events[n:j])
			n += accepted
			if err != nil {
				// The failing helper counted one rejection; account for
				// the rest of the batch so accepted + Rejected adds up
				// to the number of events offered.
				m.rejected.Add(int64(len(events) - n - 1))
				return n, err
			}
		} else {
			if err := m.syncEvent(events[n]); err != nil {
				m.rejected.Add(int64(len(events) - n - 1))
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// batchPartition is the reusable scratch state for partitioning one
// access run by stripe: a stable counting sort over stripe indices, so
// same-variable accesses keep their relative order inside a stripe's
// segment.
type batchPartition struct {
	stripe []int32       // stripe of run[i]
	start  []int         // segment start offsets, one past the end at [nStripes]
	cursor []int         // scatter write cursors (start copy, consumed)
	events []trace.Event // run scattered into per-stripe segments
}

func (p *batchPartition) grow(nEvents, nStripes int) {
	if cap(p.stripe) < nEvents {
		p.stripe = make([]int32, nEvents)
		p.events = make([]trace.Event, nEvents)
	}
	p.stripe = p.stripe[:nEvents]
	p.events = p.events[:nEvents]
	if cap(p.start) < nStripes+1 {
		p.start = make([]int, nStripes+1)
		p.cursor = make([]int, nStripes)
	}
	p.start = p.start[:nStripes+1]
	p.cursor = p.cursor[:nStripes]
	clear(p.cursor)
}

var batchScratch = sync.Pool{New: func() any { return new(batchPartition) }}

// accessRun delivers one run of consecutive Read/Write events on the
// striped path: partition by stripe, then one lock acquisition (and one
// race-callback drain) per touched stripe instead of per event. A run
// containing an access by a thread the detector has not materialized
// falls back to slowRun under full exclusion. Runs are all-or-nothing:
// the only failure point is the closed check before any delivery.
func (m *Monitor) accessRun(run []trace.Event) (int, error) {
	w := m.ensured.Load()
	for i := range run {
		if run[i].Tid < 0 || run[i].Tid >= w {
			return m.slowRun(run)
		}
	}
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		m.rejected.Add(1)
		return 0, ErrMonitorClosed
	}

	// Sample the parallelism gauges once per run (see access); batching
	// already amortizes the cost, but keeping the sampled discipline
	// keeps the gauge's meaning comparable across both paths.
	sampled := run[0].Target&63 == 0
	if sampled {
		m.sm.peak.Max(m.sm.inflight.Add(1))
	}

	nStripes := len(m.stripes)
	p := batchScratch.Get().(*batchPartition)
	p.grow(len(run), nStripes)
	same := true
	for i := range run {
		s := rr.StripeOf(m.disp.MapVar(run[i].Target), nStripes)
		p.stripe[i] = int32(s)
		p.cursor[s]++ // counts during this pass; rewritten to cursors below
		if s != int(p.stripe[0]) {
			same = false
		}
	}

	if same {
		// Common fast case (small batches, hot variables): the whole run
		// lands on one stripe, so deliver it in place without scattering.
		m.deliverSegment(int(p.stripe[0]), run)
	} else {
		sum := 0
		for s := 0; s < nStripes; s++ {
			c := p.cursor[s]
			p.start[s] = sum
			p.cursor[s] = sum
			sum += c
		}
		p.start[nStripes] = len(run)
		for i := range run {
			s := p.stripe[i]
			p.events[p.cursor[s]] = run[i]
			p.cursor[s]++
		}
		for s := 0; s < nStripes; s++ {
			lo, hi := p.start[s], p.start[s+1]
			if lo == hi {
				continue
			}
			m.deliverSegment(s, p.events[lo:hi])
		}
		// Drop event payload references (barrier Tids slices and the
		// like) so the pooled scratch does not pin them.
		clear(p.events)
	}
	batchScratch.Put(p)
	m.mu.RUnlock()

	if sampled {
		m.sm.inflight.Add(-1)
	}
	return len(run), nil
}

// deliverSegment feeds one stripe's segment of an access run under that
// stripe's lock. Caller holds the RWMutex in read mode.
func (m *Monitor) deliverSegment(s int, seg []trace.Event) {
	sl := &m.stripes[s]
	if !sl.TryLock() {
		sl.Lock()
		sl.contended++
	}
	sl.accesses += int64(len(seg))
	m.disp.AccessBatch(seg)
	if m.onRace != nil {
		m.drainStripe(s, sl)
	}
	sl.Unlock()
}

// slowRun delivers a whole access run under full exclusion so the
// detector may materialize any unseen threads, then advances the
// watermark — the batch analogue of slowAccess.
func (m *Monitor) slowRun(run []trace.Event) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejected.Add(1)
		return 0, ErrMonitorClosed
	}
	m.sm.slow.Add(int64(len(run)))
	m.disp.EventBatch(run)
	m.ensured.Store(int32(m.sharded.ThreadsMaterialized()))
	m.disp.SyncObs()
	if m.onRace != nil {
		for s := range m.stripes {
			m.drainStripe(s, &m.stripes[s])
		}
	}
	return len(run), nil
}

// drainStripe fires the race callback for stripe s's new warnings.
// Caller holds stripe lock s or the full write lock; sl.seen is guarded
// by the same.
func (m *Monitor) drainStripe(s int, sl *stripeLock) {
	races := m.sharded.StripeRaces(s)
	for ; sl.seen < len(races); sl.seen++ {
		m.onRace(races[sl.seen])
	}
}

// publishShardMetricsLocked copies the stripe-confined tallies into the
// registry. Caller holds the full write lock (which orders it after all
// stripe-locked updates).
func (m *Monitor) publishShardMetricsLocked() {
	if m.sharded == nil {
		return
	}
	m.disp.SyncObs()
	var accesses, contended int64
	for i := range m.stripes {
		accesses += m.stripes[i].accesses
		contended += m.stripes[i].contended
	}
	m.reg.Gauge("monitor.sharded.stripedAccesses").Set(accesses)
	m.reg.Gauge("monitor.sharded.contended").Set(contended)
}

// resetShardMetricsLocked zeroes the monitor.sharded.* registry state
// that outlives the stripes themselves; without this a post-Reset
// Metrics() would report the previous run's striped work as current.
// Caller holds the full write lock.
func (m *Monitor) resetShardMetricsLocked() {
	m.sm.inflight.Set(0)
	m.sm.peak.Set(0)
	m.reg.Gauge("monitor.sharded.stripedAccesses").Set(0)
	m.reg.Gauge("monitor.sharded.contended").Set(0)
}

// Shards returns the number of ingestion stripes (1 in serial mode).
// It answers from the immutable configuration so it stays correct (and
// lock-free) after Close releases the stripe state.
func (m *Monitor) Shards() int {
	if !m.shardedMode {
		return 1
	}
	return m.cfg.shards
}
