package fasttrack

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Thread is an ergonomic handle for annotating one goroutine's
// operations: it carries the thread id so call sites don't thread it by
// hand, and Go/Join manage fork/join bookkeeping (including id
// assignment) for structured concurrency. Obtain the root handle with
// Monitor.MainThread; spawn children with Thread.Go.
//
// A Thread must only be used from the goroutine it belongs to (the
// Monitor itself remains safe for concurrent use; the handle's fields
// are immutable after creation, so this is a usage convention, not a
// data-safety requirement).
type Thread struct {
	m   *Monitor
	id  int32
	par *Thread
	wg  sync.WaitGroup // children spawned via Go

	// children tracks live Go-spawned children so Join can record a join
	// event for each one; joined marks a child whose join was already
	// recorded (by JoinOne). Both are touched only by the owning
	// goroutine, per the usage convention above. done is closed when the
	// child's function returns, so JoinOne can wait on one child.
	children []*Thread
	joined   bool
	done     chan struct{}
}

// threadIDs allocates monitor-wide goroutine ids for the handle API.
type threadIDs struct {
	next atomic.Int32
}

// MainThread returns the handle for thread 0, creating the allocator on
// first use. Mixing the handle API with explicit-id calls on the same
// monitor is allowed as long as explicit ids stay clear of the ids the
// allocator hands out (it counts up from 0).
func (m *Monitor) MainThread() *Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tids == nil {
		m.tids = &threadIDs{}
		m.tids.next.Store(1) // 0 is the main thread
	}
	return &Thread{m: m, id: 0}
}

// ID returns the underlying thread id.
func (t *Thread) ID() int32 { return t.id }

// Go records a fork, runs fn in a new goroutine with a fresh child
// handle, and returns the child handle so the parent can Join it. The
// fork event is recorded before the goroutine starts, as required.
func (t *Thread) Go(fn func(child *Thread)) *Thread {
	if t.m.tids == nil {
		panic("fasttrack: use Monitor.MainThread to initialize the handle API")
	}
	child := &Thread{m: t.m, id: t.m.tids.next.Add(1) - 1, par: t, done: make(chan struct{})}
	t.m.Fork(t.id, child.id)
	t.children = append(t.children, child)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer close(child.done)
		fn(child)
	}()
	return child
}

// Join waits for every goroutine this thread spawned via Go and records
// a join event for each child it waited on (skipping children already
// joined via JoinOne). Passing child handles is optional and only
// validates that this thread spawned them; the join events are recorded
// for all children regardless — waiting without recording the edges
// would leave the children's accesses racing with the parent's.
// For joining one specific child use JoinOne.
func (t *Thread) Join(children ...*Thread) {
	for _, c := range children {
		if c.par != t {
			panic(fmt.Sprintf("fasttrack: thread %d did not spawn thread %d", t.id, c.id))
		}
	}
	t.wg.Wait()
	for _, c := range t.children {
		if !c.joined {
			c.joined = true
			t.m.Join(t.id, c.id)
		}
	}
	t.children = nil
}

// JoinOne waits for the one given child (which must have been spawned by
// this thread via Go) and records its join, leaving this thread's other
// children running. A later Join still waits for the rest and does not
// re-record this child's join.
func (t *Thread) JoinOne(c *Thread) {
	if c.par != t {
		panic(fmt.Sprintf("fasttrack: thread %d did not spawn thread %d", t.id, c.id))
	}
	<-c.done
	if !c.joined {
		c.joined = true
		t.m.Join(t.id, c.id)
	}
}

// Read records a read of addr by this thread.
func (t *Thread) Read(addr uint64) { t.m.Read(t.id, addr) }

// Write records a write of addr by this thread.
func (t *Thread) Write(addr uint64) { t.m.Write(t.id, addr) }

// Acquire records a lock acquisition by this thread.
func (t *Thread) Acquire(l uint64) { t.m.Acquire(t.id, l) }

// Release records a lock release by this thread.
func (t *Thread) Release(l uint64) { t.m.Release(t.id, l) }

// VolatileRead records a volatile read by this thread.
func (t *Thread) VolatileRead(v uint64) { t.m.VolatileRead(t.id, v) }

// VolatileWrite records a volatile write by this thread.
func (t *Thread) VolatileWrite(v uint64) { t.m.VolatileWrite(t.id, v) }

// ChanSend records a channel send by this thread (call before sending).
func (t *Thread) ChanSend(ch uint64, capacity int32) { t.m.ChanSend(t.id, ch, capacity) }

// ChanRecv records a channel receive by this thread (call after the
// receive completes).
func (t *Thread) ChanRecv(ch uint64, capacity int32) { t.m.ChanRecv(t.id, ch, capacity) }

// ChanClose records a channel close by this thread (call before closing).
func (t *Thread) ChanClose(ch uint64, capacity int32) { t.m.ChanClose(t.id, ch, capacity) }

// Locked runs body with lock l held (both for the detector and as a
// convenience for pairing Acquire/Release correctly).
func (t *Thread) Locked(l uint64, body func()) {
	t.Acquire(l)
	defer t.Release(l)
	body()
}
