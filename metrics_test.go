package fasttrack

import (
	"sync"
	"testing"
)

// TestMonitorMetricsSnapshot: a quiet monitor exposes the rr.* pipeline
// counters and publishes the tool.* gauges at snapshot time, and the
// event accounting in the snapshot matches Stats exactly.
func TestMonitorMetricsSnapshot(t *testing.T) {
	m := NewMonitor()
	m.Write(0, 1)
	m.Read(0, 1)
	m.Acquire(0, 9)
	m.Release(0, 9)

	s := m.Metrics()
	if got := s.Counter("rr.events.fed"); got != 4 {
		t.Errorf("rr.events.fed = %d, want 4", got)
	}
	if got := s.Counter("rr.delivered.reads"); got != 1 {
		t.Errorf("rr.delivered.reads = %d, want 1", got)
	}
	if got := s.Counter("rr.delivered.writes"); got != 1 {
		t.Errorf("rr.delivered.writes = %d, want 1", got)
	}
	if got := s.Counter("rr.delivered.syncs"); got != 2 {
		t.Errorf("rr.delivered.syncs = %d, want 2", got)
	}
	st := m.Stats()
	if got := s.Gauge("tool.events"); got != st.Events {
		t.Errorf("tool.events gauge = %d, Stats.Events = %d", got, st.Events)
	}
	if got := s.Gauge("tool.reads"); got != st.Reads {
		t.Errorf("tool.reads gauge = %d, Stats.Reads = %d", got, st.Reads)
	}
	if m.MetricsRegistry() == nil {
		t.Fatal("MetricsRegistry returned nil")
	}
}

// TestMonitorMetricsConcurrent hammers a monitor from several event
// threads while another goroutine scrapes Metrics — run with -race, the
// scrape path must be safe against the event path. Successive snapshots
// must be monotone in the pipeline counters and the tool gauges that
// mirror cumulative Stats counters, and the final snapshot must account
// for every event.
func TestMonitorMetricsConcurrent(t *testing.T) {
	m := NewMonitor(WithHints(Hints{Threads: 5, Vars: 64}))
	const (
		workers = 4
		iters   = 500
		lockID  = 1
	)
	var mu sync.Mutex
	for w := 1; w <= workers; w++ {
		m.Fork(0, int32(w))
	}

	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			private := uint64(100 + tid)
			for i := 0; i < iters; i++ {
				m.Write(tid, private)
				m.Read(tid, private)
				mu.Lock()
				m.Acquire(tid, lockID)
				m.Write(tid, 0)
				m.Release(tid, lockID)
				mu.Unlock()
			}
		}(int32(w))
	}

	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		monotone := []string{
			"rr.events.fed", "rr.delivered.reads", "rr.delivered.writes",
			"rr.delivered.syncs", "rr.delivered.total",
		}
		last := map[string]int64{}
		var lastEvents int64
		for i := 0; i < 100; i++ {
			s := m.Metrics()
			for _, name := range monotone {
				if got := s.Counter(name); got < last[name] {
					t.Errorf("%s went backwards: %d -> %d", name, last[name], got)
					return
				} else {
					last[name] = got
				}
			}
			// tool.events mirrors a cumulative Stats counter, so the
			// published gauge is monotone too.
			if got := s.Gauge("tool.events"); got < lastEvents {
				t.Errorf("tool.events went backwards: %d -> %d", lastEvents, got)
				return
			} else {
				lastEvents = got
			}
		}
	}()

	wg.Wait()
	<-scraped
	for w := 1; w <= workers; w++ {
		m.Join(0, int32(w))
	}

	s := m.Metrics()
	st := m.Stats()
	wantFed := int64(workers*iters*5 + 2*workers) // accesses+lock ops, forks, joins
	if got := s.Counter("rr.events.fed"); got != wantFed {
		t.Errorf("final rr.events.fed = %d, want %d", got, wantFed)
	}
	if got := s.Counter("rr.delivered.reads"); got != st.Reads {
		t.Errorf("final rr.delivered.reads = %d, Stats.Reads = %d", got, st.Reads)
	}
	if got := s.Counter("rr.delivered.writes"); got != st.Writes {
		t.Errorf("final rr.delivered.writes = %d, Stats.Writes = %d", got, st.Writes)
	}
	if got := s.Gauge("tool.events"); got != st.Events {
		t.Errorf("final tool.events = %d, Stats.Events = %d", got, st.Events)
	}
	if got := s.Gauge("tool.races"); got != int64(len(m.Races())) {
		t.Errorf("tool.races = %d, Races() has %d", got, len(m.Races()))
	}
}
