package trace_test

import (
	"bytes"
	"fmt"
	"strings"

	"fasttrack/trace"
)

// Build a trace with the constructors and render the text format.
func ExampleTrace_String() {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(1, 2),
		trace.Wr(1, 7),
		trace.Rel(1, 2),
		trace.Barrier(0, 0, 1),
	}
	fmt.Print(tr.String())
	// Output:
	// fork 0 1
	// acq 1 m2
	// wr 1 x7
	// rel 1 m2
	// barrier b0 0 1
}

// The validator enforces the feasibility constraints of the paper's
// Section 2.1.
func ExampleTrace_Validate() {
	bad := trace.Trace{trace.Rel(0, 2)}
	fmt.Println(bad.Validate())

	good := trace.Trace{trace.Acq(0, 2), trace.Rel(0, 2)}
	fmt.Println(good.Validate())
	// Output:
	// trace: event 0 (rel 0 m2): thread 0 releases lock m2 it does not hold
	// <nil>
}

// Text and binary codecs round-trip the same events.
func ExampleReadText() {
	in := `# a comment
rd 0 x1
wr 1 x1
`
	tr, err := trace.ReadText(strings.NewReader(in))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(tr), tr[1])
	// Output:
	// 2 wr 1 x1
}

// The streaming scanner handles both formats without loading the whole
// trace.
func ExampleScanner() {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, trace.Trace{trace.Rd(0, 1), trace.Wr(0, 2)}); err != nil {
		panic(err)
	}
	sc := trace.NewScanner(&buf)
	for sc.Scan() {
		fmt.Println(sc.Event())
	}
	fmt.Println("err:", sc.Err())
	// Output:
	// rd 0 x1
	// wr 0 x2
	// err: <nil>
}
