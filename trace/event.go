// Package trace defines the multithreaded program trace model of Flanagan
// & Freund's FastTrack paper (PLDI 2009, Section 2.1), extended with the
// synchronization primitives of Section 4: volatile variables, barriers,
// wait/notify, and the transaction boundaries consumed by the downstream
// atomicity and determinism checkers of Section 5.2.
//
// A trace is a sequence of operations performed by a set of threads on
// variables and locks. The race detectors in this module are online
// analyses over such traces: they can consume events from a live program
// (via fasttrack.Monitor), from a generator, or from a trace file encoded
// with this package's text or binary codecs.
package trace

import "fmt"

// Kind enumerates the operations a thread can perform.
type Kind uint8

const (
	// Read is rd(t,x): thread t reads variable x.
	Read Kind = iota
	// Write is wr(t,x): thread t writes variable x.
	Write
	// Acquire is acq(t,m): thread t acquires lock m.
	Acquire
	// Release is rel(t,m): thread t releases lock m.
	Release
	// Fork is fork(t,u): thread t forks a new thread u (Target = u).
	Fork
	// Join is join(t,u): thread t blocks until thread u terminates.
	Join
	// VolatileRead is a read of volatile variable x (Section 4,
	// FT READ VOLATILE): it happens after every preceding write of x.
	VolatileRead
	// VolatileWrite is a write of volatile variable x (FT WRITE VOLATILE).
	VolatileWrite
	// Wait is wait(t,m), recorded at wait entry. Per Section 4 a wait is
	// modeled by the underlying release and subsequent re-acquisition of
	// m: the dispatcher turns this event into rel(t,m), and the wake-up
	// must be recorded separately as acq(t,m) (Monitor.WaitEnd does so).
	// Detectors never see Wait directly.
	Wait
	// Notify is notify(t,m). It affects scheduling only and induces no
	// happens-before edge, so detectors ignore it (Section 4).
	Notify
	// BarrierRelease is barrier_rel(T): the threads in Tids are released
	// simultaneously from a barrier (Section 4, FT BARRIER RELEASE). The
	// event's Tid is unused; the participant set is in Tids.
	BarrierRelease
	// TxBegin marks the start of a transaction (method body) of thread t.
	// Race detectors ignore it; the atomicity checkers of Section 5.2
	// delimit transactions with it.
	TxBegin
	// TxEnd marks the end of the current transaction of thread t.
	TxEnd
	// ChanSend is chsend(t,c): thread t completes a send on channel c.
	// Together with ChanRecv it encodes the Go memory model's channel
	// edges: the k-th send on c happens before the k-th receive, and on a
	// channel with capacity C the k-th receive happens before the
	// (k+C)-th send. The event's Cap field carries the capacity.
	ChanSend
	// ChanRecv is chrecv(t,c): thread t completes a receive on channel c.
	ChanRecv
	// ChanClose is chclose(t,c): thread t closes channel c. The close
	// happens before any receive that observes the closed channel.
	ChanClose

	numKinds
)

var kindNames = [numKinds]string{
	Read:           "rd",
	Write:          "wr",
	Acquire:        "acq",
	Release:        "rel",
	Fork:           "fork",
	Join:           "join",
	VolatileRead:   "vrd",
	VolatileWrite:  "vwr",
	Wait:           "wait",
	Notify:         "notify",
	BarrierRelease: "barrier",
	TxBegin:        "txbegin",
	TxEnd:          "txend",
	ChanSend:       "chsend",
	ChanRecv:       "chrecv",
	ChanClose:      "chclose",
}

// MaxChanCap is the largest channel capacity either codec accepts. Caps
// size per-channel ring buffers in the detector, so an unbounded value in
// a hostile trace could force enormous allocations.
const MaxChanCap = int32(1 << 20)

// String returns the mnemonic used by the text trace format.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString is the inverse of Kind.String. The boolean reports
// whether the mnemonic was recognized.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// IsAccess reports whether k is a data access (read or write of an
// ordinary, non-volatile variable) — the 96%+ of monitored operations
// that FastTrack's fast paths target.
func (k Kind) IsAccess() bool { return k == Read || k == Write }

// IsSync reports whether k imposes a happens-before edge between threads.
func (k Kind) IsSync() bool {
	switch k {
	case Acquire, Release, Fork, Join, VolatileRead, VolatileWrite, Wait, BarrierRelease,
		ChanSend, ChanRecv, ChanClose:
		return true
	}
	return false
}

// Event is one operation of a trace.
//
// Target identifies the operand: a variable for Read/Write and the
// volatile kinds, a lock for Acquire/Release/Wait/Notify, the child
// thread for Fork/Join, a barrier identifier for BarrierRelease, and a
// channel identifier for the Chan kinds. Variables, locks, volatiles,
// barriers, and channels live in separate namespaces: variable 3 and
// lock 3 are unrelated.
type Event struct {
	Kind   Kind
	Tid    int32
	Target uint64
	// Cap is the channel capacity for ChanSend/ChanRecv/ChanClose
	// (0 = unbuffered); unused otherwise. Every event on a channel
	// carries its capacity so any of them can materialize the
	// per-channel detector state.
	Cap int32
	// Tids is the participant set of a BarrierRelease; nil otherwise.
	Tids []int32
}

// String renders the event in the text trace format, e.g. "rd 1 x3".
func (e Event) String() string {
	switch e.Kind {
	case Read, Write:
		return fmt.Sprintf("%s %d x%d", e.Kind, e.Tid, e.Target)
	case VolatileRead, VolatileWrite:
		return fmt.Sprintf("%s %d v%d", e.Kind, e.Tid, e.Target)
	case Acquire, Release, Wait, Notify:
		return fmt.Sprintf("%s %d m%d", e.Kind, e.Tid, e.Target)
	case Fork, Join:
		return fmt.Sprintf("%s %d %d", e.Kind, e.Tid, e.Target)
	case BarrierRelease:
		s := fmt.Sprintf("%s b%d", e.Kind, e.Target)
		for _, t := range e.Tids {
			s += fmt.Sprintf(" %d", t)
		}
		return s
	case TxBegin, TxEnd:
		return fmt.Sprintf("%s %d", e.Kind, e.Tid)
	case ChanSend, ChanRecv, ChanClose:
		return fmt.Sprintf("%s %d c%d %d", e.Kind, e.Tid, e.Target, e.Cap)
	default:
		return fmt.Sprintf("%s %d %d", e.Kind, e.Tid, e.Target)
	}
}

// Rd, Wr, Acq, Rel, ForkOf, JoinOf and friends are concise constructors
// used heavily by tests and workload generators.

// Rd returns rd(t,x).
func Rd(t int32, x uint64) Event { return Event{Kind: Read, Tid: t, Target: x} }

// Wr returns wr(t,x).
func Wr(t int32, x uint64) Event { return Event{Kind: Write, Tid: t, Target: x} }

// Acq returns acq(t,m).
func Acq(t int32, m uint64) Event { return Event{Kind: Acquire, Tid: t, Target: m} }

// Rel returns rel(t,m).
func Rel(t int32, m uint64) Event { return Event{Kind: Release, Tid: t, Target: m} }

// ForkOf returns fork(t,u).
func ForkOf(t, u int32) Event { return Event{Kind: Fork, Tid: t, Target: uint64(u)} }

// JoinOf returns join(t,u).
func JoinOf(t, u int32) Event { return Event{Kind: Join, Tid: t, Target: uint64(u)} }

// VRd returns a volatile read of v by t.
func VRd(t int32, v uint64) Event { return Event{Kind: VolatileRead, Tid: t, Target: v} }

// VWr returns a volatile write of v by t.
func VWr(t int32, v uint64) Event { return Event{Kind: VolatileWrite, Tid: t, Target: v} }

// Barrier returns barrier_rel(T) for barrier b releasing threads tids.
func Barrier(b uint64, tids ...int32) Event {
	return Event{Kind: BarrierRelease, Target: b, Tids: tids}
}

// ChSend returns chsend(t,c) on a channel of the given capacity.
func ChSend(t int32, c uint64, capacity int32) Event {
	return Event{Kind: ChanSend, Tid: t, Target: c, Cap: capacity}
}

// ChRecv returns chrecv(t,c) on a channel of the given capacity.
func ChRecv(t int32, c uint64, capacity int32) Event {
	return Event{Kind: ChanRecv, Tid: t, Target: c, Cap: capacity}
}

// ChClose returns chclose(t,c) on a channel of the given capacity.
func ChClose(t int32, c uint64, capacity int32) Event {
	return Event{Kind: ChanClose, Tid: t, Target: c, Cap: capacity}
}
