package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte{0xAB}, 1000)}
	for i, p := range payloads {
		if err := fw.WriteFrame(FrameType(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Frames() != int64(len(payloads)) {
		t.Errorf("Frames() = %d, want %d", fw.Frames(), len(payloads))
	}
	fr := NewFrameReader(&buf, 0)
	for i, want := range payloads {
		typ, got, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != FrameType(i+1) {
			t.Errorf("frame %d: type %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: payload %q, want %q", i, got, want)
		}
	}
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
	if fr.Frames() != int64(len(payloads)) {
		t.Errorf("reader Frames() = %d, want %d", fr.Frames(), len(payloads))
	}
}

func TestFrameCRCDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(3, []byte("payload under test")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit in every position after the length prefix; each must
	// surface as a CRC mismatch (a corrupted length is a different class).
	for pos := 4; pos < len(raw); pos++ {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x10
		_, _, err := NewFrameReader(bytes.NewReader(mut), 0).ReadFrame()
		if !errors.Is(err, ErrFrameCRC) {
			t.Errorf("corruption at byte %d: err = %v, want ErrFrameCRC", pos, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	_, _, err := NewFrameReader(&buf, 50).ReadFrame()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(1, []byte("some payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := NewFrameReader(bytes.NewReader(raw[:cut]), 0).ReadFrame()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// A cut at a frame boundary is a clean EOF.
	if _, _, err := NewFrameReader(bytes.NewReader(nil), 0).ReadFrame(); err != io.EOF {
		t.Errorf("empty input: err = %v, want io.EOF", err)
	}
}

func TestFrameCarriesTraceChunk(t *testing.T) {
	tr := sampleTrace()
	var chunk bytes.Buffer
	if err := WriteBinary(&chunk, tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewFrameWriter(&buf).WriteFrame(7, chunk.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, payload, err := NewFrameReader(&buf, 0).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, NewScanner(bytes.NewReader(payload)))
	if len(got) != len(tr) {
		t.Fatalf("decoded %d events from framed chunk, want %d", len(got), len(tr))
	}
}

func TestTracedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteTracedFrame(5, 0xDEADBEEFCAFE, []byte("events")); err != nil {
		t.Fatal(err)
	}
	// A zero ID degrades to a plain frame.
	if err := fw.WriteTracedFrame(6, 0, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf, 0)
	typ, payload, err := fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != 5 || string(payload) != "events" {
		t.Errorf("traced frame decoded as (%d, %q)", typ, payload)
	}
	if fr.TraceID() != 0xDEADBEEFCAFE {
		t.Errorf("TraceID = %#x, want 0xDEADBEEFCAFE", fr.TraceID())
	}
	typ, payload, err = fr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != 6 || string(payload) != "plain" {
		t.Errorf("plain frame decoded as (%d, %q)", typ, payload)
	}
	// The ID does not leak across frames.
	if fr.TraceID() != 0 {
		t.Errorf("TraceID after plain frame = %#x, want 0", fr.TraceID())
	}
}

func TestTracedFrameBackwardCompatible(t *testing.T) {
	// Untraced frames produced by the extended writer are byte-identical
	// to the legacy encoding: the extension costs nothing unless used.
	var plain, viaTraced bytes.Buffer
	if err := NewFrameWriter(&plain).WriteFrame(3, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := NewFrameWriter(&viaTraced).WriteTracedFrame(3, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaTraced.Bytes()) {
		t.Errorf("zero-ID WriteTracedFrame is not byte-identical to WriteFrame")
	}
}

func TestTracedFrameCRCCoversID(t *testing.T) {
	var buf bytes.Buffer
	if err := NewFrameWriter(&buf).WriteTracedFrame(2, 42, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt one byte of the embedded trace ID (bytes 5..12).
	raw[8] ^= 0xFF
	_, _, err := NewFrameReader(bytes.NewReader(raw), 0).ReadFrame()
	if !errors.Is(err, ErrFrameCRC) {
		t.Errorf("corrupted trace ID: err = %v, want ErrFrameCRC", err)
	}
}

func TestTracedFrameTruncatedID(t *testing.T) {
	// A flagged frame whose declared payload is shorter than the ID field
	// is rejected (defense against hand-crafted input).
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteFrame(FrameType(1|frameTraceIDFlag), []byte("abc")); err != nil {
		t.Fatal(err)
	}
	_, _, err := NewFrameReader(&buf, 0).ReadFrame()
	if err == nil {
		t.Fatal("flagged frame with 3-byte payload was accepted")
	}
}
