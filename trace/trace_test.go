package trace

import (
	"strings"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v,%v; want %v", k.String(), got, ok, k)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("KindFromString must reject unknown mnemonics")
	}
}

func TestKindClassification(t *testing.T) {
	if !Read.IsAccess() || !Write.IsAccess() {
		t.Error("rd/wr must be accesses")
	}
	if Acquire.IsAccess() || VolatileRead.IsAccess() {
		t.Error("acq and volatile reads are not plain accesses")
	}
	for _, k := range []Kind{Acquire, Release, Fork, Join, VolatileRead, VolatileWrite, Wait, BarrierRelease, ChanSend, ChanRecv, ChanClose} {
		if !k.IsSync() {
			t.Errorf("%v must be sync", k)
		}
	}
	for _, k := range []Kind{Read, Write, Notify, TxBegin, TxEnd} {
		if k.IsSync() {
			t.Errorf("%v must not be sync", k)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Rd(1, 3), "rd 1 x3"},
		{Wr(0, 7), "wr 0 x7"},
		{Acq(2, 0), "acq 2 m0"},
		{Rel(2, 0), "rel 2 m0"},
		{ForkOf(0, 1), "fork 0 1"},
		{JoinOf(0, 1), "join 0 1"},
		{VRd(1, 2), "vrd 1 v2"},
		{VWr(1, 2), "vwr 1 v2"},
		{Barrier(0, 0, 1, 2), "barrier b0 0 1 2"},
		{Event{Kind: TxBegin, Tid: 4}, "txbegin 4"},
		{Event{Kind: Wait, Tid: 1, Target: 5}, "wait 1 m5"},
		{Event{Kind: Notify, Tid: 1, Target: 5}, "notify 1 m5"},
		{ChSend(1, 4, 2), "chsend 1 c4 2"},
		{ChRecv(0, 4, 2), "chrecv 0 c4 2"},
		{ChClose(1, 4, 0), "chclose 1 c4 0"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// section2Trace is the worked example of Section 2.2 of the paper.
func section2Trace() Trace {
	return Trace{
		ForkOf(0, 1),
		Wr(0, 0),
		Rel(0, 0), // needs a preceding acq to be feasible
	}
}

func TestThreadsVarsCount(t *testing.T) {
	tr := Trace{
		ForkOf(0, 1),
		Wr(0, 10),
		Rd(1, 10),
		Rd(1, 11),
		Acq(1, 0),
		Rel(1, 0),
		Barrier(0, 0, 1),
	}
	if n := tr.Threads(); n != 2 {
		t.Errorf("Threads = %d, want 2", n)
	}
	if vars := tr.Vars(); len(vars) != 2 {
		t.Errorf("Vars = %v, want 2 entries", vars)
	}
	c := tr.Count()
	if c.Reads != 2 || c.Writes != 1 || c.Other != 4 {
		t.Errorf("Count = %+v", c)
	}
	if c.Total() != len(tr) {
		t.Errorf("Total = %d, want %d", c.Total(), len(tr))
	}
	// Fork target raises the thread count even before the child runs.
	if n := (Trace{ForkOf(0, 5)}).Threads(); n != 6 {
		t.Errorf("Threads with fork target 5 = %d, want 6", n)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := Trace{
		Wr(0, 1),
		ForkOf(0, 1),
		Acq(1, 0),
		Wr(1, 1),
		Rel(1, 0),
		Acq(0, 0),
		Rd(0, 1),
		Rel(0, 0),
		JoinOf(0, 1),
		Rd(0, 1),
		Barrier(0, 0),
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		tr   Trace
		want string
	}{
		{"double acquire", Trace{Acq(0, 1), Acq(0, 1)}, "already held"},
		{"acquire held by other", Trace{ForkOf(0, 1), Acq(0, 1), Acq(1, 1)}, "already held"},
		{"release unheld", Trace{Rel(0, 1)}, "does not hold"},
		{"release other's lock", Trace{ForkOf(0, 1), Acq(1, 1), Rel(0, 1)}, "does not hold"},
		{"run before fork", Trace{Rd(1, 0)}, "not running"},
		{"run after join", Trace{ForkOf(0, 1), Rd(1, 0), JoinOf(0, 1), Rd(1, 0)}, "not running"},
		{"fork existing", Trace{ForkOf(0, 1), Rd(1, 0), ForkOf(0, 1)}, "already exists"},
		{"fork self", Trace{ForkOf(0, 0)}, "forks itself"},
		{"join unborn", Trace{JoinOf(0, 3)}, "not running"},
		{"join self", Trace{JoinOf(0, 0)}, "joins itself"},
		{"join idle thread", Trace{ForkOf(0, 1), JoinOf(0, 1)}, "no instruction"},
		{"wait without lock", Trace{Event{Kind: Wait, Tid: 0, Target: 2}}, "does not hold"},
		{"barrier dead thread", Trace{Barrier(0, 0, 2)}, "not running"},
	}
	for _, c := range cases {
		err := c.tr.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an infeasible trace", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidationErrorFields(t *testing.T) {
	tr := Trace{Rd(0, 1), Rel(0, 9)}
	err := tr.Validate()
	verr, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T, want *ValidationError", err)
	}
	if verr.Index != 1 || verr.Event.Kind != Release {
		t.Errorf("ValidationError = %+v", verr)
	}
}

func TestTraceString(t *testing.T) {
	tr := Trace{Rd(0, 1), Wr(1, 2)}
	want := "rd 0 x1\nwr 1 x2\n"
	if got := tr.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
