package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file implements the wire framing used by the racedetectd network
// ingestion service: a trace stream is carried as a sequence of
// length-framed, CRC-protected chunks, each chunk's payload being an
// independent message (for event chunks, a complete binary-codec trace
// produced by Writer and decoded by Scanner).
//
// Frame layout, all integers big-endian:
//
//	[4 bytes payload length][1 byte frame type][payload][4 bytes CRC32]
//
// The CRC (IEEE polynomial) covers the type byte and the payload, so a
// corrupted type or a corrupted body is detected as one failure class.
// The frame layer knows nothing about frame-type semantics beyond the
// one byte it carries; the service protocol assigns meanings.
//
// One optional header extension exists for pipeline tracing: when the
// high bit of the type byte is set, an 8-byte big-endian trace ID sits
// between the type byte and the payload (counted in the declared
// length, covered by the CRC). Readers strip it transparently; writers
// emit it only via WriteTracedFrame, and only to peers that negotiated
// the extension, so the base framing stays wire-compatible.

// FrameType tags a frame's payload; meanings are assigned by the
// protocol layered on top (see internal/svc).
type FrameType uint8

// frameTraceIDFlag is the high bit of the wire type byte: when set, an
// 8-byte big-endian trace ID precedes the payload (and is counted in
// the declared payload length and covered by the CRC). The flag is an
// optional, negotiated extension — see WriteTracedFrame — so peers that
// predate it never receive flagged frames and never need to parse it.
const frameTraceIDFlag = 0x80

// frameTraceIDLen is the size of the optional trace-ID header field.
const frameTraceIDLen = 8

// frameHeaderLen is the fixed per-frame overhead before the payload.
const frameHeaderLen = 4 + 1

// frameTrailerLen is the CRC32 trailer.
const frameTrailerLen = 4

// DefaultMaxFramePayload is the payload cap a FrameReader enforces when
// the caller passes no explicit limit: large enough for generous event
// batches, small enough that one malformed length prefix cannot make
// the reader allocate unbounded memory.
const DefaultMaxFramePayload = 4 << 20

// ErrFrameTooLarge reports a frame whose declared payload length
// exceeds the reader's limit.
var ErrFrameTooLarge = errors.New("trace: frame payload exceeds limit")

// ErrFrameCRC reports a frame whose checksum did not match — the
// payload was damaged in transit or storage.
var ErrFrameCRC = errors.New("trace: frame CRC mismatch")

// FrameWriter encodes frames onto a writer. It buffers nothing beyond
// the per-frame header, so a successful WriteFrame has handed the whole
// frame to the underlying writer. Not safe for concurrent use.
type FrameWriter struct {
	w       io.Writer
	scratch [frameHeaderLen]byte
	frames  int64
}

// NewFrameWriter returns a frame writer over w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteFrame emits one frame of the given type.
func (fw *FrameWriter) WriteFrame(t FrameType, payload []byte) error {
	return fw.writeFrame(t, 0, payload)
}

// WriteTracedFrame emits one frame carrying the optional trace-ID
// header field (id != 0): the wire type byte gets the trace flag and
// the 8-byte ID precedes the payload, inside the declared length and
// the CRC. id == 0 degrades to a plain WriteFrame. Because a reader
// that predates the extension rejects the flagged type byte, senders
// must only use it with peers that negotiated support (the racedetectd
// protocol advertises it in the handshake).
func (fw *FrameWriter) WriteTracedFrame(t FrameType, id uint64, payload []byte) error {
	return fw.writeFrame(t, id, payload)
}

func (fw *FrameWriter) writeFrame(t FrameType, id uint64, payload []byte) error {
	declared := len(payload)
	wireType := byte(t)
	var idBuf [frameTraceIDLen]byte
	if id != 0 {
		declared += frameTraceIDLen
		wireType |= frameTraceIDFlag
		binary.BigEndian.PutUint64(idBuf[:], id)
	}
	binary.BigEndian.PutUint32(fw.scratch[:4], uint32(declared))
	fw.scratch[4] = wireType
	if _, err := fw.w.Write(fw.scratch[:]); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(fw.scratch[4:5])
	if id != 0 {
		if _, err := fw.w.Write(idBuf[:]); err != nil {
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, idBuf[:])
	}
	if len(payload) > 0 {
		if _, err := fw.w.Write(payload); err != nil {
			return err
		}
	}
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tr [frameTrailerLen]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	if _, err := fw.w.Write(tr[:]); err != nil {
		return err
	}
	fw.frames++
	return nil
}

// Frames returns the number of frames written.
func (fw *FrameWriter) Frames() int64 { return fw.frames }

// FrameReader decodes frames from a reader, enforcing a payload size
// limit and verifying each frame's CRC. Not safe for concurrent use.
type FrameReader struct {
	r      io.Reader
	max    int
	frames int64
	bytes  int64
	lastID uint64
}

// NewFrameReader returns a frame reader over r. maxPayload bounds the
// accepted payload size (DefaultMaxFramePayload if <= 0).
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	return &FrameReader{r: r, max: maxPayload}
}

// ReadFrame reads the next frame. A clean EOF at a frame boundary is
// returned as io.EOF; an EOF inside a frame is io.ErrUnexpectedEOF
// (the stream was torn mid-frame). When the frame carried the optional
// trace-ID header field, the ID is stripped from the returned payload
// and available from TraceID until the next ReadFrame.
func (fr *FrameReader) ReadFrame() (FrameType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return 0, nil, err // clean EOF at a frame boundary
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("trace: frame %d header: %w", fr.frames, noEOF(err))
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	t := FrameType(hdr[4])
	if n > uint32(fr.max) {
		return 0, nil, fmt.Errorf("%w: frame %d declares %d bytes (limit %d)",
			ErrFrameTooLarge, fr.frames, n, fr.max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("trace: frame %d payload: %w", fr.frames, noEOF(err))
	}
	var tr [frameTrailerLen]byte
	if _, err := io.ReadFull(fr.r, tr[:]); err != nil {
		return 0, nil, fmt.Errorf("trace: frame %d trailer: %w", fr.frames, noEOF(err))
	}
	crc := crc32.ChecksumIEEE(hdr[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if got := binary.BigEndian.Uint32(tr[:]); got != crc {
		return 0, nil, fmt.Errorf("%w: frame %d: got %08x want %08x", ErrFrameCRC, fr.frames, got, crc)
	}
	fr.lastID = 0
	if t&frameTraceIDFlag != 0 {
		if n < frameTraceIDLen {
			return 0, nil, fmt.Errorf("trace: frame %d declares a trace ID but carries %d bytes", fr.frames, n)
		}
		fr.lastID = binary.BigEndian.Uint64(payload[:frameTraceIDLen])
		payload = payload[frameTraceIDLen:]
		t &^= frameTraceIDFlag
	}
	fr.frames++
	fr.bytes += int64(frameHeaderLen+frameTrailerLen) + int64(n)
	return t, payload, nil
}

// TraceID returns the trace ID of the most recently read frame, or 0
// when that frame carried none.
func (fr *FrameReader) TraceID() uint64 { return fr.lastID }

// Frames returns the number of frames successfully read.
func (fr *FrameReader) Frames() int64 { return fr.frames }

// Bytes returns the total wire bytes of successfully read frames.
func (fr *FrameReader) Bytes() int64 { return fr.bytes }
