package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file implements the wire framing used by the racedetectd network
// ingestion service: a trace stream is carried as a sequence of
// length-framed, CRC-protected chunks, each chunk's payload being an
// independent message (for event chunks, a complete binary-codec trace
// produced by Writer and decoded by Scanner).
//
// Frame layout, all integers big-endian:
//
//	[4 bytes payload length][1 byte frame type][payload][4 bytes CRC32]
//
// The CRC (IEEE polynomial) covers the type byte and the payload, so a
// corrupted type or a corrupted body is detected as one failure class.
// The frame layer knows nothing about frame-type semantics beyond the
// one byte it carries; the service protocol assigns meanings.

// FrameType tags a frame's payload; meanings are assigned by the
// protocol layered on top (see internal/svc).
type FrameType uint8

// frameHeaderLen is the fixed per-frame overhead before the payload.
const frameHeaderLen = 4 + 1

// frameTrailerLen is the CRC32 trailer.
const frameTrailerLen = 4

// DefaultMaxFramePayload is the payload cap a FrameReader enforces when
// the caller passes no explicit limit: large enough for generous event
// batches, small enough that one malformed length prefix cannot make
// the reader allocate unbounded memory.
const DefaultMaxFramePayload = 4 << 20

// ErrFrameTooLarge reports a frame whose declared payload length
// exceeds the reader's limit.
var ErrFrameTooLarge = errors.New("trace: frame payload exceeds limit")

// ErrFrameCRC reports a frame whose checksum did not match — the
// payload was damaged in transit or storage.
var ErrFrameCRC = errors.New("trace: frame CRC mismatch")

// FrameWriter encodes frames onto a writer. It buffers nothing beyond
// the per-frame header, so a successful WriteFrame has handed the whole
// frame to the underlying writer. Not safe for concurrent use.
type FrameWriter struct {
	w       io.Writer
	scratch [frameHeaderLen]byte
	frames  int64
}

// NewFrameWriter returns a frame writer over w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteFrame emits one frame of the given type.
func (fw *FrameWriter) WriteFrame(t FrameType, payload []byte) error {
	binary.BigEndian.PutUint32(fw.scratch[:4], uint32(len(payload)))
	fw.scratch[4] = byte(t)
	if _, err := fw.w.Write(fw.scratch[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := fw.w.Write(payload); err != nil {
			return err
		}
	}
	crc := crc32.ChecksumIEEE(fw.scratch[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tr [frameTrailerLen]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	if _, err := fw.w.Write(tr[:]); err != nil {
		return err
	}
	fw.frames++
	return nil
}

// Frames returns the number of frames written.
func (fw *FrameWriter) Frames() int64 { return fw.frames }

// FrameReader decodes frames from a reader, enforcing a payload size
// limit and verifying each frame's CRC. Not safe for concurrent use.
type FrameReader struct {
	r      io.Reader
	max    int
	frames int64
	bytes  int64
}

// NewFrameReader returns a frame reader over r. maxPayload bounds the
// accepted payload size (DefaultMaxFramePayload if <= 0).
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxFramePayload
	}
	return &FrameReader{r: r, max: maxPayload}
}

// ReadFrame reads the next frame. A clean EOF at a frame boundary is
// returned as io.EOF; an EOF inside a frame is io.ErrUnexpectedEOF
// (the stream was torn mid-frame).
func (fr *FrameReader) ReadFrame() (FrameType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return 0, nil, err // clean EOF at a frame boundary
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("trace: frame %d header: %w", fr.frames, noEOF(err))
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	t := FrameType(hdr[4])
	if n > uint32(fr.max) {
		return 0, nil, fmt.Errorf("%w: frame %d declares %d bytes (limit %d)",
			ErrFrameTooLarge, fr.frames, n, fr.max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("trace: frame %d payload: %w", fr.frames, noEOF(err))
	}
	var tr [frameTrailerLen]byte
	if _, err := io.ReadFull(fr.r, tr[:]); err != nil {
		return 0, nil, fmt.Errorf("trace: frame %d trailer: %w", fr.frames, noEOF(err))
	}
	crc := crc32.ChecksumIEEE(hdr[4:5])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if got := binary.BigEndian.Uint32(tr[:]); got != crc {
		return 0, nil, fmt.Errorf("%w: frame %d: got %08x want %08x", ErrFrameCRC, fr.frames, got, crc)
	}
	fr.frames++
	fr.bytes += int64(frameHeaderLen+frameTrailerLen) + int64(n)
	return t, payload, nil
}

// Frames returns the number of frames successfully read.
func (fr *FrameReader) Frames() int64 { return fr.frames }

// Bytes returns the total wire bytes of successfully read frames.
func (fr *FrameReader) Bytes() int64 { return fr.bytes }
