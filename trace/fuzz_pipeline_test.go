package trace_test

// End-to-end fuzzing of the resilient analysis pipeline: arbitrary
// bytes → Scanner → Dispatcher (validating, quarantining) → FastTrack.
// The contract is no panic anywhere, and exact degradation accounting.
// This lives in an external test package because it closes the loop
// through internal/rr and internal/core, which import trace.

import (
	"bytes"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

func runPipeline(t *testing.T, data []byte, p rr.Policy) {
	t.Helper()
	d := rr.NewDispatcher(core.New(0, 0))
	d.Policy = p
	// Small caps keep dense shadow tables tiny even when the fuzzer
	// forges huge ids; anything over the caps must be dropped, not
	// allocated.
	d.MaxTid = 1 << 8
	d.MaxTarget = 1 << 12
	sc := trace.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		d.Event(sc.Event())
	}
	h := d.Health()
	errored := int64(0)
	if h.Err != nil {
		errored = 1
	}
	if h.Violations != h.Repaired+h.Dropped+errored {
		t.Fatalf("accounting: %d violations != %d repaired + %d dropped + %d errored",
			h.Violations, h.Repaired, h.Dropped, errored)
	}
	// Queries must stay serviceable whatever the input did.
	_ = d.Tool.Races()
	st := d.Tool.Stats()
	d.FillStats(&st)
}

func FuzzPipeline(f *testing.F) {
	f.Add([]byte("FTRK1\n"))
	f.Add([]byte("fork 0 1\nwr 1 5\nwr 0 5\n"))
	var buf bytes.Buffer
	_ = trace.WriteBinary(&buf, trace.Trace{
		trace.ForkOf(0, 1), trace.Acq(1, 2), trace.Wr(1, 3), trace.Rel(1, 2),
	})
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range []rr.Policy{rr.PolicyStrict, rr.PolicyRepair, rr.PolicyDrop} {
			runPipeline(t, data, p)
		}
	})
}
