package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadText: arbitrary text input must never panic, and anything that
// parses must round-trip through the writer byte-identically after one
// normalization pass.
func FuzzReadText(f *testing.F) {
	f.Add("rd 0 x1\nwr 1 x2\n")
	f.Add("# comment\nacq 0 m1\nrel 0 m1\n")
	f.Add("barrier b0 0 1 2\nfork 0 1\njoin 0 1\n")
	f.Add("txbegin 0\nvrd 1 v2\nvwr 1 v2\ntxend 0\n")
	f.Add("wait 0 m1\nnotify 0 m1\n")
	f.Add("chsend 0 c1 0\nchrecv 1 c1 0\nchclose 0 c1 0\n")
	f.Add("chsend 0 c2 3\nchrecv 1 c2 3\n")
	f.Add("rd")
	f.Add("rd 0 x99999999999999999999")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadText(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, tr); err != nil {
			t.Fatalf("WriteText on parsed trace: %v", err)
		}
		tr2, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-parse of written trace: %v", err)
		}
		if len(tr) != len(tr2) || (len(tr) > 0 && !reflect.DeepEqual(tr, tr2)) {
			t.Fatalf("round trip changed trace:\n%v\n%v", tr, tr2)
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic or over-allocate; any
// trace that decodes must re-encode and decode identically.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, Trace{Rd(0, 1), Barrier(0, 0, 1), ForkOf(0, 1)})
	f.Add(seed.Bytes())
	var chseed bytes.Buffer
	_ = WriteBinary(&chseed, Trace{ChSend(0, 1, 2), ChRecv(1, 1, 2), ChClose(0, 1, 2)})
	f.Add(chseed.Bytes())
	f.Add([]byte("FTRK1\n"))
	f.Add([]byte("FTRK1\n\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("WriteBinary on decoded trace: %v", err)
		}
		tr2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(tr) != len(tr2) || (len(tr) > 0 && !reflect.DeepEqual(tr, tr2)) {
			t.Fatalf("round trip changed trace")
		}
	})
}

// FuzzScannerMatchesBatch: the streaming scanner and the batch readers
// must accept the same inputs and produce the same events.
func FuzzScannerMatchesBatch(f *testing.F) {
	f.Add("rd 0 x1\nwr 1 x2\nbarrier b0 0 1\n")
	f.Add("bogus\n")
	f.Fuzz(func(t *testing.T, in string) {
		batch, batchErr := ReadText(bytes.NewReader([]byte(in)))
		sc := NewScanner(bytes.NewReader([]byte(in)))
		var streamed Trace
		for sc.Scan() {
			streamed = append(streamed, sc.Event())
		}
		if (batchErr == nil) != (sc.Err() == nil) {
			t.Fatalf("acceptance differs: batch=%v scanner=%v", batchErr, sc.Err())
		}
		if batchErr == nil && len(batch) != len(streamed) {
			t.Fatalf("event counts differ: %d vs %d", len(batch), len(streamed))
		}
	})
}
