package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Scanner reads a trace incrementally from a reader, auto-detecting the
// text or binary format, so arbitrarily long traces can be analyzed
// without being memory-resident. The zero value is not usable; call
// NewScanner.
type Scanner struct {
	src     *countingReader
	br      *bufio.Reader
	binary  bool
	started bool
	lineno  int
	index   int
	err     error
	cur     Event
	stats   ScanStats
}

// countingReader counts bytes handed to the buffering layer so the
// scanner can report byte offsets: consumed = read - still buffered.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ScanStats counts what the scanner decoded, classified at the trace
// layer before any dispatcher filtering — the raw stream composition the
// pipeline's delivered-event accounting is compared against.
type ScanStats struct {
	Events  int64 `json:"events"`
	Reads   int64 `json:"reads,omitempty"`
	Writes  int64 `json:"writes,omitempty"`
	Syncs   int64 `json:"syncs,omitempty"`
	Markers int64 `json:"markers,omitempty"` // txbegin/txend
	Other   int64 `json:"other,omitempty"`   // notify (no happens-before role)
}

// NewScanner returns a scanner over r.
func NewScanner(r io.Reader) *Scanner {
	cr := &countingReader{r: r}
	return &Scanner{src: cr, br: bufio.NewReaderSize(cr, 1<<16)}
}

// Offset returns the number of input bytes consumed so far: after a
// successful Scan it is the offset just past the returned event, and
// after a failed Scan it positions the error in the byte stream. The
// network ingestion tier uses it to enforce per-frame byte budgets and
// to report positions of decode errors.
func (s *Scanner) Offset() int64 { return s.src.n - int64(s.br.Buffered()) }

// Scan advances to the next event; it returns false at end of input or
// on error (check Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	if !s.started {
		s.started = true
		isBin, err := Sniff(s.br)
		if err != nil {
			s.err = err
			return false
		}
		s.binary = isBin
		if isBin {
			if _, err := s.br.Discard(len(binaryMagic)); err != nil {
				s.err = err
				return false
			}
		}
	}
	var (
		e   Event
		err error
	)
	if s.binary {
		e, err = s.scanBinary()
	} else {
		e, err = s.scanText()
	}
	if err != nil {
		if !errors.Is(err, io.EOF) {
			s.err = err
		}
		return false
	}
	s.cur = e
	s.index++
	s.stats.Events++
	switch {
	case e.Kind == Read:
		s.stats.Reads++
	case e.Kind == Write:
		s.stats.Writes++
	case e.Kind.IsSync():
		s.stats.Syncs++
	case e.Kind == TxBegin || e.Kind == TxEnd:
		s.stats.Markers++
	default:
		s.stats.Other++
	}
	return true
}

// Stats returns decode-time counts for the events scanned so far.
func (s *Scanner) Stats() ScanStats { return s.stats }

// Event returns the event read by the last successful Scan.
func (s *Scanner) Event() Event { return s.cur }

// Index returns the number of events scanned so far (the last event's
// position is Index()-1).
func (s *Scanner) Index() int { return s.index }

// Err returns the first error encountered (nil at clean end of input).
func (s *Scanner) Err() error { return s.err }

func (s *Scanner) scanText() (Event, error) {
	for {
		line, err := s.br.ReadString('\n')
		if line == "" && err != nil {
			return Event{}, err
		}
		s.lineno++
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			if err != nil {
				return Event{}, err
			}
			continue
		}
		e, perr := parseLine(trimmed)
		if perr != nil {
			return Event{}, fmt.Errorf("trace: line %d: %w", s.lineno, perr)
		}
		return e, nil
	}
}

func (s *Scanner) scanBinary() (Event, error) {
	start := s.Offset()
	kb, err := s.br.ReadByte()
	if err != nil {
		return Event{}, err // clean EOF at an event boundary
	}
	// From here on the event has started: a mid-event EOF is a truncation
	// and is reported with the position of the incomplete event.
	pos := func(err error) error {
		return fmt.Errorf("trace: event %d: %w (at byte %d)", s.index, noEOF(err), start)
	}
	if Kind(kb) >= numKinds {
		return Event{}, fmt.Errorf("trace: event %d: bad kind %d (at byte %d)", s.index, kb, start)
	}
	tid, err := binary.ReadUvarint(s.br)
	if err != nil {
		return Event{}, pos(err)
	}
	if tid > maxWireTid {
		return Event{}, fmt.Errorf("trace: event %d: thread id %d out of range [0, %d]", s.index, tid, maxWireTid)
	}
	target, err := binary.ReadUvarint(s.br)
	if err != nil {
		return Event{}, pos(err)
	}
	e := Event{Kind: Kind(kb), Tid: int32(tid), Target: target}
	if (e.Kind == Fork || e.Kind == Join) && target > maxWireTid {
		return Event{}, fmt.Errorf("trace: event %d: thread id %d out of range [0, %d]", s.index, target, maxWireTid)
	}
	if e.Kind == BarrierRelease {
		n, err := binary.ReadUvarint(s.br)
		if err != nil {
			return Event{}, pos(err)
		}
		if n > 1<<20 {
			return Event{}, fmt.Errorf("trace: event %d: absurd barrier size %d", s.index, n)
		}
		e.Tids = make([]int32, n)
		for i := range e.Tids {
			t, err := binary.ReadUvarint(s.br)
			if err != nil {
				return Event{}, pos(err)
			}
			if t > maxWireTid {
				return Event{}, fmt.Errorf("trace: event %d: thread id %d out of range [0, %d]", s.index, t, maxWireTid)
			}
			e.Tids[i] = int32(t)
		}
	}
	if e.Kind == ChanSend || e.Kind == ChanRecv || e.Kind == ChanClose {
		c, err := binary.ReadUvarint(s.br)
		if err != nil {
			return Event{}, pos(err)
		}
		if c > uint64(MaxChanCap) {
			return Event{}, fmt.Errorf("trace: event %d: channel capacity %d out of range [0, %d]", s.index, c, MaxChanCap)
		}
		e.Cap = int32(c)
	}
	return e, nil
}

// noEOF converts a mid-event EOF into an unexpected-EOF error so
// truncation is reported rather than treated as a clean end.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Format selects a trace encoding for the streaming writer.
type Format uint8

const (
	// Text is the human-editable line format.
	Text Format = iota
	// Binary is the compact varint format.
	Binary
)

// Writer encodes events incrementally. Close (or Flush) must be called
// to drain the buffer.
type Writer struct {
	bw     *bufio.Writer
	format Format
	wrote  bool
	count  int
	buf    [binary.MaxVarintLen64]byte
}

// NewWriter returns a streaming trace writer in the given format.
func NewWriter(w io.Writer, format Format) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), format: format}
}

// Write appends one event. Events with thread ids that cannot round-trip
// through the codec are rejected with a positional error.
func (w *Writer) Write(e Event) error {
	if err := checkWireTids(w.count, e); err != nil {
		return err
	}
	w.count++
	if !w.wrote {
		w.wrote = true
		if w.format == Binary {
			if _, err := w.bw.WriteString(binaryMagic); err != nil {
				return err
			}
		}
	}
	if w.format == Text {
		if _, err := w.bw.WriteString(e.String()); err != nil {
			return err
		}
		return w.bw.WriteByte('\n')
	}
	if err := w.bw.WriteByte(byte(e.Kind)); err != nil {
		return err
	}
	if err := w.uvarint(uint64(e.Tid)); err != nil {
		return err
	}
	if err := w.uvarint(e.Target); err != nil {
		return err
	}
	if e.Kind == BarrierRelease {
		if err := w.uvarint(uint64(len(e.Tids))); err != nil {
			return err
		}
		for _, t := range e.Tids {
			if err := w.uvarint(uint64(t)); err != nil {
				return err
			}
		}
	}
	if e.Kind == ChanSend || e.Kind == ChanRecv || e.Kind == ChanClose {
		if err := w.uvarint(uint64(e.Cap)); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) uvarint(x uint64) error {
	n := binary.PutUvarint(w.buf[:], x)
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// Flush drains buffered output. An empty binary trace still gets its
// magic so the output is a valid trace file.
func (w *Writer) Flush() error {
	if !w.wrote && w.format == Binary {
		w.wrote = true
		if _, err := w.bw.WriteString(binaryMagic); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}
