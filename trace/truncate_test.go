package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestBinaryTruncationPositions cuts a binary encoding at every byte
// offset and checks the scanner's behavior: a cut at an event boundary
// is a clean end of input, and a mid-event cut reports the position of
// the incomplete event.
func TestBinaryTruncationPositions(t *testing.T) {
	tr := Trace{
		ForkOf(0, 1),
		Acq(1, 300), // multi-byte varint target
		Wr(1, 70000),
		Rel(1, 300),
		Barrier(9, 0, 1),
		JoinOf(0, 1),
	}
	encode := func(tr Trace) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		return buf.Bytes()
	}
	full := encode(tr)

	// boundary[k] is the offset just after the k'th complete event.
	boundary := map[int]int{}
	for k := 0; k <= len(tr); k++ {
		boundary[len(encode(tr[:k]))] = k
	}

	for cut := 0; cut <= len(full); cut++ {
		sc := NewScanner(bytes.NewReader(full[:cut]))
		n := 0
		for sc.Scan() {
			n++
		}
		err := sc.Err()
		if complete, ok := boundary[cut]; ok {
			if err != nil {
				t.Errorf("cut %d (boundary after event %d): unexpected error %v", cut, complete, err)
			}
			if n != complete {
				t.Errorf("cut %d: scanned %d events, want %d", cut, n, complete)
			}
			continue
		}
		if cut < len(binaryMagic) {
			// A cut inside the magic is not recognizably binary; the
			// scanner falls back to text mode and its errors (if any)
			// carry line positions instead. Only no-panic is asserted.
			continue
		}
		if err == nil {
			t.Errorf("cut %d (mid-event): no error after %d events", cut, n)
			continue
		}
		if want := fmt.Sprintf("event %d:", n); !strings.Contains(err.Error(), want) {
			t.Errorf("cut %d: error %q does not carry position %q", cut, err, want)
		}
	}
}

// TestWriteRejectsOutOfRangeTids is the regression test for the tid
// encoding asymmetry: tids that cannot round-trip through the binary
// varint encoding must be rejected at write time with the event's
// position, by both the batch writer and the streaming writer.
func TestWriteRejectsOutOfRangeTids(t *testing.T) {
	bad := []Trace{
		{Wr(0, 1), Wr(-3, 2)}, // negative tid
		{Wr(0, 1), Event{Kind: Fork, Tid: 0, Target: 1<<31 + 5}}, // forked tid > 2^31-1
		{Wr(0, 1), Event{Kind: Join, Tid: 0, Target: 1 << 40}},   // joined tid overflows int32
		{Wr(0, 1), Barrier(7, 0, -2)},                            // negative barrier participant
		{Event{Kind: Read, Tid: -1, Target: 0}},                  // negative tid, first event
	}
	for i, tr := range bad {
		for _, format := range []Format{Text, Binary} {
			var buf bytes.Buffer
			var err error
			if format == Binary {
				err = WriteBinary(&buf, tr)
			} else {
				err = WriteText(&buf, tr)
			}
			if err == nil {
				t.Errorf("case %d (%v): batch write accepted out-of-range tid", i, format)
				continue
			}
			want := fmt.Sprintf("event %d:", len(tr)-1)
			if !strings.Contains(err.Error(), want) {
				t.Errorf("case %d (%v): error %q does not carry position %q", i, format, err, want)
			}

			buf.Reset()
			w := NewWriter(&buf, format)
			var werr error
			for _, e := range tr {
				if werr = w.Write(e); werr != nil {
					break
				}
			}
			if werr == nil {
				werr = w.Flush()
			}
			if werr == nil {
				t.Errorf("case %d (%v): streaming Writer accepted out-of-range tid", i, format)
			} else if !strings.Contains(werr.Error(), want) {
				t.Errorf("case %d (%v): streaming error %q does not carry position %q", i, format, werr, want)
			}
		}
	}
}

// TestReadRejectsOutOfRangeTids checks the read side: a forged binary
// stream carrying a tid beyond int32 is rejected with its position, not
// silently truncated into a different thread id.
func TestReadRejectsOutOfRangeTids(t *testing.T) {
	forge := func(kind byte, fields ...uint64) []byte {
		var buf bytes.Buffer
		buf.WriteString(string(binaryMagic))
		buf.WriteByte(kind)
		var tmp [10]byte
		for _, f := range fields {
			n := putUvarint(tmp[:], f)
			buf.Write(tmp[:n])
		}
		return buf.Bytes()
	}
	cases := [][]byte{
		forge(byte(Read), 1<<31, 5), // tid just past the cap
		forge(byte(Fork), 0, 1<<31), // forked tid past the cap
		forge(byte(Join), 0, 1<<40), // joined tid far past the cap
	}
	for i, raw := range cases {
		if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: ReadBinary accepted an out-of-range tid", i)
		}
		sc := NewScanner(bytes.NewReader(raw))
		for sc.Scan() {
		}
		err := sc.Err()
		if err == nil {
			t.Errorf("case %d: Scanner accepted an out-of-range tid", i)
		} else if !strings.Contains(err.Error(), "event 0:") {
			t.Errorf("case %d: error %q does not carry position", i, err)
		}
	}
}

func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}
