package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func scanAll(t *testing.T, r *Scanner) Trace {
	t.Helper()
	var tr Trace
	for r.Scan() {
		tr = append(tr, r.Event())
	}
	if err := r.Err(); err != nil {
		t.Fatalf("scan error: %v", err)
	}
	return tr
}

func TestScannerTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, NewScanner(&buf))
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("got %v, want %v", got, tr)
	}
}

func TestScannerBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(&buf)
	got := scanAll(t, sc)
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("got %v, want %v", got, tr)
	}
	if sc.Index() != len(tr) {
		t.Errorf("Index = %d, want %d", sc.Index(), len(tr))
	}
}

func TestScannerSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nrd 0 x1\n  # inline\nwr 1 x2"
	got := scanAll(t, NewScanner(strings.NewReader(in)))
	want := Trace{Rd(0, 1), Wr(1, 2)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestScannerReportsErrors(t *testing.T) {
	sc := NewScanner(strings.NewReader("rd 0 x1\nbogus line\n"))
	if !sc.Scan() {
		t.Fatal("first event should scan")
	}
	if sc.Scan() {
		t.Fatal("bogus line should fail")
	}
	if sc.Err() == nil {
		t.Fatal("Err must report the parse failure")
	}
	if sc.Scan() {
		t.Fatal("scanner must stay failed")
	}
}

func TestScannerTruncatedBinary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{Barrier(0, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	sc := NewScanner(bytes.NewReader(b[:len(b)-1]))
	if sc.Scan() {
		t.Fatal("truncated event scanned")
	}
	if sc.Err() == nil {
		t.Fatal("truncation must surface as an error")
	}
}

func TestScannerEmptyInput(t *testing.T) {
	sc := NewScanner(strings.NewReader(""))
	if sc.Scan() {
		t.Fatal("empty input scanned")
	}
	if sc.Err() != nil {
		t.Fatalf("clean EOF reported as error: %v", sc.Err())
	}
}

func TestStreamingWriterMatchesBatchWriters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomTrace(rng, 300)
	for _, f := range []Format{Text, Binary} {
		var streamed, batch bytes.Buffer
		w := NewWriter(&streamed, f)
		for _, e := range tr {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		var err error
		if f == Text {
			err = WriteText(&batch, tr)
		} else {
			err = WriteBinary(&batch, tr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
			t.Errorf("format %d: streamed output differs from batch output", f)
		}
	}
}

func TestEmptyBinaryWriterStillValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Binary)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("empty binary trace unreadable: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestValidatorIncrementalMatchesBatch(t *testing.T) {
	cases := []Trace{
		{ForkOf(0, 1), Wr(1, 1), JoinOf(0, 1)},
		{Acq(0, 1), Acq(0, 1)},
		{Rel(0, 1)},
		{ForkOf(0, 1), JoinOf(0, 1)},
	}
	for i, tr := range cases {
		batch := tr.Validate()
		v := NewValidator()
		var inc error
		for _, e := range tr {
			if inc = v.Event(e); inc != nil {
				break
			}
		}
		if (batch == nil) != (inc == nil) {
			t.Errorf("case %d: batch=%v incremental=%v", i, batch, inc)
		}
		if batch != nil && inc != nil && batch.Error() != inc.Error() {
			t.Errorf("case %d: messages differ: %q vs %q", i, batch, inc)
		}
	}
}

func TestValidatorIndexInErrors(t *testing.T) {
	v := NewValidator()
	if err := v.Event(Rd(0, 1)); err != nil {
		t.Fatal(err)
	}
	err := v.Event(Rel(0, 9))
	verr, ok := err.(*ValidationError)
	if !ok || verr.Index != 1 {
		t.Errorf("err = %v", err)
	}
}

func TestScannerOffsetBinary(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	total := int64(buf.Len())
	sc := NewScanner(bytes.NewReader(buf.Bytes()))
	if got := sc.Offset(); got != 0 {
		t.Errorf("Offset before first Scan = %d, want 0", got)
	}
	prev := int64(0)
	for sc.Scan() {
		off := sc.Offset()
		if off <= prev {
			t.Fatalf("Offset not strictly increasing: %d after %d (event %d)", off, prev, sc.Index()-1)
		}
		if off > total {
			t.Fatalf("Offset %d beyond input size %d", off, total)
		}
		prev = off
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if prev != total {
		t.Errorf("final Offset = %d, want %d (whole input consumed)", prev, total)
	}
}

func TestScannerOffsetText(t *testing.T) {
	in := "# comment\nwr 0 x1\n\nrd 1 x1\n"
	sc := NewScanner(strings.NewReader(in))
	var offs []int64
	for sc.Scan() {
		offs = append(offs, sc.Offset())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(offs) != 2 {
		t.Fatalf("scanned %d events, want 2", len(offs))
	}
	if offs[0] <= 0 || offs[1] <= offs[0] || offs[1] > int64(len(in)) {
		t.Errorf("offsets %v not increasing within input of %d bytes", offs, len(in))
	}
}

func TestScannerOffsetOnTruncation(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	cut := raw[:len(raw)-1] // tear the last event
	sc := NewScanner(bytes.NewReader(cut))
	for sc.Scan() {
	}
	err := sc.Err()
	if err == nil {
		t.Fatal("truncated stream scanned cleanly")
	}
	if !strings.Contains(err.Error(), "at byte") {
		t.Errorf("truncation error %q does not report a byte position", err)
	}
	if off := sc.Offset(); off > int64(len(cut)) {
		t.Errorf("Offset %d beyond truncated input size %d", off, len(cut))
	}
}
