package trace

import (
	"fmt"
	"strings"
)

// Trace is a finite sequence of events, one program execution.
type Trace []Event

// String renders the trace in the text format, one event per line.
func (tr Trace) String() string {
	var b strings.Builder
	for _, e := range tr {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Threads returns the number of distinct threads mentioned by the trace,
// assuming dense thread ids starting at 0 (max id + 1).
func (tr Trace) Threads() int {
	maxID := int32(-1)
	for _, e := range tr {
		if e.Kind == BarrierRelease {
			for _, t := range e.Tids {
				if t > maxID {
					maxID = t
				}
			}
			continue
		}
		if e.Tid > maxID {
			maxID = e.Tid
		}
		if e.Kind == Fork || e.Kind == Join {
			if u := int32(e.Target); u > maxID {
				maxID = u
			}
		}
	}
	return int(maxID) + 1
}

// Vars returns the set of ordinary (non-volatile) variables accessed.
func (tr Trace) Vars() []uint64 {
	seen := map[uint64]bool{}
	var vars []uint64
	for _, e := range tr {
		if e.Kind.IsAccess() && !seen[e.Target] {
			seen[e.Target] = true
			vars = append(vars, e.Target)
		}
	}
	return vars
}

// Counts tallies the trace by operation class; the evaluation's Figure 2
// reports these proportions (82.3% reads, 14.5% writes, 3.3% other).
type Counts struct {
	Reads  int
	Writes int
	Other  int
}

// Total returns the number of events counted.
func (c Counts) Total() int { return c.Reads + c.Writes + c.Other }

// Count tallies the trace.
func (tr Trace) Count() Counts {
	var c Counts
	for _, e := range tr {
		switch e.Kind {
		case Read:
			c.Reads++
		case Write:
			c.Writes++
		default:
			c.Other++
		}
	}
	return c
}

// ValidationError describes the first violation of the feasibility
// constraints of Section 2.1 found in a trace.
type ValidationError struct {
	Index int    // position of the offending event
	Event Event  // the offending event
	Msg   string // what constraint it violates
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("trace: event %d (%s): %s", e.Index, e.Event, e.Msg)
}

// Validate checks the well-formedness constraints on traces from
// Section 2.1:
//
//  1. no thread acquires a lock previously acquired but not released
//     (locks are not re-entrant at the trace level; the dispatcher filters
//     re-entrant acquires before they reach a detector),
//  2. no thread releases a lock it did not previously acquire,
//  3. no instructions of a thread u precede fork(t,u) or follow
//     join(v,u), and
//  4. there is at least one instruction of thread u between fork(t,u)
//     and join(v,u).
//
// Thread 0 is the initial thread and needs no fork. A thread may only
// wait on a lock it holds, and waiting releases the lock (the wake-up is
// a separate acquire). A BarrierRelease requires every participant to be
// alive.
//
// For streams too large to hold in memory, use Validator directly.
func (tr Trace) Validate() error {
	v := NewValidator()
	for _, e := range tr {
		if err := v.Event(e); err != nil {
			return err
		}
	}
	return nil
}

// Validator checks the Section 2.1 feasibility constraints incrementally,
// one event at a time; Trace.Validate is a convenience wrapper over it.
type Validator struct {
	state     map[int32]int
	active    map[int32]bool // executed at least one instruction
	lockOwner map[uint64]int32
	index     int
}

const (
	vUnborn = iota
	vAlive
	vDead
)

// NewValidator returns a validator in the initial state (thread 0
// running, no locks held).
func NewValidator() *Validator {
	return &Validator{
		state:     map[int32]int{0: vAlive},
		active:    map[int32]bool{},
		lockOwner: map[uint64]int32{},
	}
}

// Event checks one event against the constraints and advances the
// state. The returned error, if any, is a *ValidationError carrying the
// event's position in the stream.
func (v *Validator) Event(e Event) error {
	i := v.index
	v.index++
	fail := func(msg string, args ...any) error {
		return &ValidationError{Index: i, Event: e, Msg: fmt.Sprintf(msg, args...)}
	}

	if e.Kind == BarrierRelease {
		for _, t := range e.Tids {
			if v.state[t] != vAlive {
				return fail("barrier releases thread %d which is not running", t)
			}
			v.active[t] = true
		}
		return nil
	}
	if v.state[e.Tid] != vAlive {
		return fail("thread %d is not running", e.Tid)
	}
	v.active[e.Tid] = true
	switch e.Kind {
	case Acquire:
		if owner, held := v.lockOwner[e.Target]; held {
			return fail("lock m%d already held by thread %d", e.Target, owner)
		}
		v.lockOwner[e.Target] = e.Tid
	case Release:
		owner, held := v.lockOwner[e.Target]
		if !held || owner != e.Tid {
			return fail("thread %d releases lock m%d it does not hold", e.Tid, e.Target)
		}
		delete(v.lockOwner, e.Target)
	case Wait:
		owner, held := v.lockOwner[e.Target]
		if !held || owner != e.Tid {
			return fail("thread %d waits on lock m%d it does not hold", e.Tid, e.Target)
		}
		delete(v.lockOwner, e.Target) // waiting releases the lock
	case Fork:
		u := int32(e.Target)
		if u == e.Tid {
			return fail("thread %d forks itself", e.Tid)
		}
		if v.state[u] != vUnborn {
			return fail("thread %d already exists", u)
		}
		v.state[u] = vAlive
	case Join:
		u := int32(e.Target)
		if u == e.Tid {
			return fail("thread %d joins itself", e.Tid)
		}
		if v.state[u] != vAlive {
			return fail("join of thread %d which is not running", u)
		}
		if !v.active[u] {
			return fail("join of thread %d which executed no instruction", u)
		}
		v.state[u] = vDead
	}
	return nil
}
