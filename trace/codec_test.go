package trace

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() Trace {
	return Trace{
		ForkOf(0, 1),
		Event{Kind: TxBegin, Tid: 1},
		Wr(1, 3),
		Rd(1, 3),
		Acq(1, 0),
		Rel(1, 0),
		VWr(1, 2),
		VRd(0, 2),
		Event{Kind: Wait, Tid: 0, Target: 9},
		Event{Kind: Notify, Tid: 1, Target: 9},
		Barrier(4, 0, 1),
		ChSend(1, 5, 0),
		ChRecv(0, 5, 0),
		ChSend(1, 6, 3),
		ChClose(1, 6, 3),
		ChRecv(0, 6, 3),
		Event{Kind: TxEnd, Tid: 1},
		JoinOf(0, 1),
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, tr)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, tr)
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nrd 0 x1\n   \n# another\nwr 1 x2\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Trace{Rd(0, 1), Wr(1, 2)}
	if !reflect.DeepEqual(tr, want) {
		t.Errorf("got %v, want %v", tr, want)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"frobnicate 0 x1",  // unknown op
		"rd 0",             // missing operand
		"rd 0 m1",          // wrong sigil
		"rd zero x1",       // bad tid
		"rd -1 x1",         // negative tid
		"fork 0 x1",        // fork target is a tid, not a var
		"barrier b0",       // no participants
		"barrier x0 1",     // wrong sigil
		"txbegin 0 extra",  // too many operands
		"acq 0 m1 garbage", // too many operands
		"chsend 0 c1",      // missing capacity
		"chrecv 0 x1 0",    // wrong sigil
		"chclose 0 c1 -1",  // negative capacity
		"chsend 0 c1 9999999", // capacity above MaxChanCap
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText(%q) succeeded, want error", in)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("BOGUS\n")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("FTRK1\n\xff")); err == nil {
		t.Error("bad kind accepted")
	}
	// Truncated event payload.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{Rd(0, 1)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestSniff(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{Rd(0, 1)}); err != nil {
		t.Fatal(err)
	}
	isBin, err := Sniff(bufio.NewReader(&buf))
	if err != nil || !isBin {
		t.Errorf("Sniff(binary) = %v,%v", isBin, err)
	}
	isBin, err = Sniff(bufio.NewReader(strings.NewReader("rd 0 x1\n")))
	if err != nil || isBin {
		t.Errorf("Sniff(text) = %v,%v", isBin, err)
	}
	isBin, err = Sniff(bufio.NewReader(strings.NewReader("")))
	if err != nil || isBin {
		t.Errorf("Sniff(empty) = %v,%v", isBin, err)
	}
}

// randomTrace produces an arbitrary (not necessarily feasible) trace for
// codec round-trip property tests; codecs must not care about feasibility.
func randomTrace(rng *rand.Rand, n int) Trace {
	tr := make(Trace, n)
	for i := range tr {
		k := Kind(rng.Intn(int(numKinds)))
		e := Event{Kind: k, Tid: int32(rng.Intn(64)), Target: uint64(rng.Intn(1 << 16))}
		if k == TxBegin || k == TxEnd {
			e.Target = 0 // tx boundaries carry no target
		}
		if k == BarrierRelease {
			e.Tid = 0
			e.Tids = make([]int32, 1+rng.Intn(4))
			for j := range e.Tids {
				e.Tids[j] = int32(rng.Intn(64))
			}
		}
		if k == ChanSend || k == ChanRecv || k == ChanClose {
			e.Cap = int32(rng.Intn(8))
		}
		tr[i] = e
	}
	return tr
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, int(size)%64+1)

		var tb, bb bytes.Buffer
		if err := WriteText(&tb, tr); err != nil {
			return false
		}
		fromText, err := ReadText(&tb)
		if err != nil {
			t.Logf("text decode: %v", err)
			return false
		}
		if err := WriteBinary(&bb, tr); err != nil {
			return false
		}
		fromBin, err := ReadBinary(&bb)
		if err != nil {
			t.Logf("binary decode: %v", err)
			return false
		}
		return reflect.DeepEqual(fromText, tr) && reflect.DeepEqual(fromBin, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinaryIsSmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 4096)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, tr); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bb.Len(), tb.Len())
	}
}

// TestUnassignedKindRejected pins the forward-compatibility contract that
// let decoders built before the chan kinds reject them cleanly instead of
// misparsing: any kind byte >= numKinds fails decoding in both the batch
// reader and the scanner with a "bad kind" error.
func TestUnassignedKindRejected(t *testing.T) {
	in := append([]byte(binaryMagic), byte(numKinds), 0, 0)
	if _, err := ReadBinary(bytes.NewReader(in)); err == nil || !strings.Contains(err.Error(), "bad kind") {
		t.Errorf("ReadBinary(kind %d) = %v, want bad-kind error", numKinds, err)
	}
	sc := NewScanner(bytes.NewReader(in))
	for sc.Scan() {
	}
	if err := sc.Err(); err == nil || !strings.Contains(err.Error(), "bad kind") {
		t.Errorf("Scanner(kind %d) = %v, want bad-kind error", numKinds, err)
	}
	// And the text mnemonics for the chan kinds were never parseable by the
	// pre-chan grammar: KindFromString is the only gate, so misparsing was
	// impossible — an unknown mnemonic is a hard error.
	if _, err := ReadText(strings.NewReader("chbogus 0 c1 0\n")); err == nil {
		t.Error("unknown chan-like mnemonic accepted")
	}
}
