package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements two interchangeable on-disk encodings for traces.
//
// The text format is line-oriented and human-editable: one event per line,
// "<kind> <tid> <target>" with sigils on targets (x=variable, m=lock,
// v=volatile, b=barrier), e.g.
//
//	fork 0 1
//	wr 1 x3
//	rel 1 m0
//	barrier b0 0 1
//
// Blank lines and lines starting with '#' are ignored.
//
// The binary format is a compact varint stream for large generated traces:
// the magic "FTRK1\n", then per event: kind byte, tid uvarint, target
// uvarint, and for BarrierRelease a count uvarint followed by the
// participant tids.

const binaryMagic = "FTRK1\n"

// maxWireTid is the largest thread id either codec accepts. Tids are
// int32 in memory; the binary format stores them as uvarints, so without
// this bound a tid >= 2^31 would silently truncate on decode and a
// negative tid would encode as a 10-byte varint that decodes to garbage.
// Both directions reject out-of-range tids with a positional error.
const maxWireTid = uint64(1<<31 - 1)

// checkWireTids rejects events whose thread ids or channel capacities
// cannot round-trip through the codecs: negative tids, fork/join targets
// or barrier participants outside the int32 range, and chan capacities
// outside [0, MaxChanCap]. The index i positions the error in the stream.
func checkWireTids(i int, e Event) error {
	if e.Kind != BarrierRelease && e.Tid < 0 {
		return fmt.Errorf("trace: event %d: negative thread id %d", i, e.Tid)
	}
	switch e.Kind {
	case Fork, Join:
		if e.Target > maxWireTid {
			return fmt.Errorf("trace: event %d: thread id %d out of range [0, %d]", i, e.Target, maxWireTid)
		}
	case BarrierRelease:
		for _, t := range e.Tids {
			if t < 0 {
				return fmt.Errorf("trace: event %d: negative thread id %d", i, t)
			}
		}
	case ChanSend, ChanRecv, ChanClose:
		if e.Cap < 0 || e.Cap > MaxChanCap {
			return fmt.Errorf("trace: event %d: channel capacity %d out of range [0, %d]", i, e.Cap, MaxChanCap)
		}
	}
	return nil
}

// WriteText encodes the trace in the text format.
func WriteText(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	for i, e := range tr {
		if err := checkWireTids(i, e); err != nil {
			return err
		}
		if _, err := bw.WriteString(e.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a text-format trace.
func ReadText(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineno, err)
		}
		tr = append(tr, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

func parseLine(line string) (Event, error) {
	fields := strings.Fields(line)
	kind, ok := KindFromString(fields[0])
	if !ok {
		return Event{}, fmt.Errorf("unknown operation %q", fields[0])
	}
	var e Event
	e.Kind = kind

	parseTarget := func(s, sigil string) (uint64, error) {
		if !strings.HasPrefix(s, sigil) {
			return 0, fmt.Errorf("target %q must start with %q", s, sigil)
		}
		return strconv.ParseUint(s[len(sigil):], 10, 64)
	}
	parseTid := func(s string) (int32, error) {
		n, err := strconv.ParseInt(s, 10, 32)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad thread id %q", s)
		}
		return int32(n), nil
	}

	switch kind {
	case Read, Write, VolatileRead, VolatileWrite, Acquire, Release, Wait, Notify:
		if len(fields) != 3 {
			return Event{}, fmt.Errorf("%s needs 2 operands", kind)
		}
		tid, err := parseTid(fields[1])
		if err != nil {
			return Event{}, err
		}
		sigil := "x"
		switch kind {
		case VolatileRead, VolatileWrite:
			sigil = "v"
		case Acquire, Release, Wait, Notify:
			sigil = "m"
		}
		target, err := parseTarget(fields[2], sigil)
		if err != nil {
			return Event{}, err
		}
		e.Tid, e.Target = tid, target
	case Fork, Join:
		if len(fields) != 3 {
			return Event{}, fmt.Errorf("%s needs 2 operands", kind)
		}
		tid, err := parseTid(fields[1])
		if err != nil {
			return Event{}, err
		}
		u, err := parseTid(fields[2])
		if err != nil {
			return Event{}, err
		}
		e.Tid, e.Target = tid, uint64(u)
	case TxBegin, TxEnd:
		if len(fields) != 2 {
			return Event{}, fmt.Errorf("%s needs 1 operand", kind)
		}
		tid, err := parseTid(fields[1])
		if err != nil {
			return Event{}, err
		}
		e.Tid = tid
	case ChanSend, ChanRecv, ChanClose:
		if len(fields) != 4 {
			return Event{}, fmt.Errorf("%s needs 3 operands", kind)
		}
		tid, err := parseTid(fields[1])
		if err != nil {
			return Event{}, err
		}
		target, err := parseTarget(fields[2], "c")
		if err != nil {
			return Event{}, err
		}
		capv, err := strconv.ParseInt(fields[3], 10, 32)
		if err != nil || capv < 0 || int32(capv) > MaxChanCap {
			return Event{}, fmt.Errorf("bad channel capacity %q", fields[3])
		}
		e.Tid, e.Target, e.Cap = tid, target, int32(capv)
	case BarrierRelease:
		if len(fields) < 3 {
			return Event{}, fmt.Errorf("barrier needs an id and at least one thread")
		}
		target, err := parseTarget(fields[1], "b")
		if err != nil {
			return Event{}, err
		}
		e.Target = target
		for _, f := range fields[2:] {
			t, err := parseTid(f)
			if err != nil {
				return Event{}, err
			}
			e.Tids = append(e.Tids, t)
		}
	default:
		return Event{}, fmt.Errorf("unhandled operation %q", fields[0])
	}
	return e, nil
}

// WriteBinary encodes the trace in the binary format.
func WriteBinary(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	for i, e := range tr {
		if err := checkWireTids(i, e); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.Tid)); err != nil {
			return err
		}
		if err := putUvarint(e.Target); err != nil {
			return err
		}
		if e.Kind == BarrierRelease {
			if err := putUvarint(uint64(len(e.Tids))); err != nil {
				return err
			}
			for _, t := range e.Tids {
				if err := putUvarint(uint64(t)); err != nil {
					return err
				}
			}
		}
		if e.Kind == ChanSend || e.Kind == ChanRecv || e.Kind == ChanClose {
			if err := putUvarint(uint64(e.Cap)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary-format trace.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var tr Trace
	for {
		kb, err := br.ReadByte()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		if Kind(kb) >= numKinds {
			return nil, fmt.Errorf("trace: event %d: bad kind %d", len(tr), kb)
		}
		tid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", len(tr), err)
		}
		if tid > maxWireTid {
			return nil, fmt.Errorf("trace: event %d: thread id %d out of range [0, %d]", len(tr), tid, maxWireTid)
		}
		target, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", len(tr), err)
		}
		e := Event{Kind: Kind(kb), Tid: int32(tid), Target: target}
		if (e.Kind == Fork || e.Kind == Join) && target > maxWireTid {
			return nil, fmt.Errorf("trace: event %d: thread id %d out of range [0, %d]", len(tr), target, maxWireTid)
		}
		if e.Kind == BarrierRelease {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", len(tr), err)
			}
			if n > 1<<20 {
				return nil, fmt.Errorf("trace: event %d: absurd barrier size %d", len(tr), n)
			}
			e.Tids = make([]int32, n)
			for i := range e.Tids {
				t, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: event %d: %w", len(tr), err)
				}
				if t > maxWireTid {
					return nil, fmt.Errorf("trace: event %d: thread id %d out of range [0, %d]", len(tr), t, maxWireTid)
				}
				e.Tids[i] = int32(t)
			}
		}
		if e.Kind == ChanSend || e.Kind == ChanRecv || e.Kind == ChanClose {
			c, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", len(tr), err)
			}
			if c > uint64(MaxChanCap) {
				return nil, fmt.Errorf("trace: event %d: channel capacity %d out of range [0, %d]", len(tr), c, MaxChanCap)
			}
			e.Cap = int32(c)
		}
		tr = append(tr, e)
	}
}

// Sniff reports whether the reader starts with the binary magic, without
// consuming input. It is used by cmd/racedetect to auto-detect the format.
func Sniff(r *bufio.Reader) (binaryFormat bool, err error) {
	head, err := r.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return false, err
	}
	return string(head) == binaryMagic, nil
}
