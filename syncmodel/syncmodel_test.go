package syncmodel

import (
	"testing"

	"fasttrack"
)

func monitor() *fasttrack.Monitor {
	return fasttrack.NewMonitor(fasttrack.WithHints(fasttrack.Hints{Threads: 4, Vars: 8}))
}

func wantRaces(t *testing.T, m *fasttrack.Monitor, want int, label string) {
	t.Helper()
	if races := m.Races(); len(races) != want {
		t.Errorf("%s: %d races, want %d: %v", label, len(races), want, races)
	}
}

func TestRWMutexWriterThenReaders(t *testing.T) {
	m := monitor()
	rw := NewRWMutex(m, 1)
	m.Fork(0, 1)
	m.Fork(0, 2)
	rw.Lock(0)
	m.Write(0, 5)
	rw.Unlock(0)
	for _, tid := range []int32{1, 2} {
		rw.RLock(tid)
		m.Read(tid, 5)
		rw.RUnlock(tid)
	}
	wantRaces(t, m, 0, "write then reads")
}

func TestRWMutexReadersThenWriter(t *testing.T) {
	m := monitor()
	rw := NewRWMutex(m, 1)
	m.Fork(0, 1)
	m.Fork(0, 2)
	rw.Lock(0)
	m.Write(0, 5)
	rw.Unlock(0)
	rw.RLock(1)
	m.Read(1, 5)
	rw.RUnlock(1)
	rw.RLock(2)
	m.Read(2, 5)
	rw.RUnlock(2)
	// The writer must be ordered after BOTH readers.
	rw.Lock(0)
	m.Write(0, 5)
	rw.Unlock(0)
	wantRaces(t, m, 0, "reads then write")
}

func TestRWMutexCatchesReaderWriting(t *testing.T) {
	// A thread writing under only a read lock races with another reader's
	// read: read critical sections are unordered.
	m := monitor()
	rw := NewRWMutex(m, 1)
	m.Fork(0, 1)
	rw.RLock(0)
	m.Write(0, 5) // bug: write under read lock
	rw.RUnlock(0)
	rw.RLock(1)
	m.Read(1, 5)
	rw.RUnlock(1)
	wantRaces(t, m, 1, "write under read lock")
}

func TestRWMutexCatchesUnprotectedAccess(t *testing.T) {
	m := monitor()
	rw := NewRWMutex(m, 1)
	m.Fork(0, 1)
	rw.Lock(0)
	m.Write(0, 5)
	rw.Unlock(0)
	m.Read(1, 5) // no lock at all
	wantRaces(t, m, 1, "unprotected read")
}

func TestTwoRWMutexesAreIndependent(t *testing.T) {
	m := monitor()
	a := NewRWMutex(m, 1)
	b := NewRWMutex(m, 2)
	m.Fork(0, 1)
	a.Lock(0)
	m.Write(0, 5)
	a.Unlock(0)
	b.Lock(1) // different lock: no ordering
	m.Write(1, 5)
	b.Unlock(1)
	wantRaces(t, m, 1, "cross-mutex accesses")
}

func TestSemaphoreHandoff(t *testing.T) {
	m := monitor()
	sem := NewSemaphore(m, 3)
	m.Fork(0, 1)
	m.Write(0, 5)
	sem.Release(0)
	sem.Acquire(1)
	m.Read(1, 5)
	wantRaces(t, m, 0, "semaphore handoff")
}

func TestSemaphoreWithoutHandoffRaces(t *testing.T) {
	m := monitor()
	sem := NewSemaphore(m, 3)
	m.Fork(0, 1)
	m.Write(0, 5)
	sem.Acquire(1) // acquire BEFORE the release: no edge
	sem.Release(0)
	m.Read(1, 5)
	wantRaces(t, m, 1, "acquire before release")
}

func TestLatchWaitGroupPattern(t *testing.T) {
	m := monitor()
	latch := NewLatch(m, 9)
	m.Fork(0, 1)
	m.Fork(0, 2)
	// Workers produce, count down.
	m.Write(1, 1)
	latch.CountDown(1)
	m.Write(2, 2)
	latch.CountDown(2)
	// Main awaits, then reads everything.
	latch.Await(0)
	m.Read(0, 1)
	m.Read(0, 2)
	wantRaces(t, m, 0, "waitgroup pattern")
}

func TestLatchMissingCountDownRaces(t *testing.T) {
	m := monitor()
	latch := NewLatch(m, 9)
	m.Fork(0, 1)
	m.Write(1, 1) // worker never counts down
	latch.Await(0)
	m.Read(0, 1)
	wantRaces(t, m, 1, "missing countdown")
}

func TestOncePublication(t *testing.T) {
	m := monitor()
	once := NewOnce(m, 4)
	m.Fork(0, 1)
	m.Write(0, 5) // initialize
	once.Ran(0)
	once.Observed(1)
	m.Read(1, 5)
	wantRaces(t, m, 0, "once publication")
}

func TestChannelSendRecv(t *testing.T) {
	m := monitor()
	ch := NewChannel(m, 6, 4)
	m.Fork(0, 1)
	m.Write(0, 5)
	ch.Send(0)
	ch.Recv(1)
	m.Read(1, 5)
	wantRaces(t, m, 0, "buffered channel handoff")
}

func TestUnbufferedChannelBackEdge(t *testing.T) {
	// For unbuffered channels a receive happens before the send
	// completes, so the sender may read what the receiver wrote before
	// receiving. (The send event is recorded pre-operation, so a send
	// whose receive has not been recorded yet is a send still blocked in
	// the rendezvous; a later send is ordered after that receive.)
	m := monitor()
	ch := NewChannel(m, 6, 0)
	m.Fork(0, 1)
	m.Write(1, 5) // receiver's earlier write
	ch.Recv(1)
	ch.Send(0) // send completion ordered after the receive
	m.Read(0, 5)
	wantRaces(t, m, 0, "unbuffered back edge")

	// With a buffered channel the same schedule has no back edge: the
	// send completes without waiting for any receive.
	m2 := monitor()
	ch2 := NewChannel(m2, 6, 4)
	m2.Fork(0, 1)
	m2.Write(1, 5)
	ch2.Recv(1)
	ch2.Send(0)
	m2.Read(0, 5)
	wantRaces(t, m2, 1, "buffered has no back edge")
}

func TestChannelWithoutRecvRaces(t *testing.T) {
	m := monitor()
	ch := NewChannel(m, 6, 4)
	m.Fork(0, 1)
	m.Write(0, 5)
	ch.Send(0)
	m.Read(1, 5) // forgot to receive first
	wantRaces(t, m, 1, "read without receive")
}

// TestBufferedChannelSlackRace is the regression test for the
// capacity-aware model: with capacity 2, two sends complete without any
// receive, so the receiver's earlier write is NOT ordered before the
// sender's later access. The old capacity-unaware encoding ordered
// every send after every prior receive and silently masked this race.
func TestBufferedChannelSlackRace(t *testing.T) {
	m := monitor()
	ch := NewChannel(m, 6, 2)
	m.Fork(0, 1)
	ch.Send(0)
	m.Write(1, 5) // receiver-side write, before its receive
	ch.Recv(1)
	ch.Send(0) // send 2 ≤ capacity: completes without the receive
	m.Read(0, 5)
	wantRaces(t, m, 1, "buffered slack race")

	// Same schedule on an unbuffered channel: send 2 waited for recv 1,
	// so the write is ordered and no race is reported.
	m2 := monitor()
	ch2 := NewChannel(m2, 6, 0)
	m2.Fork(0, 1)
	ch2.Send(0)
	m2.Write(1, 5)
	ch2.Recv(1)
	ch2.Send(0)
	m2.Read(0, 5)
	wantRaces(t, m2, 0, "unbuffered same schedule")
}

// TestChannelCloseEdges: close happens before a receive observing the
// closed channel, and a receive of a value sent before the close is not
// ordered after the close.
func TestChannelCloseEdges(t *testing.T) {
	m := monitor()
	ch := NewChannel(m, 6, 4)
	m.Fork(0, 1)
	ch.Send(0)
	m.Write(0, 5)
	ch.Close(0)
	ch.Recv(1) // drains the buffered value: not ordered after the close
	ch.Recv(1) // observes closed: ordered after the close
	m.Read(1, 5)
	wantRaces(t, m, 0, "close publication")

	m2 := monitor()
	ch2 := NewChannel(m2, 6, 4)
	m2.Fork(0, 1)
	ch2.Send(0)
	m2.Write(0, 5)
	ch2.Close(0)
	ch2.Recv(1) // value sent before the write; no edge from the close
	m2.Read(1, 5)
	wantRaces(t, m2, 1, "pre-close receive is not ordered")
}

func TestCyclicBarrierPhases(t *testing.T) {
	m := monitor()
	bar := NewCyclicBarrier(m, 2, 2)
	m.Fork(0, 1)
	// Phase 1: each thread writes its own cell.
	m.Write(0, 10)
	m.Write(1, 11)
	bar.Await(0)
	bar.Await(1) // generation completes: release emitted
	// Phase 2: read each other's cells — ordered by the barrier.
	m.Read(0, 11)
	m.Read(1, 10)
	// Reuse: another generation.
	m.Write(0, 12)
	m.Write(1, 13)
	bar.Await(1)
	bar.Await(0)
	m.Read(0, 13)
	m.Read(1, 12)
	wantRaces(t, m, 0, "cyclic barrier phases")
}

func TestCyclicBarrierMissingAwaitRaces(t *testing.T) {
	m := monitor()
	bar := NewCyclicBarrier(m, 2, 2)
	m.Fork(0, 1)
	m.Write(1, 10)
	bar.Await(0)
	// Thread 1 never awaited: its write is unordered with thread 0's
	// post-barrier read.
	m.Read(0, 10)
	wantRaces(t, m, 1, "missing await")
}

func TestCyclicBarrierPanicsOnBadParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for parties < 1")
		}
	}()
	NewCyclicBarrier(monitor(), 1, 0)
}

func TestPrimitivesShareMonitorWithoutCollisions(t *testing.T) {
	// Different primitive kinds with the same numeric id must not alias.
	m := monitor()
	rw := NewRWMutex(m, 7)
	sem := NewSemaphore(m, 7)
	latch := NewLatch(m, 7)
	m.Fork(0, 1)
	rw.Lock(0)
	m.Write(0, 5)
	rw.Unlock(0)
	sem.Release(0) // must not publish the rw unlock again...
	latch.CountDown(0)
	// Thread 1 syncs only through the semaphore; variable 6 was written
	// under rw by thread 0 AFTER the semaphore release, so reading it
	// must race.
	m.Write(0, 6)
	sem.Acquire(1)
	m.Read(1, 5) // ordered: write happened before sem.Release
	m.Read(1, 6) // races: write after the release
	races := m.Races()
	if len(races) != 1 || races[0].Var != 6 {
		t.Errorf("races = %v, want exactly one on x6", races)
	}
}
