// Package syncmodel models high-level synchronization primitives on top
// of a fasttrack.Monitor, in terms of the detector's base operations
// (locks, volatiles, fork/join, barriers).
//
// The FastTrack paper handles Java monitors, volatiles and barriers
// directly and notes (Section 4) that the remaining java.util.concurrent
// primitives "can all be modeled in our representation". This package is
// that modeling for the Go analogs: read-write mutexes, semaphores,
// countdown latches (sync.WaitGroup), once-initialization, and channels.
//
// Each primitive documents the happens-before edges it induces and how
// they reduce to base events. Where a primitive's precise semantics
// would require unbounded per-element state (semaphores, buffered
// channels), the model is conservative: it may order more than the
// runtime guarantees, so it never produces false alarms but can mask
// races "through" the primitive. This is the standard trade RoadRunner
// makes for the same primitives, and each type's comment states it.
//
// Identifier spaces: every primitive is constructed with an id that must
// be unique among primitives of this package used with the same Monitor.
// Internally ids are spread across the Monitor's lock and volatile
// namespaces with per-kind tags, so they cannot collide with each other;
// they share the plain Acquire/Release and VolatileRead/Write namespaces
// with direct Monitor calls, so keep package ids below 1<<56.
package syncmodel

import (
	"sync"

	"fasttrack"
)

// Tag offsets keeping this package's locks/volatiles disjoint from each
// other. 1<<60 leaves the low namespace to direct Monitor users.
const (
	rwWriteTag = uint64(1) << 60 // volatile: write-unlock publication
	rwReadTag  = uint64(2) << 60 // volatile: read-unlock publication
	rwLockTag  = uint64(3) << 60 // lock: writer mutual exclusion
	semTag     = uint64(4) << 60 // volatile: semaphore hand-over
	latchTag   = uint64(5) << 60 // volatile: countdown publication
	onceTag    = uint64(6) << 60 // volatile: once publication
	// Channels use the detector's first-class chsend/chrecv/chclose
	// events and their own id namespace; no tag needed.
)

// RWMutex models a read-write lock.
//
// Happens-before edges (matching Go's sync.RWMutex and
// java.util.concurrent.locks.ReadWriteLock):
//
//   - a write-unlock happens before every later lock operation (read or
//     write);
//   - a read-unlock happens before every later *write* lock;
//   - two read critical sections are unordered.
//
// Reduction: write-unlock publishes on volatile W (rwWriteTag); read-
// lock reads W; read-unlock publishes on volatile R (rwReadTag); write-
// lock reads both W and R and holds an ordinary lock for writer mutual
// exclusion. The R volatile makes a write lock ordered after *all*
// preceding read-unlocks, which is exact, not conservative.
type RWMutex struct {
	m  *fasttrack.Monitor
	id uint64
}

// NewRWMutex returns a model of a read-write lock named id.
func NewRWMutex(m *fasttrack.Monitor, id uint64) *RWMutex {
	return &RWMutex{m: m, id: id}
}

// Lock records that thread tid acquired the write lock.
func (rw *RWMutex) Lock(tid int32) {
	rw.m.Acquire(tid, rwLockTag|rw.id)
	rw.m.VolatileRead(tid, rwWriteTag|rw.id) // after last write-unlock
	rw.m.VolatileRead(tid, rwReadTag|rw.id)  // after all read-unlocks
}

// Unlock records that thread tid released the write lock.
func (rw *RWMutex) Unlock(tid int32) {
	rw.m.VolatileWrite(tid, rwWriteTag|rw.id)
	rw.m.Release(tid, rwLockTag|rw.id)
}

// RLock records that thread tid acquired the lock for reading.
func (rw *RWMutex) RLock(tid int32) {
	rw.m.VolatileRead(tid, rwWriteTag|rw.id) // after last write-unlock
}

// RUnlock records that thread tid released its read lock.
func (rw *RWMutex) RUnlock(tid int32) {
	rw.m.VolatileWrite(tid, rwReadTag|rw.id) // visible to later writers
}

// Semaphore models a counting semaphore.
//
// Real semantics order each Acquire after *some* Release that provided
// its permit; which one is scheduling-dependent. The model is
// conservative: every Acquire is ordered after every preceding Release
// (one volatile per semaphore). It never false-alarms; it can mask a
// race between two threads whose only ordering claim is a permit that
// was actually provided by a third.
type Semaphore struct {
	m  *fasttrack.Monitor
	id uint64
}

// NewSemaphore returns a model of a semaphore named id.
func NewSemaphore(m *fasttrack.Monitor, id uint64) *Semaphore {
	return &Semaphore{m: m, id: id}
}

// Release records a permit release by thread tid.
func (s *Semaphore) Release(tid int32) {
	s.m.VolatileWrite(tid, semTag|s.id)
}

// Acquire records a permit acquisition by thread tid.
func (s *Semaphore) Acquire(tid int32) {
	s.m.VolatileRead(tid, semTag|s.id)
}

// Latch models a countdown latch / sync.WaitGroup: every CountDown
// (WaitGroup.Done) happens before every Await (WaitGroup.Wait) that
// observes the zero count. This is exact for the final Await; Awaits
// that return before the count reaches zero do not exist in correct
// programs.
type Latch struct {
	m  *fasttrack.Monitor
	id uint64
}

// NewLatch returns a model of a countdown latch named id.
func NewLatch(m *fasttrack.Monitor, id uint64) *Latch {
	return &Latch{m: m, id: id}
}

// CountDown records a count-down (WaitGroup.Done) by thread tid.
func (l *Latch) CountDown(tid int32) {
	l.m.VolatileWrite(tid, latchTag|l.id)
}

// Await records that thread tid returned from awaiting the latch.
func (l *Latch) Await(tid int32) {
	l.m.VolatileRead(tid, latchTag|l.id)
}

// Once models sync.Once: the initializer's completion happens before
// every Do that returns without running it.
type Once struct {
	m  *fasttrack.Monitor
	id uint64
}

// NewOnce returns a model of a once-guard named id.
func NewOnce(m *fasttrack.Monitor, id uint64) *Once {
	return &Once{m: m, id: id}
}

// Ran records that thread tid completed the initializer.
func (o *Once) Ran(tid int32) {
	o.m.VolatileWrite(tid, onceTag|o.id)
}

// Observed records that thread tid returned from Do without running the
// initializer (it observed the completed initialization).
func (o *Once) Observed(tid int32) {
	o.m.VolatileRead(tid, onceTag|o.id)
}

// CyclicBarrier models a reusable barrier for a fixed party count
// (java.util.concurrent.CyclicBarrier): when the last party arrives, the
// whole generation is released together, which is exactly the paper's
// FT BARRIER RELEASE rule — every participant's next step happens after
// every participant's previous steps.
//
// Await is not itself blocking (this package models synchronization, it
// does not provide it); call it when the real barrier's await returns,
// in any order — the release event is emitted once per full generation,
// when its last party checks in.
type CyclicBarrier struct {
	mu      sync.Mutex
	m       *fasttrack.Monitor
	id      uint64
	parties int
	arrived []int32
	gen     uint64
}

// NewCyclicBarrier returns a model of a barrier for the given number of
// parties.
func NewCyclicBarrier(m *fasttrack.Monitor, id uint64, parties int) *CyclicBarrier {
	if parties < 1 {
		panic("syncmodel: barrier needs at least one party")
	}
	return &CyclicBarrier{m: m, id: id, parties: parties}
}

// Await records that thread tid reached the barrier. When tid completes
// the current generation, the barrier release for all its participants
// is reported to the detector and the next generation begins.
func (b *CyclicBarrier) Await(tid int32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived = append(b.arrived, tid)
	if len(b.arrived) < b.parties {
		return
	}
	b.m.BarrierRelease(b.id<<8|b.gen&0xff, b.arrived...)
	b.arrived = b.arrived[:0]
	b.gen++
}

// Channel models a Go channel with its real capacity, on the detector's
// first-class chsend/chrecv/chclose events (the Monitor's ChanSend,
// ChanRecv and ChanClose methods). The Go memory model edges tracked:
//
//   - the k-th send happens before the k-th receive completes;
//   - the k-th receive happens before the (k+capacity)-th send
//     completes — for an unbuffered channel, before the k-th send
//     completes;
//   - a close happens before any receive that observes the closed
//     (drained) channel.
//
// Unlike the package's earlier volatile encoding — which ordered every
// receive after every preceding send regardless of capacity — a
// buffered channel here induces no ordering between operations that the
// runtime does not actually order, so races "through" a buffered
// channel's slack are reported (see the regression tests). Capacity 0
// is modeled conservatively (every send ordered after every preceding
// receive and vice versa); on a rendezvous channel's strictly
// alternating operations the extra edges are already implied by
// transitivity, so no precision is lost.
//
// Channel ids live in their own namespace (separate from the Monitor's
// lock and volatile namespaces), so they only need to be unique among
// channels of the same Monitor.
type Channel struct {
	m        *fasttrack.Monitor
	id       uint64
	capacity int32
}

// NewChannel returns a model of a channel named id with the given
// capacity (as in make(chan T, capacity); 0 means unbuffered).
func NewChannel(m *fasttrack.Monitor, id uint64, capacity int) *Channel {
	if capacity < 0 {
		capacity = 0
	}
	return &Channel{m: m, id: id, capacity: int32(capacity)}
}

// Send records a send on the channel by thread tid. Call it immediately
// before the real send, so the k-th send event precedes the k-th
// receive event in the monitor's serialization.
func (c *Channel) Send(tid int32) {
	c.m.ChanSend(tid, c.id, c.capacity)
}

// Recv records a receive from the channel by thread tid. Call it
// immediately after the real receive completes.
func (c *Channel) Recv(tid int32) {
	c.m.ChanRecv(tid, c.id, c.capacity)
}

// Close records that thread tid closed the channel. Call it immediately
// before the real close.
func (c *Channel) Close(tid int32) {
	c.m.ChanClose(tid, c.id, c.capacity)
}
