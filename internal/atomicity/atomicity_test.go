package atomicity

import (
	"testing"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

func feed(t *testing.T, tool rr.Tool, tr trace.Trace) []rr.Report {
	t.Helper()
	for i, e := range tr {
		tool.HandleEvent(i, e)
	}
	return tool.Races()
}

// tx wraps a thread's events in TxBegin/TxEnd.
func tx(tid int32, events ...trace.Event) trace.Trace {
	out := trace.Trace{{Kind: trace.TxBegin, Tid: tid}}
	out = append(out, events...)
	return append(out, trace.Event{Kind: trace.TxEnd, Tid: tid})
}

// TestVelodromeSerializableIsSilent: two transactions that conflict in
// one direction only are serializable.
func TestVelodromeSerializableIsSilent(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	tr = append(tr, tx(0, trace.Wr(0, 1), trace.Wr(0, 2))...)
	tr = append(tr, tx(1, trace.Rd(1, 1), trace.Rd(1, 2))...)
	if got := feed(t, NewVelodrome(), tr); len(got) != 0 {
		t.Errorf("violations on serializable history: %v", got)
	}
}

// TestVelodromeDetectsNonSerializableInterleaving: the classic
// non-atomic check-then-act interleaving forms a cycle:
// t0 reads x inside its transaction, t1 writes x, t0 writes x again.
func TestVelodromeDetectsNonSerializableInterleaving(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		{Kind: trace.TxBegin, Tid: 0},
		trace.Rd(0, 1), // t0's txn reads x
		trace.Wr(1, 1), // t1 writes x: edge t0 -> t1
		trace.Wr(0, 1), // t0 writes x: edge t1 -> t0 closes the cycle
		{Kind: trace.TxEnd, Tid: 0},
	}
	got := feed(t, NewVelodrome(), tr)
	if len(got) != 1 || got[0].Kind != rr.AtomicityViolation {
		t.Errorf("violations = %v, want one atomicity violation", got)
	}
}

// TestVelodromeLockInducedCycle: two transactions that exchange data
// through two locks in opposite orders are not serializable.
func TestVelodromeLockInducedCycle(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		{Kind: trace.TxBegin, Tid: 0},
		{Kind: trace.TxBegin, Tid: 1},
		trace.Acq(0, 1), trace.Rel(0, 1), // t0 releases lock 1
		trace.Acq(1, 1), trace.Rel(1, 1), // t1 after t0 on lock 1
		trace.Acq(1, 2), trace.Rel(1, 2), // t1 releases lock 2
		trace.Acq(0, 2), trace.Rel(0, 2), // t0 after t1 on lock 2: cycle
		{Kind: trace.TxEnd, Tid: 0},
		{Kind: trace.TxEnd, Tid: 1},
	}
	got := feed(t, NewVelodrome(), tr)
	if len(got) == 0 {
		t.Error("lock-induced cycle not detected")
	}
}

// TestVelodromeUnaryTransactionsNeverCycle: without explicit transaction
// blocks every operation is its own transaction; conflicts are then
// always serializable in trace order.
func TestVelodromeUnaryTransactionsNeverCycle(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Rd(0, 1),
		trace.Wr(1, 1),
		trace.Wr(0, 1),
		trace.Rd(1, 1),
	}
	if got := feed(t, NewVelodrome(), tr); len(got) != 0 {
		t.Errorf("unary transactions produced violations: %v", got)
	}
}

// TestVelodromeBarrierAndForkJoin: structured synchronization does not
// produce cycles.
func TestVelodromeBarrierAndForkJoin(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	tr = append(tr, tx(0, trace.Wr(0, 1))...)
	tr = append(tr, tx(1, trace.Wr(1, 2))...)
	tr = append(tr, trace.Barrier(0, 0, 1))
	tr = append(tr, tx(0, trace.Rd(0, 2))...)
	tr = append(tr, tx(1, trace.Rd(1, 1))...)
	tr = append(tr, trace.JoinOf(0, 1))
	tr = append(tr, tx(0, trace.Wr(0, 2))...)
	if got := feed(t, NewVelodrome(), tr); len(got) != 0 {
		t.Errorf("violations: %v", got)
	}
}

// TestAtomizerAcceptsReducibleTransaction: acq, locked accesses, rel is
// the canonical R* N L* shape.
func TestAtomizerAcceptsReducibleTransaction(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for tid := int32(0); tid < 2; tid++ {
		tr = append(tr, tx(tid,
			trace.Acq(tid, 9),
			trace.Rd(tid, 1),
			trace.Wr(tid, 1),
			trace.Rel(tid, 9),
		)...)
	}
	if got := feed(t, NewAtomizer(), tr); len(got) != 0 {
		t.Errorf("violations on reducible transactions: %v", got)
	}
}

// TestAtomizerRejectsAcquireAfterRelease: lock operations out of R* L*
// order within a transaction violate reducibility.
func TestAtomizerRejectsAcquireAfterRelease(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	tr = append(tr, tx(0,
		trace.Acq(0, 9),
		trace.Rel(0, 9),
		trace.Acq(0, 8), // right mover after a left mover
		trace.Rel(0, 8),
	)...)
	got := feed(t, NewAtomizer(), tr)
	if len(got) != 1 || got[0].Kind != rr.AtomicityViolation {
		t.Errorf("violations = %v", got)
	}
}

// TestAtomizerRejectsTwoRacyAccesses: two non-movers cannot both be the
// commit point. The racy variable is established first so the embedded
// Eraser classifies its accesses as non-movers.
func TestAtomizerRejectsTwoRacyAccesses(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	// Make variables 1 and 2 racy (no locks, two writers).
	tr = append(tr, trace.Wr(0, 1), trace.Wr(1, 1), trace.Wr(1, 1))
	tr = append(tr, trace.Wr(0, 2), trace.Wr(1, 2), trace.Wr(1, 2))
	tr = append(tr, tx(0,
		trace.Wr(0, 1), // first non-mover: commit point
		trace.Wr(0, 2), // second non-mover: violation
	)...)
	got := feed(t, NewAtomizer(), tr)
	if len(got) != 1 || got[0].Var != 2 {
		t.Errorf("violations = %v", got)
	}
}

// TestAtomizerIgnoresOutsideTransactions: non-transactional code is not
// checked.
func TestAtomizerIgnoresOutsideTransactions(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1),
		trace.Acq(0, 9),
		trace.Rel(0, 9),
		trace.Acq(0, 8),
		trace.Rel(0, 8),
	}
	if got := feed(t, NewAtomizer(), tr); len(got) != 0 {
		t.Errorf("violations outside transactions: %v", got)
	}
}

// TestSingleTrackAcceptsForkJoinProgram: purely fork/join-ordered
// communication is deterministic.
func TestSingleTrackAcceptsForkJoinProgram(t *testing.T) {
	tr := trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.Rd(1, 1),
		trace.Wr(1, 2),
		trace.JoinOf(0, 1),
		trace.Rd(0, 2),
	}
	if got := feed(t, NewSingleTrack(), tr); len(got) != 0 {
		t.Errorf("violations on fork/join program: %v", got)
	}
}

// TestSingleTrackAcceptsBarrierProgram: barrier-ordered phases are
// deterministic.
func TestSingleTrackAcceptsBarrierProgram(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 2),
		trace.Barrier(0, 0, 1),
		trace.Rd(0, 2),
		trace.Rd(1, 1),
	}
	if got := feed(t, NewSingleTrack(), tr); len(got) != 0 {
		t.Errorf("violations on barrier program: %v", got)
	}
}

// TestSingleTrackFlagsLockOrderedCommunication: a lock-protected shared
// counter is race-free but scheduler-dependent: nondeterministic.
func TestSingleTrackFlagsLockOrderedCommunication(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9),
		trace.Wr(0, 1),
		trace.Rel(0, 9),
		trace.Acq(1, 9),
		trace.Wr(1, 1),
		trace.Rel(1, 9),
	}
	got := feed(t, NewSingleTrack(), tr)
	if len(got) != 1 || got[0].Kind != rr.DeterminismViolation {
		t.Errorf("violations = %v", got)
	}
}

// TestSingleTrackFlagsRace: racy pairs are a fortiori nondeterministic.
func TestSingleTrackFlagsRace(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1),
	}
	got := feed(t, NewSingleTrack(), tr)
	if len(got) != 1 {
		t.Errorf("violations = %v", got)
	}
}

// TestVelodromeVolatileEdge: volatile write/read pairs create
// transactional dependencies just like lock release/acquire.
func TestVelodromeVolatileEdge(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		{Kind: trace.TxBegin, Tid: 0},
		{Kind: trace.TxBegin, Tid: 1},
		trace.VWr(0, 1), // t0 publishes
		trace.VRd(1, 1), // t1 observes: edge t0 -> t1
		trace.VWr(1, 2), // t1 publishes
		trace.VRd(0, 2), // t0 observes: edge t1 -> t0 closes the cycle
		{Kind: trace.TxEnd, Tid: 0},
		{Kind: trace.TxEnd, Tid: 1},
	}
	if got := feed(t, NewVelodrome(), tr); len(got) == 0 {
		t.Error("volatile-induced cycle not detected")
	}
}

// TestVelodromeReadersBound: the bounded reader list must not lose the
// conflict edge from the most recent readers.
func TestVelodromeReadersBound(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	tr = append(tr, trace.Event{Kind: trace.TxBegin, Tid: 1})
	tr = append(tr, trace.Rd(1, 1)) // reader inside open txn
	// Lots of unary readers from thread 0 push the ring.
	for i := 0; i < 20; i++ {
		tr = append(tr, trace.Rd(0, 1))
	}
	tr = append(tr, trace.Wr(1, 1)) // write inside t1's txn
	// Thread 0 writes: anti-dependency from recent readers -> t0's txn;
	// then t1's open txn writes again -> cycle through t0.
	tr = append(tr, trace.Event{Kind: trace.TxEnd, Tid: 1})
	if got := feed(t, NewVelodrome(), tr); len(got) != 0 {
		// Serializable history: the bound must not create spurious cycles.
		t.Errorf("spurious violations: %v", got)
	}
}

// TestSingleTrackVolatileOrderIsNondeterministic: ordering that exists
// only through a volatile is scheduler-dependent.
func TestSingleTrackVolatileOrderIsNondeterministic(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.VWr(0, 0),
		trace.VRd(1, 0),
		trace.Wr(1, 1), // race-free via the volatile, but nondeterministic
	}
	got := feed(t, NewSingleTrack(), tr)
	if len(got) != 1 || got[0].Kind != rr.DeterminismViolation {
		t.Errorf("violations = %v", got)
	}
}

// TestCheckersReportStats: every checker counts events and reports a
// shadow footprint.
func TestCheckersReportStats(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9),
		trace.Wr(0, 1),
		trace.Rel(0, 9),
	}
	for _, tool := range []rr.Tool{NewVelodrome(), NewAtomizer(), NewSingleTrack()} {
		feed(t, tool, tr)
		st := tool.Stats()
		if st.Events != int64(len(tr)) {
			t.Errorf("%s: Events = %d, want %d", tool.Name(), st.Events, len(tr))
		}
		if st.ShadowBytes <= 0 {
			t.Errorf("%s: ShadowBytes = %d", tool.Name(), st.ShadowBytes)
		}
	}
}

func TestCheckerNames(t *testing.T) {
	if NewVelodrome().Name() != "Velodrome" ||
		NewAtomizer().Name() != "Atomizer" ||
		NewSingleTrack().Name() != "SingleTrack" {
		t.Error("checker names wrong")
	}
}
