package atomicity

import (
	"fasttrack/internal/detectors/eraser"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Atomizer checks atomicity via Lipton's theory of reduction: a
// serializable block has the shape R* [N] L* — right movers (lock
// acquires), at most one non-mover (an access to racy data) at the
// commit point, then left movers (lock releases). Accesses to data that
// follows a consistent locking discipline are both-movers and never
// change phase; the discipline is judged by an embedded Eraser instance,
// exactly as in the published tool (which is why Eraser cannot be a
// meaningful *prefilter* for Atomizer — the paper's footnote 7).
//
// Each transaction runs a two-phase state machine: violations are a lock
// acquire after the commit point, or a second non-mover.
type Atomizer struct {
	disc      *eraser.Detector // locking-discipline oracle
	inLeft    []bool           // per thread: past the commit point
	committed []bool           // per thread: consumed the one non-mover
	explicit  []bool
	held      [][]uint64 // locks currently held, per thread
	access    []accessSets
	racySet   map[uint64]bool // variables the oracle has warned about
	racySeen  int             // how many oracle warnings are in racySet
	flagged   map[uint64]bool
	races     []rr.Report
	st        rr.Stats
}

// accessSets are Atomizer's per-variable read and write lock sets,
// intersected with the accessor's held locks on every access (the
// published tool's per-access mover classification).
type accessSets struct {
	read, write  []uint64
	haveR, haveW bool
}

var _ rr.Tool = (*Atomizer)(nil)

// NewAtomizer returns an Atomizer checker.
func NewAtomizer() *Atomizer {
	return &Atomizer{
		disc:    eraser.New(0, 0),
		racySet: map[uint64]bool{},
		flagged: map[uint64]bool{},
	}
}

// Name implements rr.Tool.
func (a *Atomizer) Name() string { return "Atomizer" }

func (a *Atomizer) thread(t int32) {
	for int(t) >= len(a.inLeft) {
		a.inLeft = append(a.inLeft, false)
		a.committed = append(a.committed, false)
		a.explicit = append(a.explicit, false)
	}
}

func (a *Atomizer) violation(x uint64, t int32, i int) {
	if a.flagged[x] {
		return
	}
	a.flagged[x] = true
	a.races = append(a.races, rr.Report{
		Var: x, Kind: rr.AtomicityViolation, Tid: t, PrevTid: -1, Index: i, PrevIndex: -1,
	})
}

// HandleEvent implements rr.Tool.
func (a *Atomizer) HandleEvent(i int, e trace.Event) {
	a.st.Events++
	// Feed the discipline oracle first so racy classification is current.
	a.disc.HandleEvent(i, e)

	switch e.Kind {
	case trace.TxBegin:
		a.st.CountKind(e.Kind)
		a.thread(e.Tid)
		a.explicit[e.Tid] = true
		a.inLeft[e.Tid] = false
		a.committed[e.Tid] = false
	case trace.TxEnd:
		a.st.CountKind(e.Kind)
		a.thread(e.Tid)
		a.explicit[e.Tid] = false
		a.inLeft[e.Tid] = false
		a.committed[e.Tid] = false
	case trace.Acquire:
		a.st.CountKind(e.Kind)
		a.thread(e.Tid)
		a.heldBy(e.Tid)
		a.held[e.Tid] = insertSorted(a.held[e.Tid], e.Target)
		if a.explicit[e.Tid] && a.inLeft[e.Tid] {
			// A right mover after the commit point: not reducible.
			a.violation(e.Target, e.Tid, i)
		}
	case trace.Release:
		a.st.CountKind(e.Kind)
		a.thread(e.Tid)
		a.heldBy(e.Tid)
		a.held[e.Tid] = removeSorted(a.held[e.Tid], e.Target)
		if a.explicit[e.Tid] {
			a.inLeft[e.Tid] = true
		}
	case trace.Read, trace.Write:
		if e.Kind == trace.Read {
			a.st.Reads++
		} else {
			a.st.Writes++
		}
		a.thread(e.Tid)
		a.updateAccessSets(e.Tid, e.Target, e.Kind == trace.Write)
		if !a.explicit[e.Tid] {
			return
		}
		if !a.racy(e.Target) {
			return // both-mover: lock-protected or thread-local
		}
		// Non-mover: the single commit point of the transaction.
		if a.committed[e.Tid] {
			a.violation(e.Target, e.Tid, i)
			return
		}
		a.committed[e.Tid] = true
		a.inLeft[e.Tid] = true
	default:
		a.st.CountKind(e.Kind)
	}
}

func (a *Atomizer) heldBy(t int32) {
	for int(t) >= len(a.held) {
		a.held = append(a.held, nil)
	}
}

// updateAccessSets intersects the variable's per-access lock sets with
// the accessor's held locks, the mover-classification bookkeeping the
// published Atomizer performs on every access.
func (a *Atomizer) updateAccessSets(t int32, x uint64, isWrite bool) {
	for x >= uint64(len(a.access)) {
		a.access = append(a.access, accessSets{})
	}
	a.heldBy(t)
	as := &a.access[x]
	a.st.LockSetOps++
	if isWrite {
		if !as.haveW {
			as.write = append(as.write[:0], a.held[t]...)
			as.haveW = true
		} else {
			as.write = intersectSorted(as.write, a.held[t])
		}
		return
	}
	if !as.haveR {
		as.read = append(as.read[:0], a.held[t]...)
		as.haveR = true
	} else {
		as.read = intersectSorted(as.read, a.held[t])
	}
}

// racy reports whether the discipline oracle has warned about x,
// caching warnings in a set as they appear.
func (a *Atomizer) racy(x uint64) bool {
	if races := a.disc.Races(); len(races) > a.racySeen {
		for _, r := range races[a.racySeen:] {
			a.racySet[r.Var] = true
		}
		a.racySeen = len(races)
	}
	return a.racySet[x]
}

func insertSorted(s []uint64, m uint64) []uint64 {
	lo := 0
	for lo < len(s) && s[lo] < m {
		lo++
	}
	if lo < len(s) && s[lo] == m {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = m
	return s
}

func removeSorted(s []uint64, m uint64) []uint64 {
	for i, v := range s {
		if v == m {
			return append(s[:i], s[i+1:]...)
		}
		if v > m {
			break
		}
	}
	return s
}

func intersectSorted(a, b []uint64) []uint64 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Races implements rr.Tool.
func (a *Atomizer) Races() []rr.Report { return a.races }

// Stats implements rr.Tool.
func (a *Atomizer) Stats() rr.Stats {
	st := a.st
	ds := a.disc.Stats()
	st.LockSetOps += ds.LockSetOps
	st.ShadowBytes = ds.ShadowBytes
	for i := range a.access {
		st.ShadowBytes += 16 + int64(cap(a.access[i].read)+cap(a.access[i].write))*8
	}
	return st
}
