package atomicity

import (
	"fasttrack/internal/detectors/vcbase"
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// SingleTrack checks determinism: a program is deterministic when every
// pair of conflicting accesses is ordered the same way in every
// schedule. Orderings induced by fork/join and barriers are fixed by the
// program structure; orderings induced only by lock-acquisition or
// volatile-access order depend on the scheduler. SingleTrack therefore
// tracks two happens-before relations — the full one and the
// "deterministic" one that ignores locks and volatiles — and reports a
// violation when a conflicting pair is unordered in the deterministic
// relation (racy pairs are a fortiori nondeterministic).
//
// This is the double-vector-clock structure that makes SingleTrack the
// most expensive checker of the composition experiment (104x unfiltered
// in the paper's Section 5.2): every access pays two BasicVC-style
// analyses.
type SingleTrack struct {
	full vcbase.Sync // all synchronization
	det  vcbase.Sync // fork/join/barrier only
	vars []stVar

	flagged map[uint64]bool
	races   []rr.Report
}

type stVar struct {
	rFull, wFull vc.VC
	rDet, wDet   vc.VC
}

var _ rr.Tool = (*SingleTrack)(nil)

// NewSingleTrack returns a SingleTrack checker.
func NewSingleTrack() *SingleTrack {
	return &SingleTrack{
		full:    vcbase.NewSync(0),
		det:     vcbase.NewSync(0),
		flagged: map[uint64]bool{},
	}
}

// Name implements rr.Tool.
func (s *SingleTrack) Name() string { return "SingleTrack" }

func (s *SingleTrack) variable(x uint64) *stVar {
	for x >= uint64(len(s.vars)) {
		s.vars = append(s.vars, stVar{})
	}
	return &s.vars[x]
}

func (s *SingleTrack) violation(x uint64, t int32, prev vc.Tid, i int) {
	if s.flagged[x] {
		return
	}
	s.flagged[x] = true
	s.races = append(s.races, rr.Report{
		Var: x, Kind: rr.DeterminismViolation, Tid: t, PrevTid: int32(prev), Index: i, PrevIndex: -1,
	})
}

// HandleEvent implements rr.Tool.
func (s *SingleTrack) HandleEvent(i int, e trace.Event) {
	s.full.St.Events++
	switch e.Kind {
	case trace.Read, trace.Write:
		// handled below
	case trace.Fork, trace.Join, trace.BarrierRelease:
		s.full.HandleSync(e)
		s.det.HandleSync(e)
		return
	default:
		// Locks and volatiles order the full relation only.
		s.full.HandleSync(e)
		return
	}

	tf := s.full.Thread(e.Tid)
	td := s.det.Thread(e.Tid)
	vs := s.variable(e.Target)
	t := vc.Tid(e.Tid)
	if e.Kind == trace.Read {
		s.full.St.Reads++
		// Nondeterministic iff the last write is unordered with this read
		// in the deterministic relation.
		s.full.St.VCOp += 2
		if prev := vs.wDet.FirstExceeding(td.C); prev >= 0 {
			s.violation(e.Target, e.Tid, prev, i)
		}
		_ = vs.wFull.FirstExceeding(tf.C) // full-relation race check (subsumed)
		if vs.rFull == nil {
			vs.rFull = vc.New(len(s.full.Threads))
			vs.rDet = vc.New(len(s.det.Threads))
			s.full.St.VCAlloc += 2
		}
		vs.rFull = vs.rFull.Set(t, tf.C.Get(t))
		vs.rDet = vs.rDet.Set(t, td.C.Get(t))
		return
	}
	s.full.St.Writes++
	s.full.St.VCOp += 4
	if prev := vs.wDet.FirstExceeding(td.C); prev >= 0 {
		s.violation(e.Target, e.Tid, prev, i)
	}
	if prev := vs.rDet.FirstExceeding(td.C); prev >= 0 {
		s.violation(e.Target, e.Tid, prev, i)
	}
	_ = vs.wFull.FirstExceeding(tf.C)
	_ = vs.rFull.FirstExceeding(tf.C)
	if vs.wFull == nil {
		vs.wFull = vc.New(len(s.full.Threads))
		vs.wDet = vc.New(len(s.det.Threads))
		s.full.St.VCAlloc += 2
	}
	vs.wFull = vs.wFull.Set(t, tf.C.Get(t))
	vs.wDet = vs.wDet.Set(t, td.C.Get(t))
}

// Races implements rr.Tool.
func (s *SingleTrack) Races() []rr.Report { return s.races }

// Stats implements rr.Tool.
func (s *SingleTrack) Stats() rr.Stats {
	st := s.full.St
	ds := s.det.St
	st.VCAlloc += ds.VCAlloc
	st.VCOp += ds.VCOp
	bytes := s.full.SyncShadowBytes() + s.det.SyncShadowBytes()
	for i := range s.vars {
		v := &s.vars[i]
		bytes += int64(v.rFull.Bytes() + v.wFull.Bytes() + v.rDet.Bytes() + v.wDet.Bytes())
	}
	st.ShadowBytes = bytes
	return st
}
