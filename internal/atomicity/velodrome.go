// Package atomicity implements the three heavyweight downstream checkers
// of the FastTrack paper's analysis-composition experiment (Section 5.2):
//
//   - Velodrome, a sound-and-complete dynamic atomicity checker that
//     detects cycles in the transactional happens-before graph
//     (Flanagan, Freund & Yi, PLDI 2008);
//   - Atomizer, a Lipton-reduction-based atomicity checker (Flanagan &
//     Freund, SCP 2008);
//   - SingleTrack, a dynamic determinism checker (Sadowski, Freund &
//     Flanagan, ESOP 2009).
//
// All three are deliberately expensive per memory access — that is what
// makes race-free-access prefiltering (FastTrack:Velodrome pipelines)
// profitable. They are faithful to the cited algorithms' structure but
// simplified where the originals require machinery far outside this
// paper's scope; the simplifications are noted on each type.
//
// Transactions are delimited by trace.TxBegin/TxEnd events; operations
// outside any transaction form unary transactions.
package atomicity

import (
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// txn is a node of Velodrome's transactional happens-before graph.
type txn struct {
	id      int64
	tid     int32
	succs   []*txn
	active  bool
	mark    int64 // DFS visit stamp
	flagged bool
}

// Velodrome detects non-serializable transactions as cycles in the
// transactional happens-before graph. Edges are created by transactional
// conflicts (two accesses to the same variable, at least one write, in
// different transactions), by lock release/acquire pairs, by volatiles,
// and by fork/join; program order totally orders each thread's own
// transactions. A cycle containing a transaction means no serial
// execution produces the same dependencies: an atomicity violation.
//
// Simplification vs. the published system: completed transactions are
// never garbage-collected, and cycle detection is a DFS at edge-insertion
// time rather than the paper's incremental algorithm. Both choices keep
// the checker simple and (intentionally) heavyweight.
type Velodrome struct {
	cur        []*txn // active transaction per thread
	explicit   []bool // thread is inside TxBegin/TxEnd
	lastOf     []*txn // most recent transaction per thread (program order)
	lastWrite  map[uint64]*txn
	lastReads  map[uint64][]*txn
	lockRel    map[uint64]*txn // last releasing transaction per lock
	volWrite   map[uint64]*txn
	chanSent   map[uint64]*txn // last sending/closing transaction per channel
	chanRecvd  map[uint64]*txn // last receiving transaction per channel
	nextID     int64
	dfsStamp   int64
	races      []rr.Report
	st         rr.Stats
	flaggedVar map[uint64]bool
}

var _ rr.Tool = (*Velodrome)(nil)

// NewVelodrome returns a Velodrome checker.
func NewVelodrome() *Velodrome {
	return &Velodrome{
		lastWrite:  map[uint64]*txn{},
		lastReads:  map[uint64][]*txn{},
		lockRel:    map[uint64]*txn{},
		volWrite:   map[uint64]*txn{},
		chanSent:   map[uint64]*txn{},
		chanRecvd:  map[uint64]*txn{},
		flaggedVar: map[uint64]bool{},
	}
}

// Name implements rr.Tool.
func (v *Velodrome) Name() string { return "Velodrome" }

func (v *Velodrome) thread(t int32) {
	for int(t) >= len(v.cur) {
		v.cur = append(v.cur, nil)
		v.explicit = append(v.explicit, false)
		v.lastOf = append(v.lastOf, nil)
	}
}

// current returns thread t's active transaction, opening a unary one if
// none is active.
func (v *Velodrome) current(t int32) *txn {
	v.thread(t)
	if v.cur[t] == nil {
		v.nextID++
		n := &txn{id: v.nextID, tid: t, active: true}
		if prev := v.lastOf[t]; prev != nil {
			prev.succs = append(prev.succs, n) // program order
		}
		v.lastOf[t] = n
		v.cur[t] = n
	}
	return v.cur[t]
}

// closeTxn ends thread t's active transaction (if any).
func (v *Velodrome) closeTxn(t int32) {
	v.thread(t)
	if n := v.cur[t]; n != nil {
		n.active = false
		v.cur[t] = nil
	}
}

// noVar marks edges not attributable to a variable (fork/join/barrier).
const noVar = ^uint64(0)

// edge adds u -> w and reports an atomicity violation if it closes a
// cycle through an active transaction. Duplicate suppression only
// inspects the most recent successors: a bounded check that keeps edge
// insertion O(1) while catching the overwhelmingly common immediate
// repeats.
func (v *Velodrome) edge(u, w *txn, x uint64, i int) {
	if u == nil || u == w {
		return
	}
	dup := u.succs
	if len(dup) > 8 {
		dup = dup[len(dup)-8:]
	}
	for _, s := range dup {
		if s == w {
			return // duplicate
		}
	}
	// Cycle iff w already reaches u.
	if v.reaches(w, u) {
		v.flag(w, x, i)
	}
	u.succs = append(u.succs, w)
}

// reaches performs a stamped DFS from a through succs looking for b.
func (v *Velodrome) reaches(a, b *txn) bool {
	v.dfsStamp++
	stamp := v.dfsStamp
	stack := []*txn{a}
	a.mark = stamp
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		for _, s := range n.succs {
			if s.mark != stamp {
				s.mark = stamp
				stack = append(stack, s)
			}
		}
	}
	return false
}

func (v *Velodrome) flag(n *txn, x uint64, i int) {
	if n.flagged || v.flaggedVar[x] {
		return
	}
	n.flagged = true
	v.flaggedVar[x] = true
	v.races = append(v.races, rr.Report{
		Var: x, Kind: rr.AtomicityViolation, Tid: n.tid, PrevTid: -1, Index: i, PrevIndex: -1,
	})
}

// HandleEvent implements rr.Tool.
func (v *Velodrome) HandleEvent(i int, e trace.Event) {
	v.st.Events++
	switch e.Kind {
	case trace.TxBegin:
		v.thread(e.Tid)
		v.st.CountKind(e.Kind)
		v.closeTxn(e.Tid)
		v.current(e.Tid)
		v.explicit[e.Tid] = true
	case trace.TxEnd:
		v.st.CountKind(e.Kind)
		v.closeTxn(e.Tid)
		v.explicit[e.Tid] = false
	case trace.Read:
		v.st.Reads++
		n := v.current(e.Tid)
		v.edge(v.lastWrite[e.Target], n, e.Target, i)
		v.lastReads[e.Target] = appendTxn(v.lastReads[e.Target], n)
		v.maybeCloseUnary(e.Tid)
	case trace.Write:
		v.st.Writes++
		n := v.current(e.Tid)
		v.edge(v.lastWrite[e.Target], n, e.Target, i)
		for _, r := range v.lastReads[e.Target] {
			v.edge(r, n, e.Target, i)
		}
		v.lastReads[e.Target] = v.lastReads[e.Target][:0]
		v.lastWrite[e.Target] = n
		v.maybeCloseUnary(e.Tid)
	case trace.Acquire:
		v.st.CountKind(e.Kind)
		n := v.current(e.Tid)
		v.edge(v.lockRel[e.Target], n, e.Target, i)
		v.maybeCloseUnary(e.Tid)
	case trace.Release:
		v.st.CountKind(e.Kind)
		n := v.current(e.Tid)
		v.lockRel[e.Target] = n
		v.maybeCloseUnary(e.Tid)
	case trace.VolatileRead:
		v.st.CountKind(e.Kind)
		n := v.current(e.Tid)
		v.edge(v.volWrite[e.Target], n, e.Target, i)
		v.maybeCloseUnary(e.Tid)
	case trace.VolatileWrite:
		v.st.CountKind(e.Kind)
		n := v.current(e.Tid)
		v.volWrite[e.Target] = n
		v.maybeCloseUnary(e.Tid)
	case trace.Fork:
		v.st.CountKind(e.Kind)
		parent := v.current(e.Tid)
		v.maybeCloseUnary(e.Tid)
		child := v.current(int32(e.Target))
		v.edge(parent, child, noVar, i)
		v.maybeCloseUnary(int32(e.Target))
	case trace.Join:
		v.st.CountKind(e.Kind)
		v.thread(int32(e.Target))
		childLast := v.lastOf[e.Target]
		n := v.current(e.Tid)
		v.edge(childLast, n, noVar, i)
		v.maybeCloseUnary(e.Tid)
	case trace.ChanSend:
		// Channels create transactional happens-before edges like a
		// volatile in each direction: a send is ordered after the last
		// receive (conservative for buffered channels) and publishes to
		// later receives.
		v.st.CountKind(e.Kind)
		n := v.current(e.Tid)
		v.edge(v.chanRecvd[e.Target], n, e.Target, i)
		v.chanSent[e.Target] = n
		v.maybeCloseUnary(e.Tid)
	case trace.ChanRecv:
		v.st.CountKind(e.Kind)
		n := v.current(e.Tid)
		v.edge(v.chanSent[e.Target], n, e.Target, i)
		v.chanRecvd[e.Target] = n
		v.maybeCloseUnary(e.Tid)
	case trace.ChanClose:
		// Close publishes like a send.
		v.st.CountKind(e.Kind)
		n := v.current(e.Tid)
		v.chanSent[e.Target] = n
		v.maybeCloseUnary(e.Tid)
	case trace.BarrierRelease:
		v.st.CountKind(e.Kind)
		// Model the barrier as a dedicated transaction every participant
		// synchronizes through.
		v.nextID++
		b := &txn{id: v.nextID, tid: -1}
		for _, t := range e.Tids {
			v.thread(t)
			if last := v.lastOf[t]; last != nil {
				v.edge(last, b, noVar, i)
			}
			v.closeTxn(t)
		}
		for _, t := range e.Tids {
			n := v.current(t)
			v.edge(b, n, noVar, i)
			v.maybeCloseUnary(t)
		}
	}
}

// maybeCloseUnary ends the implicit transaction of a thread that is not
// inside an explicit TxBegin/TxEnd block.
func (v *Velodrome) maybeCloseUnary(t int32) {
	if !v.explicit[t] {
		v.closeTxn(t)
	}
}

// Races implements rr.Tool.
func (v *Velodrome) Races() []rr.Report { return v.races }

// Stats implements rr.Tool.
func (v *Velodrome) Stats() rr.Stats {
	st := v.st
	st.ShadowBytes = int64(v.nextID) * 64
	return st
}

// appendTxn records a reader transaction, keeping at most the last eight
// distinct readers per variable. Older readers' anti-dependency edges are
// dropped — a documented bound that keeps per-access cost constant on
// read-shared data (the published Velodrome bounds this with transaction
// garbage collection instead).
func appendTxn(s []*txn, n *txn) []*txn {
	for _, m := range s {
		if m == n {
			return s
		}
	}
	if len(s) >= 8 {
		copy(s, s[1:])
		s[len(s)-1] = n
		return s
	}
	return append(s, n)
}
