package hb

import (
	"testing"

	"fasttrack/trace"
)

func racyVars(t *testing.T, tr trace.Trace) map[uint64]bool {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("infeasible test trace: %v", err)
	}
	return New(tr).RacyVars()
}

func TestProgramOrder(t *testing.T) {
	rv := racyVars(t, trace.Trace{trace.Wr(0, 1), trace.Rd(0, 1), trace.Wr(0, 1)})
	if len(rv) != 0 {
		t.Errorf("single-threaded trace racy: %v", rv)
	}
}

func TestPlainRace(t *testing.T) {
	rv := racyVars(t, trace.Trace{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Wr(1, 1)})
	if !rv[1] {
		t.Error("missed the unsynchronized write-write race")
	}
}

func TestLockOrdering(t *testing.T) {
	rv := racyVars(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9), trace.Wr(0, 1), trace.Rel(0, 9),
		trace.Acq(1, 9), trace.Rd(1, 1), trace.Rel(1, 9),
	})
	if len(rv) != 0 {
		t.Errorf("lock-ordered accesses racy: %v", rv)
	}
}

func TestLockOrderingIsTransitive(t *testing.T) {
	// 0 -> 1 via lock 8, 1 -> 2 via lock 9: 0's write ordered before 2's
	// read transitively.
	rv := racyVars(t, trace.Trace{
		trace.ForkOf(0, 1), trace.ForkOf(0, 2),
		trace.Wr(0, 1),
		trace.Acq(0, 8), trace.Rel(0, 8),
		trace.Acq(1, 8), trace.Rel(1, 8),
		trace.Acq(1, 9), trace.Rel(1, 9),
		trace.Acq(2, 9), trace.Rel(2, 9),
		trace.Rd(2, 1),
	})
	if len(rv) != 0 {
		t.Errorf("transitive ordering missed: %v", rv)
	}
}

func TestForkJoinOrdering(t *testing.T) {
	rv := racyVars(t, trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.Rd(1, 1),
		trace.Wr(1, 2),
		trace.JoinOf(0, 1),
		trace.Rd(0, 2),
	})
	if len(rv) != 0 {
		t.Errorf("fork/join ordering missed: %v", rv)
	}
}

func TestVolatileWriteReadEdgeOnly(t *testing.T) {
	// vwr -> vrd creates ordering; two vwr do not order each other.
	ordered := racyVars(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1), trace.VWr(0, 0),
		trace.VRd(1, 0), trace.Rd(1, 1),
	})
	if len(ordered) != 0 {
		t.Errorf("volatile publication missed: %v", ordered)
	}
	// Writer b does not happen after writer a just because both wrote
	// the volatile.
	unordered := racyVars(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1), trace.VWr(0, 0),
		trace.VWr(1, 0), trace.Rd(1, 1),
	})
	if !unordered[1] {
		t.Error("volatile write-write must not create happens-before")
	}
	// But a reader is ordered after ALL previous volatile writers.
	multi := racyVars(t, trace.Trace{
		trace.ForkOf(0, 1), trace.ForkOf(0, 2),
		trace.Wr(1, 1), trace.VWr(1, 0),
		trace.Wr(2, 2), trace.VWr(2, 0),
		trace.VRd(0, 0), trace.Rd(0, 1), trace.Rd(0, 2),
	})
	if len(multi) != 0 {
		t.Errorf("reader not ordered after all volatile writers: %v", multi)
	}
}

func TestBarrierOrdering(t *testing.T) {
	rv := racyVars(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1), trace.Wr(1, 2),
		trace.Barrier(0, 0, 1),
		trace.Rd(1, 1), trace.Rd(0, 2),
	})
	if len(rv) != 0 {
		t.Errorf("barrier ordering missed: %v", rv)
	}
	// Post-barrier accesses of different threads stay concurrent.
	rv = racyVars(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Barrier(0, 0, 1),
		trace.Wr(0, 1), trace.Wr(1, 1),
	})
	if !rv[1] {
		t.Error("post-barrier concurrency missed")
	}
}

func TestReadReadNotConflicting(t *testing.T) {
	rv := racyVars(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Rd(0, 1), trace.Rd(1, 1),
	})
	if len(rv) != 0 {
		t.Errorf("read-read pair reported: %v", rv)
	}
}

func TestRacesReturnsPairs(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1),
		trace.Rd(0, 1),
	}
	races := New(tr).Races()
	// Pairs: (wr0,wr1), (wr1,rd0) — the (wr0,rd0) pair is program-
	// ordered.
	if len(races) != 2 {
		t.Fatalf("races = %v, want 2 pairs", races)
	}
	for _, r := range races {
		if r.I >= r.J {
			t.Errorf("pair indices out of order: %+v", r)
		}
		if r.Var != 1 {
			t.Errorf("pair on wrong var: %+v", r)
		}
	}
}

func TestHappensBeforeAndConcurrent(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1), // 0
		trace.Wr(0, 1),     // 1
		trace.Wr(1, 2),     // 2
	}
	o := New(tr)
	if !o.HappensBefore(0, 1) || !o.HappensBefore(0, 2) {
		t.Error("fork must precede both threads' events")
	}
	if o.HappensBefore(1, 2) || o.HappensBefore(2, 1) {
		t.Error("events 1 and 2 must be unordered")
	}
	if !o.Concurrent(1, 2) || !o.Concurrent(2, 1) {
		t.Error("Concurrent must be symmetric")
	}
	if o.Concurrent(1, 1) {
		t.Error("an event is not concurrent with itself")
	}
}

func TestWaitEventProgramOrderOnly(t *testing.T) {
	// The oracle sees raw traces (pre-dispatcher), where Wait carries no
	// edge of its own; this just exercises the default path.
	rv := racyVars(t, trace.Trace{
		trace.Acq(0, 9),
		trace.Event{Kind: trace.Wait, Tid: 0, Target: 9},
		trace.Acq(0, 9),
		trace.Rd(0, 1),
		trace.Rel(0, 9),
	})
	if len(rv) != 0 {
		t.Errorf("racy: %v", rv)
	}
}
