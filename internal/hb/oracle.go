// Package hb computes the happens-before relation of a trace directly
// from its definition (FastTrack paper, Section 2.1) and reports every
// variable with two concurrent conflicting accesses. It is the ground
// truth against which the precise detectors are property-tested
// (Theorem 1: FastTrack flags a variable iff the trace has a race on it).
//
// The oracle is deliberately implemented with none of the vector-clock
// machinery the detectors share: it builds an explicit happens-before
// DAG over trace events and decides ordering by graph reachability. It
// is O(events^2) and intended for small traces only.
package hb

import (
	"fasttrack/trace"
)

// Oracle holds the happens-before DAG of one trace.
type Oracle struct {
	tr   trace.Trace
	succ [][]int32 // adjacency: edges i -> j with i before j
	// reach memoizes per-source reachability bitsets, built on demand.
	reach map[int32][]uint64
}

// New builds the happens-before DAG for tr. The trace should be feasible
// (trace.Validate); infeasible traces yield unspecified results.
func New(tr trace.Trace) *Oracle {
	o := &Oracle{
		tr:    tr,
		succ:  make([][]int32, len(tr)),
		reach: make(map[int32][]uint64),
	}
	o.build()
	return o
}

// build adds one edge per ordering rule; transitivity comes from
// reachability.
func (o *Oracle) build() {
	lastOfThread := map[int32]int32{} // most recent event index per thread
	lastLockOp := map[uint64]int32{}  // most recent acq/rel per lock
	volWrites := map[uint64][]int32{} // all volatile writes per volatile
	pendingFork := map[int32]int32{}  // child tid -> fork event index

	// Per-channel operation history for the Go memory model's channel
	// rules (capacity fixed by the first event naming the channel).
	type chanInfo struct {
		capacity     int32
		sends, recvs []int32 // event indices in operation order
		closes       []int32
		sendsAtClose int // len(sends) at the first close
	}
	chans := map[uint64]*chanInfo{}
	chanOf := func(ch uint64, capacity int32) *chanInfo {
		ci := chans[ch]
		if ci == nil {
			if capacity < 0 {
				capacity = 0
			}
			ci = &chanInfo{capacity: capacity}
			chans[ch] = ci
		}
		return ci
	}

	edge := func(from, to int32) {
		if from >= 0 {
			o.succ[from] = append(o.succ[from], to)
		}
	}

	for idx, e := range o.tr {
		i := int32(idx)
		if e.Kind == trace.BarrierRelease {
			// Program order for participants threads through the barrier
			// node itself: last event of each participant -> barrier ->
			// next event of each participant.
			for _, t := range e.Tids {
				if prev, ok := lastOfThread[t]; ok {
					edge(prev, i)
				}
				if f, ok := pendingFork[t]; ok {
					edge(f, i)
					delete(pendingFork, t)
				}
				lastOfThread[t] = i
			}
			continue
		}

		// Program order.
		if prev, ok := lastOfThread[e.Tid]; ok {
			edge(prev, i)
		}
		lastOfThread[e.Tid] = i

		switch e.Kind {
		case trace.Acquire, trace.Release:
			// All operations on one lock are totally ordered (Section
			// 2.1, "Locking"); chaining consecutive lock operations
			// yields that total order under transitivity.
			if prev, ok := lastLockOp[e.Target]; ok {
				edge(prev, i)
			}
			lastLockOp[e.Target] = i
		case trace.Fork:
			pendingFork[int32(e.Target)] = i
		case trace.Join:
			if last, ok := lastOfThread[int32(e.Target)]; ok {
				edge(last, i)
			}
		case trace.VolatileWrite:
			// JMM: a volatile write happens before every subsequent read
			// of that volatile — and only reads. Two volatile writes are
			// not happens-before ordered (synchronization order is not
			// happens-before), matching the FT WRITE VOLATILE rule, which
			// accumulates writers in L_vx without the writers absorbing
			// each other's clocks.
			volWrites[e.Target] = append(volWrites[e.Target], i)
		case trace.VolatileRead:
			// The accumulated L_vx is the join of every previous writer's
			// state, so the read happens after each of them.
			for _, w := range volWrites[e.Target] {
				edge(w, i)
			}
		case trace.ChanSend:
			// Go memory model: the k-th receive on a channel with capacity
			// C happens before the (k+C)-th send completes. For a
			// rendezvous channel (C = 0) the detector is conservative —
			// every prior receive orders every send — and the oracle
			// matches that relation (on a feasible strictly-alternating
			// stream the extra edges are implied by transitivity anyway).
			ci := chanOf(e.Target, e.Cap)
			k := len(ci.sends) + 1
			if ci.capacity == 0 {
				for _, r := range ci.recvs {
					edge(r, i)
				}
			} else if j := k - int(ci.capacity); j >= 1 && j <= len(ci.recvs) {
				edge(ci.recvs[j-1], i)
			}
			ci.sends = append(ci.sends, i)
		case trace.ChanRecv:
			// The k-th send happens before the k-th receive; a close
			// happens before any receive observing the closed state (for
			// C = 0 the detector folds the close into the send
			// accumulator, so every later receive is ordered after it).
			ci := chanOf(e.Target, e.Cap)
			k := len(ci.recvs) + 1
			if ci.capacity == 0 {
				for _, s := range ci.sends {
					edge(s, i)
				}
				for _, c := range ci.closes {
					edge(c, i)
				}
			} else {
				if k <= len(ci.sends) {
					edge(ci.sends[k-1], i)
				}
				if len(ci.closes) > 0 && k > ci.sendsAtClose {
					for _, c := range ci.closes {
						edge(c, i)
					}
				}
			}
			ci.recvs = append(ci.recvs, i)
		case trace.ChanClose:
			ci := chanOf(e.Target, e.Cap)
			if len(ci.closes) == 0 {
				ci.sendsAtClose = len(ci.sends)
			}
			ci.closes = append(ci.closes, i)
		}

		// Fork edge: fork(t,u) happens before u's first event.
		if f, ok := pendingFork[e.Tid]; ok {
			edge(f, i)
			delete(pendingFork, e.Tid)
		}
	}
}

// HappensBefore reports whether event i happens before event j (i < j in
// trace order and j reachable from i in the DAG).
func (o *Oracle) HappensBefore(i, j int) bool {
	if i >= j {
		return false
	}
	return o.bits(int32(i))[j/64]&(1<<uint(j%64)) != 0
}

// Concurrent reports whether two distinct events are unordered.
func (o *Oracle) Concurrent(i, j int) bool {
	if i == j {
		return false
	}
	if i > j {
		i, j = j, i
	}
	return !o.HappensBefore(i, j)
}

// bits returns (computing and memoizing) the reachability set of event i.
func (o *Oracle) bits(i int32) []uint64 {
	if b, ok := o.reach[i]; ok {
		return b
	}
	b := make([]uint64, (len(o.tr)+63)/64)
	// DFS from i.
	stack := []int32{i}
	seen := make([]bool, len(o.tr))
	seen[i] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range o.succ[n] {
			if !seen[m] {
				seen[m] = true
				b[m/64] |= 1 << uint(m%64)
				stack = append(stack, m)
			}
		}
	}
	o.reach[i] = b
	return b
}

// Race is one pair of concurrent conflicting accesses.
type Race struct {
	Var  uint64
	I, J int // event indices, I < J
}

// Races returns every racy pair, grouped per variable in first-occurrence
// order. A trace is race-free iff the result is empty.
func (o *Oracle) Races() []Race {
	type access struct {
		idx   int
		write bool
	}
	byVar := map[uint64][]access{}
	var order []uint64
	for i, e := range o.tr {
		if !e.Kind.IsAccess() {
			continue
		}
		if _, ok := byVar[e.Target]; !ok {
			order = append(order, e.Target)
		}
		byVar[e.Target] = append(byVar[e.Target], access{i, e.Kind == trace.Write})
	}
	var races []Race
	for _, x := range order {
		accs := byVar[x]
		for a := 0; a < len(accs); a++ {
			for b := a + 1; b < len(accs); b++ {
				if !accs[a].write && !accs[b].write {
					continue // two reads never conflict
				}
				if o.Concurrent(accs[a].idx, accs[b].idx) {
					races = append(races, Race{Var: x, I: accs[a].idx, J: accs[b].idx})
				}
			}
		}
	}
	return races
}

// RacyVars returns the set of variables involved in at least one race.
func (o *Oracle) RacyVars() map[uint64]bool {
	out := map[uint64]bool{}
	for _, r := range o.Races() {
		out[r.Var] = true
	}
	return out
}
