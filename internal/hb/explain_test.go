package hb

import (
	"strings"
	"testing"

	"fasttrack/trace"
)

func TestExplainOrderedPath(t *testing.T) {
	tr := trace.Trace{
		trace.Wr(0, 1),     // 0
		trace.Acq(0, 9),    // 1
		trace.Rel(0, 9),    // 2
		trace.ForkOf(0, 1), // 3 (not on the lock path)
		trace.Acq(1, 9),    // 4
		trace.Rd(1, 1),     // 5
	}
	o := New(tr)
	ex := o.Explain(0, 5)
	if !ex.Ordered {
		t.Fatal("write must happen before the read")
	}
	if ex.Path[0] != 0 || ex.Path[len(ex.Path)-1] != 5 {
		t.Fatalf("path endpoints wrong: %v", ex.Path)
	}
	// Every consecutive pair on the path must itself be ordered.
	for k := 0; k+1 < len(ex.Path); k++ {
		if !o.HappensBefore(ex.Path[k], ex.Path[k+1]) {
			t.Errorf("path step %d -> %d not ordered", ex.Path[k], ex.Path[k+1])
		}
	}
	out := ex.Render(tr)
	if !strings.Contains(out, "happens before") || !strings.Contains(out, "rel 0 m9") {
		t.Errorf("render missing justification:\n%s", out)
	}
}

func TestExplainConcurrent(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1), // 1
		trace.Wr(1, 1), // 2
	}
	o := New(tr)
	ex := o.Explain(1, 2)
	if ex.Ordered {
		t.Fatal("concurrent writes reported ordered")
	}
	if !strings.Contains(ex.Render(tr), "CONCURRENT") {
		t.Errorf("render: %s", ex.Render(tr))
	}
	// Reversed indices are never "ordered" in trace order.
	if o.Explain(2, 1).Ordered {
		t.Error("j<i must not be ordered")
	}
}
