package hb

import (
	"fmt"
	"strings"

	"fasttrack/trace"
)

// Explanation is the evidence for an ordering query on two events.
type Explanation struct {
	// Ordered reports whether I happens before J.
	Ordered bool
	I, J    int
	// Path, when Ordered, is a happens-before chain I = p[0] < p[1] <
	// ... < p[k] = J of event indices, each step justified by program
	// order or one synchronization edge.
	Path []int
}

// Explain decides whether event i happens before event j and, when it
// does, returns a shortest justification chain through the happens-
// before DAG. When it does not (and i < j), the pair is concurrent —
// for conflicting accesses, that is precisely the race evidence.
func (o *Oracle) Explain(i, j int) Explanation {
	ex := Explanation{I: i, J: j}
	if i >= j || !o.HappensBefore(i, j) {
		return ex
	}
	ex.Ordered = true
	// BFS for a shortest path i -> j over successor edges.
	prev := make([]int32, len(o.tr))
	for k := range prev {
		prev[k] = -1
	}
	queue := []int32{int32(i)}
	seen := make([]bool, len(o.tr))
	seen[i] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == int32(j) {
			break
		}
		for _, m := range o.succ[n] {
			if !seen[m] {
				seen[m] = true
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	for n := int32(j); n != -1; n = prev[n] {
		ex.Path = append(ex.Path, int(n))
		if n == int32(i) {
			break
		}
	}
	// Reverse into i..j order.
	for a, b := 0, len(ex.Path)-1; a < b; a, b = a+1, b-1 {
		ex.Path[a], ex.Path[b] = ex.Path[b], ex.Path[a]
	}
	return ex
}

// Render formats the explanation against its trace for human readers.
func (ex Explanation) Render(tr trace.Trace) string {
	var b strings.Builder
	if !ex.Ordered {
		fmt.Fprintf(&b, "events %d (%s) and %d (%s) are CONCURRENT: no release/acquire,\n",
			ex.I, tr[ex.I], ex.J, tr[ex.J])
		fmt.Fprintf(&b, "fork/join, volatile, or barrier chain orders them")
		return b.String()
	}
	fmt.Fprintf(&b, "event %d happens before event %d via:\n", ex.I, ex.J)
	for _, idx := range ex.Path {
		fmt.Fprintf(&b, "  %6d: %s\n", idx, tr[idx])
	}
	return strings.TrimRight(b.String(), "\n")
}
