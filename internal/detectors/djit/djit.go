// Package djit implements the DJIT+ race detection algorithm of
// Pozniansky & Schuster (as presented in Section 2.2 and the right-hand
// column of Figure 2 of the FastTrack paper). DJIT+ is precise: it keeps
// full read and write vector clocks R_x and W_x for every variable and
// compares them against the accessing thread's clock. Its only fast paths
// are the same-epoch checks R_x(t) = C_t(t) and W_x(t) = C_t(t); every
// other access costs an O(n) vector-clock comparison.
package djit

import (
	"fasttrack/internal/detectors/vcbase"
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// varState holds R_x and W_x, allocated lazily on first read/write.
type varState struct {
	r, w    vc.VC
	flagged bool
}

// Detector is the DJIT+ analysis state. It implements rr.Tool and
// rr.Prefilter.
type Detector struct {
	sync  vcbase.Sync
	vars  []varState
	races []rr.Report
}

var (
	_ rr.Tool      = (*Detector)(nil)
	_ rr.Prefilter = (*Detector)(nil)
)

// New returns a DJIT+ detector with capacity hints.
func New(threadHint, varHint int) *Detector {
	d := &Detector{sync: vcbase.NewSync(threadHint)}
	if varHint > 0 {
		d.vars = make([]varState, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "DJIT+" }

func (d *Detector) variable(x uint64) *varState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, varState{})
	}
	return &d.vars[x]
}

func (d *Detector) report(vs *varState, x uint64, kind rr.RaceKind, t int32, prev vc.Tid, i int) {
	if vs.flagged {
		return
	}
	vs.flagged = true
	d.races = append(d.races, rr.Report{Var: x, Kind: kind, Tid: t, PrevTid: int32(prev), Index: i, PrevIndex: -1})
}

// HandleEvent implements rr.Tool.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	d.sync.St.Events++
	if d.sync.HandleSync(e) {
		return
	}
	if e.Kind == trace.Read {
		d.read(i, e.Tid, e.Target)
	} else {
		d.write(i, e.Tid, e.Target)
	}
}

// HandleFilter implements rr.Prefilter with the same semantics as
// FastTrack's: accesses proven race-free are filtered; only accesses to
// variables already involved in a race pass downstream (Section 5.2).
// DJIT+ filters exactly as much as FastTrack — being equally precise —
// but pays its own O(n) vector-clock cost per filtered event, which is
// why it is a worse prefilter in the paper's composition table.
func (d *Detector) HandleFilter(i int, e trace.Event) bool {
	switch e.Kind {
	case trace.Read:
		d.read(i, e.Tid, e.Target)
		return d.variable(e.Target).flagged
	case trace.Write:
		d.write(i, e.Tid, e.Target)
		return d.variable(e.Target).flagged
	default:
		d.HandleEvent(i, e)
		return true
	}
}

// read implements [DJIT+ READ SAME EPOCH] and [DJIT+ READ].
func (d *Detector) read(i int, tid int32, x uint64) {
	d.sync.St.Reads++
	ts := d.sync.Thread(tid)
	vs := d.variable(x)
	t := vc.Tid(tid)

	// [DJIT+ READ SAME EPOCH]: R_x(t) = C_t(t). (C_t(t) >= 1 always, so a
	// variable never read by t — R_x(t) = 0 — cannot take this path.)
	if vs.r.Get(t) == ts.C.Get(t) {
		d.sync.St.ReadSameEpoch++
		return
	}

	// [DJIT+ READ]: W_x ⊑ C_t, an O(n) comparison on every slow read.
	d.sync.St.VCOp++
	d.sync.St.ReadExclusive++
	if prev := vs.w.FirstExceeding(ts.C); prev >= 0 {
		d.report(vs, x, rr.WriteRead, tid, prev, i)
	}
	if vs.r == nil {
		vs.r = vc.New(len(d.sync.Threads))
		d.sync.St.VCAlloc++
	}
	vs.r = vs.r.Set(t, ts.C.Get(t))
}

// write implements [DJIT+ WRITE SAME EPOCH] and [DJIT+ WRITE].
func (d *Detector) write(i int, tid int32, x uint64) {
	d.sync.St.Writes++
	ts := d.sync.Thread(tid)
	vs := d.variable(x)
	t := vc.Tid(tid)

	// [DJIT+ WRITE SAME EPOCH]: W_x(t) = C_t(t).
	if vs.w.Get(t) == ts.C.Get(t) {
		d.sync.St.WriteSameEpoch++
		return
	}

	// [DJIT+ WRITE]: W_x ⊑ C_t and R_x ⊑ C_t, two O(n) comparisons.
	d.sync.St.VCOp += 2
	d.sync.St.WriteExclusive++
	if prev := vs.w.FirstExceeding(ts.C); prev >= 0 {
		d.report(vs, x, rr.WriteWrite, tid, prev, i)
	}
	if prev := vs.r.FirstExceeding(ts.C); prev >= 0 {
		d.report(vs, x, rr.ReadWrite, tid, prev, i)
	}
	if vs.w == nil {
		vs.w = vc.New(len(d.sync.Threads))
		d.sync.St.VCAlloc++
	}
	vs.w = vs.w.Set(t, ts.C.Get(t))
}

// Races implements rr.Tool.
func (d *Detector) Races() []rr.Report { return d.races }

// Stats implements rr.Tool.
func (d *Detector) Stats() rr.Stats {
	st := d.sync.St
	bytes := d.sync.SyncShadowBytes()
	// Each varState pays two VC slice headers plus the padded flag word
	// (56 bytes) before any backing array — the array-of-structs cost a
	// struct-of-arrays layout avoids.
	bytes += int64(cap(d.vars)) * 56
	for i := range d.vars {
		bytes += int64(d.vars[i].r.Bytes() + d.vars[i].w.Bytes())
	}
	st.ShadowBytes = bytes
	return st
}
