package djit

import (
	"testing"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	d := New(4, 8)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

func TestDetectsThreeRaceKinds(t *testing.T) {
	cases := []struct {
		name string
		tr   trace.Trace
		kind rr.RaceKind
	}{
		{"write-write", trace.Trace{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Wr(1, 1)}, rr.WriteWrite},
		{"write-read", trace.Trace{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Rd(1, 1)}, rr.WriteRead},
		{"read-write", trace.Trace{trace.ForkOf(0, 1), trace.Rd(0, 1), trace.Wr(1, 1)}, rr.ReadWrite},
	}
	for _, c := range cases {
		d := run(t, c.tr)
		races := d.Races()
		if len(races) != 1 || races[0].Kind != c.kind {
			t.Errorf("%s: races = %v", c.name, races)
		}
	}
}

func TestAcceptsSynchronizedPatterns(t *testing.T) {
	traces := []trace.Trace{
		// lock-protected
		{trace.ForkOf(0, 1), trace.Acq(0, 9), trace.Wr(0, 1), trace.Rel(0, 9),
			trace.Acq(1, 9), trace.Rd(1, 1), trace.Wr(1, 1), trace.Rel(1, 9)},
		// fork-join
		{trace.Wr(0, 1), trace.ForkOf(0, 1), trace.Wr(1, 1), trace.JoinOf(0, 1), trace.Rd(0, 1)},
		// volatile publication
		{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.VWr(0, 0), trace.VRd(1, 0), trace.Rd(1, 1)},
		// barrier
		{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Barrier(0, 0, 1), trace.Rd(1, 1)},
	}
	for i, tr := range traces {
		if races := run(t, tr).Races(); len(races) != 0 {
			t.Errorf("case %d: false alarm: %v", i, races)
		}
	}
}

func TestSameEpochFastPathCounters(t *testing.T) {
	d := run(t, trace.Trace{
		trace.Wr(0, 1),
		trace.Wr(0, 1), // same epoch
		trace.Rd(0, 1),
		trace.Rd(0, 1), // same epoch
	})
	st := d.Stats()
	if st.WriteSameEpoch != 1 || st.ReadSameEpoch != 1 {
		t.Errorf("same-epoch counters: %+v", st)
	}
	// The slow rules ran once each, at one (read) and two (write) VC
	// comparisons respectively.
	if st.VCOp < 3 {
		t.Errorf("VCOp = %d, want >= 3", st.VCOp)
	}
}

func TestDJITAllocatesPerVariableVCs(t *testing.T) {
	d := New(2, 8)
	d.HandleEvent(-1, trace.Acq(0, 99)) // materialize thread 0's clock
	base := d.Stats().VCAlloc
	for x := uint64(0); x < 8; x++ {
		d.HandleEvent(int(x), trace.Wr(0, x))
		d.HandleEvent(int(x)+100, trace.Rd(0, x))
	}
	// One write VC and one read VC per variable: the O(n)-space-per-
	// location overhead FastTrack eliminates.
	if got := d.Stats().VCAlloc - base; got != 16 {
		t.Errorf("allocated %d VCs for 8 variables, want 16", got)
	}
}

func TestOneReportPerVariable(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1),
	})
	if races := d.Races(); len(races) != 1 {
		t.Errorf("races = %v, want 1 report", races)
	}
}

func TestPrefilterPassesOnlyRacyAccesses(t *testing.T) {
	d := New(2, 2)
	if !d.HandleFilter(0, trace.ForkOf(0, 1)) {
		t.Error("sync events must pass")
	}
	if d.HandleFilter(1, trace.Wr(0, 1)) {
		t.Error("race-free write must be filtered")
	}
	if d.HandleFilter(2, trace.Rd(0, 1)) {
		t.Error("race-free read must be filtered")
	}
	if !d.HandleFilter(3, trace.Wr(1, 1)) {
		t.Error("racing write must pass")
	}
	if !d.HandleFilter(4, trace.Rd(1, 1)) {
		t.Error("flagged variable's accesses must pass")
	}
	if d.HandleFilter(5, trace.Wr(1, 0)) {
		t.Error("other race-free variables stay filtered")
	}
}

func TestName(t *testing.T) {
	if New(0, 0).Name() != "DJIT+" {
		t.Error("bad name")
	}
}

func TestShadowBytesGrow(t *testing.T) {
	d := New(2, 2)
	before := d.Stats().ShadowBytes
	for x := uint64(0); x < 64; x++ {
		d.HandleEvent(int(x), trace.Wr(0, x))
	}
	if after := d.Stats().ShadowBytes; after <= before {
		t.Errorf("ShadowBytes %d -> %d", before, after)
	}
}
