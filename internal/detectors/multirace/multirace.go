// Package multirace implements the MULTIRACE hybrid LockSet/DJIT+
// algorithm of Pozniansky & Schuster, as reimplemented (fine-grain) for
// the FastTrack paper's evaluation (Section 5.1).
//
// MultiRace maintains DJIT+'s vector-clock instrumentation state plus an
// Eraser-style candidate lock set per location. The lock set is refined
// on the first access of each epoch, and the expensive vector-clock
// comparisons run only once the lock set has become empty. Thread-local
// and read-shared data are handled with Eraser's unsound state machine,
// which is the source of MultiRace's imprecision: races hidden inside
// the thread-local initialization phase are missed (it finds 1 of the 3
// hedc races in Table 1).
package multirace

import (
	"fasttrack/internal/detectors/vcbase"
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

type state uint8

const (
	virgin state = iota
	exclusive
	shared         // read-shared, never written since sharing
	sharedModified // lock-set discipline + VC checks when set is empty
)

type varState struct {
	st      state
	owner   int32
	lockset []uint64
	haveSet bool
	r, w    vc.VC
	flagged bool
}

// Detector is the MultiRace analysis state. It implements rr.Tool.
type Detector struct {
	sync  vcbase.Sync
	vars  []varState
	held  [][]uint64
	races []rr.Report
}

var _ rr.Tool = (*Detector)(nil)

// New returns a MultiRace detector with capacity hints.
func New(threadHint, varHint int) *Detector {
	d := &Detector{sync: vcbase.NewSync(threadHint)}
	if varHint > 0 {
		d.vars = make([]varState, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "MultiRace" }

func (d *Detector) variable(x uint64) *varState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, varState{})
	}
	return &d.vars[x]
}

func (d *Detector) heldBy(t int32) []uint64 {
	for int(t) >= len(d.held) {
		d.held = append(d.held, nil)
	}
	return d.held[t]
}

func (d *Detector) report(vs *varState, x uint64, kind rr.RaceKind, t int32, prev vc.Tid, i int) {
	if vs.flagged {
		return
	}
	vs.flagged = true
	d.races = append(d.races, rr.Report{Var: x, Kind: kind, Tid: t, PrevTid: int32(prev), Index: i, PrevIndex: -1})
}

// HandleEvent implements rr.Tool.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	// Track held locks for the lock-set half before the VC half consumes
	// the event.
	switch e.Kind {
	case trace.Acquire:
		d.heldBy(e.Tid)
		d.held[e.Tid] = insertSorted(d.held[e.Tid], e.Target)
	case trace.Release:
		d.heldBy(e.Tid)
		d.held[e.Tid] = removeSorted(d.held[e.Tid], e.Target)
	}
	d.sync.St.Events++
	if d.sync.HandleSync(e) {
		return
	}
	d.access(i, e.Tid, e.Target, e.Kind == trace.Write)
}

func (d *Detector) access(i int, tid int32, x uint64, isWrite bool) {
	if isWrite {
		d.sync.St.Writes++
	} else {
		d.sync.St.Reads++
	}
	ts := d.sync.Thread(tid)
	vs := d.variable(x)
	t := vc.Tid(tid)

	switch vs.st {
	case virgin:
		d.countOwned(isWrite)
		vs.st = exclusive
		vs.owner = tid
		return
	case exclusive:
		// Thread-local fast path (Eraser-style, unsound): no VC work at
		// all while a single thread owns the location.
		if tid == vs.owner {
			d.countOwned(isWrite)
			return
		}
		// The escaping access itself is still handled by the ownership
		// state machine, so it counts toward the owned column too.
		d.countOwned(isWrite)
		// Ownership ends: initialize the candidate lock set; the owner's
		// access history is discarded (the documented imprecision).
		vs.lockset = append([]uint64(nil), d.heldBy(tid)...)
		vs.haveSet = true
		d.sync.St.LockSetOps++
		if isWrite {
			vs.st = sharedModified
		} else {
			vs.st = shared
		}
		d.record(vs, ts, t, isWrite)
		return
	case shared:
		if !isWrite {
			// Read-shared fast path: reads cannot race with reads.
			d.sync.St.ReadShared++
			d.firstOfEpochIntersect(vs, ts, t, false)
			d.record(vs, ts, t, false)
			return
		}
		vs.st = sharedModified
	}

	// sharedModified: refine the lock set on the first access of this
	// epoch; run the DJIT+ vector-clock checks only if it is empty.
	first := d.firstOfEpochIntersect(vs, ts, t, isWrite)
	if len(vs.lockset) == 0 && first {
		if isWrite {
			d.sync.St.VCOp += 2
			d.sync.St.WriteExclusive++
			if prev := vs.w.FirstExceeding(ts.C); prev >= 0 {
				d.report(vs, x, rr.WriteWrite, tid, prev, i)
			}
			if prev := vs.r.FirstExceeding(ts.C); prev >= 0 {
				d.report(vs, x, rr.ReadWrite, tid, prev, i)
			}
		} else {
			d.sync.St.VCOp++
			d.sync.St.ReadExclusive++
			if prev := vs.w.FirstExceeding(ts.C); prev >= 0 {
				d.report(vs, x, rr.WriteRead, tid, prev, i)
			}
		}
	} else if isWrite {
		d.sync.St.WriteSameEpoch++
	} else {
		d.sync.St.ReadSameEpoch++
	}
	d.record(vs, ts, t, isWrite)
}

// countOwned attributes an access handled entirely by the ownership
// state machine (virgin or exclusive), completing the operation-mix
// taxonomy: Reads == ReadOwned + ReadShared + ReadSameEpoch +
// ReadExclusive, and likewise for writes.
func (d *Detector) countOwned(isWrite bool) {
	if isWrite {
		d.sync.St.WriteOwned++
	} else {
		d.sync.St.ReadOwned++
	}
}

// firstOfEpochIntersect reports whether this is the thread's first access
// of the location in the current epoch and, if so, refines the lock set.
func (d *Detector) firstOfEpochIntersect(vs *varState, ts *vcbase.ThreadState, t vc.Tid, isWrite bool) bool {
	var last vc.Clock
	if isWrite {
		last = vs.w.Get(t)
	} else {
		last = vs.r.Get(t)
	}
	if last == ts.C.Get(t) {
		return false
	}
	d.sync.St.LockSetOps++
	vs.lockset = intersectSorted(vs.lockset, d.heldBy(int32(t)))
	return true
}

// record updates the DJIT+ vector-clock components for the access.
func (d *Detector) record(vs *varState, ts *vcbase.ThreadState, t vc.Tid, isWrite bool) {
	if isWrite {
		if vs.w == nil {
			vs.w = vc.New(len(d.sync.Threads))
			d.sync.St.VCAlloc++
		}
		vs.w = vs.w.Set(t, ts.C.Get(t))
	} else {
		if vs.r == nil {
			vs.r = vc.New(len(d.sync.Threads))
			d.sync.St.VCAlloc++
		}
		vs.r = vs.r.Set(t, ts.C.Get(t))
	}
}

// Races implements rr.Tool.
func (d *Detector) Races() []rr.Report { return d.races }

// Stats implements rr.Tool.
func (d *Detector) Stats() rr.Stats {
	st := d.sync.St
	bytes := d.sync.SyncShadowBytes()
	for i := range d.vars {
		bytes += 24 + int64(cap(d.vars[i].lockset))*8
		bytes += int64(d.vars[i].r.Bytes() + d.vars[i].w.Bytes())
	}
	for _, h := range d.held {
		bytes += int64(cap(h)) * 8
	}
	st.ShadowBytes = bytes
	return st
}

func insertSorted(s []uint64, m uint64) []uint64 {
	lo := 0
	for lo < len(s) && s[lo] < m {
		lo++
	}
	if lo < len(s) && s[lo] == m {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = m
	return s
}

func removeSorted(s []uint64, m uint64) []uint64 {
	for i, v := range s {
		if v == m {
			return append(s[:i], s[i+1:]...)
		}
		if v > m {
			break
		}
	}
	return s
}

func intersectSorted(a, b []uint64) []uint64 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
