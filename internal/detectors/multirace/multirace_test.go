package multirace

import (
	"testing"

	"fasttrack/trace"
)

func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	d := New(4, 8)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

func TestAcceptsLockDiscipline(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < 10; i++ {
		for tid := int32(0); tid < 2; tid++ {
			tr = append(tr, trace.Acq(tid, 5), trace.Rd(tid, 1), trace.Wr(tid, 1), trace.Rel(tid, 5))
		}
	}
	if races := run(t, tr).Races(); len(races) != 0 {
		t.Errorf("false alarm on lock discipline: %v", races)
	}
}

func TestAcceptsForkJoinHandoff(t *testing.T) {
	// Unlike Eraser, MultiRace's DJIT+ half understands fork-join: the
	// handoff's empty lock set triggers VC checks, which pass.
	d := run(t, trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.Wr(1, 1),
		trace.JoinOf(0, 1),
		trace.Wr(0, 1),
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarm on fork-join handoff: %v", races)
	}
}

func TestMissesInitializationRace(t *testing.T) {
	// The owner's access history is discarded at the exclusive->shared
	// transition (Eraser-style), so the one-shot race is missed.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1), // real race, hidden by the transition
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("unexpectedly caught the initialization race: %v", races)
	}
}

func TestCatchesPostTransitionRace(t *testing.T) {
	// Once two post-transition accesses conflict, the empty lock set
	// forces the DJIT+ comparison and the race is caught.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(0, 1),
		trace.Wr(1, 1), // transition (missed)
		trace.Wr(2, 1), // vs thread 1's write: caught
	})
	if races := d.Races(); len(races) != 1 {
		t.Errorf("races = %v, want 1", races)
	}
}

func TestLockProtectedSkipsVCWork(t *testing.T) {
	// With a consistently nonempty lock set, MultiRace performs no VC
	// comparisons on the shared variable after the transition — the
	// optimization that defines the hybrid.
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < 20; i++ {
		for tid := int32(0); tid < 2; tid++ {
			tr = append(tr, trace.Acq(tid, 5), trace.Rd(tid, 1), trace.Wr(tid, 1), trace.Rel(tid, 5))
		}
	}
	d := run(t, tr)
	if ops := d.Stats().VCOp; ops > 90 {
		// Sync joins/copies dominate; per-access comparisons must be
		// absent. 80 critical sections cost ~2 VC ops each in sync.
		t.Errorf("VCOp = %d; lock-protected accesses should skip comparisons", ops)
	}
	if d.Stats().LockSetOps == 0 {
		t.Error("lock set machinery never ran")
	}
}

func TestReadSharedFastPath(t *testing.T) {
	// Read-only shared data after initialization: reads never check.
	d := run(t, trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Rd(1, 1),
		trace.Rd(2, 1),
		trace.Rd(1, 1),
		trace.Rd(2, 1),
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarm on read-shared data: %v", races)
	}
}

func TestName(t *testing.T) {
	if New(0, 0).Name() != "MultiRace" {
		t.Error("bad name")
	}
}
