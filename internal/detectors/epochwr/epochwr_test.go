package epochwr

import (
	"testing"

	"fasttrack/trace"
)

func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	d := New(4, 8)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

func TestDetectsRaces(t *testing.T) {
	cases := []struct {
		name string
		tr   trace.Trace
	}{
		{"write-write", trace.Trace{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Wr(1, 1)}},
		{"write-read", trace.Trace{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Rd(1, 1)}},
		{"read-write", trace.Trace{trace.ForkOf(0, 1), trace.Rd(0, 1), trace.Wr(1, 1)}},
	}
	for _, c := range cases {
		if races := run(t, c.tr).Races(); len(races) != 1 {
			t.Errorf("%s: races = %v", c.name, races)
		}
	}
}

func TestAcceptsSynchronized(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9), trace.Wr(0, 1), trace.Rel(0, 9),
		trace.Acq(1, 9), trace.Rd(1, 1), trace.Wr(1, 1), trace.Rel(1, 9),
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarm: %v", races)
	}
}

// TestWriteEpochNoWriteVCs is the point of the ablation: no write vector
// clocks exist, so reads perform zero O(n) comparisons, while writes
// still pay one for the read check.
func TestWriteEpochNoWriteVCs(t *testing.T) {
	d := New(2, 2)
	d.HandleEvent(0, trace.ForkOf(0, 1))
	base := d.Stats().VCOp
	for i := 0; i < 10; i++ {
		d.HandleEvent(1+i, trace.Rd(0, 1))
		d.HandleEvent(20+i, trace.Rd(1, 1))
	}
	if got := d.Stats().VCOp - base; got != 0 {
		t.Errorf("reads cost %d VC ops, want 0 (write epoch check is O(1))", got)
	}
	d.HandleEvent(50, trace.Wr(0, 1))
	if got := d.Stats().VCOp - base; got != 1 {
		t.Errorf("write cost %d VC ops, want exactly 1 (the read-VC check)", got)
	}
	// Read VCs are still allocated per variable — the memory the adaptive
	// representation would save.
	if d.Stats().VCAlloc == 0 {
		t.Error("read vector clocks should have been allocated")
	}
}

func TestName(t *testing.T) {
	if New(0, 0).Name() != "WriteEpochsOnly" {
		t.Error("bad name")
	}
}
