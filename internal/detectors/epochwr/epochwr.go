// Package epochwr implements the intermediate design point between
// DJIT+ and FastTrack that Section 3 of the paper walks through: the
// last write to each variable is a single epoch (all non-racy writes are
// totally ordered, so write-write and write-read checks become O(1)),
// but the read history stays a full vector clock — no adaptive epoch
// representation for reads.
//
// It exists as an ablation: comparing BasicVC → DJIT+ → WriteEpochsOnly
// → FastTrack isolates how much of FastTrack's win comes from write
// epochs versus from the adaptive read representation (reads outnumber
// writes 4:1, so the read side matters more — which is exactly what the
// paper's Figure 2 frequencies predict).
package epochwr

import (
	"fasttrack/internal/detectors/vcbase"
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

type varState struct {
	w       vc.Epoch
	r       vc.VC
	flagged bool
}

// Detector is the write-epochs-only analysis state. It implements
// rr.Tool.
type Detector struct {
	sync  vcbase.Sync
	vars  []varState
	races []rr.Report
}

var _ rr.Tool = (*Detector)(nil)

// New returns a write-epochs-only detector with capacity hints.
func New(threadHint, varHint int) *Detector {
	d := &Detector{sync: vcbase.NewSync(threadHint)}
	if varHint > 0 {
		d.vars = make([]varState, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "WriteEpochsOnly" }

func (d *Detector) variable(x uint64) *varState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, varState{})
	}
	return &d.vars[x]
}

func (d *Detector) report(vs *varState, x uint64, kind rr.RaceKind, t int32, prev vc.Tid, i int) {
	if vs.flagged {
		return
	}
	vs.flagged = true
	d.races = append(d.races, rr.Report{Var: x, Kind: kind, Tid: t, PrevTid: int32(prev), Index: i, PrevIndex: -1})
}

// HandleEvent implements rr.Tool.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	d.sync.St.Events++
	if d.sync.HandleSync(e) {
		return
	}
	ts := d.sync.Thread(e.Tid)
	vs := d.variable(e.Target)
	t := vc.Tid(e.Tid)

	if e.Kind == trace.Read {
		d.sync.St.Reads++
		// Same-epoch read (as in DJIT+).
		if vs.r.Get(t) == ts.C.Get(t) {
			d.sync.St.ReadSameEpoch++
			return
		}
		// Write-read check is O(1) thanks to the write epoch.
		if !vs.w.LEq(ts.C) {
			d.report(vs, e.Target, rr.WriteRead, e.Tid, vs.w.Tid(), i)
		}
		d.sync.St.ReadExclusive++
		if vs.r == nil {
			vs.r = vc.New(len(d.sync.Threads))
			d.sync.St.VCAlloc++
		}
		vs.r = vs.r.Set(t, ts.C.Get(t))
		return
	}

	d.sync.St.Writes++
	if vs.w == ts.Epoch {
		d.sync.St.WriteSameEpoch++
		return
	}
	if !vs.w.LEq(ts.C) {
		d.report(vs, e.Target, rr.WriteWrite, e.Tid, vs.w.Tid(), i)
	}
	// The read check is the one remaining O(n) comparison per write.
	d.sync.St.VCOp++
	d.sync.St.WriteExclusive++
	if prev := vs.r.FirstExceeding(ts.C); prev >= 0 {
		d.report(vs, e.Target, rr.ReadWrite, e.Tid, prev, i)
	}
	vs.w = ts.Epoch
}

// Races implements rr.Tool.
func (d *Detector) Races() []rr.Report { return d.races }

// Stats implements rr.Tool.
func (d *Detector) Stats() rr.Stats {
	st := d.sync.St
	bytes := d.sync.SyncShadowBytes()
	for i := range d.vars {
		bytes += 16 // write epoch + flag
		bytes += int64(d.vars[i].r.Bytes())
	}
	st.ShadowBytes = bytes
	return st
}
