package vcbase

import (
	"testing"

	"fasttrack/internal/vc"
	"fasttrack/trace"
)

func TestInitialThreadState(t *testing.T) {
	s := NewSync(2)
	ts := s.Thread(3)
	if got := ts.C.Get(3); got != 1 {
		t.Errorf("fresh thread clock = %d, want 1 (sigma_0 = inc_t(bottom))", got)
	}
	if ts.Epoch != vc.MakeEpoch(3, 1) {
		t.Errorf("cached epoch = %v, want 1@3", ts.Epoch)
	}
	// Materializing thread 3 created threads 0..3.
	if len(s.Threads) != 4 {
		t.Errorf("threads = %d, want 4", len(s.Threads))
	}
}

func TestReleaseAcquireTransfersClock(t *testing.T) {
	s := NewSync(2)
	s.Thread(0)
	s.Thread(1)
	s.HandleSync(trace.Rel(0, 7)) // L7 := C0 = <1>; C0 -> <2>
	if got := s.Thread(0).C.Get(0); got != 2 {
		t.Errorf("release did not increment: C0(0) = %d", got)
	}
	s.HandleSync(trace.Acq(1, 7))
	if got := s.Thread(1).C.Get(0); got != 1 {
		t.Errorf("acquire did not join: C1(0) = %d, want 1", got)
	}
}

func TestForkJoinRules(t *testing.T) {
	s := NewSync(2)
	s.HandleSync(trace.ForkOf(0, 1))
	if got := s.Thread(1).C.Get(0); got != 1 {
		t.Errorf("fork: C1(0) = %d, want 1", got)
	}
	if got := s.Thread(0).C.Get(0); got != 2 {
		t.Errorf("fork: C0(0) = %d, want 2", got)
	}
	s.HandleSync(trace.JoinOf(0, 1))
	if got := s.Thread(0).C.Get(1); got != 1 {
		t.Errorf("join: C0(1) = %d, want 1", got)
	}
	if got := s.Thread(1).C.Get(1); got != 2 {
		t.Errorf("join must increment the child: C1(1) = %d, want 2", got)
	}
}

func TestVolatileRules(t *testing.T) {
	s := NewSync(2)
	s.Thread(0)
	s.Thread(1)
	s.HandleSync(trace.VWr(0, 3))
	if got := s.Thread(0).C.Get(0); got != 2 {
		t.Errorf("volatile write did not increment: %d", got)
	}
	s.HandleSync(trace.VRd(1, 3))
	if got := s.Thread(1).C.Get(0); got != 1 {
		t.Errorf("volatile read did not join: C1(0) = %d", got)
	}
	// L accumulates across writers.
	s.HandleSync(trace.VWr(1, 3))
	s.HandleSync(trace.VRd(0, 3))
	if got := s.Thread(0).C.Get(1); got == 0 {
		t.Error("second writer's clock not visible to reader")
	}
}

func TestBarrierRule(t *testing.T) {
	s := NewSync(3)
	s.HandleSync(trace.ForkOf(0, 1))
	s.HandleSync(trace.ForkOf(0, 2))
	c0, c1, c2 := s.Thread(0).C.Copy(), s.Thread(1).C.Copy(), s.Thread(2).C.Copy()
	s.HandleSync(trace.Barrier(0, 0, 1, 2))
	join := c0.Join(c1).Join(c2)
	for tid := vc.Tid(0); tid < 3; tid++ {
		got := s.Thread(int32(tid)).C
		want := join.Copy().Set(tid, join.Get(tid)+1)
		if !got.Equal(want) {
			t.Errorf("thread %d post-barrier clock = %v, want %v", tid, got, want)
		}
	}
	// Cached epochs refreshed.
	if s.Threads[1].Epoch != s.Threads[1].C.Epoch(1) {
		t.Error("epoch cache stale after barrier")
	}
}

func TestHandleSyncClassification(t *testing.T) {
	s := NewSync(1)
	if s.HandleSync(trace.Rd(0, 1)) || s.HandleSync(trace.Wr(0, 1)) {
		t.Error("accesses must not be handled by Sync")
	}
	if !s.HandleSync(trace.Event{Kind: trace.TxBegin, Tid: 0}) {
		t.Error("tx markers are consumed (as no-ops)")
	}
	if !s.HandleSync(trace.Barrier(0)) {
		t.Error("empty barrier consumed")
	}
}

func TestSyncShadowBytes(t *testing.T) {
	s := NewSync(2)
	s.Thread(0)
	before := s.SyncShadowBytes()
	s.HandleSync(trace.Rel(0, 1))
	s.HandleSync(trace.VWr(0, 2))
	if after := s.SyncShadowBytes(); after <= before {
		t.Errorf("lock/volatile clocks not accounted: %d -> %d", before, after)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewSync(2)
	s.HandleSync(trace.ForkOf(0, 1))
	s.HandleSync(trace.Rel(0, 1))
	s.HandleSync(trace.Acq(1, 1))
	if s.St.Syncs != 3 {
		t.Errorf("Syncs = %d", s.St.Syncs)
	}
	if s.St.VCOp < 3 {
		t.Errorf("VCOp = %d, want >= 3", s.St.VCOp)
	}
	if s.St.VCAlloc < 3 { // two thread clocks + one lock clock
		t.Errorf("VCAlloc = %d, want >= 3", s.St.VCAlloc)
	}
}
