// Package vcbase provides the synchronization-handling machinery shared
// by the vector-clock-based comparison detectors (BasicVC, DJIT+ and
// MultiRace). Lock acquire/release, fork/join, volatiles and barriers are
// rare (about 3.3% of operations) and are handled identically by every
// VC-based analysis, exactly as in FastTrack's Figure 3; only the
// read/write rules differ between tools.
//
// FastTrack itself (internal/core) deliberately does not use this package:
// it is the paper's artifact and stays self-contained, mirroring Figure 5.
// All tools nevertheless share internal/vc's primitives, preserving the
// paper's apples-to-apples comparison.
package vcbase

import (
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// ThreadState is one thread's clock C_t with its cached epoch
// E(t) = C_t(t)@t.
type ThreadState struct {
	C     vc.VC
	Epoch vc.Epoch
}

// Sync owns the C and L components of a VC-based analysis state and
// implements the synchronization rules of Figure 3. The embedding
// detector owns the R/W per-variable components.
type Sync struct {
	Threads []ThreadState
	Locks   map[uint64]vc.VC
	Vols    map[uint64]vc.VC
	Chans   map[uint64]*chanHist
	St      rr.Stats
}

// chanHist is one channel's synchronization history for the Go memory
// model's channel rules (same semantics as internal/core, but with an
// unbounded per-operation clock history instead of bounded rings — the
// comparison detectors only run on small traces).
type chanHist struct {
	capacity     int32
	sends        int
	closed       bool
	sendsAtClose int
	closeClk     vc.VC
	// Capacity 0: conservative rendezvous accumulators. Capacity > 0:
	// exact per-operation snapshots.
	sendAcc, recvAcc   vc.VC
	sendClks, recvClks []vc.VC
}

// NewSync returns an initialized Sync with capacity hints.
func NewSync(threadHint int) Sync {
	s := Sync{
		Locks: make(map[uint64]vc.VC),
		Vols:  make(map[uint64]vc.VC),
		Chans: make(map[uint64]*chanHist),
	}
	if threadHint > 0 {
		s.Threads = make([]ThreadState, 0, threadHint)
	}
	return s
}

// chanOf returns channel ch's history, materializing it on first use
// (capacity fixed by the first event naming the channel).
func (s *Sync) chanOf(ch uint64, capacity int32) *chanHist {
	h := s.Chans[ch]
	if h == nil {
		if capacity < 0 {
			capacity = 0
		}
		h = &chanHist{capacity: capacity}
		s.Chans[ch] = h
	}
	return h
}

// Thread returns thread t's state, initializing C_t = inc_t(⊥V) on first
// use.
func (s *Sync) Thread(t int32) *ThreadState {
	for int(t) >= len(s.Threads) {
		u := vc.Tid(len(s.Threads))
		cv := vc.New(len(s.Threads) + 1).Inc(u)
		s.St.VCAlloc++
		s.Threads = append(s.Threads, ThreadState{C: cv, Epoch: cv.Epoch(u)})
	}
	return &s.Threads[t]
}

func (ts *ThreadState) refresh(t vc.Tid) { ts.Epoch = ts.C.Epoch(t) }

// HandleSync processes e if it is a synchronization or no-op event and
// reports whether it did; data accesses return false and are left to the
// embedding detector.
func (s *Sync) HandleSync(e trace.Event) bool {
	switch e.Kind {
	case trace.Read, trace.Write:
		return false
	case trace.Acquire:
		s.St.CountKind(e.Kind)
		ts := s.Thread(e.Tid)
		if lm, ok := s.Locks[e.Target]; ok {
			ts.C = ts.C.Join(lm)
			s.St.VCOp++
		}
	case trace.Release:
		s.St.CountKind(e.Kind)
		ts := s.Thread(e.Tid)
		lm, ok := s.Locks[e.Target]
		if !ok {
			s.St.VCAlloc++
		}
		s.Locks[e.Target] = lm.CopyInto(ts.C)
		s.St.VCOp++
		ts.C = ts.C.Inc(vc.Tid(e.Tid))
		ts.refresh(vc.Tid(e.Tid))
	case trace.Fork:
		s.St.CountKind(e.Kind)
		u := int32(e.Target)
		s.Thread(u)
		ts, us := s.Thread(e.Tid), s.Thread(u)
		us.C = us.C.Join(ts.C)
		us.refresh(vc.Tid(u))
		s.St.VCOp++
		ts.C = ts.C.Inc(vc.Tid(e.Tid))
		ts.refresh(vc.Tid(e.Tid))
	case trace.Join:
		s.St.CountKind(e.Kind)
		u := int32(e.Target)
		s.Thread(u)
		ts, us := s.Thread(e.Tid), s.Thread(u)
		ts.C = ts.C.Join(us.C)
		ts.refresh(vc.Tid(e.Tid))
		s.St.VCOp++
		us.C = us.C.Inc(vc.Tid(u))
		us.refresh(vc.Tid(u))
	case trace.VolatileRead:
		s.St.CountKind(e.Kind)
		ts := s.Thread(e.Tid)
		if lv, ok := s.Vols[e.Target]; ok {
			ts.C = ts.C.Join(lv)
			s.St.VCOp++
		}
	case trace.VolatileWrite:
		s.St.CountKind(e.Kind)
		ts := s.Thread(e.Tid)
		lv, ok := s.Vols[e.Target]
		if !ok {
			s.St.VCAlloc++
		}
		s.Vols[e.Target] = lv.Join(ts.C)
		s.St.VCOp++
		ts.C = ts.C.Inc(vc.Tid(e.Tid))
		ts.refresh(vc.Tid(e.Tid))
	case trace.BarrierRelease:
		s.St.CountKind(e.Kind)
		if len(e.Tids) == 0 {
			return true
		}
		join := vc.New(len(s.Threads))
		s.St.VCAlloc++
		for _, u := range e.Tids {
			join = join.Join(s.Thread(u).C)
			s.St.VCOp++
		}
		for _, u := range e.Tids {
			us := s.Thread(u)
			us.C = us.C.CopyInto(join).Inc(vc.Tid(u))
			us.refresh(vc.Tid(u))
			s.St.VCOp++
		}
	case trace.ChanSend:
		s.St.CountKind(e.Kind)
		ts := s.Thread(e.Tid)
		h := s.chanOf(e.Target, e.Cap)
		h.sends++
		if h.capacity == 0 {
			if h.recvAcc != nil {
				ts.C = ts.C.Join(h.recvAcc)
				s.St.VCOp++
			}
			h.sendAcc = h.sendAcc.Join(ts.C)
			s.St.VCOp++
		} else {
			// The (k-C)-th receive happens before the k-th send completes.
			if j := h.sends - int(h.capacity); j >= 1 && j <= len(h.recvClks) {
				ts.C = ts.C.Join(h.recvClks[j-1])
				s.St.VCOp++
			}
			h.sendClks = append(h.sendClks, vc.VC(nil).CopyInto(ts.C))
			s.St.VCAlloc++
		}
		ts.C = ts.C.Inc(vc.Tid(e.Tid))
		ts.refresh(vc.Tid(e.Tid))
	case trace.ChanRecv:
		s.St.CountKind(e.Kind)
		ts := s.Thread(e.Tid)
		h := s.chanOf(e.Target, e.Cap)
		if h.capacity == 0 {
			// sendAcc already folds in any close, so a draining receive is
			// ordered after the close through it.
			if h.sendAcc != nil {
				ts.C = ts.C.Join(h.sendAcc)
				s.St.VCOp++
			}
			h.recvAcc = h.recvAcc.Join(ts.C)
			s.St.VCOp++
		} else {
			// The k-th send happens before the k-th receive.
			k := len(h.recvClks) + 1
			if k <= len(h.sendClks) {
				ts.C = ts.C.Join(h.sendClks[k-1])
				s.St.VCOp++
			}
			if h.closed && h.closeClk != nil && k > h.sendsAtClose {
				ts.C = ts.C.Join(h.closeClk)
				s.St.VCOp++
			}
			h.recvClks = append(h.recvClks, vc.VC(nil).CopyInto(ts.C))
			s.St.VCAlloc++
		}
		ts.C = ts.C.Inc(vc.Tid(e.Tid))
		ts.refresh(vc.Tid(e.Tid))
	case trace.ChanClose:
		s.St.CountKind(e.Kind)
		ts := s.Thread(e.Tid)
		h := s.chanOf(e.Target, e.Cap)
		if !h.closed {
			h.closed = true
			h.sendsAtClose = h.sends
		}
		h.closeClk = h.closeClk.Join(ts.C)
		s.St.VCOp++
		if h.capacity == 0 {
			h.sendAcc = h.sendAcc.Join(ts.C)
			s.St.VCOp++
		}
		ts.C = ts.C.Inc(vc.Tid(e.Tid))
		ts.refresh(vc.Tid(e.Tid))
	case trace.TxBegin, trace.TxEnd:
		s.St.CountKind(e.Kind) // markers only; no happens-before edge
	}
	// Notify/Wait never reach detectors (the dispatcher expands them);
	// TxBegin/TxEnd are analysis no-ops for race detectors.
	return true
}

// SyncShadowBytes reports the footprint of the C and L components.
func (s *Sync) SyncShadowBytes() int64 {
	var bytes int64
	for i := range s.Threads {
		bytes += int64(s.Threads[i].C.Bytes()) + 8
	}
	for _, l := range s.Locks {
		bytes += int64(l.Bytes())
	}
	for _, l := range s.Vols {
		bytes += int64(l.Bytes())
	}
	for _, h := range s.Chans {
		bytes += 64 + int64(h.closeClk.Bytes()+h.sendAcc.Bytes()+h.recvAcc.Bytes())
		for _, c := range h.sendClks {
			bytes += int64(c.Bytes())
		}
		for _, c := range h.recvClks {
			bytes += int64(c.Bytes())
		}
	}
	return bytes
}
