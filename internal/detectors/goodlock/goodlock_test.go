package goodlock

import (
	"testing"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("infeasible test trace: %v", err)
	}
	d := New(4, 0)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

func TestDetectsLockOrderInversion(t *testing.T) {
	// Thread 0 takes a then b; thread 1 takes b then a — the classic
	// potential deadlock, reported even though this schedule completed.
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 1), trace.Acq(0, 2), trace.Rel(0, 2), trace.Rel(0, 1),
		trace.Acq(1, 2), trace.Acq(1, 1), trace.Rel(1, 1), trace.Rel(1, 2),
	}
	races := run(t, tr).Races()
	if len(races) != 1 || races[0].Kind != rr.DeadlockPotential {
		t.Fatalf("races = %v, want one potential deadlock", races)
	}
}

func TestAcceptsConsistentOrder(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for tid := int32(0); tid < 2; tid++ {
		tr = append(tr,
			trace.Acq(tid, 1), trace.Acq(tid, 2), trace.Acq(tid, 3),
			trace.Rel(tid, 3), trace.Rel(tid, 2), trace.Rel(tid, 1),
		)
	}
	if races := run(t, tr).Races(); len(races) != 0 {
		t.Errorf("consistent order flagged: %v", races)
	}
}

func TestGateLockSuppressesFalseAlarm(t *testing.T) {
	// Both inversions happen under a common gate lock g, so the cycle
	// can never actually deadlock (the gate serializes the regions).
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9), trace.Acq(0, 1), trace.Acq(0, 2),
		trace.Rel(0, 2), trace.Rel(0, 1), trace.Rel(0, 9),
		trace.Acq(1, 9), trace.Acq(1, 2), trace.Acq(1, 1),
		trace.Rel(1, 1), trace.Rel(1, 2), trace.Rel(1, 9),
	}
	if races := run(t, tr).Races(); len(races) != 0 {
		t.Errorf("gated cycle flagged: %v", races)
	}
}

func TestThreeLockCycle(t *testing.T) {
	// a->b, b->c, c->a across three threads.
	tr := trace.Trace{
		trace.ForkOf(0, 1), trace.ForkOf(0, 2),
		trace.Acq(0, 1), trace.Acq(0, 2), trace.Rel(0, 2), trace.Rel(0, 1),
		trace.Acq(1, 2), trace.Acq(1, 3), trace.Rel(1, 3), trace.Rel(1, 2),
		trace.Acq(2, 3), trace.Acq(2, 1), trace.Rel(2, 1), trace.Rel(2, 3),
	}
	races := run(t, tr).Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want the three-lock cycle once", races)
	}
}

func TestOneReportPerCycle(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for round := 0; round < 5; round++ {
		tr = append(tr,
			trace.Acq(0, 1), trace.Acq(0, 2), trace.Rel(0, 2), trace.Rel(0, 1),
			trace.Acq(1, 2), trace.Acq(1, 1), trace.Rel(1, 1), trace.Rel(1, 2),
		)
	}
	if races := run(t, tr).Races(); len(races) != 1 {
		t.Errorf("races = %v, want exactly one report", races)
	}
}

func TestIgnoresAccessesAndStats(t *testing.T) {
	d := run(t, trace.Trace{
		trace.Rd(0, 1), trace.Wr(0, 1),
		trace.Acq(0, 1), trace.Rel(0, 1),
	})
	st := d.Stats()
	if st.Events != 4 || st.Reads != 1 || st.Writes != 1 || st.Syncs != 2 {
		t.Errorf("stats = %+v", st)
	}
	if d.Name() != "Goodlock" {
		t.Error("bad name")
	}
}
