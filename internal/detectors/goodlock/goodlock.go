// Package goodlock implements a Goodlock-style lock-order analysis
// (Havelund's algorithm, the deadlock-detection counterpart RoadRunner
// ships alongside its race detectors; the FastTrack paper's introduction
// names deadlocks as the sibling class of concurrency errors).
//
// The analysis builds the lock acquisition-order graph of the observed
// trace: an edge l1 -> l2 is added whenever a thread acquires l2 while
// holding l1. A cycle in that graph means two threads can take the
// involved locks in opposite orders, so *some* schedule deadlocks — even
// when the observed one did not. Like LockSet, the analysis can
// false-alarm on programs whose cyclic orders are guarded by an
// enclosing "gate" lock; the classic refinement of checking gate locks
// is implemented: edges are annotated with the full set of locks held,
// and a cycle is only reported when the edge hold-sets share no common
// gate lock.
package goodlock

import (
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// edge is one observed acquisition order with its guard context.
type edge struct {
	from, to uint64
	// holding is the set of locks the thread held (excluding `to`) at
	// acquisition time; a lock common to every edge of a cycle gates it.
	holding map[uint64]bool
	tid     int32
	index   int
}

// Detector is the lock-order analysis state. It implements rr.Tool.
type Detector struct {
	held     [][]uint64 // acquisition-ordered held locks, per thread
	edges    []edge
	edgeSeen map[[2]uint64]bool
	adj      map[uint64][]int // lock -> indices into edges (outgoing)
	flagged  map[[2]uint64]bool
	races    []rr.Report
	st       rr.Stats
}

var _ rr.Tool = (*Detector)(nil)

// New returns a Goodlock detector.
func New(threadHint, varHint int) *Detector {
	_ = varHint
	d := &Detector{
		edgeSeen: map[[2]uint64]bool{},
		adj:      map[uint64][]int{},
		flagged:  map[[2]uint64]bool{},
	}
	if threadHint > 0 {
		d.held = make([][]uint64, 0, threadHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "Goodlock" }

func (d *Detector) heldBy(t int32) {
	for int(t) >= len(d.held) {
		d.held = append(d.held, nil)
	}
}

// HandleEvent implements rr.Tool. Only lock operations matter.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	d.st.Events++
	switch e.Kind {
	case trace.Read:
		d.st.Reads++
	case trace.Write:
		d.st.Writes++
	case trace.Acquire:
		d.st.CountKind(e.Kind)
		d.heldBy(e.Tid)
		for _, from := range d.held[e.Tid] {
			d.addEdge(from, e.Target, d.held[e.Tid], e.Tid, i)
		}
		d.held[e.Tid] = append(d.held[e.Tid], e.Target)
	case trace.Release:
		d.st.CountKind(e.Kind)
		d.heldBy(e.Tid)
		h := d.held[e.Tid]
		for j := len(h) - 1; j >= 0; j-- {
			if h[j] == e.Target {
				d.held[e.Tid] = append(h[:j], h[j+1:]...)
				break
			}
		}
	default:
		d.st.CountKind(e.Kind)
	}
}

// addEdge records from -> to and checks for a gate-free cycle through it.
func (d *Detector) addEdge(from, to uint64, holding []uint64, tid int32, i int) {
	key := [2]uint64{from, to}
	if d.edgeSeen[key] {
		return
	}
	d.edgeSeen[key] = true
	holdSet := make(map[uint64]bool, len(holding))
	for _, l := range holding {
		if l != to {
			holdSet[l] = true
		}
	}
	idx := len(d.edges)
	d.edges = append(d.edges, edge{from: from, to: to, holding: holdSet, tid: tid, index: i})
	d.adj[from] = append(d.adj[from], idx)
	d.st.LockSetOps++

	// DFS from `to` back to `from`, carrying the intersection of gate
	// candidates; a reachable back-path with an empty final gate set is a
	// reportable cycle.
	if d.cycleWithoutGate(to, from, idx, map[uint64]bool{}, copySet(holdSet)) {
		if !d.flagged[key] && !d.flagged[[2]uint64{to, from}] {
			d.flagged[key] = true
			d.races = append(d.races, rr.Report{
				Var: from, Kind: rr.DeadlockPotential, Tid: tid, PrevTid: -1,
				Index: i, PrevIndex: -1,
			})
		}
	}
}

// cycleWithoutGate searches for a path cur -> ... -> target whose edges'
// hold-sets, intersected with gates, leave no common gate lock.
func (d *Detector) cycleWithoutGate(cur, target uint64, newEdge int, visited map[uint64]bool, gates map[uint64]bool) bool {
	if cur == target {
		return len(gates) == 0
	}
	if visited[cur] {
		return false
	}
	visited[cur] = true
	defer delete(visited, cur)
	for _, ei := range d.adj[cur] {
		if ei == newEdge {
			continue
		}
		e := d.edges[ei]
		next := intersect(gates, e.holding)
		if d.cycleWithoutGate(e.to, target, newEdge, visited, next) {
			return true
		}
	}
	return false
}

func copySet(s map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersect(a, b map[uint64]bool) map[uint64]bool {
	out := map[uint64]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// Races implements rr.Tool.
func (d *Detector) Races() []rr.Report { return d.races }

// Stats implements rr.Tool.
func (d *Detector) Stats() rr.Stats {
	st := d.st
	st.ShadowBytes = int64(len(d.edges)) * 64
	for _, h := range d.held {
		st.ShadowBytes += int64(cap(h)) * 8
	}
	return st
}
