package empty

import (
	"testing"

	"fasttrack/trace"
)

func TestEmptyCountsAndNeverWarns(t *testing.T) {
	e := New()
	events := trace.Trace{
		trace.Rd(0, 1), trace.Wr(0, 1), trace.Acq(0, 2), trace.Rel(0, 2),
		trace.ForkOf(0, 1), trace.Rd(1, 1),
	}
	for i, ev := range events {
		e.HandleEvent(i, ev)
	}
	if e.Races() != nil {
		t.Error("Empty must never warn")
	}
	st := e.Stats()
	if st.Events != 6 || st.Reads != 2 || st.Writes != 1 || st.Syncs != 3 {
		t.Errorf("stats = %+v", st)
	}
	if e.Name() != "Empty" {
		t.Error("bad name")
	}
}

func TestTLFilterEscapeAnalysis(t *testing.T) {
	f := NewTL(4)
	if f.Name() != "TL" {
		t.Error("bad name")
	}
	// First access claims ownership: filtered.
	if f.HandleFilter(0, trace.Wr(0, 1)) {
		t.Error("first access must be filtered")
	}
	// Same-thread re-accesses stay filtered.
	if f.HandleFilter(1, trace.Rd(0, 1)) {
		t.Error("owner re-access must be filtered")
	}
	// Sync always passes.
	if !f.HandleFilter(2, trace.ForkOf(0, 1)) {
		t.Error("sync must pass")
	}
	// The escaping access passes, and everything after it.
	if !f.HandleFilter(3, trace.Rd(1, 1)) {
		t.Error("escaping access must pass")
	}
	if !f.HandleFilter(4, trace.Wr(0, 1)) {
		t.Error("accesses to escaped variables must pass")
	}
	// Other variables remain independent.
	if f.HandleFilter(5, trace.Wr(1, 2)) {
		t.Error("fresh variable must be filtered")
	}
	if f.Races() != nil {
		t.Error("TL filter never warns")
	}
	if st := f.Stats(); st.Events != 6 || st.ShadowBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTLFilterHandleEventDelegates(t *testing.T) {
	f := NewTL(0)
	f.HandleEvent(0, trace.Wr(0, 9))
	f.HandleEvent(1, trace.Wr(1, 9))
	if st := f.Stats(); st.Writes != 2 {
		t.Errorf("writes = %d", st.Writes)
	}
}
