// Package empty implements the EMPTY tool of the FastTrack paper's
// evaluation: it performs no analysis at all and exists to measure the
// overhead of the event-stream framework itself (the 4.1x "EMPTY"
// column of Table 1). It also provides the TL prefilter of Section 5.2,
// which filters only accesses to (dynamically) thread-local data.
package empty

import (
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Tool is the no-op analysis. It implements rr.Tool.
type Tool struct {
	st rr.Stats
}

var _ rr.Tool = (*Tool)(nil)

// New returns an EMPTY tool.
func New() *Tool { return &Tool{} }

// Name implements rr.Tool.
func (t *Tool) Name() string { return "Empty" }

// HandleEvent implements rr.Tool: it only counts.
func (t *Tool) HandleEvent(_ int, e trace.Event) {
	t.st.Events++
	switch e.Kind {
	case trace.Read:
		t.st.Reads++
	case trace.Write:
		t.st.Writes++
	default:
		t.st.CountKind(e.Kind)
	}
}

// Races implements rr.Tool: the EMPTY tool never warns.
func (t *Tool) Races() []rr.Report { return nil }

// Stats implements rr.Tool.
func (t *Tool) Stats() rr.Stats { return t.st }

// TLFilter is the "TL" prefilter of the composition experiment
// (Section 5.2): a lightweight dynamic escape analysis that filters out
// accesses to variables that only one thread has ever touched and passes
// everything else. It implements rr.Prefilter.
type TLFilter struct {
	st rr.Stats
	// owner[x] = only accessing thread so far; escaped[x] marks
	// multi-thread variables.
	owner   []int32
	escaped []bool
}

var _ rr.Prefilter = (*TLFilter)(nil)

// NewTL returns a TL prefilter.
func NewTL(varHint int) *TLFilter {
	f := &TLFilter{}
	if varHint > 0 {
		f.owner = make([]int32, 0, varHint)
		f.escaped = make([]bool, 0, varHint)
	}
	return f
}

// Name implements rr.Tool.
func (f *TLFilter) Name() string { return "TL" }

func (f *TLFilter) slot(x uint64) int {
	for x >= uint64(len(f.owner)) {
		f.owner = append(f.owner, -1)
		f.escaped = append(f.escaped, false)
	}
	return int(x)
}

// HandleEvent implements rr.Tool.
func (f *TLFilter) HandleEvent(i int, e trace.Event) { f.HandleFilter(i, e) }

// HandleFilter implements rr.Prefilter.
func (f *TLFilter) HandleFilter(_ int, e trace.Event) bool {
	f.st.Events++
	if !e.Kind.IsAccess() {
		f.st.CountKind(e.Kind)
		return true
	}
	if e.Kind == trace.Read {
		f.st.Reads++
	} else {
		f.st.Writes++
	}
	s := f.slot(e.Target)
	if f.escaped[s] {
		return true
	}
	if f.owner[s] < 0 {
		f.owner[s] = e.Tid
		return false
	}
	if f.owner[s] == e.Tid {
		return false
	}
	f.escaped[s] = true
	return true
}

// Races implements rr.Tool.
func (f *TLFilter) Races() []rr.Report { return nil }

// Stats implements rr.Tool.
func (f *TLFilter) Stats() rr.Stats {
	st := f.st
	st.ShadowBytes = int64(cap(f.owner))*4 + int64(cap(f.escaped))
	return st
}
