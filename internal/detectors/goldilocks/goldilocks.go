// Package goldilocks implements the GOLDILOCKS race detection algorithm
// of Elmas, Qadeer & Tasiran (PLDI 2007), as reimplemented for the
// FastTrack paper's evaluation (Section 5.1).
//
// Goldilocks represents the happens-before relation without vector
// clocks: each memory location carries a set of "synchronization
// devices" — locks, volatile variables, and thread identifiers. A thread
// in the set may access the location; synchronization operations transfer
// membership (releasing a lock adds the lock if the releaser is in the
// set; acquiring it adds the acquirer if the lock is in the set; fork and
// join transfer between parent and child; volatiles behave like locks).
//
// The transfer rules are applied lazily: synchronization operations are
// appended to a global log, and each location catches up on the portion
// of the log it has not yet seen when it is next accessed — the
// "synchronization-event queue" scheme of the original paper. This makes
// the per-access cost proportional to the synchronization activity since
// the location's previous access, which is why Goldilocks is slow
// without deep VM integration (Table 1) and why its log can exhaust
// memory on synchronization-heavy programs (it ran out of memory on
// lufact in the paper).
//
// Like the paper's reimplementation, this version includes the unsound
// thread-local fast path: a location stays in an "owned" mode while a
// single thread accesses it, and ownership is handed to the next thread
// without a race check. That extension is what caused the paper's
// Goldilocks to miss the three hedc races; this implementation
// reproduces exactly that behaviour.
package goldilocks

import (
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// device encodes a synchronization device: a lock, a volatile variable,
// or a thread id, tagged into disjoint ranges of uint64.
type device uint64

const (
	lockTag   = uint64(1) << 62
	volTag    = uint64(2) << 62
	threadTag = uint64(3) << 62

	// Channel devices live in the otherwise-unused 0<<62 space, one per
	// direction (see the ChanSend case below for the model).
	chanSendTag = uint64(1) << 60
	chanRecvTag = uint64(2) << 60
)

func lockDev(m uint64) device     { return device(lockTag | m) }
func volDev(v uint64) device      { return device(volTag | v) }
func threadDev(t int32) device    { return device(threadTag | uint64(t)) }
func chanSendDev(c uint64) device { return device(chanSendTag | c) }
func chanRecvDev(c uint64) device { return device(chanRecvTag | c) }

// logEntry is one synchronization operation in the global log. Each entry
// denotes the transfer rule "if trigger ∈ GLS(x) then GLS(x) ∪= {adds}".
type logEntry struct {
	trigger device
	adds    device
}

type varState struct {
	owned   bool
	owner   int32
	gls     map[device]struct{}
	pos     int  // log prefix already applied
	written bool // gls is seeded from a write (reads must check membership)
	flagged bool
	init    bool
}

// Detector is the Goldilocks analysis state. It implements rr.Tool.
type Detector struct {
	log   []logEntry
	vars  []varState
	races []rr.Report
	st    rr.Stats
}

var _ rr.Tool = (*Detector)(nil)

// New returns a Goldilocks detector with capacity hints.
func New(threadHint, varHint int) *Detector {
	_ = threadHint
	d := &Detector{}
	if varHint > 0 {
		d.vars = make([]varState, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "Goldilocks" }

func (d *Detector) variable(x uint64) *varState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, varState{})
	}
	return &d.vars[x]
}

// HandleEvent implements rr.Tool.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	d.st.Events++
	switch e.Kind {
	case trace.Read:
		d.st.Reads++
		d.access(i, e.Tid, e.Target, false)
	case trace.Write:
		d.st.Writes++
		d.access(i, e.Tid, e.Target, true)
	case trace.Acquire:
		d.st.CountKind(e.Kind)
		d.log = append(d.log, logEntry{trigger: lockDev(e.Target), adds: threadDev(e.Tid)})
	case trace.Release:
		d.st.CountKind(e.Kind)
		d.log = append(d.log, logEntry{trigger: threadDev(e.Tid), adds: lockDev(e.Target)})
	case trace.VolatileRead:
		d.st.CountKind(e.Kind)
		d.log = append(d.log, logEntry{trigger: volDev(e.Target), adds: threadDev(e.Tid)})
	case trace.VolatileWrite:
		d.st.CountKind(e.Kind)
		d.log = append(d.log, logEntry{trigger: threadDev(e.Tid), adds: volDev(e.Target)})
	case trace.Fork:
		d.st.CountKind(e.Kind)
		d.log = append(d.log, logEntry{trigger: threadDev(e.Tid), adds: threadDev(int32(e.Target))})
	case trace.Join:
		d.st.CountKind(e.Kind)
		d.log = append(d.log, logEntry{trigger: threadDev(int32(e.Target)), adds: threadDev(e.Tid)})
	case trace.BarrierRelease:
		d.st.CountKind(e.Kind)
		// A barrier behaves like every participant releasing and then
		// re-acquiring a common barrier-phase lock: pre-barrier accesses
		// of all participants happen before post-barrier accesses of all
		// participants.
		dev := lockDev(lockTag>>1 | e.Target) // distinct from user locks
		for _, t := range e.Tids {
			d.log = append(d.log, logEntry{trigger: threadDev(t), adds: dev})
		}
		for _, t := range e.Tids {
			d.log = append(d.log, logEntry{trigger: dev, adds: threadDev(t)})
		}
	case trace.ChanSend:
		// Channels are modeled conservatively as a pair of volatiles, one
		// per direction: a send is ordered after every prior receive and
		// publishes to later receives; symmetrically for receives. This
		// over-orders buffered channels (like the capacity-unaware
		// syncmodel encoding), which is sound for Goldilocks' one-sided
		// guarantee: extra ordering can only suppress reports.
		d.st.CountKind(e.Kind)
		d.log = append(d.log,
			logEntry{trigger: chanRecvDev(e.Target), adds: threadDev(e.Tid)},
			logEntry{trigger: threadDev(e.Tid), adds: chanSendDev(e.Target)})
	case trace.ChanRecv:
		d.st.CountKind(e.Kind)
		d.log = append(d.log,
			logEntry{trigger: chanSendDev(e.Target), adds: threadDev(e.Tid)},
			logEntry{trigger: threadDev(e.Tid), adds: chanRecvDev(e.Target)})
	case trace.ChanClose:
		// Close publishes like a send (close happens before any receive
		// observing the closed state).
		d.st.CountKind(e.Kind)
		d.log = append(d.log, logEntry{trigger: threadDev(e.Tid), adds: chanSendDev(e.Target)})
	case trace.TxBegin, trace.TxEnd:
		d.st.CountKind(e.Kind)
	}
}

func (d *Detector) access(i int, tid int32, x uint64, isWrite bool) {
	vs := d.variable(x)
	if !vs.init {
		vs.init = true
		vs.owned = true
		vs.owner = tid
		vs.written = isWrite
		vs.pos = len(d.log)
		return
	}
	if vs.owned {
		if vs.owner == tid {
			vs.written = vs.written || isWrite
			return // thread-local fast path
		}
		// Unsound ownership handoff (the paper's thread-local extension):
		// the previous owner's accesses are forgotten without a check, so
		// a one-shot race at the handoff is missed.
		vs.owned = false
		vs.gls = map[device]struct{}{threadDev(tid): {}}
		vs.pos = len(d.log)
		vs.written = isWrite
		return
	}

	// Lockset mode: catch up on the synchronization log, then check
	// membership. A read only conflicts with the last write, so it checks
	// membership only when the set is seeded from a write; a write
	// conflicts with both the last write and all reads since, all of
	// which are in the set.
	d.replay(vs)
	me := threadDev(tid)
	if _, ok := vs.gls[me]; !ok && len(vs.gls) > 0 && (isWrite || vs.written) {
		d.reportRace(vs, x, tid, i, isWrite)
	}
	if isWrite {
		clear(vs.gls)
		vs.written = true
	}
	vs.gls[me] = struct{}{}
}

// replay applies the pending transfer rules to the location's set.
func (d *Detector) replay(vs *varState) {
	for _, ent := range d.log[vs.pos:] {
		d.st.LockSetOps++
		if _, ok := vs.gls[ent.trigger]; ok {
			vs.gls[ent.adds] = struct{}{}
		}
	}
	vs.pos = len(d.log)
}

func (d *Detector) reportRace(vs *varState, x uint64, tid int32, i int, isWrite bool) {
	if vs.flagged {
		return
	}
	vs.flagged = true
	kind := rr.WriteRead
	if isWrite {
		kind = rr.WriteWrite
	}
	d.races = append(d.races, rr.Report{Var: x, Kind: kind, Tid: tid, PrevTid: -1, Index: i, PrevIndex: -1})
}

// Races implements rr.Tool.
func (d *Detector) Races() []rr.Report { return d.races }

// Stats implements rr.Tool; the synchronization log is charged to shadow
// memory, reflecting Goldilocks' real footprint problem.
func (d *Detector) Stats() rr.Stats {
	st := d.st
	bytes := int64(cap(d.log)) * 16
	for i := range d.vars {
		bytes += 40 + int64(len(d.vars[i].gls))*16
	}
	st.ShadowBytes = bytes
	return st
}
