package goldilocks

import (
	"testing"

	"fasttrack/trace"
)

func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	d := New(4, 8)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

func TestLockTransferAcceptsDiscipline(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1), trace.ForkOf(0, 2))
	for i := 0; i < 6; i++ {
		for tid := int32(0); tid < 3; tid++ {
			tr = append(tr, trace.Acq(tid, 5), trace.Rd(tid, 1), trace.Wr(tid, 1), trace.Rel(tid, 5))
		}
	}
	if races := run(t, tr).Races(); len(races) != 0 {
		t.Errorf("false alarm on lock discipline: %v", races)
	}
}

func TestForkJoinTransfer(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		// Establish lockset mode with an ordered handoff first.
		trace.Acq(1, 5), trace.Wr(1, 1), trace.Rel(1, 5),
		trace.Acq(2, 5), trace.Wr(2, 1), trace.Rel(2, 5),
		trace.JoinOf(0, 2), // thread 2's accesses transfer to thread 0
		trace.Wr(0, 1),     // no race: join ordered it
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarm across join: %v", races)
	}
}

func TestVolatileTransfer(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(1, 1),  // handoff target below
		trace.Wr(2, 1),  // unsound handoff: lockset mode begins
		trace.VWr(2, 0), // thread 2 publishes
		trace.VRd(0, 0), // thread 0 observes
		trace.Wr(0, 1),  // ordered via the volatile: no race
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarm across volatile: %v", races)
	}
}

func TestBarrierTransfer(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(1, 1),
		trace.Wr(2, 1), // handoff: lockset mode, GLS={2}
		trace.Barrier(0, 0, 1, 2),
		trace.Wr(0, 1), // ordered by the barrier
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarm across barrier: %v", races)
	}
}

func TestCatchesUnsyncedThirdAccess(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(0, 1),
		trace.Wr(1, 1), // handoff: missed by design
		trace.Wr(2, 1), // lockset mode: caught
	})
	if races := d.Races(); len(races) != 1 {
		t.Errorf("races = %v, want 1", races)
	}
}

func TestThreadLocalFastPathNoLogReplay(t *testing.T) {
	d := New(2, 2)
	d.HandleEvent(0, trace.Wr(0, 1))
	for i := 0; i < 50; i++ {
		d.HandleEvent(i+1, trace.Acq(0, 3))
		d.HandleEvent(i+2, trace.Rel(0, 3))
		d.HandleEvent(i+3, trace.Wr(0, 1))
	}
	if ops := d.Stats().LockSetOps; ops != 0 {
		t.Errorf("thread-local accesses replayed %d log entries; owned mode must skip", ops)
	}
}

func TestLazyReplayCost(t *testing.T) {
	// The replay cost is proportional to sync operations between
	// consecutive accesses of the variable — Goldilocks' characteristic
	// expense.
	d := New(3, 2)
	d.HandleEvent(0, trace.ForkOf(0, 1))
	d.HandleEvent(1, trace.Acq(0, 5))
	d.HandleEvent(2, trace.Wr(0, 1))
	d.HandleEvent(3, trace.Rel(0, 5))
	d.HandleEvent(4, trace.Acq(1, 5))
	d.HandleEvent(5, trace.Wr(1, 1)) // handoff, pos snapshots here
	d.HandleEvent(6, trace.Rel(1, 5))
	for i := 0; i < 30; i++ { // 60 sync log entries
		d.HandleEvent(10+i, trace.Acq(0, 7))
		d.HandleEvent(40+i, trace.Rel(0, 7))
	}
	before := d.Stats().LockSetOps
	d.HandleEvent(100, trace.Acq(0, 5))
	d.HandleEvent(101, trace.Wr(0, 1)) // must replay the 60+ entries
	if got := d.Stats().LockSetOps - before; got < 60 {
		t.Errorf("replayed %d entries, want >= 60", got)
	}
}

func TestReadReadNeverRaces(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Rd(0, 1),
		trace.Rd(1, 1), // handoff
		trace.Rd(0, 1), // reads don't conflict
		trace.Rd(1, 1),
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("read-read reported as race: %v", races)
	}
}

func TestLogGrowthChargedToShadowMemory(t *testing.T) {
	d := New(2, 2)
	before := d.Stats().ShadowBytes
	for i := 0; i < 1000; i++ {
		d.HandleEvent(i, trace.Acq(0, uint64(i%7)))
		d.HandleEvent(i, trace.Rel(0, uint64(i%7)))
	}
	after := d.Stats().ShadowBytes
	if after <= before {
		t.Errorf("sync log growth not visible in shadow bytes: %d -> %d", before, after)
	}
}

func TestName(t *testing.T) {
	if New(0, 0).Name() != "Goldilocks" {
		t.Error("bad name")
	}
}
