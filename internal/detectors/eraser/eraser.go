// Package eraser implements the Eraser LockSet race detection algorithm
// of Savage et al. (TOCS 1997), as reimplemented for the FastTrack
// paper's evaluation: extended to handle barrier synchronization (the
// MultiRace extension the paper cites) but otherwise the classic,
// deliberately unsound-and-imprecise protocol.
//
// Eraser enforces a locking discipline rather than computing
// happens-before: each location's candidate lock set C(x) is the
// intersection of the locks held at every access, and an empty C(x) on a
// location in the shared-modified state produces a warning. The protocol
// intentionally ignores fork/join and volatile ordering (source of the
// paper's Eraser false alarms) and delays checking until a location
// leaves its thread-local initialization states (source of the missed
// hedc races, Section 5.1).
package eraser

import (
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// state is the Eraser per-location state machine.
type state uint8

const (
	virgin state = iota
	exclusive
	shared
	sharedModified
)

type varState struct {
	st      state
	owner   int32
	lockset []uint64 // nil until first shared access
	haveSet bool     // distinguishes nil "not yet tracked" from empty
	gen     uint32   // barrier generation at last access
	flagged bool
}

// Detector is the Eraser analysis state. It implements rr.Tool and
// rr.Prefilter.
type Detector struct {
	vars  []varState
	held  [][]uint64 // sorted lock sets currently held, per thread
	gen   uint32     // global barrier generation
	races []rr.Report
	st    rr.Stats
}

var (
	_ rr.Tool      = (*Detector)(nil)
	_ rr.Prefilter = (*Detector)(nil)
)

// New returns an Eraser detector with capacity hints.
func New(threadHint, varHint int) *Detector {
	d := &Detector{}
	if threadHint > 0 {
		d.held = make([][]uint64, 0, threadHint)
	}
	if varHint > 0 {
		d.vars = make([]varState, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "Eraser" }

func (d *Detector) variable(x uint64) *varState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, varState{})
	}
	return &d.vars[x]
}

func (d *Detector) heldBy(t int32) []uint64 {
	for int(t) >= len(d.held) {
		d.held = append(d.held, nil)
	}
	return d.held[t]
}

// HandleEvent implements rr.Tool.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	d.st.Events++
	switch e.Kind {
	case trace.Read:
		d.st.Reads++
		d.access(i, e.Tid, e.Target, false)
	case trace.Write:
		d.st.Writes++
		d.access(i, e.Tid, e.Target, true)
	case trace.Acquire:
		d.st.CountKind(e.Kind)
		d.heldBy(e.Tid) // materialize
		d.held[e.Tid] = insertSorted(d.held[e.Tid], e.Target)
	case trace.Release:
		d.st.CountKind(e.Kind)
		d.heldBy(e.Tid)
		d.held[e.Tid] = removeSorted(d.held[e.Tid], e.Target)
	case trace.BarrierRelease:
		d.st.CountKind(e.Kind)
		// Barrier extension: all locations restart the ownership protocol
		// after a barrier, so barrier-phased programs (sor, lufact,
		// moldyn) do not flood the user with spurious warnings.
		d.gen++
	case trace.Fork, trace.Join, trace.VolatileRead, trace.VolatileWrite,
		trace.ChanSend, trace.ChanRecv, trace.ChanClose:
		// Classic Eraser tracks no happens-before: these are ignored,
		// which is exactly why it false-alarms on fork-join, volatile-
		// publication, and channel-handoff idioms.
		d.st.CountKind(e.Kind)
	case trace.TxBegin, trace.TxEnd:
		d.st.CountKind(e.Kind)
	}
}

// HandleFilter implements rr.Prefilter: accesses to locations still in a
// thread-local state (virgin/exclusive) are proven race-free by the
// locking discipline and filtered; shared locations pass (Section 5.2).
func (d *Detector) HandleFilter(i int, e trace.Event) bool {
	d.HandleEvent(i, e)
	if !e.Kind.IsAccess() {
		return true
	}
	st := d.variable(e.Target).st
	return st == shared || st == sharedModified
}

// access runs the Eraser state machine for one read or write.
func (d *Detector) access(i int, tid int32, x uint64, isWrite bool) {
	vs := d.variable(x)
	if vs.gen != d.gen {
		// First access after a barrier: restart the protocol.
		vs.st = virgin
		vs.lockset = nil
		vs.haveSet = false
		vs.gen = d.gen
	}
	switch vs.st {
	case virgin:
		vs.st = exclusive
		vs.owner = tid
	case exclusive:
		if tid == vs.owner {
			return
		}
		// First genuinely shared access: initialize the candidate set to
		// the locks held right now. Any race against the initializing
		// thread's accesses is missed here — Eraser's documented
		// unsoundness for thread-local data.
		vs.lockset = append([]uint64(nil), d.heldBy(tid)...)
		vs.haveSet = true
		d.st.LockSetOps++
		if isWrite {
			vs.st = sharedModified
			d.check(vs, x, tid, i)
		} else {
			vs.st = shared
		}
	case shared:
		d.intersect(vs, tid)
		if isWrite {
			vs.st = sharedModified
			d.check(vs, x, tid, i)
		}
	case sharedModified:
		d.intersect(vs, tid)
		d.check(vs, x, tid, i)
	}
}

// intersect refines C(x) with the accessor's held locks.
func (d *Detector) intersect(vs *varState, tid int32) {
	d.st.LockSetOps++
	vs.lockset = intersectSorted(vs.lockset, d.heldBy(tid))
}

// check warns (once per location) if C(x) is empty in shared-modified.
func (d *Detector) check(vs *varState, x uint64, tid int32, i int) {
	if vs.flagged || !vs.haveSet || len(vs.lockset) != 0 {
		return
	}
	vs.flagged = true
	d.races = append(d.races, rr.Report{
		Var: x, Kind: rr.LockSetViolation, Tid: tid, PrevTid: -1, Index: i, PrevIndex: -1,
	})
}

// Races implements rr.Tool.
func (d *Detector) Races() []rr.Report { return d.races }

// Stats implements rr.Tool.
func (d *Detector) Stats() rr.Stats {
	st := d.st
	var bytes int64
	for i := range d.vars {
		bytes += 24 + int64(cap(d.vars[i].lockset))*8
	}
	for _, h := range d.held {
		bytes += int64(cap(h)) * 8
	}
	st.ShadowBytes = bytes
	return st
}

// insertSorted adds m to a sorted slice if absent.
func insertSorted(s []uint64, m uint64) []uint64 {
	lo := 0
	for lo < len(s) && s[lo] < m {
		lo++
	}
	if lo < len(s) && s[lo] == m {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = m
	return s
}

// removeSorted deletes m from a sorted slice if present.
func removeSorted(s []uint64, m uint64) []uint64 {
	for i, v := range s {
		if v == m {
			return append(s[:i], s[i+1:]...)
		}
		if v > m {
			break
		}
	}
	return s
}

// intersectSorted intersects two sorted slices, reusing a's storage.
func intersectSorted(a, b []uint64) []uint64 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
