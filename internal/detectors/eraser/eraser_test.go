package eraser

import (
	"reflect"
	"testing"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	d := New(4, 8)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

func TestStateMachineVirginToExclusive(t *testing.T) {
	// A single-threaded variable never warns, with or without locks.
	d := run(t, trace.Trace{
		trace.Wr(0, 1), trace.Rd(0, 1), trace.Wr(0, 1),
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("thread-local data warned: %v", races)
	}
}

func TestReadSharedNeverWarns(t *testing.T) {
	// Shared (read-only after initialization) data stays silent even
	// with an empty lock set: the classic Eraser refinement.
	d := run(t, trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Rd(1, 1),
		trace.Rd(2, 1),
		trace.Rd(1, 1),
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("read-shared data warned: %v", races)
	}
}

func TestSharedModifiedEmptyLocksetWarns(t *testing.T) {
	d := run(t, trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.Rd(1, 1), // shared
		trace.Wr(1, 1), // shared-modified, no lock: warn
	})
	races := d.Races()
	if len(races) != 1 || races[0].Kind != rr.LockSetViolation {
		t.Fatalf("races = %v", races)
	}
}

func TestConsistentLockNeverWarns(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < 10; i++ {
		for tid := int32(0); tid < 2; tid++ {
			tr = append(tr, trace.Acq(tid, 5), trace.Rd(tid, 1), trace.Wr(tid, 1), trace.Rel(tid, 5))
		}
	}
	if races := run(t, tr).Races(); len(races) != 0 {
		t.Errorf("lock-disciplined data warned: %v", races)
	}
}

func TestLocksetIntersectionAcrossLocks(t *testing.T) {
	// The candidate set is initialized at the first shared access (the
	// exclusive owner's locks are never consulted — Eraser's documented
	// unsoundness), then intersected on every later access: {1,2} ∩
	// {2,3} = {2} stays nonempty; a final access under {3} empties it.
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 9), // exclusive(0)
		trace.Acq(1, 1), trace.Acq(1, 2), trace.Wr(1, 9), trace.Rel(1, 2), trace.Rel(1, 1),
		trace.Acq(0, 2), trace.Acq(0, 3), trace.Wr(0, 9), trace.Rel(0, 3), trace.Rel(0, 2),
	}
	d := run(t, tr)
	if races := d.Races(); len(races) != 0 {
		t.Fatalf("nonempty intersection warned: %v", races)
	}
	d.HandleEvent(100, trace.Acq(1, 3))
	d.HandleEvent(101, trace.Wr(1, 9))
	d.HandleEvent(102, trace.Rel(1, 3))
	if races := d.Races(); len(races) != 1 {
		t.Errorf("empty intersection should warn once: %v", races)
	}
}

func TestIgnoresForkJoinOrdering(t *testing.T) {
	// Fork-join ordered handoff: race-free, but Eraser warns — its
	// defining imprecision (Table 1's spurious warnings).
	d := run(t, trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.Wr(1, 1),
	})
	if races := d.Races(); len(races) != 1 {
		t.Errorf("expected the classic fork-join false alarm, got %v", races)
	}
}

func TestBarrierGenerationReset(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Barrier(0, 0, 1),
		trace.Wr(1, 1), // fresh generation: protocol restarts
		trace.Rd(1, 1),
	})
	if races := d.Races(); len(races) != 0 {
		t.Errorf("barrier extension failed: %v", races)
	}
}

func TestPrefilterPassesSharedOnly(t *testing.T) {
	d := New(2, 4)
	if d.HandleFilter(0, trace.Wr(0, 1)) {
		t.Error("virgin->exclusive access must be filtered")
	}
	if d.HandleFilter(1, trace.Wr(0, 1)) {
		t.Error("exclusive access must be filtered")
	}
	if !d.HandleFilter(2, trace.ForkOf(0, 1)) {
		t.Error("sync must pass")
	}
	if !d.HandleFilter(3, trace.Rd(1, 1)) {
		t.Error("shared access must pass")
	}
	if !d.HandleFilter(4, trace.Wr(1, 1)) {
		t.Error("shared-modified access must pass")
	}
}

func TestSortedSetHelpers(t *testing.T) {
	s := insertSorted(nil, 5)
	s = insertSorted(s, 1)
	s = insertSorted(s, 9)
	s = insertSorted(s, 5) // duplicate
	if !reflect.DeepEqual(s, []uint64{1, 5, 9}) {
		t.Fatalf("insertSorted = %v", s)
	}
	s = removeSorted(s, 5)
	if !reflect.DeepEqual(s, []uint64{1, 9}) {
		t.Fatalf("removeSorted = %v", s)
	}
	s = removeSorted(s, 7) // absent
	if !reflect.DeepEqual(s, []uint64{1, 9}) {
		t.Fatalf("removeSorted(absent) = %v", s)
	}
	got := intersectSorted([]uint64{1, 3, 5, 7}, []uint64{3, 4, 7, 9})
	if !reflect.DeepEqual(got, []uint64{3, 7}) {
		t.Fatalf("intersectSorted = %v", got)
	}
	if got := intersectSorted([]uint64{1}, nil); len(got) != 0 {
		t.Fatalf("intersect with empty = %v", got)
	}
}

func TestStatsCount(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 5), trace.Rd(0, 1), trace.Wr(0, 1), trace.Rel(0, 5),
	})
	st := d.Stats()
	if st.Events != 5 || st.Reads != 1 || st.Writes != 1 || st.Syncs != 3 {
		t.Errorf("stats = %+v", st)
	}
}
