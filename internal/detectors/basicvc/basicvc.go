// Package basicvc implements BASICVC, the traditional vector-clock race
// detector the FastTrack paper uses as its unoptimized baseline
// (Section 5.1): it maintains a read VC and a write VC for every memory
// location and performs at least one O(n) vector-clock comparison on
// every memory access — no same-epoch fast paths at all. The roughly 10x
// gap between BasicVC and FastTrack is the headline result of Table 1.
package basicvc

import (
	"fasttrack/internal/detectors/vcbase"
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

type varState struct {
	r, w    vc.VC
	flagged bool
}

// Detector is the BasicVC analysis state. It implements rr.Tool.
type Detector struct {
	sync  vcbase.Sync
	vars  []varState
	races []rr.Report
}

var _ rr.Tool = (*Detector)(nil)

// New returns a BasicVC detector with capacity hints.
func New(threadHint, varHint int) *Detector {
	d := &Detector{sync: vcbase.NewSync(threadHint)}
	if varHint > 0 {
		d.vars = make([]varState, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "BasicVC" }

func (d *Detector) variable(x uint64) *varState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, varState{})
	}
	return &d.vars[x]
}

func (d *Detector) report(vs *varState, x uint64, kind rr.RaceKind, t int32, prev vc.Tid, i int) {
	if vs.flagged {
		return
	}
	vs.flagged = true
	d.races = append(d.races, rr.Report{Var: x, Kind: kind, Tid: t, PrevTid: int32(prev), Index: i, PrevIndex: -1})
}

// HandleEvent implements rr.Tool.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	d.sync.St.Events++
	if d.sync.HandleSync(e) {
		return
	}
	ts := d.sync.Thread(e.Tid)
	vs := d.variable(e.Target)
	t := vc.Tid(e.Tid)
	if e.Kind == trace.Read {
		d.sync.St.Reads++
		d.sync.St.ReadExclusive++
		// Race-free read: W_x ⊑ C_t. Always a full comparison.
		d.sync.St.VCOp++
		if prev := vs.w.FirstExceeding(ts.C); prev >= 0 {
			d.report(vs, e.Target, rr.WriteRead, e.Tid, prev, i)
		}
		if vs.r == nil {
			vs.r = vc.New(len(d.sync.Threads))
			d.sync.St.VCAlloc++
		}
		vs.r = vs.r.Set(t, ts.C.Get(t))
		return
	}
	d.sync.St.Writes++
	d.sync.St.WriteExclusive++
	// Race-free write: W_x ⊑ C_t and R_x ⊑ C_t. Two full comparisons.
	d.sync.St.VCOp += 2
	if prev := vs.w.FirstExceeding(ts.C); prev >= 0 {
		d.report(vs, e.Target, rr.WriteWrite, e.Tid, prev, i)
	}
	if prev := vs.r.FirstExceeding(ts.C); prev >= 0 {
		d.report(vs, e.Target, rr.ReadWrite, e.Tid, prev, i)
	}
	if vs.w == nil {
		vs.w = vc.New(len(d.sync.Threads))
		d.sync.St.VCAlloc++
	}
	vs.w = vs.w.Set(t, ts.C.Get(t))
}

// Races implements rr.Tool.
func (d *Detector) Races() []rr.Report { return d.races }

// Stats implements rr.Tool.
func (d *Detector) Stats() rr.Stats {
	st := d.sync.St
	bytes := d.sync.SyncShadowBytes()
	for i := range d.vars {
		bytes += 8
		bytes += int64(d.vars[i].r.Bytes() + d.vars[i].w.Bytes())
	}
	st.ShadowBytes = bytes
	return st
}
