package basicvc

import (
	"testing"

	"fasttrack/trace"
)

func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	d := New(4, 8)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

func TestDetectsRaces(t *testing.T) {
	d := run(t, trace.Trace{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Wr(1, 1)})
	if races := d.Races(); len(races) != 1 {
		t.Fatalf("races = %v", races)
	}
}

func TestAcceptsLockDiscipline(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9), trace.Wr(0, 1), trace.Rel(0, 9),
		trace.Acq(1, 9), trace.Rd(1, 1), trace.Rel(1, 9),
	})
	if races := d.Races(); len(races) != 0 {
		t.Fatalf("false alarm: %v", races)
	}
}

// TestNoFastPath is BasicVC's defining property: every access costs at
// least one O(n) vector-clock comparison — there is no same-epoch
// shortcut.
func TestNoFastPath(t *testing.T) {
	d := New(1, 1)
	for i := 0; i < 10; i++ {
		d.HandleEvent(i, trace.Rd(0, 0))
	}
	st := d.Stats()
	if st.VCOp < 10 {
		t.Errorf("VCOp = %d after 10 reads; BasicVC must compare on every access", st.VCOp)
	}
	if st.ReadSameEpoch != 0 {
		t.Errorf("BasicVC has no same-epoch rule; counter = %d", st.ReadSameEpoch)
	}
	before := st.VCOp
	for i := 0; i < 10; i++ {
		d.HandleEvent(100+i, trace.Wr(0, 0))
	}
	if got := d.Stats().VCOp - before; got < 20 {
		t.Errorf("writes cost %d VC ops, want >= 20 (two comparisons each)", got)
	}
}

func TestOneReportPerVariable(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1), trace.Wr(1, 1), trace.Wr(0, 1),
	})
	if races := d.Races(); len(races) != 1 {
		t.Errorf("races = %v", races)
	}
}

func TestName(t *testing.T) {
	if New(0, 0).Name() != "BasicVC" {
		t.Error("bad name")
	}
}
