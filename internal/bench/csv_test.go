package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// parseCSV reads back what a renderer wrote, enforcing rectangularity.
func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("renderer emitted invalid CSV: %v", err)
	}
	return rows
}

func TestCSVRenderers(t *testing.T) {
	cfg := Config{Scale: 0.05, Runs: 1}
	var buf bytes.Buffer

	if err := Table1CSV(&buf, Table1(cfg)); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 17 { // header + 16 benchmarks
		t.Errorf("table 1: %d rows, want 17", len(rows))
	}
	if rows[0][0] != "benchmark" || !strings.Contains(strings.Join(rows[0], ","), "slowdown_FastTrack") {
		t.Errorf("table 1 header: %v", rows[0])
	}

	buf.Reset()
	if err := Table2CSV(&buf, Table2(cfg)); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 17 || len(rows[1]) != 5 {
		t.Errorf("table 2 shape: %dx%d", len(rows), len(rows[1]))
	}

	buf.Reset()
	if err := Table3CSV(&buf, Table3(cfg)); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 17 || len(rows[1]) != 10 {
		t.Errorf("table 3 shape: %dx%d", len(rows), len(rows[1]))
	}

	buf.Reset()
	if err := ComposeCSV(&buf, Compose(Config{Scale: 0.03, Runs: 1})); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 4 { // header + 3 checkers
		t.Errorf("compose rows = %d", len(rows))
	}

	buf.Reset()
	if err := ScalingCSV(&buf, Scaling(Config{Scale: 0.1, Runs: 1}, []int{2, 4})); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 3 {
		t.Errorf("scaling rows = %d", len(rows))
	}

	buf.Reset()
	if err := AccordionCSV(&buf, Accordion(cfg, [][2]int{{2, 4}})); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf); len(rows) != 2 {
		t.Errorf("accordion rows = %d", len(rows))
	}
}
