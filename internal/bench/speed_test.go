package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSpeedShape checks the raw-speed table's structure at unit-test
// scale. The >= 2x throughput gate is asserted on the full-scale
// artifact in CI, not here: at 0.1x the working sets collapse into
// cache and the ratio measures only shared dispatch overhead.
func TestSpeedShape(t *testing.T) {
	rep, err := Speed(Config{Scale: 0.1, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SpeedSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, SpeedSchema)
	}
	want := []string{"same-epoch", "sweep", "read-shared", "first-touch", "mixed"}
	if len(rep.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(want))
	}
	for i, r := range rep.Rows {
		if r.Workload != want[i] {
			t.Errorf("row %d: workload %q, want %q", i, r.Workload, want[i])
		}
		if r.Events <= 0 {
			t.Errorf("%s: no events", r.Workload)
		}
		if r.BaselineNsPerEvent <= 0 || r.NsPerEvent <= 0 {
			t.Errorf("%s: non-positive timing (baseline %.2f, current %.2f)",
				r.Workload, r.BaselineNsPerEvent, r.NsPerEvent)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s: non-positive speedup %.2f", r.Workload, r.Speedup)
		}
	}
	if rep.GeomeanSpeedup <= 0 {
		t.Errorf("non-positive geomean %.2f", rep.GeomeanSpeedup)
	}

	var buf bytes.Buffer
	if err := WriteSpeedJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back SpeedReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact does not round-trip: %v", err)
	}
	if back.GeomeanSpeedup != rep.GeomeanSpeedup || len(back.Rows) != len(rep.Rows) {
		t.Error("artifact round-trip lost fields")
	}

	var tbl strings.Builder
	FprintSpeed(&tbl, rep)
	for _, w := range want {
		if !strings.Contains(tbl.String(), w) {
			t.Errorf("rendered table missing workload %q", w)
		}
	}
}
