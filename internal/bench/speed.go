package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"text/tabwriter"
	"time"

	"fasttrack/internal/core"
	"fasttrack/trace"
)

// SpeedSchema versions the BENCH_speed.json artifact.
const SpeedSchema = "fasttrack/bench-speed/v1"

// SpeedReport is the machine-readable raw-speed artifact: serial
// per-event throughput of the current detector against the frozen
// pre-refactor baseline (speed_baseline.go), measured in the same
// process on the same event streams. The per-workload Speedup columns
// and their geometric mean are therefore host-independent ratios; the
// CI gate asserts GeomeanSpeedup >= 2.
type SpeedReport struct {
	Schema         string     `json:"schema"`
	CPUs           int        `json:"cpus"`
	Runs           int        `json:"runs"`
	Rows           []SpeedRow `json:"rows"`
	GeomeanSpeedup float64    `json:"geomeanSpeedup"`
}

// SpeedRow is one workload's measurement, best-of-runs per side.
type SpeedRow struct {
	Workload           string  `json:"workload"`
	Events             int     `json:"events"`
	BaselineNsPerEvent float64 `json:"baselineNsPerEvent"`
	NsPerEvent         float64 `json:"nsPerEvent"`
	Speedup            float64 `json:"speedup"`
}

// speedWorkloads builds the event streams. Each models a regime of the
// paper's benchmark suite at realistic scale: millions of live shadow
// locations, field-clustered accesses (rr.FieldsPerObject contiguous
// ids per object), and synchronization at the low trace frequencies
// Table 1 reports (accesses are >96% of events) rather than as a
// synthetic sync-only stream. At this scale shadow memory traffic —
// bytes moved per access — dominates per-event cost, which is exactly
// the axis the struct-of-arrays refactor targets; a hot-L1 microloop
// would instead measure the shared dispatch overhead both detectors pay
// identically.
func speedWorkloads(scale float64) []struct {
	name   string
	events []trace.Event
} {
	n := func(base int) int {
		k := int(float64(base) * scale)
		if k < base/10 {
			k = base / 10
		}
		return k
	}
	const fields = 8 // rr.FieldsPerObject: ids cluster as real objects' fields do
	var out []struct {
		name   string
		events []trace.Event
	}
	add := func(name string, evs []trace.Event) {
		out = append(out, struct {
			name   string
			events []trace.Event
		}{name, evs})
	}

	// same-epoch: one thread re-reading a large object graph between
	// synchronizations — the >96% fast-path regime at a size where the
	// read epochs' density (8 per cache line against the old layout's
	// 1.33 variables) decides throughput. Pass 1 writes every field
	// (first touch), pass 2 re-reads (exclusive), passes 3-4 hit
	// [FT READ SAME EPOCH] on every access and touch only r[].
	{
		objs := n(250_000)
		evs := make([]trace.Event, 0, 6*objs*fields)
		for o := 0; o < objs; o++ {
			for f := 0; f < fields; f++ {
				evs = append(evs, trace.Wr(1, uint64(o*fields+f)))
			}
		}
		for pass := 0; pass < 5; pass++ {
			for o := 0; o < objs; o++ {
				for f := 0; f < fields; f++ {
					evs = append(evs, trace.Rd(1, uint64(o*fields+f)))
				}
			}
		}
		add("same-epoch", evs)
	}

	// sweep: a wide space re-walked with the epoch advanced between
	// passes, so every access takes the exclusive slow rules — the
	// regime that measures the full R/W-epoch update cost at scale
	// (object allocation churn, init-then-scan phases).
	{
		vars := n(800_000)
		evs := make([]trace.Event, 0, 3*(2*vars+1))
		for pass := 0; pass < 3; pass++ {
			evs = append(evs, trace.Rel(1, 1<<20))
			for x := 0; x < vars; x++ {
				evs = append(evs, trace.Wr(1, uint64(x)), trace.Rd(1, uint64(x)))
			}
		}
		add("sweep", evs)
	}

	// read-shared: four threads over a large read-mostly table
	// (promoted read histories), the [FT READ SHARED] regime: one
	// in-place vector-clock component store per access. Readers' clocks
	// advance between rounds so the stores are not idempotent.
	{
		vars := n(500_000)
		evs := make([]trace.Event, 0, vars+8*vars+64)
		evs = append(evs, trace.ForkOf(0, 1), trace.ForkOf(0, 2), trace.ForkOf(0, 3), trace.ForkOf(0, 4))
		for x := 0; x < vars; x++ {
			evs = append(evs, trace.Wr(0, uint64(x)))
		}
		evs = append(evs, trace.Rel(0, 9))
		for t := int32(1); t <= 4; t++ {
			evs = append(evs, trace.Acq(t, 9))
		}
		for round := 0; round < 2; round++ {
			for t := int32(1); t <= 4; t++ {
				for x := 0; x < vars; x++ {
					evs = append(evs, trace.Rd(t, uint64(x)))
				}
				// Advance the reader's epoch so next round's component
				// stores carry new clocks.
				evs = append(evs, trace.Rel(t, uint64(20+t)))
			}
		}
		add("read-shared", evs)
	}

	// first-touch: every access hits a fresh location — the shadow
	// growth regime of allocation-heavy phases. The old layout appends a
	// 48-byte record per variable (with a read-vector pointer the
	// collector scans on every cycle); the new one appends two epochs
	// into pointer-free arrays.
	{
		vars := n(3_000_000)
		evs := make([]trace.Event, 0, vars)
		for x := 0; x < vars; x++ {
			evs = append(evs, trace.Wr(1, uint64(x)))
		}
		add("first-touch", evs)
	}

	// mixed: two threads working disjoint object ranges with
	// lock-protected phases — the end-to-end mix of Table 1: ~45%
	// same-epoch hits, ~55% exclusive updates, synchronization at under
	// 1% of events, over a shadow space too large for caches to hide
	// the layout.
	{
		objsPer := n(100_000)
		evs := make([]trace.Event, 0, 2*2*objsPer*(fields+1)+4*objsPer/16)
		evs = append(evs, trace.ForkOf(0, 1), trace.ForkOf(0, 2))
		for pass := 0; pass < 2; pass++ {
			for j := 0; j < objsPer; j++ {
				for t := int32(1); t <= 2; t++ {
					base := uint64((int(t-1)*objsPer + j) * fields)
					evs = append(evs,
						trace.Wr(t, base), trace.Rd(t, base+1), trace.Rd(t, base+2), trace.Rd(t, base+3),
						trace.Rd(t, base), trace.Rd(t, base+1), trace.Rd(t, base+2), trace.Rd(t, base+3),
						trace.Rd(t, base))
					if j%64 == 63 {
						m := uint64(4096 + (j/64)%1024)
						evs = append(evs, trace.Acq(t, m), trace.Rel(t, m))
					}
				}
			}
		}
		add("mixed", evs)
	}
	return out
}

// speedTimeBaseline and speedTimeCurrent replay evs through a fresh
// detector with direct concrete-type calls — no interface or method
// value indirection, which would add identical overhead to both sides
// and dilute the measured ratio.
func speedTimeBaseline(evs []trace.Event) time.Duration {
	d := newSpeedBaseline()
	t0 := time.Now()
	for i, e := range evs {
		d.HandleEvent(i, e)
	}
	return time.Since(t0)
}

func speedTimeCurrent(evs []trace.Event) time.Duration {
	d := core.New(0, 0)
	t0 := time.Now()
	for i, e := range evs {
		d.HandleEvent(i, e)
	}
	return time.Since(t0)
}

// Speed produces the raw-speed table. Both detectors are concrete types
// fed through direct loops (no Monitor, no interface dispatch), so the
// ratio isolates the shadow-storage layout and allocation behavior.
// Before timing, each workload is checked for race-report equivalence
// between the two detectors — a baseline that diverges would make the
// ratio meaningless.
func Speed(cfg Config) (SpeedReport, error) {
	rep := SpeedReport{
		Schema: SpeedSchema,
		CPUs:   runtime.GOMAXPROCS(0),
		Runs:   cfg.runs(),
	}
	for _, w := range speedWorkloads(cfg.Scale) {
		// Equivalence check (untimed).
		bl := newSpeedBaseline()
		cur := core.New(0, 0)
		for i, e := range w.events {
			bl.HandleEvent(i, e)
			cur.HandleEvent(i, e)
		}
		if b, c := len(bl.Races()), len(cur.Races()); b != c {
			return rep, fmt.Errorf("speed workload %q: baseline reports %d races, current %d", w.name, b, c)
		}

		best := func(once func([]trace.Event) time.Duration) time.Duration {
			var bestEl time.Duration
			for r := 0; r < cfg.runs(); r++ {
				if el := once(w.events); bestEl == 0 || el < bestEl {
					bestEl = el
				}
			}
			return bestEl
		}
		blEl := best(speedTimeBaseline)
		curEl := best(speedTimeCurrent)
		row := SpeedRow{
			Workload:           w.name,
			Events:             len(w.events),
			BaselineNsPerEvent: float64(blEl.Nanoseconds()) / float64(len(w.events)),
			NsPerEvent:         float64(curEl.Nanoseconds()) / float64(len(w.events)),
		}
		row.Speedup = row.BaselineNsPerEvent / row.NsPerEvent
		rep.Rows = append(rep.Rows, row)
	}
	g := 1.0
	for _, r := range rep.Rows {
		g *= r.Speedup
	}
	rep.GeomeanSpeedup = math.Pow(g, 1/float64(len(rep.Rows)))
	return rep, nil
}

// WriteSpeedJSON writes the artifact as indented JSON.
func WriteSpeedJSON(w io.Writer, rep SpeedReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintSpeed renders the raw-speed table.
func FprintSpeed(w io.Writer, rep SpeedReport) {
	fmt.Fprintf(w, "Serial per-event throughput vs frozen pre-refactor baseline, best of %d, %d CPU(s)\n\n",
		rep.Runs, rep.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Workload\tEvents\tbaseline ns/ev\tns/ev\tspeedup")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2fx\n",
			r.Workload, r.Events, r.BaselineNsPerEvent, r.NsPerEvent, r.Speedup)
	}
	tw.Flush()
	fmt.Fprintf(w, "\ngeomean speedup: %.2fx\n", rep.GeomeanSpeedup)
	fmt.Fprintln(w, "(same process, same streams: the ratio isolates the struct-of-arrays")
	fmt.Fprintln(w, " shadow layout, slab pools and zero-alloc fast paths of DESIGN.md §13)")
}
