package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"fasttrack/internal/core"
	"fasttrack/trace"
)

// ProvenanceSchema versions the BENCH_provenance.json artifact.
const ProvenanceSchema = "fasttrack/bench-provenance/v1"

// ProvenanceReport is the machine-readable flight-recorder artifact:
// FastTrack's per-event throughput with provenance recording off and on,
// across workload mixes chosen to stress each recorder cost (the sync
// ring push, the last-access clock snapshot, the read-shared snapshot
// table). The CI gate on Overhead is what keeps "explainable races" an
// always-affordable opt-in rather than a debugging-build luxury.
type ProvenanceReport struct {
	Schema string          `json:"schema"`
	CPUs   int             `json:"cpus"`
	Runs   int             `json:"runs"`
	Rows   []ProvenanceRow `json:"rows"`
}

// ProvenanceRow compares one workload's throughput with the recorder off
// and on. Overhead is the per-event cost ratio (enabled time over
// baseline time, ≥ 1 in the absence of noise).
type ProvenanceRow struct {
	Workload         string  `json:"workload"`
	Events           int     `json:"events"`
	BaseNs           int64   `json:"baseNs"`
	BaseEventsPerSec float64 `json:"baseEventsPerSec"`
	ProvNs           int64   `json:"provNs"`
	ProvEventsPerSec float64 `json:"provEventsPerSec"`
	Overhead         float64 `json:"overhead"`
}

// provenanceWorkloads builds the mixes the comparison sweeps. Each is
// race-free so the timed loop never degenerates into flagged-variable
// short-circuits (a reported race stops analysis of that variable, which
// would let the enabled run do less work than the baseline).
func provenanceWorkloads(events int) []struct {
	name string
	tr   []trace.Event
} {
	// epoch-heavy: single-thread read/write sweeps, the same-epoch fast
	// path the paper centers on. The recorder skips redundant accesses,
	// so this bounds the overhead of the "is this access new?" check
	// itself on the cheapest baseline.
	epoch := batchWorkload(events)

	// sync-heavy: two threads trading a lock around tiny critical
	// sections — every third event pushes onto a provenance sync ring,
	// the recorder's unskippable cost.
	sync := make([]trace.Event, 0, events)
	sync = append(sync, trace.ForkOf(0, 1), trace.ForkOf(0, 2))
	for i := 0; len(sync) < events; i++ {
		t := int32(1 + i%2)
		m := uint64(9000 + i%4)
		sync = append(sync, trace.Acq(t, m), trace.Wr(t, uint64(i%512)), trace.Rel(t, m))
	}

	// shared-heavy: rotating readers force read-shared vector clocks and
	// barrier-ordered rewrites collapse them again, so most accesses are
	// non-redundant and the recorder snapshots a clock for each.
	shared := fidelityWorkload(8, 2048, events)

	return []struct {
		name string
		tr   []trace.Event
	}{
		{"epoch-heavy", epoch},
		{"sync-heavy", sync[:events]},
		{"shared-heavy", shared},
	}
}

// provenanceRun replays the workload through a fresh detector, with or
// without the flight recorder, and times the event loop.
func provenanceRun(tr []trace.Event, provenance bool) time.Duration {
	d := core.New(0, 0)
	if provenance {
		d.EnableProvenance()
	}
	t0 := time.Now()
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return time.Since(t0)
}

// Provenance produces the recorder-overhead table. totalEvents <= 0
// defaults to 300k scaled by cfg.Scale with a 50k floor.
func Provenance(cfg Config, totalEvents int) ProvenanceReport {
	if totalEvents <= 0 {
		totalEvents = int(300_000 * cfg.Scale)
		if totalEvents < 50_000 {
			totalEvents = 50_000
		}
	}
	rep := ProvenanceReport{
		Schema: ProvenanceSchema,
		CPUs:   runtime.GOMAXPROCS(0),
		Runs:   cfg.runs(),
	}
	for _, w := range provenanceWorkloads(totalEvents) {
		var base, prov time.Duration
		// Alternate the two modes within each repetition so cache and
		// frequency drift hit both sides equally.
		for r := 0; r < cfg.runs(); r++ {
			if el := provenanceRun(w.tr, false); base == 0 || el < base {
				base = el
			}
			if el := provenanceRun(w.tr, true); prov == 0 || el < prov {
				prov = el
			}
		}
		rep.Rows = append(rep.Rows, ProvenanceRow{
			Workload:         w.name,
			Events:           len(w.tr),
			BaseNs:           base.Nanoseconds(),
			BaseEventsPerSec: float64(len(w.tr)) / base.Seconds(),
			ProvNs:           prov.Nanoseconds(),
			ProvEventsPerSec: float64(len(w.tr)) / prov.Seconds(),
			Overhead:         float64(prov.Nanoseconds()) / float64(base.Nanoseconds()),
		})
	}
	return rep
}

// WriteProvenanceJSON writes the artifact as indented JSON.
func WriteProvenanceJSON(w io.Writer, rep ProvenanceReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintProvenance renders the recorder-overhead table.
func FprintProvenance(w io.Writer, rep ProvenanceReport) {
	fmt.Fprintf(w, "Provenance flight-recorder overhead, best of %d, %d CPU(s)\n\n",
		rep.Runs, rep.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Workload\tevents\toff ms\toff ev/s\ton ms\ton ev/s\toverhead")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2fM\t%.1f\t%.2fM\t%.2fx\n",
			r.Workload, r.Events,
			float64(r.BaseNs)/1e6, r.BaseEventsPerSec/1e6,
			float64(r.ProvNs)/1e6, r.ProvEventsPerSec/1e6, r.Overhead)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(the recorder pays a sync-ring push per synchronization operation and")
	fmt.Fprintln(w, " one clock snapshot per non-redundant access; same-epoch hits skip it,")
	fmt.Fprintln(w, " so the epoch-heavy row is the relative worst case on the cheapest path)")
}
