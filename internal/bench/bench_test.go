package bench

import (
	"bytes"
	"strings"
	"testing"

	"fasttrack/internal/sim"
)

// testCfg keeps unit-test runs fast; the real harness uses Scale 1.
var testCfg = Config{Scale: 0.2, Runs: 1}

// TestTable1WarningStructure is the heart of the Table 1 reproduction:
// on every benchmark the precise tools report exactly the seeded races
// and agree with each other; Eraser reports its characteristic spurious
// warnings; MultiRace and Goldilocks miss the initialization races.
func TestTable1WarningStructure(t *testing.T) {
	rows := Table1(testCfg)
	if len(rows) != 16 {
		t.Fatalf("%d rows, want 16", len(rows))
	}

	eraserWant := map[string]int{
		"colt": 3, "crypt": 0, "lufact": 4, "moldyn": 0, "montecarlo": 0,
		"mtrt": 1, "raja": 0, "raytracer": 1, "sparse": 0, "series": 1,
		"sor": 3, "tsp": 9, "elevator": 0, "philo": 0, "hedc": 2, "jbb": 3,
	}
	goldWant := map[string]int{
		"mtrt": 1, "raytracer": 1, "tsp": 1, "jbb": 2, // recurring only
	}

	for _, r := range rows {
		ft := r.Cells["FastTrack"].Warnings
		if ft != r.KnownRaces {
			t.Errorf("%s: FastTrack reported %d races, seeded %d", r.Bench, ft, r.KnownRaces)
		}
		for _, precise := range []string{"DJIT+", "BasicVC"} {
			if got := r.Cells[precise].Warnings; got != ft {
				t.Errorf("%s: %s reported %d, FastTrack %d — precise tools must agree",
					r.Bench, precise, got, ft)
			}
		}
		if got := r.Cells["Eraser"].Warnings; got != eraserWant[r.Bench] {
			t.Errorf("%s: Eraser reported %d warnings, want %d", r.Bench, got, eraserWant[r.Bench])
		}
		if got := r.Cells["Goldilocks"].Warnings; got != goldWant[r.Bench] {
			t.Errorf("%s: Goldilocks reported %d warnings, want %d", r.Bench, got, goldWant[r.Bench])
		}
		if got := r.Cells["MultiRace"].Warnings; got > ft {
			t.Errorf("%s: MultiRace reported %d > FastTrack's %d (must never exceed precise)",
				r.Bench, got, ft)
		}
		if got := r.Cells["Empty"].Warnings; got != 0 {
			t.Errorf("%s: Empty reported %d warnings", r.Bench, got)
		}
	}

	// Aggregate: Eraser reports many more warnings than the 8 real races.
	eraserTotal, preciseTotal := 0, 0
	for _, r := range rows {
		eraserTotal += r.Cells["Eraser"].Warnings
		preciseTotal += r.Cells["FastTrack"].Warnings
	}
	if preciseTotal != 8 {
		t.Errorf("FastTrack total = %d, want 8", preciseTotal)
	}
	if eraserTotal <= preciseTotal {
		t.Errorf("Eraser total %d not above precise total %d", eraserTotal, preciseTotal)
	}
}

// TestTable2Shape: FastTrack allocates and operates on vastly fewer
// vector clocks than DJIT+ (the paper reports 155x fewer allocations and
// 72x fewer operations overall).
func TestTable2Shape(t *testing.T) {
	rows := Table2(testCfg)
	var djAlloc, ftAlloc, djOps, ftOps int64
	for _, r := range rows {
		djAlloc += r.DJITAlloc
		ftAlloc += r.FTAlloc
		djOps += r.DJITOps
		ftOps += r.FTOps
		if r.FTAlloc > r.DJITAlloc {
			t.Errorf("%s: FastTrack allocated more VCs (%d) than DJIT+ (%d)",
				r.Bench, r.FTAlloc, r.DJITAlloc)
		}
	}
	if ftAlloc*10 > djAlloc {
		t.Errorf("FastTrack allocations (%d) not an order of magnitude below DJIT+ (%d)",
			ftAlloc, djAlloc)
	}
	if ftOps*10 > djOps {
		t.Errorf("FastTrack VC ops (%d) not an order of magnitude below DJIT+ (%d)",
			ftOps, djOps)
	}
}

// TestTable3Shape: FastTrack's fine-grain shadow memory is below DJIT+'s
// on every benchmark and roughly half on the array-heavy ones; coarse
// granularity reduces both.
func TestTable3Shape(t *testing.T) {
	rows := Table3(testCfg)
	for _, r := range rows {
		if r.MemFine["FastTrack"] > r.MemFine["DJIT+"] {
			t.Errorf("%s: FastTrack fine memory %.2fx above DJIT+ %.2fx",
				r.Bench, r.MemFine["FastTrack"], r.MemFine["DJIT+"])
		}
		if r.MemCoarse["DJIT+"] > r.MemFine["DJIT+"] {
			t.Errorf("%s: DJIT+ coarse memory %.2fx above fine %.2fx",
				r.Bench, r.MemCoarse["DJIT+"], r.MemFine["DJIT+"])
		}
		if r.MemCoarse["FastTrack"] > r.MemFine["FastTrack"] {
			t.Errorf("%s: FastTrack coarse memory %.2fx above fine %.2fx",
				r.Bench, r.MemCoarse["FastTrack"], r.MemFine["FastTrack"])
		}
	}
}

// TestRuleFrequenciesShape: the fast paths dominate (Figure 2's
// percentages: the three constant-time read rules cover 99.9% of reads,
// and the VC-allocating READ SHARE path is rare).
func TestRuleFrequenciesShape(t *testing.T) {
	// Full scale: the slow-path fractions shrink as the loop counts grow,
	// so the default workload size is the representative one.
	stats := RuleFrequencies(Config{Scale: 1, Runs: 1})
	var ft RuleStats
	found := false
	for _, s := range stats {
		if s.Tool == "FastTrack" {
			ft = s
			found = true
		}
	}
	if !found {
		t.Fatal("no FastTrack row")
	}
	reads, writes, syncs := ft.OperationMix()
	if reads < 50 || writes > 40 || syncs > 15 {
		t.Errorf("operation mix reads %.1f%% writes %.1f%% syncs %.1f%% far from paper shape",
			reads, writes, syncs)
	}
	same, shared, excl, share := ft.ReadRulePcts()
	if got := same + shared + excl + share; got < 99.9 || got > 100.1 {
		t.Errorf("read rules sum to %.2f%%", got)
	}
	if share > 1.0 {
		t.Errorf("READ SHARE slow path at %.2f%% of reads; paper: 0.1%%", share)
	}
	if same < 30 {
		t.Errorf("READ SAME EPOCH at %.1f%%; expected the dominant rule", same)
	}
	wsame, wexcl, wshared := ft.WriteRulePcts()
	if got := wsame + wexcl + wshared; got < 99.9 || got > 100.1 {
		t.Errorf("write rules sum to %.2f%%", got)
	}
	if wshared > 1.0 {
		t.Errorf("WRITE SHARED slow path at %.2f%% of writes; paper: 0.1%%", wshared)
	}
}

// TestComposeShape: every prefilter beats NONE, and FASTTRACK is the
// best prefilter for every checker (the Section 5.2 ordering).
func TestComposeShape(t *testing.T) {
	cfg := Config{Scale: 0.3, Runs: 2}
	rows := Compose(cfg)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		none := r.Slowdowns["NONE"]
		ft := r.Slowdowns["FASTTRACK"]
		// The headline of Section 5.2: FASTTRACK prefiltering
		// substantially accelerates the genuinely heavyweight checkers.
		// (Our Atomizer baseline is cheaper than the paper's, so for it
		// we only require no regression.)
		if r.Checker == "Atomizer" {
			if ft > none*1.15 {
				t.Errorf("Atomizer: FASTTRACK prefilter (%.1fx) regressed vs NONE (%.1fx)", ft, none)
			}
		} else if ft > none*0.8 {
			t.Errorf("%s: FASTTRACK prefilter (%.1fx) did not substantially beat NONE (%.1fx)",
				r.Checker, ft, none)
		}
		// FASTTRACK is the best prefilter for the genuinely heavyweight
		// checkers (allowing timer noise at test scale). Atomizer's NONE
		// baseline is already as cheap as the prefilters themselves, so
		// the ordering among its filters is dominated by noise and not
		// asserted.
		if r.Checker == "Atomizer" {
			continue
		}
		for _, f := range []string{"TL", "ERASER", "DJIT+"} {
			if ft > r.Slowdowns[f]*1.15 {
				t.Errorf("%s: FASTTRACK prefilter (%.1fx) worse than %s (%.1fx)",
					r.Checker, ft, f, r.Slowdowns[f])
			}
		}
	}
}

// TestEclipseShape: FastTrack reports the ~30 seeded races; Eraser
// reports an order of magnitude more warnings (the paper: 30 vs 960).
func TestEclipseShape(t *testing.T) {
	rows := Eclipse(testCfg)
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	ftTotal, eraserTotal, seeded := 0, 0, 0
	for _, r := range rows {
		ftTotal += r.Cells["FastTrack"].Warnings
		eraserTotal += r.Cells["Eraser"].Warnings
		seeded += r.KnownRaces
	}
	if ftTotal != seeded {
		t.Errorf("FastTrack total %d != seeded %d", ftTotal, seeded)
	}
	if ftTotal != 30 {
		t.Errorf("FastTrack total %d, want 30", ftTotal)
	}
	if eraserTotal < 900 || eraserTotal > 1100 {
		t.Errorf("Eraser total %d, want ~960", eraserTotal)
	}
}

// TestFormatters smoke-tests every printer.
func TestFormatters(t *testing.T) {
	var buf bytes.Buffer
	rows := Table1(Config{Scale: 0.05, Runs: 1})
	FprintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "FastTrack") || !strings.Contains(buf.String(), "Average") {
		t.Error("Table 1 output incomplete")
	}
	buf.Reset()
	FprintTable2(&buf, Table2(Config{Scale: 0.05, Runs: 1}))
	if !strings.Contains(buf.String(), "Total") {
		t.Error("Table 2 output incomplete")
	}
	buf.Reset()
	FprintTable3(&buf, Table3(Config{Scale: 0.05, Runs: 1}))
	if !strings.Contains(buf.String(), "Memory overhead") {
		t.Error("Table 3 output incomplete")
	}
	buf.Reset()
	FprintRules(&buf, RuleFrequencies(Config{Scale: 0.05, Runs: 1}))
	if !strings.Contains(buf.String(), "SAME EPOCH") {
		t.Error("rules output incomplete")
	}
	buf.Reset()
	FprintCompose(&buf, Compose(Config{Scale: 0.03, Runs: 1}))
	if !strings.Contains(buf.String(), "Velodrome") {
		t.Error("compose output incomplete")
	}
	buf.Reset()
	FprintEclipse(&buf, Eclipse(Config{Scale: 0.05, Runs: 1}))
	if !strings.Contains(buf.String(), "Total warnings") {
		t.Error("eclipse output incomplete")
	}
}

// TestScalingShape: the ablation must show FastTrack's O(n) VC work and
// shadow memory growing far slower than the vector-clock detectors'.
// (Wall-clock ratios are too noisy to assert in a unit test; the
// counters are deterministic.)
func TestScalingShape(t *testing.T) {
	rows := Scaling(Config{Scale: 0.2, Runs: 1}, []int{2, 16})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.VCOps["FastTrack"]*5 > r.VCOps["DJIT+"] {
			t.Errorf("threads=%d: FastTrack VC ops %d not well below DJIT+ %d",
				r.Threads, r.VCOps["FastTrack"], r.VCOps["DJIT+"])
		}
		if r.ShadowKB["FastTrack"] > r.ShadowKB["DJIT+"] {
			t.Errorf("threads=%d: FastTrack shadow %dKB above DJIT+ %dKB",
				r.Threads, r.ShadowKB["FastTrack"], r.ShadowKB["DJIT+"])
		}
	}
	// DJIT+'s shadow memory grows superlinearly with threads (O(n) per
	// variable); FastTrack's stays near-constant per variable.
	djitGrowth := float64(rows[1].ShadowKB["DJIT+"]) / float64(rows[0].ShadowKB["DJIT+"])
	ftGrowth := float64(rows[1].ShadowKB["FastTrack"]) / float64(rows[0].ShadowKB["FastTrack"])
	if ftGrowth >= djitGrowth {
		t.Errorf("shadow growth: FastTrack %.1fx vs DJIT+ %.1fx — epochs must scale better",
			ftGrowth, djitGrowth)
	}
	var buf bytes.Buffer
	FprintScaling(&buf, rows)
	if !strings.Contains(buf.String(), "Threads") {
		t.Error("scaling output incomplete")
	}
}

// TestAccordionShape: on short-lived-thread waves, FastTrack's shadow
// memory is far below DJIT+'s, compaction reduces it further, every dead
// thread is reclaimed, and the race-free workload stays silent.
func TestAccordionShape(t *testing.T) {
	rows := Accordion(DefaultConfig(), [][2]int{{8, 8}, {32, 8}})
	for _, r := range rows {
		if r.Warnings != 0 {
			t.Errorf("waves=%d: %d warnings on race-free workload", r.Waves, r.Warnings)
		}
		if r.FTBytes >= r.DJITBytes {
			t.Errorf("waves=%d: FastTrack %dB not below DJIT+ %dB", r.Waves, r.FTBytes, r.DJITBytes)
		}
		if r.FTCompactBytes >= r.FTBytes {
			t.Errorf("waves=%d: compaction did not reduce memory (%d -> %d)",
				r.Waves, r.FTBytes, r.FTCompactBytes)
		}
		if r.Dropped != r.Waves*r.Workers {
			t.Errorf("waves=%d: dropped %d threads, want %d", r.Waves, r.Dropped, r.Waves*r.Workers)
		}
	}
	var buf bytes.Buffer
	FprintAccordion(&buf, rows)
	if !strings.Contains(buf.String(), "Reduction") {
		t.Error("accordion output incomplete")
	}
}

// TestBaseTimePositive guards the slowdown denominator.
func TestBaseTimePositive(t *testing.T) {
	b, _ := sim.ByName("raja")
	tr := b.Trace(0.1)
	if BaseTime(tr, 2) <= 0 {
		t.Error("BaseTime must be positive")
	}
}
