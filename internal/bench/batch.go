package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"fasttrack"
	"fasttrack/trace"
)

// BatchSchema versions the BENCH_batch.json artifact.
const BatchSchema = "fasttrack/bench-batch/v1"

// BatchReport is the machine-readable batched-ingestion artifact: the
// throughput of Monitor.IngestBatch across batch sizes, serial and
// sharded, against the per-event Monitor.Ingest baseline on the same
// event stream. One producer feeds the monitor, so the table isolates
// the per-event lock/dispatch toll that batching amortizes rather than
// feeder contention (BENCH_scaling.json covers that axis).
type BatchReport struct {
	Schema string     `json:"schema"`
	CPUs   int        `json:"cpus"`
	Events int        `json:"events"`
	Runs   int        `json:"runs"`
	Rows   []BatchRow `json:"rows"`
}

// BatchRow is one (mode, batch size) cell. Batch == 0 is the per-event
// Ingest baseline; Speedup is relative to the same mode's baseline row
// (so the shards=1 and sharded sweeps are each self-normalized).
type BatchRow struct {
	Mode         string  `json:"mode"`   // "serial" or "sharded"
	Shards       int     `json:"shards"` // 1 in serial mode
	Batch        int     `json:"batch"`  // events per IngestBatch; 0 = per-event Ingest
	ElapsedNs    int64   `json:"elapsedNs"`
	EventsPerSec float64 `json:"eventsPerSec"`
	Speedup      float64 `json:"speedup"`
}

// batchWorkload builds the event stream the sweep replays: one thread
// sweeping write/read pairs over a working set large enough to spread
// across every stripe, with an acquire/release pair every ~1k accesses
// so the batch path's sync-barrier flush is part of what is measured.
func batchWorkload(events int) []trace.Event {
	const vars = 4096
	out := make([]trace.Event, 0, events)
	for i := 0; len(out) < events; i++ {
		x := uint64(i) % vars
		out = append(out, trace.Wr(1, x), trace.Rd(1, x))
		if i%512 == 511 {
			out = append(out, trace.Acq(1, vars+1), trace.Rel(1, vars+1))
		}
	}
	return out[:events]
}

// batchRun replays the workload through one monitor and times it.
func batchRun(shards, batch int, events []trace.Event) time.Duration {
	var opts []fasttrack.MonitorOption
	if shards > 1 {
		opts = append(opts, fasttrack.WithShards(shards))
	}
	m := fasttrack.NewMonitor(opts...)
	defer m.Close()
	// Materialize the producer thread up front so the sharded path never
	// needs its once-per-thread slow path mid-measurement.
	m.Fork(0, 1)
	t0 := time.Now()
	if batch <= 0 {
		for _, e := range events {
			m.Ingest(e)
		}
	} else {
		for i := 0; i < len(events); i += batch {
			m.IngestBatch(events[i:min(i+batch, len(events))])
		}
	}
	return time.Since(t0)
}

// Batch produces the batched-ingestion throughput table. Nil batchSizes
// defaults to {1, 8, 64, 512, 4096}; shards <= 1 defaults to 8 stripes
// for the sharded sweep; totalEvents <= 0 defaults to 400k scaled by
// cfg.Scale with a 50k floor.
func Batch(cfg Config, batchSizes []int, shards, totalEvents int) BatchReport {
	if len(batchSizes) == 0 {
		batchSizes = []int{1, 8, 64, 512, 4096}
	}
	if shards <= 1 {
		shards = 8
	}
	if totalEvents <= 0 {
		totalEvents = int(400_000 * cfg.Scale)
		if totalEvents < 50_000 {
			totalEvents = 50_000
		}
	}
	events := batchWorkload(totalEvents)
	rep := BatchReport{
		Schema: BatchSchema,
		CPUs:   runtime.GOMAXPROCS(0),
		Events: len(events),
		Runs:   cfg.runs(),
	}
	for _, mode := range []struct {
		name   string
		shards int
	}{{"serial", 1}, {"sharded", shards}} {
		var baseline float64
		for _, batch := range append([]int{0}, batchSizes...) {
			best := time.Duration(0)
			for r := 0; r < cfg.runs(); r++ {
				el := batchRun(mode.shards, batch, events)
				if best == 0 || el < best {
					best = el
				}
			}
			row := BatchRow{
				Mode:         mode.name,
				Shards:       mode.shards,
				Batch:        batch,
				ElapsedNs:    best.Nanoseconds(),
				EventsPerSec: float64(len(events)) / best.Seconds(),
			}
			if batch == 0 {
				baseline = row.EventsPerSec
			}
			if baseline > 0 {
				row.Speedup = row.EventsPerSec / baseline
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// WriteBatchJSON writes the artifact as indented JSON.
func WriteBatchJSON(w io.Writer, rep BatchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintBatch renders the batched-ingestion throughput table.
func FprintBatch(w io.Writer, rep BatchReport) {
	fmt.Fprintf(w, "Batched ingestion throughput, %d events, best of %d, %d CPU(s)\n\n",
		rep.Events, rep.Runs, rep.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tShards\tBatch\tms\tevents/sec\tvs per-event")
	for _, r := range rep.Rows {
		batch := fmt.Sprint(r.Batch)
		if r.Batch == 0 {
			batch = "per-event"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.1f\t%.2fM\t%.2fx\n",
			r.Mode, r.Shards, batch,
			float64(r.ElapsedNs)/1e6, r.EventsPerSec/1e6, r.Speedup)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(single producer; the table isolates the per-event lock and dispatch")
	fmt.Fprintln(w, " toll that IngestBatch amortizes — one serial-lock or stripe-lock")
	fmt.Fprintln(w, " acquisition per batch instead of per event)")
}
