package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"fasttrack/client"
	"fasttrack/internal/fleet"
	"fasttrack/internal/svc"
)

// FleetSchema versions the BENCH_fleet.json artifact.
const FleetSchema = "fasttrack/bench-fleet/v1"

// FleetReport is the machine-readable fleet-routing artifact: the
// session-completion throughput of a fixed client population against
// 1, 2, and 4 localhost racedetectd nodes, routed with client.Fleet.
//
// The scaled resource is session capacity, not CPU: each node admits at
// most SlotsPerNode concurrent sessions, and every session holds its
// slot for HoldMs of wall-clock (the stand-in for the attached
// program's run time, which on a real fleet dwarfs analysis cost). A
// worker whose dial lands on a full node is refused with a Retry-After
// hint, which the fleet tracker turns into steering toward nodes with
// free slots — so completed sessions per second tracks total slots, and
// the N-node speedup measures how much of the extra capacity the
// routing layer actually reaches. This stays meaningful on a 1-CPU
// host, where raw analysis throughput could never scale with nodes.
type FleetReport struct {
	Schema       string     `json:"schema"`
	CPUs         int        `json:"cpus"`
	Workers      int        `json:"workers"`
	SlotsPerNode int        `json:"slotsPerNode"`
	HoldMs       float64    `json:"sessionHoldMs"`
	Events       int        `json:"eventsPerSession"`
	Sessions     int        `json:"sessionsPerRow"`
	Runs         int        `json:"runs"`
	Rows         []FleetRow `json:"rows"`
}

// FleetRow is one fleet size. Speedup is SessionsPerSec over the
// 1-node row's; PerNode is where the routed sessions actually landed
// (by the node id stamped in the accepted handshake), the direct
// evidence that rendezvous routing spread the keys.
type FleetRow struct {
	Nodes          int            `json:"nodes"`
	Completed      int            `json:"completed"`
	Failed         int            `json:"failed"`
	ElapsedNs      int64          `json:"elapsedNs"`
	SessionsPerSec float64        `json:"sessionsPerSec"`
	Speedup        float64        `json:"speedup"`
	PerNode        map[string]int `json:"perNode"`
}

// fleetNode is one in-process daemon: a real svc.Server on a loopback
// listener, exactly what racedetectd wraps.
type fleetNode struct {
	srv  *svc.Server
	ln   net.Listener
	done chan error
}

func startFleetNodes(n, slots int, hint time.Duration) ([]fleetNode, []fleet.Node, error) {
	nodes := make([]fleetNode, 0, n)
	specs := make([]fleet.Node, 0, n)
	for i := 0; i < n; i++ {
		srv := svc.New(svc.Config{
			NodeID:           fmt.Sprintf("n%d", i+1),
			MaxSessions:      slots,
			RetryAfterHint:   hint,
			GovernorInterval: -1, // no background ticking in the timed region
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, fn := range nodes {
				fn.ln.Close()
			}
			return nil, nil, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		nodes = append(nodes, fleetNode{srv: srv, ln: ln, done: done})
		specs = append(specs, fleet.Node{Addr: ln.Addr().String()})
	}
	return nodes, specs, nil
}

func stopFleetNodes(nodes []fleetNode) {
	for _, fn := range nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		fn.srv.Shutdown(ctx)
		cancel()
		<-fn.done
	}
}

// fleetRun drives total sessions from workers concurrent clients
// through one shared Fleet and times the whole population to
// completion. Each session streams the (race-free) workload, then
// holds its slot for hold before closing.
func fleetRun(specs []fleet.Node, workers, total int, hold time.Duration, perEvents int) FleetRow {
	f := client.NewFleetNodes(specs)
	defer f.Close()

	// Constant-ish retry schedule: a refused dial waits out the server's
	// Retry-After hint (which outranks a shorter scheduled delay), so
	// the schedule only needs to stop full-speed spinning and carry the
	// jitter that keeps refused workers from re-colliding in lockstep.
	opts := []client.Option{
		client.WithRetry(2000, 0),
		client.WithRetrySchedule(func(int) time.Duration {
			return time.Duration(1+rand.Intn(3)) * time.Millisecond
		}),
		client.WithBatchSize(256),
	}

	var (
		next      atomic.Int64
		failed    atomic.Int64
		mu        sync.Mutex
		perNode   = make(map[string]int)
		completed int
	)
	workload := batchWorkload(perEvents)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(total) {
					return
				}
				sess, err := f.Dial(fmt.Sprintf("s-%d", i), opts...)
				if err != nil {
					failed.Add(1)
					continue
				}
				node := sess.Node()
				ok := true
				for _, e := range workload {
					if err := sess.Write(e); err != nil {
						ok = false
						break
					}
				}
				if ok {
					time.Sleep(hold) // the attached program "runs"
					if err := sess.Close(); err != nil {
						ok = false
					} else if _, err := sess.Results(); err != nil {
						ok = false
					}
				}
				if !ok {
					failed.Add(1)
					continue
				}
				mu.Lock()
				completed++
				perNode[node]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	return FleetRow{
		Nodes:          len(specs),
		Completed:      completed,
		Failed:         int(failed.Load()),
		ElapsedNs:      elapsed.Nanoseconds(),
		SessionsPerSec: float64(completed) / elapsed.Seconds(),
		PerNode:        perNode,
	}
}

// Fleet produces the fleet-routing throughput table at 1, 2, and 4
// nodes. sessions <= 0 defaults to 96 scaled by cfg.Scale with a
// 48 floor.
func Fleet(cfg Config, sessions int) (FleetReport, error) {
	const (
		slots     = 4
		workers   = 16
		hold      = 15 * time.Millisecond
		hint      = 4 * time.Millisecond
		perEvents = 256
	)
	if sessions <= 0 {
		sessions = int(96 * cfg.Scale)
		if sessions < 48 {
			sessions = 48
		}
	}
	rep := FleetReport{
		Schema:       FleetSchema,
		CPUs:         runtime.GOMAXPROCS(0),
		Workers:      workers,
		SlotsPerNode: slots,
		HoldMs:       float64(hold) / float64(time.Millisecond),
		Events:       perEvents,
		Sessions:     sessions,
		Runs:         cfg.runs(),
	}
	var base float64
	for _, n := range []int{1, 2, 4} {
		nodes, specs, err := startFleetNodes(n, slots, hint)
		if err != nil {
			return rep, err
		}
		var best FleetRow
		for r := 0; r < cfg.runs(); r++ {
			row := fleetRun(specs, workers, sessions, hold, perEvents)
			if best.Completed == 0 || row.SessionsPerSec > best.SessionsPerSec {
				best = row
			}
		}
		stopFleetNodes(nodes)
		if n == 1 {
			base = best.SessionsPerSec
		}
		if base > 0 {
			best.Speedup = best.SessionsPerSec / base
		}
		rep.Rows = append(rep.Rows, best)
	}
	return rep, nil
}

// WriteFleetJSON writes the artifact as indented JSON.
func WriteFleetJSON(w io.Writer, rep FleetReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintFleet renders the fleet-routing throughput table.
func FprintFleet(w io.Writer, rep FleetReport) {
	fmt.Fprintf(w, "Fleet-routed session throughput: %d workers, %d slots/node, %.0fms hold, %d sessions, best of %d, %d CPU(s)\n\n",
		rep.Workers, rep.SlotsPerNode, rep.HoldMs, rep.Sessions, rep.Runs, rep.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Nodes\tCompleted\tFailed\tms\tsessions/sec\tvs 1 node\tspread")
	for _, r := range rep.Rows {
		ids := make([]string, 0, len(r.PerNode))
		for id := range r.PerNode {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		spread := ""
		for i, id := range ids {
			if i > 0 {
				spread += " "
			}
			spread += fmt.Sprintf("%s:%d", id, r.PerNode[id])
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.0f\t%.1f\t%.2fx\t%s\n",
			r.Nodes, r.Completed, r.Failed,
			float64(r.ElapsedNs)/1e6, r.SessionsPerSec, r.Speedup, spread)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(session slots, not CPU, are the scaled resource: every session holds")
	fmt.Fprintln(w, " its node slot for the hold time, refused dials are steered to nodes")
	fmt.Fprintln(w, " with free slots, so throughput tracks total fleet capacity)")
}
