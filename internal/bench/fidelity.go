package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"fasttrack/internal/core"
	"fasttrack/trace"
)

// FidelitySchema versions the BENCH_fidelity.json artifact.
const FidelitySchema = "fasttrack/bench-fidelity/v1"

// FidelityReport is the machine-readable sampling-tier artifact: the
// per-event throughput of the FastTrack detector across sampling rates
// on a vector-clock-heavy workload, with the detection probability each
// rate buys. It is the cost/coverage curve behind racedetectd's
// fidelity ladder (full → sampled → coarse → shed), so the CI gate on
// it is what keeps "degrade under pressure" a real throughput lever
// rather than an aspiration.
type FidelityReport struct {
	Schema  string        `json:"schema"`
	CPUs    int           `json:"cpus"`
	Threads int           `json:"threads"`
	Vars    int           `json:"vars"`
	Events  int           `json:"events"`
	Runs    int           `json:"runs"`
	Rows    []FidelityRow `json:"rows"`
}

// FidelityRow is one sampling rate. Speedup is relative to the rate-1.0
// row; DetectionProbability is the analyzed fraction of offered
// accesses as reported by the detector itself.
type FidelityRow struct {
	Rate                 float64 `json:"rate"`
	ElapsedNs            int64   `json:"elapsedNs"`
	EventsPerSec         float64 `json:"eventsPerSec"`
	Speedup              float64 `json:"speedup"`
	DetectionProbability float64 `json:"detectionProbability"`
	Races                int     `json:"races"`
}

// fidelityWorkload builds a race-free, vector-clock-heavy stream. Every
// phase, each variable is read by two rotating threads — driving it
// through the read-exclusive → read-shared transition, which allocates
// and populates an O(threads) read vector clock — then a barrier orders
// the phase and one thread rewrites the region (the O(threads)
// write-shared comparison), collapsing every variable back to an
// exclusive epoch so the next phase pays the transitions again. Two
// reads and one write per variable per phase keeps the O(threads) work
// per access maximal; the region is large so the unskippable barriers
// (sync is never sampled) are amortized to noise. This is FastTrack's
// most expensive steady state — the workload sampling has the most to
// win on — while the phase ordering keeps it race-free so the timed
// runs do not degenerate into flagged-variable short-circuits.
func fidelityWorkload(threads, vars, events int) []trace.Event {
	out := make([]trace.Event, 0, events+4*vars)
	tids := make([]int32, threads)
	for i := range tids {
		tids[i] = int32(i + 1)
		out = append(out, trace.ForkOf(0, tids[i]))
	}
	const barrierID = 1 << 40 // clear of the variable region
	for phase := 0; len(out) < events; phase++ {
		for v := 0; v < vars; v++ {
			out = append(out,
				trace.Rd(tids[(phase+v)%threads], uint64(v)),
				trace.Rd(tids[(phase+v+1)%threads], uint64(v)))
		}
		out = append(out, trace.Barrier(barrierID, tids...))
		for v := 0; v < vars; v++ {
			out = append(out, trace.Wr(tids[phase%threads], uint64(v)))
		}
		out = append(out, trace.Barrier(barrierID, tids...))
	}
	return out
}

// fidelityRun replays the workload through a fresh detector at one
// sampling rate and times the event loop.
func fidelityRun(threads int, rate float64, events []trace.Event) (time.Duration, *core.Detector) {
	d := core.New(threads+1, 0)
	d.SetSamplingRate(rate)
	t0 := time.Now()
	for i, e := range events {
		d.HandleEvent(i, e)
	}
	return time.Since(t0), d
}

// Fidelity produces the sampling-rate throughput table. Nil rates
// defaults to {1, 0.5, 0.25, 0.1, 0.01, 0}; threads <= 0 defaults to
// 256 (the O(threads) vector-clock transitions are the cost sampling
// avoids, so the stress population is deliberately large); totalEvents
// <= 0 defaults to 300k scaled by cfg.Scale with a 50k floor.
func Fidelity(cfg Config, rates []float64, threads, totalEvents int) FidelityReport {
	if len(rates) == 0 {
		rates = []float64{1, 0.5, 0.25, 0.1, 0.01, 0}
	}
	if threads <= 0 {
		threads = 256
	}
	if totalEvents <= 0 {
		totalEvents = int(300_000 * cfg.Scale)
		if totalEvents < 50_000 {
			totalEvents = 50_000
		}
	}
	const vars = 8192
	events := fidelityWorkload(threads, vars, totalEvents)
	rep := FidelityReport{
		Schema:  FidelitySchema,
		CPUs:    runtime.GOMAXPROCS(0),
		Threads: threads,
		Vars:    vars,
		Events:  len(events),
		Runs:    cfg.runs(),
	}
	var baseline float64
	for _, rate := range rates {
		var (
			best time.Duration
			last *core.Detector
		)
		for r := 0; r < cfg.runs(); r++ {
			el, d := fidelityRun(threads, rate, events)
			if best == 0 || el < best {
				best = el
			}
			last = d
		}
		st := last.Stats()
		row := FidelityRow{
			Rate:                 rate,
			ElapsedNs:            best.Nanoseconds(),
			EventsPerSec:         float64(len(events)) / best.Seconds(),
			DetectionProbability: st.DetectionProbability(),
			Races:                len(last.Races()),
		}
		if rate == 1 {
			baseline = row.EventsPerSec
		}
		if baseline > 0 {
			row.Speedup = row.EventsPerSec / baseline
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// WriteFidelityJSON writes the artifact as indented JSON.
func WriteFidelityJSON(w io.Writer, rep FidelityReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintFidelity renders the sampling-rate throughput table.
func FprintFidelity(w io.Writer, rep FidelityReport) {
	fmt.Fprintf(w, "Sampling-tier throughput, %d events, %d threads, %d vars, best of %d, %d CPU(s)\n\n",
		rep.Events, rep.Threads, rep.Vars, rep.Runs, rep.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Rate\tms\tevents/sec\tvs full\tdetection prob\traces")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%.3g\t%.1f\t%.2fM\t%.2fx\t%.3f\t%d\n",
			r.Rate, float64(r.ElapsedNs)/1e6, r.EventsPerSec/1e6,
			r.Speedup, r.DetectionProbability, r.Races)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(read-shared heavy, race-free workload; a sampled-out variable costs")
	fmt.Fprintln(w, " one hash and a counter, so the rate is also roughly the fraction of")
	fmt.Fprintln(w, " full-fidelity cost paid — detection probability is what it buys)")
}
