package bench

import (
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// This file freezes the pre-refactor serial FastTrack detector — the
// array-of-structs layout internal/core shipped before the
// struct-of-arrays refactor (DESIGN.md §13) — as an in-harness
// baseline. The speed table measures it and the current detector in the
// same process on the same event streams, so BENCH_speed.json reports a
// machine-independent ratio: whatever the host, both sides pay the same
// clock, allocator and cache hierarchy. The replica is faithful to the
// old hot path, including its branch structure for features the
// workloads leave off (sampling, budget, detailed reports, provenance,
// sharding): those branches were part of the old per-event cost.
//
// Do not "improve" this code; its job is to stay exactly as fast as the
// detector the refactor replaced.

// blReadShared is the old read-shared sentinel: R_x pointing at the
// variable's own vector clock.
const blReadShared = ^vc.Epoch(0)

// blVarState is the old per-variable shadow record: 40 bytes + padding,
// 1.33 variables per cache line against the refactor's 8 epochs.
type blVarState struct {
	w, r    vc.Epoch
	rvc     vc.VC
	flagged bool
}

type blThreadState struct {
	c     vc.VC
	epoch vc.Epoch
}

// speedBaseline is the frozen detector. Field set and handler structure
// mirror the old core.Detector; unused feature fields stay zero so the
// hot path's branches evaluate exactly as they did.
type speedBaseline struct {
	threads   []blThreadState
	locks     map[uint64]vc.VC
	vols      map[uint64]vc.VC
	vars      []blVarState
	detailed  bool
	budget    int64
	extended  bool
	sampleThr uint64
	races     []rr.Report
	st        rr.Stats
}

func newSpeedBaseline() *speedBaseline {
	return &speedBaseline{
		locks:     make(map[uint64]vc.VC),
		vols:      make(map[uint64]vc.VC),
		sampleThr: uint64(1) << 32,
	}
}

func (d *speedBaseline) thread(t int32) *blThreadState {
	for int(t) >= len(d.threads) {
		u := vc.Tid(len(d.threads))
		cv := vc.New(len(d.threads) + 1).Inc(u)
		d.st.VCAlloc++
		d.threads = append(d.threads, blThreadState{c: cv, epoch: cv.Epoch(u)})
	}
	return &d.threads[t]
}

func (d *speedBaseline) variable(x uint64) *blVarState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, blVarState{})
	}
	return &d.vars[x]
}

func (d *speedBaseline) sampledOut(x uint64) bool {
	thr := d.sampleThr
	if thr == uint64(1)<<32 {
		return false
	}
	h := x
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h>>32 >= thr
}

func (d *speedBaseline) report(x uint64, vs *blVarState, kind rr.RaceKind, t int32, prev vc.Tid, i int) {
	if vs.flagged {
		return
	}
	vs.flagged = true
	d.races = append(d.races, rr.Report{Var: x, Kind: kind, Tid: t, PrevTid: int32(prev), Index: i, PrevIndex: -1})
}

func (d *speedBaseline) read(i int, tid int32, x uint64) {
	if d.sampledOut(x) {
		return
	}
	d.st.Reads++
	if d.budget > 0 {
		x = d.budgetVar(x)
	}
	vs := d.variable(x)
	d.st.Events++
	ts := d.thread(tid)
	if vs.r == ts.epoch {
		d.st.ReadSameEpoch++
		return
	}
	if d.extended && vs.r == blReadShared && vs.rvc.Get(vc.Tid(tid)) == ts.c.Get(vc.Tid(tid)) {
		d.st.ReadSameEpoch++
		return
	}
	if !vs.w.LEq(ts.c) {
		d.report(x, vs, rr.WriteRead, tid, vs.w.Tid(), i)
	}
	if d.detailed {
		_ = i
	}
	t := vc.Tid(tid)
	switch {
	case vs.r == blReadShared:
		vs.rvc = vs.rvc.Set(t, ts.c.Get(t))
		d.st.ReadShared++
	case vs.r.LEq(ts.c):
		vs.r = ts.epoch
		d.st.ReadExclusive++
	default:
		if vs.rvc == nil {
			vs.rvc = vc.New(len(d.threads))
			d.st.VCAlloc++
		} else {
			for j := range vs.rvc {
				vs.rvc[j] = 0
			}
		}
		vs.rvc = vs.rvc.Set(vs.r.Tid(), vs.r.Clock())
		vs.rvc = vs.rvc.Set(t, ts.c.Get(t))
		vs.r = blReadShared
		d.st.ReadShare++
	}
}

func (d *speedBaseline) write(i int, tid int32, x uint64) {
	if d.sampledOut(x) {
		return
	}
	d.st.Writes++
	if d.budget > 0 {
		x = d.budgetVar(x)
	}
	vs := d.variable(x)
	d.st.Events++
	ts := d.thread(tid)
	if vs.w == ts.epoch {
		d.st.WriteSameEpoch++
		return
	}
	if !vs.w.LEq(ts.c) {
		d.report(x, vs, rr.WriteWrite, tid, vs.w.Tid(), i)
	}
	if vs.r != blReadShared {
		if !vs.r.LEq(ts.c) {
			d.report(x, vs, rr.ReadWrite, tid, vs.r.Tid(), i)
		}
		d.st.WriteExclusive++
	} else {
		d.st.VCOp++
		if prev := vs.rvc.FirstExceeding(ts.c); prev >= 0 {
			d.report(x, vs, rr.ReadWrite, tid, prev, i)
		}
		vs.r = vc.Bottom
		d.st.WriteShared++
	}
	if d.detailed {
		_ = i
	}
	vs.w = ts.epoch
}

func (d *speedBaseline) budgetVar(x uint64) uint64 { return x }

// HandleEvent mirrors the old core.Detector.HandleEvent dispatch.
func (d *speedBaseline) HandleEvent(i int, e trace.Event) {
	switch e.Kind {
	case trace.Read:
		d.read(i, e.Tid, e.Target)
		return
	case trace.Write:
		d.write(i, e.Tid, e.Target)
		return
	}
	d.st.Events++
	switch e.Kind {
	case trace.Acquire:
		d.st.CountKind(e.Kind)
		ts := d.thread(e.Tid)
		if lm, ok := d.locks[e.Target]; ok {
			ts.c = ts.c.Join(lm)
			d.st.VCOp++
		}
	case trace.Release:
		d.st.CountKind(e.Kind)
		ts := d.thread(e.Tid)
		lm, ok := d.locks[e.Target]
		if !ok {
			d.st.VCAlloc++
		}
		d.locks[e.Target] = lm.CopyInto(ts.c)
		d.st.VCOp++
		ts.c = ts.c.Inc(vc.Tid(e.Tid))
		ts.epoch = ts.c.Epoch(vc.Tid(e.Tid))
	case trace.Fork:
		d.st.CountKind(e.Kind)
		u := int32(e.Target)
		d.thread(u)
		ts := d.thread(e.Tid)
		us := d.thread(u)
		us.c = us.c.Join(ts.c)
		us.epoch = us.c.Epoch(vc.Tid(u))
		d.st.VCOp++
		ts.c = ts.c.Inc(vc.Tid(e.Tid))
		ts.epoch = ts.c.Epoch(vc.Tid(e.Tid))
	case trace.Join:
		d.st.CountKind(e.Kind)
		u := int32(e.Target)
		d.thread(u)
		ts := d.thread(e.Tid)
		us := d.thread(u)
		ts.c = ts.c.Join(us.c)
		ts.epoch = ts.c.Epoch(vc.Tid(e.Tid))
		d.st.VCOp++
		us.c = us.c.Inc(vc.Tid(u))
		us.epoch = us.c.Epoch(vc.Tid(u))
	case trace.VolatileRead:
		d.st.CountKind(e.Kind)
		ts := d.thread(e.Tid)
		if lv, ok := d.vols[e.Target]; ok {
			ts.c = ts.c.Join(lv)
			d.st.VCOp++
		}
	case trace.VolatileWrite:
		d.st.CountKind(e.Kind)
		ts := d.thread(e.Tid)
		lv, ok := d.vols[e.Target]
		if !ok {
			d.st.VCAlloc++
		}
		d.vols[e.Target] = lv.Join(ts.c)
		d.st.VCOp++
		ts.c = ts.c.Inc(vc.Tid(e.Tid))
		ts.epoch = ts.c.Epoch(vc.Tid(e.Tid))
	case trace.BarrierRelease:
		d.st.CountKind(e.Kind)
		if len(e.Tids) == 0 {
			return
		}
		join := vc.New(len(d.threads))
		d.st.VCAlloc++
		for _, u := range e.Tids {
			join = join.Join(d.thread(u).c)
			d.st.VCOp++
		}
		for _, u := range e.Tids {
			us := d.thread(u)
			us.c = us.c.CopyInto(join).Inc(vc.Tid(u))
			us.epoch = us.c.Epoch(vc.Tid(u))
			d.st.VCOp++
		}
	}
}

// Races returns the baseline's reports, for the equivalence check the
// speed harness runs before timing.
func (d *speedBaseline) Races() []rr.Report { return d.races }
