package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"fasttrack/internal/core"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// ChanSchema versions the BENCH_chan.json artifact.
const ChanSchema = "fasttrack/bench-chan/v1"

// ChanReport is the machine-readable channel-HB artifact: FastTrack's
// per-event cost and race precision on channel-heavy workloads, the
// first-class chsend/chrecv rules against the legacy volatile encoding
// (one volatile per channel, send = release, recv = acquire) that
// syncmodel.Channel used before the channel trace kinds existed. The
// two traces per row are identical except for the channel events, so
// the cost ratio isolates the encoding and the race columns show what
// each encoding's happens-before admits.
type ChanReport struct {
	Schema string    `json:"schema"`
	CPUs   int       `json:"cpus"`
	Runs   int       `json:"runs"`
	Rows   []ChanRow `json:"rows"`
}

// ChanRow compares one workload under the two encodings. SeededRaces
// is the ground truth: the native rules must report exactly that many
// (one per slack cell), while the volatile encoding's over-ordering
// (every receive after every preceding send) suppresses them all.
// CostRatio is native per-event time over volatile per-event time.
type ChanRow struct {
	Workload             string  `json:"workload"`
	Events               int     `json:"events"`
	SeededRaces          int     `json:"seededRaces"`
	NativeNs             int64   `json:"nativeNs"`
	NativeEventsPerSec   float64 `json:"nativeEventsPerSec"`
	NativeRaces          int     `json:"nativeRaces"`
	VolatileNs           int64   `json:"volatileNs"`
	VolatileEventsPerSec float64 `json:"volatileEventsPerSec"`
	VolatileRaces        int     `json:"volatileRaces"`
	CostRatio            float64 `json:"costRatio"`
}

// chanProfiles builds the rows: each channel idiom isolated, then the
// tracegen "chan" mix. events is the per-row budget; the slack row is
// capped well below it because every seeded race is a distinct
// variable and the row exists for the precision columns, not
// throughput.
func chanProfiles(events int) []sim.ChanProfile {
	const pairs = 4
	slack := events / (6 * pairs)
	if slack > 256 {
		slack = 256
	}
	mix := sim.ChanMix()
	mix.Name = "mix"
	return []sim.ChanProfile{
		{Name: "handoff", Pairs: pairs, Handoffs: events / (6 * pairs)},
		{Name: "ring", Pairs: pairs, RingCap: 8, RingOps: events / (7 * pairs)},
		{Name: "slack", Pairs: pairs, SlackRaces: slack},
		mix,
	}
}

// chanRun replays the trace through a fresh detector and returns the
// elapsed time and the number of races reported.
func chanRun(tr trace.Trace) (time.Duration, int) {
	d := core.New(0, 0)
	t0 := time.Now()
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	el := time.Since(t0)
	return el, len(d.Races())
}

// Chan produces the channel-HB cost/precision table. totalEvents <= 0
// defaults to 200k scaled by cfg.Scale with a 30k floor.
func Chan(cfg Config, totalEvents int) ChanReport {
	if totalEvents <= 0 {
		totalEvents = int(200_000 * cfg.Scale)
		if totalEvents < 30_000 {
			totalEvents = 30_000
		}
	}
	rep := ChanReport{
		Schema: ChanSchema,
		CPUs:   runtime.GOMAXPROCS(0),
		Runs:   cfg.runs(),
	}
	for _, p := range chanProfiles(totalEvents) {
		scale := 1.0
		if p.Name == "mix" {
			// The mix profile has fixed repetition counts; scale it to
			// roughly the row budget (~20k events at scale 1).
			scale = float64(totalEvents) / 20_000
		}
		native := p.Generate(scale, sim.ChanNative)
		volatileTr := p.Generate(scale, sim.ChanVolatile)

		var nBest, vBest time.Duration
		var nRaces, vRaces int
		// Alternate the encodings within each repetition so cache and
		// frequency drift hit both sides equally.
		for r := 0; r < cfg.runs(); r++ {
			if el, races := chanRun(native); nBest == 0 || el < nBest {
				nBest, nRaces = el, races
			}
			if el, races := chanRun(volatileTr); vBest == 0 || el < vBest {
				vBest, vRaces = el, races
			}
		}
		nPer := float64(nBest.Nanoseconds()) / float64(len(native))
		vPer := float64(vBest.Nanoseconds()) / float64(len(volatileTr))
		rep.Rows = append(rep.Rows, ChanRow{
			Workload:             p.Name,
			Events:               len(native),
			SeededRaces:          p.KnownRaces(),
			NativeNs:             nBest.Nanoseconds(),
			NativeEventsPerSec:   float64(len(native)) / nBest.Seconds(),
			NativeRaces:          nRaces,
			VolatileNs:           vBest.Nanoseconds(),
			VolatileEventsPerSec: float64(len(volatileTr)) / vBest.Seconds(),
			VolatileRaces:        vRaces,
			CostRatio:            nPer / vPer,
		})
	}
	return rep
}

// WriteChanJSON writes the artifact as indented JSON.
func WriteChanJSON(w io.Writer, rep ChanReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintChan renders the channel-HB comparison table.
func FprintChan(w io.Writer, rep ChanReport) {
	fmt.Fprintf(w, "Channel happens-before vs the legacy volatile encoding, best of %d, %d CPU(s)\n\n",
		rep.Runs, rep.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Workload\tevents\tseeded\tnative ev/s\traces\tvolatile ev/s\traces\tcost")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fM\t%d\t%.2fM\t%d\t%.2fx\n",
			r.Workload, r.Events, r.SeededRaces,
			r.NativeEventsPerSec/1e6, r.NativeRaces,
			r.VolatileEventsPerSec/1e6, r.VolatileRaces, r.CostRatio)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(the volatile encoding orders every receive after every preceding send,")
	fmt.Fprintln(w, " so it reports none of the seeded buffered-slack races; the native rules")
	fmt.Fprintln(w, " report each exactly once, paying a ring snapshot per operation)")
}
