package bench

import (
	"time"

	"fasttrack/internal/atomicity"
	"fasttrack/internal/core"
	"fasttrack/internal/detectors/basicvc"
	"fasttrack/internal/detectors/djit"
	"fasttrack/internal/detectors/empty"
	"fasttrack/internal/detectors/epochwr"
	"fasttrack/internal/detectors/eraser"
	"fasttrack/internal/detectors/goldilocks"
	"fasttrack/internal/detectors/multirace"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// Table1Tools is the tool order of the paper's Table 1.
var Table1Tools = []string{"Empty", "Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "FastTrack"}

// maker returns a fresh-tool constructor for a canonical tool name,
// hinted with the benchmark's thread count.
func maker(name string, threads int) func() rr.Tool {
	switch name {
	case "Empty":
		return func() rr.Tool { return empty.New() }
	case "Eraser":
		return func() rr.Tool { return eraser.New(threads, 0) }
	case "MultiRace":
		return func() rr.Tool { return multirace.New(threads, 0) }
	case "Goldilocks":
		return func() rr.Tool { return goldilocks.New(threads, 0) }
	case "BasicVC":
		return func() rr.Tool { return basicvc.New(threads, 0) }
	case "DJIT+":
		return func() rr.Tool { return djit.New(threads, 0) }
	case "FastTrack":
		return func() rr.Tool { return core.New(threads, 0) }
	case "WriteEpochsOnly":
		return func() rr.Tool { return epochwr.New(threads, 0) }
	}
	panic("bench: unknown tool " + name)
}

// BenchRow is one benchmark's measurements across a set of tools.
type BenchRow struct {
	Bench        string
	ComputeBound bool
	Threads      int
	Events       int
	KnownRaces   int
	Base         time.Duration
	Cells        map[string]Measurement
}

// runRow measures the named tools over one benchmark.
func runRow(b sim.Benchmark, tools []string, cfg Config) BenchRow {
	tr := b.Trace(cfg.Scale)
	base := BaseTime(tr, cfg.runs())
	row := BenchRow{
		Bench:        b.Name,
		ComputeBound: b.ComputeBound,
		Threads:      b.Threads,
		Events:       len(tr),
		KnownRaces:   b.KnownRaces(),
		Base:         base,
		Cells:        make(map[string]Measurement, len(tools)),
	}
	for _, name := range tools {
		row.Cells[name] = MeasureTool(tr, maker(name, b.Threads), cfg, base)
	}
	return row
}

// Table1 reproduces the paper's Table 1: slowdown and warning count for
// every tool on every benchmark.
func Table1(cfg Config) []BenchRow {
	var rows []BenchRow
	for _, b := range sim.Benchmarks() {
		rows = append(rows, runRow(b, Table1Tools, cfg))
	}
	return rows
}

// Averages returns each tool's mean slowdown over the compute-bound rows
// (the paper excludes the '*' rows from averages).
func Averages(rows []BenchRow, tools []string) map[string]float64 {
	out := map[string]float64{}
	n := 0
	for _, r := range rows {
		if !r.ComputeBound {
			continue
		}
		n++
		for _, tool := range tools {
			out[tool] += r.Cells[tool].Slowdown
		}
	}
	if n == 0 {
		return out
	}
	for tool := range out {
		out[tool] /= float64(n)
	}
	return out
}

// Table2Row reproduces one row of the paper's Table 2: vector clocks
// allocated and O(n) vector-clock operations for DJIT+ vs FastTrack.
type Table2Row struct {
	Bench              string
	DJITAlloc, FTAlloc int64
	DJITOps, FTOps     int64
}

// Table2 reproduces the paper's Table 2 from the detectors' counters.
func Table2(cfg Config) []Table2Row {
	var rows []Table2Row
	for _, b := range sim.Benchmarks() {
		tr := b.Trace(cfg.Scale)
		base := BaseTime(tr, 1)
		one := cfg
		one.Runs = 1
		dj := MeasureTool(tr, maker("DJIT+", b.Threads), one, base)
		ft := MeasureTool(tr, maker("FastTrack", b.Threads), one, base)
		rows = append(rows, Table2Row{
			Bench:     b.Name,
			DJITAlloc: dj.Stats.VCAlloc,
			FTAlloc:   ft.Stats.VCAlloc,
			DJITOps:   dj.Stats.VCOp,
			FTOps:     ft.Stats.VCOp,
		})
	}
	return rows
}

// Table3Row reproduces one row of the paper's Table 3: memory overhead
// and slowdown for DJIT+ and FastTrack under fine and coarse granularity.
// Memory overhead is reported, as in the paper, as the ratio of heap use
// with analysis to heap use without: the baseline is the program's own
// data (one word per variable).
type Table3Row struct {
	Bench      string
	BaseBytes  int64
	MemFine    map[string]float64 // tool -> overhead factor
	MemCoarse  map[string]float64
	SlowFine   map[string]float64
	SlowCoarse map[string]float64
}

// Table3Tools are the two tools Table 3 compares.
var Table3Tools = []string{"DJIT+", "FastTrack"}

// Table3 reproduces the paper's Table 3.
func Table3(cfg Config) []Table3Row {
	var rows []Table3Row
	for _, b := range sim.Benchmarks() {
		tr := b.Trace(cfg.Scale)
		baseBytes := int64(len(tr.Vars())) * 8
		if baseBytes == 0 {
			baseBytes = 8
		}
		base := BaseTime(tr, cfg.runs())
		row := Table3Row{
			Bench:      b.Name,
			BaseBytes:  baseBytes,
			MemFine:    map[string]float64{},
			MemCoarse:  map[string]float64{},
			SlowFine:   map[string]float64{},
			SlowCoarse: map[string]float64{},
		}
		for _, g := range []rr.Granularity{rr.Fine, rr.Coarse} {
			c := cfg
			c.Granularity = g
			for _, tool := range Table3Tools {
				m := MeasureTool(tr, maker(tool, b.Threads), c, base)
				over := 1 + float64(m.Stats.ShadowBytes)/float64(baseBytes)
				if g == rr.Fine {
					row.MemFine[tool] = over
					row.SlowFine[tool] = m.Slowdown
				} else {
					row.MemCoarse[tool] = over
					row.SlowCoarse[tool] = m.Slowdown
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RuleStats aggregates the Figure 2 rule-frequency percentages over all
// benchmarks for one tool.
type RuleStats struct {
	Tool   string
	Reads  int64
	Writes int64
	Syncs  int64
	Stats  rr.Stats
}

// ReadPct returns the percentage of reads handled by the named rule
// counter extractor.
func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// OperationMix returns the read/write/sync percentages of all events.
func (r RuleStats) OperationMix() (reads, writes, syncs float64) {
	total := r.Reads + r.Writes + r.Syncs
	return pct(r.Reads, total), pct(r.Writes, total), pct(r.Syncs, total)
}

// ReadRulePcts returns the FastTrack read-rule shares (same epoch,
// shared, exclusive, share), as percentages of all reads.
func (r RuleStats) ReadRulePcts() (same, shared, exclusive, share float64) {
	return pct(r.Stats.ReadSameEpoch, r.Reads),
		pct(r.Stats.ReadShared, r.Reads),
		pct(r.Stats.ReadExclusive, r.Reads),
		pct(r.Stats.ReadShare, r.Reads)
}

// WriteRulePcts returns the write-rule shares (same epoch, exclusive,
// shared) as percentages of all writes.
func (r RuleStats) WriteRulePcts() (same, exclusive, shared float64) {
	return pct(r.Stats.WriteSameEpoch, r.Writes),
		pct(r.Stats.WriteExclusive, r.Writes),
		pct(r.Stats.WriteShared, r.Writes)
}

// RuleFrequencies reproduces the Figure 2 / Figure 5 percentages by
// running FastTrack and DJIT+ over every benchmark and aggregating their
// rule counters.
func RuleFrequencies(cfg Config) []RuleStats {
	out := []RuleStats{{Tool: "FastTrack"}, {Tool: "DJIT+"}}
	for _, b := range sim.Benchmarks() {
		tr := b.Trace(cfg.Scale)
		for i, name := range []string{"FastTrack", "DJIT+"} {
			tool := maker(name, b.Threads)()
			d := rr.NewDispatcher(tool)
			d.Feed(tr)
			st := tool.Stats()
			out[i].Reads += st.Reads
			out[i].Writes += st.Writes
			out[i].Syncs += st.Syncs
			acc := &out[i].Stats
			acc.ReadSameEpoch += st.ReadSameEpoch
			acc.ReadShared += st.ReadShared
			acc.ReadExclusive += st.ReadExclusive
			acc.ReadShare += st.ReadShare
			acc.WriteSameEpoch += st.WriteSameEpoch
			acc.WriteExclusive += st.WriteExclusive
			acc.WriteShared += st.WriteShared
			acc.VCAlloc += st.VCAlloc
			acc.VCOp += st.VCOp
		}
	}
	return out
}

// ComposeFilters is the prefilter order of the Section 5.2 table.
var ComposeFilters = []string{"NONE", "TL", "ERASER", "DJIT+", "FASTTRACK"}

// ComposeCheckers is the downstream-checker order of the Section 5.2
// table.
var ComposeCheckers = []string{"Atomizer", "Velodrome", "SingleTrack"}

// ComposeRow is one downstream checker's slowdowns under each prefilter.
type ComposeRow struct {
	Checker   string
	Slowdowns map[string]float64 // by filter name
	Warnings  map[string]int
}

func checkerMaker(name string) func() rr.Tool {
	switch name {
	case "Atomizer":
		return func() rr.Tool { return atomicity.NewAtomizer() }
	case "Velodrome":
		return func() rr.Tool { return atomicity.NewVelodrome() }
	case "SingleTrack":
		return func() rr.Tool { return atomicity.NewSingleTrack() }
	}
	panic("bench: unknown checker " + name)
}

func filterMaker(name string, threads int) func() rr.Prefilter {
	switch name {
	case "TL":
		return func() rr.Prefilter { return empty.NewTL(0) }
	case "ERASER":
		return func() rr.Prefilter { return eraser.New(threads, 0) }
	case "DJIT+":
		return func() rr.Prefilter { return djit.New(threads, 0) }
	case "FASTTRACK":
		return func() rr.Prefilter { return core.New(threads, 0) }
	}
	panic("bench: unknown filter " + name)
}

// Compose reproduces the Section 5.2 composition table: the average
// slowdown of each heavyweight checker over the compute-bound benchmarks
// under each prefilter. Footnote 7 of the paper applies: Atomizer already
// embeds Eraser, so the ERASER prefilter cell is reported but not
// meaningful for it.
func Compose(cfg Config) []ComposeRow {
	type work struct {
		tr      trace.Trace
		base    time.Duration
		threads int
	}
	var works []work
	for _, b := range sim.Benchmarks() {
		if !b.ComputeBound {
			continue
		}
		tr := b.Trace(cfg.Scale)
		works = append(works, work{tr: tr, base: BaseTime(tr, cfg.runs()), threads: b.Threads})
	}
	var rows []ComposeRow
	for _, checker := range ComposeCheckers {
		row := ComposeRow{
			Checker:   checker,
			Slowdowns: map[string]float64{},
			Warnings:  map[string]int{},
		}
		for _, filter := range ComposeFilters {
			var slow float64
			warnings := 0
			for _, w := range works {
				mk := func() rr.Tool {
					back := checkerMaker(checker)()
					if filter == "NONE" {
						return back
					}
					return &rr.Pipeline{Pre: filterMaker(filter, w.threads)(), Back: back}
				}
				m := MeasureTool(w.tr, mk, cfg, w.base)
				slow += m.Slowdown
				warnings += m.Warnings
			}
			row.Slowdowns[filter] = slow / float64(len(works))
			row.Warnings[filter] = warnings
		}
		rows = append(rows, row)
	}
	return rows
}

// EclipseTools is the tool order of the Section 5.3 table.
var EclipseTools = []string{"Empty", "Eraser", "DJIT+", "FastTrack"}

// Eclipse reproduces the Section 5.3 experiment over the five
// Eclipse-operation workloads.
func Eclipse(cfg Config) []BenchRow {
	var rows []BenchRow
	for _, b := range sim.EclipseOps() {
		rows = append(rows, runRow(b, EclipseTools, cfg))
	}
	return rows
}
