package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// starred marks non-compute-bound benchmarks like the paper's Table 1.
func starred(r BenchRow) string {
	if r.ComputeBound {
		return r.Bench
	}
	return r.Bench + "*"
}

// FprintTable1 renders Table 1: per-benchmark slowdowns and warning
// counts for all seven tools, plus the compute-bound averages.
func FprintTable1(w io.Writer, rows []BenchRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Program\tThreads\tEvents\tBase(ms)")
	for _, tool := range Table1Tools {
		fmt.Fprintf(tw, "\t%s", tool)
	}
	fmt.Fprint(tw, "\t|")
	warnTools := []string{"Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "FastTrack"}
	for _, tool := range warnTools {
		fmt.Fprintf(tw, "\t%s", tool)
	}
	fmt.Fprintln(tw, "\tSeeded")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f", starred(r), r.Threads, r.Events,
			float64(r.Base.Microseconds())/1000)
		for _, tool := range Table1Tools {
			fmt.Fprintf(tw, "\t%.1f", r.Cells[tool].Slowdown)
		}
		fmt.Fprint(tw, "\t|")
		for _, tool := range warnTools {
			fmt.Fprintf(tw, "\t%d", r.Cells[tool].Warnings)
		}
		fmt.Fprintf(tw, "\t%d\n", r.KnownRaces)
	}
	avg := Averages(rows, Table1Tools)
	fmt.Fprint(tw, "Average\t\t\t")
	for _, tool := range Table1Tools {
		fmt.Fprintf(tw, "\t%.1f", avg[tool])
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Fprintln(w, "\n(slowdown = tool time / no-analysis iteration time; '*' rows excluded from averages)")
}

// FprintTable2 renders Table 2: vector clocks allocated and O(n) VC
// operations, DJIT+ vs FastTrack, with totals.
func FprintTable2(w io.Writer, rows []Table2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tVCs Allocated\t\tVC Operations\t")
	fmt.Fprintln(tw, "Program\tDJIT+\tFastTrack\tDJIT+\tFastTrack")
	var ta, tb, tc, td int64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", r.Bench, r.DJITAlloc, r.FTAlloc, r.DJITOps, r.FTOps)
		ta += r.DJITAlloc
		tb += r.FTAlloc
		tc += r.DJITOps
		td += r.FTOps
	}
	fmt.Fprintf(tw, "Total\t%d\t%d\t%d\t%d\n", ta, tb, tc, td)
	tw.Flush()
	if tb > 0 && td > 0 {
		fmt.Fprintf(w, "\nAllocation ratio DJIT+/FastTrack: %.0fx; operation ratio: %.0fx\n",
			float64(ta)/float64(tb), float64(tc)/float64(td))
	}
}

// FprintTable3 renders Table 3: memory overhead and slowdown under fine
// and coarse granularity.
func FprintTable3(w io.Writer, rows []Table3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\t\tMemory overhead (x)\t\t\t\tSlowdown (x)\t\t\t")
	fmt.Fprintln(tw, "\t\tFine\t\tCoarse\t\tFine\t\tCoarse\t")
	fmt.Fprintln(tw, "Program\tData(KB)\tDJIT+\tFT\tDJIT+\tFT\tDJIT+\tFT\tDJIT+\tFT")
	var sums [8]float64
	for _, r := range rows {
		cells := []float64{
			r.MemFine["DJIT+"], r.MemFine["FastTrack"],
			r.MemCoarse["DJIT+"], r.MemCoarse["FastTrack"],
			r.SlowFine["DJIT+"], r.SlowFine["FastTrack"],
			r.SlowCoarse["DJIT+"], r.SlowCoarse["FastTrack"],
		}
		fmt.Fprintf(tw, "%s\t%d", r.Bench, r.BaseBytes/1024)
		for i, c := range cells {
			fmt.Fprintf(tw, "\t%.1f", c)
			sums[i] += c
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "Average\t")
	for _, s := range sums {
		fmt.Fprintf(tw, "\t%.1f", s/float64(len(rows)))
	}
	fmt.Fprintln(tw)
	tw.Flush()
}

// FprintRules renders the Figure 2 / Figure 5 rule-frequency percentages.
func FprintRules(w io.Writer, stats []RuleStats) {
	for _, s := range stats {
		reads, writes, syncs := s.OperationMix()
		fmt.Fprintf(w, "%s operation mix: reads %.1f%%, writes %.1f%%, other %.1f%%\n",
			s.Tool, reads, writes, syncs)
		if s.Tool == "FastTrack" {
			same, shared, excl, share := s.ReadRulePcts()
			fmt.Fprintf(w, "  reads:  SAME EPOCH %.1f%%  SHARED %.1f%%  EXCLUSIVE %.1f%%  SHARE %.2f%%\n",
				same, shared, excl, share)
			wsame, wexcl, wshared := s.WriteRulePcts()
			fmt.Fprintf(w, "  writes: SAME EPOCH %.1f%%  EXCLUSIVE %.1f%%  SHARED %.2f%%\n",
				wsame, wexcl, wshared)
		} else {
			same, _, rest, _ := s.ReadRulePcts()
			fmt.Fprintf(w, "  reads:  SAME EPOCH %.1f%%  [DJIT+ READ] %.1f%%\n", same, rest)
			wsame, wrest, _ := s.WriteRulePcts()
			fmt.Fprintf(w, "  writes: SAME EPOCH %.1f%%  [DJIT+ WRITE] %.1f%%\n", wsame, wrest)
		}
		fmt.Fprintf(w, "  VCs allocated: %d; O(n) VC operations: %d\n", s.Stats.VCAlloc, s.Stats.VCOp)
	}
}

// FprintCompose renders the Section 5.2 composition table.
func FprintCompose(w io.Writer, rows []ComposeRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Checker")
	for _, f := range ComposeFilters {
		fmt.Fprintf(tw, "\t%s", f)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprint(tw, r.Checker)
		for _, f := range ComposeFilters {
			fmt.Fprintf(tw, "\t%.1f", r.Slowdowns[f])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(average slowdown over compute-bound benchmarks; prefilters forward only")
	fmt.Fprintln(w, " accesses not yet proven race-free, per Section 5.2 and footnote 6)")
}

// FprintEclipse renders the Section 5.3 table.
func FprintEclipse(w io.Writer, rows []BenchRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Operation\tEvents\tBase(ms)")
	for _, tool := range EclipseTools {
		fmt.Fprintf(tw, "\t%s", tool)
	}
	fmt.Fprintln(tw, "\t|\tEraser warns\tDJIT+ warns\tFastTrack warns\tSeeded")
	totals := map[string]int{}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f", r.Bench, r.Events, float64(r.Base.Microseconds())/1000)
		for _, tool := range EclipseTools {
			fmt.Fprintf(tw, "\t%.1f", r.Cells[tool].Slowdown)
		}
		fmt.Fprintf(tw, "\t|\t%d\t%d\t%d\t%d\n",
			r.Cells["Eraser"].Warnings, r.Cells["DJIT+"].Warnings,
			r.Cells["FastTrack"].Warnings, r.KnownRaces)
		for _, tool := range EclipseTools {
			totals[tool] += r.Cells[tool].Warnings
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "\nTotal warnings: Eraser %d, DJIT+ %d, FastTrack %d\n",
		totals["Eraser"], totals["DJIT+"], totals["FastTrack"])
}
