package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// This file renders every table as CSV so results can be consumed by
// plotting scripts and regression-tracking tooling (racebench -csv).

func writeCSV(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Table1CSV renders Table 1 rows as CSV.
func Table1CSV(w io.Writer, rows []BenchRow) error {
	out := [][]string{{"benchmark", "compute_bound", "threads", "events", "base_ns"}}
	for _, tool := range Table1Tools {
		out[0] = append(out[0], "slowdown_"+tool, "warnings_"+tool)
	}
	out[0] = append(out[0], "seeded_races")
	for _, r := range rows {
		row := []string{
			r.Bench, fmt.Sprint(r.ComputeBound), fmt.Sprint(r.Threads),
			fmt.Sprint(r.Events), fmt.Sprint(r.Base.Nanoseconds()),
		}
		for _, tool := range Table1Tools {
			c := r.Cells[tool]
			row = append(row, fmt.Sprintf("%.3f", c.Slowdown), fmt.Sprint(c.Warnings))
		}
		row = append(row, fmt.Sprint(r.KnownRaces))
		out = append(out, row)
	}
	return writeCSV(w, out)
}

// Table2CSV renders Table 2 rows as CSV.
func Table2CSV(w io.Writer, rows []Table2Row) error {
	out := [][]string{{"benchmark", "djit_vc_alloc", "fasttrack_vc_alloc", "djit_vc_ops", "fasttrack_vc_ops"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Bench,
			fmt.Sprint(r.DJITAlloc), fmt.Sprint(r.FTAlloc),
			fmt.Sprint(r.DJITOps), fmt.Sprint(r.FTOps),
		})
	}
	return writeCSV(w, out)
}

// Table3CSV renders Table 3 rows as CSV.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	out := [][]string{{
		"benchmark", "data_bytes",
		"mem_fine_djit", "mem_fine_ft", "mem_coarse_djit", "mem_coarse_ft",
		"slow_fine_djit", "slow_fine_ft", "slow_coarse_djit", "slow_coarse_ft",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Bench, fmt.Sprint(r.BaseBytes),
			fmt.Sprintf("%.3f", r.MemFine["DJIT+"]), fmt.Sprintf("%.3f", r.MemFine["FastTrack"]),
			fmt.Sprintf("%.3f", r.MemCoarse["DJIT+"]), fmt.Sprintf("%.3f", r.MemCoarse["FastTrack"]),
			fmt.Sprintf("%.3f", r.SlowFine["DJIT+"]), fmt.Sprintf("%.3f", r.SlowFine["FastTrack"]),
			fmt.Sprintf("%.3f", r.SlowCoarse["DJIT+"]), fmt.Sprintf("%.3f", r.SlowCoarse["FastTrack"]),
		})
	}
	return writeCSV(w, out)
}

// ComposeCSV renders the Section 5.2 table as CSV.
func ComposeCSV(w io.Writer, rows []ComposeRow) error {
	header := []string{"checker"}
	for _, f := range ComposeFilters {
		header = append(header, "slowdown_"+f, "warnings_"+f)
	}
	out := [][]string{header}
	for _, r := range rows {
		row := []string{r.Checker}
		for _, f := range ComposeFilters {
			row = append(row, fmt.Sprintf("%.3f", r.Slowdowns[f]), fmt.Sprint(r.Warnings[f]))
		}
		out = append(out, row)
	}
	return writeCSV(w, out)
}

// ScalingCSV renders the scaling ablation as CSV.
func ScalingCSV(w io.Writer, rows []ScalingRow) error {
	header := []string{"threads", "events"}
	for _, tool := range ScalingTools {
		header = append(header, "ns_per_event_"+tool, "vc_ops_"+tool, "shadow_kb_"+tool)
	}
	out := [][]string{header}
	for _, r := range rows {
		row := []string{fmt.Sprint(r.Threads), fmt.Sprint(r.Events)}
		for _, tool := range ScalingTools {
			row = append(row,
				fmt.Sprintf("%.2f", r.NsPerEv[tool]),
				fmt.Sprint(r.VCOps[tool]),
				fmt.Sprint(r.ShadowKB[tool]))
		}
		out = append(out, row)
	}
	return writeCSV(w, out)
}

// AccordionCSV renders the accordion experiment as CSV.
func AccordionCSV(w io.Writer, rows []AccordionRow) error {
	out := [][]string{{
		"waves", "workers", "threads", "events",
		"djit_bytes", "fasttrack_bytes", "fasttrack_compact_bytes", "dropped_threads",
	}}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Waves), fmt.Sprint(r.Workers), fmt.Sprint(r.TotalThreads),
			fmt.Sprint(r.Events), fmt.Sprint(r.DJITBytes), fmt.Sprint(r.FTBytes),
			fmt.Sprint(r.FTCompactBytes), fmt.Sprint(r.Dropped),
		})
	}
	return writeCSV(w, out)
}
