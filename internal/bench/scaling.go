package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"fasttrack"
	"fasttrack/internal/sim"
)

// ScalingRow is one thread count of the scaling ablation: the per-event
// cost of each tool and the O(n) work counters, on an identical per-
// thread workload.
type ScalingRow struct {
	Threads  int
	Events   int
	NsPerEv  map[string]float64
	VCOps    map[string]int64
	ShadowKB map[string]int64
}

// ScalingTools are the tools the ablation compares.
var ScalingTools = []string{"FastTrack", "WriteEpochsOnly", "DJIT+", "BasicVC"}

// scalingProfile builds a mixed workload with the given thread count and
// a constant amount of work per thread, so per-event costs isolate the
// O(n) factor.
func scalingProfile(threads int) sim.Benchmark {
	return sim.Benchmark{
		Seed: int64(300 + threads),
		Profile: sim.Profile{
			Name:            fmt.Sprintf("scaling-%d", threads),
			Threads:         threads,
			ComputeBound:    true,
			ThreadLocalVars: 400,
			ThreadLocalReps: 3,
			ReadsPerSweep:   3,
			WritesPerSweep:  1,
			RandomSweep:     true,
			Locks:           threads,
			LockVars:        threads * 16,
			LockReps:        120,
			CSAccesses:      6,
			SharedVars:      1200,
			SharedReps:      4,
		},
	}
}

// Scaling is the thread-scaling ablation motivated by Section 1 of the
// paper: vector-clock operations cost O(n) in the thread count while
// FastTrack's epoch fast paths are O(1), so the gap between DJIT+/
// BasicVC and FastTrack must widen as threads grow. It is an extension
// of the paper's evaluation (which fixes each benchmark's thread count).
func Scaling(cfg Config, threadCounts []int) []ScalingRow {
	if len(threadCounts) == 0 {
		threadCounts = []int{2, 4, 8, 16, 32, 64}
	}
	var rows []ScalingRow
	for _, n := range threadCounts {
		b := scalingProfile(n)
		tr := b.Trace(cfg.Scale)
		base := BaseTime(tr, cfg.runs())
		row := ScalingRow{
			Threads:  n,
			Events:   len(tr),
			NsPerEv:  map[string]float64{},
			VCOps:    map[string]int64{},
			ShadowKB: map[string]int64{},
		}
		for _, tool := range ScalingTools {
			m := MeasureTool(tr, maker(tool, n), cfg, base)
			row.NsPerEv[tool] = float64(m.Elapsed.Nanoseconds()) / float64(len(tr))
			row.VCOps[tool] = m.Stats.VCOp
			row.ShadowKB[tool] = m.Stats.ShadowBytes / 1024
		}
		rows = append(rows, row)
	}
	return rows
}

// FprintScaling renders the scaling ablation.
func FprintScaling(w io.Writer, rows []ScalingRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tns/event\t\t\t\tO(n) VC ops\t\t\t\tShadow KB\t\t\t\tDJIT+/FT")
	fmt.Fprintln(tw, "Threads\tFT\tWEpoch\tDJIT+\tBasicVC\tFT\tWEpoch\tDJIT+\tBasicVC\tFT\tWEpoch\tDJIT+\tBasicVC\ttime ratio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			r.Threads,
			r.NsPerEv["FastTrack"], r.NsPerEv["WriteEpochsOnly"], r.NsPerEv["DJIT+"], r.NsPerEv["BasicVC"],
			r.VCOps["FastTrack"], r.VCOps["WriteEpochsOnly"], r.VCOps["DJIT+"], r.VCOps["BasicVC"],
			r.ShadowKB["FastTrack"], r.ShadowKB["WriteEpochsOnly"], r.ShadowKB["DJIT+"], r.ShadowKB["BasicVC"],
			r.NsPerEv["DJIT+"]/r.NsPerEv["FastTrack"])
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(identical per-thread workload; the DJIT+/FastTrack gap widens with n,")
	fmt.Fprintln(w, " the O(1)-vs-O(n) separation the epoch representation buys)")
}

// ShardScalingSchema versions the BENCH_scaling.json artifact.
const ShardScalingSchema = "fasttrack/bench-scaling/v1"

// ShardScalingReport is the machine-readable ingestion-throughput
// artifact for the Monitor's lock-striped concurrent path: events/sec
// through a live Monitor at 1/2/4/8 feeder goroutines, serial versus
// sharded. CPUs records the parallelism available when the table was
// produced — on a single-core host the sharded rows cannot beat the
// serial ones, and consumers must interpret Speedup accordingly.
type ShardScalingReport struct {
	Schema    string            `json:"schema"`
	CPUs      int               `json:"cpus"`
	PerFeeder int               `json:"perFeeder"`
	Runs      int               `json:"runs"`
	Rows      []ShardScalingRow `json:"rows"`
}

// ShardScalingRow is one (feeders, shards) cell: total events ingested,
// wall-clock time for the concurrent feeding phase (best of Runs), and
// the throughput relative to the serial monitor under the same feeder
// count (Speedup == 1 for the shards=1 rows themselves).
type ShardScalingRow struct {
	Feeders      int     `json:"feeders"`
	Shards       int     `json:"shards"`
	Events       int64   `json:"events"`
	ElapsedNs    int64   `json:"elapsedNs"`
	EventsPerSec float64 `json:"eventsPerSec"`
	Speedup      float64 `json:"speedup"`
}

// shardScalingRun feeds perFeeder access events from each of feeders
// goroutines into one monitor and times the concurrent phase. Each
// feeder works a disjoint block of variables (write/read pairs over a
// small working set), the workload on which striped ingestion should
// approach linear scaling: no two feeders ever contend on a variable,
// only — by hash collision — on a stripe lock.
func shardScalingRun(feeders, shards, perFeeder int) time.Duration {
	var opts []fasttrack.MonitorOption
	if shards > 1 {
		opts = append(opts, fasttrack.WithShards(shards))
	}
	m := fasttrack.NewMonitor(opts...)
	// Fork every feeder thread up front so its state is materialized and
	// the sharded path never needs the once-per-thread slow path mid-run.
	for f := 1; f <= feeders; f++ {
		m.Fork(0, int32(f))
	}
	const block = 4096
	var wg sync.WaitGroup
	start := make(chan struct{})
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			tid := int32(f + 1)
			base := uint64(f) * block
			<-start
			for i := 0; i < perFeeder; i += 2 {
				x := base + uint64(i/2)%block
				m.Write(tid, x)
				m.Read(tid, x)
			}
		}(f)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return time.Since(t0)
}

// ShardScaling produces the sharded-ingestion throughput table. Nil
// feederCounts defaults to 1/2/4/8 and nil shardCounts to serial-vs-8;
// perFeeder <= 0 defaults to 200k events per feeder.
func ShardScaling(cfg Config, feederCounts, shardCounts []int, perFeeder int) ShardScalingReport {
	if len(feederCounts) == 0 {
		feederCounts = []int{1, 2, 4, 8}
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 8}
	}
	if perFeeder <= 0 {
		perFeeder = int(200_000 * cfg.Scale)
		if perFeeder < 10_000 {
			perFeeder = 10_000
		}
	}
	rep := ShardScalingReport{
		Schema:    ShardScalingSchema,
		CPUs:      runtime.GOMAXPROCS(0),
		PerFeeder: perFeeder,
		Runs:      cfg.runs(),
	}
	serial := map[int]float64{} // feeders -> serial events/sec
	for _, feeders := range feederCounts {
		for _, shards := range shardCounts {
			best := time.Duration(0)
			for r := 0; r < cfg.runs(); r++ {
				el := shardScalingRun(feeders, shards, perFeeder)
				if best == 0 || el < best {
					best = el
				}
			}
			events := int64(feeders) * int64(perFeeder)
			row := ShardScalingRow{
				Feeders:      feeders,
				Shards:       shards,
				Events:       events,
				ElapsedNs:    best.Nanoseconds(),
				EventsPerSec: float64(events) / best.Seconds(),
			}
			if shards == 1 {
				serial[feeders] = row.EventsPerSec
			}
			if s := serial[feeders]; s > 0 {
				row.Speedup = row.EventsPerSec / s
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// WriteShardScalingJSON writes the artifact as indented JSON.
func WriteShardScalingJSON(w io.Writer, rep ShardScalingReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintShardScaling renders the sharded-ingestion throughput table.
func FprintShardScaling(w io.Writer, rep ShardScalingReport) {
	fmt.Fprintf(w, "Monitor ingestion throughput, %d events/feeder, best of %d, %d CPU(s)\n\n",
		rep.PerFeeder, rep.Runs, rep.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Feeders\tShards\tEvents\tms\tevents/sec\tvs serial")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.2fM\t%.2fx\n",
			r.Feeders, r.Shards, r.Events,
			float64(r.ElapsedNs)/1e6, r.EventsPerSec/1e6, r.Speedup)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(disjoint per-feeder variable blocks; sharded speedup requires real")
	fmt.Fprintln(w, " CPU parallelism — on a single-core host the striped path only adds")
	fmt.Fprintln(w, " locking overhead, which this table then quantifies)")
}
