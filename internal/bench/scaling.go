package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fasttrack/internal/sim"
)

// ScalingRow is one thread count of the scaling ablation: the per-event
// cost of each tool and the O(n) work counters, on an identical per-
// thread workload.
type ScalingRow struct {
	Threads  int
	Events   int
	NsPerEv  map[string]float64
	VCOps    map[string]int64
	ShadowKB map[string]int64
}

// ScalingTools are the tools the ablation compares.
var ScalingTools = []string{"FastTrack", "WriteEpochsOnly", "DJIT+", "BasicVC"}

// scalingProfile builds a mixed workload with the given thread count and
// a constant amount of work per thread, so per-event costs isolate the
// O(n) factor.
func scalingProfile(threads int) sim.Benchmark {
	return sim.Benchmark{
		Seed: int64(300 + threads),
		Profile: sim.Profile{
			Name:            fmt.Sprintf("scaling-%d", threads),
			Threads:         threads,
			ComputeBound:    true,
			ThreadLocalVars: 400,
			ThreadLocalReps: 3,
			ReadsPerSweep:   3,
			WritesPerSweep:  1,
			RandomSweep:     true,
			Locks:           threads,
			LockVars:        threads * 16,
			LockReps:        120,
			CSAccesses:      6,
			SharedVars:      1200,
			SharedReps:      4,
		},
	}
}

// Scaling is the thread-scaling ablation motivated by Section 1 of the
// paper: vector-clock operations cost O(n) in the thread count while
// FastTrack's epoch fast paths are O(1), so the gap between DJIT+/
// BasicVC and FastTrack must widen as threads grow. It is an extension
// of the paper's evaluation (which fixes each benchmark's thread count).
func Scaling(cfg Config, threadCounts []int) []ScalingRow {
	if len(threadCounts) == 0 {
		threadCounts = []int{2, 4, 8, 16, 32, 64}
	}
	var rows []ScalingRow
	for _, n := range threadCounts {
		b := scalingProfile(n)
		tr := b.Trace(cfg.Scale)
		base := BaseTime(tr, cfg.runs())
		row := ScalingRow{
			Threads:  n,
			Events:   len(tr),
			NsPerEv:  map[string]float64{},
			VCOps:    map[string]int64{},
			ShadowKB: map[string]int64{},
		}
		for _, tool := range ScalingTools {
			m := MeasureTool(tr, maker(tool, n), cfg, base)
			row.NsPerEv[tool] = float64(m.Elapsed.Nanoseconds()) / float64(len(tr))
			row.VCOps[tool] = m.Stats.VCOp
			row.ShadowKB[tool] = m.Stats.ShadowBytes / 1024
		}
		rows = append(rows, row)
	}
	return rows
}

// FprintScaling renders the scaling ablation.
func FprintScaling(w io.Writer, rows []ScalingRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tns/event\t\t\t\tO(n) VC ops\t\t\t\tShadow KB\t\t\t\tDJIT+/FT")
	fmt.Fprintln(tw, "Threads\tFT\tWEpoch\tDJIT+\tBasicVC\tFT\tWEpoch\tDJIT+\tBasicVC\tFT\tWEpoch\tDJIT+\tBasicVC\ttime ratio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			r.Threads,
			r.NsPerEv["FastTrack"], r.NsPerEv["WriteEpochsOnly"], r.NsPerEv["DJIT+"], r.NsPerEv["BasicVC"],
			r.VCOps["FastTrack"], r.VCOps["WriteEpochsOnly"], r.VCOps["DJIT+"], r.VCOps["BasicVC"],
			r.ShadowKB["FastTrack"], r.ShadowKB["WriteEpochsOnly"], r.ShadowKB["DJIT+"], r.ShadowKB["BasicVC"],
			r.NsPerEv["DJIT+"]/r.NsPerEv["FastTrack"])
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(identical per-thread workload; the DJIT+/FastTrack gap widens with n,")
	fmt.Fprintln(w, " the O(1)-vs-O(n) separation the epoch representation buys)")
}
