// Package bench is the measurement harness that regenerates every table
// and figure of the FastTrack paper's evaluation (Section 5) from the
// synthetic benchmark workloads of internal/sim. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// Methodology: for each benchmark a trace is generated once, then each
// tool consumes the identical in-memory trace through the rr.Dispatcher.
// "Base time" is the cost of iterating the trace with no analysis
// attached (the analog of the uninstrumented run), and a tool's slowdown
// is its run time divided by the base time. Absolute numbers depend on
// the host; the paper's claims are about the ratios between tools.
package bench

import (
	"runtime"
	"time"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Config tunes a harness run.
type Config struct {
	// Scale multiplies workload repetition counts (1 = default size).
	Scale float64
	// Runs is the number of timed repetitions; the fastest is kept.
	Runs int
	// Granularity applies to every tool (Table 3 varies it).
	Granularity rr.Granularity
}

// DefaultConfig returns the configuration used by cmd/racebench.
func DefaultConfig() Config {
	return Config{Scale: 1, Runs: 3, Granularity: rr.Fine}
}

func (c Config) runs() int {
	if c.Runs < 1 {
		return 1
	}
	return c.Runs
}

// Measurement is one (benchmark, tool) cell.
type Measurement struct {
	Tool     string
	Elapsed  time.Duration
	Slowdown float64
	Warnings int
	Stats    rr.Stats
}

// BaseTime measures the no-analysis iteration cost of a trace: the
// stand-in for the uninstrumented program's running time.
func BaseTime(tr trace.Trace, runs int) time.Duration {
	runtime.GC() // steady heap before timing
	best := time.Duration(0)
	var sink uint64
	for r := 0; r < runs; r++ {
		start := time.Now()
		for i := range tr {
			// Touch the event so the loop cannot be optimized away and
			// the memory traffic matches what every tool also pays.
			sink += uint64(tr[i].Kind) + tr[i].Target
		}
		elapsed := time.Since(start)
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	if sink == 0xdeadbeef {
		panic("unreachable")
	}
	if best <= 0 {
		best = time.Nanosecond
	}
	return best
}

// MeasureTool runs a fresh tool (from mk) over the trace cfg.runs()
// times and reports the fastest run together with the tool's warnings
// and statistics.
func MeasureTool(tr trace.Trace, mk func() rr.Tool, cfg Config, base time.Duration) Measurement {
	var m Measurement
	for r := 0; r < cfg.runs(); r++ {
		runtime.GC() // drop the previous run's shadow state before timing
		tool := mk()
		d := rr.NewDispatcher(tool)
		d.Granularity = cfg.Granularity
		start := time.Now()
		d.Feed(tr)
		elapsed := time.Since(start)
		if m.Elapsed == 0 || elapsed < m.Elapsed {
			m.Elapsed = elapsed
		}
		if r == cfg.runs()-1 {
			m.Tool = tool.Name()
			m.Warnings = len(tool.Races())
			m.Stats = tool.Stats()
		}
	}
	m.Slowdown = float64(m.Elapsed) / float64(base)
	return m
}
