package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"fasttrack/internal/core"
	"fasttrack/internal/detectors/djit"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// AccordionRow is one configuration of the accordion experiment: shadow
// memory for DJIT+, plain FastTrack, and FastTrack with the
// accordion-style Compact pass run after each wave of worker threads
// exits.
type AccordionRow struct {
	Waves, Workers int
	TotalThreads   int
	Events         int
	DJITBytes      int64
	FTBytes        int64
	FTCompactBytes int64
	Dropped        int // threads fully reclaimed
	Warnings       int // must be zero; the workload is race-free
}

// Accordion measures the space effect of dead-thread compaction on
// workloads with many short-lived threads (cf. accordion clocks,
// Christiaens & De Bosschere, cited in the paper's Sections 4 and 6).
func Accordion(cfg Config, shapes [][2]int) []AccordionRow {
	if len(shapes) == 0 {
		shapes = [][2]int{{4, 8}, {16, 8}, {64, 8}, {16, 32}}
	}
	vars, reps := 64, 2
	var rows []AccordionRow
	for _, s := range shapes {
		waves, workers := s[0], s[1]
		tr := sim.Waves(waves, workers, vars, reps)
		row := AccordionRow{
			Waves:        waves,
			Workers:      workers,
			TotalThreads: waves*workers + 1,
			Events:       len(tr),
		}

		dj := djit.New(0, 0)
		feed(dj.HandleEvent, tr)
		row.DJITBytes = dj.Stats().ShadowBytes

		plain := core.New(0, 0)
		feed(plain.HandleEvent, tr)
		row.FTBytes = plain.Stats().ShadowBytes

		compacted := core.New(0, 0)
		var dead []int32
		for i, e := range tr {
			compacted.HandleEvent(i, e)
			if e.Kind == trace.Join {
				dead = append(dead, int32(e.Target))
				if len(dead)%workers == 0 { // end of a wave
					st := compacted.Compact(dead)
					row.Dropped += st.DroppedThreads
				}
			}
		}
		row.FTCompactBytes = compacted.Stats().ShadowBytes
		row.Warnings = len(plain.Races()) + len(compacted.Races()) + len(dj.Races())
		rows = append(rows, row)
	}
	return rows
}

func feed(h func(int, trace.Event), tr trace.Trace) {
	for i, e := range tr {
		h(i, e)
	}
}

// FprintAccordion renders the accordion experiment.
func FprintAccordion(w io.Writer, rows []AccordionRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Waves\tWorkers\tThreads\tEvents\tDJIT+ KB\tFastTrack KB\tFT+Compact KB\tDropped\tReduction")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1fx\n",
			r.Waves, r.Workers, r.TotalThreads, r.Events,
			r.DJITBytes/1024, r.FTBytes/1024, r.FTCompactBytes/1024,
			r.Dropped, float64(r.FTBytes)/float64(r.FTCompactBytes))
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(race-free waves of short-lived worker threads; Compact runs once per")
	fmt.Fprintln(w, " joined wave and reclaims all shadow state referencing the dead threads)")
}
