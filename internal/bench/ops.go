package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
)

// OpsSchema versions the BENCH_ops.json artifact. Fields are only ever
// added within a schema version.
const OpsSchema = "fasttrack/bench-ops/v1"

// OpsReport is the machine-readable per-detector cost/operation-mix
// artifact: for every simulated workload and every tool, the analysis
// cost per event and the share of accesses handled by constant-time
// instrumentation paths. It is the benchmark-side counterpart of
// `racedetect -stats` and is written by `racebench -table ops -out`.
type OpsReport struct {
	Schema     string     `json:"schema"`
	Scale      float64    `json:"scale"`
	Runs       int        `json:"runs"`
	Benchmarks []OpsBench `json:"benchmarks"`
}

// OpsBench is one workload's measurements across the tool set.
type OpsBench struct {
	Bench   string    `json:"bench"`
	Threads int       `json:"threads"`
	Events  int       `json:"events"`
	Tools   []OpsTool `json:"tools"`
}

// OpsTool is one (workload, detector) cell.
type OpsTool struct {
	Tool       string  `json:"tool"`
	NsPerEvent float64 `json:"nsPerEvent"`
	Slowdown   float64 `json:"slowdown"`
	Warnings   int     `json:"warnings"`
	// FastPathPct is the percentage of memory accesses handled by the
	// tool's constant-time instrumentation paths (for FastTrack,
	// everything except READ SHARE inflation and WRITE SHARED; for the
	// epoch-based baselines, the same-epoch tests; zero for BasicVC,
	// whose every access is an O(n) vector-clock operation). It is
	// omitted for detectors without an access-rule taxonomy (the
	// lockset-only tools).
	FastPathPct *float64 `json:"fastPathPct,omitempty"`
	// SameEpochPct is the share of accesses whose epoch matched the
	// shadow word exactly — the paper's headline frequency. Omitted
	// when the tool has no same-epoch test.
	SameEpochPct *float64 `json:"sameEpochPct,omitempty"`
	Stats        rr.Stats `json:"stats"`
}

// OpsTools is the default tool set of the ops artifact: the Table 1
// detectors plus the Section 3 write-epochs ablation.
var OpsTools = []string{"Empty", "Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "WriteEpochsOnly", "FastTrack"}

// fastAccesses classifies st's accesses into constant-time paths for
// the named tool. ok is false for tools whose counters do not attribute
// every access to a rule.
func fastAccesses(tool string, st rr.Stats) (fast int64, ok bool) {
	accesses := st.Reads + st.Writes
	switch tool {
	case "Empty", "TL":
		// No per-access analysis at all.
		return accesses, true
	case "FastTrack":
		return accesses - st.ReadShare - st.WriteShared, true
	case "MultiRace":
		// The exclusive-counted paths run the vector-clock transition
		// machinery; owned/shared/same-epoch accesses stay in the
		// constant-time lockset fast path.
		return accesses - st.ReadExclusive - st.WriteExclusive, true
	case "DJIT+", "WriteEpochsOnly":
		// Only the same-epoch test avoids per-access vector-clock work.
		return st.ReadSameEpoch + st.WriteSameEpoch, true
	case "BasicVC":
		// Every access is an O(n) vector-clock operation.
		return 0, true
	}
	return 0, false
}

// opsCell builds one (workload, tool) cell from a measurement.
func opsCell(tool string, events int, m Measurement) OpsTool {
	cell := OpsTool{
		Tool:     tool,
		Slowdown: m.Slowdown,
		Warnings: m.Warnings,
		Stats:    m.Stats,
	}
	if events > 0 {
		cell.NsPerEvent = float64(m.Elapsed.Nanoseconds()) / float64(events)
	}
	accesses := m.Stats.Reads + m.Stats.Writes
	if fast, ok := fastAccesses(tool, m.Stats); ok && accesses > 0 {
		p := pct(fast, accesses)
		cell.FastPathPct = &p
	}
	if same := m.Stats.ReadSameEpoch + m.Stats.WriteSameEpoch; same > 0 {
		p := pct(same, accesses)
		cell.SameEpochPct = &p
	}
	return cell
}

// Ops measures every tool over every workload and assembles the
// artifact. A nil tools slice means OpsTools; a nil benchs slice means
// the full Table 1 workload set.
func Ops(cfg Config, tools []string, benchs []sim.Benchmark) OpsReport {
	if tools == nil {
		tools = OpsTools
	}
	if benchs == nil {
		benchs = sim.Benchmarks()
	}
	rep := OpsReport{Schema: OpsSchema, Scale: cfg.Scale, Runs: cfg.runs()}
	for _, b := range benchs {
		tr := b.Trace(cfg.Scale)
		base := BaseTime(tr, cfg.runs())
		ob := OpsBench{Bench: b.Name, Threads: b.Threads, Events: len(tr)}
		for _, name := range tools {
			m := MeasureTool(tr, maker(name, b.Threads), cfg, base)
			ob.Tools = append(ob.Tools, opsCell(name, len(tr), m))
		}
		rep.Benchmarks = append(rep.Benchmarks, ob)
	}
	return rep
}

// WriteOpsJSON writes the artifact as indented JSON.
func WriteOpsJSON(w io.Writer, rep OpsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FprintOps renders the artifact as a human-readable table: one row per
// (workload, tool) with ns/event and the fast-path share.
func FprintOps(w io.Writer, rep OpsReport) {
	fmt.Fprintf(w, "Per-detector analysis cost and operation mix (scale %g, best of %d)\n\n", rep.Scale, rep.Runs)
	fmt.Fprintf(w, "%-12s %8s  %-16s %10s %8s %9s %9s\n",
		"bench", "events", "tool", "ns/event", "slowdn", "fast%", "sameEp%")
	for _, b := range rep.Benchmarks {
		for i, c := range b.Tools {
			name, events := "", ""
			if i == 0 {
				name, events = b.Bench, fmt.Sprintf("%d", b.Events)
			}
			fmt.Fprintf(w, "%-12s %8s  %-16s %10.1f %7.1fx %9s %9s\n",
				name, events, c.Tool, c.NsPerEvent, c.Slowdown,
				fmtPct(c.FastPathPct), fmtPct(c.SameEpochPct))
		}
	}
}

func fmtPct(p *float64) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", *p)
}
