package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanStagesAndTotal(t *testing.T) {
	var s Span
	s.AddStage("decode", 100)
	s.AddStage("detect", 250)
	if s.TotalNs != 350 {
		t.Errorf("TotalNs = %d, want 350", s.TotalNs)
	}
	if got := s.StageNs("detect"); got != 250 {
		t.Errorf("StageNs(detect) = %d, want 250", got)
	}
	if got := s.StageNs("missing"); got != 0 {
		t.Errorf("StageNs(missing) = %d, want 0", got)
	}
}

func TestSpanRingEvictsOldest(t *testing.T) {
	r := NewSpanRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	for i := 1; i <= 10; i++ {
		r.Record(Span{Seq: int64(i)})
	}
	if r.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", r.Recorded())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot kept %d spans, want 4", len(got))
	}
	// Newest first: 10, 9, 8, 7.
	for i, want := range []int64{10, 9, 8, 7} {
		if got[i].Seq != want {
			t.Errorf("Snapshot[%d].Seq = %d, want %d", i, got[i].Seq, want)
		}
	}
}

func TestSpanRingPartiallyFilled(t *testing.T) {
	r := NewSpanRing(8)
	if got := r.Snapshot(); len(got) != 0 {
		t.Errorf("empty ring snapshot has %d spans", len(got))
	}
	r.Record(Span{Seq: 1, TraceID: 42})
	got := r.Snapshot()
	if len(got) != 1 || got[0].TraceID != 42 {
		t.Errorf("Snapshot = %+v", got)
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(16)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s := Span{TraceID: uint64(p), Seq: int64(i)}
				s.AddStage("work", int64(i))
				r.Record(s)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, s := range r.Snapshot() {
				if len(s.Stages) != 1 || s.Stages[0].Ns != s.Seq {
					t.Errorf("torn span observed: %+v", s)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Recorded() != 4000 {
		t.Errorf("Recorded = %d, want 4000", r.Recorded())
	}
}

func TestSpanJSONSchema(t *testing.T) {
	s := Span{TraceID: 7, Label: "s01", Seq: 3, Start: 12345, Stages: []SpanStage{{Name: "wire", Ns: 10}}}
	s.TotalNs = 10
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"traceId":7,"label":"s01","seq":3,"startUnixNano":12345,"totalNs":10,"stages":[{"name":"wire","ns":10}]}`
	if string(b) != want {
		t.Errorf("JSON = %s\n want %s", b, want)
	}
}
