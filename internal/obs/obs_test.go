package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

func TestCounterNeverDecreases(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone by construction
	c.Add(0)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGaugeMovesBothWays(t *testing.T) {
	var g Gauge
	g.Set(7)
	if got := g.Add(-10); got != -3 {
		t.Errorf("Add returned %d, want the new value -3", got)
	}
	if got := g.Load(); got != -3 {
		t.Errorf("gauge = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 1010 {
		t.Errorf("sum = %d, want 1010 (non-positive values excluded)", s.Sum)
	}
	// Expected buckets: hi=0 {-5, 0}, hi=1 {1}, hi=3 {2, 3}, hi=7 {4},
	// hi=1023 {1000}.
	want := []Bucket{{0, 2}, {1, 1}, {3, 2}, {7, 1}, {1023, 1}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", s.Buckets, want)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, count = %d", total, s.Count)
	}
}

func TestHistogramHugeValueClamped(t *testing.T) {
	var h Histogram
	h.Observe(1 << 62) // bit length 63 > histBuckets: must clamp, not panic
	s := h.snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Count != 1 {
		t.Fatalf("buckets = %+v, want one bucket with one observation", s.Buckets)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(1) // bucket hi=1
	}
	h.Observe(1 << 20) // one outlier
	s := h.snapshot()
	if q := s.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
	if q := s.Quantile(0.999); q < 1<<20 {
		t.Errorf("p99.9 = %d, want >= %d", q, 1<<20)
	}
	if m := s.Mean(); m < 1 || m > float64(1<<20) {
		t.Errorf("mean = %g out of range", m)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram: quantile and mean must be 0")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name must return the same counter handle")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("same name must return the same gauge handle")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("same name must return the same histogram handle")
	}
	// The three namespaces are independent: "a" exists in each.
	if got := len(r.Names()); got != 3 {
		t.Errorf("Names() has %d entries, want 3", got)
	}
}

func TestSnapshotAndJSONStability(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(10)
	r.Gauge("bytes").Set(4096)
	r.Histogram("lat").Observe(100)

	s := r.Snapshot()
	if s.Counter("events") != 10 || s.Gauge("bytes") != 4096 {
		t.Errorf("snapshot accessors: events=%d bytes=%d", s.Counter("events"), s.Gauge("bytes"))
	}
	if s.Counter("missing") != 0 || s.Gauge("missing") != 0 {
		t.Error("missing metrics must read as 0")
	}
	if s.Histograms["lat"].Count != 1 {
		t.Errorf("histogram count = %d, want 1", s.Histograms["lat"].Count)
	}

	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("JSON encoding is not stable across identical snapshots")
	}
	var round Snapshot
	if err := json.Unmarshal(a.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["events"] != 10 {
		t.Errorf("round-tripped events = %d, want 10", round.Counters["events"])
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("/metrics body is not valid JSON: %v", err)
	}
	if s.Counters["events"] != 1 {
		t.Errorf("served events = %d, want 1", s.Counters["events"])
	}
}

// TestConcurrentUpdatesAndSnapshots runs writers against snapshotters
// (meaningful under -race) and checks that snapshots are monotone in
// every counter and histogram field.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const writers, iters = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events")
			h := r.Histogram("lat")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(int64(i % 512))
				r.Gauge("phase").Set(int64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var lastCount, lastEvents int64
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			if n := s.Counter("events"); n < lastEvents {
				t.Errorf("counter went backwards: %d -> %d", lastEvents, n)
				return
			} else {
				lastEvents = n
			}
			if n := s.Histograms["lat"].Count; n < lastCount {
				t.Errorf("histogram count went backwards: %d -> %d", lastCount, n)
				return
			} else {
				lastCount = n
			}
		}
	}()
	wg.Wait()
	<-done
	s := r.Snapshot()
	if got, want := s.Counter("events"), int64(writers*iters); got != want {
		t.Errorf("final events = %d, want %d", got, want)
	}
	if got, want := s.Histograms["lat"].Count, int64(writers*iters); got != want {
		t.Errorf("final histogram count = %d, want %d", got, want)
	}
}

func TestDeleteByPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("svc.session.s1.frames").Inc()
	r.Gauge("svc.session.s1.queueDepth").Set(3)
	r.Histogram("svc.session.s1.batch").Observe(10)
	r.Counter("svc.session.s2.frames").Inc()
	r.Counter("svc.framesTotal").Inc()

	if n := r.DeleteByPrefix("svc.session.s1."); n != 3 {
		t.Errorf("DeleteByPrefix removed %d metrics, want 3", n)
	}
	snap := r.Snapshot()
	if _, ok := snap.Counters["svc.session.s1.frames"]; ok {
		t.Error("deleted counter still in snapshot")
	}
	if _, ok := snap.Gauges["svc.session.s1.queueDepth"]; ok {
		t.Error("deleted gauge still in snapshot")
	}
	if snap.Counter("svc.session.s2.frames") != 1 || snap.Counter("svc.framesTotal") != 1 {
		t.Error("unrelated metrics were deleted")
	}
	// A retained handle keeps working; re-creating the name starts fresh.
	if got := r.Counter("svc.session.s1.frames").Load(); got != 0 {
		t.Errorf("recreated counter = %d, want 0", got)
	}
}
