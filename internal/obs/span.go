package obs

import "sync/atomic"

// This file implements the pipeline-tracing primitive: a Span records
// one unit of work (for racedetectd, one wire frame) as per-stage
// durations keyed by a trace ID, and a SpanRing keeps the most recent
// spans in a fixed-capacity lock-free ring for /debug/trace-style
// endpoints. Recording is one atomic add plus one atomic pointer store,
// so it is safe on hot paths and never blocks readers; snapshots are
// point-in-time and may miss a span that is being overwritten while the
// snapshot walks the ring (bounded staleness, no torn reads).

// Span is one traced unit of work: per-stage durations, a caller-chosen
// label (e.g. the session id), and the trace ID stamped by the producer
// (0 when the producer did not stamp one). The JSON tags define the
// stable schema served by /debug/trace.
type Span struct {
	TraceID uint64      `json:"traceId,omitempty"`
	Label   string      `json:"label,omitempty"`
	Seq     int64       `json:"seq"`           // producer-assigned ordinal (e.g. frame number)
	Start   int64       `json:"startUnixNano"` // wall-clock start, unix nanoseconds
	TotalNs int64       `json:"totalNs"`       // end-to-end duration
	Stages  []SpanStage `json:"stages,omitempty"`
}

// SpanStage is one named stage of a span with its duration.
type SpanStage struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// AddStage appends a stage and accumulates it into TotalNs.
func (s *Span) AddStage(name string, ns int64) {
	s.Stages = append(s.Stages, SpanStage{Name: name, Ns: ns})
	s.TotalNs += ns
}

// StageNs returns the duration of the named stage, or 0 if absent.
func (s *Span) StageNs(name string) int64 {
	for _, st := range s.Stages {
		if st.Name == name {
			return st.Ns
		}
	}
	return 0
}

// SpanRing is a fixed-capacity ring of recent spans. Record is lock-free
// and safe for concurrent producers; Snapshot is safe concurrently with
// Record. The zero value is not usable; use NewSpanRing.
type SpanRing struct {
	slots []atomic.Pointer[Span]
	cur   atomic.Uint64 // total spans ever recorded
}

// NewSpanRing returns a ring keeping the latest n spans (minimum 1).
func NewSpanRing(n int) *SpanRing {
	if n < 1 {
		n = 1
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], n)}
}

// Record stores a copy of s, evicting the oldest span once the ring is
// full.
func (r *SpanRing) Record(s Span) {
	i := (r.cur.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(&s)
}

// Recorded returns the total number of spans ever recorded.
func (r *SpanRing) Recorded() int64 { return int64(r.cur.Load()) }

// Cap returns the ring's capacity.
func (r *SpanRing) Cap() int { return len(r.slots) }

// Snapshot returns the ring's current spans, newest first. Concurrent
// recording can make a snapshot skip or repeat a boundary span; it
// never observes a torn one.
func (r *SpanRing) Snapshot() []Span {
	total := r.cur.Load()
	n := uint64(len(r.slots))
	if total < n {
		n = total
	}
	out := make([]Span, 0, n)
	for k := uint64(0); k < n; k++ {
		p := r.slots[(total-1-k)%uint64(len(r.slots))].Load()
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}
