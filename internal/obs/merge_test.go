package obs

import (
	"reflect"
	"testing"
)

func TestMergeSnapshots(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("events").Add(10)
	r1.Counter("only1").Add(3)
	r1.Gauge("active").Set(2)
	r2.Counter("events").Add(32)
	r2.Gauge("active").Set(5)
	r2.Gauge("only2").Set(-1)
	for i := int64(1); i <= 100; i++ {
		r1.Histogram("lat").Observe(i)
		r2.Histogram("lat").Observe(i * 1000)
	}

	m := MergeSnapshots(r1.Snapshot(), r2.Snapshot())
	if got := m.Counter("events"); got != 42 {
		t.Errorf("events = %d, want 42", got)
	}
	if got := m.Counter("only1"); got != 3 {
		t.Errorf("only1 = %d, want 3", got)
	}
	if got := m.Gauge("active"); got != 7 {
		t.Errorf("active = %d, want 7", got)
	}
	if got := m.Gauge("only2"); got != -1 {
		t.Errorf("only2 = %d, want -1", got)
	}
	h := m.Histograms["lat"]
	if h.Count != 200 {
		t.Errorf("lat count = %d, want 200", h.Count)
	}
	wantSum := int64(0)
	for i := int64(1); i <= 100; i++ {
		wantSum += i + i*1000
	}
	if h.Sum != wantSum {
		t.Errorf("lat sum = %d, want %d", h.Sum, wantSum)
	}
	// Bucket counts must be conserved and stay sorted by bound.
	total := int64(0)
	for i, b := range h.Buckets {
		total += b.Count
		if i > 0 && h.Buckets[i-1].Hi >= b.Hi {
			t.Fatalf("buckets not sorted: %v", h.Buckets)
		}
	}
	if total != 200 {
		t.Errorf("bucket mass = %d, want 200", total)
	}
	// The merged quantile grid covers both nodes' ranges: the median
	// sits between the two clusters' bounds.
	if q := h.Quantile(0.25); q > 128 {
		t.Errorf("q25 = %d, want within the small cluster", q)
	}
	if q := h.Quantile(0.99); q < 1000 {
		t.Errorf("q99 = %d, want within the large cluster", q)
	}

	// Merging nothing yields an empty, usable snapshot.
	empty := MergeSnapshots()
	if len(empty.Counters) != 0 || len(empty.Gauges) != 0 || empty.Histograms != nil {
		t.Errorf("empty merge not empty: %+v", empty)
	}
	// Merging one snapshot is identity for counters/gauges.
	one := MergeSnapshots(r1.Snapshot())
	if !reflect.DeepEqual(one.Counters, r1.Snapshot().Counters) {
		t.Errorf("single merge changed counters")
	}
}
