package obs

import "sort"

// MergeSnapshots folds several registries' snapshots into one fleet
// view: counters and gauges sum by name, histograms merge bucket-wise.
// Summing gauges is the right aggregation for the gauges this module
// publishes (active sessions, queue depths, live bytes — all "how much
// is in flight here" quantities where the fleet total is the meaningful
// number); a gauge that is a per-node level rather than an amount
// should be read per node, not merged.
//
// Histogram buckets are aligned by their Hi bound. All of this module's
// histograms share the power-of-two bucket layout, so in practice the
// merge is bucket-for-bucket; differing layouts still merge soundly —
// every count lands in the union bucket with its own Hi — but quantile
// estimates then interpolate over the union's (coarser) grid.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		for k, h := range s.Histograms {
			out.Histograms[k] = mergeHistograms(out.Histograms[k], h)
		}
	}
	if len(out.Histograms) == 0 {
		out.Histograms = nil
	}
	return out
}

// mergeHistograms combines two histogram snapshots bucket-wise by Hi
// bound, keeping the bucket list sorted the way Histogram.Snapshot
// emits it.
func mergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	m := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	byHi := map[int64]int64{}
	for _, bk := range a.Buckets {
		byHi[bk.Hi] += bk.Count
	}
	for _, bk := range b.Buckets {
		byHi[bk.Hi] += bk.Count
	}
	if len(byHi) == 0 {
		return m
	}
	m.Buckets = make([]Bucket, 0, len(byHi))
	for hi, c := range byHi {
		m.Buckets = append(m.Buckets, Bucket{Hi: hi, Count: c})
	}
	sort.Slice(m.Buckets, func(i, j int) bool { return m.Buckets[i].Hi < m.Buckets[j].Hi })
	return m
}
