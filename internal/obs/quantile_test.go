package obs

import "testing"

// Edge-case coverage for HistogramSnapshot.Quantile: empty snapshots,
// the extreme quantiles q=0 and q=1, and single-bucket distributions.

func TestQuantileEmptyHistogram(t *testing.T) {
	var h HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty snapshot Quantile(%v) = %d, want 0", q, got)
		}
	}
	// A snapshot with buckets but no observations behaves the same.
	r := NewRegistry()
	r.Histogram("empty")
	snap := r.Snapshot().Histograms["empty"]
	if got := snap.Quantile(0.5); got != 0 {
		t.Errorf("zero-count snapshot Quantile(0.5) = %d, want 0", got)
	}
}

func TestQuantileExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// Observations spread across three power-of-two buckets:
	// 1 -> bucket hi 1, 100 -> hi 127, 5000 -> hi 8191.
	h.Observe(1)
	h.Observe(100)
	h.Observe(5000)
	snap := r.Snapshot().Histograms["lat"]

	// q=0 is the floor: the first non-empty bucket's upper bound.
	if got := snap.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want 1", got)
	}
	// q=1 is the ceiling: the rank clamps to the last observation, so
	// the answer is the last non-empty bucket's upper bound, never an
	// out-of-range read.
	if got := snap.Quantile(1); got != 8191 {
		t.Errorf("Quantile(1) = %d, want 8191", got)
	}
	if got := snap.Quantile(0.5); got != 127 {
		t.Errorf("Quantile(0.5) = %d, want 127", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one")
	// All observations land in the same bucket (hi = 63).
	for i := 0; i < 10; i++ {
		h.Observe(40)
	}
	snap := r.Snapshot().Histograms["one"]
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := snap.Quantile(q); got != 63 {
			t.Errorf("single-bucket Quantile(%v) = %d, want 63", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := NewRegistry()
	r.Histogram("single").Observe(9) // bucket hi 15
	snap := r.Snapshot().Histograms["single"]
	for _, q := range []float64{0, 0.5, 1} {
		if got := snap.Quantile(q); got != 15 {
			t.Errorf("Quantile(%v) = %d, want 15", q, got)
		}
	}
}
