// Package obs is the observability layer of the analysis pipeline: a
// dependency-light metrics registry (atomic counters, gauges, bounded
// power-of-two histograms) with stable JSON export and an expvar-style
// HTTP handler. It exists so the operation-mix accounting the paper's
// evaluation is built on (Section 5.1, Tables 2-3: which fraction of
// events took which analysis path, at what cost) is visible while a run
// is live, not only after it finishes.
//
// Design constraints:
//
//   - standard library only, like the rest of the module;
//   - updates are single atomic operations so the hot path (one bump per
//     dispatched event) stays cheap and race-free under the Go memory
//     model;
//   - snapshots never block updates: Snapshot copies the metric list
//     under the registry lock, releases it, and then reads the atomics,
//     so a slow HTTP scrape cannot stall the event loop;
//   - per-metric reads are monotone for counters and histograms (they
//     only ever grow), which the monitor stress tests assert.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is a programming error and is ignored so a
// counter can never decrease.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (shadow bytes, races so far,
// quarantined locations); unlike a Counter it may move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n and returns the new value, so a caller can
// pair it with Max to maintain a high-water mark without a separate
// backing counter.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Max raises the value to n if n is larger, making the gauge a running
// high-water mark (e.g. peak in-flight parallelism). Safe under
// concurrent Max/Set callers.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bit length i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 counts v <= 0). 48 buckets cover nanosecond latencies up to
// ~3 days and sizes up to ~256 TiB, which bounds the footprint at 50
// words per histogram regardless of the value distribution.
const histBuckets = 48

// Histogram is a bounded, atomic, power-of-two-bucketed histogram. It
// records counts, a sum, and per-magnitude buckets; it deliberately
// trades bucket resolution for a fixed footprint and wait-free updates.
type Histogram struct {
	count, sum atomic.Int64
	buckets    [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Bucket is one non-empty histogram bucket: Count observations were
// at most Hi (and greater than the previous bucket's Hi).
type Bucket struct {
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the exported state of a Histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the mean observed value (0 with no observations).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from
// the bucket boundaries: the Hi bound of the bucket the q-quantile
// observation falls in.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen int64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen > rank {
			return b.Hi
		}
	}
	return h.Buckets[len(h.Buckets)-1].Hi
}

func (h *Histogram) snapshot() HistogramSnapshot {
	// Read count before buckets: concurrent Observe calls may make the
	// buckets sum slightly ahead of Count, never behind, so successive
	// snapshots stay monotone per field.
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		hi := int64(0)
		if i > 0 {
			hi = int64(1)<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, Bucket{Hi: hi, Count: n})
	}
	return s
}

// Snapshot is a point-in-time copy of every metric in a Registry. Map
// keys are metric names; encoding/json sorts them, so the JSON encoding
// is stable across runs with the same metric set.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter's value (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Registry is a named collection of metrics. Metric handles are created
// on first use and removed only by an explicit DeleteByPrefix; lookups
// take the registry lock, so callers on hot paths should obtain handles
// once and bump the handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// DeleteByPrefix removes every metric whose name starts with prefix and
// returns how many were removed. It exists for bounded-cardinality
// dynamic namespaces — the ingestion service registers per-session
// metrics under "svc.session.<id>." and deletes them when the session
// is finalized, so evicted sessions do not leak registry entries.
// Handles already obtained by callers keep working; they are simply no
// longer exported.
func (r *Registry) DeleteByPrefix(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.counters {
		if strings.HasPrefix(name, prefix) {
			delete(r.counters, name)
			n++
		}
	}
	for name := range r.gauges {
		if strings.HasPrefix(name, prefix) {
			delete(r.gauges, name)
			n++
		}
	}
	for name := range r.hists {
		if strings.HasPrefix(name, prefix) {
			delete(r.hists, name)
			n++
		}
	}
	return n
}

// Snapshot copies every metric. The registry lock is held only while
// the metric list is copied, not while values are read, so snapshots
// never contend with updates beyond individual atomic loads.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for n, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{n, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{n, g})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{n, h})
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]int64, len(gauges)),
	}
	for _, e := range counters {
		s.Counters[e.name] = e.c.Load()
	}
	for _, e := range gauges {
		s.Gauges[e.name] = e.g.Load()
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for _, e := range hists {
			s.Histograms[e.name] = e.h.snapshot()
		}
	}
	return s
}

// WriteJSON writes the current snapshot as indented JSON with sorted
// keys (encoding/json sorts map keys), terminated by a newline.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns an HTTP handler serving the registry snapshot as JSON
// (the /metrics endpoint of racedetect -metrics.addr).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			// Headers are already out; nothing useful to do but note it.
			fmt.Fprintf(w, `{"error":%q}`, err.Error())
		}
	})
}

// Names returns every registered metric name, sorted, for tests and
// debug output.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
