package mini

import "testing"

// FuzzParse: arbitrary source must never panic the lexer, parser, or
// checker; valid programs must also survive a bounded run without
// panicking the interpreter.
func FuzzParse(f *testing.F) {
	f.Add("var x; main { x = 1; }")
	f.Add(racyCounter)
	f.Add(lockedCounter)
	f.Add("lock m; thread t { acquire m; wait m; release m; } main { fork t; acquire m; notify m; release m; join t; }")
	f.Add("var x; main { atomic { x = x + 1; } barrier; }")
	f.Add("main { if 1 { while 0 { skip; } } else { yield; } }")
	f.Add("main { print ((1+2)*3 == 9) && !(4 < 3); }")
	f.Add("thread t{}main{}")
	f.Add("var x main { }")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Bounded execution: runtime errors are fine, panics are not.
		res := Run(p, Options{Seed: 1, MaxSteps: 2000})
		_ = res
	})
}
