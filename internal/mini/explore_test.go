package mini

import (
	"testing"

	"fasttrack/internal/atomicity"
	"fasttrack/internal/core"
	"fasttrack/internal/rr"
)

func ftMaker() rr.Tool { return core.New(4, 8) }

// TestExploreExhaustsRacyCounter: exhaustive enumeration of the racy
// counter finds both outcomes (the lost update and the lucky 2) and the
// detector warns on every single schedule.
func TestExploreExhaustsRacyCounter(t *testing.T) {
	p := parse(t, racyCounter)
	res := Explore(p, ftMaker, 100000, 10000)
	if !res.Exhausted {
		t.Fatalf("racy counter not exhausted in %d schedules", res.Schedules)
	}
	if res.Warned != res.Schedules {
		t.Errorf("warned on %d of %d schedules; precision demands all", res.Warned, res.Schedules)
	}
	if res.Errors != 0 {
		t.Errorf("%d runtime errors", res.Errors)
	}
	one, two := res.Outputs["[1]"], res.Outputs["[2]"]
	if one == nil || two == nil {
		t.Fatalf("outputs = %v, want both [1] and [2]", keys(res.Outputs))
	}
	if one.Count == 0 || two.Count == 0 {
		t.Errorf("both outcomes must be reachable: %+v / %+v", one, two)
	}
	t.Logf("racy counter: %d schedules, lost update on %d", res.Schedules, one.Count)
}

// TestExploreLockedCounterAlwaysTwo: the fixed counter has a single
// observable outcome and never warns, across the entire schedule tree.
func TestExploreLockedCounterAlwaysTwo(t *testing.T) {
	p := parse(t, lockedCounter)
	res := Explore(p, ftMaker, 200000, 10000)
	if !res.Exhausted {
		t.Fatalf("locked counter not exhausted in %d schedules", res.Schedules)
	}
	if res.Warned != 0 {
		t.Errorf("false alarms on %d schedules", res.Warned)
	}
	if len(res.Outputs) != 1 || res.Outputs["[2]"] == nil {
		t.Errorf("outputs = %v, want only [2]", keys(res.Outputs))
	}
}

// TestExploreFindsDeadlock: enumeration provably reaches the lock-order
// inversion deadlock.
func TestExploreFindsDeadlock(t *testing.T) {
	src := `
		lock a, b;
		thread t1 { acquire a; acquire b; release b; release a; }
		thread t2 { acquire b; acquire a; release a; release b; }
		main { fork t1; fork t2; join t1; join t2; }`
	p := parse(t, src)
	res := Explore(p, nil, 100000, 10000)
	if !res.Exhausted {
		t.Fatalf("not exhausted in %d schedules", res.Schedules)
	}
	if res.Errors == 0 {
		t.Error("enumeration failed to reach the deadlock")
	}
	if res.Outputs["error: deadlock: no runnable thread"] == nil {
		t.Errorf("outputs = %v", keys(res.Outputs))
	}
}

// TestExploreAtomicityViolation: Velodrome over the schedule tree flags
// exactly the non-serializable interleavings of two atomic increments
// whose reads and writes interleave.
func TestExploreAtomicityViolation(t *testing.T) {
	src := `
		var x;
		thread inc {
			atomic {
				local t = x;
				yield;
				x = t + 1;
			}
		}
		main {
			fork inc;
			atomic {
				local u = x;
				yield;
				x = u + 2;
			}
			join inc;
			print x;
		}`
	p := parse(t, src)
	// FastTrack flags the data race on every schedule.
	ft := Explore(p, ftMaker, 100000, 10000)
	if !ft.Exhausted || ft.Warned != ft.Schedules {
		t.Errorf("FastTrack warned on %d/%d", ft.Warned, ft.Schedules)
	}
	// Velodrome flags the atomicity violation on the interleaved
	// schedules; the serial ones (outputs 3) are serializable, though on
	// this racy program some serial-looking outputs can still arise from
	// overlapping transactions.
	vd := Explore(p, func() rr.Tool { return atomicity.NewVelodrome() }, 100000, 10000)
	if !vd.Exhausted {
		t.Fatalf("not exhausted in %d schedules", vd.Schedules)
	}
	if vd.Warned == 0 {
		t.Error("Velodrome never flagged the non-serializable interleavings")
	}
	if vd.Warned == vd.Schedules {
		t.Error("Velodrome flagged even fully serial schedules")
	}
	// The lost-update outputs (1 or 2) are precisely non-serializable:
	// every schedule producing them must be flagged.
	for _, bad := range []string{"[1]", "[2]"} {
		if tally := vd.Outputs[bad]; tally != nil && tally.Warned != tally.Count {
			t.Errorf("output %s: Velodrome warned on %d of %d schedules", bad, tally.Warned, tally.Count)
		}
	}
}

func keys(m map[string]*OutputTally) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
