package mini

// Program is a parsed mini program: shared-state declarations, named
// thread bodies, and the main block (executed by thread 0).
type Program struct {
	// Vars, Locks, Volatiles are the declared shared names, in
	// declaration order.
	Vars      []string
	Locks     []string
	Volatiles []string
	// Threads maps thread names to bodies; ThreadOrder preserves source
	// order for deterministic id assignment.
	Threads     map[string]*Block
	ThreadOrder []string
	// Main is thread 0's body.
	Main *Block
}

// Block is a brace-delimited statement sequence.
type Block struct {
	Stmts []Stmt
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Assign writes a shared variable, volatile, or local: Name = Expr.
type Assign struct {
	Name string
	Expr Expr
	Line int
}

// LocalDecl introduces a thread-local variable: local Name = Expr.
type LocalDecl struct {
	Name string
	Expr Expr
	Line int
}

// Acquire takes a lock.
type Acquire struct {
	Lock string
	Line int
}

// Release releases a lock.
type Release struct {
	Lock string
	Line int
}

// Fork starts the named thread.
type Fork struct {
	Thread string
	Line   int
}

// Join waits for the named thread.
type Join struct {
	Thread string
	Line   int
}

// Wait blocks on a lock's condition (the thread must hold the lock):
// it releases the lock, sleeps until a Notify on the same lock, then
// re-acquires it — exactly the paper's Section 4 modeling of wait as
// the underlying release and subsequent re-acquisition.
type Wait struct {
	Lock string
	Line int
}

// Notify wakes every thread waiting on the lock (notifyAll semantics;
// the thread must hold the lock). It induces no happens-before edge.
type Notify struct {
	Lock string
	Line int
}

// If branches on a condition.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Line int
}

// While loops on a condition.
type While struct {
	Cond Expr
	Body *Block
	Line int
}

// Print appends the expression's value to the run's output.
type Print struct {
	Expr Expr
	Line int
}

// Assert fails the run if the expression is zero.
type Assert struct {
	Expr Expr
	Line int
}

// Skip does nothing (one scheduling step).
type Skip struct{ Line int }

// Barrier synchronizes all currently running threads (a global barrier
// release, as in the paper's Section 4 extension).
type Barrier struct{ Line int }

// Yield does nothing semantically but is a distinct scheduling point.
type Yield struct{ Line int }

// Atomic delimits a transaction (TxBegin/TxEnd markers for the
// atomicity checkers of Section 5.2). The scheduler does NOT execute it
// atomically — that is the point: the Velodrome/Atomizer checkers decide
// whether the observed interleavings are serializable. Transactions are
// flat: a nested atomic block restarts the enclosing transaction.
type Atomic struct {
	Body *Block
	Line int
}

func (*Assign) stmt()    {}
func (*LocalDecl) stmt() {}
func (*Acquire) stmt()   {}
func (*Release) stmt()   {}
func (*Fork) stmt()      {}
func (*Join) stmt()      {}
func (*If) stmt()        {}
func (*While) stmt()     {}
func (*Print) stmt()     {}
func (*Assert) stmt()    {}
func (*Skip) stmt()      {}
func (*Barrier) stmt()   {}
func (*Yield) stmt()     {}
func (*Atomic) stmt()    {}
func (*Wait) stmt()      {}
func (*Notify) stmt()    {}

// Expr is an expression node evaluating to an int64.
type Expr interface{ expr() }

// Num is an integer literal.
type Num struct{ Value int64 }

// Ref reads a name: a local if one is in scope, else a shared variable
// or volatile (resolved at runtime; parsing does not distinguish).
type Ref struct {
	Name string
	Line int
}

// Unary applies "!" or unary "-".
type Unary struct {
	Op string
	X  Expr
}

// Binary applies an arithmetic, comparison, or logical operator. "&&"
// and "||" short-circuit.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

func (*Num) expr()    {}
func (*Ref) expr()    {}
func (*Unary) expr()  {}
func (*Binary) expr() {}
