package mini

import (
	"reflect"
	"strings"
	"testing"
)

// roundTrip parses, formats, re-parses, and compares behaviour.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := Format(p1)
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parse of formatted output: %v\n%s", err, printed)
	}
	// Structural identity modulo source positions: compare by formatting
	// again (fixed point) and by identical behaviour on a few schedules.
	if again := Format(p2); again != printed {
		t.Fatalf("Format not a fixed point:\n--- first\n%s\n--- second\n%s", printed, again)
	}
	for seed := int64(0); seed < 5; seed++ {
		a := Run(p1, Options{Seed: seed, MaxSteps: 20000, RecordTrace: true})
		b := Run(p2, Options{Seed: seed, MaxSteps: 20000, RecordTrace: true})
		if !reflect.DeepEqual(a.Output, b.Output) || !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Fatalf("formatted program behaves differently (seed %d)", seed)
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("error behaviour differs (seed %d): %v vs %v", seed, a.Err, b.Err)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{
		racyCounter,
		lockedCounter,
		`var x; main { print ((1 + 2) * 3 - 4) / (5 % 3); }`,
		`var x; main { if x == 0 { x = 1; } else { x = 2; } while x < 10 { x = x + 1; } }`,
		`var a; volatile v; lock m;
		 thread t { acquire m; wait m; a = 1; release m; }
		 main { fork t; acquire m; notify m; release m; join t; print a; }`,
		`var x; main { atomic { local t = -x; x = t + 1; } barrier; yield; skip; assert !(x < 0); }`,
		`main {}`,
		`var x; thread t { x = 1; } main { fork t; join t; }`,
	} {
		roundTrip(t, src)
	}
}

func TestFormatPrecedenceExplicit(t *testing.T) {
	p, err := Parse(`var x; main { x = 1 + 2 * 3; print x - 1 - 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(p)
	if !strings.Contains(out, "1 + (2 * 3)") {
		t.Errorf("multiplication not parenthesized:\n%s", out)
	}
	if !strings.Contains(out, "(x - 1) - 1") {
		t.Errorf("left association not explicit:\n%s", out)
	}
}

func TestFormatOnExampleFiles(t *testing.T) {
	// The shipped example programs must round-trip too.
	for _, src := range []string{racyCounter, lockedCounter} {
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(Format(p)); err != nil {
			t.Errorf("formatted output unparseable: %v", err)
		}
	}
}
