package mini

import (
	"fmt"
	"math/rand"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Options configures one execution of a program.
type Options struct {
	// Seed drives the scheduler; equal seeds give identical executions.
	Seed int64
	// Tool observes every operation (any race detector or pipeline). May
	// be nil to just run the program.
	Tool rr.Tool
	// MaxSteps bounds execution (default 1 << 20); exceeding it is a
	// runtime error, catching accidental infinite loops.
	MaxSteps int
	// RecordTrace captures the event stream in Result.Trace.
	RecordTrace bool

	// chooser overrides the seeded random scheduler (used by Explore for
	// systematic enumeration).
	chooser chooser
}

// chooser picks which of n runnable threads steps next.
type chooser interface {
	choose(n int) int
}

// rngChooser is the default seeded random scheduler.
type rngChooser struct{ r *rand.Rand }

func (c *rngChooser) choose(n int) int { return c.r.Intn(n) }

// Result is the outcome of one execution.
type Result struct {
	// Output collects print values in execution order.
	Output []int64
	// Steps is the number of scheduler steps taken.
	Steps int
	// Err is the runtime failure, if any (assertion, division by zero,
	// deadlock, double fork, lock misuse, step limit).
	Err error
	// Races are the tool's warnings (nil without a tool).
	Races []rr.Report
	// Trace is the recorded event stream when Options.RecordTrace is set.
	Trace trace.Trace
}

// RuntimeError is a failure during execution, attributed to a source
// line and thread.
type RuntimeError struct {
	Line   int
	Thread string
	Msg    string
}

func (e *RuntimeError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("mini: runtime error at line %d (thread %s): %s", e.Line, e.Thread, e.Msg)
	}
	return fmt.Sprintf("mini: runtime error (thread %s): %s", e.Thread, e.Msg)
}

// blockReason says why a thread cannot step.
type blockReason uint8

const (
	ready blockReason = iota
	blockedOnLock
	blockedOnJoin
	blockedOnBarrier
	blockedOnNotify
	done
)

// frame is one entry of a thread's control stack.
type frame struct {
	block *Block
	pc    int
	loop  *While // non-nil for loop-body frames: re-test on exhaustion
	txEnd bool   // emit TxEnd when this frame is popped (atomic block)
}

// threadRun is one thread's runtime state.
type threadRun struct {
	name    string
	id      int32
	frames  []frame
	locals  map[string]int64
	status  blockReason
	waitFor string // lock or thread name while blocked
	started bool
	// waitStage tracks progress through a wait statement: 0 = not
	// waiting, 1 = parked until notify, 2 = notified, re-acquiring.
	waitStage int
}

// interp is the whole-machine state.
type interp struct {
	prog     *Program
	pick     chooser
	vars     map[string]int64
	varID    map[string]uint64
	volID    map[string]uint64
	lockID   map[string]uint64
	lockHeld map[string]int32 // owner id, or absent
	threads  []*threadRun
	byName   map[string]*threadRun
	emitFn   func(trace.Event)
	out      []int64
	eventIx  int
}

// Run executes the program under the given options.
func Run(p *Program, opt Options) *Result {
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 1 << 20
	}
	res := &Result{}
	pick := opt.chooser
	if pick == nil {
		pick = &rngChooser{r: rand.New(rand.NewSource(opt.Seed))}
	}
	in := &interp{
		prog:     p,
		pick:     pick,
		vars:     map[string]int64{},
		varID:    map[string]uint64{},
		volID:    map[string]uint64{},
		lockID:   map[string]uint64{},
		lockHeld: map[string]int32{},
		byName:   map[string]*threadRun{},
	}
	for i, v := range p.Vars {
		in.varID[v] = uint64(i)
		in.vars[v] = 0
	}
	for i, v := range p.Volatiles {
		in.volID[v] = uint64(i)
		in.vars[v] = 0
	}
	for i, l := range p.Locks {
		in.lockID[l] = uint64(i)
	}

	var disp *rr.Dispatcher
	if opt.Tool != nil {
		disp = rr.NewDispatcher(opt.Tool)
	}
	in.emitFn = func(e trace.Event) {
		if disp != nil {
			disp.Event(e)
		}
		if opt.RecordTrace {
			res.Trace = append(res.Trace, e)
		}
		in.eventIx++
	}

	// Thread 0 is main; declared threads get ids in source order when
	// forked (pre-assigned here so ids are schedule-independent).
	main := &threadRun{name: "main", id: 0, locals: map[string]int64{}, started: true}
	main.frames = []frame{{block: p.Main}}
	in.threads = append(in.threads, main)
	in.byName["main"] = main
	for i, name := range p.ThreadOrder {
		t := &threadRun{name: name, id: int32(i + 1), locals: map[string]int64{}, status: done}
		// status=done until forked; started=false distinguishes it.
		in.threads = append(in.threads, t)
		in.byName[name] = t
	}

	err := in.run(opt.MaxSteps, res)
	res.Err = err
	res.Output = in.out
	if opt.Tool != nil {
		res.Races = opt.Tool.Races()
	}
	return res
}

// run is the scheduler loop.
func (in *interp) run(maxSteps int, res *Result) error {
	for {
		// Refresh blocked threads whose condition cleared.
		for _, t := range in.threads {
			switch t.status {
			case blockedOnLock:
				if _, held := in.lockHeld[t.waitFor]; !held {
					t.status = ready
				}
			case blockedOnJoin:
				u := in.byName[t.waitFor]
				if u.started && u.status == done {
					t.status = ready
				}
			}
		}

		var runnable []*threadRun
		liveCount := 0
		barrierCount := 0
		for _, t := range in.threads {
			if !t.started || t.status == done {
				continue
			}
			liveCount++
			switch t.status {
			case ready:
				runnable = append(runnable, t)
			case blockedOnBarrier:
				barrierCount++
			}
		}
		if liveCount == 0 {
			return nil // everything finished
		}
		if len(runnable) == 0 {
			if barrierCount == liveCount {
				in.releaseBarrier()
				continue
			}
			waiting := 0
			for _, t := range in.threads {
				if t.started && t.status == blockedOnNotify {
					waiting++
				}
			}
			if waiting > 0 {
				return &RuntimeError{Thread: "scheduler", Msg: "deadlock: no runnable thread (lost wakeup: threads waiting without a notifier)"}
			}
			return &RuntimeError{Thread: "scheduler", Msg: "deadlock: no runnable thread"}
		}
		if res.Steps >= maxSteps {
			return &RuntimeError{Thread: "scheduler", Msg: fmt.Sprintf("step limit %d exceeded", maxSteps)}
		}
		res.Steps++
		t := runnable[in.pick.choose(len(runnable))]
		if err := in.step(t); err != nil {
			return err
		}
	}
}

// releaseBarrier wakes every thread blocked at the barrier, emitting the
// barrier-release event for exactly that set.
func (in *interp) releaseBarrier() {
	var tids []int32
	for _, t := range in.threads {
		if t.started && t.status == blockedOnBarrier {
			tids = append(tids, t.id)
		}
	}
	in.emitFn(trace.Barrier(0, tids...))
	for _, t := range in.threads {
		if t.started && t.status == blockedOnBarrier {
			t.status = ready
		}
	}
}

// step executes one statement (or one loop-condition re-test) of t.
func (in *interp) step(t *threadRun) error {
	for {
		if len(t.frames) == 0 {
			t.status = done
			return nil
		}
		f := &t.frames[len(t.frames)-1]
		if f.pc >= len(f.block.Stmts) {
			loop := f.loop
			if f.txEnd {
				in.emitFn(trace.Event{Kind: trace.TxEnd, Tid: t.id})
			}
			t.frames = t.frames[:len(t.frames)-1]
			if loop != nil {
				v, err := in.eval(t, loop.Cond)
				if err != nil {
					return err
				}
				if v != 0 {
					t.frames = append(t.frames, frame{block: loop.Body, loop: loop})
				}
				return nil // the re-test was this step
			}
			continue
		}
		s := f.block.Stmts[f.pc]
		advance, err := in.exec(t, s)
		if err != nil {
			return err
		}
		if advance {
			f.pc++
		}
		return nil
	}
}

// exec runs one statement; it returns false (without error) when the
// thread blocked and the statement must be retried.
func (in *interp) exec(t *threadRun, s Stmt) (bool, error) {
	fail := func(line int, msg string, args ...any) error {
		return &RuntimeError{Line: line, Thread: t.name, Msg: fmt.Sprintf(msg, args...)}
	}
	switch s := s.(type) {
	case *Assign:
		v, err := in.eval(t, s.Expr)
		if err != nil {
			return false, err
		}
		if _, isLocal := t.locals[s.Name]; isLocal {
			t.locals[s.Name] = v
			return true, nil
		}
		if id, ok := in.varID[s.Name]; ok {
			in.emitFn(trace.Wr(t.id, id))
		} else {
			in.emitFn(trace.VWr(t.id, in.volID[s.Name]))
		}
		in.vars[s.Name] = v
		return true, nil
	case *LocalDecl:
		v, err := in.eval(t, s.Expr)
		if err != nil {
			return false, err
		}
		t.locals[s.Name] = v
		return true, nil
	case *Acquire:
		if owner, held := in.lockHeld[s.Lock]; held {
			if owner == t.id {
				return false, fail(s.Line, "acquire of lock %q already held by this thread", s.Lock)
			}
			t.status = blockedOnLock
			t.waitFor = s.Lock
			return false, nil
		}
		in.lockHeld[s.Lock] = t.id
		in.emitFn(trace.Acq(t.id, in.lockID[s.Lock]))
		return true, nil
	case *Release:
		if owner, held := in.lockHeld[s.Lock]; !held || owner != t.id {
			return false, fail(s.Line, "release of lock %q not held by this thread", s.Lock)
		}
		delete(in.lockHeld, s.Lock)
		in.emitFn(trace.Rel(t.id, in.lockID[s.Lock]))
		return true, nil
	case *Fork:
		u := in.byName[s.Thread]
		if u.started {
			return false, fail(s.Line, "thread %q forked twice", s.Thread)
		}
		u.started = true
		u.status = ready
		u.frames = []frame{{block: in.prog.Threads[s.Thread]}}
		in.emitFn(trace.ForkOf(t.id, u.id))
		return true, nil
	case *Join:
		u := in.byName[s.Thread]
		if !u.started {
			return false, fail(s.Line, "join of thread %q before fork", s.Thread)
		}
		if u.status != done {
			t.status = blockedOnJoin
			t.waitFor = s.Thread
			return false, nil
		}
		in.emitFn(trace.JoinOf(t.id, u.id))
		return true, nil
	case *If:
		v, err := in.eval(t, s.Cond)
		if err != nil {
			return false, err
		}
		// Advance past the If first, then push the taken branch.
		fr := &t.frames[len(t.frames)-1]
		fr.pc++
		if v != 0 {
			t.frames = append(t.frames, frame{block: s.Then})
		} else if s.Else != nil {
			t.frames = append(t.frames, frame{block: s.Else})
		}
		return false, nil // pc already advanced
	case *While:
		v, err := in.eval(t, s.Cond)
		if err != nil {
			return false, err
		}
		fr := &t.frames[len(t.frames)-1]
		fr.pc++
		if v != 0 {
			t.frames = append(t.frames, frame{block: s.Body, loop: s})
		}
		return false, nil
	case *Print:
		v, err := in.eval(t, s.Expr)
		if err != nil {
			return false, err
		}
		in.out = append(in.out, v)
		return true, nil
	case *Assert:
		v, err := in.eval(t, s.Expr)
		if err != nil {
			return false, err
		}
		if v == 0 {
			return false, fail(s.Line, "assertion failed")
		}
		return true, nil
	case *Skip, *Yield:
		return true, nil
	case *Wait:
		switch t.waitStage {
		case 0:
			// Wait entry: must hold the lock; release it and park.
			if owner, held := in.lockHeld[s.Lock]; !held || owner != t.id {
				return false, fail(s.Line, "wait on lock %q not held by this thread", s.Lock)
			}
			in.emitFn(trace.Event{Kind: trace.Wait, Tid: t.id, Target: in.lockID[s.Lock]})
			delete(in.lockHeld, s.Lock)
			t.waitStage = 1
			t.status = blockedOnNotify
			t.waitFor = s.Lock
			return false, nil
		default:
			// Notified: re-acquire the lock to complete the wait.
			if owner, held := in.lockHeld[s.Lock]; held {
				if owner == t.id {
					return false, fail(s.Line, "wait re-acquisition found lock %q already owned", s.Lock)
				}
				t.status = blockedOnLock
				t.waitFor = s.Lock
				return false, nil
			}
			in.lockHeld[s.Lock] = t.id
			in.emitFn(trace.Acq(t.id, in.lockID[s.Lock]))
			t.waitStage = 0
			return true, nil
		}
	case *Notify:
		if owner, held := in.lockHeld[s.Lock]; !held || owner != t.id {
			return false, fail(s.Line, "notify on lock %q not held by this thread", s.Lock)
		}
		in.emitFn(trace.Event{Kind: trace.Notify, Tid: t.id, Target: in.lockID[s.Lock]})
		for _, u := range in.threads {
			if u.started && u.status == blockedOnNotify && u.waitFor == s.Lock {
				u.waitStage = 2
				u.status = blockedOnLock // woken; must re-acquire
			}
		}
		return true, nil
	case *Atomic:
		fr := &t.frames[len(t.frames)-1]
		fr.pc++
		in.emitFn(trace.Event{Kind: trace.TxBegin, Tid: t.id})
		t.frames = append(t.frames, frame{block: s.Body, txEnd: true})
		return false, nil
	case *Barrier:
		// Advance past the statement, then park at the barrier; the
		// scheduler releases everyone together.
		fr := &t.frames[len(t.frames)-1]
		fr.pc++
		t.status = blockedOnBarrier
		return false, nil
	}
	return false, fail(0, "unhandled statement %T", s)
}

// eval evaluates an expression, emitting read events for shared names.
func (in *interp) eval(t *threadRun, e Expr) (int64, error) {
	switch e := e.(type) {
	case *Num:
		return e.Value, nil
	case *Ref:
		if v, ok := t.locals[e.Name]; ok {
			return v, nil
		}
		if id, ok := in.varID[e.Name]; ok {
			in.emitFn(trace.Rd(t.id, id))
		} else {
			in.emitFn(trace.VRd(t.id, in.volID[e.Name]))
		}
		return in.vars[e.Name], nil
	case *Unary:
		v, err := in.eval(t, e.X)
		if err != nil {
			return 0, err
		}
		if e.Op == "-" {
			return -v, nil
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case *Binary:
		l, err := in.eval(t, e.L)
		if err != nil {
			return 0, err
		}
		// Short-circuit logical operators.
		switch e.Op {
		case "&&":
			if l == 0 {
				return 0, nil
			}
			r, err := in.eval(t, e.R)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		case "||":
			if l != 0 {
				return 1, nil
			}
			r, err := in.eval(t, e.R)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		}
		r, err := in.eval(t, e.R)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, &RuntimeError{Line: e.Line, Thread: t.name, Msg: "division by zero"}
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, &RuntimeError{Line: e.Line, Thread: t.name, Msg: "modulo by zero"}
			}
			return l % r, nil
		case "==":
			return boolToInt(l == r), nil
		case "!=":
			return boolToInt(l != r), nil
		case "<":
			return boolToInt(l < r), nil
		case "<=":
			return boolToInt(l <= r), nil
		case ">":
			return boolToInt(l > r), nil
		case ">=":
			return boolToInt(l >= r), nil
		}
		return 0, &RuntimeError{Line: e.Line, Thread: t.name, Msg: "unknown operator " + e.Op}
	}
	return 0, &RuntimeError{Thread: t.name, Msg: fmt.Sprintf("unhandled expression %T", e)}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
