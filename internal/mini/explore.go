package mini

import (
	"fmt"
	"strings"

	"fasttrack/internal/rr"
)

// This file implements systematic schedule enumeration in the style of
// stateless model checkers (CHESS, [25] in the paper's bibliography:
// "Finding and reproducing heisenbugs in concurrent programs"). Where
// Run samples one interleaving per seed, Explore walks the tree of
// scheduler decisions depth-first and — for small programs — visits
// every interleaving, turning per-schedule race detection into an
// exhaustive verdict.

// enumChooser replays a prefix of scheduler choices and then always
// picks the first runnable thread, recording the branching width at
// every decision so the driver can enumerate siblings.
type enumChooser struct {
	prefix  []int
	choices []int
	widths  []int
}

func (c *enumChooser) choose(n int) int {
	step := len(c.choices)
	pick := 0
	if step < len(c.prefix) {
		pick = c.prefix[step]
	}
	if pick >= n {
		// Should not happen: the same program replayed with the same
		// prefix has the same branching widths. Clamp defensively.
		pick = n - 1
	}
	c.choices = append(c.choices, pick)
	c.widths = append(c.widths, n)
	return pick
}

// ExploreResult aggregates an enumeration.
type ExploreResult struct {
	// Schedules is the number of interleavings executed.
	Schedules int
	// Exhausted is true when every interleaving was visited (the
	// enumeration finished before hitting MaxSchedules).
	Exhausted bool
	// Warned counts schedules on which the detector reported at least
	// one warning; Errors counts runtime failures (assertions,
	// deadlocks, ...).
	Warned int
	Errors int
	// Outputs tallies distinct program outputs, each with its schedule
	// count and how many of those schedules the detector warned on.
	Outputs map[string]*OutputTally
}

// OutputTally is the per-distinct-output aggregate.
type OutputTally struct {
	Count  int
	Warned int
}

// Explore enumerates schedules depth-first, running each under a fresh
// tool from mkTool (may be nil), until the tree is exhausted or
// maxSchedules have run.
func Explore(p *Program, mkTool func() rr.Tool, maxSchedules, maxSteps int) ExploreResult {
	res := ExploreResult{Outputs: map[string]*OutputTally{}}
	if maxSchedules <= 0 {
		maxSchedules = 10000
	}
	prefix := []int{}
	for {
		if res.Schedules >= maxSchedules {
			return res
		}
		ch := &enumChooser{prefix: prefix}
		var tool rr.Tool
		if mkTool != nil {
			tool = mkTool()
		}
		run := Run(p, Options{Tool: tool, MaxSteps: maxSteps, chooser: ch})
		res.Schedules++
		key := outputString(run)
		tally := res.Outputs[key]
		if tally == nil {
			tally = &OutputTally{}
			res.Outputs[key] = tally
		}
		tally.Count++
		if len(run.Races) > 0 {
			res.Warned++
			tally.Warned++
		}
		if run.Err != nil {
			res.Errors++
		}

		// Advance to the next schedule: find the deepest decision with an
		// untried sibling.
		next := nextPrefix(ch.choices, ch.widths)
		if next == nil {
			res.Exhausted = true
			return res
		}
		prefix = next
	}
}

// nextPrefix returns the lexicographically next choice prefix, or nil
// when the tree is exhausted.
func nextPrefix(choices, widths []int) []int {
	for i := len(choices) - 1; i >= 0; i-- {
		if choices[i]+1 < widths[i] {
			next := make([]int, i+1)
			copy(next, choices[:i])
			next[i] = choices[i] + 1
			return next
		}
	}
	return nil
}

// outputString canonicalizes a run's outcome for tallying.
func outputString(r *Result) string {
	if r.Err != nil {
		msg := r.Err.Error()
		// RuntimeError renders as "mini: runtime error ... (thread X): <msg>";
		// keep just <msg>.
		if i := strings.Index(msg, "): "); i >= 0 {
			msg = msg[i+3:]
		}
		return "error: " + msg
	}
	parts := make([]string, len(r.Output))
	for i, v := range r.Output {
		parts[i] = fmt.Sprint(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
