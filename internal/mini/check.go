package mini

import "fmt"

// check performs the static sanity pass after parsing: names must be
// declared, categories must not collide, and locals must be in scope
// where referenced. It keeps the runtime free of name-resolution errors.
func check(p *Program) error {
	cat := map[string]string{}
	declare := func(name, kind string) error {
		if prev, ok := cat[name]; ok {
			return fmt.Errorf("mini: %s %q redeclares a %s", kind, name, prev)
		}
		cat[name] = kind
		return nil
	}
	for _, v := range p.Vars {
		if err := declare(v, "var"); err != nil {
			return err
		}
	}
	for _, l := range p.Locks {
		if err := declare(l, "lock"); err != nil {
			return err
		}
	}
	for _, v := range p.Volatiles {
		if err := declare(v, "volatile"); err != nil {
			return err
		}
	}
	for _, t := range p.ThreadOrder {
		if err := declare(t, "thread"); err != nil {
			return err
		}
	}
	if p.Main == nil {
		return fmt.Errorf("mini: missing main block")
	}

	bodies := make([]*Block, 0, len(p.ThreadOrder)+1)
	bodies = append(bodies, p.Main)
	for _, name := range p.ThreadOrder {
		bodies = append(bodies, p.Threads[name])
	}
	for _, b := range bodies {
		c := &checker{cat: cat}
		if err := c.block(b, map[string]bool{}); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	cat map[string]string
}

func (c *checker) block(b *Block, locals map[string]bool) error {
	// Locals are lexically scoped to the enclosing block and below.
	scope := make(map[string]bool, len(locals))
	for k := range locals {
		scope[k] = true
	}
	for _, s := range b.Stmts {
		if err := c.stmt(s, scope); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt, locals map[string]bool) error {
	fail := func(line int, msg string, args ...any) error {
		return &SyntaxError{Line: line, Col: 1, Msg: fmt.Sprintf(msg, args...)}
	}
	switch s := s.(type) {
	case *Assign:
		if err := c.expr(s.Expr, locals, s.Line); err != nil {
			return err
		}
		if locals[s.Name] {
			return nil
		}
		switch c.cat[s.Name] {
		case "var", "volatile":
			return nil
		case "":
			return fail(s.Line, "assignment to undeclared name %q", s.Name)
		default:
			return fail(s.Line, "cannot assign to %s %q", c.cat[s.Name], s.Name)
		}
	case *LocalDecl:
		if err := c.expr(s.Expr, locals, s.Line); err != nil {
			return err
		}
		if locals[s.Name] {
			return fail(s.Line, "local %q redeclared", s.Name)
		}
		if c.cat[s.Name] != "" {
			return fail(s.Line, "local %q shadows a %s", s.Name, c.cat[s.Name])
		}
		locals[s.Name] = true
		return nil
	case *Acquire:
		if c.cat[s.Lock] != "lock" {
			return fail(s.Line, "acquire of non-lock %q", s.Lock)
		}
	case *Release:
		if c.cat[s.Lock] != "lock" {
			return fail(s.Line, "release of non-lock %q", s.Lock)
		}
	case *Wait:
		if c.cat[s.Lock] != "lock" {
			return fail(s.Line, "wait on non-lock %q", s.Lock)
		}
	case *Notify:
		if c.cat[s.Lock] != "lock" {
			return fail(s.Line, "notify on non-lock %q", s.Lock)
		}
	case *Fork:
		if c.cat[s.Thread] != "thread" {
			return fail(s.Line, "fork of non-thread %q", s.Thread)
		}
	case *Join:
		if c.cat[s.Thread] != "thread" {
			return fail(s.Line, "join of non-thread %q", s.Thread)
		}
	case *If:
		if err := c.expr(s.Cond, locals, s.Line); err != nil {
			return err
		}
		if err := c.block(s.Then, locals); err != nil {
			return err
		}
		if s.Else != nil {
			return c.block(s.Else, locals)
		}
	case *While:
		if err := c.expr(s.Cond, locals, s.Line); err != nil {
			return err
		}
		return c.block(s.Body, locals)
	case *Print:
		return c.expr(s.Expr, locals, s.Line)
	case *Assert:
		return c.expr(s.Expr, locals, s.Line)
	case *Atomic:
		return c.block(s.Body, locals)
	case *Skip, *Barrier, *Yield:
		return nil
	}
	return nil
}

func (c *checker) expr(e Expr, locals map[string]bool, line int) error {
	switch e := e.(type) {
	case *Num:
		return nil
	case *Ref:
		if locals[e.Name] {
			return nil
		}
		switch c.cat[e.Name] {
		case "var", "volatile":
			return nil
		case "":
			return &SyntaxError{Line: e.Line, Col: 1, Msg: fmt.Sprintf("undeclared name %q", e.Name)}
		default:
			return &SyntaxError{Line: e.Line, Col: 1, Msg: fmt.Sprintf("cannot read %s %q as a value", c.cat[e.Name], e.Name)}
		}
	case *Unary:
		return c.expr(e.X, locals, line)
	case *Binary:
		if err := c.expr(e.L, locals, e.Line); err != nil {
			return err
		}
		return c.expr(e.R, locals, e.Line)
	}
	return nil
}
