package mini

import (
	"fmt"
	"strings"
)

// Format renders a program back to canonical source text. The output
// parses to a structurally identical program (parse·print·parse is the
// identity on ASTs — the round-trip property the tests enforce), so
// Format is usable for program storage, diffing, and minimization
// tooling.
func Format(p *Program) string {
	var b strings.Builder
	if len(p.Vars) > 0 {
		fmt.Fprintf(&b, "var %s;\n", strings.Join(p.Vars, ", "))
	}
	if len(p.Locks) > 0 {
		fmt.Fprintf(&b, "lock %s;\n", strings.Join(p.Locks, ", "))
	}
	if len(p.Volatiles) > 0 {
		fmt.Fprintf(&b, "volatile %s;\n", strings.Join(p.Volatiles, ", "))
	}
	for _, name := range p.ThreadOrder {
		fmt.Fprintf(&b, "\nthread %s ", name)
		writeBlock(&b, p.Threads[name], 0)
		b.WriteByte('\n')
	}
	b.WriteString("\nmain ")
	writeBlock(&b, p.Main, 0)
	b.WriteByte('\n')
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func writeBlock(b *strings.Builder, blk *Block, depth int) {
	if blk == nil || len(blk.Stmts) == 0 {
		b.WriteString("{}")
		return
	}
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		indent(b, depth+1)
		writeStmt(b, s, depth+1)
		b.WriteByte('\n')
	}
	indent(b, depth)
	b.WriteByte('}')
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *Assign:
		fmt.Fprintf(b, "%s = %s;", s.Name, FormatExpr(s.Expr))
	case *LocalDecl:
		fmt.Fprintf(b, "local %s = %s;", s.Name, FormatExpr(s.Expr))
	case *Acquire:
		fmt.Fprintf(b, "acquire %s;", s.Lock)
	case *Release:
		fmt.Fprintf(b, "release %s;", s.Lock)
	case *Wait:
		fmt.Fprintf(b, "wait %s;", s.Lock)
	case *Notify:
		fmt.Fprintf(b, "notify %s;", s.Lock)
	case *Fork:
		fmt.Fprintf(b, "fork %s;", s.Thread)
	case *Join:
		fmt.Fprintf(b, "join %s;", s.Thread)
	case *If:
		fmt.Fprintf(b, "if %s ", FormatExpr(s.Cond))
		writeBlock(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			writeBlock(b, s.Else, depth)
		}
	case *While:
		fmt.Fprintf(b, "while %s ", FormatExpr(s.Cond))
		writeBlock(b, s.Body, depth)
	case *Atomic:
		b.WriteString("atomic ")
		writeBlock(b, s.Body, depth)
	case *Print:
		fmt.Fprintf(b, "print %s;", FormatExpr(s.Expr))
	case *Assert:
		fmt.Fprintf(b, "assert %s;", FormatExpr(s.Expr))
	case *Skip:
		b.WriteString("skip;")
	case *Barrier:
		b.WriteString("barrier;")
	case *Yield:
		b.WriteString("yield;")
	default:
		fmt.Fprintf(b, "/* unhandled %T */", s)
	}
}

// FormatExpr renders an expression with explicit parentheses around
// every binary operation, so re-parsing cannot reassociate anything.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *Num:
		return fmt.Sprint(e.Value)
	case *Ref:
		return e.Name
	case *Unary:
		return e.Op + parenthesize(e.X)
	case *Binary:
		return parenthesize(e.L) + " " + e.Op + " " + parenthesize(e.R)
	default:
		return fmt.Sprintf("/* unhandled %T */", e)
	}
}

// parenthesize wraps compound operands in parentheses.
func parenthesize(e Expr) string {
	switch e.(type) {
	case *Num, *Ref:
		return FormatExpr(e)
	default:
		return "(" + FormatExpr(e) + ")"
	}
}
