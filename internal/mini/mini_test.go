package mini

import (
	"reflect"
	"strings"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/rr"
)

func parse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func runSeed(t *testing.T, src string, seed int64) *Result {
	t.Helper()
	p := parse(t, src)
	return Run(p, Options{Seed: seed, Tool: core.New(4, 8)})
}

func TestLexer(t *testing.T) {
	toks, err := lex("while x <= 10 { x = x + 1; } // comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := []string{"while", "x", "<=", "10", "{", "x", "=", "x", "+", "1", ";", "}"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexerRejectsBadChar(t *testing.T) {
	if _, err := lex("x = $;"); err == nil {
		t.Error("expected lex error")
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("x\n  y")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("x at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("y at %d:%d", toks[1].line, toks[1].col)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main { x = 1; }", "undeclared"},
		{"var x; main { y = x; }", "undeclared"},
		{"lock m; main { m = 1; }", "cannot assign"},
		{"var x; main { acquire x; }", "non-lock"},
		{"var x; main { fork x; }", "non-thread"},
		{"var x; thread t {} main { join x; }", "non-thread"},
		{"var x; var x; main {}", "redeclares"},
		{"var x; main { local x = 1; }", "shadows"},
		{"var x; main { local a = 1; local a = 2; }", "redeclared"},
		{"var x;", "missing main"},
		{"main { x = ; }", "expected expression"},
		{"main { if 1 { ", "unterminated"},
		{"thread t {} main {} thread u {}", "main must be the last"},
		{"var x; main { x = 1 }", `expected ";"`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestSequentialSemantics(t *testing.T) {
	res := runSeed(t, `
		var x, y;
		main {
			x = 6;
			y = 7;
			local p = x * y;
			print p;
			print (x + y) * 2 - 1;
			print x == 6 && y == 7;
			print x < y || 0;
			print !(x != 6);
			print -x + 10;
			print 17 % 5;
			print 17 / 5;
		}`, 1)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	want := []int64{42, 25, 1, 1, 1, 4, 2, 3}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestControlFlow(t *testing.T) {
	res := runSeed(t, `
		var sum;
		main {
			local i = 0;
			while i < 5 {
				if i % 2 == 0 { sum = sum + i; } else { skip; }
				i = i + 1;
			}
			print sum;
		}`, 1)
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if !reflect.DeepEqual(res.Output, []int64{6}) { // 0+2+4
		t.Errorf("output = %v", res.Output)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"var x; main { x = 1 / 0; }", "division by zero"},
		{"var x; main { x = 1 % 0; }", "modulo by zero"},
		{"main { assert 0; }", "assertion failed"},
		{"lock m; main { acquire m; acquire m; }", "already held"},
		{"lock m; main { release m; }", "not held"},
		{"thread t { skip; } main { fork t; fork t; }", "forked twice"},
		{"thread t { skip; } main { join t; }", "before fork"},
		{"main { while 1 { skip; } }", "step limit"},
	}
	for _, c := range cases {
		p := parse(t, c.src)
		res := Run(p, Options{Seed: 1, MaxSteps: 10000})
		if res.Err == nil {
			t.Errorf("Run(%q): no error, want %q", c.src, c.want)
			continue
		}
		if !strings.Contains(res.Err.Error(), c.want) {
			t.Errorf("Run(%q) error %q does not contain %q", c.src, res.Err, c.want)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	src := `
		lock a, b;
		thread t1 { acquire a; yield; acquire b; release b; release a; }
		thread t2 { acquire b; yield; acquire a; release a; release b; }
		main { fork t1; fork t2; join t1; join t2; }`
	p := parse(t, src)
	deadlocks := 0
	for seed := int64(0); seed < 40; seed++ {
		res := Run(p, Options{Seed: seed})
		if res.Err != nil {
			if !strings.Contains(res.Err.Error(), "deadlock") {
				t.Fatalf("seed %d: %v", seed, res.Err)
			}
			deadlocks++
		}
	}
	if deadlocks == 0 {
		t.Error("classic lock-order inversion never deadlocked in 40 schedules")
	}
}

const racyCounter = `
	var x;
	lock m;
	thread inc1 { local t = x; yield; x = t + 1; }
	thread inc2 { local t = x; yield; x = t + 1; }
	main {
		fork inc1; fork inc2;
		join inc1; join inc2;
		print x;
	}`

const lockedCounter = `
	var x;
	lock m;
	thread inc1 { acquire m; local t = x; x = t + 1; release m; }
	thread inc2 { acquire m; local t = x; x = t + 1; release m; }
	main {
		fork inc1; fork inc2;
		join inc1; join inc2;
		print x;
	}`

func TestRacyCounterDetectedOnEverySchedule(t *testing.T) {
	p := parse(t, racyCounter)
	lostUpdate := 0
	for seed := int64(0); seed < 50; seed++ {
		res := Run(p, Options{Seed: seed, Tool: core.New(4, 4)})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.Races) == 0 {
			t.Fatalf("seed %d: FastTrack missed the race", seed)
		}
		if res.Output[0] != 2 {
			lostUpdate++
		}
	}
	// The point of the experiment: the lost update manifests only on some
	// schedules, but the detector flags every one.
	if lostUpdate == 0 {
		t.Log("note: no schedule exhibited the lost update (detector still flagged all)")
	}
}

func TestLockedCounterAlwaysCleanAndCorrect(t *testing.T) {
	p := parse(t, lockedCounter)
	for seed := int64(0); seed < 50; seed++ {
		res := Run(p, Options{Seed: seed, Tool: core.New(4, 4)})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.Races) != 0 {
			t.Fatalf("seed %d: false alarm: %v", seed, res.Races)
		}
		if res.Output[0] != 2 {
			t.Fatalf("seed %d: output %v, want [2]", seed, res.Output)
		}
	}
}

func TestVolatilePublication(t *testing.T) {
	src := `
		var data;
		volatile ready;
		thread producer { data = 42; ready = 1; }
		thread consumer {
			while ready == 0 { yield; }
			print data;
		}
		main { fork producer; fork consumer; join producer; join consumer; }`
	p := parse(t, src)
	for seed := int64(0); seed < 30; seed++ {
		res := Run(p, Options{Seed: seed, Tool: core.New(4, 4)})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.Races) != 0 {
			t.Fatalf("seed %d: false alarm on volatile publication: %v", seed, res.Races)
		}
		if res.Output[0] != 42 {
			t.Fatalf("seed %d: output %v", seed, res.Output)
		}
	}
}

func TestBarrierPhases(t *testing.T) {
	src := `
		var a, b;
		thread t1 { a = 1; barrier; print b; }
		main {
			fork t1;
			b = 2;
			barrier;
			print a;
			join t1;
		}`
	p := parse(t, src)
	for seed := int64(0); seed < 30; seed++ {
		res := Run(p, Options{Seed: seed, Tool: core.New(4, 4)})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.Races) != 0 {
			t.Fatalf("seed %d: false alarm across barrier: %v", seed, res.Races)
		}
	}
}

func TestWaitNotifyHandoff(t *testing.T) {
	// Producer/consumer over a condition: the consumer's wake-up
	// re-acquisition orders its read after the producer's critical
	// section, so the handoff is race-free on every schedule.
	src := `
		var data, ready;
		lock m;
		thread consumer {
			acquire m;
			while ready == 0 { wait m; }
			local v = data;
			release m;
			print v;
		}
		main {
			fork consumer;
			acquire m;
			data = 42;
			ready = 1;
			notify m;
			release m;
			join consumer;
		}`
	p := parse(t, src)
	for seed := int64(0); seed < 40; seed++ {
		res := Run(p, Options{Seed: seed, Tool: core.New(4, 4)})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.Races) != 0 {
			t.Fatalf("seed %d: false alarm: %v", seed, res.Races)
		}
		if len(res.Output) != 1 || res.Output[0] != 42 {
			t.Fatalf("seed %d: output %v", seed, res.Output)
		}
	}
}

func TestWaitErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"lock m; main { wait m; }", "not held"},
		{"lock m; main { notify m; }", "not held"},
		{"lock m; thread t { acquire m; wait m; release m; } main { fork t; join t; }", "lost wakeup"},
	}
	for _, c := range cases {
		p := parse(t, c.src)
		res := Run(p, Options{Seed: 1, MaxSteps: 10000})
		if res.Err == nil || !strings.Contains(res.Err.Error(), c.want) {
			t.Errorf("Run(%q) error = %v, want %q", c.src, res.Err, c.want)
		}
	}
}

func TestWaitNotifyTraceFeasible(t *testing.T) {
	src := `
		var x;
		lock m;
		thread w { acquire m; wait m; x = 1; release m; }
		main { fork w; yield; acquire m; notify m; release m; join w; print x; }`
	p := parse(t, src)
	for seed := int64(0); seed < 30; seed++ {
		res := Run(p, Options{Seed: seed, RecordTrace: true, MaxSteps: 10000})
		if res.Err != nil {
			// Some schedules lose the wakeup (notify before wait): that
			// is the program's bug, not the runtime's.
			if !strings.Contains(res.Err.Error(), "lost wakeup") {
				t.Fatalf("seed %d: %v", seed, res.Err)
			}
			continue
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("seed %d: infeasible trace: %v\n%s", seed, err, res.Trace)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	p := parse(t, racyCounter)
	a := Run(p, Options{Seed: 7, RecordTrace: true})
	b := Run(p, Options{Seed: 7, RecordTrace: true})
	if !reflect.DeepEqual(a.Output, b.Output) || !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Error("same seed must give identical executions")
	}
	c := Run(p, Options{Seed: 8, RecordTrace: true})
	if reflect.DeepEqual(a.Trace, c.Trace) {
		t.Log("note: seeds 7 and 8 gave the same schedule (possible but unusual)")
	}
}

func TestRecordedTraceIsFeasible(t *testing.T) {
	for _, src := range []string{racyCounter, lockedCounter} {
		p := parse(t, src)
		for seed := int64(0); seed < 20; seed++ {
			res := Run(p, Options{Seed: seed, RecordTrace: true})
			if res.Err != nil {
				t.Fatalf("seed %d: %v", seed, res.Err)
			}
			if err := res.Trace.Validate(); err != nil {
				t.Fatalf("seed %d: recorded trace infeasible: %v\n%s", seed, err, res.Trace)
			}
		}
	}
}

func TestRunWithoutTool(t *testing.T) {
	p := parse(t, lockedCounter)
	res := Run(p, Options{Seed: 1})
	if res.Err != nil || res.Races != nil {
		t.Errorf("res = %+v", res)
	}
}

func TestToolSeesAllEventKinds(t *testing.T) {
	src := `
		var x;
		volatile v;
		lock m;
		thread t { acquire m; x = x + 1; release m; v = 1; barrier; }
		main { fork t; barrier; print v; join t; }`
	p := parse(t, src)
	rec := rr.NewRecorder()
	res := Run(p, Options{Seed: 3, Tool: rec})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	kinds := map[string]bool{}
	for _, e := range rec.Trace() {
		kinds[e.Kind.String()] = true
	}
	for _, want := range []string{"rd", "wr", "acq", "rel", "fork", "join", "vwr", "vrd", "barrier"} {
		if !kinds[want] {
			t.Errorf("event kind %s never emitted (got %v)", want, kinds)
		}
	}
}
