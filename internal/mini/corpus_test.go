package mini

import (
	"os"
	"path/filepath"
	"testing"

	"fasttrack/internal/rr"
)

// corpusCase pins down each testdata program's expected behaviour across
// the entire (bounded) schedule tree.
type corpusCase struct {
	file string
	// racy: "all" (every schedule must warn), "none", or "some" — "some"
	// covers programs like double-checked locking whose race exists only
	// on the schedules that take the unsynchronized fast path; dynamic
	// detection is precise per observed trace.
	racy string
	// wantOutputs: the exact set of distinct non-error outputs.
	wantOutputs []string
	// allowErrors: some schedules may fail at runtime (e.g. lost
	// wakeups in wait/notify programs under adversarial schedules).
	allowErrors bool
	maxSched    int
}

func TestCorpusGoldens(t *testing.T) {
	cases := []corpusCase{
		// Peterson's schedule tree is astronomically large (spin loops);
		// a bounded prefix still proves "no false alarm" on thousands of
		// distinct schedules.
		{file: "peterson.mini", racy: "none", wantOutputs: []string{"[2]"}, maxSched: 2000},
		{file: "readers_writer.mini", racy: "none", wantOutputs: []string{"[7]"}, maxSched: 60000},
		{file: "double_checked.mini", racy: "some", wantOutputs: []string{"[42]"}, maxSched: 60000},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			p, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			res := Explore(p, ftMaker, c.maxSched, 100000)
			if res.Errors > 0 && !c.allowErrors {
				t.Fatalf("%d runtime errors in %d schedules: %v", res.Errors, res.Schedules, keys(res.Outputs))
			}
			switch c.racy {
			case "all":
				if res.Warned != res.Schedules {
					t.Errorf("warned on %d of %d schedules; racy program must warn on all", res.Warned, res.Schedules)
				}
			case "none":
				if res.Warned != 0 {
					t.Errorf("false alarms on %d of %d schedules", res.Warned, res.Schedules)
				}
			case "some":
				if res.Warned == 0 || res.Warned == res.Schedules {
					t.Errorf("warned on %d of %d schedules; want a strict subset (the fast-path schedules)",
						res.Warned, res.Schedules)
				}
			}
			for _, want := range c.wantOutputs {
				if res.Outputs[want] == nil {
					t.Errorf("output %s never produced; got %v", want, keys(res.Outputs))
				}
			}
			for got := range res.Outputs {
				found := false
				for _, want := range c.wantOutputs {
					if got == want {
						found = true
					}
				}
				if !found && !c.allowErrors {
					t.Errorf("unexpected output %s", got)
				}
			}
			t.Logf("%s: %d schedules (exhausted=%v), warned %d", c.file, res.Schedules, res.Exhausted, res.Warned)
		})
	}
}

// TestPingPongSampled: the wait/notify token passer is race-free and
// always converges on sampled schedules (lost wakeups are impossible
// here: each wait is guarded by a condition re-check under the lock).
func TestPingPongSampled(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "ping_pong.mini"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 60; seed++ {
		res := Run(p, Options{Seed: seed, Tool: ftMaker().(rr.Tool), MaxSteps: 100000})
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if len(res.Races) != 0 {
			t.Fatalf("seed %d: false alarm: %v", seed, res.Races)
		}
		if len(res.Output) != 1 || res.Output[0] != 0 {
			t.Fatalf("seed %d: output %v", seed, res.Output)
		}
	}
}

// TestCorpusFilesAllParseAndFormat: every shipped program (testdata and
// examples) parses and round-trips through the formatter.
func TestCorpusFilesAllParseAndFormat(t *testing.T) {
	dirs := []string{"testdata", filepath.Join("..", "..", "examples", "minilang")}
	total := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".mini" {
				continue
			}
			total++
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			p, err := Parse(string(src))
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			if _, err := Parse(Format(p)); err != nil {
				t.Fatalf("%s: formatted output unparseable: %v", e.Name(), err)
			}
		}
	}
	if total < 9 {
		t.Errorf("only %d .mini programs found; corpus shrank?", total)
	}
}
