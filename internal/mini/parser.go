package mini

import "strconv"

// Parse parses a mini program from source text.
//
// Grammar (EBNF; see the package comment and testdata for examples):
//
//	program  = { decl } { "thread" ident block } "main" block .
//	decl     = ("var"|"lock"|"volatile") ident { "," ident } ";" .
//	block    = "{" { stmt } "}" .
//	stmt     = ident "=" expr ";"
//	         | "local" ident "=" expr ";"
//	         | ("acquire"|"release"|"fork"|"join"|"wait"|"notify") ident ";"
//	         | "if" expr block [ "else" block ]
//	         | "while" expr block
//	         | ("print"|"assert") expr ";"
//	         | "atomic" block
//	         | ("skip"|"barrier"|"yield") ";" .
//	expr     = or .
//	or       = and { "||" and } .
//	and      = cmp { "&&" cmp } .
//	cmp      = add [ ("=="|"!="|"<"|"<="|">"|">=") add ] .
//	add      = mul { ("+"|"-") mul } .
//	mul      = unary { ("*"|"/"|"%") unary } .
//	unary    = [ "!"|"-" ] primary .
//	primary  = number | ident | "(" expr ")" .
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) fail(t token, msg string) error {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: msg}
}

// accept consumes the token if it matches kind+text.
func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || t.text != text {
		return t, p.fail(t, "expected "+strconv.Quote(text)+", found "+t.String())
	}
	return p.next(), nil
}

func (p *parser) ident() (token, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return t, p.fail(t, "expected identifier, found "+t.String())
	}
	return p.next(), nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{Threads: map[string]*Block{}}
	for {
		t := p.peek()
		if t.kind != tokKeyword {
			break
		}
		switch t.text {
		case "var", "lock", "volatile":
			p.next()
			for {
				id, err := p.ident()
				if err != nil {
					return nil, err
				}
				switch t.text {
				case "var":
					prog.Vars = append(prog.Vars, id.text)
				case "lock":
					prog.Locks = append(prog.Locks, id.text)
				default:
					prog.Volatiles = append(prog.Volatiles, id.text)
				}
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ";"); err != nil {
				return nil, err
			}
		case "thread":
			p.next()
			id, err := p.ident()
			if err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Threads[id.text]; dup {
				return nil, p.fail(id, "duplicate thread "+id.text)
			}
			prog.Threads[id.text] = body
			prog.ThreadOrder = append(prog.ThreadOrder, id.text)
		case "main":
			p.next()
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			prog.Main = body
			if t := p.peek(); t.kind != tokEOF {
				return nil, p.fail(t, "main must be the last declaration")
			}
			return prog, nil
		default:
			return nil, p.fail(t, "unexpected "+t.String()+" at top level")
		}
	}
	return nil, p.fail(p.peek(), "missing main block")
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(tokSymbol, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokSymbol, "}") {
		if p.peek().kind == tokEOF {
			return nil, p.fail(p.peek(), "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword:
		p.next()
		switch t.text {
		case "local":
			id, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, "="); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ";"); err != nil {
				return nil, err
			}
			return &LocalDecl{Name: id.text, Expr: e, Line: t.line}, nil
		case "acquire", "release", "fork", "join", "wait", "notify":
			id, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ";"); err != nil {
				return nil, err
			}
			switch t.text {
			case "acquire":
				return &Acquire{Lock: id.text, Line: t.line}, nil
			case "release":
				return &Release{Lock: id.text, Line: t.line}, nil
			case "fork":
				return &Fork{Thread: id.text, Line: t.line}, nil
			case "join":
				return &Join{Thread: id.text, Line: t.line}, nil
			case "wait":
				return &Wait{Lock: id.text, Line: t.line}, nil
			default:
				return &Notify{Lock: id.text, Line: t.line}, nil
			}
		case "if":
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			then, err := p.block()
			if err != nil {
				return nil, err
			}
			var els *Block
			if p.accept(tokKeyword, "else") {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
			return &If{Cond: cond, Then: then, Else: els, Line: t.line}, nil
		case "while":
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			return &While{Cond: cond, Body: body, Line: t.line}, nil
		case "print", "assert":
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ";"); err != nil {
				return nil, err
			}
			if t.text == "print" {
				return &Print{Expr: e, Line: t.line}, nil
			}
			return &Assert{Expr: e, Line: t.line}, nil
		case "atomic":
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			return &Atomic{Body: body, Line: t.line}, nil
		case "skip", "barrier", "yield":
			if _, err := p.expect(tokSymbol, ";"); err != nil {
				return nil, err
			}
			switch t.text {
			case "skip":
				return &Skip{Line: t.line}, nil
			case "barrier":
				return &Barrier{Line: t.line}, nil
			default:
				return &Yield{Line: t.line}, nil
			}
		default:
			return nil, p.fail(t, "unexpected keyword "+t.text+" in statement")
		}
	case t.kind == tokIdent:
		p.next()
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ";"); err != nil {
			return nil, err
		}
		return &Assign{Name: t.text, Expr: e, Line: t.line}, nil
	default:
		return nil, p.fail(t, "expected statement, found "+t.String())
	}
}

func (p *parser) expr() (Expr, error) { return p.binary(0) }

// binary levels, loosest first.
var levels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!=", "<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) (Expr, error) {
	if level == len(levels) {
		return p.unary()
	}
	l, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		matched := false
		if t.kind == tokSymbol {
			for _, op := range levels[level] {
				if t.text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return l, nil
		}
		p.next()
		r, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.text, L: l, R: r, Line: t.line}
		// Comparisons do not associate: a < b < c is a parse error.
		if level == 2 {
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	if t.kind == tokSymbol && (t.text == "!" || t.text == "-") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.fail(t, "bad number "+t.text)
		}
		return &Num{Value: v}, nil
	case t.kind == tokIdent:
		return &Ref{Name: t.text, Line: t.line}, nil
	case t.kind == tokSymbol && t.text == "(":
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.fail(t, "expected expression, found "+t.String())
	}
}
