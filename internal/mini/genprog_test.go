package mini

import (
	"math/rand"
	"testing"

	"fasttrack/internal/conformance"
	"fasttrack/internal/core"
	"fasttrack/internal/detectors/basicvc"
	"fasttrack/internal/detectors/djit"
	"fasttrack/internal/hb"
	"fasttrack/internal/rr"
)

// TestGeneratedProgramsTerminateAndRecordFeasibleTraces: the program
// generator's output must always parse, run to completion on any seed,
// and record a feasible trace.
func TestGeneratedProgramsTerminateAndRecordFeasibleTraces(t *testing.T) {
	cfg := DefaultGenConfig()
	for progSeed := int64(0); progSeed < 25; progSeed++ {
		p := GenerateProgram(rand.New(rand.NewSource(progSeed)), cfg)
		for schedSeed := int64(0); schedSeed < 4; schedSeed++ {
			res := Run(p, Options{Seed: schedSeed, MaxSteps: 200000, RecordTrace: true})
			if res.Err != nil {
				t.Fatalf("prog %d sched %d: %v\n%s", progSeed, schedSeed, res.Err, Format(p))
			}
			if err := res.Trace.Validate(); err != nil {
				t.Fatalf("prog %d sched %d: infeasible trace: %v", progSeed, schedSeed, err)
			}
		}
	}
}

// TestGeneratedProgramsDifferentialPrecision is the end-to-end loop:
// random program -> real execution -> recorded trace -> every precise
// detector must agree with the happens-before oracle about which
// variables raced in that execution.
func TestGeneratedProgramsDifferentialPrecision(t *testing.T) {
	cfg := DefaultGenConfig()
	for progSeed := int64(100); progSeed < 130; progSeed++ {
		p := GenerateProgram(rand.New(rand.NewSource(progSeed)), cfg)
		res := Run(p, Options{Seed: progSeed, MaxSteps: 200000, RecordTrace: true})
		if res.Err != nil {
			t.Fatalf("prog %d: %v", progSeed, res.Err)
		}
		oracle := hb.New(res.Trace).RacyVars()
		for _, mk := range []func() rr.Tool{
			func() rr.Tool { return core.New(4, 8) },
			func() rr.Tool { return djit.New(4, 8) },
			func() rr.Tool { return basicvc.New(4, 8) },
		} {
			tool := mk()
			got := conformance.RacyVars(tool, res.Trace)
			if !conformance.SameVars(got, oracle) {
				t.Fatalf("prog %d: %s = %v, oracle = %v\nprogram:\n%s\ntrace:\n%s",
					progSeed, tool.Name(), got, oracle, Format(p), res.Trace)
			}
		}
	}
}

// TestGeneratedProgramsOnlineMatchesOffline: running the detector online
// (during execution) and offline (on the recorded trace) must yield the
// same warnings.
func TestGeneratedProgramsOnlineMatchesOffline(t *testing.T) {
	cfg := DefaultGenConfig()
	for progSeed := int64(200); progSeed < 220; progSeed++ {
		p := GenerateProgram(rand.New(rand.NewSource(progSeed)), cfg)
		online := core.New(4, 8)
		res := Run(p, Options{Seed: 1, MaxSteps: 200000, Tool: online, RecordTrace: true})
		if res.Err != nil {
			t.Fatalf("prog %d: %v", progSeed, res.Err)
		}
		offline := core.New(4, 8)
		got := conformance.RacyVars(offline, res.Trace)
		want := map[uint64]bool{}
		for _, r := range online.Races() {
			want[r.Var] = true
		}
		if !conformance.SameVars(got, want) {
			t.Fatalf("prog %d: offline %v != online %v", progSeed, got, want)
		}
	}
}

// TestGeneratedProgramsDeterministic: the generator is a pure function
// of its seed.
func TestGeneratedProgramsDeterministic(t *testing.T) {
	a := GenerateProgram(rand.New(rand.NewSource(9)), DefaultGenConfig())
	b := GenerateProgram(rand.New(rand.NewSource(9)), DefaultGenConfig())
	if Format(a) != Format(b) {
		t.Error("generator not deterministic")
	}
}
