package mini

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig tunes the random program generator used for differential
// testing of the interpreter and the detectors.
type GenConfig struct {
	Threads        int // worker threads (besides main)
	Vars           int
	Locks          int
	Volatiles      int
	StmtsPerThread int
	// PLocked is the probability that a generated access runs inside a
	// critical section of a (variable-matched) lock; PAtomic wraps some
	// statement runs in atomic blocks; PBarrier inserts barriers in
	// thread bodies (risky for deadlock with joins, so only used in
	// main-less positions).
	PLocked float64
	PAtomic float64
}

// DefaultGenConfig returns a generator configuration producing small,
// always-terminating programs.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Threads:        3,
		Vars:           4,
		Locks:          2,
		Volatiles:      1,
		StmtsPerThread: 6,
		PLocked:        0.5,
		PAtomic:        0.2,
	}
}

// GenerateProgram builds a random, statically valid, always-terminating
// mini program: main forks every thread, the threads perform randomized
// reads/writes — some under variable-matched locks (race-free), some not
// (potentially racy) — and main joins them all. Every generated program
// parses, checks, and terminates on every schedule (no unbounded loops,
// no blocking primitives other than locks and joins).
func GenerateProgram(rng *rand.Rand, cfg GenConfig) *Program {
	var b strings.Builder
	vars := make([]string, cfg.Vars)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	fmt.Fprintf(&b, "var %s;\n", strings.Join(vars, ", "))
	if cfg.Locks > 0 {
		locks := make([]string, cfg.Locks)
		for i := range locks {
			locks[i] = fmt.Sprintf("m%d", i)
		}
		fmt.Fprintf(&b, "lock %s;\n", strings.Join(locks, ", "))
	}
	if cfg.Volatiles > 0 {
		vols := make([]string, cfg.Volatiles)
		for i := range vols {
			vols[i] = fmt.Sprintf("f%d", i)
		}
		fmt.Fprintf(&b, "volatile %s;\n", strings.Join(vols, ", "))
	}

	genExpr := func(v string) string {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%s + 1", v)
		case 1:
			return fmt.Sprintf("%s + v%d", v, rng.Intn(cfg.Vars))
		case 2:
			return fmt.Sprint(rng.Intn(10))
		default:
			return fmt.Sprintf("(%s * 2) %% 7", v)
		}
	}

	genBody := func() string {
		var body strings.Builder
		for s := 0; s < cfg.StmtsPerThread; s++ {
			v := fmt.Sprintf("v%d", rng.Intn(cfg.Vars))
			stmt := ""
			switch rng.Intn(5) {
			case 0: // read into local
				stmt = fmt.Sprintf("local lt%d = %s; yield;", s, v)
			case 1, 2: // write
				stmt = fmt.Sprintf("%s = %s;", v, genExpr(v))
			case 3: // conditional on a shared read
				stmt = fmt.Sprintf("if %s > 3 { %s = 0; } else { skip; }", v, v)
			default: // bounded loop
				stmt = fmt.Sprintf("local i%d = 0; while i%d < 2 { %s = %s + 1; i%d = i%d + 1; }",
					s, s, v, v, s, s)
			}
			if cfg.Locks > 0 && rng.Float64() < cfg.PLocked {
				// Variable-matched lock: accesses to v under its lock are
				// mutually ordered.
				lock := fmt.Sprintf("m%d", varLock(v, cfg.Locks))
				stmt = fmt.Sprintf("acquire %s; %s release %s;", lock, stmt+" ", lock)
			} else if rng.Float64() < cfg.PAtomic {
				stmt = fmt.Sprintf("atomic { %s }", stmt)
			}
			if cfg.Volatiles > 0 && rng.Intn(6) == 0 {
				f := fmt.Sprintf("f%d", rng.Intn(cfg.Volatiles))
				if rng.Intn(2) == 0 {
					stmt += fmt.Sprintf(" %s = 1;", f)
				} else {
					stmt += fmt.Sprintf(" local g%d = %s;", s, f)
				}
			}
			body.WriteString("    " + stmt + "\n")
		}
		return body.String()
	}

	for t := 0; t < cfg.Threads; t++ {
		fmt.Fprintf(&b, "\nthread t%d {\n%s}\n", t, genBody())
	}
	b.WriteString("\nmain {\n")
	for t := 0; t < cfg.Threads; t++ {
		fmt.Fprintf(&b, "    fork t%d;\n", t)
	}
	b.WriteString(genBody())
	for t := 0; t < cfg.Threads; t++ {
		fmt.Fprintf(&b, "    join t%d;\n", t)
	}
	for v := 0; v < cfg.Vars; v++ {
		fmt.Fprintf(&b, "    print v%d;\n", v)
	}
	b.WriteString("}\n")

	p, err := Parse(b.String())
	if err != nil {
		// The generator only emits valid syntax; a failure is a bug.
		panic(fmt.Sprintf("mini: generated invalid program: %v\n%s", err, b.String()))
	}
	return p
}

// varLock assigns each variable a fixed lock so locked accesses follow a
// consistent discipline.
func varLock(v string, locks int) int {
	h := 0
	for _, c := range v {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % locks
}
