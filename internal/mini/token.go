// Package mini implements a small concurrent imperative language — an
// executable version of the FastTrack paper's program model (Figure 1):
// threads reading and writing shared variables, acquiring and releasing
// locks, forking and joining threads, plus volatile variables and the
// usual integer expressions and control flow.
//
// A program is executed by a seeded scheduler that interleaves threads
// at statement granularity and reports every operation to an rr.Tool,
// so the detectors in this module check real executions, not just
// pre-recorded traces. Different seeds explore different interleavings;
// the schedule-exploration experiment (cmd/minirun -seeds N) shows the
// point of precise dynamic race detection: FastTrack flags the racy
// program on every schedule, long before the lost update happens to
// manifest in the output.
package mini

import "fmt"

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokSymbol // one of the operator/punctuation lexemes
)

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords of the language.
var keywords = map[string]bool{
	"var": true, "lock": true, "volatile": true,
	"thread": true, "main": true,
	"acquire": true, "release": true,
	"fork": true, "join": true,
	"if": true, "else": true, "while": true,
	"local": true, "print": true, "assert": true, "skip": true,
	"atomic": true, "wait": true, "notify": true,
	"barrier": true, "yield": true,
}

// symbols, longest first so the lexer prefers "<=" over "<".
var symbols = []string{
	"==", "!=", "<=", ">=", "&&", "||",
	"+", "-", "*", "/", "%", "<", ">", "!", "=",
	"(", ")", "{", "}", ",", ";",
}

// SyntaxError is a lexing or parsing failure with its source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("mini: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lex splits source text into tokens.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	fail := func(msg string, args ...any) error {
		return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(msg, args...)}
	}
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
scan:
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c >= '0' && c <= '9':
			start, startLine, startCol := i, line, col
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				advance(1)
			}
			toks = append(toks, token{tokNumber, src[start:i], startLine, startCol})
		case isIdentStart(c):
			start, startLine, startCol := i, line, col
			for i < len(src) && isIdentPart(src[i]) {
				advance(1)
			}
			text := src[start:i]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, text, startLine, startCol})
		default:
			for _, sym := range symbols {
				if len(src)-i >= len(sym) && src[i:i+len(sym)] == sym {
					toks = append(toks, token{tokSymbol, sym, line, col})
					advance(len(sym))
					continue scan
				}
			}
			return nil, fail("unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
