package vc

import (
	"testing"
	"testing/quick"
)

func TestTrimDropsTrailingZeros(t *testing.T) {
	v := VC{1, 2, 0, 0, 0, 0, 0, 0}
	w := v.Trim()
	if len(w) != 2 {
		t.Errorf("len = %d, want 2", len(w))
	}
	if !w.Equal(v) {
		t.Errorf("Trim changed the denoted function: %v vs %v", w, v)
	}
	// Enough waste: reallocated into a smaller array.
	if cap(w) >= cap(v) {
		t.Errorf("cap = %d, want < %d", cap(w), cap(v))
	}
}

func TestTrimKeepsDenseVectors(t *testing.T) {
	v := VC{1, 2, 3}
	w := v.Trim()
	if len(w) != 3 || cap(w) != cap(v) {
		t.Errorf("dense vector reallocated: len=%d cap=%d", len(w), cap(w))
	}
}

func TestTrimEmptyAndAllZero(t *testing.T) {
	if got := (VC{}).Trim(); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := (VC{0, 0, 0}).Trim(); len(got) != 0 {
		t.Errorf("all-zero: %v", got)
	}
}

func TestTrimPreservesSemanticsProperty(t *testing.T) {
	f := func(xs []uint8, zeros uint8) bool {
		v := randVC(xs)
		for i := 0; i < int(zeros%16); i++ {
			v = append(v, 0)
		}
		w := v.Trim()
		return w.Equal(v) && v.Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
