// Package vc implements the two happens-before representations used by
// FastTrack and the vector-clock race detectors it is compared against:
// full vector clocks (Mattern 1988) and lightweight epochs (Flanagan &
// Freund, PLDI 2009, Section 3).
//
// A vector clock V : Tid -> Clock records one scalar clock per thread.
// An epoch c@t pairs the clock c of a single thread t and fits in one
// machine word, so copying and comparing epochs is O(1) regardless of the
// number of threads.
//
// All detectors in this module share these primitives so that performance
// comparisons between them are apples-to-apples, as in the paper's
// evaluation (Section 5.1).
package vc

import (
	"fmt"
	"strings"
)

// Tid identifies a thread. Thread ids are small dense integers assigned in
// fork order, starting at 0 for the initial thread.
type Tid int32

// Clock is a per-thread scalar logical clock. Clocks start at 1 (the
// initial analysis state is C_t = inc_t(bottom)) and are incremented at
// each lock release, fork, volatile write, and barrier release performed
// by the thread.
type Clock uint64

// Epoch packs a clock and a thread identifier into a single word, written
// c@t in the paper. The top TidBits bits hold the thread id and the low
// ClockBits bits hold the clock.
//
// The paper packs 8-bit tids with 24-bit clocks into 32 bits and notes
// that switching to 64 bits accommodates larger programs (Section 4); we
// use the 64-bit layout.
type Epoch uint64

const (
	// ClockBits is the width of the clock field of an Epoch.
	ClockBits = 40
	// TidBits is the width of the thread-id field of an Epoch.
	TidBits = 64 - ClockBits
	// MaxClock is the largest representable clock value.
	MaxClock = Clock(1)<<ClockBits - 1
	// MaxTid is the largest representable thread id.
	MaxTid = Tid(1)<<TidBits - 1

	clockMask = uint64(1)<<ClockBits - 1
)

// Bottom is the minimal epoch 0@0, written ⊥e in the paper. It is the
// initial read and write history of every variable. (Minimal epochs are
// not unique — 0@1 is also minimal — but Bottom is the canonical one.)
const Bottom Epoch = 0

// MakeEpoch returns the epoch c@t. Clocks beyond MaxClock saturate at
// MaxClock rather than panicking: a thread that performs 2^40
// synchronization operations stops advancing its epoch, which can only
// make the analysis miss races (an access ordered after a saturated
// clock still compares >=), never report false ones. Detectors count
// the condition in Stats.ClockSaturations so long-running sessions can
// surface it instead of dying mid-stream.
func MakeEpoch(t Tid, c Clock) Epoch {
	if t < 0 || t > MaxTid {
		panic(fmt.Sprintf("vc: thread id %d out of range [0,%d]", t, MaxTid))
	}
	if c > MaxClock {
		c = MaxClock
	}
	return Epoch(uint64(t)<<ClockBits | uint64(c))
}

// Tid extracts the thread identifier t of an epoch c@t.
func (e Epoch) Tid() Tid { return Tid(uint64(e) >> ClockBits) }

// Clock extracts the clock c of an epoch c@t.
func (e Epoch) Clock() Clock { return Clock(uint64(e) & clockMask) }

// LEq reports whether the epoch happens before (or equals) the vector
// clock V, written c@t � V in the paper: c <= V(t). This is the O(1)
// comparison that replaces the O(n) vector-clock comparison on the
// FastTrack fast paths. The body is flattened (no Get/Clock/Tid calls)
// so it inlines into the access handlers: one shift, one predictable
// bounds branch, one compare.
func (e Epoch) LEq(v VC) bool {
	t := uint64(e) >> ClockBits
	var c Clock
	if t < uint64(len(v)) {
		c = v[t]
	}
	return Clock(uint64(e)&clockMask) <= c
}

// String renders the epoch in the paper's c@t notation.
func (e Epoch) String() string { return fmt.Sprintf("%d@%d", e.Clock(), e.Tid()) }

// VC is a vector clock: a growable dense vector of per-thread clocks.
// The zero value is the minimal vector clock ⊥V (all components zero).
// Components beyond len are implicitly zero.
type VC []Clock

// New returns a fresh minimal vector clock with capacity for n threads.
func New(n int) VC { return make(VC, n) }

// Get returns V(t), treating missing components as zero.
func (v VC) Get(t Tid) Clock {
	if int(t) < len(v) {
		return v[t]
	}
	return 0
}

// Set updates component t to c, growing the vector if needed, and returns
// the (possibly reallocated) vector.
func (v VC) Set(t Tid, c Clock) VC {
	v = v.grow(t)
	v[t] = c
	return v
}

// Inc increments component t (the helper function inc_t of Section 2.2)
// and returns the (possibly reallocated) vector. The component saturates
// at MaxClock — the widest clock an Epoch can carry — so that a
// long-lived thread's 2^40'th increment degrades precision (its epoch
// stops advancing; see MakeEpoch) instead of panicking the pipeline.
func (v VC) Inc(t Tid) VC {
	v = v.grow(t)
	if v[t] < MaxClock {
		v[t]++
	}
	return v
}

// grow extends v with zero components so that index t is valid.
func (v VC) grow(t Tid) VC {
	if int(t) < len(v) {
		return v
	}
	n := int(t) + 1
	if n < 2*len(v) {
		n = 2 * len(v)
	}
	w := make(VC, n)
	copy(w, v)
	return w[:int(t)+1]
}

// Join computes the pointwise maximum V1 ⊔ V2 in place on v and returns
// the (possibly reallocated) result. This is an O(n) operation.
func (v VC) Join(w VC) VC {
	if len(w) > len(v) {
		v = v.grow(Tid(len(w) - 1))
	}
	for i, c := range w {
		if c > v[i] {
			v[i] = c
		}
	}
	return v
}

// LEq reports the pointwise partial order V1 ⊑ V2: for all t,
// V1(t) <= V2(t). This is an O(n) operation.
func (v VC) LEq(w VC) bool {
	for i, c := range v {
		if c > w.Get(Tid(i)) {
			return false
		}
	}
	return true
}

// FirstExceeding returns the smallest thread id u such that V1(u) > V2(u),
// or -1 if V1 ⊑ V2. Race reports use it to name the concurrent thread.
func (v VC) FirstExceeding(w VC) Tid {
	for i, c := range v {
		if c > w.Get(Tid(i)) {
			return Tid(i)
		}
	}
	return -1
}

// Copy returns an independent copy of v.
func (v VC) Copy() VC {
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// CopyInto overwrites v with the contents of w, reusing v's storage when
// possible, and returns the result.
func (v VC) CopyInto(w VC) VC {
	if cap(v) < len(w) {
		return w.Copy()
	}
	v = v[:len(w)]
	copy(v, w)
	return v
}

// Epoch returns the epoch Clock(t)@t for component t.
func (v VC) Epoch(t Tid) Epoch { return MakeEpoch(t, v.Get(t)) }

// Bytes reports the shadow-memory footprint of the vector's backing array,
// used by the memory-overhead accounting of Table 3.
func (v VC) Bytes() int { return cap(v) * 8 }

// Equal reports whether two vector clocks denote the same function
// Tid -> Clock (trailing zero components are insignificant).
func (v VC) Equal(w VC) bool { return v.LEq(w) && w.LEq(v) }

// Trim returns a vector denoting the same function with trailing zero
// components removed; when that frees at least half the backing array it
// reallocates, releasing the memory. Used by the accordion-style
// compaction of dead-thread state (cf. Christiaens & De Bosschere's
// accordion clocks, cited in the paper's Section 4).
func (v VC) Trim() VC {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	if n <= cap(v)/2 {
		w := make(VC, n)
		copy(w, v[:n])
		return w
	}
	return v[:n]
}

// String renders the vector in the paper's ⟨c0,c1,...⟩ notation.
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, c := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte('>')
	return b.String()
}
