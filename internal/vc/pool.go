package vc

import "math/bits"

// Pool is a size-classed free list of vector-clock backing arrays: the
// slab allocator behind the detector's zero-allocation hot paths. Sites
// that used to allocate a fresh VC per operation (lock-release
// materialization, barrier joins, read-share inflation, thread
// creation) Get from a pool instead, and the reclamation seams —
// write-shared demotion, budget squeezes, accordion compaction, session
// Reset — Put the retired backing arrays back. In steady state a
// detector's VC population reaches a fixed point and the Go allocator
// drops out of the per-event cost entirely.
//
// A Pool is not safe for concurrent use; each detector (and, in sharded
// mode, each stripe-confined store) owns its own. The zero value is
// ready to use.
type Pool struct {
	// classes[c] holds retired arrays with capacity >= 1<<c (each array
	// is filed under floor(log2(cap)), so popping from class c always
	// satisfies a request of up to 1<<c clocks).
	classes [poolClasses][]VC
	// Recycled counts Gets served from the free lists; Fresh counts
	// Gets that fell through to the allocator.
	Recycled, Fresh int64
}

const (
	// poolClasses bounds the largest pooled array at 1<<(poolClasses-1)
	// clocks; larger requests bypass the pool.
	poolClasses = 20
	// poolPerClass caps each class's free list so a burst of retirements
	// cannot pin unbounded memory in the pool.
	poolPerClass = 128
)

// Get returns a minimal (all-zero) vector clock of length n, reusing a
// retired backing array when one of sufficient capacity is pooled.
func (p *Pool) Get(n int) VC {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c < poolClasses {
		if s := p.classes[c]; len(s) > 0 {
			v := s[len(s)-1]
			s[len(s)-1] = nil
			p.classes[c] = s[:len(s)-1]
			v = v[:n]
			for i := range v {
				v[i] = 0
			}
			p.Recycled++
			return v
		}
	}
	p.Fresh++
	return make(VC, n)
}

// Put retires v's backing array into the pool. The caller must not use
// v afterwards. Nil and over-large arrays are dropped on the floor.
func (p *Pool) Put(v VC) {
	if cap(v) == 0 {
		return
	}
	c := bits.Len(uint(cap(v))) - 1 // floor(log2(cap))
	if c >= poolClasses || len(p.classes[c]) >= poolPerClass {
		return
	}
	p.classes[c] = append(p.classes[c], v[:0])
}

// Drain empties the free lists, releasing every pinned backing array to
// the allocator. Memory-pressure seams (the detector's budget squeeze)
// call it when retaining pooled slabs would defeat the reclamation.
func (p *Pool) Drain() {
	for c := range p.classes {
		p.classes[c] = nil
	}
}

// Bytes reports the memory pinned by the pool's free lists, for the
// detector's footprint accounting.
func (p *Pool) Bytes() int64 {
	var b int64
	for c := range p.classes {
		b += int64(cap(p.classes[c])) * 24 // slice headers
		for _, v := range p.classes[c] {
			b += int64(cap(v)) * 8
		}
	}
	return b
}
