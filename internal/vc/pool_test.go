package vc

import "testing"

func TestPoolRecyclesBackingArrays(t *testing.T) {
	var p Pool
	v := p.Get(5)
	if len(v) != 5 {
		t.Fatalf("Get(5) returned len %d", len(v))
	}
	v = v.Set(3, 9)
	p.Put(v)
	w := p.Get(4)
	if len(w) != 4 {
		t.Fatalf("Get(4) returned len %d", len(w))
	}
	for i, c := range w {
		if c != 0 {
			t.Fatalf("recycled array not zeroed: w[%d] = %d", i, c)
		}
	}
	if p.Recycled != 1 || p.Fresh != 1 {
		t.Fatalf("Recycled = %d, Fresh = %d, want 1, 1", p.Recycled, p.Fresh)
	}
}

func TestPoolGetSatisfiesLargerClass(t *testing.T) {
	var p Pool
	// cap 8 is filed under class 3 and must not serve a request for 9.
	p.Put(make(VC, 8))
	v := p.Get(9)
	if cap(v) < 9 {
		t.Fatalf("Get(9) returned cap %d", cap(v))
	}
	if p.Recycled != 0 {
		t.Fatal("request larger than the pooled array was served from the pool")
	}
	// A second request of 8 or fewer is served from the free list.
	w := p.Get(6)
	if p.Recycled != 1 || cap(w) < 6 {
		t.Fatalf("Get(6) not recycled (Recycled = %d, cap %d)", p.Recycled, cap(w))
	}
}

func TestPoolZeroSizeAndBounds(t *testing.T) {
	var p Pool
	if v := p.Get(0); v != nil {
		t.Fatalf("Get(0) = %v, want nil", v)
	}
	p.Put(nil)
	p.Put(make(VC, 0))
	for i := 0; i < 2*poolPerClass; i++ {
		p.Put(make(VC, 4))
	}
	if n := len(p.classes[2]); n > poolPerClass {
		t.Fatalf("class free list grew to %d, cap is %d", n, poolPerClass)
	}
	if p.Bytes() <= 0 {
		t.Fatal("Bytes() reported nothing pinned")
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	var p Pool
	for i := 0; i < b.N; i++ {
		p.Put(p.Get(16))
	}
}
