package vc

import (
	"testing"
	"testing/quick"
)

func TestEpochPacking(t *testing.T) {
	cases := []struct {
		tid   Tid
		clock Clock
	}{
		{0, 0},
		{0, 1},
		{1, 0},
		{7, 123456},
		{MaxTid, MaxClock},
		{255, (1 << 24) - 1}, // the paper's 32-bit extremes
	}
	for _, c := range cases {
		e := MakeEpoch(c.tid, c.clock)
		if e.Tid() != c.tid {
			t.Errorf("MakeEpoch(%d,%d).Tid() = %d", c.tid, c.clock, e.Tid())
		}
		if e.Clock() != c.clock {
			t.Errorf("MakeEpoch(%d,%d).Clock() = %d", c.tid, c.clock, e.Clock())
		}
	}
}

func TestEpochPackingRoundTrip(t *testing.T) {
	f := func(tid uint16, clock uint32) bool {
		tt, cc := Tid(tid), Clock(clock)
		e := MakeEpoch(tt, cc)
		return e.Tid() == tt && e.Clock() == cc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeEpochPanics(t *testing.T) {
	// Only structurally impossible thread ids panic; an overflowing
	// clock saturates instead (see overflow_test.go).
	for _, c := range []struct {
		tid   Tid
		clock Clock
	}{{-1, 0}, {MaxTid + 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeEpoch(%d,%d): expected panic", c.tid, c.clock)
				}
			}()
			MakeEpoch(c.tid, c.clock)
		}()
	}
}

func TestBottomEpoch(t *testing.T) {
	if Bottom.Tid() != 0 || Bottom.Clock() != 0 {
		t.Fatalf("Bottom = %v, want 0@0", Bottom)
	}
	if !Bottom.LEq(nil) {
		t.Error("Bottom must happen before the minimal vector clock")
	}
	if got := Bottom.String(); got != "0@0" {
		t.Errorf("Bottom.String() = %q", got)
	}
}

func TestEpochLEq(t *testing.T) {
	v := VC{4, 8}
	if !MakeEpoch(0, 4).LEq(v) {
		t.Error("4@0 must happen before <4,8>")
	}
	if MakeEpoch(0, 5).LEq(v) {
		t.Error("5@0 must not happen before <4,8>")
	}
	if !MakeEpoch(1, 8).LEq(v) {
		t.Error("8@1 must happen before <4,8>")
	}
	// Components beyond the vector length are zero.
	if MakeEpoch(5, 1).LEq(v) {
		t.Error("1@5 must not happen before <4,8>")
	}
	if !MakeEpoch(5, 0).LEq(v) {
		t.Error("0@5 must happen before <4,8>")
	}
}

func TestGetSetInc(t *testing.T) {
	var v VC
	if v.Get(3) != 0 {
		t.Error("zero-value VC must read as all-zero")
	}
	v = v.Set(3, 7)
	if v.Get(3) != 7 {
		t.Errorf("Get(3) = %d, want 7", v.Get(3))
	}
	if v.Get(0) != 0 || v.Get(100) != 0 {
		t.Error("unset components must stay zero")
	}
	v = v.Inc(3)
	if v.Get(3) != 8 {
		t.Errorf("Inc: Get(3) = %d, want 8", v.Get(3))
	}
	v = v.Inc(5)
	if v.Get(5) != 1 {
		t.Errorf("Inc on fresh component: got %d, want 1", v.Get(5))
	}
}

func TestJoin(t *testing.T) {
	a := VC{4, 0, 2}
	b := VC{1, 8}
	a = a.Join(b)
	want := VC{4, 8, 2}
	if !a.Equal(want) {
		t.Errorf("join = %v, want %v", a, want)
	}
	// Join against a longer vector grows the receiver.
	c := VC{1}.Join(VC{0, 0, 0, 9})
	if c.Get(3) != 9 || c.Get(0) != 1 {
		t.Errorf("join growth: got %v", c)
	}
}

func TestLEqPartialOrder(t *testing.T) {
	a := VC{4, 0}
	b := VC{4, 8}
	if !a.LEq(b) {
		t.Error("<4,0> ⊑ <4,8> must hold")
	}
	if b.LEq(a) {
		t.Error("<4,8> ⊑ <4,0> must not hold")
	}
	// Incomparable pair.
	c := VC{5, 0}
	d := VC{0, 5}
	if c.LEq(d) || d.LEq(c) {
		t.Error("<5,0> and <0,5> must be incomparable")
	}
	// Trailing zeros are insignificant.
	if !(VC{1, 0, 0}).LEq(VC{1}) {
		t.Error("<1,0,0> ⊑ <1> must hold")
	}
}

func TestFirstExceeding(t *testing.T) {
	if got := (VC{1, 9, 3}).FirstExceeding(VC{1, 2, 3}); got != 1 {
		t.Errorf("FirstExceeding = %d, want 1", got)
	}
	if got := (VC{1, 2}).FirstExceeding(VC{1, 2, 3}); got != -1 {
		t.Errorf("FirstExceeding on ordered pair = %d, want -1", got)
	}
}

func TestCopyIndependence(t *testing.T) {
	a := VC{1, 2, 3}
	b := a.Copy()
	b = b.Set(0, 99)
	if a.Get(0) != 1 {
		t.Error("Copy must be independent of the original")
	}
}

func TestCopyInto(t *testing.T) {
	dst := make(VC, 4)
	src := VC{7, 8}
	dst = dst.CopyInto(src)
	if !dst.Equal(src) {
		t.Errorf("CopyInto = %v, want %v", dst, src)
	}
	// Small destination falls back to allocation.
	var small VC
	small = small.CopyInto(src)
	if !small.Equal(src) {
		t.Errorf("CopyInto (alloc) = %v, want %v", small, src)
	}
}

func TestVCEpoch(t *testing.T) {
	v := VC{4, 8}
	if e := v.Epoch(1); e.Tid() != 1 || e.Clock() != 8 {
		t.Errorf("Epoch(1) = %v, want 8@1", e)
	}
	if e := v.Epoch(9); e.Clock() != 0 {
		t.Errorf("Epoch beyond length = %v, want clock 0", e)
	}
}

func TestString(t *testing.T) {
	if got := (VC{4, 8}).String(); got != "<4,8>" {
		t.Errorf("String = %q", got)
	}
	if got := MakeEpoch(0, 4).String(); got != "4@0" {
		t.Errorf("epoch String = %q", got)
	}
}

// randVC builds a small vector clock from quick-generated data.
func randVC(xs []uint8) VC {
	v := make(VC, len(xs))
	for i, x := range xs {
		v[i] = Clock(x % 8)
	}
	return v
}

func TestJoinLawsProperty(t *testing.T) {
	commut := func(a, b []uint8) bool {
		x, y := randVC(a), randVC(b)
		return x.Copy().Join(y).Equal(y.Copy().Join(x))
	}
	if err := quick.Check(commut, nil); err != nil {
		t.Errorf("join not commutative: %v", err)
	}
	assoc := func(a, b, c []uint8) bool {
		x, y, z := randVC(a), randVC(b), randVC(c)
		l := x.Copy().Join(y).Join(z)
		r := x.Copy().Join(y.Copy().Join(z))
		return l.Equal(r)
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("join not associative: %v", err)
	}
	idem := func(a []uint8) bool {
		x := randVC(a)
		return x.Copy().Join(x).Equal(x)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Errorf("join not idempotent: %v", err)
	}
}

func TestJoinIsLeastUpperBoundProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		x, y := randVC(a), randVC(b)
		j := x.Copy().Join(y)
		return x.LEq(j) && y.LEq(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("join not an upper bound: %v", err)
	}
}

func TestEpochLEqMatchesVCLEqProperty(t *testing.T) {
	// c@t � V must agree with the pointwise order on the VC interpretation
	// of the epoch (Appendix A interprets c@t as λu. if t=u then c else 0).
	f := func(tid uint8, clock uint8, b []uint8) bool {
		t0 := Tid(tid % 6)
		c0 := Clock(clock % 8)
		v := randVC(b)
		e := MakeEpoch(t0, c0)
		asVC := VC{}.Set(t0, c0)
		return e.LEq(v) == asVC.LEq(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLEqReflexiveTransitiveProperty(t *testing.T) {
	refl := func(a []uint8) bool {
		x := randVC(a)
		return x.LEq(x)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("⊑ not reflexive: %v", err)
	}
	trans := func(a, b, c []uint8) bool {
		x, y, z := randVC(a), randVC(b), randVC(c)
		if x.LEq(y) && y.LEq(z) {
			return x.LEq(z)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("⊑ not transitive: %v", err)
	}
}

func TestBytes(t *testing.T) {
	v := New(4)
	if v.Bytes() != 32 {
		t.Errorf("Bytes = %d, want 32", v.Bytes())
	}
}
