package vc

import "testing"

// The clock field of an Epoch is 40 bits wide. Before the saturation
// fix, MakeEpoch panicked the first time a thread's scalar clock
// crossed MaxClock — and since every Inc on a thread clock funnels
// through the epoch refresh, one long-lived thread could take down a
// whole long-running session. These tests pin the boundary behavior:
// clocks saturate, epochs stay representable, nothing panics.

func TestIncSaturatesAtMaxClock(t *testing.T) {
	v := New(1).Set(0, MaxClock-1)
	v = v.Inc(0)
	if got := v.Get(0); got != MaxClock {
		t.Fatalf("Inc at MaxClock-1: clock = %d, want %d", got, MaxClock)
	}
	// The overflow increment: the clock must pin, not wrap or panic.
	v = v.Inc(0)
	if got := v.Get(0); got != MaxClock {
		t.Fatalf("Inc at MaxClock: clock = %d, want saturation at %d", got, MaxClock)
	}
}

func TestMakeEpochSaturatesOverflowingClock(t *testing.T) {
	if got := MakeEpoch(3, MaxClock); got.Clock() != MaxClock || got.Tid() != 3 {
		t.Fatalf("MakeEpoch(3, MaxClock) = %v", got)
	}
	got := MakeEpoch(3, MaxClock+1) // must clamp, not panic
	if got.Clock() != MaxClock || got.Tid() != 3 {
		t.Fatalf("MakeEpoch(3, MaxClock+1) = %d@%d, want %d@3", got.Clock(), got.Tid(), MaxClock)
	}
}

func TestSaturatedEpochStaysOrdered(t *testing.T) {
	// An epoch at the saturated clock still compares correctly against
	// clocks that have absorbed it: saturation can only hide races
	// (compares pass), never invent them (compares that should pass
	// still pass).
	e := MakeEpoch(0, MaxClock)
	if !e.LEq(New(1).Set(0, MaxClock)) {
		t.Fatal("saturated epoch not <= a clock that absorbed it")
	}
	if e.LEq(New(1).Set(0, MaxClock-1)) {
		t.Fatal("saturated epoch <= a clock that has not absorbed it")
	}
}
