// Package conformance cross-checks every race detector in this module
// against the independent happens-before oracle of internal/hb. Its
// exported helpers are consumed by the package's own property tests and
// by the benchmark harness's self-checks.
package conformance

import (
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// RacyVars runs a tool over a trace and returns the set of variables it
// flagged.
func RacyVars(tool rr.Tool, tr trace.Trace) map[uint64]bool {
	for i, e := range tr {
		tool.HandleEvent(i, e)
	}
	out := map[uint64]bool{}
	for _, r := range tool.Races() {
		out[r.Var] = true
	}
	return out
}

// SameVars reports whether two variable sets are equal.
func SameVars(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for x := range a {
		if !b[x] {
			return false
		}
	}
	return true
}

// Subset reports whether a ⊆ b.
func Subset(a, b map[uint64]bool) bool {
	for x := range a {
		if !b[x] {
			return false
		}
	}
	return true
}
