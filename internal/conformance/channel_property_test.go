package conformance

import (
	"math/rand"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// conservativeChans rewrites every channel event to capacity 0, i.e.
// the conservative accumulation semantics in which every send is
// ordered after every prior receive and vice versa — the relation the
// old capacity-unaware encoding implemented.
func conservativeChans(tr trace.Trace) trace.Trace {
	out := make(trace.Trace, len(tr))
	copy(out, tr)
	for i := range out {
		switch out[i].Kind {
		case trace.ChanSend, trace.ChanRecv, trace.ChanClose:
			out[i].Cap = 0
		}
	}
	return out
}

// volatileChans rewrites every channel event into the package's old
// volatile-pair encoding: a send reads the receive-side volatile and
// writes the send-side one, a receive does the reverse, a close writes
// the send side. Volatile ids are placed far above the generator's own
// volatile range.
func volatileChans(tr trace.Trace) trace.Trace {
	const sendVol, recvVol = uint64(1) << 40, uint64(2) << 40
	var out trace.Trace
	for _, e := range tr {
		switch e.Kind {
		case trace.ChanSend:
			out = append(out,
				trace.VRd(e.Tid, recvVol|e.Target),
				trace.VWr(e.Tid, sendVol|e.Target))
		case trace.ChanRecv:
			out = append(out,
				trace.VRd(e.Tid, sendVol|e.Target),
				trace.VWr(e.Tid, recvVol|e.Target))
		case trace.ChanClose:
			out = append(out, trace.VWr(e.Tid, sendVol|e.Target))
		default:
			out = append(out, e)
		}
	}
	return out
}

// chanTrace generates a channel-heavy random feasible trace.
func chanTrace(t *testing.T, seed int64, unbufferedOnly bool) trace.Trace {
	t.Helper()
	cfg := sim.DefaultRandomConfig()
	cfg.PChan = 0.15
	cfg.Chans = 3
	cfg.Events = 150
	tr := sim.RandomTrace(rand.New(rand.NewSource(seed)), cfg)
	if unbufferedOnly {
		tr = conservativeChans(tr)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("seed %d: infeasible trace: %v", seed, err)
	}
	return tr
}

// racyVarsSharded runs FastTrack in sharded mode over a trace.
func racyVarsSharded(tr trace.Trace) map[uint64]bool {
	d := core.New(4, 8)
	d.EnableSharding(4)
	return RacyVars(d, tr)
}

// TestCapacityAwareRefinesConservative: forcing every channel to
// capacity 0 adds happens-before edges the runtime does not guarantee,
// so the capacity-aware race set must be a superset of the conservative
// one — the capacity-aware semantics only ever EXPOSES races the old
// encoding masked, never the reverse. Checked in serial and sharded
// mode.
func TestCapacityAwareRefinesConservative(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		tr := chanTrace(t, 7000+seed, false)
		exact := RacyVars(core.New(4, 8), tr)
		cons := RacyVars(core.New(4, 8), conservativeChans(tr))
		if !Subset(cons, exact) {
			t.Fatalf("seed %d: conservative races %v ⊄ capacity-aware races %v\ntrace:\n%s",
				seed, cons, exact, tr)
		}
		exactSh := racyVarsSharded(tr)
		if !SameVars(exactSh, exact) {
			t.Fatalf("seed %d: sharded capacity-aware %v != serial %v\ntrace:\n%s",
				seed, exactSh, exact, tr)
		}
		consSh := racyVarsSharded(conservativeChans(tr))
		if !Subset(consSh, exactSh) {
			t.Fatalf("seed %d: sharded conservative %v ⊄ sharded capacity-aware %v\ntrace:\n%s",
				seed, consSh, exactSh, tr)
		}
	}
}

// TestUnbufferedMatchesVolatileEncoding: on traces whose channels are
// all unbuffered, the first-class channel rules coincide with the old
// volatile-pair encoding — the rendezvous accumulators implement
// exactly that relation — so both report the same racy variables, in
// serial and sharded mode.
func TestUnbufferedMatchesVolatileEncoding(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		tr := chanTrace(t, 9000+seed, true)
		native := RacyVars(core.New(4, 8), tr)
		encoded := RacyVars(core.New(4, 8), volatileChans(tr))
		if !SameVars(native, encoded) {
			t.Fatalf("seed %d: native unbuffered races %v != volatile encoding %v\ntrace:\n%s",
				seed, native, encoded, tr)
		}
		nativeSh := racyVarsSharded(tr)
		if !SameVars(nativeSh, native) {
			t.Fatalf("seed %d: sharded %v != serial %v\ntrace:\n%s",
				seed, nativeSh, native, tr)
		}
	}
}
