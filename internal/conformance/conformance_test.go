package conformance

import (
	"math/rand"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/detectors/basicvc"
	"fasttrack/internal/detectors/djit"
	"fasttrack/internal/detectors/epochwr"
	"fasttrack/internal/detectors/eraser"
	"fasttrack/internal/detectors/goldilocks"
	"fasttrack/internal/detectors/multirace"
	"fasttrack/internal/hb"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// traceCases returns deterministic random feasible traces covering many
// interleaving shapes.
func traceCases(t *testing.T, n int, cfg sim.RandomConfig) []trace.Trace {
	t.Helper()
	traces := make([]trace.Trace, n)
	for i := range traces {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		tr := sim.RandomTrace(rng, cfg)
		if err := tr.Validate(); err != nil {
			t.Fatalf("generator produced infeasible trace (seed %d): %v", 1000+i, err)
		}
		traces[i] = tr
	}
	return traces
}

// TestTheorem1PreciseDetectorsMatchOracle is the variable-level statement
// of the paper's Theorem 1 (soundness + completeness), property-tested on
// random feasible traces: FastTrack flags a variable if and only if the
// trace contains concurrent conflicting accesses to it. DJIT+ and BasicVC
// must agree exactly ("the three checkers all yield identical precision",
// Section 5.1).
func TestTheorem1PreciseDetectorsMatchOracle(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	for i, tr := range traceCases(t, 120, cfg) {
		oracle := hb.New(tr).RacyVars()
		ft := RacyVars(core.New(4, 8), tr)
		if !SameVars(ft, oracle) {
			t.Fatalf("case %d: FastTrack %v != oracle %v\ntrace:\n%s", i, ft, oracle, tr)
		}
		dj := RacyVars(djit.New(4, 8), tr)
		if !SameVars(dj, oracle) {
			t.Fatalf("case %d: DJIT+ %v != oracle %v\ntrace:\n%s", i, dj, oracle, tr)
		}
		bv := RacyVars(basicvc.New(4, 8), tr)
		if !SameVars(bv, oracle) {
			t.Fatalf("case %d: BasicVC %v != oracle %v\ntrace:\n%s", i, bv, oracle, tr)
		}
		we := RacyVars(epochwr.New(4, 8), tr)
		if !SameVars(we, oracle) {
			t.Fatalf("case %d: WriteEpochsOnly %v != oracle %v\ntrace:\n%s", i, we, oracle, tr)
		}
	}
}

// TestTheorem1NoVolatilesNoBarriers re-runs the Theorem 1 property on
// the paper's core operation set (Figure 1) only.
func TestTheorem1NoVolatilesNoBarriers(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.PVol = 0
	cfg.PBarrier = 0
	cfg.Events = 200
	for i, tr := range traceCases(t, 120, cfg) {
		oracle := hb.New(tr).RacyVars()
		ft := RacyVars(core.New(4, 8), tr)
		if !SameVars(ft, oracle) {
			t.Fatalf("case %d: FastTrack %v != oracle %v\ntrace:\n%s", i, ft, oracle, tr)
		}
	}
}

// TestTheorem1ManyThreads stresses thread-table growth and larger vector
// clocks.
func TestTheorem1ManyThreads(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Threads = 12
	cfg.PFork = 0.10
	cfg.PJoin = 0.05
	cfg.Events = 250
	for i, tr := range traceCases(t, 60, cfg) {
		oracle := hb.New(tr).RacyVars()
		ft := RacyVars(core.New(2, 2), tr) // deliberately tiny hints
		if !SameVars(ft, oracle) {
			t.Fatalf("case %d: FastTrack %v != oracle %v\ntrace:\n%s", i, ft, oracle, tr)
		}
		dj := RacyVars(djit.New(2, 2), tr)
		if !SameVars(dj, oracle) {
			t.Fatalf("case %d: DJIT+ %v != oracle %v\ntrace:\n%s", i, dj, oracle, tr)
		}
	}
}

// TestImpreciseToolsNeverFalselyAccuse checks the documented one-sided
// guarantees: Goldilocks and MultiRace may miss races (their unsound
// thread-local fast paths) but must never flag a race-free variable.
func TestImpreciseToolsNeverFalselyAccuse(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	for i, tr := range traceCases(t, 120, cfg) {
		oracle := hb.New(tr).RacyVars()
		gl := RacyVars(goldilocks.New(4, 8), tr)
		if !Subset(gl, oracle) {
			t.Fatalf("case %d: Goldilocks false positive: %v ⊄ %v\ntrace:\n%s", i, gl, oracle, tr)
		}
		mr := RacyVars(multirace.New(4, 8), tr)
		if !Subset(mr, oracle) {
			t.Fatalf("case %d: MultiRace false positive: %v ⊄ %v\ntrace:\n%s", i, mr, oracle, tr)
		}
	}
}

// TestEraserFalseAlarmOnForkJoin pins down Eraser's characteristic
// imprecision: a perfectly synchronized fork-join handoff produces a
// spurious LockSet warning, while the precise tools stay silent.
func TestEraserFalseAlarmOnForkJoin(t *testing.T) {
	tr := trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.Rd(1, 1),
		trace.Wr(1, 1),
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := len(hb.New(tr).Races()); n != 0 {
		t.Fatalf("oracle found %d races in race-free trace", n)
	}
	er := RacyVars(eraser.New(2, 2), tr)
	if !er[1] {
		t.Error("Eraser should false-alarm on fork-join handoff")
	}
	ft := RacyVars(core.New(2, 2), tr)
	if len(ft) != 0 {
		t.Errorf("FastTrack false positive: %v", ft)
	}
}

// TestEraserMissesInitializationRace pins down Eraser's unsoundness for
// thread-local initialization (why it missed two hedc races): a genuine
// race hidden by the exclusive->shared transition with a lock held.
func TestEraserMissesInitializationRace(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1), // concurrent with thread 1's write: a real race
		trace.Acq(1, 0),
		trace.Wr(1, 1), // first "shared" access; lock held => lockset {0}
		trace.Rel(1, 0),
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !hb.New(tr).RacyVars()[1] {
		t.Fatal("oracle must find the race")
	}
	if er := RacyVars(eraser.New(2, 2), tr); er[1] {
		t.Error("Eraser unexpectedly caught the initialization race")
	}
	if ft := RacyVars(core.New(2, 2), tr); !ft[1] {
		t.Error("FastTrack must catch the initialization race")
	}
}

// TestEraserAcceptsLockDiscipline: consistently lock-protected data never
// warns under Eraser.
func TestEraserAcceptsLockDiscipline(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1), trace.ForkOf(0, 2))
	for round := 0; round < 5; round++ {
		for tid := int32(0); tid < 3; tid++ {
			tr = append(tr,
				trace.Acq(tid, 7),
				trace.Rd(tid, 3),
				trace.Wr(tid, 3),
				trace.Rel(tid, 7),
			)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if er := RacyVars(eraser.New(4, 4), tr); len(er) != 0 {
		t.Errorf("Eraser warned on lock-disciplined data: %v", er)
	}
}

// TestEraserBarrierExtension: barrier-phased data does not warn (the
// extension of [29] cited in Section 5.1), but removing the barrier does.
func TestEraserBarrierExtension(t *testing.T) {
	phased := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Rd(0, 2),
		trace.Barrier(0, 0, 1),
		trace.Wr(1, 1), // new phase: ownership restarts
		trace.Rd(1, 2),
	}
	if err := phased.Validate(); err != nil {
		t.Fatal(err)
	}
	if er := RacyVars(eraser.New(2, 4), phased); len(er) != 0 {
		t.Errorf("Eraser warned on barrier-phased data: %v", er)
	}

	unphased := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1),
	}
	if er := RacyVars(eraser.New(2, 4), unphased); !er[1] {
		t.Error("Eraser must warn without the barrier")
	}
}

// TestGoldilocksCatchesRecurringRace: the unsound ownership handoff
// skips the first conflicting pair, but a recurring race is caught.
func TestGoldilocksCatchesRecurringRace(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(0, 1),
		trace.Wr(1, 1), // handoff: missed
		trace.Wr(2, 1), // lockset mode: caught
	}
	gl := RacyVars(goldilocks.New(4, 2), tr)
	if !gl[1] {
		t.Error("Goldilocks must catch the recurring race")
	}
}

// TestGoldilocksMissesOneShotHandoffRace documents the miss that cost
// the paper's Goldilocks the hedc races.
func TestGoldilocksMissesOneShotHandoffRace(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Wr(1, 1), // one-shot handoff race: missed by design
	}
	if !hb.New(tr).RacyVars()[1] {
		t.Fatal("oracle must find the race")
	}
	if gl := RacyVars(goldilocks.New(4, 2), tr); gl[1] {
		t.Error("Goldilocks unexpectedly caught the one-shot handoff race")
	}
}

// TestGoldilocksLockTransfer: the lockset-transfer rules accept properly
// locked handoffs.
func TestGoldilocksLockTransfer(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		// Establish lockset mode on x1 via an initial locked handoff.
		trace.Acq(0, 5),
		trace.Wr(0, 1),
		trace.Rel(0, 5),
		trace.Acq(1, 5),
		trace.Wr(1, 1), // handoff (unchecked), lockset mode from here
		trace.Rel(1, 5),
		trace.Acq(2, 5),
		trace.Wr(2, 1), // transfer via lock 5: accepted
		trace.Rel(2, 5),
	}
	if gl := RacyVars(goldilocks.New(4, 2), tr); len(gl) != 0 {
		t.Errorf("Goldilocks false positive on locked handoffs: %v", gl)
	}
}

// TestAllToolsAgreeOnRaceFreeLockProgram: the canonical lock-protected
// counter is accepted by every tool.
func TestAllToolsAgreeOnRaceFreeLockProgram(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < 20; i++ {
		for tid := int32(0); tid < 2; tid++ {
			tr = append(tr,
				trace.Acq(tid, 0),
				trace.Rd(tid, 0),
				trace.Wr(tid, 0),
				trace.Rel(tid, 0),
			)
		}
	}
	tools := []rr.Tool{
		core.New(2, 2), djit.New(2, 2), basicvc.New(2, 2),
		eraser.New(2, 2), multirace.New(2, 2), goldilocks.New(2, 2),
	}
	for _, tool := range tools {
		if rv := RacyVars(tool, tr); len(rv) != 0 {
			t.Errorf("%s warned on race-free lock program: %v", tool.Name(), rv)
		}
	}
}

// TestCompactionPreservesPrecision: the accordion-style Compact pass is
// a pure space optimization — injecting it after every join must leave
// the warning set identical to an uncompacted run and to the oracle.
func TestCompactionPreservesPrecision(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Threads = 8
	cfg.PFork = 0.08
	cfg.PJoin = 0.06
	cfg.Events = 200
	for i, tr := range traceCases(t, 80, cfg) {
		oracle := hb.New(tr).RacyVars()
		d := core.New(4, 8)
		var dead []int32
		for j, e := range tr {
			d.HandleEvent(j, e)
			if e.Kind == trace.Join {
				dead = append(dead, int32(e.Target))
				d.Compact(dead)
			}
		}
		got := map[uint64]bool{}
		for _, r := range d.Races() {
			got[r.Var] = true
		}
		if !SameVars(got, oracle) {
			t.Fatalf("case %d: compacted FastTrack %v != oracle %v\ntrace:\n%s",
				i, got, oracle, tr)
		}
		if err := d.CheckWellFormed(); err != nil {
			t.Fatalf("case %d: ill-formed after compaction: %v", i, err)
		}
	}
}

// TestAllPreciseToolsCatchPlainRace: every precise tool flags the
// textbook unsynchronized counter.
func TestAllPreciseToolsCatchPlainRace(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Rd(0, 0),
		trace.Wr(0, 0),
		trace.Rd(1, 0),
		trace.Wr(1, 0),
	}
	tools := []rr.Tool{core.New(2, 2), djit.New(2, 2), basicvc.New(2, 2), eraser.New(2, 2)}
	for _, tool := range tools {
		if rv := RacyVars(tool, tr); !rv[0] {
			t.Errorf("%s missed the plain race", tool.Name())
		}
	}
}
