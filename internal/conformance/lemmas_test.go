package conformance

import (
	"math/rand"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/hb"
	"fasttrack/internal/sim"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// TestLemmas3And4ClocksCharacterizeHappensBefore checks the key
// technical device of the paper's soundness/completeness proofs
// (Appendix A, Lemmas 3 and 4) on random feasible traces: for two data
// accesses a (by thread t) and b (by thread u ≠ t) with a before b in
// the trace,
//
//	a happens-before b  ⟺  C_t^a(t) <= C_u^b(t)
//
// where C^a is the analysis clock at the time of the access (accesses do
// not change clocks, so pre- and post-state agree). The forward
// direction is Lemma 4 (restricted to accesses, where K = C); the
// backward direction is Lemma 3. The oracle supplies the ground-truth
// happens-before relation.
func TestLemmas3And4ClocksCharacterizeHappensBefore(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 100
	for seed := int64(0); seed < 40; seed++ {
		tr := sim.RandomTrace(rand.New(rand.NewSource(seed)), cfg)
		oracle := hb.New(tr)
		d := core.New(4, 8)

		type snap struct {
			idx int
			tid int32
			c   vc.VC
		}
		var accesses []snap
		for i, e := range tr {
			if e.Kind.IsAccess() {
				// Clock before the access == clock after it.
				accesses = append(accesses, snap{idx: i, tid: e.Tid, c: d.ClockOf(e.Tid)})
			}
			d.HandleEvent(i, e)
		}

		for ai := 0; ai < len(accesses); ai++ {
			for bi := ai + 1; bi < len(accesses); bi++ {
				a, b := accesses[ai], accesses[bi]
				if a.tid == b.tid {
					continue
				}
				clockLeq := a.c.Get(vc.Tid(a.tid)) <= b.c.Get(vc.Tid(a.tid))
				ordered := oracle.HappensBefore(a.idx, b.idx)
				if clockLeq != ordered {
					t.Fatalf("seed %d: events %d (thread %d) and %d (thread %d): clock test %v but happens-before %v\nC_a = %v, C_b = %v\ntrace:\n%s",
						seed, a.idx, a.tid, b.idx, b.tid, clockLeq, ordered, a.c, b.c, tr)
				}
			}
		}
	}
}

// TestClocksAgreeAcrossPreciseDetectors: FastTrack's thread clocks and
// the vcbase-driven detectors' clocks must evolve identically, since
// they implement the same Figure 3 rules. Divergence here would break
// the apples-to-apples comparison silently.
func TestClocksAgreeAcrossPreciseDetectors(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 150
	for seed := int64(100); seed < 120; seed++ {
		tr := sim.RandomTrace(rand.New(rand.NewSource(seed)), cfg)
		ft := core.New(4, 8)
		for i, e := range tr {
			ft.HandleEvent(i, e)
		}
		// Replaying through the oracle-equivalent BasicVC shadow is
		// indirect; instead, rebuild the expected clock of each thread
		// with a tiny reference interpreter of Figure 3.
		ref := referenceClocks(tr)
		for tid, want := range ref {
			if got := ft.ClockOf(int32(tid)); !got.Equal(want) {
				t.Fatalf("seed %d: thread %d clock %v, reference %v\ntrace:\n%s",
					seed, tid, got, want, tr)
			}
		}
	}
}

// referenceClocks is a deliberately naive, allocation-happy
// reimplementation of the Figure 3 synchronization rules, used only as a
// test oracle for clock evolution.
func referenceClocks(tr trace.Trace) []vc.VC {
	clocks := []vc.VC{}
	locks := map[uint64]vc.VC{}
	vols := map[uint64]vc.VC{}
	type refChan struct {
		capacity           int32
		closed             bool
		sendsAtClose       int
		closeClk           vc.VC
		sendAcc, recvAcc   vc.VC
		sendClks, recvClks []vc.VC
	}
	chans := map[uint64]*refChan{}
	chanOf := func(ch uint64, capacity int32) *refChan {
		h := chans[ch]
		if h == nil {
			h = &refChan{capacity: max(capacity, 0)}
			chans[ch] = h
		}
		return h
	}
	at := func(t int32) vc.VC {
		for int(t) >= len(clocks) {
			clocks = append(clocks, vc.New(0).Inc(vc.Tid(len(clocks))))
		}
		return clocks[t]
	}
	for _, e := range tr {
		switch e.Kind {
		case trace.Acquire:
			if l, ok := locks[e.Target]; ok {
				clocks[e.Tid] = at(e.Tid).Join(l)
			} else {
				at(e.Tid)
			}
		case trace.Release:
			locks[e.Target] = at(e.Tid).Copy()
			clocks[e.Tid] = clocks[e.Tid].Inc(vc.Tid(e.Tid))
		case trace.Fork:
			u := int32(e.Target)
			at(u)
			clocks[u] = clocks[u].Join(at(e.Tid))
			clocks[e.Tid] = clocks[e.Tid].Inc(vc.Tid(e.Tid))
		case trace.Join:
			u := int32(e.Target)
			at(u)
			clocks[e.Tid] = at(e.Tid).Join(clocks[u])
			clocks[u] = clocks[u].Inc(vc.Tid(u))
		case trace.VolatileRead:
			if l, ok := vols[e.Target]; ok {
				clocks[e.Tid] = at(e.Tid).Join(l)
			} else {
				at(e.Tid)
			}
		case trace.VolatileWrite:
			vols[e.Target] = vols[e.Target].Join(at(e.Tid))
			clocks[e.Tid] = clocks[e.Tid].Inc(vc.Tid(e.Tid))
		case trace.BarrierRelease:
			join := vc.New(0)
			for _, u := range e.Tids {
				join = join.Join(at(u))
			}
			for _, u := range e.Tids {
				clocks[u] = at(u).CopyInto(join).Inc(vc.Tid(u))
			}
		case trace.ChanSend:
			h := chanOf(e.Target, e.Cap)
			h.sendClks = append(h.sendClks, nil) // placeholder; filled below
			k := len(h.sendClks)
			if h.capacity == 0 {
				clocks[e.Tid] = at(e.Tid).Join(h.recvAcc)
				h.sendAcc = h.sendAcc.Join(clocks[e.Tid])
			} else if j := k - int(h.capacity); j >= 1 && j <= len(h.recvClks) {
				clocks[e.Tid] = at(e.Tid).Join(h.recvClks[j-1])
			}
			h.sendClks[k-1] = at(e.Tid).Copy()
			clocks[e.Tid] = clocks[e.Tid].Inc(vc.Tid(e.Tid))
		case trace.ChanRecv:
			h := chanOf(e.Target, e.Cap)
			h.recvClks = append(h.recvClks, nil)
			k := len(h.recvClks)
			if h.capacity == 0 {
				clocks[e.Tid] = at(e.Tid).Join(h.sendAcc)
				h.recvAcc = h.recvAcc.Join(clocks[e.Tid])
			} else {
				if k <= len(h.sendClks) {
					clocks[e.Tid] = at(e.Tid).Join(h.sendClks[k-1])
				}
				if h.closed && k > h.sendsAtClose {
					clocks[e.Tid] = at(e.Tid).Join(h.closeClk)
				}
			}
			h.recvClks[k-1] = at(e.Tid).Copy()
			clocks[e.Tid] = clocks[e.Tid].Inc(vc.Tid(e.Tid))
		case trace.ChanClose:
			h := chanOf(e.Target, e.Cap)
			if !h.closed {
				h.closed = true
				h.sendsAtClose = len(h.sendClks)
			}
			h.closeClk = h.closeClk.Join(at(e.Tid))
			if h.capacity == 0 {
				h.sendAcc = h.sendAcc.Join(at(e.Tid))
			}
			clocks[e.Tid] = clocks[e.Tid].Inc(vc.Tid(e.Tid))
		case trace.Read, trace.Write:
			at(e.Tid)
		}
	}
	return clocks
}
