package chaos_test

import (
	"math/rand"
	"testing"

	fasttrack "fasttrack"
	"fasttrack/internal/chaos"
	"fasttrack/internal/core"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// TestAllDetectorsSurviveChaos is the harness's main contract: every
// registered detector survives every corruption mode with full
// degradation accounting and no escaped panic (an escaped panic fails
// the test by crashing it).
func TestAllDetectorsSurviveChaos(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(42)), sim.DefaultRandomConfig())
	for _, name := range fasttrack.ToolNames() {
		for _, mode := range chaos.Modes() {
			for _, seed := range []int64{1, 2, 3} {
				tool, err := fasttrack.NewTool(name, fasttrack.Hints{})
				if err != nil {
					t.Fatalf("NewTool(%q): %v", name, err)
				}
				res := chaos.Run(tool, base, mode, seed, rr.PolicyRepair)
				if err := res.Check(); err != nil {
					t.Error(err)
				}
			}
		}
	}
}

// TestChaosPolicies runs one detector through every mode under each
// policy, checking the per-policy accounting shape.
func TestChaosPolicies(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(7)), sim.DefaultRandomConfig())
	for _, policy := range []rr.Policy{rr.PolicyStrict, rr.PolicyRepair, rr.PolicyDrop} {
		for _, mode := range chaos.Modes() {
			res := chaos.Run(core.New(0, 0), base, mode, 11, policy)
			if err := res.Check(); err != nil {
				t.Error(err)
			}
			h := res.Health
			switch policy {
			case rr.PolicyStrict:
				if h.Repaired != 0 || h.Dropped != 0 {
					t.Errorf("%s/strict: repaired=%d dropped=%d, want 0", mode, h.Repaired, h.Dropped)
				}
			case rr.PolicyRepair:
				if h.Err != nil {
					t.Errorf("%s/repair: unexpected strict error %v", mode, h.Err)
				}
			case rr.PolicyDrop:
				if h.Repaired != 0 || h.Err != nil {
					t.Errorf("%s/drop: repaired=%d err=%v, want 0/nil", mode, h.Repaired, h.Err)
				}
			}
		}
	}
}

// TestQuarantineContinuesDetection is the acceptance test for the panic
// quarantine: a detector that panics mid-stream on one location gets
// that location quarantined, and detection continues — a race planted
// AFTER the panic is still reported.
func TestQuarantineContinuesDetection(t *testing.T) {
	ft := core.New(0, 0)
	tool := &chaos.FaultyTool{
		Inner: ft,
		PanicIf: func(i int, e trace.Event) bool {
			return e.Kind.IsAccess() && e.Target == 5
		},
	}
	d := rr.NewDispatcher(tool)
	d.Feed(trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5), // panics; location 5 is quarantined
		trace.Wr(0, 9),
		trace.Wr(1, 9), // planted race, after the panic
	})
	h := d.Health()
	if h.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", h.Panics)
	}
	if h.QuarantinedLocations != 1 {
		t.Fatalf("QuarantinedLocations = %d, want 1", h.QuarantinedLocations)
	}
	if h.ToolDisabled {
		t.Fatal("tool disabled after a single panic")
	}
	races := tool.Races()
	if len(races) != 1 || races[0].Var != 9 || races[0].Kind != rr.WriteWrite {
		t.Fatalf("races after panic = %+v, want one write-write race on x9", races)
	}
	// The quarantined location is skipped from here on, counted as
	// quarantined accesses.
	d.Event(trace.Wr(1, 5))
	if got := d.Health().QuarantinedAccesses; got != 1 {
		t.Fatalf("QuarantinedAccesses = %d, want 1", got)
	}
	if d.Health().Panics != 1 {
		t.Fatalf("quarantined access re-panicked: Panics = %d", d.Health().Panics)
	}
}

// TestToolDowngrade verifies that after MaxToolPanics panics on distinct
// locations the whole tool is downgraded to a no-op and the pipeline
// keeps running.
func TestToolDowngrade(t *testing.T) {
	tool := &chaos.FaultyTool{
		Inner:   core.New(0, 0),
		PanicIf: func(i int, e trace.Event) bool { return e.Kind.IsAccess() },
	}
	d := rr.NewDispatcher(tool)
	d.MaxToolPanics = 3
	for x := uint64(0); x < 10; x++ {
		d.Event(trace.Wr(0, x*rr.FieldsPerObject)) // distinct shadow locations
	}
	h := d.Health()
	if !h.ToolDisabled {
		t.Fatalf("tool not disabled after %d panics", h.Panics)
	}
	if h.Panics != 3 {
		t.Fatalf("Panics = %d, want 3 (downgrade should stop further deliveries)", h.Panics)
	}
	if h.Healthy {
		t.Fatal("Health reports healthy with a disabled tool")
	}
	// The downgraded pipeline still accepts events and queries.
	d.Event(trace.Wr(1, 99))
	if got := d.Tool.Races(); got == nil && len(got) != 0 {
		t.Fatalf("Races() on downgraded tool = %v", got)
	}
	_ = d.Tool.Stats()
	if name := d.Tool.Name(); name == "" {
		t.Fatal("downgraded tool has empty name")
	}
}

// TestMutateDeterministic checks that Mutate is a pure function of the
// rng stream, so failures reproduce from (mode, seed).
func TestMutateDeterministic(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(3)), sim.DefaultRandomConfig())
	for _, mode := range chaos.Modes() {
		a := chaos.Mutate(base, mode, rand.New(rand.NewSource(5)))
		b := chaos.Mutate(base, mode, rand.New(rand.NewSource(5)))
		if string(a) != string(b) {
			t.Errorf("%s: Mutate not deterministic for a fixed seed", mode)
		}
	}
}
