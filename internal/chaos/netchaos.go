package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// FaultConn wraps a net.Conn and injects deterministic transport faults
// into the written byte stream, for exercising the ingestion service's
// failure paths: frame corruption (caught by the frame CRC), connection
// resets mid-stream, added per-call latency, and one-shot stalls that
// freeze the stream mid-frame. Byte-positioned faults use the absolute
// offset of the write stream, so a test can aim past the handshake and
// into a chosen frame. Reads pass through untouched except for the
// optional ReadDelay.
type FaultConn struct {
	net.Conn

	// FlipByte, when >= 0, XORs 0x01 into the written byte at this
	// stream offset — a single-bit corruption the frame CRC must catch.
	FlipByte int64
	// ResetAfter, when > 0, closes the connection after this many bytes
	// have been written, tearing the stream mid-frame.
	ResetAfter int64
	// WriteDelay, when > 0, sleeps before every write — a slow uplink.
	// With a byte-positioned stall use StallAt/StallFor instead.
	WriteDelay time.Duration
	// ReadDelay, when > 0, sleeps before every read — a slow downlink
	// that delays replies (HelloOK, FlushOK) without touching the
	// payload, exercising client await timeouts and server write stalls.
	ReadDelay time.Duration
	// StallAt, when >= 0 with StallFor > 0, splits the write covering
	// this stream offset and freezes the connection for StallFor before
	// delivering the remainder — a mid-frame hang, the shape of fault
	// idle eviction must NOT misfire on (the idleConn deadline measures
	// gaps in byte arrival, and bytes did arrive). The stall fires once.
	StallAt  int64
	StallFor time.Duration

	mu      sync.Mutex
	written int64
	stalled bool
}

// NewFaultConn returns a pass-through wrapper with no faults armed.
func NewFaultConn(c net.Conn) *FaultConn {
	return &FaultConn{Conn: c, FlipByte: -1, StallAt: -1}
}

// Write applies the armed faults to the outgoing stream.
func (f *FaultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.WriteDelay > 0 {
		time.Sleep(f.WriteDelay)
	}
	off := f.written
	if f.StallAt >= 0 && !f.stalled && f.StallAt < off+int64(len(p)) {
		// Freeze mid-frame: deliver the bytes before the stall point, hold
		// the stream for StallFor, then fall through with the remainder.
		f.stalled = true
		if f.StallAt > off {
			n, err := f.writeLocked(p[:f.StallAt-off])
			if err != nil {
				return n, err
			}
			time.Sleep(f.StallFor)
			m, err := f.writeLocked(p[f.StallAt-off:])
			return n + m, err
		}
		time.Sleep(f.StallFor)
	}
	return f.writeLocked(p)
}

// writeLocked applies the corruption and reset faults and delivers the
// bytes. Callers hold f.mu.
func (f *FaultConn) writeLocked(p []byte) (int, error) {
	off := f.written
	if f.ResetAfter > 0 && off >= f.ResetAfter {
		f.Conn.Close()
		return 0, fmt.Errorf("chaos: connection reset after %d bytes", off)
	}
	if f.FlipByte >= off && f.FlipByte < off+int64(len(p)) {
		q := append([]byte(nil), p...)
		q[f.FlipByte-off] ^= 0x01
		p = q
	}
	if f.ResetAfter > 0 && off+int64(len(p)) > f.ResetAfter {
		// Deliver the prefix up to the cut, then sever the connection.
		n, err := f.Conn.Write(p[:f.ResetAfter-off])
		f.written += int64(n)
		f.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("chaos: connection reset after %d bytes", f.ResetAfter)
	}
	n, err := f.Conn.Write(p)
	f.written += int64(n)
	return n, err
}

// Read delays the inbound stream when ReadDelay is armed.
func (f *FaultConn) Read(p []byte) (int, error) {
	if d := f.ReadDelay; d > 0 {
		time.Sleep(d)
	}
	return f.Conn.Read(p)
}

// Written returns how many bytes have passed through so far.
func (f *FaultConn) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}
