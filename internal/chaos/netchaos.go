package chaos

import (
	"fmt"
	"net"
	"sync"
)

// FaultConn wraps a net.Conn and injects deterministic transport faults
// into the written byte stream, for exercising the ingestion service's
// failure paths: frame corruption (caught by the frame CRC) and
// connection resets mid-stream. Faults are positioned by absolute byte
// offset of the write stream, so a test can aim past the handshake and
// into a chosen frame. The read side is passed through untouched.
type FaultConn struct {
	net.Conn

	// FlipByte, when >= 0, XORs 0x01 into the written byte at this
	// stream offset — a single-bit corruption the frame CRC must catch.
	FlipByte int64
	// ResetAfter, when > 0, closes the connection after this many bytes
	// have been written, tearing the stream mid-frame.
	ResetAfter int64

	mu      sync.Mutex
	written int64
}

// NewFaultConn returns a pass-through wrapper with no faults armed.
func NewFaultConn(c net.Conn) *FaultConn {
	return &FaultConn{Conn: c, FlipByte: -1}
}

// Write applies the armed faults to the outgoing stream.
func (f *FaultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	off := f.written
	if f.ResetAfter > 0 && off >= f.ResetAfter {
		f.Conn.Close()
		return 0, fmt.Errorf("chaos: connection reset after %d bytes", off)
	}
	if f.FlipByte >= off && f.FlipByte < off+int64(len(p)) {
		q := append([]byte(nil), p...)
		q[f.FlipByte-off] ^= 0x01
		p = q
	}
	if f.ResetAfter > 0 && off+int64(len(p)) > f.ResetAfter {
		// Deliver the prefix up to the cut, then sever the connection.
		n, err := f.Conn.Write(p[:f.ResetAfter-off])
		f.written += int64(n)
		f.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("chaos: connection reset after %d bytes", f.ResetAfter)
	}
	n, err := f.Conn.Write(p)
	f.written += int64(n)
	return n, err
}

// Written returns how many bytes have passed through so far.
func (f *FaultConn) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}
