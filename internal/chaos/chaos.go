// Package chaos is a fault-injection harness for the analysis pipeline:
// it corrupts valid traces in controlled ways (truncation, bit flips,
// duplicated / reordered / dropped events, out-of-protocol thread ids)
// and drives detectors through the corrupted streams via the full
// Scanner → Dispatcher(validator, quarantine) → Tool pipeline. The
// harness's contract, asserted by its tests and the racedetect -chaos
// smoke mode, is that no panic escapes the pipeline and every
// degradation is accounted for in the dispatcher's Health snapshot.
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Mode enumerates the corruption modes.
type Mode uint8

const (
	// Truncate cuts the encoded stream at an arbitrary byte offset,
	// modeling a crashed producer or torn file.
	Truncate Mode = iota
	// BitFlip flips random bits in the encoded stream, modeling storage
	// or transport corruption (it may hit the magic, the kind bytes, or
	// mid-varint).
	BitFlip
	// DuplicateEvents re-inserts copies of random events at random
	// positions, modeling an at-least-once transport.
	DuplicateEvents
	// ReorderEvents swaps random pairs of events, breaking program order
	// and the fork/join and lock protocols.
	ReorderEvents
	// DropSyncEvents deletes random synchronization events, silently
	// removing happens-before edges (unmatched acquires/releases, joins
	// of never-forked threads).
	DropSyncEvents
	// CorruptTids rewrites random events' thread ids to unknown, joined,
	// or absurdly large ids.
	CorruptTids

	numModes
)

// Modes returns every corruption mode.
func Modes() []Mode {
	ms := make([]Mode, numModes)
	for i := range ms {
		ms[i] = Mode(i)
	}
	return ms
}

func (m Mode) String() string {
	switch m {
	case Truncate:
		return "truncate"
	case BitFlip:
		return "bitflip"
	case DuplicateEvents:
		return "duplicate"
	case ReorderEvents:
		return "reorder"
	case DropSyncEvents:
		return "drop-sync"
	case CorruptTids:
		return "corrupt-tid"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Mutate returns a corrupted binary encoding of tr. Event-level modes
// mutate the event sequence and re-encode it (a well-formed encoding of
// a protocol-violating stream); byte-level modes corrupt the encoding
// itself. The result is deterministic in rng's stream.
func Mutate(tr trace.Trace, mode Mode, rng *rand.Rand) []byte {
	switch mode {
	case Truncate:
		raw := encode(tr)
		return raw[:rng.Intn(len(raw)+1)]
	case BitFlip:
		raw := encode(tr)
		if len(raw) == 0 {
			return raw
		}
		for i := 0; i < 1+len(raw)/64; i++ {
			pos := rng.Intn(len(raw))
			raw[pos] ^= 1 << uint(rng.Intn(8))
		}
		return raw
	case DuplicateEvents:
		out := append(trace.Trace(nil), tr...)
		for i := 0; i < 1+len(tr)/20; i++ {
			if len(out) == 0 {
				break
			}
			src := out[rng.Intn(len(out))]
			at := rng.Intn(len(out) + 1)
			out = append(out[:at], append(trace.Trace{src}, out[at:]...)...)
		}
		return encode(out)
	case ReorderEvents:
		out := append(trace.Trace(nil), tr...)
		for i := 0; i < 1+len(out)/20; i++ {
			if len(out) < 2 {
				break
			}
			a, b := rng.Intn(len(out)), rng.Intn(len(out))
			out[a], out[b] = out[b], out[a]
		}
		return encode(out)
	case DropSyncEvents:
		var out trace.Trace
		for _, e := range tr {
			if e.Kind.IsSync() && rng.Intn(2) == 0 {
				continue
			}
			out = append(out, e)
		}
		return encode(out)
	case CorruptTids:
		out := append(trace.Trace(nil), tr...)
		maxTid := int32(out.Threads())
		for i := 0; i < 1+len(out)/20; i++ {
			if len(out) == 0 {
				break
			}
			at := rng.Intn(len(out))
			e := out[at]
			if e.Kind == trace.BarrierRelease {
				continue
			}
			switch rng.Intn(3) {
			case 0: // unknown but plausible tid
				e.Tid = maxTid + 1 + int32(rng.Intn(8))
			case 1: // absurd tid (beyond the validator's cap)
				e.Tid = rr.DefaultMaxTid + 1 + int32(rng.Intn(1<<10))
			case 2: // collide with another thread
				e.Tid = int32(rng.Intn(int(maxTid) + 1))
			}
			out[at] = e
		}
		return encode(out)
	default:
		return encode(tr)
	}
}

func encode(tr trace.Trace) []byte {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		// Mutations keep tids in the codec's range; a failure here is a
		// harness bug.
		panic(fmt.Sprintf("chaos: encoding mutated trace: %v", err))
	}
	return buf.Bytes()
}

// Result is the outcome of driving one tool through one corrupted
// stream.
type Result struct {
	Mode    Mode
	Tool    string
	Seed    int64
	Events  int   // events decoded and offered to the dispatcher
	Races   int   // warnings reported by the tool afterwards
	ScanErr error // decode error that ended the stream, if any
	Health  rr.Health
	Stats   rr.Stats // tool stats merged with the dispatcher's counters
}

// Run corrupts tr with the given mode and seed, then feeds the result
// through tool under the given validation policy with panic quarantine
// engaged. Run itself installs no recover: a panic escaping the
// pipeline is a bug and crashes the caller (the tests rely on that).
func Run(tool rr.Tool, tr trace.Trace, mode Mode, seed int64, policy rr.Policy) Result {
	rng := rand.New(rand.NewSource(seed))
	raw := Mutate(tr, mode, rng)

	d := rr.NewDispatcher(tool)
	d.Policy = policy
	sc := trace.NewScanner(bytes.NewReader(raw))
	n := 0
	for sc.Scan() {
		d.Event(sc.Event())
		n++
	}
	st := tool.Stats()
	d.FillStats(&st)
	return Result{
		Mode:    mode,
		Tool:    tool.Name(),
		Seed:    seed,
		Events:  n,
		Races:   len(tool.Races()),
		ScanErr: sc.Err(),
		Health:  d.Health(),
		Stats:   st,
	}
}

// Check verifies the accounting invariants of a run: every violation is
// accounted as repaired, dropped, or the strict error, the quarantine
// only reports state consistent with observed panics, and the merged
// Stats agree with the Health snapshot.
func (r Result) Check() error {
	h := r.Health
	errored := int64(0)
	if h.Err != nil {
		errored = 1
	}
	if h.Violations != h.Repaired+h.Dropped+errored {
		return fmt.Errorf("chaos %s/%s seed %d: %d violations != %d repaired + %d dropped + %d errored",
			r.Mode, r.Tool, r.Seed, h.Violations, h.Repaired, h.Dropped, errored)
	}
	if h.ToolDisabled && h.Panics == 0 {
		return fmt.Errorf("chaos %s/%s seed %d: tool disabled without any panic", r.Mode, r.Tool, r.Seed)
	}
	if int64(h.QuarantinedLocations) > h.Panics {
		return fmt.Errorf("chaos %s/%s seed %d: %d quarantined locations from %d panics",
			r.Mode, r.Tool, r.Seed, h.QuarantinedLocations, h.Panics)
	}
	if r.Stats.Violations != h.Violations || r.Stats.Panics != h.Panics {
		return fmt.Errorf("chaos %s/%s seed %d: Stats (%d violations, %d panics) disagree with Health (%d, %d)",
			r.Mode, r.Tool, r.Seed, r.Stats.Violations, r.Stats.Panics, h.Violations, h.Panics)
	}
	return nil
}

// FaultyTool wraps a Tool and injects panics, exercising the
// dispatcher's quarantine: it panics instead of delegating whenever
// PanicIf returns true.
type FaultyTool struct {
	Inner   rr.Tool
	PanicIf func(i int, e trace.Event) bool
}

var _ rr.Tool = (*FaultyTool)(nil)

// Name implements rr.Tool.
func (f *FaultyTool) Name() string { return "Faulty(" + f.Inner.Name() + ")" }

// HandleEvent implements rr.Tool, panicking when PanicIf fires.
func (f *FaultyTool) HandleEvent(i int, e trace.Event) {
	if f.PanicIf != nil && f.PanicIf(i, e) {
		panic(fmt.Sprintf("chaos: injected fault at event %d (%s)", i, e))
	}
	f.Inner.HandleEvent(i, e)
}

// Races implements rr.Tool.
func (f *FaultyTool) Races() []rr.Report { return f.Inner.Races() }

// Stats implements rr.Tool.
func (f *FaultyTool) Stats() rr.Stats { return f.Inner.Stats() }
