package rr

import "fasttrack/trace"

// Granularity selects how memory locations map to shadow locations
// (Section 4, "Granularity").
type Granularity uint8

const (
	// Fine gives each variable its own shadow location (the default, and
	// the precise configuration).
	Fine Granularity = iota
	// Coarse groups FieldsPerObject consecutive variables into one shadow
	// location, modeling RoadRunner's one-VarState-per-object analysis.
	// It roughly halves memory at the cost of possible false alarms.
	Coarse
)

// FieldsPerObject is the number of consecutive variable ids folded into
// one shadow location under Coarse granularity. The workload generators
// allocate the fields of one simulated object contiguously, so integer
// division by this constant is exactly the paper's object-level shadowing.
const FieldsPerObject = 8

// Dispatcher feeds an event stream to a back-end tool, providing the
// RoadRunner services the paper describes:
//
//   - re-entrant lock acquires and releases (which are redundant) are
//     filtered out (Section 4);
//   - wait(t,m), recorded at wait entry, becomes rel(t,m) — the wake-up
//     is recorded separately as acq(t,m) — and notify is dropped
//     (Section 4, "Extensions");
//   - under Coarse granularity, variable ids are remapped to per-object
//     shadow locations.
type Dispatcher struct {
	Tool        Tool
	Granularity Granularity

	// FilteredReentrant counts redundant acquire/release events dropped.
	FilteredReentrant int64
	// Fed counts events offered to the dispatcher.
	Fed int64

	depth map[lockKey]int
	next  int // index of the next event forwarded to the tool
}

type lockKey struct {
	tid  int32
	lock uint64
}

// NewDispatcher returns a dispatcher feeding tool with fine granularity.
func NewDispatcher(tool Tool) *Dispatcher {
	return &Dispatcher{Tool: tool, depth: map[lockKey]int{}}
}

// MapVar applies the dispatcher's granularity to a variable id.
func (d *Dispatcher) MapVar(x uint64) uint64 {
	if d.Granularity == Coarse {
		return x / FieldsPerObject
	}
	return x
}

// Event offers one event to the dispatcher.
func (d *Dispatcher) Event(e trace.Event) {
	d.Fed++
	// Fast path: data accesses are >96% of the stream and need only the
	// granularity remap.
	if e.Kind == trace.Read || e.Kind == trace.Write {
		if d.Granularity == Coarse {
			e.Target /= FieldsPerObject
		}
		d.forward(e)
		return
	}
	if d.depth == nil {
		d.depth = map[lockKey]int{}
	}
	switch e.Kind {
	case trace.Acquire:
		k := lockKey{e.Tid, e.Target}
		d.depth[k]++
		if d.depth[k] > 1 {
			d.FilteredReentrant++
			return
		}
	case trace.Release:
		k := lockKey{e.Tid, e.Target}
		if d.depth[k] > 1 {
			d.depth[k]--
			d.FilteredReentrant++
			return
		}
		delete(d.depth, k)
	case trace.Wait:
		// Wait entry releases the monitor; the wake-up is a separate,
		// explicitly recorded acquire (Section 4). The depth bookkeeping
		// must see the release, or the wake-up acquire would be
		// misclassified as re-entrant.
		k := lockKey{e.Tid, e.Target}
		if d.depth[k] > 1 {
			// Waiting while holding the monitor re-entrantly: the JVM
			// releases all holds; we conservatively keep the re-entrant
			// depth and release the outermost hold only.
			d.depth[k]--
			d.FilteredReentrant++
			return
		}
		delete(d.depth, k)
		d.forward(trace.Rel(e.Tid, e.Target))
		return
	case trace.Notify:
		return // no happens-before edge (Section 4)
	}
	d.forward(e)
}

func (d *Dispatcher) forward(e trace.Event) {
	d.Tool.HandleEvent(d.next, e)
	d.next++
}

// Feed offers an entire trace.
func (d *Dispatcher) Feed(tr trace.Trace) {
	for _, e := range tr {
		d.Event(e)
	}
}

// Pipeline composes a prefilter with a downstream tool, the analog of
// RoadRunner's "-tool FastTrack:Velodrome" (Section 5.2): every event is
// handled by the prefilter, and only events the prefilter still considers
// interesting reach the downstream tool. Synchronization and transaction
// events always pass (the downstream analyses need them for their own
// happens-before and transaction tracking).
type Pipeline struct {
	Pre  Prefilter
	Back Tool
	// Passed/Filtered count data accesses forwarded/suppressed.
	Passed   int64
	Filtered int64
}

// Name implements Tool.
func (p *Pipeline) Name() string { return p.Pre.Name() + ":" + p.Back.Name() }

// HandleEvent implements Tool.
func (p *Pipeline) HandleEvent(i int, e trace.Event) {
	pass := p.Pre.HandleFilter(i, e)
	if !e.Kind.IsAccess() {
		pass = true
	}
	if pass {
		if e.Kind.IsAccess() {
			p.Passed++
		}
		p.Back.HandleEvent(i, e)
		return
	}
	p.Filtered++
}

// Races implements Tool; it returns the downstream tool's warnings.
func (p *Pipeline) Races() []Report { return p.Back.Races() }

// Stats implements Tool; it merges both halves' counters so the total
// instrumentation cost of the composed analysis is visible.
func (p *Pipeline) Stats() Stats {
	a, b := p.Pre.Stats(), p.Back.Stats()
	a.Events += b.Events
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.Syncs += b.Syncs
	a.VCAlloc += b.VCAlloc
	a.VCOp += b.VCOp
	a.LockSetOps += b.LockSetOps
	a.ShadowBytes += b.ShadowBytes
	return a
}
