package rr

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fasttrack/internal/obs"
	"fasttrack/trace"
)

// Granularity selects how memory locations map to shadow locations
// (Section 4, "Granularity").
type Granularity uint8

const (
	// Fine gives each variable its own shadow location (the default, and
	// the precise configuration).
	Fine Granularity = iota
	// Coarse groups FieldsPerObject consecutive variables into one shadow
	// location, modeling RoadRunner's one-VarState-per-object analysis.
	// It roughly halves memory at the cost of possible false alarms.
	Coarse
)

// FieldsPerObject is the number of consecutive variable ids folded into
// one shadow location under Coarse granularity. The workload generators
// allocate the fields of one simulated object contiguously, so integer
// division by this constant is exactly the paper's object-level shadowing.
const FieldsPerObject = 8

// Dispatcher feeds an event stream to a back-end tool, providing the
// RoadRunner services the paper describes:
//
//   - re-entrant lock acquires and releases (which are redundant) are
//     filtered out (Section 4);
//   - wait(t,m), recorded at wait entry, becomes rel(t,m) — the wake-up
//     is recorded separately as acq(t,m) — and notify is dropped
//     (Section 4, "Extensions");
//   - under Coarse granularity, variable ids are remapped to per-object
//     shadow locations.
//
// The dispatcher is additionally the pipeline's resilience layer: an
// optional stream validator (see Policy) checks well-formedness online,
// and every call into the tool is wrapped in a panic quarantine — a
// panicking HandleEvent never escapes to the caller; instead the
// offending shadow location is quarantined (skipped from then on) and,
// after MaxToolPanics panics, the whole tool is downgraded to a no-op
// that still serves the warnings and stats gathered so far. All
// degradation is visible in Health and the resilience fields of Stats.
type Dispatcher struct {
	Tool        Tool
	Granularity Granularity

	// Policy selects stream validation (default PolicyOff). Set before
	// feeding events.
	Policy Policy
	// MaxTid/MaxTarget override the validator's identifier caps
	// (DefaultMaxTid/DefaultMaxTarget when zero).
	MaxTid    int32
	MaxTarget uint64
	// MaxToolPanics is the number of recovered tool panics after which
	// the tool is downgraded to a no-op; DefaultMaxToolPanics when zero.
	MaxToolPanics int

	// FilteredReentrant counts redundant acquire/release events dropped.
	FilteredReentrant int64
	// Fed counts events offered to the dispatcher.
	Fed int64
	// UnheldReleases counts releases (and waits) with no matching acquire
	// that were intercepted rather than forwarded to the tool. Under a
	// validating policy these are repaired or dropped before reaching the
	// lock bookkeeping, so the counter stays zero.
	UnheldReleases int64

	// Obs, when non-nil, receives live pipeline metrics (rr.* namespace:
	// events fed, delivered by class, validator/quarantine accounting,
	// sampled per-event dispatch latency). Metrics are atomic, so a
	// concurrent goroutine may snapshot the registry while events flow;
	// the dispatcher itself remains single-threaded.
	Obs *obs.Registry

	depth map[lockKey]int
	next  int64 // index of the next event forwarded to the tool

	om *obsMetrics // cached metric handles, nil until Obs is set

	// deliveredKind counts events actually handed to the tool, indexed
	// by event kind — the dispatcher-side ground truth the detectors'
	// own Stats are audited against.
	deliveredKind [trace.ChanClose + 1]int64

	// concurrent switches the access-path bookkeeping (Fed, next,
	// deliveredKind, the quarantine check) to atomic operations so the
	// sharded Monitor may deliver Read/Write events from several
	// goroutines under its stripe-locking discipline. Sync events must
	// still be exclusively serialized by the caller. See SetConcurrent.
	concurrent bool

	val  *Validator
	verr error // sticky PolicyStrict validation error

	// cur holds the tool events are currently delivered to; it diverges
	// from the Tool field after a panic-budget downgrade. Kept atomic so
	// concurrent deliveries observe the downgrade without a lock.
	cur atomic.Value // toolBox

	// qmu guards the panic path below (panic accounting, quarantine
	// growth, tool downgrade); it is only taken when a tool panics.
	qmu             sync.Mutex
	panics          int64
	panicLog        []PanicRecord
	quarantined     atomic.Pointer[map[uint64]bool] // copy-on-write under qmu
	quarantinedHits int64                           // atomic
	disabled        bool
}

// toolBox wraps a Tool for atomic.Value, which requires a consistent
// concrete type across stores.
type toolBox struct{ t Tool }

// DefaultMaxToolPanics is the default panic budget before a tool is
// downgraded to a no-op.
const DefaultMaxToolPanics = 8

// maxPanicLog bounds the retained panic records.
const maxPanicLog = 8

// PanicRecord describes one recovered tool panic.
type PanicRecord struct {
	Index int         // event index at which the tool panicked
	Event trace.Event // the event being handled
	Value string      // the panic value, stringified
}

func (p PanicRecord) String() string {
	return fmt.Sprintf("panic at event %d (%s): %s", p.Index, p.Event, p.Value)
}

// Health is a degradation snapshot of the dispatcher's pipeline: it
// reports everything the resilience layer did instead of crashing. A
// healthy pipeline has Healthy == true and all counters zero.
type Health struct {
	// Healthy is true iff no degradation of any kind occurred.
	Healthy bool
	// ToolDisabled reports that the tool exceeded the panic budget and
	// was downgraded to a no-op.
	ToolDisabled bool
	// Panics counts tool panics recovered by the quarantine; PanicLog
	// holds the first few.
	Panics   int64
	PanicLog []PanicRecord
	// QuarantinedLocations is the number of shadow locations quarantined
	// after panics; QuarantinedAccesses counts accesses skipped because
	// their location was quarantined.
	QuarantinedLocations int
	QuarantinedAccesses  int64
	// Validator accounting: Violations == Repaired + Dropped, plus one if
	// Err is set (PolicyStrict). Synthesized counts repair events fed to
	// the tool. ViolationLog holds the first few violations.
	Violations   int64
	Repaired     int64
	Dropped      int64
	Synthesized  int64
	ViolationLog []Violation
	// UnheldReleases mirrors Dispatcher.UnheldReleases (PolicyOff only).
	UnheldReleases int64
	// Err is the sticky PolicyStrict validation error, if any.
	Err error
}

type lockKey struct {
	tid  int32
	lock uint64
}

// NewDispatcher returns a dispatcher feeding tool with fine granularity.
func NewDispatcher(tool Tool) *Dispatcher {
	return &Dispatcher{Tool: tool, depth: map[lockKey]int{}}
}

// MapVar applies the dispatcher's granularity to a variable id.
func (d *Dispatcher) MapVar(x uint64) uint64 {
	if d.Granularity == Coarse {
		return x / FieldsPerObject
	}
	return x
}

// SetConcurrent prepares the dispatcher for concurrent delivery of
// access events: per-event bookkeeping moves to atomic operations and
// the observability handles are resolved eagerly. The caller owns the
// locking discipline — accesses to different stripes may run in
// parallel, but sync events (and all queries) still require full
// exclusion, and the validation policy must stay PolicyOff. Must be
// called before the first event.
func (d *Dispatcher) SetConcurrent() {
	d.concurrent = true
	if d.Obs != nil && d.om == nil {
		d.initObs()
	}
}

// currentTool returns the tool events are delivered to right now: the
// configured Tool until a panic-budget downgrade swaps in its no-op
// wrapper.
func (d *Dispatcher) currentTool() Tool {
	if b, ok := d.cur.Load().(toolBox); ok {
		return b.t
	}
	return d.Tool
}

// CurrentTool exposes the delivery target for queries. Races and Stats
// should be read through it rather than through a caller-retained tool
// reference: after a downgrade the wrapper's recover guards contain a
// tool whose accessors panic too.
func (d *Dispatcher) CurrentTool() Tool { return d.currentTool() }

// Event offers one event to the dispatcher. Under PolicyStrict the first
// violation halts the stream (see Err); all later events are ignored.
func (d *Dispatcher) Event(e trace.Event) {
	var idx int64
	if d.concurrent {
		idx = atomic.AddInt64(&d.Fed, 1) - 1
	} else {
		idx = d.Fed
		d.Fed++
	}
	if d.Obs != nil && d.om == nil {
		d.initObs()
	}
	// In concurrent mode the per-event registry updates are skipped on
	// the hot path — each is an atomic RMW on a cache line shared by
	// every stripe — and reconciled in bulk by SyncObs instead.
	if d.om != nil && !d.concurrent {
		d.om.fed.Inc()
	}
	d.checked(idx, e)
}

// EventBatch offers a batch of events in order. It is semantically
// identical to calling Event once per element — validation, filtering,
// and delivery all stay per-event — but the fed accounting (Fed, the
// rr.events.fed counter) is amortized into one update per batch. idx
// passed to the validator is each event's position in the fed stream,
// exactly as the per-event path computes it.
func (d *Dispatcher) EventBatch(events []trace.Event) {
	n := int64(len(events))
	if n == 0 {
		return
	}
	var base int64
	if d.concurrent {
		base = atomic.AddInt64(&d.Fed, n) - n
	} else {
		base = d.Fed
		d.Fed += n
	}
	if d.Obs != nil && d.om == nil {
		d.initObs()
	}
	if d.om != nil && !d.concurrent {
		d.om.fed.Add(n)
	}
	for i := range events {
		d.checked(base+int64(i), events[i])
	}
}

// checked runs the post-accounting half of Event: the sticky strict
// error, the optional validator (fed position idx), and delivery.
func (d *Dispatcher) checked(idx int64, e trace.Event) {
	if d.verr != nil {
		return
	}
	if d.Policy != PolicyOff {
		if d.val == nil {
			d.val = NewValidator(d.Policy)
			d.val.SetCaps(d.MaxTid, d.MaxTarget)
		}
		repairs, drop, err := d.val.Check(int(idx), e)
		if d.om != nil {
			d.om.publishValidator(d.val)
		}
		if err != nil {
			d.verr = err
			return
		}
		if drop {
			return
		}
		for _, r := range repairs {
			d.process(r)
		}
	}
	d.process(e)
}

// AccessBatch delivers a run of data-access (Read/Write) events that
// the caller has serialized under a single stripe lock. It is the
// batched analog of per-event delivery in concurrent mode: the fed
// count and the delivery-index reservation are one atomic add each for
// the whole run, and the delivered-kind counters are added once per
// run instead of once per event. Requires SetConcurrent (and therefore
// PolicyOff); events must all be Read or Write, already mapped to the
// caller's stripe in shadow-location space.
func (d *Dispatcher) AccessBatch(events []trace.Event) {
	n := int64(len(events))
	if n == 0 {
		return
	}
	atomic.AddInt64(&d.Fed, n)
	base := int(atomic.AddInt64(&d.next, n) - n)
	var reads, writes int64
	for i := range events {
		e := events[i]
		if d.Granularity == Coarse {
			e.Target /= FieldsPerObject
		}
		// Reload the quarantine map per event: a delivery in this very
		// run may panic and quarantine a location later in the run.
		if q := d.quarantined.Load(); q != nil && (*q)[e.Target] {
			atomic.AddInt64(&d.quarantinedHits, 1)
			continue
		}
		if e.Kind == trace.Read {
			reads++
		} else {
			writes++
		}
		d.invoke(base+i, e)
	}
	if reads > 0 {
		atomic.AddInt64(&d.deliveredKind[trace.Read], reads)
	}
	if writes > 0 {
		atomic.AddInt64(&d.deliveredKind[trace.Write], writes)
	}
}

// Delivered returns how many events of kind k the dispatcher actually
// handed to the tool (after validation, filtering, wait expansion, and
// quarantine). Wait events are delivered as Release.
func (d *Dispatcher) Delivered(k trace.Kind) int64 {
	if int(k) >= len(d.deliveredKind) {
		return 0
	}
	return d.deliveredKind[k]
}

// DeliveredSyncs returns the number of delivered synchronization events
// (every delivered kind that is neither a data access nor a transaction
// marker).
func (d *Dispatcher) DeliveredSyncs() int64 {
	var n int64
	for k, c := range d.deliveredKind {
		if trace.Kind(k).IsSync() {
			n += c
		}
	}
	return n
}

// Err returns the sticky PolicyStrict validation error, if any.
func (d *Dispatcher) Err() error { return d.verr }

// process applies the framework services (re-entrant lock filtering,
// wait expansion, granularity) and forwards the event to the tool.
func (d *Dispatcher) process(e trace.Event) {
	// Fast path: data accesses are >96% of the stream and need only the
	// granularity remap.
	if e.Kind == trace.Read || e.Kind == trace.Write {
		if d.Granularity == Coarse {
			e.Target /= FieldsPerObject
		}
		d.forward(e)
		return
	}
	if d.depth == nil {
		d.depth = map[lockKey]int{}
	}
	switch e.Kind {
	case trace.Acquire:
		k := lockKey{e.Tid, e.Target}
		d.depth[k]++
		if d.depth[k] > 1 {
			d.filteredReentrant()
			return
		}
	case trace.Release:
		k := lockKey{e.Tid, e.Target}
		switch d.depth[k] {
		case 0:
			// Release with no matching acquire: never forwarded unchecked.
			// A validating policy repairs or drops it before it gets here;
			// under PolicyOff it is intercepted and counted.
			d.unheldRelease()
			return
		case 1:
			delete(d.depth, k)
		default:
			d.depth[k]--
			d.filteredReentrant()
			return
		}
	case trace.Wait:
		// Wait entry releases the monitor; the wake-up is a separate,
		// explicitly recorded acquire (Section 4). The depth bookkeeping
		// must see the release, or the wake-up acquire would be
		// misclassified as re-entrant.
		k := lockKey{e.Tid, e.Target}
		switch d.depth[k] {
		case 0:
			// Waiting on a lock the thread does not hold would forward a
			// release that never had an acquire; intercept it like an
			// unheld release.
			d.unheldRelease()
			return
		case 1:
			delete(d.depth, k)
		default:
			// Waiting while holding the monitor re-entrantly: the JVM
			// releases all holds; we conservatively keep the re-entrant
			// depth and release the outermost hold only.
			d.depth[k]--
			d.filteredReentrant()
			return
		}
		d.forward(trace.Rel(e.Tid, e.Target))
		return
	case trace.Notify:
		return // no happens-before edge (Section 4)
	}
	d.forward(e)
}

func (d *Dispatcher) forward(e trace.Event) {
	var i int
	if d.concurrent {
		i = int(atomic.AddInt64(&d.next, 1)) - 1
	} else {
		i = int(d.next)
		d.next++
	}
	if q := d.quarantined.Load(); q != nil && e.Kind.IsAccess() && (*q)[e.Target] {
		atomic.AddInt64(&d.quarantinedHits, 1)
		return
	}
	d.deliver(i, e)
}

func (d *Dispatcher) filteredReentrant() {
	d.FilteredReentrant++
	if d.om != nil {
		d.om.filtered.Inc()
	}
}

func (d *Dispatcher) unheldRelease() {
	d.UnheldReleases++
	if d.om != nil {
		d.om.unheld.Inc()
	}
}

// deliver counts the event into the per-kind delivery counters and
// hands it to the tool.
func (d *Dispatcher) deliver(i int, e trace.Event) {
	if int(e.Kind) < len(d.deliveredKind) {
		if d.concurrent {
			atomic.AddInt64(&d.deliveredKind[e.Kind], 1)
		} else {
			d.deliveredKind[e.Kind]++
		}
	}
	if d.om != nil && !d.concurrent {
		d.om.countDelivered(e.Kind)
	}
	d.invoke(i, e)
}

// invoke hands the event to the tool inside the panic quarantine.
// AccessBatch calls it directly, having batched the kind counters.
func (d *Dispatcher) invoke(i int, e trace.Event) {
	if d.om != nil {
		// Sample 1 in latencySampleEvery deliveries into the latency
		// histogram; registered before the recover defer (LIFO) so a
		// panicking delivery is still timed. The histogram is kept in
		// concurrent mode too: at a 1/64 sampling rate the atomic bucket
		// updates are contention-free in practice.
		if i%latencySampleEvery == 0 {
			start := time.Now()
			defer func() { d.om.latency.Observe(time.Since(start).Nanoseconds()) }()
		}
	}
	defer func() {
		if r := recover(); r != nil {
			d.recoverPanic(i, e, r)
		}
	}()
	d.currentTool().HandleEvent(i, e)
}

// recoverPanic is the quarantine's slow path: account the panic, put
// the offending location in quarantine, and downgrade the tool once the
// panic budget is spent. Serialized by qmu because under concurrent
// delivery two stripes can panic at once.
func (d *Dispatcher) recoverPanic(i int, e trace.Event, r any) {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	d.panics++
	if len(d.panicLog) < maxPanicLog {
		d.panicLog = append(d.panicLog, PanicRecord{Index: i, Event: e, Value: fmt.Sprint(r)})
	}
	if e.Kind.IsAccess() {
		// Copy-on-write so the lock-free quarantine check in forward
		// never observes a map mid-update.
		old := d.quarantined.Load()
		var next map[uint64]bool
		if old == nil {
			next = make(map[uint64]bool, 1)
		} else {
			next = make(map[uint64]bool, len(*old)+1)
			for k, v := range *old {
				next[k] = v
			}
		}
		next[e.Target] = true
		d.quarantined.Store(&next)
	}
	if d.om != nil {
		d.om.panics.Inc()
		d.om.quarantine.Set(int64(d.quarantinedLen()))
	}
	max := d.MaxToolPanics
	if max <= 0 {
		max = DefaultMaxToolPanics
	}
	if !d.disabled && d.panics >= int64(max) {
		wrapped := &disabledTool{inner: d.currentTool()}
		d.cur.Store(toolBox{wrapped})
		if !d.concurrent {
			// Serial callers historically observe the downgrade through the
			// Tool field itself. Under concurrent delivery other goroutines
			// read Tool without a lock (currentTool's fallback), so the
			// plain field stays put and readers must use CurrentTool.
			d.Tool = wrapped
		}
		d.disabled = true
	}
}

func (d *Dispatcher) quarantinedLen() int {
	if q := d.quarantined.Load(); q != nil {
		return len(*q)
	}
	return 0
}

// Quarantined reports whether shadow location x is quarantined.
func (d *Dispatcher) Quarantined(x uint64) bool {
	q := d.quarantined.Load()
	return q != nil && (*q)[x]
}

// Health returns a degradation snapshot of the pipeline.
func (d *Dispatcher) Health() Health {
	h := Health{
		ToolDisabled:         d.disabled,
		Panics:               d.panics,
		PanicLog:             append([]PanicRecord(nil), d.panicLog...),
		QuarantinedLocations: d.quarantinedLen(),
		QuarantinedAccesses:  atomic.LoadInt64(&d.quarantinedHits),
		UnheldReleases:       d.UnheldReleases,
		Err:                  d.verr,
	}
	if d.val != nil {
		h.Violations = d.val.Violations
		h.Repaired = d.val.Repaired
		h.Dropped = d.val.Dropped
		h.Synthesized = d.val.Synthesized
		h.ViolationLog = append([]Violation(nil), d.val.Log...)
	}
	h.Healthy = h.Panics == 0 && !h.ToolDisabled && h.Violations == 0 &&
		h.UnheldReleases == 0 && h.Err == nil
	return h
}

// FillStats merges the dispatcher's resilience counters into st, which
// should be the wrapped tool's own Stats snapshot. Unheld releases get
// their own field: folding them into Dropped (which counts validator
// drops) used to break the documented Violations == Repaired + Dropped
// invariant under PolicyOff, where interceptions happen without any
// validator violation being recorded.
func (d *Dispatcher) FillStats(st *Stats) {
	st.Panics += d.panics
	st.Quarantined += int64(d.quarantinedLen())
	st.UnheldReleases += d.UnheldReleases
	if d.val != nil {
		st.Violations += d.val.Violations
		st.Repaired += d.val.Repaired
		st.Dropped += d.val.Dropped
	}
}

// disabledTool is the downgrade target for a tool that exceeded the
// panic budget: the EMPTY-tool analysis (events are no longer delivered)
// that still serves the warnings and statistics collected before the
// downgrade. Its queries guard against a tool whose accessors also
// panic.
type disabledTool struct{ inner Tool }

func (t *disabledTool) Name() (name string) {
	name = "disabled"
	defer func() { _ = recover() }()
	return t.inner.Name() + " (disabled)"
}

func (t *disabledTool) HandleEvent(int, trace.Event) {}

func (t *disabledTool) Races() (rs []Report) {
	defer func() { _ = recover() }()
	return t.inner.Races()
}

func (t *disabledTool) Stats() (st Stats) {
	defer func() { _ = recover() }()
	return t.inner.Stats()
}

// Feed offers an entire trace.
func (d *Dispatcher) Feed(tr trace.Trace) {
	for _, e := range tr {
		d.Event(e)
	}
}

// Pipeline composes a prefilter with a downstream tool, the analog of
// RoadRunner's "-tool FastTrack:Velodrome" (Section 5.2): every event is
// handled by the prefilter, and only events the prefilter still considers
// interesting reach the downstream tool. Synchronization and transaction
// events always pass (the downstream analyses need them for their own
// happens-before and transaction tracking).
type Pipeline struct {
	Pre  Prefilter
	Back Tool
	// Passed/Filtered count data accesses forwarded/suppressed.
	Passed   int64
	Filtered int64
}

// Name implements Tool.
func (p *Pipeline) Name() string { return p.Pre.Name() + ":" + p.Back.Name() }

// HandleEvent implements Tool.
func (p *Pipeline) HandleEvent(i int, e trace.Event) {
	pass := p.Pre.HandleFilter(i, e)
	if !e.Kind.IsAccess() {
		pass = true
	}
	if pass {
		if e.Kind.IsAccess() {
			p.Passed++
		}
		p.Back.HandleEvent(i, e)
		return
	}
	p.Filtered++
}

// Races implements Tool; it returns the downstream tool's warnings.
func (p *Pipeline) Races() []Report { return p.Back.Races() }

// Stats implements Tool; it merges both halves' counters so the total
// instrumentation cost of the composed analysis is visible.
func (p *Pipeline) Stats() Stats {
	a := p.Pre.Stats()
	a.Merge(p.Back.Stats())
	return a
}
