package rr

import (
	"reflect"
	"testing"

	"fasttrack/trace"
)

func TestRecorderCapturesStream(t *testing.T) {
	r := NewRecorder()
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 1),
		trace.Rd(1, 1),
		trace.Barrier(0, 0, 1),
	}
	for i, e := range tr {
		r.HandleEvent(i, e)
	}
	if !reflect.DeepEqual(r.Trace(), tr) {
		t.Errorf("recorded %v, want %v", r.Trace(), tr)
	}
	if r.Races() != nil {
		t.Error("recorder must not warn")
	}
	st := r.Stats()
	if st.Events != 4 || st.Reads != 1 || st.Writes != 1 || st.Syncs != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.ShadowBytes == 0 {
		t.Error("recorder storage not accounted")
	}
	if r.Name() != "Recorder" {
		t.Error("bad name")
	}
}

func TestRecorderCopiesBarrierTids(t *testing.T) {
	r := NewRecorder()
	tids := []int32{0, 1}
	r.HandleEvent(0, trace.Event{Kind: trace.BarrierRelease, Tids: tids})
	tids[0] = 99 // caller mutates its slice
	if r.Trace()[0].Tids[0] != 0 {
		t.Error("recorder must own the barrier participant set")
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := &recorderTool{}, &recorderTool{}
	tee := NewTee(a, b)
	if tee.Name() != "Tee(recorder,recorder)" {
		t.Errorf("Name = %q", tee.Name())
	}
	tee.HandleEvent(0, trace.Rd(0, 1))
	tee.HandleEvent(1, trace.Wr(0, 2))
	if len(a.events) != 2 || len(b.events) != 2 {
		t.Errorf("fan-out failed: %d/%d", len(a.events), len(b.events))
	}
	if st := tee.Stats(); st.Events != 4 {
		t.Errorf("summed Events = %d, want 4", st.Events)
	}
	if got := tee.Races(); len(got) != 2 {
		t.Errorf("concatenated races = %v", got)
	}
}

// recorderTool is a minimal tool that records events and reports one
// fixed warning.
type recorderTool struct {
	events []trace.Event
	st     Stats
}

func (r *recorderTool) Name() string { return "recorder" }
func (r *recorderTool) HandleEvent(_ int, e trace.Event) {
	r.events = append(r.events, e)
	r.st.Events++
}
func (r *recorderTool) Races() []Report { return []Report{{Var: 1}} }
func (r *recorderTool) Stats() Stats    { return r.st }

func TestMapVar(t *testing.T) {
	d := NewDispatcher(nil)
	if d.MapVar(17) != 17 {
		t.Error("fine granularity must be identity")
	}
	d.Granularity = Coarse
	if d.MapVar(17) != 17/FieldsPerObject {
		t.Error("coarse granularity must fold fields")
	}
}
