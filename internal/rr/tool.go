// Package rr is this module's analog of the RoadRunner dynamic-analysis
// framework (Section 4 of the FastTrack paper): it defines the back-end
// tool interface shared by all seven checkers, the race-report and
// statistics types, an event dispatcher that performs RoadRunner's
// services (re-entrant lock filtering, wait expansion, shadow-location
// granularity), and prefilter pipelines for composing analyses
// (Section 5.2, "-tool FastTrack:Velodrome").
package rr

import (
	"fmt"

	"fasttrack/trace"
)

// RaceKind classifies a warning.
type RaceKind uint8

const (
	// WriteWrite is a race between two writes.
	WriteWrite RaceKind = iota
	// WriteRead is a race between a write and a later read.
	WriteRead
	// ReadWrite is a race between a read and a later write.
	ReadWrite
	// LockSetViolation is an imprecise (Eraser-style) warning: no lock was
	// consistently held on every access to the location. It may or may not
	// correspond to a real race.
	LockSetViolation
	// AtomicityViolation is reported by the Atomizer- and Velodrome-style
	// checkers of Section 5.2: a transaction is not serializable.
	AtomicityViolation
	// DeterminismViolation is reported by the SingleTrack-style checker:
	// inter-thread communication depends on lock-acquisition order.
	DeterminismViolation
	// DeadlockPotential is reported by the Goodlock-style lock-order
	// analysis: a cycle in the lock acquisition graph means some schedule
	// can deadlock, even if the observed one did not.
	DeadlockPotential
)

func (k RaceKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write race"
	case WriteRead:
		return "write-read race"
	case ReadWrite:
		return "read-write race"
	case LockSetViolation:
		return "empty lockset"
	case AtomicityViolation:
		return "atomicity violation"
	case DeterminismViolation:
		return "determinism violation"
	case DeadlockPotential:
		return "potential deadlock"
	default:
		return fmt.Sprintf("race-kind(%d)", uint8(k))
	}
}

// Report is one warning. Tools report at most one warning per variable
// (the paper reports at most one race per field of each class).
type Report struct {
	Var     uint64   // the shadow location (after any granularity remap)
	Kind    RaceKind // what conflicted
	Tid     int32    // thread performing the second (racing) access
	PrevTid int32    // thread of the prior conflicting access; -1 if unknown
	Index   int      // index of the racing event in the trace
	// PrevIndex is the event index of the prior conflicting access, when
	// the tool tracks access history (FastTrack with detailed reports
	// enabled); -1 otherwise. With a recorded trace it pinpoints both
	// halves of the race.
	PrevIndex int
}

func (r Report) String() string {
	if r.PrevTid >= 0 {
		return fmt.Sprintf("%s on x%d: thread %d conflicts with thread %d (event %d)",
			r.Kind, r.Var, r.Tid, r.PrevTid, r.Index)
	}
	return fmt.Sprintf("%s on x%d: thread %d (event %d)", r.Kind, r.Var, r.Tid, r.Index)
}

// Stats are the instrumentation counters every tool maintains; the
// evaluation harness derives Table 2 (VC allocations / VC operations),
// Table 3 (shadow bytes), and the Figure 2 rule frequencies from them.
type Stats struct {
	Events int64 // events handled
	Reads  int64
	Writes int64
	Syncs  int64

	VCAlloc int64 // vector clocks allocated
	VCOp    int64 // O(n)-time vector clock operations (copy, join, compare)

	// FastTrack / DJIT+ rule counters (Figure 2). For DJIT+,
	// ReadExclusive/WriteExclusive count the generic [DJIT+ READ]/[WRITE]
	// rules and the Share/Shared counters stay zero.
	ReadSameEpoch  int64
	ReadShared     int64
	ReadExclusive  int64
	ReadShare      int64
	WriteSameEpoch int64
	WriteExclusive int64
	WriteShared    int64

	LockSetOps  int64 // Eraser-style lock set updates/intersections
	ShadowBytes int64 // live shadow-memory footprint, computed by Stats()

	// Resilience counters, filled in by the Dispatcher (via Monitor.Stats
	// or Dispatcher.FillStats); always zero for a bare tool.
	Panics      int64 // tool panics recovered by the quarantine
	Quarantined int64 // shadow locations quarantined after panics
	Violations  int64 // stream well-formedness violations observed
	Repaired    int64 // violations repaired by synthesizing events
	Dropped     int64 // events dropped (violations and unheld releases)

	// Memory-budget degradation, maintained by detectors that support a
	// shadow-memory budget (FastTrack).
	MemSqueezes int64 // read vector clocks forcibly squeezed to epochs
	MemCoarse   int64 // accesses remapped to coarse shadowing by the budget
}

// Tool is a back-end dynamic analysis: it consumes the event stream one
// operation at a time and accumulates warnings and statistics. Tools are
// not safe for concurrent use; the thread-safe public Monitor serializes
// events before they reach a tool.
type Tool interface {
	// Name identifies the tool ("FastTrack", "DJIT+", ...).
	Name() string
	// HandleEvent processes event e, the i'th operation of the trace.
	HandleEvent(i int, e trace.Event)
	// Races returns the warnings reported so far, in detection order.
	Races() []Report
	// Stats returns the current counters, including a freshly computed
	// shadow-memory footprint.
	Stats() Stats
}

// Prefilter is implemented by tools that can act as event filters for a
// downstream analysis (Section 5.2): HandleFilter processes the event and
// additionally reports whether the event is still "interesting" — i.e.
// not yet proven redundant/race-free — and therefore must be passed on.
type Prefilter interface {
	Tool
	HandleFilter(i int, e trace.Event) bool
}
