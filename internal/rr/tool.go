// Package rr is this module's analog of the RoadRunner dynamic-analysis
// framework (Section 4 of the FastTrack paper): it defines the back-end
// tool interface shared by all seven checkers, the race-report and
// statistics types, an event dispatcher that performs RoadRunner's
// services (re-entrant lock filtering, wait expansion, shadow-location
// granularity), and prefilter pipelines for composing analyses
// (Section 5.2, "-tool FastTrack:Velodrome").
package rr

import (
	"fmt"

	"fasttrack/trace"
)

// RaceKind classifies a warning.
type RaceKind uint8

const (
	// WriteWrite is a race between two writes.
	WriteWrite RaceKind = iota
	// WriteRead is a race between a write and a later read.
	WriteRead
	// ReadWrite is a race between a read and a later write.
	ReadWrite
	// LockSetViolation is an imprecise (Eraser-style) warning: no lock was
	// consistently held on every access to the location. It may or may not
	// correspond to a real race.
	LockSetViolation
	// AtomicityViolation is reported by the Atomizer- and Velodrome-style
	// checkers of Section 5.2: a transaction is not serializable.
	AtomicityViolation
	// DeterminismViolation is reported by the SingleTrack-style checker:
	// inter-thread communication depends on lock-acquisition order.
	DeterminismViolation
	// DeadlockPotential is reported by the Goodlock-style lock-order
	// analysis: a cycle in the lock acquisition graph means some schedule
	// can deadlock, even if the observed one did not.
	DeadlockPotential
)

func (k RaceKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write race"
	case WriteRead:
		return "write-read race"
	case ReadWrite:
		return "read-write race"
	case LockSetViolation:
		return "empty lockset"
	case AtomicityViolation:
		return "atomicity violation"
	case DeterminismViolation:
		return "determinism violation"
	case DeadlockPotential:
		return "potential deadlock"
	default:
		return fmt.Sprintf("race-kind(%d)", uint8(k))
	}
}

// Report is one warning. Tools report at most one warning per variable
// (the paper reports at most one race per field of each class).
type Report struct {
	Var     uint64   // the shadow location (after any granularity remap)
	Kind    RaceKind // what conflicted
	Tid     int32    // thread performing the second (racing) access
	PrevTid int32    // thread of the prior conflicting access; -1 if unknown
	Index   int      // index of the racing event in the trace
	// PrevIndex is the event index of the prior conflicting access, when
	// the tool tracks access history (FastTrack with detailed reports
	// enabled); -1 otherwise. With a recorded trace it pinpoints both
	// halves of the race.
	PrevIndex int
}

func (r Report) String() string {
	if r.PrevTid >= 0 {
		if r.PrevIndex >= 0 {
			return fmt.Sprintf("%s on x%d: thread %d (event %d) conflicts with thread %d (event %d)",
				r.Kind, r.Var, r.Tid, r.Index, r.PrevTid, r.PrevIndex)
		}
		return fmt.Sprintf("%s on x%d: thread %d conflicts with thread %d (event %d)",
			r.Kind, r.Var, r.Tid, r.PrevTid, r.Index)
	}
	return fmt.Sprintf("%s on x%d: thread %d (event %d)", r.Kind, r.Var, r.Tid, r.Index)
}

// Stats are the instrumentation counters every tool maintains; the
// evaluation harness derives Table 2 (VC allocations / VC operations),
// Table 3 (shadow bytes), and the Figure 2 rule frequencies from them.
// The JSON tags define the stable schema of the machine-readable run
// report (racedetect -json) and the metrics snapshot.
type Stats struct {
	Events int64 `json:"events"` // events handled
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Syncs  int64 `json:"syncs"`

	// Per-kind synchronization breakdown (the operation-mix columns of
	// the paper's Table 2): Acquires + Releases + Forks + Joins +
	// Volatiles + Barriers + Waits == Syncs for every detector that
	// counts via CountKind. Waits stays zero behind the Dispatcher,
	// which expands wait into release before delivery.
	Acquires  int64 `json:"acquires,omitempty"`
	Releases  int64 `json:"releases,omitempty"`
	Forks     int64 `json:"forks,omitempty"`
	Joins     int64 `json:"joins,omitempty"`
	Volatiles int64 `json:"volatiles,omitempty"` // volatile reads + writes
	Barriers  int64 `json:"barriers,omitempty"`
	Waits     int64 `json:"waits,omitempty"`
	// Channels counts chsend/chrecv/chclose events, the channel
	// happens-before edges of the Go memory model (DESIGN.md §14).
	Channels int64 `json:"channels,omitempty"`
	// Markers counts transaction boundary events (txbegin/txend), which
	// carry no happens-before edge and are outside Syncs.
	Markers int64 `json:"markers,omitempty"`

	VCAlloc int64 `json:"vcAlloc,omitempty"` // vector clocks allocated
	VCOp    int64 `json:"vcOps,omitempty"`   // O(n)-time vector clock operations (copy, join, compare)

	// FastTrack / DJIT+ rule counters (Figure 2). For DJIT+,
	// ReadExclusive/WriteExclusive count the generic [DJIT+ READ]/[WRITE]
	// rules and the Share/Shared counters stay zero.
	ReadSameEpoch  int64 `json:"readSameEpoch,omitempty"`
	ReadShared     int64 `json:"readShared,omitempty"`
	ReadExclusive  int64 `json:"readExclusive,omitempty"`
	ReadShare      int64 `json:"readShare,omitempty"`
	WriteSameEpoch int64 `json:"writeSameEpoch,omitempty"`
	WriteExclusive int64 `json:"writeExclusive,omitempty"`
	WriteShared    int64 `json:"writeShared,omitempty"`

	// Ownership-transition counters for the MultiRace-style detector,
	// whose state machine has a thread-owned phase before any vector
	// clocks exist: accesses handled entirely in the owned (virgin or
	// exclusive) states. Zero for every other tool.
	ReadOwned  int64 `json:"readOwned,omitempty"`
	WriteOwned int64 `json:"writeOwned,omitempty"`

	LockSetOps  int64 `json:"lockSetOps,omitempty"`  // Eraser-style lock set updates/intersections
	ShadowBytes int64 `json:"shadowBytes,omitempty"` // live shadow-memory footprint, computed by Stats()

	// Resilience counters, filled in by the Dispatcher (via Monitor.Stats
	// or Dispatcher.FillStats); always zero for a bare tool.
	Panics      int64 `json:"panics,omitempty"`      // tool panics recovered by the quarantine
	Quarantined int64 `json:"quarantined,omitempty"` // shadow locations quarantined after panics
	Violations  int64 `json:"violations,omitempty"`  // stream well-formedness violations observed
	Repaired    int64 `json:"repaired,omitempty"`    // violations repaired by synthesizing events
	Dropped     int64 `json:"dropped,omitempty"`     // validator-rejected events dropped from the stream

	// UnheldReleases counts releases of unheld locks intercepted by the
	// dispatcher before reaching the tool. They are tracked separately
	// from Dropped so that Violations == Repaired + Dropped holds exactly
	// for the validator's own accounting under every policy.
	UnheldReleases int64 `json:"unheldReleases,omitempty"`

	// Memory-budget degradation, maintained by detectors that support a
	// shadow-memory budget (FastTrack).
	MemSqueezes int64 `json:"memSqueezes,omitempty"` // read vector clocks forcibly squeezed to epochs
	MemCoarse   int64 `json:"memCoarse,omitempty"`   // accesses remapped to coarse shadowing by the budget

	// SampledOut counts accesses skipped by the sampling tier (see
	// Sampled): they are included in Reads/Writes/Events but received no
	// shadow-state maintenance. DetectionProbability derives from it.
	SampledOut int64 `json:"sampledOut,omitempty"`

	// ClockSaturations counts increments of a thread clock that had
	// already reached the epoch format's MaxClock (2^40-1). A saturated
	// thread's epoch stops advancing, so later accesses by it may be
	// treated as ordered when they are not — races can be missed, never
	// invented. Nonzero means the session has outlived the clock width
	// and its precision is degrading; long-running deployments should
	// recycle the session (the downgrade/Reset machinery) when this
	// starts moving.
	ClockSaturations int64 `json:"clockSaturations,omitempty"`
}

// DetectionProbability is the fraction of offered accesses that were
// fully analyzed: 1.0 at full fidelity, (Reads+Writes-SampledOut) /
// (Reads+Writes) under sampling. It bounds the per-variable race
// detection probability of the run — a race on a sampled-out variable
// cannot be reported — and is surfaced alongside race reports wherever
// stats are (run reports, wire results, /sessions).
func (s Stats) DetectionProbability() float64 {
	accesses := s.Reads + s.Writes
	if accesses == 0 || s.SampledOut <= 0 {
		return 1
	}
	if s.SampledOut >= accesses {
		return 0
	}
	return float64(accesses-s.SampledOut) / float64(accesses)
}

// CountKind records one synchronization or transaction-marker event in
// both the aggregate Syncs counter and the per-kind breakdown. Access
// events are intentionally not handled here: every detector counts
// reads and writes inside its access fast paths (where the rule
// taxonomy is attributed), so routing them through CountKind as well
// would double-count. Wait and Notify never reach a tool behind the
// Dispatcher; the cases exist for tools driven directly in tests.
func (s *Stats) CountKind(k trace.Kind) {
	switch k {
	case trace.Acquire:
		s.Syncs++
		s.Acquires++
	case trace.Release:
		s.Syncs++
		s.Releases++
	case trace.Fork:
		s.Syncs++
		s.Forks++
	case trace.Join:
		s.Syncs++
		s.Joins++
	case trace.VolatileRead, trace.VolatileWrite:
		s.Syncs++
		s.Volatiles++
	case trace.BarrierRelease:
		s.Syncs++
		s.Barriers++
	case trace.Wait:
		s.Syncs++
		s.Waits++
	case trace.ChanSend, trace.ChanRecv, trace.ChanClose:
		s.Syncs++
		s.Channels++
	case trace.TxBegin, trace.TxEnd:
		s.Markers++
	}
}

// SyncKindSum is the sum of the per-kind sync counters; for a detector
// that counts via CountKind it equals Syncs exactly (the accounting
// invariant the observability tests assert).
func (s Stats) SyncKindSum() int64 {
	return s.Acquires + s.Releases + s.Forks + s.Joins + s.Volatiles + s.Barriers + s.Waits + s.Channels
}

// Merge adds every counter of o into s. Tee and Pipeline use it to
// combine component stats, so new fields only need to be added here.
func (s *Stats) Merge(o Stats) {
	s.Events += o.Events
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Syncs += o.Syncs
	s.Acquires += o.Acquires
	s.Releases += o.Releases
	s.Forks += o.Forks
	s.Joins += o.Joins
	s.Volatiles += o.Volatiles
	s.Barriers += o.Barriers
	s.Waits += o.Waits
	s.Channels += o.Channels
	s.Markers += o.Markers
	s.VCAlloc += o.VCAlloc
	s.VCOp += o.VCOp
	s.ReadSameEpoch += o.ReadSameEpoch
	s.ReadShared += o.ReadShared
	s.ReadExclusive += o.ReadExclusive
	s.ReadShare += o.ReadShare
	s.WriteSameEpoch += o.WriteSameEpoch
	s.WriteExclusive += o.WriteExclusive
	s.WriteShared += o.WriteShared
	s.ReadOwned += o.ReadOwned
	s.WriteOwned += o.WriteOwned
	s.LockSetOps += o.LockSetOps
	s.ShadowBytes += o.ShadowBytes
	s.Panics += o.Panics
	s.Quarantined += o.Quarantined
	s.Violations += o.Violations
	s.Repaired += o.Repaired
	s.Dropped += o.Dropped
	s.UnheldReleases += o.UnheldReleases
	s.MemSqueezes += o.MemSqueezes
	s.MemCoarse += o.MemCoarse
	s.SampledOut += o.SampledOut
	s.ClockSaturations += o.ClockSaturations
}

// Tool is a back-end dynamic analysis: it consumes the event stream one
// operation at a time and accumulates warnings and statistics. Tools are
// not safe for concurrent use; the thread-safe public Monitor serializes
// events before they reach a tool.
type Tool interface {
	// Name identifies the tool ("FastTrack", "DJIT+", ...).
	Name() string
	// HandleEvent processes event e, the i'th operation of the trace.
	HandleEvent(i int, e trace.Event)
	// Races returns the warnings reported so far, in detection order.
	Races() []Report
	// Stats returns the current counters, including a freshly computed
	// shadow-memory footprint.
	Stats() Stats
}

// Prefilter is implemented by tools that can act as event filters for a
// downstream analysis (Section 5.2): HandleFilter processes the event and
// additionally reports whether the event is still "interesting" — i.e.
// not yet proven redundant/race-free — and therefore must be passed on.
type Prefilter interface {
	Tool
	HandleFilter(i int, e trace.Event) bool
}

// Sampled is implemented by tools that support per-variable sampled
// analysis: a degraded fidelity mode in which accesses to variables
// outside the sampled set are counted (Events/Reads/Writes/SampledOut)
// but receive no shadow-state maintenance, trading detection
// probability for per-event cost and bounded shadow growth.
//
// The contract a conforming implementation must honor, because the
// fidelity governor changes the rate mid-stream:
//
//   - The sampling decision is a pure function of the variable id and
//     the current rate — never of shadow state — and the skip path must
//     not mutate any shadow state. Synchronization events are always
//     processed at full fidelity so happens-before clocks stay exact.
//   - Consequently every race reported under any rate schedule is a
//     race the same tool reports at rate 1.0 on the same stream (no
//     sampling-induced false positives), and rate 1.0 is byte-identical
//     to never having called SetSamplingRate.
//
// SetSamplingRate must be called under the same exclusion as
// synchronization events (the Monitor's full write lock); reading the
// rate on the access path is safe under the usual stripe discipline.
type Sampled interface {
	Tool
	// SetSamplingRate sets the fraction of variables analyzed at full
	// fidelity: 1 (or anything above) restores full analysis, 0 sheds
	// every access, values between sample the variable space
	// deterministically so a variable's verdict is stable at a fixed
	// rate and monotone in the rate (raising p only adds variables).
	SetSamplingRate(p float64)
	// SamplingRate reports the current rate.
	SamplingRate() float64
}
