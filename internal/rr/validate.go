package rr

import (
	"fmt"
	"strings"

	"fasttrack/trace"
)

// This file implements the Dispatcher's online stream validator: a
// resilience layer that checks the well-formedness constraints of the
// paper's Section 2.1 (plus resource-safety caps on identifiers) one
// event at a time, and — unlike trace.Validator, which only rejects —
// can repair or drop malformed events so that analysis of hostile or
// damaged streams degrades gracefully instead of aborting. Every
// deviation is counted and surfaced through Dispatcher.Health and the
// resilience fields of Stats.

// Policy selects how the Dispatcher responds to stream well-formedness
// violations.
type Policy uint8

const (
	// PolicyOff disables validation. The dispatcher still never forwards
	// a release with no matching acquire to the tool (it is intercepted
	// and counted in UnheldReleases); everything else is trusted.
	PolicyOff Policy = iota
	// PolicyStrict stops the stream at the first violation; the error is
	// available from Dispatcher.Err and Health.
	PolicyStrict
	// PolicyRepair synthesizes the missing protocol events (a fork for an
	// unknown thread, an acquire for an unheld release, ...) and keeps
	// going; irreparable events are dropped. All of it is counted.
	PolicyRepair
	// PolicyDrop skips every offending event and keeps going.
	PolicyDrop
)

// String returns the mnemonic accepted by PolicyFromString.
func (p Policy) String() string {
	switch p {
	case PolicyOff:
		return "off"
	case PolicyStrict:
		return "strict"
	case PolicyRepair:
		return "repair"
	case PolicyDrop:
		return "drop"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// PolicyFromString parses a policy mnemonic ("off", "strict", "repair",
// "drop"); the boolean reports whether it was recognized.
func PolicyFromString(s string) (Policy, bool) {
	for _, p := range []Policy{PolicyOff, PolicyStrict, PolicyRepair, PolicyDrop} {
		if s == p.String() {
			return p, true
		}
	}
	return PolicyOff, false
}

// Default identifier caps. A single event naming an absurd id can force
// a detector's dense shadow tables to allocate unbounded memory (the
// thread table additionally holds one vector clock per thread), so the
// validator bounds both namespaces; events beyond the caps are
// irreparable and handled per policy. Both caps are configurable on the
// Dispatcher.
const (
	// DefaultMaxTid bounds thread ids (per-thread state includes a vector
	// clock, so this cap bounds O(n^2) worst-case clock storage).
	DefaultMaxTid = 1 << 12
	// DefaultMaxTarget bounds variable/lock/volatile/barrier ids.
	DefaultMaxTarget = 1 << 24
)

// ViolationAction records how a violation was handled.
type ViolationAction uint8

const (
	// ActionErrored: PolicyStrict stopped the stream.
	ActionErrored ViolationAction = iota
	// ActionRepaired: missing events were synthesized and the original
	// event was forwarded.
	ActionRepaired
	// ActionDropped: the event was skipped.
	ActionDropped
)

func (a ViolationAction) String() string {
	switch a {
	case ActionErrored:
		return "errored"
	case ActionRepaired:
		return "repaired"
	default:
		return "dropped"
	}
}

// Violation is one recorded well-formedness deviation.
type Violation struct {
	Index  int // position in the dispatcher's input stream
	Event  trace.Event
	Msg    string
	Action ViolationAction
}

func (v Violation) String() string {
	return fmt.Sprintf("event %d (%s): %s [%s]", v.Index, v.Event, v.Msg, v.Action)
}

// maxViolationLog bounds the retained violation records; the counters
// keep exact totals regardless.
const maxViolationLog = 32

// Validator tracks the thread-liveness and lock-ownership protocol of
// Section 2.1 and decides, per the configured policy, what to do with
// each event. The Dispatcher drives it; it is exported for tests and
// the chaos harness.
type Validator struct {
	policy    Policy
	maxTid    int32
	maxTarget uint64

	state map[int32]uint8 // thread liveness; 0 starts alive
	locks map[uint64]lockHold

	// Counters. Violations == Repaired + Dropped (+1 if a strict error
	// stopped the stream) — the accounting invariant the chaos harness
	// asserts.
	Violations  int64
	Repaired    int64
	Dropped     int64
	Synthesized int64

	// Log holds the first maxViolationLog violations.
	Log []Violation
}

type lockHold struct {
	owner int32
	depth int
}

const (
	vUnborn = iota
	vAlive
	vDead
)

// NewValidator returns a validator for the given policy with the default
// identifier caps.
func NewValidator(p Policy) *Validator {
	return &Validator{
		policy:    p,
		maxTid:    DefaultMaxTid,
		maxTarget: DefaultMaxTarget,
		state:     map[int32]uint8{0: vAlive},
		locks:     map[uint64]lockHold{},
	}
}

// SetCaps overrides the identifier caps; zero keeps the default.
func (v *Validator) SetCaps(maxTid int32, maxTarget uint64) {
	if maxTid > 0 {
		v.maxTid = maxTid
	}
	if maxTarget > 0 {
		v.maxTarget = maxTarget
	}
}

func (v *Validator) alive(t int32) bool { return v.state[t] == vAlive }

// Check examines the i'th event. When repairs is non-nil the caller must
// feed the repair events, then e. drop reports that e must be skipped.
// err is non-nil only under PolicyStrict and is sticky at the caller.
func (v *Validator) Check(i int, e trace.Event) (repairs []trace.Event, drop bool, err error) {
	msg, rep, reparable := v.examine(e)
	if msg == "" {
		v.apply(e)
		return nil, false, nil
	}
	v.Violations++
	switch {
	case v.policy == PolicyStrict:
		v.log(i, e, msg, ActionErrored)
		return nil, false, &trace.ValidationError{Index: i, Event: e, Msg: msg}
	case v.policy == PolicyRepair && reparable:
		v.log(i, e, msg, ActionRepaired)
		v.Repaired++
		v.Synthesized += int64(len(rep))
		for _, r := range rep {
			v.apply(r)
		}
		v.apply(e)
		return rep, false, nil
	default: // PolicyDrop, or irreparable under PolicyRepair
		v.log(i, e, msg, ActionDropped)
		v.Dropped++
		return nil, true, nil
	}
}

// examine checks e against the current protocol state without mutating
// it. It returns a description of the violation (empty if none), the
// events that would repair it, and whether repair is possible at all.
func (v *Validator) examine(e trace.Event) (msg string, repairs []trace.Event, reparable bool) {
	// Identifier sanity: absurd ids are irreparable.
	if e.Kind == trace.BarrierRelease {
		for _, t := range e.Tids {
			if t < 0 || t > v.maxTid {
				return fmt.Sprintf("thread id %d outside [0, %d]", t, v.maxTid), nil, false
			}
		}
	} else if e.Tid < 0 || e.Tid > v.maxTid {
		return fmt.Sprintf("thread id %d outside [0, %d]", e.Tid, v.maxTid), nil, false
	}
	switch e.Kind {
	case trace.Fork, trace.Join:
		if e.Target > uint64(v.maxTid) {
			return fmt.Sprintf("thread id %d outside [0, %d]", e.Target, v.maxTid), nil, false
		}
		if int32(e.Target) == e.Tid {
			return fmt.Sprintf("thread %d %ss itself", e.Tid, e.Kind), nil, false
		}
	default:
		if e.Target > v.maxTarget {
			return fmt.Sprintf("target id %d outside [0, %d]", e.Target, v.maxTarget), nil, false
		}
	}

	var msgs []string
	if e.Kind == trace.BarrierRelease {
		bad := false
		for _, t := range e.Tids {
			if v.alive(t) {
				continue
			}
			bad = true
			// Thread 0 cannot be forked by anyone; apply resurrects it
			// without a synthesized edge.
			if t != 0 {
				repairs = append(repairs, trace.ForkOf(0, t))
			}
		}
		if bad {
			return "barrier releases threads that are not running", repairs, true
		}
		return "", nil, false
	}

	if !v.alive(e.Tid) {
		msgs = append(msgs, fmt.Sprintf("thread %d is not running", e.Tid))
		if e.Tid != 0 {
			repairs = append(repairs, trace.ForkOf(0, e.Tid))
		}
	}

	switch e.Kind {
	case trace.Acquire:
		if h, held := v.locks[e.Target]; held && h.owner != e.Tid {
			// Two threads cannot hold one lock; release the phantom hold.
			msgs = append(msgs, fmt.Sprintf("lock m%d already held by thread %d", e.Target, h.owner))
			repairs = append(repairs, trace.Rel(h.owner, e.Target))
		}
	case trace.Release, trace.Wait:
		h, held := v.locks[e.Target]
		switch {
		case held && h.owner != e.Tid:
			return fmt.Sprintf("thread %d releases lock m%d held by thread %d", e.Tid, e.Target, h.owner), nil, false
		case !held:
			msgs = append(msgs, fmt.Sprintf("thread %d releases lock m%d it does not hold", e.Tid, e.Target))
			repairs = append(repairs, trace.Acq(e.Tid, e.Target))
		}
	case trace.Fork:
		switch v.state[int32(e.Target)] {
		case vAlive:
			return fmt.Sprintf("fork of thread %d which already exists", e.Target), nil, false
		case vDead:
			return fmt.Sprintf("fork of thread %d which already terminated", e.Target), nil, false
		}
	case trace.Join:
		if !v.alive(int32(e.Target)) {
			return fmt.Sprintf("join of thread %d which is not running", e.Target), nil, false
		}
	}
	if len(msgs) > 0 {
		return strings.Join(msgs, "; "), repairs, true
	}
	return "", nil, false
}

// apply advances the protocol state over an event that is (now) valid in
// sequence — either an accepted input event or a synthesized repair.
func (v *Validator) apply(e trace.Event) {
	// The event's own thread is running by now (it was either already
	// alive, or a repair forked it; a resurrected thread 0 has no
	// synthesizable fork and is revived here).
	if e.Kind == trace.BarrierRelease {
		for _, t := range e.Tids {
			v.state[t] = vAlive
		}
	} else {
		v.state[e.Tid] = vAlive
	}
	switch e.Kind {
	case trace.Fork:
		v.state[int32(e.Target)] = vAlive
	case trace.Join:
		v.state[int32(e.Target)] = vDead
	case trace.Acquire:
		h := v.locks[e.Target]
		if h.depth > 0 && h.owner == e.Tid {
			h.depth++
		} else {
			h = lockHold{owner: e.Tid, depth: 1}
		}
		v.locks[e.Target] = h
	case trace.Release, trace.Wait:
		// Wait releases one hold level, mirroring the dispatcher's
		// conservative re-entrant-wait handling.
		h := v.locks[e.Target]
		h.depth--
		if h.depth <= 0 {
			delete(v.locks, e.Target)
		} else {
			v.locks[e.Target] = h
		}
	}
}

func (v *Validator) log(i int, e trace.Event, msg string, a ViolationAction) {
	if len(v.Log) < maxViolationLog {
		v.Log = append(v.Log, Violation{Index: i, Event: e, Msg: msg, Action: a})
	}
}
