package rr

import (
	"fmt"
	"io"
)

// opsRow is one line of the operation-mix table: a rule label, its
// count, and the base it is a percentage of.
type opsRow struct {
	label  string
	count  int64
	base   int64
	isRead bool
}

// FprintOpsMix renders a Table-2-style operation-mix breakdown of st:
// each instrumentation rule as a count and a percentage of its class
// (reads or writes), the per-kind synchronization mix, and — when the
// detector attributes every access to a rule — the share of accesses
// handled by constant-time paths. For FastTrack the headline number is
// the same-epoch share, the paper's central empirical claim.
func FprintOpsMix(w io.Writer, name string, st Stats) {
	accesses := st.Reads + st.Writes
	fmt.Fprintf(w, "  operation mix (%s): %d accesses (%d reads, %d writes), %d syncs\n",
		name, accesses, st.Reads, st.Writes, st.Syncs)

	rows := []opsRow{
		{"read same epoch", st.ReadSameEpoch, st.Reads, true},
		{"read shared", st.ReadShared, st.Reads, true},
		{"read exclusive", st.ReadExclusive, st.Reads, true},
		{"read share (inflate)", st.ReadShare, st.Reads, true},
		{"read owned", st.ReadOwned, st.Reads, true},
		{"write same epoch", st.WriteSameEpoch, st.Writes, false},
		{"write exclusive", st.WriteExclusive, st.Writes, false},
		{"write shared", st.WriteShared, st.Writes, false},
		{"write owned", st.WriteOwned, st.Writes, false},
	}
	var attributed int64
	for _, r := range rows {
		if r.count == 0 {
			continue
		}
		attributed += r.count
		fmt.Fprintf(w, "    %-22s %12d  %5.1f%% of %s\n",
			r.label, r.count, pctOf(r.count, r.base), baseName(r.isRead))
	}

	if accesses > 0 && attributed == accesses {
		sameEpoch := st.ReadSameEpoch + st.WriteSameEpoch
		fmt.Fprintf(w, "    same-epoch fast path: %.1f%% of accesses\n", pctOf(sameEpoch, accesses))
		// Accesses that forced O(n) vector-clock work: read-share
		// inflation and writes against a read-shared VC. (READ SHARED
		// itself is constant time: one epoch compare plus one VC entry
		// update.)
		slow := st.ReadShare + st.WriteShared
		fmt.Fprintf(w, "    constant-time paths:  %.1f%% of accesses\n", pctOf(accesses-slow, accesses))
	}

	if st.Syncs > 0 {
		fmt.Fprintf(w, "    sync: acquire=%d release=%d fork=%d join=%d volatile=%d barrier=%d wait=%d chan=%d\n",
			st.Acquires, st.Releases, st.Forks, st.Joins, st.Volatiles, st.Barriers, st.Waits, st.Channels)
	}
	if st.Markers > 0 {
		fmt.Fprintf(w, "    markers: %d\n", st.Markers)
	}
	if st.LockSetOps > 0 {
		fmt.Fprintf(w, "    lock-set ops: %d\n", st.LockSetOps)
	}
	if st.VCAlloc > 0 || st.VCOp > 0 {
		fmt.Fprintf(w, "    vc: alloc=%d ops=%d\n", st.VCAlloc, st.VCOp)
	}
}

func pctOf(n, base int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(n) / float64(base)
}

func baseName(isRead bool) string {
	if isRead {
		return "reads"
	}
	return "writes"
}
