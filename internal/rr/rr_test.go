package rr

import (
	"testing"

	"fasttrack/trace"
)

// recorder captures the events a tool receives.
type recorder struct {
	events []trace.Event
	idx    []int
	st     Stats
}

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) HandleEvent(i int, e trace.Event) {
	r.events = append(r.events, e)
	r.idx = append(r.idx, i)
	r.st.Events++
}
func (r *recorder) Races() []Report { return nil }
func (r *recorder) Stats() Stats    { return r.st }

// passNone is a prefilter that blocks every access.
type passNone struct{ recorder }

func (p *passNone) HandleFilter(i int, e trace.Event) bool {
	p.HandleEvent(i, e)
	return false
}

func TestDispatcherForwardsPlainEvents(t *testing.T) {
	rec := &recorder{}
	d := NewDispatcher(rec)
	tr := trace.Trace{trace.Rd(0, 1), trace.Wr(0, 2), trace.ForkOf(0, 1)}
	d.Feed(tr)
	if len(rec.events) != 3 {
		t.Fatalf("forwarded %d events, want 3", len(rec.events))
	}
	for i, idx := range rec.idx {
		if idx != i {
			t.Errorf("event %d delivered with index %d", i, idx)
		}
	}
	if d.Fed != 3 {
		t.Errorf("Fed = %d", d.Fed)
	}
}

func TestDispatcherReentrantLockFiltering(t *testing.T) {
	rec := &recorder{}
	d := NewDispatcher(rec)
	d.Event(trace.Acq(0, 5))
	d.Event(trace.Acq(0, 5)) // re-entrant: dropped
	d.Event(trace.Rel(0, 5)) // inner release: dropped
	d.Event(trace.Rel(0, 5))
	if len(rec.events) != 2 {
		t.Fatalf("forwarded %d lock events, want 2: %v", len(rec.events), rec.events)
	}
	if d.FilteredReentrant != 2 {
		t.Errorf("FilteredReentrant = %d, want 2", d.FilteredReentrant)
	}
	// Different threads' holds of different locks are independent.
	d.Event(trace.Acq(1, 5))
	d.Event(trace.Acq(0, 6))
	if len(rec.events) != 4 {
		t.Errorf("independent acquires were filtered")
	}
}

func TestDispatcherWaitExpansion(t *testing.T) {
	rec := &recorder{}
	d := NewDispatcher(rec)
	d.Event(trace.Acq(0, 5))
	d.Event(trace.Event{Kind: trace.Wait, Tid: 0, Target: 5})
	d.Event(trace.Acq(0, 5)) // wake-up: must NOT be treated as re-entrant
	d.Event(trace.Rel(0, 5))
	want := []trace.Kind{trace.Acquire, trace.Release, trace.Acquire, trace.Release}
	if len(rec.events) != len(want) {
		t.Fatalf("forwarded %d events, want %d: %v", len(rec.events), len(want), rec.events)
	}
	for i, k := range want {
		if rec.events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, rec.events[i].Kind, k)
		}
	}
}

func TestDispatcherWaitUnderReentrantHold(t *testing.T) {
	rec := &recorder{}
	d := NewDispatcher(rec)
	d.Event(trace.Acq(0, 5))
	d.Event(trace.Acq(0, 5)) // depth 2 (dropped)
	d.Event(trace.Event{Kind: trace.Wait, Tid: 0, Target: 5})
	// Conservatively treated as releasing one level: nothing forwarded.
	if len(rec.events) != 1 {
		t.Fatalf("events = %v", rec.events)
	}
	d.Event(trace.Event{Kind: trace.Wait, Tid: 0, Target: 5})
	if len(rec.events) != 2 || rec.events[1].Kind != trace.Release {
		t.Fatalf("outermost wait must forward a release: %v", rec.events)
	}
}

func TestDispatcherDropsNotify(t *testing.T) {
	rec := &recorder{}
	d := NewDispatcher(rec)
	d.Event(trace.Event{Kind: trace.Notify, Tid: 0, Target: 5})
	if len(rec.events) != 0 {
		t.Errorf("notify forwarded: %v", rec.events)
	}
}

func TestDispatcherCoarseGranularity(t *testing.T) {
	rec := &recorder{}
	d := NewDispatcher(rec)
	d.Granularity = Coarse
	d.Event(trace.Rd(0, 0))
	d.Event(trace.Rd(0, FieldsPerObject-1))
	d.Event(trace.Rd(0, FieldsPerObject))
	if rec.events[0].Target != rec.events[1].Target {
		t.Error("fields of one object must share a shadow location")
	}
	if rec.events[1].Target == rec.events[2].Target {
		t.Error("different objects must not share a shadow location")
	}
	// Locks are not remapped.
	d.Event(trace.Acq(0, FieldsPerObject))
	if rec.events[3].Target != FieldsPerObject {
		t.Errorf("lock id remapped to %d", rec.events[3].Target)
	}
}

func TestPipelineFiltersAccessesPassesSync(t *testing.T) {
	pre := &passNone{}
	back := &recorder{}
	p := &Pipeline{Pre: pre, Back: back}
	if p.Name() != "recorder:recorder" {
		t.Errorf("Name = %q", p.Name())
	}
	p.HandleEvent(0, trace.Rd(0, 1))
	p.HandleEvent(1, trace.Acq(0, 2))
	p.HandleEvent(2, trace.Wr(0, 1))
	p.HandleEvent(3, trace.Event{Kind: trace.TxBegin, Tid: 0})
	if len(back.events) != 2 {
		t.Fatalf("back end saw %v, want sync+tx only", back.events)
	}
	if p.Filtered != 2 || p.Passed != 0 {
		t.Errorf("Filtered=%d Passed=%d", p.Filtered, p.Passed)
	}
	if len(pre.events) != 4 {
		t.Errorf("prefilter must see every event, saw %d", len(pre.events))
	}
	if st := p.Stats(); st.Events != 4+2 {
		t.Errorf("merged Events = %d, want 6", st.Events)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Var: 3, Kind: WriteWrite, Tid: 1, PrevTid: 0, Index: 7, PrevIndex: -1}
	if got := r.String(); got != "write-write race on x3: thread 1 conflicts with thread 0 (event 7)" {
		t.Errorf("String = %q", got)
	}
	// When the prior access's index is known (detailed reports), both
	// halves of the race are pinpointed.
	r.PrevIndex = 4
	if got := r.String(); got != "write-write race on x3: thread 1 (event 7) conflicts with thread 0 (event 4)" {
		t.Errorf("String = %q", got)
	}
	r.PrevIndex = -1
	r.PrevTid = -1
	if got := r.String(); got != "write-write race on x3: thread 1 (event 7)" {
		t.Errorf("String = %q", got)
	}
}

func TestRaceKindStrings(t *testing.T) {
	cases := map[RaceKind]string{
		WriteWrite:           "write-write race",
		WriteRead:            "write-read race",
		ReadWrite:            "read-write race",
		LockSetViolation:     "empty lockset",
		AtomicityViolation:   "atomicity violation",
		DeterminismViolation: "determinism violation",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
