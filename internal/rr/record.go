package rr

import "fasttrack/trace"

// Recorder is a Tool that captures the event stream it is fed, enabling
// record/replay workflows: attach it (possibly inside a Tee) to a live
// Monitor, then replay the recorded trace through other detectors or
// write it to disk with the trace codecs. It reports no warnings.
type Recorder struct {
	tr trace.Trace
	st Stats
}

var _ Tool = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Name implements Tool.
func (r *Recorder) Name() string { return "Recorder" }

// HandleEvent implements Tool.
func (r *Recorder) HandleEvent(_ int, e trace.Event) {
	r.st.Events++
	switch e.Kind {
	case trace.Read:
		r.st.Reads++
	case trace.Write:
		r.st.Writes++
	default:
		r.st.CountKind(e.Kind)
	}
	if e.Kind == trace.BarrierRelease {
		e.Tids = append([]int32(nil), e.Tids...) // own the participant set
	}
	r.tr = append(r.tr, e)
}

// Races implements Tool.
func (r *Recorder) Races() []Report { return nil }

// Stats implements Tool.
func (r *Recorder) Stats() Stats {
	st := r.st
	st.ShadowBytes = int64(cap(r.tr)) * 40
	return st
}

// Trace returns the recorded events. The caller must not feed the
// recorder while using the result.
func (r *Recorder) Trace() trace.Trace { return r.tr }

// StreamRecorder is a Tool that encodes the event stream straight to a
// trace.Writer, so a long-running monitored program can be recorded to
// disk without holding the trace in memory. Call Flush when done. It
// reports no warnings.
type StreamRecorder struct {
	w   *trace.Writer
	st  Stats
	err error
}

var _ Tool = (*StreamRecorder)(nil)

// NewStreamRecorder returns a recorder writing to w.
func NewStreamRecorder(w *trace.Writer) *StreamRecorder {
	return &StreamRecorder{w: w}
}

// Name implements Tool.
func (s *StreamRecorder) Name() string { return "StreamRecorder" }

// HandleEvent implements Tool. Encoding errors are sticky and reported
// by Err.
func (s *StreamRecorder) HandleEvent(_ int, e trace.Event) {
	s.st.Events++
	if s.err == nil {
		s.err = s.w.Write(e)
	}
}

// Races implements Tool.
func (s *StreamRecorder) Races() []Report { return nil }

// Stats implements Tool.
func (s *StreamRecorder) Stats() Stats { return s.st }

// Flush drains the underlying writer.
func (s *StreamRecorder) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Err returns the first encoding error, if any.
func (s *StreamRecorder) Err() error { return s.err }

// Tee fans one event stream out to several tools, so a single pass over
// a program or trace runs any number of analyses (the harness uses
// per-tool passes instead, to keep timing honest). Warnings are the
// concatenation of the components' warnings in tool order.
type Tee struct {
	Tools []Tool
}

var _ Tool = (*Tee)(nil)

// NewTee returns a Tee over the given tools.
func NewTee(tools ...Tool) *Tee { return &Tee{Tools: tools} }

// Name implements Tool.
func (t *Tee) Name() string {
	name := "Tee("
	for i, tool := range t.Tools {
		if i > 0 {
			name += ","
		}
		name += tool.Name()
	}
	return name + ")"
}

// HandleEvent implements Tool.
func (t *Tee) HandleEvent(i int, e trace.Event) {
	for _, tool := range t.Tools {
		tool.HandleEvent(i, e)
	}
}

// Races implements Tool.
func (t *Tee) Races() []Report {
	var out []Report
	for _, tool := range t.Tools {
		out = append(out, tool.Races()...)
	}
	return out
}

// Stats implements Tool; counters are summed (Events therefore counts
// each event once per component).
func (t *Tee) Stats() Stats {
	var st Stats
	for _, tool := range t.Tools {
		st.Merge(tool.Stats())
	}
	return st
}
