package rr

import (
	"errors"
	"testing"

	"fasttrack/trace"
)

// evEq compares events field-wise (Event holds a slice, so == is not
// available).
func evEq(a, b trace.Event) bool {
	if a.Kind != b.Kind || a.Tid != b.Tid || a.Target != b.Target || len(a.Tids) != len(b.Tids) {
		return false
	}
	for i := range a.Tids {
		if a.Tids[i] != b.Tids[i] {
			return false
		}
	}
	return true
}

// feedAll offers a trace to a fresh dispatcher over tool with the given
// policy and returns the dispatcher.
func feedAll(t *testing.T, tool Tool, p Policy, tr trace.Trace) *Dispatcher {
	t.Helper()
	d := NewDispatcher(tool)
	d.Policy = p
	d.Feed(tr)
	return d
}

func TestValidatorStrictStopsWithPosition(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyStrict, trace.Trace{
		trace.Wr(0, 1),
		trace.Rel(0, 7), // unheld release: first violation, index 1
		trace.Wr(0, 2),  // ignored after the error
	})
	err := d.Err()
	if err == nil {
		t.Fatal("PolicyStrict: no error for unheld release")
	}
	var verr *trace.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error type %T, want *trace.ValidationError", err)
	}
	if verr.Index != 1 {
		t.Errorf("error index = %d, want 1", verr.Index)
	}
	if len(rec.events) != 1 {
		t.Errorf("tool saw %d events after strict stop, want 1", len(rec.events))
	}
	h := d.Health()
	if h.Healthy || h.Violations != 1 || h.Err == nil {
		t.Errorf("Health = %+v, want 1 violation with Err set", h)
	}
}

func TestValidatorRepairsUnheldRelease(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyRepair, trace.Trace{
		trace.Rel(0, 7), // repaired: acq(0,7) synthesized before it
		trace.Wr(0, 1),
	})
	h := d.Health()
	if h.Violations != 1 || h.Repaired != 1 || h.Synthesized != 1 {
		t.Fatalf("Health = %+v, want 1 violation / 1 repaired / 1 synthesized", h)
	}
	want := trace.Trace{trace.Acq(0, 7), trace.Rel(0, 7), trace.Wr(0, 1)}
	if len(rec.events) != len(want) {
		t.Fatalf("tool saw %v, want %v", rec.events, want)
	}
	for i, e := range want {
		if !evEq(rec.events[i], e) {
			t.Errorf("event %d = %v, want %v", i, rec.events[i], e)
		}
	}
	if d.UnheldReleases != 0 {
		t.Errorf("UnheldReleases = %d after repair, want 0", d.UnheldReleases)
	}
}

func TestValidatorRepairsUnknownThread(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyRepair, trace.Trace{
		trace.Wr(3, 1), // thread 3 was never forked
	})
	h := d.Health()
	if h.Repaired != 1 || h.Synthesized != 1 {
		t.Fatalf("Health = %+v, want repair with one synthesized fork", h)
	}
	want := trace.Trace{trace.ForkOf(0, 3), trace.Wr(3, 1)}
	if len(rec.events) != 2 || !evEq(rec.events[0], want[0]) || !evEq(rec.events[1], want[1]) {
		t.Fatalf("tool saw %v, want %v", rec.events, want)
	}
}

func TestValidatorRepairsDeadThread(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyRepair, trace.Trace{
		trace.ForkOf(0, 1),
		trace.JoinOf(0, 1),
		trace.Wr(1, 5), // thread 1 already joined; re-forked by repair
	})
	if h := d.Health(); h.Repaired != 1 {
		t.Fatalf("Health = %+v, want 1 repair", h)
	}
	last := rec.events[len(rec.events)-1]
	prev := rec.events[len(rec.events)-2]
	if !evEq(last, trace.Wr(1, 5)) || !evEq(prev, trace.ForkOf(0, 1)) {
		t.Fatalf("tail events = %v, %v; want re-fork then write", prev, last)
	}
}

func TestValidatorDropPolicy(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyDrop, trace.Trace{
		trace.Rel(0, 7),     // dropped
		trace.Wr(9, 1),      // dropped (unknown thread)
		trace.JoinOf(0, 42), // dropped (join of never-forked thread)
		trace.Wr(0, 2),      // fine
	})
	h := d.Health()
	if h.Violations != 3 || h.Dropped != 3 || h.Repaired != 0 {
		t.Fatalf("Health = %+v, want 3 violations all dropped", h)
	}
	if len(rec.events) != 1 || !evEq(rec.events[0], trace.Wr(0, 2)) {
		t.Fatalf("tool saw %v, want only wr(0,2)", rec.events)
	}
}

func TestValidatorIrreparableDroppedUnderRepair(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyRepair, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 1), // fork of existing thread: irreparable
		trace.JoinOf(2, 2), // self-join: irreparable
	})
	h := d.Health()
	if h.Violations != 2 || h.Dropped != 2 || h.Repaired != 0 {
		t.Fatalf("Health = %+v, want 2 irreparable violations dropped", h)
	}
	if len(rec.events) != 1 {
		t.Fatalf("tool saw %v, want only the first fork", rec.events)
	}
}

func TestValidatorAbsurdIdsCapped(t *testing.T) {
	rec := &recorder{}
	d := NewDispatcher(rec)
	d.Policy = PolicyRepair
	d.MaxTid = 100
	d.MaxTarget = 1000
	d.Feed(trace.Trace{
		trace.Wr(101, 1),     // tid over cap: dropped
		trace.Wr(0, 1001),    // target over cap: dropped
		trace.ForkOf(0, 101), // forked tid over cap: dropped
		trace.Wr(-5, 1),      // negative tid: dropped
		trace.Wr(100, 1000),  // at the caps: repaired (unknown thread) and kept
	})
	h := d.Health()
	if h.Dropped != 4 {
		t.Fatalf("Health = %+v, want 4 dropped", h)
	}
	if len(rec.events) != 2 { // fork repair + the in-range write
		t.Fatalf("tool saw %v, want fork repair + wr(100,1000)", rec.events)
	}
}

func TestValidatorBarrierRepair(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyRepair, trace.Trace{
		trace.Barrier(1, 0, 2, 3), // threads 2 and 3 never forked
	})
	h := d.Health()
	if h.Repaired != 1 || h.Synthesized != 2 {
		t.Fatalf("Health = %+v, want 1 repair with 2 synthesized forks", h)
	}
	if len(rec.events) != 3 {
		t.Fatalf("tool saw %d events, want 2 forks + barrier", len(rec.events))
	}
}

func TestValidatorAcquireHeldElsewhere(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyRepair, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 7),
		trace.Acq(1, 7), // held by 0: repair releases the phantom hold
	})
	h := d.Health()
	if h.Repaired != 1 || h.Synthesized != 1 {
		t.Fatalf("Health = %+v, want 1 repair / 1 synthesized release", h)
	}
	want := trace.Trace{
		trace.ForkOf(0, 1), trace.Acq(0, 7), trace.Rel(0, 7), trace.Acq(1, 7),
	}
	if len(rec.events) != len(want) {
		t.Fatalf("tool saw %v, want %v", rec.events, want)
	}
	for i, e := range want {
		if !evEq(rec.events[i], e) {
			t.Errorf("event %d = %v, want %v", i, rec.events[i], e)
		}
	}
}

// TestUnheldReleaseInterceptedUnderPolicyOff is the regression test for
// the dispatcher forwarding depth-0 releases unchecked: even with
// validation off, an unheld release must never reach the tool.
func TestUnheldReleaseInterceptedUnderPolicyOff(t *testing.T) {
	rec := &recorder{}
	d := feedAll(t, rec, PolicyOff, trace.Trace{
		trace.Rel(0, 7),
		trace.Event{Kind: trace.Wait, Tid: 0, Target: 8},
		trace.Wr(0, 1),
	})
	if d.UnheldReleases != 2 {
		t.Fatalf("UnheldReleases = %d, want 2", d.UnheldReleases)
	}
	if len(rec.events) != 1 || !evEq(rec.events[0], trace.Wr(0, 1)) {
		t.Fatalf("tool saw %v, want only the write", rec.events)
	}
	h := d.Health()
	if h.Healthy {
		t.Error("Health.Healthy with intercepted unheld releases")
	}
	if h.UnheldReleases != 2 {
		t.Errorf("Health.UnheldReleases = %d, want 2", h.UnheldReleases)
	}
}

// panicTool panics on every access to a chosen target.
type panicTool struct {
	recorder
	target uint64
}

func (p *panicTool) HandleEvent(i int, e trace.Event) {
	if e.Kind.IsAccess() && e.Target == p.target {
		panic("panicTool: poisoned location")
	}
	p.recorder.HandleEvent(i, e)
}

func TestQuarantineSkipsPoisonedLocation(t *testing.T) {
	pt := &panicTool{target: 5}
	d := NewDispatcher(pt)
	d.Feed(trace.Trace{
		trace.Wr(0, 5), // panic; 5 quarantined
		trace.Wr(0, 5), // skipped
		trace.Rd(0, 5), // skipped
		trace.Wr(0, 6), // delivered
	})
	h := d.Health()
	if h.Panics != 1 || h.QuarantinedLocations != 1 || h.QuarantinedAccesses != 2 {
		t.Fatalf("Health = %+v, want 1 panic, 1 location, 2 skipped accesses", h)
	}
	if !d.Quarantined(5) || d.Quarantined(6) {
		t.Error("Quarantined() does not match the poisoned location")
	}
	if len(pt.events) != 1 || !evEq(pt.events[0], trace.Wr(0, 6)) {
		t.Fatalf("tool saw %v, want only wr(0,6)", pt.events)
	}
	if len(h.PanicLog) != 1 || h.PanicLog[0].Index != 0 {
		t.Fatalf("PanicLog = %v, want one record at index 0", h.PanicLog)
	}
}

// alwaysPanicTool panics on every event and on every query, exercising
// the downgrade wrapper's recover guards.
type alwaysPanicTool struct{}

func (alwaysPanicTool) Name() string                 { panic("name") }
func (alwaysPanicTool) HandleEvent(int, trace.Event) { panic("handle") }
func (alwaysPanicTool) Races() []Report              { panic("races") }
func (alwaysPanicTool) Stats() Stats                 { panic("stats") }

func TestToolDowngradeGuardsQueries(t *testing.T) {
	d := NewDispatcher(alwaysPanicTool{})
	d.MaxToolPanics = 2
	for x := uint64(0); x < 5; x++ {
		d.Event(trace.Wr(0, x*FieldsPerObject))
	}
	h := d.Health()
	if !h.ToolDisabled || h.Panics != 2 {
		t.Fatalf("Health = %+v, want downgrade after 2 panics", h)
	}
	// The downgraded wrapper must absorb the inner tool's panicking
	// accessors.
	if name := d.Tool.Name(); name != "disabled" {
		t.Errorf("Name() = %q, want \"disabled\" fallback", name)
	}
	if rs := d.Tool.Races(); rs != nil {
		t.Errorf("Races() = %v, want nil from guarded accessor", rs)
	}
	_ = d.Tool.Stats()
}

func TestFillStatsMergesResilienceCounters(t *testing.T) {
	pt := &panicTool{target: 3}
	d := NewDispatcher(pt)
	d.Policy = PolicyRepair
	d.Feed(trace.Trace{
		trace.Rel(0, 9),    // repaired
		trace.Wr(0, 3),     // panic + quarantine
		trace.JoinOf(0, 0), // self-join: irreparable, dropped
	})
	var st Stats
	d.FillStats(&st)
	if st.Panics != 1 || st.Quarantined != 1 {
		t.Errorf("Stats panics/quarantined = %d/%d, want 1/1", st.Panics, st.Quarantined)
	}
	if st.Violations != 2 || st.Repaired != 1 || st.Dropped != 1 {
		t.Errorf("Stats violations/repaired/dropped = %d/%d/%d, want 2/1/1",
			st.Violations, st.Repaired, st.Dropped)
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyOff, PolicyStrict, PolicyRepair, PolicyDrop} {
		got, ok := PolicyFromString(p.String())
		if !ok || got != p {
			t.Errorf("PolicyFromString(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PolicyFromString("bogus"); ok {
		t.Error("PolicyFromString accepted bogus")
	}
}
