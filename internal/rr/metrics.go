package rr

import (
	"fasttrack/internal/obs"
	"fasttrack/trace"
)

// PublishStats mirrors a Stats snapshot into reg as gauges named
// "<prefix>.<field>". Gauges (not counters) because st is a snapshot
// owned by the caller: successive calls overwrite rather than
// accumulate, so republishing after every progress tick is idempotent.
// Zero-valued fields with an omitempty JSON tag are skipped to keep the
// /metrics payload proportional to what the tool actually did.
func PublishStats(reg *obs.Registry, prefix string, st Stats) {
	set := func(name string, v int64, always bool) {
		if v != 0 || always {
			reg.Gauge(prefix + "." + name).Set(v)
		}
	}
	set("events", st.Events, true)
	set("reads", st.Reads, true)
	set("writes", st.Writes, true)
	set("syncs", st.Syncs, true)
	set("acquires", st.Acquires, false)
	set("releases", st.Releases, false)
	set("forks", st.Forks, false)
	set("joins", st.Joins, false)
	set("volatiles", st.Volatiles, false)
	set("barriers", st.Barriers, false)
	set("waits", st.Waits, false)
	set("markers", st.Markers, false)
	set("vcAlloc", st.VCAlloc, false)
	set("vcOps", st.VCOp, false)
	set("readSameEpoch", st.ReadSameEpoch, false)
	set("readShared", st.ReadShared, false)
	set("readExclusive", st.ReadExclusive, false)
	set("readShare", st.ReadShare, false)
	set("writeSameEpoch", st.WriteSameEpoch, false)
	set("writeExclusive", st.WriteExclusive, false)
	set("writeShared", st.WriteShared, false)
	set("readOwned", st.ReadOwned, false)
	set("writeOwned", st.WriteOwned, false)
	set("lockSetOps", st.LockSetOps, false)
	set("shadowBytes", st.ShadowBytes, true)
	set("panics", st.Panics, false)
	set("quarantined", st.Quarantined, false)
	set("violations", st.Violations, false)
	set("repaired", st.Repaired, false)
	set("dropped", st.Dropped, false)
	set("unheldReleases", st.UnheldReleases, false)
	set("memSqueezes", st.MemSqueezes, false)
	set("memCoarse", st.MemCoarse, false)
}

// obsMetrics caches the dispatcher's metric handles so the per-event
// path is a handful of atomic adds with no registry (map) lookups.
type obsMetrics struct {
	fed         *obs.Counter
	reads       *obs.Counter
	writes      *obs.Counter
	syncs       *obs.Counter
	delivered   *obs.Counter
	filtered    *obs.Counter // re-entrant acquire/release suppressed
	unheld      *obs.Counter
	violations  *obs.Counter
	repaired    *obs.Counter
	droppedVal  *obs.Counter
	synthesized *obs.Counter
	panics      *obs.Counter
	quarantine  *obs.Gauge // quarantined shadow locations (live count)
	latency     *obs.Histogram

	// Last-published validator values, so deltas can be mirrored into
	// the monotone counters after each Check.
	lastViolations, lastRepaired, lastDropped, lastSynthesized int64
}

// dispatcher metric names, all under the rr.* namespace. The canonical
// live event total is rr.events.fed: it counts every event offered to
// the pipeline and therefore matches the "(N events, streamed)" line of
// the final run report.
const (
	metricFed          = "rr.events.fed"
	metricReads        = "rr.delivered.reads"
	metricWrites       = "rr.delivered.writes"
	metricSyncs        = "rr.delivered.syncs"
	metricDelivered    = "rr.delivered.total"
	metricFiltered     = "rr.filtered.reentrant"
	metricUnheld       = "rr.filtered.unheldReleases"
	metricViolations   = "rr.validator.violations"
	metricRepaired     = "rr.validator.repaired"
	metricDroppedVal   = "rr.validator.dropped"
	metricSynthesized  = "rr.validator.synthesized"
	metricPanics       = "rr.quarantine.panics"
	metricQuarantined  = "rr.quarantine.locations"
	metricDispatchNs   = "rr.dispatch.ns"
	latencySampleEvery = 64 // sample 1 in 64 deliveries into the histogram
)

// initObs resolves the metric handles once. Called lazily from Event so
// that setting d.Obs after construction still works.
func (d *Dispatcher) initObs() {
	r := d.Obs
	d.om = &obsMetrics{
		fed:         r.Counter(metricFed),
		reads:       r.Counter(metricReads),
		writes:      r.Counter(metricWrites),
		syncs:       r.Counter(metricSyncs),
		delivered:   r.Counter(metricDelivered),
		filtered:    r.Counter(metricFiltered),
		unheld:      r.Counter(metricUnheld),
		violations:  r.Counter(metricViolations),
		repaired:    r.Counter(metricRepaired),
		droppedVal:  r.Counter(metricDroppedVal),
		synthesized: r.Counter(metricSynthesized),
		panics:      r.Counter(metricPanics),
		quarantine:  r.Gauge(metricQuarantined),
		latency:     r.Histogram(metricDispatchNs),
	}
}

// publishValidator mirrors the validator's counters into the registry
// as deltas, preserving counter monotonicity across repeated calls.
func (m *obsMetrics) publishValidator(v *Validator) {
	if d := v.Violations - m.lastViolations; d > 0 {
		m.violations.Add(d)
		m.lastViolations = v.Violations
	}
	if d := v.Repaired - m.lastRepaired; d > 0 {
		m.repaired.Add(d)
		m.lastRepaired = v.Repaired
	}
	if d := v.Dropped - m.lastDropped; d > 0 {
		m.droppedVal.Add(d)
		m.lastDropped = v.Dropped
	}
	if d := v.Synthesized - m.lastSynthesized; d > 0 {
		m.synthesized.Add(d)
		m.lastSynthesized = v.Synthesized
	}
}

// SyncObs reconciles the live rr.* event counters with the dispatcher's
// ground-truth counts. Concurrent mode uses it instead of per-event
// updates (see Event); the caller must hold full exclusion, so no other
// goroutine is adding to these counters concurrently.
func (d *Dispatcher) SyncObs() {
	if d.om == nil {
		return
	}
	raise := func(c *obs.Counter, target int64) {
		if delta := target - c.Load(); delta > 0 {
			c.Add(delta)
		}
	}
	raise(d.om.fed, d.Fed)
	raise(d.om.reads, d.deliveredKind[trace.Read])
	raise(d.om.writes, d.deliveredKind[trace.Write])
	raise(d.om.syncs, d.DeliveredSyncs())
	var total int64
	for _, c := range d.deliveredKind {
		total += c
	}
	raise(d.om.delivered, total)
	raise(d.om.filtered, d.FilteredReentrant)
	raise(d.om.unheld, d.UnheldReleases)
}

// countDelivered classifies one delivered event into the live counters.
func (m *obsMetrics) countDelivered(k trace.Kind) {
	m.delivered.Inc()
	switch {
	case k == trace.Read:
		m.reads.Inc()
	case k == trace.Write:
		m.writes.Inc()
	case k.IsSync():
		m.syncs.Inc()
	}
}
