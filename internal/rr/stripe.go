package rr

// This file defines the lock-striping contract shared by the public
// Monitor (which owns the stripe locks) and the detectors that support
// concurrent access-event delivery (which own per-stripe shadow state).
//
// The legality argument is the paper's own (Section 4 notes the
// implementation synchronizes on the shadow location): a FastTrack
// access handler reads only the accessing thread's vector clock and
// mutates only the accessed variable's shadow state, so two accesses to
// different variables commute. Striping by variable therefore preserves
// the reported race set exactly, provided (a) every access to variable
// x runs under the stripe lock StripeOf(x, n), and (b) every event that
// mutates cross-thread state — acquire, release, fork, join, volatile
// accesses, barriers, wait — runs under an exclusive lock that excludes
// all stripes.

// StripeOf maps shadow location x onto one of n stripes. The id is
// mixed (the 64-bit finalizer of MurmurHash3) before reduction so that
// clustered or strided variable ids — field blocks, per-object layouts
// — still spread across stripes instead of serializing on one lock.
// Both the lock holder and the sharded storage must use this same
// mapping, and x must already be in shadow-location space (after any
// granularity remap; see Dispatcher.MapVar).
func StripeOf(x uint64, n int) int {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(n))
}

// ShardedTool is implemented by tools whose access handlers are safe to
// run concurrently under the stripe-locking discipline above. After
// EnableSharding(n), the tool must tolerate concurrent HandleEvent
// calls for Read/Write events whose targets live on different stripes;
// all other events (and all of Races, Stats, Name) are still delivered
// under full exclusion by the caller.
type ShardedTool interface {
	Tool
	// EnableSharding switches the tool's access-path storage to n
	// per-stripe tables. It must be called before any event is handled;
	// n < 2 leaves the tool in its serial configuration.
	EnableSharding(n int)
	// ThreadsMaterialized returns the number of thread states the tool
	// has created so far. Accesses by tids below this bound touch only
	// existing (read-only, for the access path) thread state and are
	// safe under a stripe lock; the first event of a higher tid must be
	// delivered under full exclusion so the thread table can grow.
	ThreadsMaterialized() int
	// StripeRaces returns the warnings recorded on stripe s in detection
	// order. It must be called under stripe lock s or full exclusion;
	// the returned slice is the tool's own backing store and must not be
	// retained across unlocks.
	StripeRaces(s int) []Report
}
