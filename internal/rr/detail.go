package rr

import (
	"fmt"
	"strings"
)

// DetailedReport enriches a Report with the provenance evidence the
// flight recorder captured: the vector-clock snapshots of both
// accesses, the exact happens-before comparison that failed, the most
// recent synchronization operations of the two racing threads, and a
// rendered "why this is a race" explanation. Tools produce it only when
// provenance recording is enabled (see core.Detector.EnableProvenance);
// the enrichment never changes which races are reported, only what each
// report carries.
type DetailedReport struct {
	Report

	// AccessClock is the racing thread's vector clock at the second
	// access, indexed by tid (trailing zero entries trimmed).
	AccessClock []uint64 `json:"accessClock,omitempty"`
	// PrevClock is the prior accessor's vector clock snapshot taken at
	// its access, when the recorder captured one. For a read-write race
	// against a read-shared variable the snapshot belongs to the
	// specific reader named by PrevTid.
	PrevClock []uint64 `json:"prevClock,omitempty"`
	// PrevEpoch is the prior access's epoch rendered "c@t".
	PrevEpoch string `json:"prevEpoch,omitempty"`
	// FailedCheck is the FastTrack happens-before comparison that
	// failed, e.g. "W_x3 = 2@1 > C_2[1] = 0".
	FailedCheck string `json:"failedCheck,omitempty"`
	// SyncChain lists the most recent synchronization operations
	// recorded for the two racing threads, oldest first — the
	// release/acquire history that failed to order the two accesses.
	SyncChain []SyncRecord `json:"syncChain,omitempty"`
	// Explanation is the rendered multi-line "why this is a race" text.
	Explanation string `json:"explanation,omitempty"`
}

// SyncRecord is one entry of a thread's provenance ring: a recent
// synchronization operation with the thread's epoch at the time.
type SyncRecord struct {
	Index  int    `json:"index"`            // event index in the trace
	Tid    int32  `json:"tid"`              // thread that performed the operation
	Op     string `json:"op"`               // "acquire", "release", "fork", ...
	Target uint64 `json:"target"`           // lock/volatile id, or peer tid for fork/join
	Clock  string `json:"clock,omitempty"`  // thread's epoch at the time, "c@t"
}

// DetailedTool is implemented by tools whose provenance recorder can
// enrich race reports. DetailedRaces returns one DetailedReport per
// Races() entry, in the same order; the embedded Reports are identical
// to what Races() returns.
type DetailedTool interface {
	Tool
	DetailedRaces() []DetailedReport
}

// FormatClock renders a vector clock as "[tid:clock ...]" listing only
// nonzero components, the notation used throughout explanations.
func FormatClock(c []uint64) string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for t, v := range c {
		if v == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", t, v)
	}
	b.WriteByte(']')
	return b.String()
}

// Render builds the human-readable explanation from the structured
// fields. The detector calls it once at report time and stores the
// result in Explanation, so consumers (text output, JSON, HTTP) never
// re-derive it.
func (d *DetailedReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on x%d: thread %d's access (event %d) is concurrent with thread %d's",
		d.Kind, d.Var, d.Tid, d.Index, d.PrevTid)
	if d.PrevIndex >= 0 {
		fmt.Fprintf(&b, " (event %d)", d.PrevIndex)
	}
	b.WriteByte('\n')
	if d.FailedCheck != "" {
		fmt.Fprintf(&b, "  failed happens-before check: %s\n", d.FailedCheck)
	}
	fmt.Fprintf(&b, "  racing thread's clock: C_%d = %s\n", d.Tid, FormatClock(d.AccessClock))
	if len(d.PrevClock) > 0 {
		fmt.Fprintf(&b, "  prior accessor's clock: C_%d = %s", d.PrevTid, FormatClock(d.PrevClock))
		if d.PrevEpoch != "" {
			fmt.Fprintf(&b, " (access at %s)", d.PrevEpoch)
		}
		b.WriteByte('\n')
	} else if d.PrevEpoch != "" {
		fmt.Fprintf(&b, "  prior access epoch: %s\n", d.PrevEpoch)
	}
	if len(d.SyncChain) > 0 {
		fmt.Fprintf(&b, "  recent synchronization:\n")
		for _, s := range d.SyncChain {
			fmt.Fprintf(&b, "    event %d: thread %d %s %d", s.Index, s.Tid, s.Op, s.Target)
			if s.Clock != "" {
				fmt.Fprintf(&b, " at %s", s.Clock)
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "  no release/acquire, fork/join, volatile, or barrier chain orders the prior access before the racing one")
	return b.String()
}
