package shrink

import (
	"math/rand"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/detectors/eraser"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

func ftMaker() rr.Tool     { return core.New(4, 8) }
func eraserMaker() rr.Tool { return eraser.New(4, 8) }

// paddedRacyTrace buries a two-event race in noise.
func paddedRacyTrace(noise int) trace.Trace {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < noise; i++ {
		tr = append(tr, trace.Rd(0, uint64(100+i%7)))
		tr = append(tr, trace.Acq(1, 9), trace.Rd(1, 50), trace.Rel(1, 9))
	}
	tr = append(tr, trace.Wr(0, 1))
	for i := 0; i < noise; i++ {
		tr = append(tr, trace.Rd(1, uint64(200+i%5)))
	}
	tr = append(tr, trace.Wr(1, 1))
	return tr
}

func TestMinimizeRaceWitness(t *testing.T) {
	tr := paddedRacyTrace(30)
	got := Minimize(tr, Warns(ftMaker))
	if err := got.Validate(); err != nil {
		t.Fatalf("minimized trace infeasible: %v", err)
	}
	if !Warns(ftMaker)(got) {
		t.Fatal("minimized trace lost the race")
	}
	// The minimal witness is fork + two conflicting writes.
	if len(got) != 3 {
		t.Errorf("minimized to %d events, want 3:\n%s", len(got), got)
	}
}

func TestMinimizeIsOneMinimal(t *testing.T) {
	tr := paddedRacyTrace(10)
	got := Minimize(tr, Warns(ftMaker))
	for i := range got {
		cand := append(append(trace.Trace{}, got[:i]...), got[i+1:]...)
		if cand.Validate() == nil && Warns(ftMaker)(cand) {
			t.Errorf("not 1-minimal: event %d (%s) removable", i, got[i])
		}
	}
}

func TestMinimizeReturnsInputWhenPredicateFails(t *testing.T) {
	tr := trace.Trace{trace.Rd(0, 1)}
	got := Minimize(tr, Warns(ftMaker))
	if len(got) != 1 {
		t.Errorf("predicate-failing input changed: %v", got)
	}
	// Infeasible input is returned unchanged too.
	bad := trace.Trace{trace.Rel(0, 1)}
	if got := Minimize(bad, func(trace.Trace) bool { return true }); len(got) != 1 {
		t.Errorf("infeasible input changed: %v", got)
	}
}

func TestMinimizeDisagreement(t *testing.T) {
	// Eraser false-alarms on fork-join handoffs; FastTrack does not.
	// Bury one handoff in noise and shrink the disagreement witness.
	var tr trace.Trace
	tr = append(tr, trace.Wr(0, 1))
	for i := 0; i < 20; i++ {
		tr = append(tr, trace.Rd(0, uint64(10+i%3)))
	}
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < 20; i++ {
		tr = append(tr, trace.Acq(1, 9), trace.Wr(1, 30), trace.Rel(1, 9))
	}
	tr = append(tr, trace.Wr(1, 1)) // Eraser warns here, FastTrack doesn't
	pred := Disagree(ftMaker, eraserMaker)
	got := Minimize(tr, pred)
	if !pred(got) {
		t.Fatal("minimized trace lost the disagreement")
	}
	if len(got) > 4 {
		t.Errorf("disagreement witness has %d events, want <= 4:\n%s", len(got), got)
	}
}

func TestMinimizeRandomTracesStayFeasible(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 60
	for seed := int64(0); seed < 10; seed++ {
		tr := sim.RandomTrace(rand.New(rand.NewSource(seed)), cfg)
		if !Warns(ftMaker)(tr) {
			continue
		}
		got := Minimize(tr, Warns(ftMaker))
		if err := got.Validate(); err != nil {
			t.Errorf("seed %d: minimized trace infeasible: %v", seed, err)
		}
		if len(got) >= len(tr) && len(tr) > 3 {
			t.Errorf("seed %d: no shrinkage (%d -> %d)", seed, len(tr), len(got))
		}
	}
}
