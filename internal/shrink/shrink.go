// Package shrink minimizes traces while preserving a property, in the
// style of delta debugging (ddmin). It powers cmd/traceshrink: given a
// trace on which a detector warns — or on which two detectors disagree —
// it produces a small feasible witness, which is how the divergence
// tests in this repository were themselves debugged.
package shrink

import (
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Predicate reports whether a candidate trace still exhibits the
// behaviour being minimized. Candidates are always feasible
// (trace.Validate passes) before the predicate is consulted.
type Predicate func(trace.Trace) bool

// Minimize returns a locally minimal subsequence of tr that is feasible
// and satisfies keep. If tr itself is infeasible or fails keep, tr is
// returned unchanged. The result is 1-minimal: removing any single
// event either breaks feasibility or the predicate.
func Minimize(tr trace.Trace, keep Predicate) trace.Trace {
	ok := func(cand trace.Trace) bool {
		return cand.Validate() == nil && keep(cand)
	}
	if !ok(tr) {
		return tr
	}
	cur := append(trace.Trace(nil), tr...)

	// Chunked removal: try dropping windows of decreasing size, then
	// single events. Each removal changes window alignment (events that
	// must go together, like an acquire/release pair, may only be
	// droppable as an aligned window), so the whole descending-chunk
	// sweep repeats until a full pass removes nothing.
	for progress := true; progress; {
		progress = false
		for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
			for again := true; again; {
				again = false
				for start := 0; start+chunk <= len(cur); start += chunk {
					cand := make(trace.Trace, 0, len(cur)-chunk)
					cand = append(cand, cur[:start]...)
					cand = append(cand, cur[start+chunk:]...)
					if ok(cand) {
						cur = cand
						again = true
						progress = true
						break
					}
				}
			}
		}
	}
	return cur
}

// racyVars runs a fresh tool over the candidate and collects the flagged
// variables.
func racyVars(mk func() rr.Tool, cand trace.Trace) map[uint64]bool {
	tool := mk()
	d := rr.NewDispatcher(tool)
	d.Feed(cand)
	out := map[uint64]bool{}
	for _, r := range tool.Races() {
		out[r.Var] = true
	}
	return out
}

// Warns returns a predicate that holds when the tool built by mk reports
// at least one warning.
func Warns(mk func() rr.Tool) Predicate {
	return func(cand trace.Trace) bool {
		return len(racyVars(mk, cand)) > 0
	}
}

// Disagree returns a predicate that holds when the two tools flag
// different variable sets — the witness-shrinking mode used to debug
// precision differences between detectors.
func Disagree(mkA, mkB func() rr.Tool) Predicate {
	return func(cand trace.Trace) bool {
		a := racyVars(mkA, cand)
		b := racyVars(mkB, cand)
		if len(a) != len(b) {
			return true
		}
		for x := range a {
			if !b[x] {
				return true
			}
		}
		return false
	}
}
