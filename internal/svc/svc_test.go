package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fasttrack"
	"fasttrack/client"
	"fasttrack/internal/chaos"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// startServer boots a server on a loopback listener and returns it with
// its dial address; it is drained at test end.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// serialRaces is the ground truth: the race set of the in-process
// serial replay the network path must reproduce exactly.
func serialRaces(t *testing.T, tr trace.Trace) []fasttrack.Report {
	t.Helper()
	tool, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
	if err != nil {
		t.Fatal(err)
	}
	return fasttrack.Replay(tr, tool, fasttrack.Fine)
}

func testTrace(seed int64) trace.Trace {
	return sim.RandomTrace(rand.New(rand.NewSource(seed)), sim.DefaultRandomConfig())
}

// streamAll writes a whole trace through a client session.
func streamAll(sess *client.Session, tr trace.Trace) error {
	for _, e := range tr {
		if err := sess.Write(e); err != nil {
			return err
		}
	}
	return nil
}

// raceKey identifies a warning by what it is about rather than when it
// was found.
type raceKey struct {
	Var  uint64
	Kind fasttrack.RaceKind
}

// raceSet projects warnings onto (variable, kind) with multiplicity —
// for paths whose report indices reflect a legal interleaving rather
// than arrival order (sharded batch ingestion).
func raceSet(rs []fasttrack.Report) map[raceKey]int {
	set := make(map[raceKey]int, len(rs))
	for _, r := range rs {
		set[raceKey{r.Var, r.Kind}]++
	}
	return set
}

func sameRaces(got, want []fasttrack.Report) bool {
	if len(got) != len(want) {
		return false
	}
	if len(got) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func TestSessionRoundTrip(t *testing.T) {
	_, addr := startServer(t, Config{})
	tr := testTrace(1)
	want := serialRaces(t, tr)

	sess, err := client.Dial(addr, client.WithBatchSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() == "" {
		t.Error("empty session id")
	}
	if err := streamAll(sess, tr); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Events) != len(tr) {
		t.Errorf("Events = %d, want %d", res.Events, len(tr))
	}
	if !sameRaces(res.Races, want) {
		t.Errorf("remote races = %v\nwant %v", res.Races, want)
	}
	if res.Stats.Events != int64(len(tr)) {
		t.Errorf("Stats.Events = %d, want %d", res.Stats.Events, len(tr))
	}
	if !res.Health.Healthy {
		t.Errorf("unhealthy session: %+v", res.Health)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// The final snapshot stays available after Close.
	res2, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRaces(res2.Races, want) {
		t.Errorf("final races = %v, want %v", res2.Races, want)
	}
	// Writes after Close fail closed.
	if err := sess.Write(trace.Wr(0, 1)); err == nil {
		t.Error("Write after Close succeeded")
	}
}

// TestConcurrentSessions runs several sessions at once, each with its
// own trace, and requires every session's race set to match its own
// serial replay exactly — no cross-session bleed. Run under -race this
// is also the service's data-race gauntlet.
func TestConcurrentSessions(t *testing.T) {
	srv, addr := startServer(t, Config{})
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n*2)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tr := testTrace(seed)
			want := serialRaces(t, tr)
			sess, err := client.Dial(addr, client.WithBatchSize(64))
			if err != nil {
				errs <- err
				return
			}
			if err := streamAll(sess, tr); err != nil {
				errs <- err
				return
			}
			res, err := sess.Results()
			if err != nil {
				errs <- err
				return
			}
			if err := sess.Close(); err != nil {
				errs <- err
				return
			}
			if int(res.Events) != len(tr) {
				errs <- fmt.Errorf("seed %d: events %d, want %d", seed, res.Events, len(tr))
			}
			if !sameRaces(res.Races, want) {
				errs <- fmt.Errorf("seed %d: races %v, want %v", seed, res.Races, want)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := srv.Registry().Snapshot()
	if got := snap.Counter("svc.sessionsTotal"); got != n {
		t.Errorf("svc.sessionsTotal = %d, want %d", got, n)
	}
	if got := snap.Gauge("svc.sessionsActive"); got != 0 {
		t.Errorf("svc.sessionsActive = %d, want 0", got)
	}
}

// TestGracefulDrain leaves a session open (unflushed batch on the
// client is lost, but everything flushed is not) and drains the server:
// the session must finalize as drained with every acknowledged event
// analyzed, and its JSON report must carry the serial race set.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{ReportDir: dir})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	tr := testTrace(3)
	want := serialRaces(t, tr)
	sess, err := client.Dial(ln.Addr().String(), client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := streamAll(sess, tr); err != nil {
		t.Fatal(err)
	}
	// The flush acknowledgement is the durability point being tested.
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	id := sess.ID()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v after Shutdown, want nil", err)
	}

	// The client fails closed rather than silently continuing.
	if err := sess.Flush(); err == nil {
		t.Error("Flush after drain succeeded")
	}

	b, err := os.ReadFile(filepath.Join(dir, id+".json"))
	if err != nil {
		t.Fatalf("session report: %v", err)
	}
	var rep struct {
		Schema  string         `json:"schema"`
		Session SessionInfo    `json:"session"`
		Result  client.Results `json:"result"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "fasttrack/svc-session/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Session.State != "drained" {
		t.Errorf("state = %q, want drained", rep.Session.State)
	}
	if int(rep.Result.Events) != len(tr) {
		t.Errorf("drained session analyzed %d events, want %d (flushed events were lost)",
			rep.Result.Events, len(tr))
	}
	if !sameRaces(rep.Result.Races, want) {
		t.Errorf("drained races = %v, want %v", rep.Result.Races, want)
	}
}

// gatedTool wraps FastTrack so every event blocks until the gate opens,
// simulating an arbitrarily slow analysis for the backpressure tests.
type gatedTool struct {
	fasttrack.Tool
	gate <-chan struct{}
}

func (g *gatedTool) HandleEvent(i int, e trace.Event) {
	<-g.gate
	g.Tool.HandleEvent(i, e)
}

// gatedServer boots a server whose sessions all analyze through a
// gated FastTrack; close the returned channel to let events flow.
func gatedServer(t *testing.T, cfg Config) (*Server, string, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	cfg.NewMonitor = func(client.Handshake) (*fasttrack.Monitor, string, error) {
		inner, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
		if err != nil {
			return nil, "", err
		}
		return fasttrack.NewMonitor(fasttrack.WithTool(&gatedTool{Tool: inner, gate: gate})), "FastTrack", nil
	}
	srv, addr := startServer(t, cfg)
	return srv, addr, gate
}

// TestBackpressure stalls the analysis and keeps streaming: the
// server's bounded queue must fill and stall the reader (visible in
// svc.backpressureStalls) instead of buffering the backlog, and once
// the analysis resumes every event must be analyzed.
func TestBackpressure(t *testing.T) {
	const queueDepth = 2
	srv, addr, gate := gatedServer(t, Config{QueueDepth: queueDepth})

	sess, err := client.Dial(addr, client.WithBatchSize(64), client.WithReadTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	const frames, perFrame = 40, 64
	sent := make(chan error, 1)
	go func() {
		for i := 0; i < frames*perFrame; i++ {
			if err := sess.Write(trace.Wr(0, uint64(i%31))); err != nil {
				sent <- err
				return
			}
		}
		sent <- nil
	}()

	// The worker is blocked on the first event; the reader must hit the
	// full queue and stall rather than keep buffering.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Registry().Snapshot().Counter("svc.backpressureStalls") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no backpressure stall observed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if peak := srv.Registry().Snapshot().Gauge("svc.queueDepthPeak"); peak > queueDepth {
		t.Errorf("queue depth peak %d exceeds configured bound %d", peak, queueDepth)
	}

	close(gate) // resume the analysis
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != frames*perFrame {
		t.Errorf("after resume: %d events analyzed, want %d", res.Events, frames*perFrame)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// throttleConn blocks writes past a byte budget until released; it
// gives the shed test a deterministic "transport is stuck" condition.
type throttleConn struct {
	net.Conn
	mu      sync.Mutex
	allowed int64
	written int64
	release chan struct{}
}

func (c *throttleConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	over := c.written+int64(len(p)) > c.allowed
	c.mu.Unlock()
	if over {
		<-c.release
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
	return n, err
}

// TestShedPolicy wedges the transport after the handshake; a client
// configured to shed must drop whole frames (counted, bounded memory)
// instead of blocking, and the server's final count must equal exactly
// the events the client reports as sent.
func TestShedPolicy(t *testing.T) {
	_, addr := startServer(t, Config{})

	release := make(chan struct{})
	var tc *throttleConn
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		// Budget covers the hello frame only; the first events frame
		// wedges until release.
		tc = &throttleConn{Conn: c, allowed: 64, release: release}
		return tc, nil
	}
	sess, err := client.Dial(addr,
		client.WithDialFunc(dial),
		client.WithBatchSize(16),
		client.WithQueue(2, client.Shed),
		client.WithReadTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}

	// 10 frames worth: one wedged in the sender, two queued, the rest shed.
	for i := 0; i < 160; i++ {
		if err := sess.Write(trace.Wr(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.FramesShed == 0 {
		t.Fatalf("no frames shed: %+v", st)
	}
	if st.Stalls != 0 {
		t.Errorf("shed client stalled %d times", st.Stalls)
	}

	close(release)
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != sess.Stats().EventsSent {
		t.Errorf("server analyzed %d events, client sent %d", res.Events, sess.Stats().EventsSent)
	}
	if res.Events+sess.Stats().EventsShed != 160 {
		t.Errorf("sent(%d) + shed(%d) != written(160)", res.Events, sess.Stats().EventsShed)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIdleEviction lets a session go quiet past the idle timeout: the
// server must evict it (freeing its monitor) and the client must fail
// closed on its next operation.
func TestIdleEviction(t *testing.T) {
	srv, addr := startServer(t, Config{IdleTimeout: 100 * time.Millisecond})
	sess, err := client.Dial(addr, client.WithBatchSize(4), client.WithReadTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		sess.Write(trace.Wr(0, uint64(i)))
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	id := sess.ID()

	deadline := time.Now().Add(10 * time.Second)
	for srv.Registry().Snapshot().Counter("svc.sessionsEvicted") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session was never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	ss := srv.lookup(id)
	if ss == nil {
		t.Fatal("evicted session not retained")
	}
	if got := ss.stateName(); got != "evicted" {
		t.Errorf("state = %q, want evicted", got)
	}
	if !ss.mon.Closed() {
		t.Error("evicted session's monitor still open (shadow state leaked)")
	}
	if err := sess.Flush(); err == nil {
		t.Error("Flush on evicted session succeeded")
	}
}

// TestIdleSlowFrameNotEvicted trickles one events frame a few bytes at
// a time: every gap is well under the idle timeout but the whole frame
// takes several timeouts to arrive. Idleness is measured between bytes,
// so the session must survive and analyze the frame.
func TestIdleSlowFrameNotEvicted(t *testing.T) {
	srv, addr := startServer(t, Config{IdleTimeout: 250 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := trace.NewFrameWriter(conn)
	fr := trace.NewFrameReader(conn, 0)
	hello, _ := json.Marshal(client.Handshake{Version: client.ProtocolVersion})
	if err := fw.WriteFrame(client.FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := fr.ReadFrame(); err != nil || ft != client.FrameHelloOK {
		t.Fatalf("hello reply: frame %d, err %v", ft, err)
	}

	// Seal one events frame in memory, then drip it over ~8 gaps whose
	// total far exceeds the idle timeout.
	var payload bytes.Buffer
	w := trace.NewWriter(&payload, trace.Binary)
	const events = 4
	for i := 0; i < events; i++ {
		if err := w.Write(trace.Wr(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := trace.NewFrameWriter(&frame).WriteFrame(client.FrameEvents, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	const chunks = 8
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(raw)/chunks, (i+1)*len(raw)/chunks
		if lo == hi {
			continue
		}
		if _, err := conn.Write(raw[lo:hi]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(60 * time.Millisecond) // 8 × 60ms ≈ 2× the idle timeout
	}

	flush, _ := json.Marshal(client.Seq{Seq: 1})
	if err := fw.WriteFrame(client.FrameFlush, flush); err != nil {
		t.Fatal(err)
	}
	ft, pl, err := fr.ReadFrame()
	if err != nil || ft != client.FrameFlushOK {
		t.Fatalf("flush reply: frame %d, err %v (session evicted mid-frame?)", ft, err)
	}
	var ok client.FlushOK
	if err := json.Unmarshal(pl, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Events != events {
		t.Errorf("server ingested %d events, want %d", ok.Events, events)
	}
	if n := srv.Registry().Snapshot().Counter("svc.sessionsEvicted"); n != 0 {
		t.Errorf("%d sessions evicted during an active slow transfer", n)
	}
}

// TestChaosFrameCorruption flips one byte inside an events frame: the
// session must fail closed with the CRC diagnosed, while a concurrent
// clean session on the same server is unaffected.
func TestChaosFrameCorruption(t *testing.T) {
	_, addr := startServer(t, Config{})

	// Clean neighbor first, left open across the chaos below.
	trClean := testTrace(5)
	want := serialRaces(t, trClean)
	clean, err := client.Dial(addr, client.WithBatchSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := streamAll(clean, trClean); err != nil {
		t.Fatal(err)
	}

	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		fc := chaos.NewFaultConn(c)
		// Past the hello frame (~22 bytes), inside the first events
		// frame's payload.
		fc.FlipByte = 40
		return fc, nil
	}
	sess, err := client.Dial(addr,
		client.WithDialFunc(dial),
		client.WithBatchSize(8),
		client.WithReadTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var opErr error
	for i := 0; i < 8 && opErr == nil; i++ {
		opErr = sess.Write(trace.Wr(0, uint64(i)))
	}
	if opErr == nil {
		opErr = sess.Flush()
	}
	if opErr == nil {
		t.Fatal("corrupted stream was accepted")
	}
	if !strings.Contains(opErr.Error(), client.ErrCodeBadFrame) {
		t.Errorf("error %q does not carry the bad-frame code", opErr)
	}

	// The neighbor session still produces the exact serial race set.
	res, err := clean.Results()
	if err != nil {
		t.Fatalf("clean neighbor poisoned: %v", err)
	}
	if !sameRaces(res.Races, want) {
		t.Errorf("neighbor races = %v, want %v", res.Races, want)
	}
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosConnectionReset tears the connection mid-stream; the client
// must fail closed and the server must finalize the session without
// hanging its worker.
func TestChaosConnectionReset(t *testing.T) {
	srv, addr := startServer(t, Config{})
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		fc := chaos.NewFaultConn(c)
		fc.ResetAfter = 120 // inside the event stream, past the handshake
		return fc, nil
	}
	sess, err := client.Dial(addr,
		client.WithDialFunc(dial),
		client.WithBatchSize(8),
		client.WithReadTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var opErr error
	for i := 0; i < 512 && opErr == nil; i++ {
		opErr = sess.Write(trace.Wr(0, uint64(i)))
	}
	if opErr == nil {
		opErr = sess.Flush()
	}
	if opErr == nil {
		t.Fatal("torn connection went unnoticed")
	}

	// The server session finalizes (worker exits) despite the tear.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Registry().Snapshot().Gauge("svc.sessionsActive") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("torn session never finalized")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHandshakeRejections covers the refusal paths: unknown tool,
// bad policy, conflicting shard configuration, session cap.
func TestHandshakeRejections(t *testing.T) {
	_, addr := startServer(t, Config{MaxSessions: 1})
	if _, err := client.Dial(addr, client.WithTool("NoSuchTool")); err == nil ||
		!strings.Contains(err.Error(), client.ErrCodeUnknownTool) {
		t.Errorf("unknown tool: err = %v", err)
	}
	if _, err := client.Dial(addr, client.WithValidation("bogus")); err == nil ||
		!strings.Contains(err.Error(), client.ErrCodeBadRequest) {
		t.Errorf("bad policy: err = %v", err)
	}
	if _, err := client.Dial(addr, client.WithShards(4), client.WithValidation("strict")); err == nil ||
		!strings.Contains(err.Error(), client.ErrCodeBadRequest) {
		t.Errorf("shards+validation: err = %v", err)
	}
	// A huge shard count must be refused before it drives any per-stripe
	// allocation (a hostile handshake must not be able to OOM the daemon).
	if _, err := client.Dial(addr, client.WithShards(1<<30)); err == nil ||
		!strings.Contains(err.Error(), client.ErrCodeBadRequest) {
		t.Errorf("oversized shards: err = %v", err)
	}

	sess, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := client.Dial(addr); err == nil ||
		!strings.Contains(err.Error(), client.ErrCodeSessionCap) {
		t.Errorf("over cap: err = %v", err)
	}
}

// TestDialRetry proves the bounded-retry dial: two transient failures,
// then success.
func TestDialRetry(t *testing.T) {
	_, addr := startServer(t, Config{})
	attempts := 0
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		attempts++
		if attempts <= 2 {
			return nil, fmt.Errorf("transient failure %d", attempts)
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	sess, err := client.Dial(addr,
		client.WithDialFunc(dial),
		client.WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatalf("dial with retries: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	sess.Close()

	attempts = 0
	alwaysFail := func(string, time.Duration) (net.Conn, error) {
		attempts++
		return nil, fmt.Errorf("down")
	}
	if _, err := client.Dial(addr, client.WithDialFunc(alwaysFail),
		client.WithRetry(2, time.Millisecond)); err == nil {
		t.Error("dial against a dead dialer succeeded")
	}
	if attempts != 3 { // initial + 2 retries
		t.Errorf("attempts = %d, want 3", attempts)
	}
}

// TestHTTPEndpoints exercises the query surface next to /metrics.
func TestHTTPEndpoints(t *testing.T) {
	srv, addr := startServer(t, Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	tr := testTrace(7)
	want := serialRaces(t, tr)
	sess, err := client.Dial(addr, client.WithBatchSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := streamAll(sess, tr); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	get := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var infos []SessionInfo
	if code := get("/sessions", &infos); code != http.StatusOK {
		t.Fatalf("/sessions: status %d", code)
	}
	if len(infos) != 1 || infos[0].ID != sess.ID() || infos[0].State != "streaming" {
		t.Errorf("/sessions = %+v", infos)
	}
	if int(infos[0].Events) != len(tr) {
		t.Errorf("/sessions events = %d, want %d", infos[0].Events, len(tr))
	}

	var res client.Results
	if code := get("/sessions/"+sess.ID()+"/races", &res); code != http.StatusOK {
		t.Fatalf("/races: status %d", code)
	}
	if !sameRaces(res.Races, want) {
		t.Errorf("/races = %v, want %v", res.Races, want)
	}

	var stats struct {
		SessionInfo
		Stats fasttrack.Stats `json:"stats"`
	}
	if code := get("/sessions/"+sess.ID()+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	if stats.Stats.Events != int64(len(tr)) {
		t.Errorf("/stats events = %d, want %d", stats.Stats.Events, len(tr))
	}

	if code := get("/sessions/nope/races", nil); code != http.StatusNotFound {
		t.Errorf("missing session: status %d", code)
	}
	var snap map[string]any
	if code := get("/metrics", &snap); code != http.StatusOK {
		t.Errorf("/metrics: status %d", code)
	}

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the finalized session stays queryable with its final
	// state, and its per-session metrics are deleted.
	if code := get("/sessions", &infos); code != http.StatusOK || len(infos) != 1 {
		t.Fatalf("/sessions after close: %d, %+v", code, infos)
	}
	if infos[0].State != "completed" {
		t.Errorf("state after close = %q", infos[0].State)
	}
	for _, name := range srv.Registry().Names() {
		if strings.HasPrefix(name, "svc.session.") {
			t.Errorf("leaked per-session metric %q", name)
		}
	}
}

// TestShardedSession runs a session with server-side lock striping. The
// reported (variable, kind) race set is exactly the serial one, but the
// indices reflect a batch interleaving: each wire frame is ingested as
// one stripe-partitioned Monitor.IngestBatch, which reorders accesses
// across stripes within the frame.
func TestShardedSession(t *testing.T) {
	_, addr := startServer(t, Config{})
	tr := testTrace(9)
	want := raceSet(serialRaces(t, tr))
	sess, err := client.Dial(addr, client.WithShards(4), client.WithBatchSize(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := streamAll(sess, tr); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if got := raceSet(res.Races); !reflect.DeepEqual(got, want) {
		t.Errorf("sharded race set = %v, want %v", got, want)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}
