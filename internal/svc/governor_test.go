package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fasttrack"
	"fasttrack/client"
	"fasttrack/internal/chaos"
	"fasttrack/trace"
)

// pressureTool wraps a sampling-capable detector and lets the test
// dictate the shadow-memory footprint the governor sees, so memory
// pressure can be turned on and off deterministically.
type pressureTool struct {
	fasttrack.Sampled
	shadow *atomic.Int64 // injected ShadowBytes; 0 = report the real one
}

func (p *pressureTool) Stats() fasttrack.Stats {
	st := p.Sampled.Stats()
	if v := p.shadow.Load(); v != 0 {
		st.ShadowBytes = v
	}
	return st
}

// pressureServer boots a server with a manually ticked governor whose
// sessions all analyze through a pressureTool sharing one shadow knob.
func pressureServer(t *testing.T, cfg Config) (*Server, string, *atomic.Int64) {
	t.Helper()
	shadow := &atomic.Int64{}
	cfg.NewMonitor = func(client.Handshake) (*fasttrack.Monitor, string, error) {
		inner, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
		if err != nil {
			return nil, "", err
		}
		s, ok := inner.(fasttrack.Sampled)
		if !ok {
			return nil, "", fmt.Errorf("FastTrack tool does not sample")
		}
		return fasttrack.NewMonitor(fasttrack.WithTool(&pressureTool{Sampled: s, shadow: shadow})), "FastTrack", nil
	}
	srv, addr := startServer(t, cfg)
	return srv, addr, shadow
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// httpGET fetches a path from the server's HTTP surface.
func httpGET(t *testing.T, hs *httptest.Server, path string) (int, string) {
	t.Helper()
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(hs.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

// TestFidelityLadderEndToEnd is the degradation demo: an adaptive
// session pushed over its shadow-memory budget is walked down the
// ladder full → sampled → coarse by the governor — visible in
// /sessions and the governor metrics, while the session keeps
// ingesting — and walked back up to full once pressure clears.
func TestFidelityLadderEndToEnd(t *testing.T) {
	const budget = 1 << 20
	cfg := Config{
		GovernorInterval: -1, // ticked manually
		StuckTimeout:     -1, // nothing wedges here
		SessionMemBudget: budget,
	}
	srv, addr, shadow := pressureServer(t, cfg)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	sess, err := client.Dial(addr, client.WithFidelity("adaptive"), client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ss := srv.lookup(sess.ID())
	if ss == nil {
		t.Fatal("session not registered")
	}
	if !ss.adaptive || ss.forced {
		t.Fatalf("adaptive=%v forced=%v, want adaptive unforced", ss.adaptive, ss.forced)
	}

	// pump streams one frame of fresh-variable accesses and waits for it
	// to be analyzed, which is the boundary where the worker applies a
	// pending rate change and refreshes the governor's stats snapshot.
	nextVar := uint64(0)
	pump := func() {
		t.Helper()
		for i := 0; i < 64; i++ {
			if err := sess.Write(trace.Wr(0, 1000+nextVar)); err != nil {
				t.Fatal(err)
			}
			nextVar++
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	tick := srv.governorTick

	pump()
	if got := ss.rung.Load(); got != rungFull {
		t.Fatalf("fresh adaptive session on rung %d, want full", got)
	}
	if _, body := httpGET(t, hs, "/sessions"); !strings.Contains(body, `"fidelity": "full"`) {
		t.Errorf("/sessions does not show full fidelity:\n%s", body)
	}

	// Blow the memory budget. Tick 1 requests a stats refresh, the pump
	// delivers it, and two consecutive over-pressure ticks downgrade.
	shadow.Store(2 * budget)
	tick()
	pump()
	tick()
	tick()
	if got := ss.rung.Load(); got != rungSampled {
		t.Fatalf("after 2 pressure ticks: rung %d, want sampled", got)
	}
	pump() // worker applies the sampled rate
	if got := ss.mon.SamplingRate(); got != cfg.DefaultSampleRate && got != 0.25 {
		t.Fatalf("sampling rate %v after downgrade, want server default 0.25", got)
	}

	// Pressure persists: two more ticks reach the coarse rung.
	tick()
	tick()
	if got := ss.rung.Load(); got != rungCoarse {
		t.Fatalf("after 4 pressure ticks: rung %d, want coarse", got)
	}
	eventsBefore := ss.events.Load()
	pump() // still ingesting while degraded
	if got := ss.events.Load(); got != eventsBefore+64 {
		t.Fatalf("coarse session ingested %d events, want %d", got-eventsBefore, 64)
	}
	if got := ss.mon.SamplingRate(); got > 0.04 {
		t.Errorf("coarse sampling rate %v, want default/8", got)
	}
	if _, body := httpGET(t, hs, "/sessions"); !strings.Contains(body, `"fidelity": "coarse(`) {
		t.Errorf("/sessions does not show coarse fidelity:\n%s", body)
	}
	if n := srv.Registry().Snapshot().Counter("svc.governorDowngrades"); n != 2 {
		t.Errorf("governorDowngrades = %d, want 2", n)
	}

	// Pressure clears: the governor waits out the cooldown and the
	// upgrade hysteresis, then climbs back to full one rung at a time.
	shadow.Store(0)
	tick() // requests the refresh that will clear the memory signal
	pump()
	for i := 0; i < 40 && ss.rung.Load() != rungFull; i++ {
		tick()
		pump()
	}
	if got := ss.rung.Load(); got != rungFull {
		t.Fatalf("never recovered to full fidelity, stuck on rung %d", got)
	}
	if got := ss.mon.SamplingRate(); got != 1 {
		t.Errorf("sampling rate %v after recovery, want 1", got)
	}
	if n := srv.Registry().Snapshot().Counter("svc.governorUpgrades"); n != 2 {
		t.Errorf("governorUpgrades = %d, want 2", n)
	}
	if _, body := httpGET(t, hs, "/sessions"); !strings.Contains(body, `"fidelity": "full"`) {
		t.Errorf("/sessions does not show recovered full fidelity:\n%s", body)
	}

	// The degraded stretch skipped some accesses, and the results say so.
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionProbability <= 0 || res.DetectionProbability >= 1 {
		t.Errorf("detection probability %v, want in (0, 1) after a degraded stretch",
			res.DetectionProbability)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionControl drives the server to its session cap: the soft
// limit forces late sessions to start sampled, the hard cap refuses
// with a Retry-After hint, and a retrying dial gets in once capacity
// frees up.
func TestAdmissionControl(t *testing.T) {
	cfg := Config{
		MaxSessions:      5,
		RetryAfterHint:   100 * time.Millisecond,
		GovernorInterval: -1,
	}
	srv, addr := startServer(t, cfg)

	var sessions []*client.Session
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		s, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		sessions = append(sessions, s)
		if ss := srv.lookup(s.ID()); ss.forced {
			t.Errorf("session %d forced sampled below the soft limit", i)
		}
	}

	// Session 5 crosses the soft limit (4/5 in use): admitted, but
	// forced to start sampled with a sampled ceiling.
	s5, err := client.Dial(addr) // asks for full
	if err != nil {
		t.Fatal(err)
	}
	sessions = append(sessions, s5)
	ss5 := srv.lookup(s5.ID())
	if !ss5.forced || !ss5.adaptive {
		t.Fatalf("soft-limited session: forced=%v adaptive=%v, want both", ss5.forced, ss5.adaptive)
	}
	if got := ss5.rung.Load(); got != rungSampled {
		t.Fatalf("soft-limited session on rung %d, want sampled", got)
	}
	if n := srv.Registry().Snapshot().Counter("svc.admissionForcedSampled"); n != 1 {
		t.Errorf("admissionForcedSampled = %d, want 1", n)
	}

	// Session 6 hits the hard cap: refused with code session-cap and the
	// configured Retry-After hint (retries disabled so the refusal is
	// counted exactly once).
	_, err = client.Dial(addr, client.WithRetry(0, 0))
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("over-cap dial error %v, want ServerError", err)
	}
	if se.Code != client.ErrCodeSessionCap || !se.Temporary() {
		t.Errorf("over-cap refusal code %q (temporary %v), want session-cap", se.Code, se.Temporary())
	}
	if se.RetryAfter != cfg.RetryAfterHint {
		t.Errorf("RetryAfter = %v, want %v", se.RetryAfter, cfg.RetryAfterHint)
	}
	if n := srv.Registry().Snapshot().Counter("svc.admissionRefused"); n != 1 {
		t.Errorf("admissionRefused = %d, want 1", n)
	}

	// /readyz flags the saturated node; /healthz stays green.
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if code, body := httpGET(t, hs, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, `"ready": false`) {
		t.Errorf("/readyz at cap: code %d body %s, want 503 not-ready", code, body)
	}
	if code, body := httpGET(t, hs, "/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz at cap: code %d body %s, want 200 ok", code, body)
	}

	// A dial that honors the hint gets in as soon as a slot frees up.
	go func() {
		time.Sleep(30 * time.Millisecond)
		sessions[0].Close()
	}()
	s6, err := client.Dial(addr, client.WithRetry(8, time.Millisecond))
	if err != nil {
		t.Fatalf("retrying dial never admitted: %v", err)
	}
	sessions = append(sessions, s6)

	// s6 filled the freed slot, so the node is at cap again; freeing
	// another slot flips /readyz back to 200.
	if err := sessions[1].Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "closed session to release its slot", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.active < srv.cfg.MaxSessions
	})
	if code, _ := httpGET(t, hs, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after a slot freed: code %d, want 200", code)
	}
}

// TestWatchdogQuarantine wedges one session's analysis forever: the
// watchdog must quarantine exactly that session — severing its
// connection, keeping its monitor untouched, and keeping every HTTP
// probe responsive — while its neighbor streams on unharmed and
// Shutdown drains cleanly without waiting for the wedged worker.
func TestWatchdogQuarantine(t *testing.T) {
	wedged := make(chan struct{})
	// Released only after the server has fully drained (cleanup order:
	// this runs after startServer's Shutdown), proving drain never waits
	// for a quarantined worker.
	t.Cleanup(func() { close(wedged) })

	flowing := make(chan struct{})
	close(flowing)
	var monitors atomic.Int32
	cfg := Config{
		GovernorInterval: -1,
		StuckTimeout:     250 * time.Millisecond, // one manual tick of patience
		NewMonitor: func(client.Handshake) (*fasttrack.Monitor, string, error) {
			inner, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
			if err != nil {
				return nil, "", err
			}
			gate := flowing
			if monitors.Add(1) == 1 {
				gate = wedged // first session blocks forever
			}
			return fasttrack.NewMonitor(fasttrack.WithTool(&gatedTool{Tool: inner, gate: gate})), "FastTrack", nil
		},
	}
	srv, addr := startServer(t, cfg)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	victim, err := client.Dial(addr, client.WithBatchSize(8), client.WithReadTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := victim.Write(trace.Wr(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	vs := srv.lookup(victim.ID())
	waitUntil(t, "victim worker to wedge", func() bool { return vs.working.Load() })

	neighbor, err := client.Dial(addr, client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	defer neighbor.Close()
	tr := testTrace(11)
	want := serialRaces(t, tr)

	srv.governorTick()
	if got := vs.stateName(); got != "quarantined" {
		t.Fatalf("victim state %q after watchdog tick, want quarantined", got)
	}
	snap := srv.Registry().Snapshot()
	if n := snap.Gauge("svc.sessionsQuarantined"); n != 1 {
		t.Errorf("sessionsQuarantined = %d, want 1", n)
	}
	if n := snap.Counter("svc.governorQuarantines"); n != 1 {
		t.Errorf("governorQuarantines = %d, want 1", n)
	}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "svc.session."+victim.ID()+".") {
			t.Errorf("quarantined session metric %s not deleted", name)
		}
	}

	// The neighbor is untouched: full round trip, exact results.
	if err := streamAll(neighbor, tr); err != nil {
		t.Fatal(err)
	}
	if err := neighbor.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := neighbor.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRaces(res.Races, want) {
		t.Errorf("neighbor races diverged after quarantine: got %v want %v", res.Races, want)
	}
	// More ticks must not quarantine the healthy idle neighbor.
	srv.governorTick()
	srv.governorTick()
	if got := srv.lookup(neighbor.ID()).stateName(); got != "streaming" {
		t.Errorf("neighbor state %q after extra ticks, want streaming", got)
	}

	// Every HTTP surface stays responsive: the stats endpoint must not
	// touch the quarantined monitor (its lock is held by the wedged
	// worker forever).
	if _, body := httpGET(t, hs, "/sessions"); !strings.Contains(body, `"state": "quarantined"`) {
		t.Errorf("/sessions does not show the quarantine:\n%s", body)
	}
	if code, body := httpGET(t, hs, "/sessions/"+victim.ID()+"/stats"); code != http.StatusOK ||
		!strings.Contains(body, "quarantined") {
		t.Errorf("stats endpoint on quarantined session: code %d body %s", code, body)
	}
	if _, body := httpGET(t, hs, "/healthz"); !strings.Contains(body, `"quarantined": 1`) {
		t.Errorf("/healthz does not count the quarantine:\n%s", body)
	}

	// The victim's client fails closed.
	if err := victim.Flush(); err == nil {
		t.Error("Flush on quarantined session succeeded")
	}
}

// TestReconnectResume severs a session's connection server-side: the
// client redials under its original lineage with a bumped epoch, keeps
// streaming, and the server both tracks the resume and refuses a stale
// replay of the old epoch.
func TestReconnectResume(t *testing.T) {
	srv, addr := startServer(t, Config{GovernorInterval: -1})
	sess, err := client.Dial(addr, client.WithBatchSize(16), client.WithReconnect(3),
		client.WithRetry(4, time.Millisecond), client.WithReadTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	root := sess.ID()
	if sess.RootID() != root {
		t.Fatalf("RootID %q != first session id %q", sess.RootID(), root)
	}
	for i := 0; i < 64; i++ {
		if err := sess.Write(trace.Wr(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	srv.lookup(root).conn.Close() // the network "fails"

	// Liveness: writes keep flowing into the resumed session; control
	// ops across the drop are transient and retried.
	var flushErr error
	waitUntil(t, "stream to resume", func() bool {
		for i := 0; i < 16; i++ {
			if err := sess.Write(trace.Wr(0, uint64(1000+i))); err != nil {
				flushErr = err
				return false
			}
		}
		flushErr = sess.Flush()
		return flushErr == nil
	})
	if flushErr != nil {
		t.Fatalf("stream never recovered: %v", flushErr)
	}
	if sess.ID() == root {
		t.Fatal("session id unchanged across resume")
	}
	if got := sess.Stats().Resumes; got != 1 {
		t.Errorf("client Resumes = %d, want 1", got)
	}
	if n := srv.Registry().Snapshot().Counter("svc.sessionResumes"); n != 1 {
		t.Errorf("svc.sessionResumes = %d, want 1", n)
	}
	cur := srv.lookup(sess.ID())
	if cur.resumeOf != root || cur.epoch < 1 {
		t.Errorf("resumed session lineage %q epoch %d, want root %q epoch >= 1",
			cur.resumeOf, cur.epoch, root)
	}
	info := cur.info()
	if info.ResumeOf != root || info.Epoch != cur.epoch {
		t.Errorf("info lineage %q/%d, want %q/%d", info.ResumeOf, info.Epoch, root, cur.epoch)
	}
	if _, err := sess.Results(); err != nil {
		t.Fatalf("Results after resume: %v", err)
	}

	// A duplicate of the dead connection (same lineage, stale epoch)
	// must be refused so no event is double-counted into the lineage.
	srv.mu.Lock()
	last := srv.epochs[root]
	srv.mu.Unlock()
	if last != cur.epoch {
		t.Errorf("epoch registry has %d for %s, want %d", last, root, cur.epoch)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, _ := json.Marshal(client.Handshake{Version: client.ProtocolVersion, ResumeOf: root, Epoch: last})
	if err := trace.NewFrameWriter(conn).WriteFrame(client.FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := trace.NewFrameReader(conn, 0).ReadFrame()
	if err != nil || ft != client.FrameErrorMsg {
		t.Fatalf("stale-epoch handshake: frame %d err %v, want an error frame", ft, err)
	}
	var we client.WireError
	if err := json.Unmarshal(payload, &we); err != nil {
		t.Fatal(err)
	}
	if we.Code != client.ErrCodeStaleEpoch {
		t.Errorf("stale-epoch refusal code %q, want %q", we.Code, client.ErrCodeStaleEpoch)
	}
}

// TestFaultConnLatency trickles a session through a high-latency uplink:
// per-write delays stack far past the idle timeout in aggregate, but no
// single gap exceeds it, so eviction must not misfire and the analysis
// must come back exact.
func TestFaultConnLatency(t *testing.T) {
	srv, addr := startServer(t, Config{IdleTimeout: 300 * time.Millisecond})
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		fc := chaos.NewFaultConn(c)
		fc.WriteDelay = 25 * time.Millisecond
		return fc, nil
	}
	sess, err := client.Dial(addr, client.WithDialFunc(dial), client.WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(21)
	want := serialRaces(t, tr)
	if err := streamAll(sess, tr); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !sameRaces(res.Races, want) {
		t.Errorf("slow-uplink races diverged: got %v want %v", res.Races, want)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if n := srv.Registry().Snapshot().Counter("svc.sessionsEvicted"); n != 0 {
		t.Errorf("%d sessions evicted under per-write latency", n)
	}
}

// TestFaultConnStallEvicted freezes the uplink mid-frame for longer
// than the idle timeout: that IS a dead session as far as the server
// can tell, and it must be evicted (the opposite boundary of the
// slow-but-alive cases above).
func TestFaultConnStallEvicted(t *testing.T) {
	srv, addr := startServer(t, Config{IdleTimeout: 100 * time.Millisecond})
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		fc := chaos.NewFaultConn(c)
		fc.StallAt = 4096 // well past the handshake, inside the event stream
		fc.StallFor = 500 * time.Millisecond
		return fc, nil
	}
	sess, err := client.Dial(addr, client.WithDialFunc(dial),
		client.WithBatchSize(32), client.WithReadTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	id := sess.ID()
	for i := 0; i < 2000; i++ {
		if sess.Write(trace.Wr(0, uint64(i%64))) != nil {
			break // the server hung up mid-stall; that's the point
		}
	}
	sess.Flush() // outcome irrelevant; the reply may be lost to the eviction

	waitUntil(t, "stalled session to be evicted", func() bool {
		return srv.Registry().Snapshot().Counter("svc.sessionsEvicted") == 1
	})
	if got := srv.lookup(id).stateName(); got != "evicted" {
		t.Errorf("stalled session state %q, want evicted", got)
	}
}

// TestChaosSoak is the everything-at-once stability run: many client
// lifecycles racing a connection killer and a fast governor, with
// reconnects and forced degradations, ending in zero active sessions,
// no leaked per-session metrics, and a clean drain. SOAK_SECONDS
// stretches it in CI; the default keeps it test-suite friendly.
func TestChaosSoak(t *testing.T) {
	dur := 1500 * time.Millisecond
	if s := os.Getenv("SOAK_SECONDS"); s != "" {
		secs, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("SOAK_SECONDS=%q: %v", s, err)
		}
		dur = time.Duration(secs * float64(time.Second))
	}
	cfg := Config{
		GovernorInterval: 10 * time.Millisecond,
		StuckTimeout:     5 * time.Second,
		SessionMemBudget: 1 << 30,
		MaxSessions:      6,
		QueueDepth:       16,
		IdleTimeout:      2 * time.Second,
	}
	srv, addr := startServer(t, cfg)
	deadline := time.Now().Add(dur)

	// Connection killer: severs a random live session a few times per
	// soak second, driving the reconnect and lost-session paths.
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		rng := rand.New(rand.NewSource(99))
		for time.Now().Before(deadline) {
			time.Sleep(40 * time.Millisecond)
			srv.mu.Lock()
			var live []*session
			for _, ss := range srv.sessions {
				if ss.state.Load() == stateStreaming {
					live = append(live, ss)
				}
			}
			if len(live) > 0 {
				live[rng.Intn(len(live))].conn.Close()
			}
			srv.mu.Unlock()
		}
	}()

	fidelities := []string{"full", "adaptive", "sampled(0.2)"}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for time.Now().Before(deadline) {
				sess, err := client.Dial(addr,
					client.WithFidelity(fidelities[rng.Intn(len(fidelities))]),
					client.WithBatchSize(16),
					client.WithReconnect(4),
					client.WithRetry(4, time.Millisecond),
					client.WithReadTimeout(2*time.Second))
				if err != nil {
					time.Sleep(5 * time.Millisecond) // cap refusal; try again
					continue
				}
				tr := testTrace(rng.Int63n(64))
				for _, e := range tr {
					if sess.Write(e) != nil {
						break
					}
				}
				sess.Flush() // transient failures are part of the weather
				sess.Close() // so is closing a session the killer already severed
			}
		}(c)
	}
	wg.Wait()
	<-killerDone

	// Quiescence: every session winds down, nothing leaks.
	waitUntil(t, "all sessions to finalize", func() bool {
		return srv.Registry().Snapshot().Gauge("svc.sessionsActive") == 0
	})
	snap := srv.Registry().Snapshot()
	if n := snap.Gauge("svc.sessionsQuarantined"); n != 0 {
		t.Errorf("%d sessions quarantined during soak (nothing wedges here)", n)
	}
	for _, m := range []map[string]int64{snap.Counters, snap.Gauges} {
		for name := range m {
			if strings.HasPrefix(name, "svc.session.") {
				t.Errorf("leaked per-session metric %s", name)
			}
		}
	}
	if snap.Counter("svc.eventsTotal") == 0 {
		t.Error("soak ingested nothing")
	}
	// startServer's cleanup asserts the clean drain.
}
