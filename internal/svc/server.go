// Package svc implements racedetectd, the streaming network ingestion
// service: a TCP daemon that multiplexes concurrent analysis sessions,
// each backed by its own Monitor running behind the validation and
// quarantine pipeline. One connection carries one session; frames are
// the trace package's CRC framing and the protocol (handshake, event
// chunks, flush acknowledgements, result queries) is defined by the
// public client package, which this package shares its wire types with.
//
// Architecture per connection:
//
//	reader goroutine ── bounded queue ──> worker goroutine ──> Monitor
//
// The reader parses frames and enqueues them; the worker drains the
// queue strictly in order, ingesting event chunks and answering control
// frames. The queue is the backpressure mechanism: when it is full the
// reader blocks, the kernel's TCP window closes, and the client's
// writes stall — a slow analysis never buffers an unbounded backlog.
// Because the worker is the only goroutine touching a session's
// Monitor, sessions need no per-event locking of their own beyond what
// the Monitor does internally.
//
// Shutdown (SIGTERM in the daemon) drains rather than drops: the
// listener closes, every session's connection closes (stopping the
// readers), the workers finish whatever was already queued, and each
// session is finalized — monitor closed, final results snapshotted, a
// JSON report written if a report directory is configured. Events the
// client has received a FlushOK for are therefore always analyzed.
package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fasttrack"
	"fasttrack/client"
	"fasttrack/internal/obs"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Config parameterizes a Server; the zero value is usable.
type Config struct {
	// QueueDepth bounds each session's frame queue (default 64). Together
	// with MaxFramePayload it caps a session's queued-but-unprocessed
	// bytes at QueueDepth * MaxFramePayload.
	QueueDepth int
	// MaxFramePayload bounds accepted frame payloads
	// (trace.DefaultMaxFramePayload if <= 0).
	MaxFramePayload int
	// IdleTimeout evicts sessions that send no frame for this long
	// (0 = never evict).
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the wait for the hello frame on a new
	// connection (default 10s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each reply write (default 30s).
	WriteTimeout time.Duration
	// MaxSessions caps concurrent sessions (default 256); excess
	// connections are refused with a session-cap error.
	MaxSessions int
	// RetainFinished is how many finalized sessions stay queryable over
	// HTTP (default 64); older ones are forgotten.
	RetainFinished int
	// ReportDir, when non-empty, receives one <sessionID>.json report per
	// finalized session.
	ReportDir string
	// GovernorInterval is the fidelity governor's tick period (default
	// 250ms; negative disables the loop — tests then drive governorTick
	// directly). See governor.go.
	GovernorInterval time.Duration
	// StuckTimeout is how long a session worker may sit on one item
	// without completing it before the watchdog quarantines the session
	// (default 30s; negative disables the watchdog).
	StuckTimeout time.Duration
	// SessionMemBudget is the per-session shadow-memory pressure threshold
	// in bytes: an adaptive session above it is downgraded one fidelity
	// rung at a time until pressure clears (0 = no memory signal).
	SessionMemBudget int64
	// DefaultSampleRate is the sampled rung's rate for sessions that did
	// not pick one in their handshake (default 0.25).
	DefaultSampleRate float64
	// RetryAfterHint is the Retry-After hint attached to session-cap
	// admission refusals (default 1s).
	RetryAfterHint time.Duration
	// Registry receives the service metrics (svc.* plus per-session
	// svc.session.<id>.*); a private registry is created when nil.
	Registry *obs.Registry
	// NewMonitor overrides session monitor construction, used by tests to
	// install instrumented detectors. The default builds a Monitor from
	// the handshake via BuildMonitor.
	NewMonitor func(client.Handshake) (*fasttrack.Monitor, string, error)
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// EventLog, when non-nil, receives structured lifecycle events
	// (session open/end, evictions, quarantines, governor rung moves,
	// admission refusals) in addition to the free-form Logf lines; the
	// daemon's -log-format json wires this to a one-line-JSON emitter.
	EventLog func(Event)
	// Tracing enables the pipeline tracer: sessions that request tracing
	// in their handshake get per-frame stage spans (wire gap, queue wait,
	// decode, detect, callback) in a bounded ring served at /debug/trace,
	// stage-latency histograms in /metrics, and the per-frame trace-ID
	// wire extension. Off by default; per-frame cost when on is a few
	// clock reads and one small allocation.
	Tracing bool
	// SlowFrameThreshold is the processing latency (queue wait through
	// callback, excluding the inter-frame wire gap) above which a traced
	// frame is also kept in the slow-frame log (default 50ms).
	SlowFrameThreshold time.Duration
	// TraceSpans caps the recent-span ring (default 256).
	TraceSpans int
	// NodeID names this daemon in a fleet: it is published in /readyz
	// and /healthz, stamped on admission refusals and HelloOK replies
	// (so clients and the fleet aggregator can attribute state to a
	// node), and attached to every SessionInfo. Empty is fine for a
	// single-node deployment; the fields are simply omitted.
	NodeID string
}

// Event is one structured lifecycle event for Config.EventLog. Kind is
// the stable event name: "open", "end", "eviction", "quarantine",
// "downgrade", "upgrade", "refused".
type Event struct {
	Kind     string `json:"event"`
	Session  string `json:"session,omitempty"`
	Remote   string `json:"remote,omitempty"`
	Fidelity string `json:"fidelity,omitempty"` // rung after the event
	Reason   string `json:"reason,omitempty"`
}

// event emits a structured lifecycle event when a sink is configured.
func (s *Server) event(e Event) {
	if s.cfg.EventLog != nil {
		s.cfg.EventLog(e)
	}
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.QueueDepth <= 0 {
		d.QueueDepth = 64
	}
	if d.MaxFramePayload <= 0 {
		d.MaxFramePayload = trace.DefaultMaxFramePayload
	}
	if d.HandshakeTimeout <= 0 {
		d.HandshakeTimeout = 10 * time.Second
	}
	if d.WriteTimeout <= 0 {
		d.WriteTimeout = 30 * time.Second
	}
	if d.MaxSessions <= 0 {
		d.MaxSessions = 256
	}
	if d.RetainFinished <= 0 {
		d.RetainFinished = 64
	}
	if d.GovernorInterval == 0 {
		d.GovernorInterval = 250 * time.Millisecond
	}
	if d.StuckTimeout == 0 {
		d.StuckTimeout = 30 * time.Second
	}
	if d.DefaultSampleRate <= 0 || d.DefaultSampleRate >= 1 {
		d.DefaultSampleRate = 0.25
	}
	if d.RetryAfterHint <= 0 {
		d.RetryAfterHint = time.Second
	}
	if d.SlowFrameThreshold <= 0 {
		d.SlowFrameThreshold = 50 * time.Millisecond
	}
	if d.TraceSpans <= 0 {
		d.TraceSpans = 256
	}
	if d.Registry == nil {
		d.Registry = obs.NewRegistry()
	}
	if d.NewMonitor == nil {
		d.NewMonitor = BuildMonitor
	}
	if d.Logf == nil {
		d.Logf = func(string, ...any) {}
	}
	return d
}

// MaxShards bounds the per-session shard count a handshake may request.
// Shard count drives per-stripe lock and detector-state allocation, so
// without a cap a single handshake could force an arbitrarily large
// allocation before the session has ingested a byte.
const MaxShards = 256

// BuildMonitor constructs a session Monitor from a handshake, returning
// the monitor and the canonical detector name. It is the default
// Config.NewMonitor.
func BuildMonitor(h client.Handshake) (*fasttrack.Monitor, string, error) {
	if h.Shards > MaxShards {
		return nil, "", fmt.Errorf("%s: shards %d exceeds limit %d", client.ErrCodeBadRequest, h.Shards, MaxShards)
	}
	name := h.Tool
	if name == "" {
		name = "FastTrack"
	}
	hints := fasttrack.Hints{Provenance: h.Provenance, DetailedReports: h.Detailed}
	tool, err := fasttrack.NewTool(name, hints)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", client.ErrCodeUnknownTool, err)
	}
	policy := fasttrack.PolicyOff
	if h.Policy != "" {
		p, ok := rr.PolicyFromString(h.Policy)
		if !ok {
			return nil, "", fmt.Errorf("%s: unknown validation policy %q", client.ErrCodeBadRequest, h.Policy)
		}
		policy = p
	}
	gran := fasttrack.Fine
	switch h.Gran {
	case "", "fine":
	case "coarse":
		gran = fasttrack.Coarse
	default:
		return nil, "", fmt.Errorf("%s: unknown granularity %q", client.ErrCodeBadRequest, h.Gran)
	}
	if h.Shards > 1 {
		if _, ok := tool.(fasttrack.ShardedTool); !ok {
			return nil, "", fmt.Errorf("%s: tool %q does not support sharded ingestion", client.ErrCodeBadRequest, name)
		}
		if policy != fasttrack.PolicyOff {
			return nil, "", fmt.Errorf("%s: shards > 1 is incompatible with validation policy %q", client.ErrCodeBadRequest, h.Policy)
		}
	}
	opts := []fasttrack.MonitorOption{
		fasttrack.WithDetector(name),
		fasttrack.WithGranularity(gran),
		fasttrack.WithValidation(policy),
		fasttrack.WithHints(hints),
	}
	if h.Shards > 1 {
		opts = append(opts, fasttrack.WithShards(h.Shards))
	}
	return fasttrack.NewMonitor(opts...), tool.Name(), nil
}

// serverMetrics caches the aggregate svc.* metric handles.
type serverMetrics struct {
	sessionsActive  *obs.Gauge
	sessionsTotal   *obs.Counter
	sessionsFailed  *obs.Counter
	sessionsEvicted *obs.Counter
	framesTotal     *obs.Counter
	eventsTotal     *obs.Counter
	bytesTotal      *obs.Counter
	stalls          *obs.Counter // reader found the session queue full
	errorsTotal     *obs.Counter // error frames sent
	queuePeak       *obs.Gauge   // high-water mark of any session's queue

	sessionsQuarantined    *obs.Gauge   // sessions isolated by the watchdog
	governorDowngrades     *obs.Counter // fidelity rungs moved down
	governorUpgrades       *obs.Counter // fidelity rungs moved up
	governorQuarantines    *obs.Counter // watchdog quarantines
	admissionRefused       *obs.Counter // hard-cap handshake refusals
	admissionForcedSampled *obs.Counter // soft-limit forced-sampled admissions
	resumes                *obs.Counter // sessions admitted as resumes
}

// stageHists are the per-stage frame-latency histograms (nanoseconds),
// published as svc.stage.<name>.ns when tracing is enabled.
type stageHists struct {
	wire, queue, decode, detect, callback *obs.Histogram
}

// Server is the racedetectd session multiplexer.
type Server struct {
	cfg Config
	reg *obs.Registry
	sm  serverMetrics

	// Pipeline tracer state; all nil unless Config.Tracing. spans keeps
	// the most recent traced frames, slow the frames whose processing
	// latency crossed SlowFrameThreshold.
	spans *obs.SpanRing
	slow  *obs.SpanRing
	stage *stageHists

	mu       sync.Mutex
	ln       net.Listener
	sessions map[string]*session
	finished []string // finalized session ids, oldest first, for retention
	active   int
	// activeN mirrors active for lock-free readers: /healthz must stay
	// answerable even when s.mu is wedged (a stalled Serve/Shutdown
	// path must not turn a live process into a probe-dead one). Written
	// only under s.mu, wherever active changes.
	activeN atomic.Int64
	// epochs maps a resume lineage's root session id to the highest epoch
	// admitted for it; a resume handshake must beat it or is refused as
	// stale. epochOrder bounds the map (oldest lineage evicted first).
	epochs     map[string]int64
	epochOrder []string

	nextID      atomic.Int64
	draining    atomic.Bool
	quarantined atomic.Int64 // sessions currently isolated by the watchdog
	wg          sync.WaitGroup

	govStop     chan struct{}
	govStopOnce sync.Once
	govOnce     sync.Once
	stuckTicksN int // governor ticks of zero progress before quarantine
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		sessions: map[string]*session{},
		epochs:   map[string]int64{},
		govStop:  make(chan struct{}),
		sm: serverMetrics{
			sessionsActive:  reg.Gauge("svc.sessionsActive"),
			sessionsTotal:   reg.Counter("svc.sessionsTotal"),
			sessionsFailed:  reg.Counter("svc.sessionsFailed"),
			sessionsEvicted: reg.Counter("svc.sessionsEvicted"),
			framesTotal:     reg.Counter("svc.framesTotal"),
			eventsTotal:     reg.Counter("svc.eventsTotal"),
			bytesTotal:      reg.Counter("svc.bytesTotal"),
			stalls:          reg.Counter("svc.backpressureStalls"),
			errorsTotal:     reg.Counter("svc.errorsTotal"),
			queuePeak:       reg.Gauge("svc.queueDepthPeak"),

			sessionsQuarantined:    reg.Gauge("svc.sessionsQuarantined"),
			governorDowngrades:     reg.Counter("svc.governorDowngrades"),
			governorUpgrades:       reg.Counter("svc.governorUpgrades"),
			governorQuarantines:    reg.Counter("svc.governorQuarantines"),
			admissionRefused:       reg.Counter("svc.admissionRefused"),
			admissionForcedSampled: reg.Counter("svc.admissionForcedSampled"),
			resumes:                reg.Counter("svc.sessionResumes"),
		},
	}
	if cfg.Tracing {
		s.spans = obs.NewSpanRing(cfg.TraceSpans)
		s.slow = obs.NewSpanRing(64)
		s.stage = &stageHists{
			wire:     reg.Histogram("svc.stage.wire.ns"),
			queue:    reg.Histogram("svc.stage.queue.ns"),
			decode:   reg.Histogram("svc.stage.decode.ns"),
			detect:   reg.Histogram("svc.stage.detect.ns"),
			callback: reg.Histogram("svc.stage.callback.ns"),
		}
	}
	// The watchdog's patience in ticks. With a manually ticked governor
	// (GovernorInterval < 0, tests) the default interval still scales the
	// timeout into a tick count.
	if cfg.StuckTimeout > 0 {
		interval := cfg.GovernorInterval
		if interval <= 0 {
			interval = 250 * time.Millisecond
		}
		s.stuckTicksN = int(cfg.StuckTimeout / interval)
		if s.stuckTicksN < 1 {
			s.stuckTicksN = 1
		}
	}
	return s
}

// softLimitedLocked reports whether admission is under soft pressure
// (>= 80% of the session cap in use): new sessions are admitted but
// forced to start sampled. Callers hold s.mu.
func (s *Server) softLimitedLocked() bool {
	return s.active*5 >= s.cfg.MaxSessions*4
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Serve accepts connections on ln until Shutdown (which returns nil
// here) or a listener error. Each connection is handled on its own
// goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.cfg.GovernorInterval > 0 {
		s.govOnce.Do(func() { go s.governorLoop(s.govStop) })
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		// The draining check and the Add are one step under s.mu:
		// Shutdown sets draining while holding the lock, so once it
		// releases the lock and starts wg.Wait, no handler can slip in
		// between a stale draining check and its Add.
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown drains the server: it stops accepting, closes every
// session's connection (already-queued frames are still processed), and
// waits — bounded by ctx — for all sessions to finalize and emit their
// reports.
func (s *Server) Shutdown(ctx context.Context) error {
	s.govStopOnce.Do(func() { close(s.govStop) })
	s.mu.Lock()
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	for _, sess := range s.sessions {
		if !sess.done() {
			sess.conn.Close()
		}
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("svc: drain incomplete: %w", ctx.Err())
	}
}

// handleConn performs the handshake, registers the session, and runs
// the reader loop; the worker runs on its own goroutine.
func (s *Server) handleConn(conn net.Conn) {
	ic := &idleConn{Conn: conn}
	fr := trace.NewFrameReader(ic, s.cfg.MaxFramePayload)
	fw := trace.NewFrameWriter(conn)

	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	t, payload, err := fr.ReadFrame()
	if err != nil || t != client.FrameHello {
		s.refuse(conn, fw, client.ErrCodeProtocol, "expected hello frame")
		return
	}
	var h client.Handshake
	if err := json.Unmarshal(payload, &h); err != nil {
		s.refuse(conn, fw, client.ErrCodeProtocol, "malformed handshake: "+err.Error())
		return
	}
	if h.Version != client.ProtocolVersion {
		s.refuse(conn, fw, client.ErrCodeProtocol,
			fmt.Sprintf("protocol version %d not supported (want %d)", h.Version, client.ProtocolVersion))
		return
	}
	if s.draining.Load() {
		s.refuse(conn, fw, client.ErrCodeDraining, "server is draining")
		return
	}

	// Admission, atomically with the epoch guard: hard cap refuses (with
	// a Retry-After hint), the soft limit forces the session to start
	// sampled, and a resume must beat the lineage's last admitted epoch.
	s.mu.Lock()
	if s.active >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.sm.admissionRefused.Inc()
		s.refuseRetry(conn, fw, client.ErrCodeSessionCap,
			fmt.Sprintf("session cap reached (%d)", s.cfg.MaxSessions), s.cfg.RetryAfterHint)
		return
	}
	if h.ResumeOf != "" {
		if h.Epoch <= s.epochs[h.ResumeOf] {
			last := s.epochs[h.ResumeOf]
			s.mu.Unlock()
			s.refuse(conn, fw, client.ErrCodeStaleEpoch,
				fmt.Sprintf("resume epoch %d for %s is not newer than %d", h.Epoch, h.ResumeOf, last))
			return
		}
		s.recordEpochLocked(h.ResumeOf, h.Epoch)
	}
	forced := s.softLimitedLocked()
	s.active++ // reserved; released in finalize
	s.activeN.Store(int64(s.active))
	s.mu.Unlock()

	release := func() {
		s.mu.Lock()
		s.active--
		s.activeN.Store(int64(s.active))
		s.mu.Unlock()
	}

	plan, err := s.resolveFidelity(h, forced)
	if err != nil {
		release()
		code, msg := client.ErrCodeBadRequest, err.Error()
		if c, m, ok := cutCode(msg); ok {
			code, msg = c, m
		}
		s.refuse(conn, fw, code, msg)
		return
	}

	mon, toolName, err := s.cfg.NewMonitor(h)
	if err != nil {
		release()
		code, msg := client.ErrCodeBadRequest, err.Error()
		if c, m, ok := cutCode(msg); ok {
			code, msg = c, m
		}
		s.refuse(conn, fw, code, msg)
		return
	}

	// Apply the starting rate, which doubles as the sampling-capability
	// probe: an explicit sampled/adaptive request needs a tool that can
	// sample, while a merely forced-sampled admission of a full request
	// falls back to an ordinary full session.
	if plan.mode != client.FidelityFull || plan.forced {
		startRate := 1.0
		if plan.start > rungFull {
			startRate = plan.baseRate
		}
		if !mon.SetSamplingRate(startRate) {
			if plan.mode != client.FidelityFull {
				release()
				mon.Close()
				s.refuse(conn, fw, client.ErrCodeBadRequest,
					fmt.Sprintf("tool %q does not support %s fidelity", toolName, plan.mode))
				return
			}
			plan = fidelityPlan{mode: client.FidelityFull, baseRate: plan.baseRate}
		}
	}
	if plan.forced {
		s.sm.admissionForcedSampled.Inc()
	}
	if h.ResumeOf != "" {
		s.sm.resumes.Inc()
	}

	id := fmt.Sprintf("s%06d", s.nextID.Add(1))
	sess := newSession(s, id, conn, fw, mon, toolName, h, plan)
	s.mu.Lock()
	s.sessions[id] = sess
	s.mu.Unlock()
	s.sm.sessionsActive.Add(1)
	s.sm.sessionsTotal.Inc()
	s.cfg.Logf("svc: session %s open (tool=%s policy=%q shards=%d fidelity=%s) from %s",
		id, toolName, h.Policy, h.Shards, sess.fidelityString(plan.start), conn.RemoteAddr())
	s.event(Event{Kind: "open", Session: id, Remote: sess.remote, Fidelity: sess.fidelityString(plan.start)})

	s.wg.Add(1)
	go func() {
		defer sess.workerDone()
		sess.workerLoop()
	}()
	ok := client.HelloOK{
		SessionID:     id,
		Fidelity:      rungNames[plan.start],
		SampleRate:    sess.rateFor(plan.start),
		ForcedSampled: plan.forced,
		Tracing:       sess.traced,
		Node:          s.cfg.NodeID,
	}
	if err := sess.reply(client.FrameHelloOK, ok); err != nil {
		// The client never saw a session; don't read from it.
		conn.Close()
		sess.closeQueue() // worker finalizes on the empty queue
		return
	}
	conn.SetReadDeadline(time.Time{}) // clear the handshake deadline
	ic.timeout = s.cfg.IdleTimeout
	sess.readLoop(fr)
}

// idleConn wraps a session connection so the idle timeout measures gaps
// in byte arrival rather than whole-frame transfer time: once armed,
// every Read refreshes the read deadline, so a slow-but-active client
// streaming a large frame over a slow link is never misclassified as
// idle mid-frame. Read is only called from the session's reader
// goroutine (via its FrameReader), so timeout needs no locking after
// handleConn arms it.
type idleConn struct {
	net.Conn
	timeout time.Duration // 0 = disarmed; the deadline is left untouched
}

func (c *idleConn) Read(p []byte) (int, error) {
	if c.timeout > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
	return c.Conn.Read(p)
}

// refuse answers a connection that never became a session.
func (s *Server) refuse(conn net.Conn, fw *trace.FrameWriter, code, msg string) {
	s.refuseRetry(conn, fw, code, msg, 0)
}

// refuseRetry is refuse with a Retry-After hint for refusals the client
// should treat as transient (session cap, draining).
func (s *Server) refuseRetry(conn net.Conn, fw *trace.FrameWriter, code, msg string, retryAfter time.Duration) {
	s.sm.errorsTotal.Inc()
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	we := client.WireError{Code: code, Msg: msg, Node: s.cfg.NodeID}
	if retryAfter > 0 {
		we.RetryAfterMillis = retryAfter.Milliseconds()
	}
	b, _ := json.Marshal(we)
	fw.WriteFrame(client.FrameErrorMsg, b)
	conn.Close()
	s.cfg.Logf("svc: refused %s: %s: %s", conn.RemoteAddr(), code, msg)
	s.event(Event{Kind: "refused", Remote: conn.RemoteAddr().String(), Reason: code + ": " + msg})
}

// maxEpochLineages bounds the resume-epoch map so hostile handshakes
// cannot grow it without bound; the oldest lineages are forgotten first.
const maxEpochLineages = 4096

// recordEpochLocked remembers the highest epoch admitted for a resume
// lineage. Callers hold s.mu.
func (s *Server) recordEpochLocked(root string, epoch int64) {
	if _, ok := s.epochs[root]; !ok {
		s.epochOrder = append(s.epochOrder, root)
		for len(s.epochOrder) > maxEpochLineages {
			delete(s.epochs, s.epochOrder[0])
			s.epochOrder = s.epochOrder[1:]
		}
	}
	s.epochs[root] = epoch
}

// finalized moves a finalized session into the retention window.
func (s *Server) finalized(sess *session) {
	s.mu.Lock()
	s.active--
	s.activeN.Store(int64(s.active))
	s.finished = append(s.finished, sess.id)
	for len(s.finished) > s.cfg.RetainFinished {
		delete(s.sessions, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	s.sm.sessionsActive.Add(-1)
	s.reg.DeleteByPrefix("svc.session." + sess.id + ".")
	if dir := s.cfg.ReportDir; dir != "" {
		if err := sess.writeReport(dir); err != nil {
			s.cfg.Logf("svc: session %s report: %v", sess.id, err)
		}
	}
	s.cfg.Logf("svc: session %s %s (events=%d frames=%d races=%d)",
		sess.id, sess.stateName(), sess.events.Load(), sess.frames.Load(), sess.raceCount(statsBudget))
	kind := "end"
	if sess.state.Load() == stateEvicted {
		kind = "eviction"
	}
	reason := sess.stateName()
	if e, _ := sess.errMsg.Load().(string); e != "" {
		reason = e
	}
	s.event(Event{Kind: kind, Session: sess.id, Remote: sess.remote,
		Fidelity: sess.fidelityString(sess.rung.Load()), Reason: reason})
}

// lookup returns the session with the given id, live or retained.
func (s *Server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// SessionInfo is the HTTP summary of one session.
type SessionInfo struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Tool       string `json:"tool"`
	Events     int64  `json:"events"`
	Frames     int64  `json:"frames"`
	Bytes      int64  `json:"bytes"`
	Races      int    `json:"races"`
	QueueDepth int    `json:"queueDepth"`
	StartedAt  string `json:"startedAt"`
	// Fidelity is the session's current ladder position ("full",
	// "sampled(0.25)", "coarse(0.031)", "shed"); SampleRate is that
	// rung's rate and DetectionProbability the fraction of offered
	// accesses actually analyzed so far.
	Fidelity             string  `json:"fidelity,omitempty"`
	SampleRate           float64 `json:"sampleRate,omitempty"`
	DetectionProbability float64 `json:"detectionProbability,omitempty"`
	Epoch                int64   `json:"epoch,omitempty"`
	ResumeOf             string  `json:"resumeOf,omitempty"`
	Err                  string  `json:"err,omitempty"`
	// Node is the serving daemon's identity (Config.NodeID), so a
	// fleet-merged session listing attributes each session to its node.
	Node string `json:"node,omitempty"`
}

// Handler returns the server's HTTP surface: the live metrics registry
// at /metrics plus the session query endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		infos := make([]SessionInfo, 0, len(s.sessions))
		for _, sess := range s.sessions {
			infos = append(infos, sess.info())
		}
		s.mu.Unlock()
		sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
		writeJSON(w, infos)
	})
	mux.HandleFunc("GET /sessions/{id}/races", func(w http.ResponseWriter, r *http.Request) {
		sess := s.lookup(r.PathValue("id"))
		if sess == nil {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		writeJSON(w, sess.results(0))
	})
	mux.HandleFunc("GET /sessions/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		sess := s.lookup(r.PathValue("id"))
		if sess == nil {
			http.Error(w, "no such session", http.StatusNotFound)
			return
		}
		// tryStats re-checks the quarantine state around a non-blocking
		// lock acquisition, so the watchdog quarantining this session
		// concurrently can never leave the handler blocked on the wedged
		// worker's monitor lock (the old check-then-Stats() sequence
		// could: quarantine landing between the check and the acquire
		// parked the handler behind a lock that is never released).
		st, hl, _ := sess.tryStats(statsBudget)
		writeJSON(w, struct {
			SessionInfo
			Stats  fasttrack.Stats `json:"stats"`
			Health client.Health   `json:"health"`
		}{sess.info(), st, hl})
	})
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		out := struct {
			Enabled         bool       `json:"enabled"`
			SlowThresholdNs int64      `json:"slowThresholdNs,omitempty"`
			Recorded        int64      `json:"recorded"`
			Spans           []obs.Span `json:"spans"`
			Slow            []obs.Span `json:"slow"`
		}{Spans: []obs.Span{}, Slow: []obs.Span{}}
		if s.spans != nil {
			out.Enabled = true
			out.SlowThresholdNs = s.cfg.SlowFrameThreshold.Nanoseconds()
			out.Recorded = s.spans.Recorded()
			out.Spans = s.spans.Snapshot()
			out.Slow = s.slow.Snapshot()
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness: the process is up and serving; governor state is
		// reported but never fails the probe. Reads atomics ONLY — no
		// s.mu — so a stalled Serve/Shutdown path holding the server
		// mutex cannot turn a live process into a probe-dead one (a
		// liveness probe that can deadlock gets the process killed for
		// the exact condition it should survive).
		writeJSON(w, struct {
			Status      string `json:"status"`
			Node        string `json:"node,omitempty"`
			Draining    bool   `json:"draining"`
			Sessions    int64  `json:"sessions"`
			Quarantined int64  `json:"quarantined"`
		}{"ok", s.cfg.NodeID, s.draining.Load(), s.activeN.Load(), s.quarantined.Load()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		// Readiness: a draining or hard-capped node should get no new
		// work routed to it. Unlike /healthz this deliberately holds
		// s.mu: readiness pairs active with the soft-limit predicate and
		// the shed census as one consistent admission snapshot (the
		// fleet tracker steers on the combination, and a torn read could
		// report ready=false with no pressure flag set), and a probe
		// timing out because the mutex is wedged is the right answer for
		// "should new sessions route here".
		s.mu.Lock()
		active := s.active
		soft := s.softLimitedLocked()
		shed := 0
		for _, sess := range s.sessions {
			if sess.state.Load() == stateStreaming && sess.rung.Load() == rungShed {
				shed++
			}
		}
		s.mu.Unlock()
		draining := s.draining.Load()
		ready := !draining && active < s.cfg.MaxSessions
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, struct {
			Ready          bool   `json:"ready"`
			Node           string `json:"node,omitempty"`
			Draining       bool   `json:"draining"`
			ActiveSessions int    `json:"activeSessions"`
			MaxSessions    int    `json:"maxSessions"`
			SoftLimited    bool   `json:"softLimited"`
			Shedding       bool   `json:"shedding"`
			ShedSessions   int    `json:"shedSessions"`
			Quarantined    int64  `json:"quarantined"`
		}{ready, s.cfg.NodeID, draining, active, s.cfg.MaxSessions, soft, shed > 0, shed, s.quarantined.Load()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errIdleEvicted marks a read-deadline expiry as an idle eviction.
var errIdleEvicted = errors.New("svc: session evicted after idle timeout")

// writeReport writes a session's final JSON report into dir.
func (sess *session) writeReport(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	report := struct {
		Schema string         `json:"schema"`
		Info   SessionInfo    `json:"session"`
		Result client.Results `json:"result"`
	}{"fasttrack/svc-session/v1", sess.info(), sess.results(0)}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, sess.id+".json"), append(b, '\n'), 0o644)
}
