package svc

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fasttrack/client"
	"fasttrack/internal/obs"
	"fasttrack/trace"
)

// racyTrace is a minimal guaranteed write-write race: thread 1 is
// forked, thread 0 writes x3 under a lock, thread 1 writes x3 with no
// synchronization ordering it after.
func racyTrace() trace.Trace {
	return trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 5),
		trace.Wr(0, 3),
		trace.Rel(0, 5),
		trace.Wr(1, 3),
	}
}

func TestTracingEndToEnd(t *testing.T) {
	srv, addr := startServer(t, Config{Tracing: true})
	sess, err := client.Dial(addr, client.WithTracing(), client.WithBatchSize(16))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.TracingGranted() {
		t.Fatal("tracing-enabled server did not grant tracing")
	}
	if err := streamAll(sess, testTrace(3)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	clientSpans := sess.TraceSpans()
	if len(clientSpans) == 0 {
		t.Fatal("no client-side spans recorded")
	}
	for _, sp := range clientSpans {
		if sp.TraceID == 0 {
			t.Errorf("client span missing trace ID: %+v", sp)
		}
		if sp.StageNs("enqueue") < 0 || len(sp.Stages) != 2 {
			t.Errorf("client span stages = %+v, want enqueue+write", sp.Stages)
		}
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	code, body := httpGET(t, hs, "/debug/trace")
	if code != 200 {
		t.Fatalf("/debug/trace: HTTP %d", code)
	}
	var dbg struct {
		Enabled         bool       `json:"enabled"`
		SlowThresholdNs int64      `json:"slowThresholdNs"`
		Recorded        int64      `json:"recorded"`
		Spans           []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &dbg); err != nil {
		t.Fatalf("/debug/trace: %v\n%s", err, body)
	}
	if !dbg.Enabled || dbg.SlowThresholdNs <= 0 {
		t.Errorf("enabled=%v slowThresholdNs=%d", dbg.Enabled, dbg.SlowThresholdNs)
	}
	if dbg.Recorded == 0 || len(dbg.Spans) == 0 {
		t.Fatalf("no server spans: recorded=%d spans=%d", dbg.Recorded, len(dbg.Spans))
	}

	// The client-stamped trace ID joins the two sides of the pipeline.
	serverIDs := map[uint64]bool{}
	for _, sp := range dbg.Spans {
		if sp.TraceID == 0 {
			t.Errorf("server span missing trace ID: %+v", sp)
		}
		serverIDs[sp.TraceID] = true
		for _, name := range []string{"wire", "queue", "decode", "detect", "callback"} {
			found := false
			for _, st := range sp.Stages {
				if st.Name == name {
					found = true
				}
			}
			if !found {
				t.Errorf("server span missing stage %q: %+v", name, sp.Stages)
			}
		}
	}
	joined := 0
	for _, sp := range clientSpans {
		if serverIDs[sp.TraceID] {
			joined++
		}
	}
	if joined == 0 {
		t.Error("no client span's trace ID matches a server span")
	}

	// Stage latencies are published as histograms.
	code, body = httpGET(t, hs, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	for _, name := range []string{"svc.stage.detect.ns", "svc.stage.queue.ns"} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracingNotGrantedWhenServerOff(t *testing.T) {
	srv, addr := startServer(t, Config{}) // tracing off
	sess, err := client.Dial(addr, client.WithTracing(), client.WithBatchSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if sess.TracingGranted() {
		t.Error("server without tracing granted it")
	}
	// Frames go out unflagged; the session still works end to end.
	if err := streamAll(sess, testTrace(4)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	// Client-side spans are still recorded (with zero trace IDs).
	if spans := sess.TraceSpans(); len(spans) == 0 {
		t.Error("no client spans on ungranted tracing")
	} else if spans[0].TraceID != 0 {
		t.Errorf("ungranted session stamped trace ID %d", spans[0].TraceID)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	_, body := httpGET(t, hs, "/debug/trace")
	if !strings.Contains(body, `"enabled": false`) {
		t.Errorf("/debug/trace should report disabled: %s", body)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProvenanceOverWire(t *testing.T) {
	srv, addr := startServer(t, Config{})
	sess, err := client.Dial(addr, client.WithProvenance(), client.WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	if err := streamAll(sess, racyTrace()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 1 {
		t.Fatalf("races = %+v, want exactly 1", res.Races)
	}
	if len(res.Detailed) != 1 {
		t.Fatalf("detailed = %+v, want exactly 1", res.Detailed)
	}
	d := res.Detailed[0]
	if d.Report != res.Races[0] {
		t.Errorf("detail embeds %+v, want %+v", d.Report, res.Races[0])
	}
	if d.Explanation == "" || d.FailedCheck == "" || len(d.AccessClock) == 0 {
		t.Errorf("detail missing evidence: %+v", d)
	}
	if !strings.Contains(d.Explanation, "failed happens-before check") {
		t.Errorf("explanation = %q", d.Explanation)
	}

	// The retained session serves the same evidence over HTTP.
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	code, body := httpGET(t, hs, "/sessions/"+id+"/races")
	if code != 200 {
		t.Fatalf("/sessions/%s/races: HTTP %d", id, code)
	}
	var got client.Results
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Detailed) != 1 || got.Detailed[0].Explanation != d.Explanation {
		t.Errorf("HTTP detailed reports diverge from wire results: %s", body)
	}
}

func TestProvenanceOffKeepsResultsPlain(t *testing.T) {
	_, addr := startServer(t, Config{})
	sess, err := client.Dial(addr, client.WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := streamAll(sess, racyTrace()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 1 {
		t.Fatalf("races = %+v, want exactly 1", res.Races)
	}
	if res.Detailed != nil {
		t.Errorf("provenance off but Detailed = %+v", res.Detailed)
	}
}

func TestEventLogStructured(t *testing.T) {
	var (
		mu     sync.Mutex
		events []Event
	)
	_, addr := startServer(t, Config{EventLog: func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}})
	sess, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	if err := streamAll(sess, racyTrace()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var open, end *Event
	for i := range events {
		switch events[i].Kind {
		case "open":
			open = &events[i]
		case "end":
			end = &events[i]
		}
	}
	if open == nil || end == nil {
		t.Fatalf("missing open/end events: %+v", events)
	}
	if open.Session != id || open.Remote == "" || open.Fidelity != "full" {
		t.Errorf("open event = %+v", *open)
	}
	if end.Session != id || end.Reason != "completed" {
		t.Errorf("end event = %+v", *end)
	}
}
