package svc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fasttrack"
	"fasttrack/client"
	"fasttrack/internal/obs"
	"fasttrack/trace"
)

// Session states. A session is live in stateStreaming and terminal in
// every other state; terminal states are reached exactly once, in the
// worker goroutine, via finalize.
const (
	stateStreaming   int32 = iota
	stateCompleted         // client sent FrameClose and got its final results
	stateDrained           // finalized by a server drain (Shutdown)
	stateLost              // connection ended without a close frame
	stateEvicted           // idle timeout
	stateFailed            // protocol, decode, or ingest error
	stateQuarantined       // watchdog isolated a wedged session (see governor.go)
)

var stateNames = map[int32]string{
	stateStreaming:   "streaming",
	stateCompleted:   "completed",
	stateDrained:     "drained",
	stateLost:        "lost",
	stateEvicted:     "evicted",
	stateFailed:      "failed",
	stateQuarantined: "quarantined",
}

// qitem is one unit of worker input: a frame, or a terminal marker
// (err != nil or terminal == true) enqueued by the reader when the
// connection ends.
type qitem struct {
	t        trace.FrameType
	payload  []byte
	err      error // terminal: the reader's exit cause (nil on FrameClose)
	terminal bool

	// Tracing fields, populated by the reader only on traced sessions:
	// when the frame arrived, the gap since the session's previous frame
	// (the span's "wire" stage), and the client-stamped trace ID.
	recv    int64
	gap     int64
	traceID uint64
}

// session is one connection's analysis state.
type session struct {
	id     string
	srv    *Server
	conn   net.Conn
	mon    *fasttrack.Monitor
	tool   string
	hello  client.Handshake
	remote string // client address, kept for logs after conn closes
	traced bool   // server tracing on AND the handshake asked for it

	wmu sync.Mutex // serializes reply frames onto conn
	fw  *trace.FrameWriter

	queue chan qitem

	state      atomic.Int32
	events     atomic.Int64
	frames     atomic.Int64 // event-chunk frames accepted
	bytes      atomic.Int64
	lastActive atomic.Int64 // unix nanos
	started    time.Time
	errMsg     atomic.Value // string: failure cause

	closeQ sync.Once
	doneCh chan struct{} // closed by finalize
	queueD *obs.Gauge

	// scratch is the frame-decode buffer reused across event chunks; it
	// is touched only by the worker goroutine (ingestChunk).
	scratch []trace.Event

	// Fidelity and governor plumbing (see governor.go). The immutable
	// part is fixed at handshake; rung/pendingRate are written by the
	// governor and read by the worker and the HTTP surface; the
	// statsReq→shadowBytes/toolDisabled pair is the worker-refreshed
	// snapshot the governor's memory/poison signals read, so the
	// governor itself never takes the monitor lock.
	fidelity string  // requested mode: full | sampled | adaptive
	adaptive bool    // governor may move the session along the ladder
	forced   bool    // admission soft limit forced a sampled start
	baseRate float64 // the sampled rung's rate
	epoch    int64   // resume epoch (0 on a first connection)
	resumeOf string  // lineage root session id ("" unless resumed)

	rung         atomic.Int32
	pendingRate  atomic.Uint64 // Float64bits of the rate the worker should apply
	appliedRate  uint64        // worker-local: Float64bits of the applied rate
	statsReq     atomic.Bool
	shadowBytes  atomic.Int64
	toolDisabled atomic.Bool
	working      atomic.Bool  // worker is between dequeue and completion of an item
	progress     atomic.Int64 // items the worker has fully processed
	raceN        atomic.Int64 // last race count successfully read off the monitor
	fidGauge     *obs.Gauge

	abortCh chan struct{} // closed by quarantine; unblocks the reader
	wgOnce  sync.Once     // releases the worker's WaitGroup slot exactly once

	// gov is governor-tick-local state; only governor ticks touch it.
	gov struct {
		lastProgress          int64
		stuckTicks            int
		overTicks, clearTicks int
		cooldown              int
		ceiling               int32
		requestCeiling        int32
	}
}

func newSession(srv *Server, id string, conn net.Conn, fw *trace.FrameWriter,
	mon *fasttrack.Monitor, tool string, h client.Handshake, plan fidelityPlan) *session {
	sess := &session{
		id:       id,
		srv:      srv,
		conn:     conn,
		remote:   conn.RemoteAddr().String(),
		traced:   srv.cfg.Tracing && h.Tracing,
		fw:       fw,
		mon:      mon,
		tool:     tool,
		hello:    h,
		queue:    make(chan qitem, srv.cfg.QueueDepth),
		started:  time.Now(),
		doneCh:   make(chan struct{}),
		abortCh:  make(chan struct{}),
		queueD:   srv.reg.Gauge("svc.session." + id + ".queueDepth"),
		fidGauge: srv.reg.Gauge("svc.session." + id + ".fidelityRung"),
		fidelity: plan.mode,
		adaptive: plan.adaptive,
		forced:   plan.forced,
		baseRate: plan.baseRate,
		epoch:    h.Epoch,
		resumeOf: h.ResumeOf,
	}
	sess.gov.ceiling = plan.ceiling
	sess.gov.requestCeiling = plan.requestCeiling
	sess.setRung(plan.start)
	sess.appliedRate = sess.pendingRate.Load() // handleConn applies the starting rate
	sess.lastActive.Store(time.Now().UnixNano())
	return sess
}

// workerDone releases the worker goroutine's WaitGroup slot exactly
// once: normally from the worker's own defer, or on its behalf from
// quarantine when the worker is wedged and drain must not wait for it.
func (sess *session) workerDone() { sess.wgOnce.Do(sess.srv.wg.Done) }

func (sess *session) stateName() string { return stateNames[sess.state.Load()] }

func (sess *session) done() bool {
	select {
	case <-sess.doneCh:
		return true
	default:
		return false
	}
}

// closeQueue ends the worker's input exactly once.
func (sess *session) closeQueue() { sess.closeQ.Do(func() { close(sess.queue) }) }

// readLoop parses frames off the connection and enqueues them for the
// worker; it runs on the connection's accept goroutine and owns the
// queue's producer side. It never touches the Monitor. The idle timeout
// is enforced by the idleConn the FrameReader wraps: each arriving byte
// refreshes the deadline, so a deadline expiry here means the client
// sent nothing at all for a full idle interval.
func (sess *session) readLoop(fr *trace.FrameReader) {
	defer sess.closeQueue()
	var lastRecv int64 // previous frame's arrival, for the "wire" gap
	for {
		t, payload, err := fr.ReadFrame()
		if err != nil {
			// errors.As, not a type assertion: the FrameReader wraps a
			// deadline expiry that lands mid-frame ("frame N payload:
			// ..."), and a client that froze inside a frame is exactly as
			// idle as one that froze between frames — both are evictions,
			// not protocol failures.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !sess.srv.draining.Load() {
				err = errIdleEvicted
			}
			sess.enqueue(qitem{terminal: true, err: err})
			return
		}
		now := time.Now().UnixNano()
		sess.lastActive.Store(now)
		sess.srv.sm.framesTotal.Inc()
		// 9 = frame header (5) + CRC trailer (4) wire overhead.
		sess.srv.sm.bytesTotal.Add(int64(len(payload)) + 9)
		it := qitem{t: t, payload: payload}
		if sess.traced {
			it.recv, it.traceID = now, fr.TraceID()
			if lastRecv != 0 {
				it.gap = now - lastRecv
			}
			lastRecv = now
		}
		if !sess.enqueue(it) {
			return // quarantined; the deferred closeQueue lets an unwedged worker exit
		}
		if t == client.FrameClose {
			// The worker finalizes and closes the connection; reading
			// further would only race with that.
			sess.enqueue(qitem{terminal: true})
			return
		}
	}
}

// enqueue hands one item to the worker, blocking when the queue is
// full: the reader stops reading, the TCP window fills, and the
// client's sender stalls — bounded memory under a slow analysis. It
// returns false (abandoning the item) when the session is quarantined,
// so a reader blocked against a wedged worker's full queue can always
// exit. Only the reader goroutine calls it, which is what makes the
// deferred closeQueue after a false return safe.
func (sess *session) enqueue(it qitem) bool {
	select {
	case sess.queue <- it:
	default:
		if !it.terminal {
			sess.srv.sm.stalls.Inc()
		}
		select {
		case sess.queue <- it:
		case <-sess.abortCh:
			return false
		}
	}
	d := len(sess.queue)
	sess.queueD.Set(int64(d))
	sess.srv.sm.queuePeak.Max(int64(d))
	return true
}

// workerLoop is the session's single consumer: it drains the queue in
// order, ingesting event chunks and answering control frames, then
// finalizes the session. After a failure it keeps draining (discarding)
// so a reader blocked on a full queue can always finish.
func (sess *session) workerLoop() {
	var (
		terminalErr  error
		sawClose     bool
		failed       bool
		failureCause error
	)
	for it := range sess.queue {
		sess.working.Store(true)
		sess.queueD.Set(int64(len(sess.queue)))
		if it.terminal {
			terminalErr = it.err
		} else if failed || sawClose {
			// draining only
		} else if err := sess.handleFrame(it); err != nil {
			failed = true
			failureCause = err
			sess.fail(err)
		} else if it.t == client.FrameClose {
			sawClose = true
			sess.conn.Close()
		}
		sess.progress.Add(1)
		sess.working.Store(false)
	}

	switch {
	case failed:
		sess.finalize(stateFailed, failureCause)
	case sawClose:
		sess.finalize(stateCompleted, nil)
	case errors.Is(terminalErr, errIdleEvicted):
		sess.srv.sm.sessionsEvicted.Inc()
		sess.conn.Close()
		sess.finalize(stateEvicted, terminalErr)
	case sess.srv.draining.Load():
		sess.finalize(stateDrained, nil)
	case terminalErr != nil && !isDisconnect(terminalErr):
		// The stream itself was bad (CRC mismatch, oversized frame, torn
		// mid-frame): tell the client before finalizing as failed.
		sess.fail(fmt.Errorf("%s: %v", client.ErrCodeBadFrame, terminalErr))
		sess.finalize(stateFailed, terminalErr)
	default:
		sess.finalize(stateLost, terminalErr)
	}
}

// isDisconnect reports whether a read error is an ordinary end of
// connection rather than a damaged stream.
func isDisconnect(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)
}

// handleFrame processes one frame in the worker; a non-nil error fails
// the session.
func (sess *session) handleFrame(it qitem) error {
	switch it.t {
	case client.FrameEvents:
		var dequeued int64 // tracing: when the worker picked the frame up
		if sess.traced {
			dequeued = time.Now().UnixNano()
		}
		// Apply any governor rate change at the frame boundary: the
		// worker is the monitor's only event producer, so this is the
		// one place a rate write needs no coordination beyond the
		// monitor's own lock — and a wedged worker (which can't apply
		// anything) is exactly what the watchdog quarantines.
		if r := sess.pendingRate.Load(); r != sess.appliedRate {
			sess.appliedRate = r
			sess.mon.SetSamplingRate(math.Float64frombits(r))
		}
		n, decodeNs, detectNs, err := sess.ingestChunk(it.payload)
		sess.events.Add(n)
		sess.srv.sm.eventsTotal.Add(n)
		if err != nil {
			return err
		}
		sess.frames.Add(1)
		sess.bytes.Add(int64(len(it.payload)))
		if sess.statsReq.CompareAndSwap(true, false) {
			// Refresh the governor's lock-free pressure snapshot.
			st := sess.mon.Stats()
			sess.shadowBytes.Store(st.ShadowBytes)
			sess.toolDisabled.Store(sess.mon.Health().ToolDisabled)
		}
		if sess.traced {
			sess.recordSpan(it, dequeued, decodeNs, detectNs)
		}
		return nil
	case client.FrameFlush:
		var q client.Seq
		if err := json.Unmarshal(it.payload, &q); err != nil {
			return fmt.Errorf("%s: malformed flush: %v", client.ErrCodeProtocol, err)
		}
		return sess.reply(client.FrameFlushOK, client.FlushOK{Seq: q.Seq, Events: sess.events.Load()})
	case client.FrameQuery:
		var q client.Seq
		if err := json.Unmarshal(it.payload, &q); err != nil {
			return fmt.Errorf("%s: malformed query: %v", client.ErrCodeProtocol, err)
		}
		return sess.reply(client.FrameResults, sess.results(q.Seq))
	case client.FrameClose:
		var q client.Seq
		json.Unmarshal(it.payload, &q) // seq optional on close
		return sess.reply(client.FrameCloseOK, sess.results(q.Seq))
	case client.FrameHello:
		return fmt.Errorf("%s: duplicate hello", client.ErrCodeProtocol)
	default:
		return fmt.Errorf("%s: unexpected frame type %d", client.ErrCodeProtocol, it.t)
	}
}

// ingestChunk decodes one event-chunk payload (a complete binary trace)
// into the session's reused scratch buffer and ingests it as a single
// batch: one wire frame is one Monitor.IngestBatch call, so the
// per-event lock and dispatch bookkeeping is amortized across the
// frame. It returns how many events were ingested even on error, so
// accounting stays exact. On traced sessions it also times the decode
// and detect stages (both 0 otherwise).
func (sess *session) ingestChunk(payload []byte) (n, decodeNs, detectNs int64, err error) {
	var t0 int64
	if sess.traced {
		t0 = time.Now().UnixNano()
	}
	sc := trace.NewScanner(bytes.NewReader(payload))
	events := sess.scratch[:0]
	for sc.Scan() {
		events = append(events, sc.Event())
	}
	sess.scratch = events // keep the grown buffer for the next frame
	var t1 int64
	if sess.traced {
		t1 = time.Now().UnixNano()
		decodeNs = t1 - t0
	}
	if derr := sc.Err(); derr != nil {
		// The frame's CRC passed but the payload is malformed. Ingest the
		// decodable prefix so accounting matches the per-event path, then
		// fail the session on the decode error.
		k, _ := sess.mon.IngestBatch(events)
		return int64(k), decodeNs, 0, fmt.Errorf("%s: chunk %d: %v", client.ErrCodeDecode, sess.frames.Load(), derr)
	}
	k, ierr := sess.mon.IngestBatch(events)
	if sess.traced {
		detectNs = time.Now().UnixNano() - t1
	}
	if ierr != nil {
		return int64(k), decodeNs, detectNs, fmt.Errorf("%s: %v", client.ErrCodeIngest, ierr)
	}
	return int64(k), decodeNs, detectNs, nil
}

// recordSpan publishes one traced event frame's span: "wire" is the
// arrival gap since the session's previous frame, "queue" the wait in
// the session queue, "decode"/"detect" from ingestChunk, and "callback"
// the post-ingest remainder (accounting, governor snapshot refresh).
// Frames whose processing latency (everything but "wire") crosses the
// slow threshold are also kept in the slow-frame log.
func (sess *session) recordSpan(it qitem, dequeued, decodeNs, detectNs int64) {
	now := time.Now().UnixNano()
	sp := obs.Span{TraceID: it.traceID, Label: sess.id, Seq: sess.frames.Load(), Start: it.recv}
	sp.AddStage("wire", it.gap)
	sp.AddStage("queue", dequeued-it.recv)
	sp.AddStage("decode", decodeNs)
	sp.AddStage("detect", detectNs)
	sp.AddStage("callback", now-dequeued-decodeNs-detectNs)
	srv := sess.srv
	srv.spans.Record(sp)
	st := srv.stage
	st.wire.Observe(it.gap)
	st.queue.Observe(dequeued - it.recv)
	st.decode.Observe(decodeNs)
	st.detect.Observe(detectNs)
	st.callback.Observe(now - dequeued - decodeNs - detectNs)
	if now-it.recv >= srv.cfg.SlowFrameThreshold.Nanoseconds() {
		srv.slow.Record(sp)
	}
}

// results snapshots the session's analysis state for a reply, a query
// endpoint, or a report. A quarantined session's monitor is off-limits
// (the wedged worker may hold its lock forever), so the snapshot is
// built from the lock-free counters only.
func (sess *session) results(seq int64) client.Results {
	res := client.Results{
		Seq:       seq,
		SessionID: sess.id,
		Tool:      sess.tool,
		Events:    sess.events.Load(),
	}
	if sess.state.Load() == stateQuarantined {
		msg, _ := sess.errMsg.Load().(string)
		res.Health = client.Health{Err: "quarantined: " + msg}
		return res
	}
	st := sess.mon.Stats()
	res.Races = sess.mon.Races()
	res.Stats = st
	res.Health = client.HealthFrom(sess.mon.Health())
	res.DetectionProbability = st.DetectionProbability()
	if sess.hello.Provenance {
		res.Detailed = sess.mon.DetailedRaces()
	}
	return res
}

// statsBudget bounds how long an HTTP stats read will retry a contended
// monitor lock before answering with a busy placeholder. Normal
// contention (a worker mid-batch) clears in microseconds; a wedged
// worker never clears, and the budget is what keeps the handler from
// inheriting the wedge.
const statsBudget = 100 * time.Millisecond

// tryStats snapshots the monitor's stats and health without ever
// blocking on its lock. The quarantine check and the lock acquisition
// race against the watchdog: a session can be quarantined between any
// state check and a blocking Stats() call, leaving the caller parked
// behind a monitor lock the wedged worker never releases. So the loop
// re-checks the state before every non-blocking TryStats attempt — if
// the watchdog wins the race at any point, the next iteration sees
// stateQuarantined and answers from the lock-free counters; if the lock
// is merely busy, it retries until the budget runs out. ok is false on
// the quarantined and budget-exhausted fallbacks.
func (sess *session) tryStats(budget time.Duration) (fasttrack.Stats, client.Health, bool) {
	deadline := time.Now().Add(budget)
	for {
		if sess.state.Load() == stateQuarantined {
			msg, _ := sess.errMsg.Load().(string)
			return fasttrack.Stats{}, client.Health{Err: "quarantined: " + msg}, false
		}
		if st, hl, ok := sess.mon.TryStats(); ok {
			return st, client.HealthFrom(hl), true
		}
		if !time.Now().Before(deadline) {
			return fasttrack.Stats{}, client.Health{Err: "stats unavailable: monitor lock busy"}, false
		}
		time.Sleep(time.Millisecond)
	}
}

// raceCount reports the warning count without ever blocking on the
// monitor lock — the same watchdog/wedge race as tryStats (a plain
// Races() call from a listing parked the whole /sessions response
// behind a wedged worker's lock). A quarantined session or a lock still
// busy at the budget answers the last successfully observed count:
// slightly stale data instead of an unbounded hang.
func (sess *session) raceCount(budget time.Duration) int {
	deadline := time.Now().Add(budget)
	for {
		if sess.state.Load() == stateQuarantined {
			return int(sess.raceN.Load())
		}
		if rs, ok := sess.mon.TryRaces(); ok {
			sess.raceN.Store(int64(len(rs)))
			return len(rs)
		}
		if !time.Now().Before(deadline) {
			return int(sess.raceN.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// reply serializes one frame onto the connection.
func (sess *session) reply(t trace.FrameType, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	sess.conn.SetWriteDeadline(time.Now().Add(sess.srv.cfg.WriteTimeout))
	return sess.fw.WriteFrame(t, b)
}

// fail sends a best-effort error frame and severs the connection; the
// worker keeps draining and finalize records the cause.
func (sess *session) fail(cause error) {
	sess.srv.sm.errorsTotal.Inc()
	code, msg := client.ErrCodeProtocol, cause.Error()
	if c, m, ok := cutCode(msg); ok {
		code, msg = c, m
	}
	sess.reply(client.FrameErrorMsg, client.WireError{Code: code, Msg: msg})
	sess.conn.Close()
}

// cutCode splits "code: message" when the prefix looks like one of the
// wire error codes (a single token without spaces).
func cutCode(s string) (code, msg string, ok bool) {
	c, m, found := strings.Cut(s, ": ")
	if !found || c == "" || strings.ContainsAny(c, " :") {
		return "", "", false
	}
	return c, m, true
}

// finalize moves the session to a terminal state exactly once: the
// monitor is closed (its final races/stats/health stay queryable), the
// per-session metrics are deleted, and the report is written.
func (sess *session) finalize(state int32, cause error) {
	if !sess.state.CompareAndSwap(stateStreaming, state) {
		return
	}
	if cause != nil {
		sess.errMsg.Store(cause.Error())
		if state == stateFailed {
			sess.srv.sm.sessionsFailed.Inc()
		}
	}
	sess.mon.Close()
	close(sess.doneCh)
	sess.srv.finalized(sess)
}

// info builds the HTTP summary. Like results, it must not touch a
// quarantined session's monitor.
func (sess *session) info() SessionInfo {
	rung := sess.rung.Load()
	inf := SessionInfo{
		ID:         sess.id,
		State:      sess.stateName(),
		Tool:       sess.tool,
		Events:     sess.events.Load(),
		Frames:     sess.frames.Load(),
		Bytes:      sess.bytes.Load(),
		Races:      sess.raceCount(statsBudget),
		QueueDepth: len(sess.queue),
		StartedAt:  sess.started.UTC().Format(time.RFC3339Nano),
		Fidelity:   sess.fidelityString(rung),
		SampleRate: sess.rateFor(rung),
		Epoch:      sess.epoch,
		ResumeOf:   sess.resumeOf,
		Node:       sess.srv.cfg.NodeID,
	}
	// Same watchdog race as the stats endpoint: bound the monitor read
	// so a listing never hangs on a session quarantined mid-call.
	if st, _, ok := sess.tryStats(statsBudget); ok {
		inf.DetectionProbability = st.DetectionProbability()
	}
	if e, _ := sess.errMsg.Load().(string); e != "" {
		inf.Err = e
	}
	return inf
}
