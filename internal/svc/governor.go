package svc

import (
	"fmt"
	"math"
	"time"

	"fasttrack/client"
)

// This file implements the fidelity governor: racedetectd's graceful-
// degradation layer. Every session sits on a fidelity ladder
//
//	full → sampled(p) → coarse → shed
//
// where each rung is a sampling rate of the session detector's variable
// space (see internal/core/sampling.go): full analyzes everything,
// sampled analyzes the session's base rate p (handshake SampleRate or
// the server default), coarse is the deep-sampling rung at p/8 — named
// for its coverage; shadow granularity itself is immutable per session,
// because remixing fine and coarse location ids mid-stream could alias
// distinct variables and break the no-false-positives guarantee — and
// shed analyzes nothing while still counting events and keeping the
// happens-before clocks warm (sync events are never sampled), so a
// later upgrade resumes sound analysis immediately.
//
// The governor goroutine ticks on every live session and consumes ONLY
// lock-free signals: the worker's progress counter, the queue depth,
// and the shadow-byte / health snapshot the worker refreshes at frame
// boundaries on request. It never takes a session's monitor lock, and
// rate changes are applied by the session worker itself between
// batches — so a session wedged inside its detector can never wedge
// the governor, it can only get quarantined by it.
//
// Ladder moves use hysteresis: downgradeAfter consecutive over-pressure
// ticks move one rung down, upgradeAfter consecutive clear ticks (after
// a cooldown) move one rung up, never above the session's ceiling
// (sampled, for sessions admitted under the soft limit). A session
// whose detector the resilience layer disabled (poisoned by repeated
// panics) is forced straight to shed.

// Fidelity ladder rungs, best first. Stored per session as an atomic
// int32 (written by the governor, read by the HTTP surface).
const (
	rungFull int32 = iota
	rungSampled
	rungCoarse
	rungShed
)

var rungNames = [...]string{"full", "sampled", "coarse", "shed"}

// Governor hysteresis, in ticks.
const (
	downgradeAfter = 2 // consecutive pressure ticks per downgrade
	upgradeAfter   = 4 // consecutive clear ticks per upgrade
	cooldownTicks  = 4 // minimum ticks between a move and the next upgrade
)

// rateFor maps a ladder rung to the session's sampling rate.
func (sess *session) rateFor(rung int32) float64 {
	switch rung {
	case rungFull:
		return 1
	case rungSampled:
		return sess.baseRate
	case rungCoarse:
		return sess.baseRate / 8
	default:
		return 0
	}
}

// fidelityString renders a rung for humans: "full", "sampled(0.25)",
// "coarse(0.031)", "shed".
func (sess *session) fidelityString(rung int32) string {
	switch rung {
	case rungFull:
		return "full"
	case rungShed:
		return "shed"
	default:
		return fmt.Sprintf("%s(%.3g)", rungNames[rung], sess.rateFor(rung))
	}
}

// setRung moves a session to the given rung: the worker applies the new
// sampling rate at its next frame boundary; the HTTP surface and the
// per-session gauge see it immediately.
func (sess *session) setRung(rung int32) {
	sess.rung.Store(rung)
	sess.pendingRate.Store(math.Float64bits(sess.rateFor(rung)))
	sess.fidGauge.Set(int64(rung))
}

// governorLoop ticks until stop closes. It is started by Serve when
// Config.GovernorInterval is not negative; tests drive governorTick
// directly for determinism.
func (s *Server) governorLoop(stop chan struct{}) {
	t := time.NewTicker(s.cfg.GovernorInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.governorTick()
		}
	}
}

// governorTick runs one governor pass over the live sessions: watchdog
// first (on every session), then adaptive fidelity control.
func (s *Server) governorTick() {
	s.mu.Lock()
	soft := s.softLimitedLocked()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess.state.Load() == stateStreaming {
			live = append(live, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range live {
		s.governSession(sess, soft)
	}
}

// governSession applies one tick to one session. All sess.gov fields
// are touched only from governor ticks (one at a time), never from the
// session's own goroutines. soft reports whether the admission soft
// limit is currently engaged.
func (s *Server) governSession(sess *session, soft bool) {
	// Watchdog: a worker that is busy on an item yet has completed
	// nothing since the last tick is wedged (a poisoned detector
	// spinning, a hostile payload, a deadlocked tool). Quarantine after
	// StuckTimeout's worth of ticks: sever the connection and release
	// the worker's drain obligations, but kill no neighbor.
	progress := sess.progress.Load()
	if sess.working.Load() && progress == sess.gov.lastProgress {
		sess.gov.stuckTicks++
		if s.stuckTicksN > 0 && sess.gov.stuckTicks >= s.stuckTicksN {
			s.quarantine(sess, fmt.Sprintf("no worker progress in %v with input pending", s.cfg.StuckTimeout))
			return
		}
	} else {
		sess.gov.stuckTicks = 0
	}
	sess.gov.lastProgress = progress

	if !sess.adaptive {
		return
	}

	// A force-sampled admission keeps its ceiling at sampled only while
	// the node stays soft-limited; once admission pressure clears, the
	// session may be governed back up to what it originally asked for.
	if sess.forced && !soft && sess.gov.ceiling > sess.gov.requestCeiling {
		sess.gov.ceiling = sess.gov.requestCeiling
	}

	// Poisoned pipeline: the resilience layer disabled the tool, so
	// analysis work is wasted; shed keeps the stream drained and the
	// accounting honest without burning cycles.
	if sess.toolDisabled.Load() {
		if sess.rung.Load() != rungShed {
			sess.setRung(rungShed)
			s.sm.governorDowngrades.Inc()
			s.cfg.Logf("svc: session %s shed (tool disabled)", sess.id)
			s.event(Event{Kind: "downgrade", Session: sess.id, Remote: sess.remote,
				Fidelity: "shed", Reason: "tool disabled"})
		}
		return
	}

	queued := len(sess.queue)
	pressure := queued*4 >= s.cfg.QueueDepth*3
	if b := s.cfg.SessionMemBudget; b > 0 && sess.shadowBytes.Load() > b {
		pressure = true
	}

	rung := sess.rung.Load()
	if pressure {
		sess.gov.overTicks++
		sess.gov.clearTicks = 0
		if sess.gov.overTicks >= downgradeAfter && rung < rungShed {
			sess.setRung(rung + 1)
			sess.gov.overTicks = 0
			sess.gov.cooldown = cooldownTicks
			s.sm.governorDowngrades.Inc()
			s.cfg.Logf("svc: session %s downgraded to %s (queue=%d shadowBytes=%d)",
				sess.id, sess.fidelityString(rung+1), queued, sess.shadowBytes.Load())
			s.event(Event{Kind: "downgrade", Session: sess.id, Remote: sess.remote,
				Fidelity: sess.fidelityString(rung + 1),
				Reason:   fmt.Sprintf("queue=%d shadowBytes=%d", queued, sess.shadowBytes.Load())})
		}
	} else {
		sess.gov.overTicks = 0
		sess.gov.clearTicks++
		if sess.gov.cooldown > 0 {
			sess.gov.cooldown--
		} else if sess.gov.clearTicks >= upgradeAfter && rung > sess.gov.ceiling {
			sess.setRung(rung - 1)
			sess.gov.clearTicks = 0
			sess.gov.cooldown = cooldownTicks
			s.sm.governorUpgrades.Inc()
			s.cfg.Logf("svc: session %s upgraded to %s", sess.id, sess.fidelityString(rung-1))
			s.event(Event{Kind: "upgrade", Session: sess.id, Remote: sess.remote,
				Fidelity: sess.fidelityString(rung - 1), Reason: "pressure cleared"})
		}
	}

	// Ask the worker for a fresh shadow/health snapshot at its next
	// frame boundary, feeding the next tick's memory signal.
	sess.statsReq.Store(true)
}

// quarantine isolates a stuck session without touching its monitor (the
// wedged worker may hold that lock forever): the connection is severed
// so the reader exits, the worker's WaitGroup slot is released so drain
// never waits on it, and the session's capacity is handed back. The
// wedged goroutine itself cannot be killed; it is leaked by design,
// bounded by the quarantine counter, and if it ever unwedges its
// finalize is a no-op (the state CAS below has already won).
func (s *Server) quarantine(sess *session, reason string) {
	if !sess.state.CompareAndSwap(stateStreaming, stateQuarantined) {
		return
	}
	sess.errMsg.Store(reason)
	close(sess.abortCh) // unblocks a reader stuck enqueueing into the full queue
	sess.conn.Close()   // unblocks a reader stuck in a frame read
	sess.workerDone()   // drain no longer waits for the wedged worker
	s.mu.Lock()
	s.active--
	s.finished = append(s.finished, sess.id) // age out of /sessions with the retention window
	for len(s.finished) > s.cfg.RetainFinished {
		delete(s.sessions, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	s.sm.sessionsActive.Add(-1)
	s.sm.sessionsQuarantined.Add(1)
	s.sm.governorQuarantines.Inc()
	s.quarantined.Add(1)
	s.reg.DeleteByPrefix("svc.session." + sess.id + ".")
	s.cfg.Logf("svc: session %s quarantined: %s", sess.id, reason)
	s.event(Event{Kind: "quarantine", Session: sess.id, Remote: sess.remote,
		Fidelity: sess.fidelityString(sess.rung.Load()), Reason: reason})
}

// fidelityPlan is a session's resolved starting position on the ladder.
type fidelityPlan struct {
	mode           string // canonical requested mode
	adaptive       bool   // governor may move the session
	forced         bool   // admission soft limit forced a sampled start
	start          int32  // starting rung
	ceiling        int32  // best rung the governor may restore (for now)
	requestCeiling int32  // best rung once admission pressure clears
	baseRate       float64
}

// resolveFidelity validates a handshake's fidelity request against the
// admission decision. forced reports that the soft admission limit is
// engaged: the session starts sampled regardless of the request and is
// governed (adaptively) with a ceiling of sampled until the limit
// clears, after which its requested ceiling applies again.
func (s *Server) resolveFidelity(h client.Handshake, forced bool) (fidelityPlan, error) {
	mode, rate, err := client.ParseFidelity(h.Fidelity)
	if err != nil {
		return fidelityPlan{}, fmt.Errorf("%s: %v", client.ErrCodeBadRequest, err)
	}
	if rate == 0 {
		rate = h.SampleRate
	}
	if rate < 0 || rate > 1 {
		return fidelityPlan{}, fmt.Errorf("%s: sample rate %v out of range (0, 1]", client.ErrCodeBadRequest, h.SampleRate)
	}
	p := fidelityPlan{mode: mode, baseRate: rate}
	if p.baseRate == 0 || p.baseRate == 1 {
		p.baseRate = s.cfg.DefaultSampleRate
	}
	switch mode {
	case client.FidelitySampled:
		p.start, p.requestCeiling = rungSampled, rungSampled
	case client.FidelityAdaptive:
		p.adaptive = true
	}
	p.ceiling = p.requestCeiling
	if forced {
		p.forced, p.adaptive = true, true
		if p.start < rungSampled {
			p.start = rungSampled
		}
		if p.ceiling < rungSampled {
			p.ceiling = rungSampled
		}
	}
	return p, nil
}
