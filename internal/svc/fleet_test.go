package svc

// Fleet-tier end-to-end tests: node identity on the wire, the routed
// client against real servers (byte-identical race lists, steering away
// from full nodes, mid-session failover), and the liveness/stats
// regressions that keep a single wedged or locked component from taking
// the HTTP surface down with it.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fasttrack/client"
	"fasttrack/internal/fleet"
	"fasttrack/trace"
)

// TestStatsWhileMonitorWedged is the regression for the stats handler's
// check-then-act window: a worker wedged INSIDE the monitor (holding
// its lock, session still streaming, not yet quarantined) must not park
// the handler forever behind that lock. The old handler checked the
// quarantine state and then called the blocking Stats(); with the lock
// wedged it never returned and the probe's HTTP client hung until its
// own timeout.
func TestStatsWhileMonitorWedged(t *testing.T) {
	srv, addr, gate := gatedServer(t, Config{GovernorInterval: -1})
	// Open the gate before startServer's cleanup drains (cleanups run
	// after this test function's defers), so shutdown never inherits the
	// wedge this test manufactures.
	defer close(gate)

	sess, err := client.Dial(addr, client.WithBatchSize(8), client.WithReadTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := sess.Write(trace.Wr(0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	vs := srv.lookup(sess.ID())
	waitUntil(t, "worker to wedge inside the monitor", func() bool { return vs.working.Load() })

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	start := time.Now()
	code, body := httpGET(t, hs, "/sessions/"+sess.ID()+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats on wedged session: code %d body %s", code, body)
	}
	if !strings.Contains(body, "monitor lock busy") {
		t.Errorf("stats on wedged session did not report the busy lock:\n%s", body)
	}
	// Bounded by the stats budget, not the probe client's 5s timeout.
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("stats handler took %v on a wedged monitor, want ~%v", el, statsBudget)
	}
}

// TestHealthzWithServerMutexHeld is the liveness regression: /healthz
// must answer from atomics alone, so a stalled operation holding the
// server mutex (a slow drain, a stuck accept path) cannot make the
// liveness probe time out and get a live process killed.
func TestHealthzWithServerMutexHeld(t *testing.T) {
	srv, _ := startServer(t, Config{NodeID: "n7"})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	srv.mu.Lock()
	defer srv.mu.Unlock()
	code, body := httpGET(t, hs, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz under held server mutex: code %d body %s", code, body)
	}
	if !strings.Contains(body, `"node": "n7"`) {
		t.Errorf("/healthz does not carry the node identity:\n%s", body)
	}
}

// TestNodeIdentity checks the fleet plumbing of Config.NodeID: the
// accepted handshake, admission refusals, /readyz (with the shed
// census), and the session listing all carry it.
func TestNodeIdentity(t *testing.T) {
	srv, addr := startServer(t, Config{NodeID: "n3", MaxSessions: 1, GovernorInterval: -1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	sess, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.Node(); got != "n3" {
		t.Errorf("Session.Node() = %q, want n3", got)
	}

	// The refusal at the cap is stamped too — that is what lets the
	// fleet tracker attribute data-path refusals without a probe.
	_, err = client.Dial(addr, client.WithRetry(0, 0))
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("dial at cap: %v, want ServerError", err)
	}
	if se.Node != "n3" {
		t.Errorf("refusal node = %q, want n3", se.Node)
	}

	// Shed census in /readyz: park the live session on the shed rung.
	srv.lookup(sess.ID()).rung.Store(rungShed)
	code, body := httpGET(t, hs, "/readyz")
	if code != http.StatusServiceUnavailable { // at the cap
		t.Errorf("/readyz at cap: code %d, want 503", code)
	}
	for _, want := range []string{`"node": "n3"`, `"shedding": true`, `"shedSessions": 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("/readyz missing %s:\n%s", want, body)
		}
	}
	if _, body := httpGET(t, hs, "/sessions"); !strings.Contains(body, `"node": "n3"`) {
		t.Errorf("/sessions entries not attributed to the node:\n%s", body)
	}
}

// fleetOfServers boots n servers with node ids n1..nN and returns their
// specs for the routed client.
func fleetOfServers(t *testing.T, n int, cfg func(i int) Config) ([]*Server, []fleet.Node) {
	t.Helper()
	srvs := make([]*Server, n)
	specs := make([]fleet.Node, n)
	for i := 0; i < n; i++ {
		c := Config{}
		if cfg != nil {
			c = cfg(i)
		}
		if c.NodeID == "" {
			c.NodeID = "n" + string(rune('1'+i))
		}
		var addr string
		srvs[i], addr = startServer(t, c)
		specs[i] = fleet.Node{Addr: addr}
	}
	return srvs, specs
}

// keyOwnedBy finds a session key whose rendezvous owner is the given
// address (bounded search; the hash spreads keys, so a handful of
// probes always suffices).
func keyOwnedBy(t *testing.T, f *client.Fleet, addr string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		key := "owned-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)) + "-" + time.Duration(i).String()
		if owner, ok := f.Owner(key); ok && owner == addr {
			return key
		}
	}
	t.Fatal("no key found for owner ", addr)
	return ""
}

// TestFleetRoutedRoundTrip is the fleet correctness gate: sessions
// routed across three real servers produce race lists byte-identical to
// the in-process serial replay, keys spread across nodes, and the same
// key lands on the same node twice.
func TestFleetRoutedRoundTrip(t *testing.T) {
	_, specs := fleetOfServers(t, 3, nil)
	f := client.NewFleetNodes(specs) // no HTTP addresses: pure data-path routing
	defer f.Close()

	nodesUsed := make(map[string]int)
	for i := 0; i < 6; i++ {
		key := "trip-" + string(rune('a'+i))
		tr := testTrace(int64(100 + i))
		want := serialRaces(t, tr)

		sess, err := f.Dial(key, client.WithBatchSize(64))
		if err != nil {
			t.Fatal(err)
		}
		nodesUsed[sess.Node()]++

		// Stickiness: the owner the tracker reports is where we landed,
		// and a second dial with the same key agrees.
		if owner, _ := f.Owner(key); owner != sess.Addr() {
			t.Errorf("key %s: landed on %s, owner is %s", key, sess.Addr(), owner)
		}
		again, err := f.Dial(key)
		if err != nil {
			t.Fatal(err)
		}
		if again.Node() != sess.Node() {
			t.Errorf("key %s: first dial node %s, second %s", key, sess.Node(), again.Node())
		}
		again.Close()

		if err := streamAll(sess, tr); err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Results()
		if err != nil {
			t.Fatal(err)
		}
		if !sameRaces(res.Races, want) {
			t.Errorf("key %s on %s: routed races = %v\nwant %v", key, sess.Node(), res.Races, want)
		}
	}
	if len(nodesUsed) < 2 {
		t.Errorf("6 keys all routed to one node: %v (rendezvous not spreading)", nodesUsed)
	}
}

// TestFleetSteersAroundFullNode: a dial whose owner refuses at its
// session cap must land on the next-ranked node within the same sweep
// (no backoff wait), and the refusal must show up in the tracker so the
// NEXT dial avoids the full node up front.
func TestFleetSteersAroundFullNode(t *testing.T) {
	srvs, specs := fleetOfServers(t, 2, func(i int) Config {
		return Config{MaxSessions: 1, RetryAfterHint: 50 * time.Millisecond, GovernorInterval: -1}
	})
	_ = srvs
	f := client.NewFleetNodes(specs)
	defer f.Close()

	key := keyOwnedBy(t, f, specs[0].Addr)

	// Fill the owner's only slot out-of-band.
	squatter, err := client.Dial(specs[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()

	sess, err := f.Dial(key, client.WithRetry(0, 0)) // no retry budget: the sweep alone must succeed
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.Node(); got != "n2" {
		t.Errorf("dial with full owner landed on %q, want n2", got)
	}

	// The refusal left a data-path mark steering later dials.
	for _, st := range f.Nodes() {
		if st.Addr == specs[0].Addr && st.RefusedUntil.IsZero() {
			t.Errorf("full node has no refusal backoff recorded: %+v", st)
		}
	}
}

// TestFleetFailover: killing a session's node mid-stream moves the
// session to the surviving node through the reconnect path — the fleet
// re-sweep marks the dead node down and resumes on the next-ranked one.
func TestFleetFailover(t *testing.T) {
	// The dying node is built by hand so the test controls its shutdown;
	// the survivor uses the normal harness.
	dying := New(Config{NodeID: "doomed", GovernorInterval: -1})
	dyingLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dyingDone := make(chan error, 1)
	go func() { dyingDone <- dying.Serve(dyingLn) }()

	_, survivorAddr := startServer(t, Config{NodeID: "survivor", GovernorInterval: -1})
	specs := []fleet.Node{{Addr: dyingLn.Addr().String()}, {Addr: survivorAddr}}
	f := client.NewFleetNodes(specs)
	defer f.Close()

	key := keyOwnedBy(t, f, specs[0].Addr)
	sess, err := f.Dial(key,
		client.WithBatchSize(8),
		client.WithReconnect(2),
		client.WithRetry(3, 10*time.Millisecond),
		client.WithReadTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Node() != "doomed" {
		t.Fatalf("session landed on %q, want its owner doomed", sess.Node())
	}

	// Race-free single-thread workload: failover re-sends only unacked
	// frames, so the race list is only comparable on a race-free stream.
	for i := 0; i < 64; i++ {
		if err := sess.Write(trace.Wr(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := dying.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-dyingDone

	for i := 0; i < 64; i++ {
		if err := sess.Write(trace.Rd(1, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// The drop is usually only detected when these buffered frames hit
	// the dead socket, so the transient ErrResumed lands on this Flush —
	// which, unlike Close, is retriable. Once a Flush round-trips clean,
	// the session is settled on the survivor and Close is an ordinary
	// goodbye.
	for tries := 0; ; tries++ {
		err := sess.Flush()
		if err == nil {
			break
		}
		if !errors.Is(err, client.ErrResumed) || tries == 3 {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Results()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Node() != "survivor" {
		t.Errorf("session finished on %q, want survivor", sess.Node())
	}
	if sess.Addr() != survivorAddr {
		t.Errorf("session addr %s, want %s", sess.Addr(), survivorAddr)
	}
	// Usually one resume; the drop can surface twice (reader EOF and an
	// in-flight write each detecting it) — what matters is that the
	// session resumed at all and stayed inside the reconnect budget.
	if got := sess.Stats().Resumes; got < 1 || got > 2 {
		t.Errorf("resumes = %d, want 1 or 2", got)
	}
	if len(res.Races) != 0 {
		t.Errorf("race-free stream reported races after failover: %v", res.Races)
	}
	// The dead node is marked down in the shared tracker.
	for _, st := range f.Nodes() {
		if st.Addr == specs[0].Addr && !st.Down {
			t.Errorf("dead node not marked down: %+v", st)
		}
	}
}
