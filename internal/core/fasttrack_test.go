package core

import (
	"testing"

	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// run feeds a trace to a fresh detector and returns it.
func run(t *testing.T, tr trace.Trace) *Detector {
	t.Helper()
	d := New(4, 16)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	return d
}

// advance performs n dummy release operations by thread t so that its
// clock becomes 1+n, letting white-box tests reproduce the exact clock
// values of the paper's worked examples.
func advance(d *Detector, t int32, n int) {
	for i := 0; i < n; i++ {
		d.HandleEvent(-1, trace.Acq(t, 999))
		d.HandleEvent(-1, trace.Rel(t, 999))
	}
}

func wantRaces(t *testing.T, d *Detector, want int) []rr.Report {
	t.Helper()
	got := d.Races()
	if len(got) != want {
		t.Fatalf("%d races reported, want %d: %v", len(got), want, got)
	}
	return got
}

// TestPaperSection2Trace replays the worked example of Section 2.2/3:
// the release-acquire edge on lock m orders thread 0's write before
// thread 1's write, so no race is reported and the write epoch advances
// from 4@0 to 8@1.
func TestPaperSection2Trace(t *testing.T) {
	d := New(2, 2)
	advance(d, 0, 3) // C0 = <4>
	advance(d, 1, 7) // C1 = <0,8>

	if got := d.ClockOf(0).Get(0); got != 4 {
		t.Fatalf("C0(0) = %d, want 4", got)
	}
	if got := d.ClockOf(1).Get(1); got != 8 {
		t.Fatalf("C1(1) = %d, want 8", got)
	}

	const x, m = 0, 1
	d.HandleEvent(0, trace.Wr(0, x))
	if w := d.WriteEpochOf(x); w != vc.MakeEpoch(0, 4) {
		t.Errorf("after wr(0,x): W_x = %v, want 4@0", w)
	}
	d.HandleEvent(1, trace.Acq(0, m))
	d.HandleEvent(2, trace.Rel(0, m))
	if got := d.ClockOf(0).Get(0); got != 5 {
		t.Errorf("after rel: C0(0) = %d, want 5", got)
	}
	d.HandleEvent(3, trace.Acq(1, m))
	c1 := d.ClockOf(1)
	if c1.Get(0) != 4 || c1.Get(1) != 8 {
		t.Errorf("after acq: C1 = %v, want <4,8>", c1)
	}
	d.HandleEvent(4, trace.Wr(1, x))
	wantRaces(t, d, 0)
	if w := d.WriteEpochOf(x); w != vc.MakeEpoch(1, 8) {
		t.Errorf("after wr(1,x): W_x = %v, want 8@1", w)
	}
}

// TestFigure4Trace replays Figure 4 step by step, checking that the read
// history adapts epoch -> vector clock -> epoch exactly as shown.
func TestFigure4Trace(t *testing.T) {
	d := New(2, 1)
	advance(d, 0, 6) // C0 = <7,0>
	const x = 0

	checkRead := func(step string, wantEpoch vc.Epoch, wantVC vc.VC) {
		t.Helper()
		e, v, shared := d.ReadStateOf(x)
		if wantVC != nil {
			if !shared || !v.Equal(wantVC) {
				t.Errorf("%s: R_x = (%v,%v,shared=%v), want VC %v", step, e, v, shared, wantVC)
			}
			return
		}
		if shared || e != wantEpoch {
			t.Errorf("%s: R_x = (%v,shared=%v), want epoch %v", step, e, shared, wantEpoch)
		}
	}

	d.HandleEvent(0, trace.Wr(0, x))
	if w := d.WriteEpochOf(x); w != vc.MakeEpoch(0, 7) {
		t.Fatalf("W_x = %v, want 7@0", w)
	}
	d.HandleEvent(1, trace.ForkOf(0, 1))
	if c0 := d.ClockOf(0); c0.Get(0) != 8 {
		t.Errorf("after fork: C0 = %v, want <8,0>", c0)
	}
	if c1 := d.ClockOf(1); c1.Get(0) != 7 || c1.Get(1) != 1 {
		t.Errorf("after fork: C1 = %v, want <7,1>", c1)
	}

	d.HandleEvent(2, trace.Rd(1, x))
	checkRead("after rd(1,x)", vc.MakeEpoch(1, 1), nil)

	d.HandleEvent(3, trace.Rd(0, x))
	checkRead("after rd(0,x)", 0, vc.VC{8, 1})

	d.HandleEvent(4, trace.JoinOf(0, 1))
	if c0 := d.ClockOf(0); c0.Get(0) != 8 || c0.Get(1) != 1 {
		t.Errorf("after join: C0 = %v, want <8,1>", c0)
	}
	if c1 := d.ClockOf(1); c1.Get(1) != 2 {
		t.Errorf("after join: C1 = %v, want <7,2>", c1)
	}

	d.HandleEvent(5, trace.Wr(0, x))
	checkRead("after wr(0,x)", vc.Bottom, nil) // demoted back to ⊥e
	if w := d.WriteEpochOf(x); w != vc.MakeEpoch(0, 8) {
		t.Errorf("W_x = %v, want 8@0", w)
	}

	d.HandleEvent(6, trace.Rd(0, x))
	checkRead("after rd(0,x)", vc.MakeEpoch(0, 8), nil)

	wantRaces(t, d, 0)
	st := d.Stats()
	if st.ReadShare != 1 {
		t.Errorf("ReadShare = %d, want 1", st.ReadShare)
	}
	if st.WriteShared != 1 {
		t.Errorf("WriteShared = %d, want 1", st.WriteShared)
	}
}

func TestWriteWriteRace(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.Wr(1, 5),
	})
	// fork orders wr(0) before wr(1)? No: fork(0,1) happens before both;
	// wr(0,5) is AFTER the fork by thread 0, so it is concurrent with
	// thread 1's write.
	r := wantRaces(t, d, 1)[0]
	if r.Kind != rr.WriteWrite || r.Var != 5 || r.Tid != 1 || r.PrevTid != 0 {
		t.Errorf("report = %+v", r)
	}
}

func TestWriteReadRace(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.Rd(1, 5),
	})
	r := wantRaces(t, d, 1)[0]
	if r.Kind != rr.WriteRead || r.Tid != 1 || r.PrevTid != 0 {
		t.Errorf("report = %+v", r)
	}
}

func TestReadWriteRaceEpoch(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Rd(0, 5),
		trace.Wr(1, 5),
	})
	r := wantRaces(t, d, 1)[0]
	if r.Kind != rr.ReadWrite || r.Tid != 1 || r.PrevTid != 0 {
		t.Errorf("report = %+v", r)
	}
}

func TestReadWriteRaceShared(t *testing.T) {
	// Two ordered-by-nothing readers inflate R_x to a VC; a later write by
	// a third thread that joined only one reader races with the other.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Rd(1, 5),
		trace.Rd(2, 5),
		trace.JoinOf(0, 1),
		trace.Wr(0, 5), // thread 2's read not joined: read-write race
	})
	r := wantRaces(t, d, 1)[0]
	if r.Kind != rr.ReadWrite || r.Tid != 0 || r.PrevTid != 2 {
		t.Errorf("report = %+v", r)
	}
}

func TestNoFalseAlarmLockProtected(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9),
		trace.Wr(0, 5),
		trace.Rel(0, 9),
		trace.Acq(1, 9),
		trace.Rd(1, 5),
		trace.Wr(1, 5),
		trace.Rel(1, 9),
	})
	wantRaces(t, d, 0)
}

func TestNoFalseAlarmForkJoin(t *testing.T) {
	d := run(t, trace.Trace{
		trace.Wr(0, 5),
		trace.ForkOf(0, 1),
		trace.Rd(1, 5), // ordered by fork
		trace.Wr(1, 5),
		trace.JoinOf(0, 1),
		trace.Rd(0, 5), // ordered by join
		trace.Wr(0, 5),
	})
	wantRaces(t, d, 0)
}

func TestNoFalseAlarmThreadLocal(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < 50; i++ {
		tr = append(tr, trace.Wr(0, 1), trace.Rd(0, 1), trace.Wr(1, 2), trace.Rd(1, 2))
	}
	d := run(t, tr)
	wantRaces(t, d, 0)
	st := d.Stats()
	// After the first write+read per variable, every access is same-epoch:
	// nothing in the loop changes the threads' clocks.
	if st.ReadSameEpoch != 2*50-2 {
		t.Errorf("ReadSameEpoch = %d, want %d", st.ReadSameEpoch, 2*50-2)
	}
	if st.WriteSameEpoch != 2*50-2 {
		t.Errorf("WriteSameEpoch = %d, want %d", st.WriteSameEpoch, 2*50-2)
	}
}

func TestVolatileOrdering(t *testing.T) {
	// A data handoff through a volatile flag is race-free.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.VWr(0, 0), // publish
		trace.VRd(1, 0), // observe
		trace.Rd(1, 5),
	})
	wantRaces(t, d, 0)

	// Without the volatile read there is a race.
	d = run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.VWr(0, 0),
		trace.Rd(1, 5),
	})
	wantRaces(t, d, 1)
}

func TestVolatileWriteToWriteOrdering(t *testing.T) {
	// FT WRITE VOLATILE joins L_vx into the new L_vx, so a reader sees
	// the union of all preceding volatile writers.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(1, 5),
		trace.VWr(1, 0),
		trace.Wr(2, 6),
		trace.VWr(2, 0),
		trace.VRd(0, 0),
		trace.Rd(0, 5),
		trace.Rd(0, 6),
	})
	wantRaces(t, d, 0)
}

func TestBarrierOrdering(t *testing.T) {
	// Pre-barrier writes are ordered before post-barrier reads by other
	// threads; post-barrier accesses of different threads are unordered.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.Wr(1, 6),
		trace.Barrier(0, 0, 1),
		trace.Rd(1, 5),
		trace.Rd(0, 6),
	})
	wantRaces(t, d, 0)

	d = run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Barrier(0, 0, 1),
		trace.Wr(0, 5),
		trace.Wr(1, 5), // post-barrier, unordered: race
	})
	wantRaces(t, d, 1)
}

func TestBarrierEmptySet(t *testing.T) {
	d := New(1, 1)
	d.HandleEvent(0, trace.Event{Kind: trace.BarrierRelease})
	wantRaces(t, d, 0)
}

func TestOneReportPerVariable(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.Wr(1, 5),
		trace.Wr(0, 5),
		trace.Rd(1, 5),
		trace.Wr(1, 7),
		trace.Wr(0, 7),
	})
	rs := wantRaces(t, d, 2)
	if rs[0].Var != 5 || rs[1].Var != 7 {
		t.Errorf("reports = %v", rs)
	}
}

func TestRaceReportIndex(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.Wr(1, 5),
	})
	if r := wantRaces(t, d, 1)[0]; r.Index != 2 {
		t.Errorf("Index = %d, want 2", r.Index)
	}
}

func TestSameEpochCountersExactness(t *testing.T) {
	d := run(t, trace.Trace{
		trace.Wr(0, 1), // write exclusive
		trace.Wr(0, 1), // write same epoch
		trace.Rd(0, 1), // read exclusive
		trace.Rd(0, 1), // read same epoch
	})
	st := d.Stats()
	if st.WriteExclusive != 1 || st.WriteSameEpoch != 1 || st.ReadExclusive != 1 || st.ReadSameEpoch != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Reads != 2 || st.Writes != 2 || st.Events != 4 {
		t.Errorf("event counts = %+v", st)
	}
}

func TestReadSharedFastPathIsO1(t *testing.T) {
	// Once read-shared, further reads must not allocate vector clocks.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Rd(0, 1),
		trace.Rd(1, 1), // inflates: 1 VC allocated
	})
	alloc := d.Stats().VCAlloc
	for i := 0; i < 10; i++ {
		d.HandleEvent(100+i, trace.Rd(0, 1))
		d.HandleEvent(200+i, trace.Rd(1, 1))
	}
	if got := d.Stats().VCAlloc; got != alloc {
		t.Errorf("VCAlloc grew from %d to %d on read-shared fast path", alloc, got)
	}
	if d.Stats().ReadShared == 0 {
		t.Error("ReadShared counter did not advance")
	}
}

func TestReadShareReusesDemotedVC(t *testing.T) {
	// After WRITE SHARED demotes the history, a second inflation reuses
	// the retained vector clock rather than allocating a new one, and the
	// stale components must have been cleared.
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Rd(1, 1),
		trace.Rd(2, 1), // inflate #1
		trace.JoinOf(0, 1),
		trace.JoinOf(0, 2),
		trace.Wr(0, 1), // demote
	})
	alloc := d.Stats().VCAlloc
	d.HandleEvent(10, trace.ForkOf(0, 3))
	d.HandleEvent(11, trace.ForkOf(0, 4))
	d.HandleEvent(12, trace.Rd(3, 1))
	d.HandleEvent(13, trace.Rd(4, 1)) // inflate #2: reuse
	// VCAlloc counts logical materializations (two thread clocks plus
	// the re-inflation); the physical reuse shows up as the store
	// serving the inflation from its free list instead of a new slot.
	if got := d.Stats().VCAlloc - alloc; got != 3 {
		t.Errorf("VCAlloc grew by %d, want 3 (two thread clocks + one logical inflation)", got)
	}
	if got := len(d.shared.regions); got != 1 {
		t.Errorf("read-VC store grew to %d slots, want the demoted slot recycled", got)
	}
	_, rvc, shared := d.ReadStateOf(1)
	if !shared {
		t.Fatal("variable should be read-shared")
	}
	if rvc.Get(1) != 0 || rvc.Get(2) != 0 {
		t.Errorf("stale read components not cleared: %v", rvc)
	}
	wantRaces(t, d, 0)
}

func TestRaceDoesNotPoisonOtherVariables(t *testing.T) {
	d := run(t, trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.Wr(1, 5), // race on 5
		trace.Acq(0, 9),
		trace.Wr(0, 6),
		trace.Rel(0, 9),
		trace.Acq(1, 9),
		trace.Rd(1, 6), // race-free on 6
		trace.Rel(1, 9),
	})
	rs := wantRaces(t, d, 1)
	if rs[0].Var != 5 {
		t.Errorf("reports = %v", rs)
	}
}

func TestPrefilterPassesOnlyRacyAccesses(t *testing.T) {
	d := New(2, 2)
	if !d.HandleFilter(0, trace.ForkOf(0, 1)) {
		t.Error("sync events must pass")
	}
	if d.HandleFilter(1, trace.Wr(0, 1)) {
		t.Error("race-free write must be filtered")
	}
	if d.HandleFilter(2, trace.Rd(0, 1)) {
		t.Error("race-free read must be filtered")
	}
	if !d.HandleFilter(3, trace.Wr(1, 1)) {
		t.Error("racing write must pass")
	}
	// Once a variable is flagged, all its later accesses pass.
	if !d.HandleFilter(4, trace.Rd(1, 1)) {
		t.Error("access to a flagged variable must pass")
	}
	// Other, race-free variables stay filtered.
	if d.HandleFilter(5, trace.Wr(1, 0)) {
		t.Error("race-free variable must stay filtered")
	}
	if !d.HandleFilter(6, trace.Acq(0, 3)) {
		t.Error("sync events must pass")
	}
}

func TestStatsShadowBytesGrowWithState(t *testing.T) {
	d := New(2, 4)
	before := d.Stats().ShadowBytes
	for i := 0; i < 100; i++ {
		d.HandleEvent(i, trace.Wr(0, uint64(i)))
	}
	after := d.Stats().ShadowBytes
	if after <= before {
		t.Errorf("ShadowBytes %d -> %d, want growth", before, after)
	}
}

func TestDetectorName(t *testing.T) {
	if New(0, 0).Name() != "FastTrack" {
		t.Error("bad name")
	}
}

func TestExtendedSameEpochRule(t *testing.T) {
	// Repeated same-epoch reads of read-shared data: the base algorithm
	// counts them under [FT READ SHARED]; the extended rule counts them
	// as same-epoch hits (the paper: 63.4% -> 78% of reads).
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Rd(0, 1),
		trace.Rd(1, 1), // inflates to read-shared
	}
	repeats := 10
	for i := 0; i < repeats; i++ {
		tr = append(tr, trace.Rd(0, 1), trace.Rd(1, 1))
	}

	base := run(t, tr)
	ext := New(4, 4)
	ext.EnableExtendedSameEpoch()
	for i, e := range tr {
		ext.HandleEvent(i, e)
	}

	bs, es := base.Stats(), ext.Stats()
	if bs.ReadSameEpoch != 0 {
		t.Errorf("base ReadSameEpoch = %d, want 0 (all shared-mode)", bs.ReadSameEpoch)
	}
	if es.ReadSameEpoch != int64(2*repeats) {
		t.Errorf("extended ReadSameEpoch = %d, want %d", es.ReadSameEpoch, 2*repeats)
	}
	// Identical warnings either way.
	if len(base.Races()) != 0 || len(ext.Races()) != 0 {
		t.Errorf("read-shared data produced warnings: %v / %v", base.Races(), ext.Races())
	}
}

func TestExtendedSameEpochPrecisionUnchanged(t *testing.T) {
	// The extended rule must not change any verdict: replay assorted racy
	// and race-free traces under both configurations.
	traces := []trace.Trace{
		{trace.ForkOf(0, 1), trace.Rd(0, 1), trace.Rd(1, 1), trace.Wr(0, 1)},     // race (shared read vs write)
		{trace.ForkOf(0, 1), trace.Rd(0, 1), trace.Rd(1, 1), trace.Rd(0, 1)},     // clean
		{trace.ForkOf(0, 1), trace.Wr(0, 1), trace.Rd(1, 1)},                     // race
		{trace.Wr(0, 1), trace.ForkOf(0, 1), trace.Rd(1, 1), trace.JoinOf(0, 1)}, // clean
	}
	for i, tr := range traces {
		a := run(t, tr)
		b := New(4, 4)
		b.EnableExtendedSameEpoch()
		for j, e := range tr {
			b.HandleEvent(j, e)
		}
		if len(a.Races()) != len(b.Races()) {
			t.Errorf("case %d: base %v, extended %v", i, a.Races(), b.Races())
		}
	}
}

func TestDetailedReportsCarryPrevIndex(t *testing.T) {
	d := New(4, 4)
	d.EnableDetailedReports()
	tr := trace.Trace{
		trace.ForkOf(0, 1), // 0
		trace.Wr(0, 5),     // 1
		trace.Wr(1, 5),     // 2: write-write race, prev = 1
		trace.Rd(0, 6),     // 3
		trace.Wr(1, 6),     // 4: read-write race, prev = 3
		trace.Wr(0, 7),     // 5
		trace.Rd(1, 7),     // 6: write-read race, prev = 5
	}
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	races := d.Races()
	if len(races) != 3 {
		t.Fatalf("races = %v", races)
	}
	want := map[uint64]int{5: 1, 6: 3, 7: 5}
	for _, r := range races {
		if r.PrevIndex != want[r.Var] {
			t.Errorf("x%d: PrevIndex = %d, want %d (%v)", r.Var, r.PrevIndex, want[r.Var], r)
		}
		if r.Index <= r.PrevIndex {
			t.Errorf("x%d: Index %d not after PrevIndex %d", r.Var, r.Index, r.PrevIndex)
		}
	}
}

func TestDetailedReportsOffByDefault(t *testing.T) {
	d := run(t, trace.Trace{trace.ForkOf(0, 1), trace.Wr(0, 5), trace.Wr(1, 5)})
	if r := wantRaces(t, d, 1)[0]; r.PrevIndex != -1 {
		t.Errorf("PrevIndex = %d, want -1 when detail is off", r.PrevIndex)
	}
}

func TestEnableDetailedReportsMidRun(t *testing.T) {
	d := New(2, 2)
	d.HandleEvent(0, trace.ForkOf(0, 1))
	d.HandleEvent(1, trace.Wr(0, 5)) // before enabling: no history
	d.EnableDetailedReports()
	d.HandleEvent(2, trace.Wr(1, 5)) // race; prev write unrecorded
	r := wantRaces(t, d, 1)[0]
	if r.PrevIndex != -1 {
		t.Errorf("PrevIndex = %d, want -1 for pre-enable history", r.PrevIndex)
	}
	// Post-enable history is tracked.
	d.HandleEvent(3, trace.Wr(0, 6))
	d.HandleEvent(4, trace.Wr(1, 6))
	races := d.Races()
	if len(races) != 2 || races[1].PrevIndex != 3 {
		t.Errorf("races = %v, want second with PrevIndex 3", races)
	}
}

func TestTxEventsIgnored(t *testing.T) {
	d := run(t, trace.Trace{
		{Kind: trace.TxBegin, Tid: 0},
		trace.Wr(0, 1),
		{Kind: trace.TxEnd, Tid: 0},
	})
	wantRaces(t, d, 0)
	if d.Stats().Events != 3 {
		t.Errorf("Events = %d, want 3", d.Stats().Events)
	}
}
