package core

import "fasttrack/internal/vc"

// This file implements the channel happens-before rules of the Go memory
// model (DESIGN.md §14), the first-class replacement for the volatile
// encoding syncmodel.Channel used before the chsend/chrecv/chclose trace
// kinds existed:
//
//	[CH SEND k]   C_t := C_t ⊔ Recv_{k-C}   (k > C)   — the k-th receive
//	              Send_k := C_t; C_t := inc_t(C_t)      happens before the
//	                                                    (k+C)-th send
//	[CH RECV k]   C_t := C_t ⊔ Send_k                 — the k-th send
//	              (⊔ Close if k > sends at close)       happens before the
//	              Recv_k := C_t; C_t := inc_t(C_t)      k-th receive
//	[CH CLOSE]    Close := C_t; C_t := inc_t(C_t)     — close happens
//	                                                    before any receive
//	                                                    observing closed
//
// Send_k/Recv_k are per-operation clock snapshots kept in seq-tagged
// rings sized to the channel capacity. A capacity-0 channel keeps the
// conservative accumulation semantics of the old unbuffered encoding
// (every send joins all prior receives and vice versa), which for a
// rendezvous channel coincides with the exact rules up to edges already
// implied by the strict send/recv alternation.
//
// Feasible event streams (the shim records sends pre-operation and
// receives post-operation, so chsend k always precedes chrecv k) keep
// every ring slot live until its unique consumer; streams that overflow
// a ring — hostile traces, or many senders pre-recording concurrently —
// degrade gracefully: the evicted clock folds into a per-direction
// accumulator that the consumer joins instead, which can only
// over-order (missed races), never invent a race.

// chanRingMax bounds the per-channel ring slots: a hostile trace naming
// capacity MaxChanCap must not force a million clock slots per channel.
const chanRingMax = 1024

// chanSlot is one ring entry: the clock snapshot of operation number
// seq (1-based). seq == 0 marks a free or consumed slot; the clock's
// backing array stays for reuse.
type chanSlot struct {
	seq uint64
	clk vc.VC
}

// chanState is the detector's per-channel synchronization state. It is
// touched only under full exclusion (channel events are sync events), so
// sharded detectors share one table like locks and volatiles.
type chanState struct {
	capacity int32
	sends    uint64 // chsend events seen
	recvs    uint64 // chrecv events seen

	closed       bool
	sendsAtClose uint64
	closeClk     vc.VC

	// Capacity 0: conservative accumulators (the old unbuffered
	// semantics). Capacity > 0: exact per-operation rings, with the
	// accumulators as eviction fallback.
	sendAcc  vc.VC
	recvAcc  vc.VC
	sendRing []chanSlot
	recvRing []chanSlot
}

// chanRingSize picks the ring size for a channel: enough slots that a
// feasible stream never evicts (outstanding sends can run ahead of
// receives by the capacity plus a few concurrently pre-recording
// senders), bounded by chanRingMax.
func chanRingSize(capacity int32) int {
	n := int(capacity) + 8
	if n > chanRingMax {
		n = chanRingMax
	}
	return n
}

// chanOf returns channel ch's state, materializing it on first use. The
// capacity is fixed by the first event naming the channel; later events
// carry the same value in any well-formed stream (the shim derives both
// from the same make(chan) site) and are ignored if they disagree.
func (d *Detector) chanOf(ch uint64, capacity int32) *chanState {
	if d.chans == nil {
		d.chans = make(map[uint64]*chanState)
	}
	cs := d.chans[ch]
	if cs == nil {
		if capacity < 0 {
			capacity = 0
		}
		cs = &chanState{capacity: capacity}
		if capacity > 0 {
			n := chanRingSize(capacity)
			cs.sendRing = make([]chanSlot, n)
			cs.recvRing = make([]chanSlot, n)
		}
		d.chans[ch] = cs
	}
	return cs
}

// ringPut snapshots clock c as operation seq into the ring, folding any
// still-unconsumed previous occupant into the fallback accumulator.
func (d *Detector) ringPut(ring []chanSlot, seq uint64, c vc.VC, acc *vc.VC) {
	slot := &ring[seq%uint64(len(ring))]
	if slot.seq != 0 {
		d.accJoin(acc, slot.clk)
	}
	if slot.clk == nil {
		slot.clk = d.pool.Get(len(c))
		d.st.VCAlloc++
	}
	slot.clk = slot.clk.CopyInto(c)
	slot.seq = seq
	d.st.VCOp++
}

// ringTake returns operation seq's snapshot and marks the slot
// consumed, or nil when the entry was evicted (or never recorded).
func ringTake(ring []chanSlot, seq uint64) vc.VC {
	slot := &ring[seq%uint64(len(ring))]
	if slot.seq != seq {
		return nil
	}
	slot.seq = 0
	return slot.clk
}

// accJoin folds c into the accumulator, materializing it from the pool
// on first use.
func (d *Detector) accJoin(acc *vc.VC, c vc.VC) {
	if *acc == nil {
		*acc = d.pool.Get(len(c))
		d.st.VCAlloc++
	}
	*acc = (*acc).Join(c)
	d.st.VCOp++
}

// chanSend implements [CH SEND k] for send number k = sends+1.
func (d *Detector) chanSend(tid int32, ch uint64, capacity int32) {
	ts := d.thread(tid)
	cs := d.chanOf(ch, capacity)
	cs.sends++
	if cs.capacity == 0 {
		// Conservative rendezvous: the receive side's releases order this
		// send after every prior receive.
		if cs.recvAcc != nil {
			ts.c = ts.c.Join(cs.recvAcc)
			d.st.VCOp++
		}
		d.accJoin(&cs.sendAcc, ts.c)
	} else {
		if k := cs.sends; k > uint64(cs.capacity) {
			// The (k-C)-th receive happens before this send completes.
			if rc := ringTake(cs.recvRing, k-uint64(cs.capacity)); rc != nil {
				ts.c = ts.c.Join(rc)
				d.st.VCOp++
			} else if cs.recvAcc != nil {
				ts.c = ts.c.Join(cs.recvAcc)
				d.st.VCOp++
			}
		}
		d.ringPut(cs.sendRing, cs.sends, ts.c, &cs.sendAcc)
	}
	d.incThread(ts, vc.Tid(tid))
}

// chanRecv implements [CH RECV k] for receive number k = recvs+1.
func (d *Detector) chanRecv(tid int32, ch uint64, capacity int32) {
	ts := d.thread(tid)
	cs := d.chanOf(ch, capacity)
	cs.recvs++
	if cs.capacity == 0 {
		if cs.sendAcc != nil {
			ts.c = ts.c.Join(cs.sendAcc)
			d.st.VCOp++
		}
		if cs.closed && cs.closeClk != nil && cs.recvs > cs.sendsAtClose {
			ts.c = ts.c.Join(cs.closeClk)
			d.st.VCOp++
		}
		d.accJoin(&cs.recvAcc, ts.c)
	} else {
		// The k-th send happens before the k-th receive.
		if sc := ringTake(cs.sendRing, cs.recvs); sc != nil {
			ts.c = ts.c.Join(sc)
			d.st.VCOp++
		} else if cs.sendAcc != nil {
			ts.c = ts.c.Join(cs.sendAcc)
			d.st.VCOp++
		}
		// A receive past the values sent before close observes the closed
		// state, so the close happens before it.
		if cs.closed && cs.closeClk != nil && cs.recvs > cs.sendsAtClose {
			ts.c = ts.c.Join(cs.closeClk)
			d.st.VCOp++
		}
		d.ringPut(cs.recvRing, cs.recvs, ts.c, &cs.recvAcc)
	}
	d.incThread(ts, vc.Tid(tid))
}

// chanClose implements [CH CLOSE].
func (d *Detector) chanClose(tid int32, ch uint64, capacity int32) {
	ts := d.thread(tid)
	cs := d.chanOf(ch, capacity)
	if !cs.closed {
		cs.closed = true
		cs.sendsAtClose = cs.sends
	}
	if cs.closeClk == nil {
		cs.closeClk = d.pool.Get(len(ts.c))
		d.st.VCAlloc++
	}
	cs.closeClk = cs.closeClk.Join(ts.c)
	d.st.VCOp++
	if cs.capacity == 0 {
		// The conservative recv path joins only sendAcc; fold the close
		// clock in so a rendezvous receive after close observes it.
		d.accJoin(&cs.sendAcc, ts.c)
	}
	d.incThread(ts, vc.Tid(tid))
}

// chanBytes is the channel table's contribution to the shadow footprint.
func (d *Detector) chanBytes() int64 {
	var b int64
	for _, cs := range d.chans {
		b += 96 // struct + map entry overhead
		for i := range cs.sendRing {
			b += 16 + int64(cs.sendRing[i].clk.Bytes())
		}
		for i := range cs.recvRing {
			b += 16 + int64(cs.recvRing[i].clk.Bytes())
		}
		b += int64(cs.sendAcc.Bytes() + cs.recvAcc.Bytes() + cs.closeClk.Bytes())
	}
	return b
}

// ChanStateOf exposes channel ch's send/recv counters and closed flag
// for white-box tests.
func (d *Detector) ChanStateOf(ch uint64) (sends, recvs uint64, closed bool) {
	cs := d.chans[ch]
	if cs == nil {
		return 0, 0, false
	}
	return cs.sends, cs.recvs, cs.closed
}
