package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// TestLemma1InitialStateWellFormed: σ0 is well-formed even as threads
// materialize lazily.
func TestLemma1InitialStateWellFormed(t *testing.T) {
	d := New(4, 4)
	if err := d.CheckWellFormed(); err != nil {
		t.Fatalf("empty state: %v", err)
	}
	for tid := int32(0); tid < 4; tid++ {
		d.thread(tid)
		if err := d.CheckWellFormed(); err != nil {
			t.Fatalf("after materializing thread %d: %v", tid, err)
		}
	}
}

// TestLemma2PreservationProperty: every transition preserves
// well-formedness (Lemma 2), property-tested over random feasible traces
// with the invariant checked after every single event.
func TestLemma2PreservationProperty(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 80
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := sim.RandomTrace(rng, cfg)
		d := New(4, 8)
		for i, e := range tr {
			d.HandleEvent(i, e)
			if err := d.CheckWellFormed(); err != nil {
				t.Logf("seed %d, event %d (%s): %v", seed, i, e, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWellFormedAfterRaces: detecting races must not corrupt the state
// invariants (the detector continues monitoring after a warning).
func TestWellFormedAfterRaces(t *testing.T) {
	d := New(4, 4)
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(0, 1),
		trace.Wr(1, 1), // write-write race
		trace.Rd(2, 1), // write-read race (suppressed, same var)
		trace.Rd(0, 2),
		trace.Wr(1, 2), // read-write race
		trace.Rd(0, 3),
		trace.Rd(1, 3),
		trace.Wr(2, 3), // race against shared readers
	}
	for i, e := range tr {
		d.HandleEvent(i, e)
		if err := d.CheckWellFormed(); err != nil {
			t.Fatalf("after event %d (%s): %v", i, e, err)
		}
	}
	if len(d.Races()) == 0 {
		t.Fatal("expected races")
	}
}

// TestWellFormedDetectsCorruption: the checker itself must catch a
// deliberately corrupted state (guards against a vacuous invariant).
func TestWellFormedDetectsCorruption(t *testing.T) {
	d := New(2, 2)
	d.HandleEvent(0, trace.ForkOf(0, 1))
	d.HandleEvent(1, trace.Wr(0, 0))
	// Corrupt: pretend variable 0 was written at a clock far beyond
	// thread 0's current time.
	d.w[0] = d.threads[0].c.Epoch(0) + 1000
	if err := d.CheckWellFormed(); err == nil {
		t.Error("corrupted write epoch not detected")
	}

	d2 := New(2, 2)
	d2.HandleEvent(0, trace.ForkOf(0, 1))
	// Corrupt condition 1: thread 1 claims to have seen thread 0's
	// future.
	d2.threads[1].c = d2.threads[1].c.Set(0, 99)
	if err := d2.CheckWellFormed(); err == nil {
		t.Error("corrupted cross-thread clock not detected")
	}

	d3 := New(2, 2)
	d3.HandleEvent(0, trace.Acq(0, 5))
	d3.HandleEvent(1, trace.Rel(0, 5))
	p := d3.locks.ref(5)
	*p = (*p).Set(0, 99)
	if err := d3.CheckWellFormed(); err == nil {
		t.Error("corrupted lock clock not detected")
	}
}
