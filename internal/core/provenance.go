package core

import (
	"fmt"

	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// This file implements the provenance flight recorder: an opt-in layer
// that captures enough recent history to explain *why* a reported race
// is a race. Two structures, both bounded:
//
//   - a per-thread ring of recent synchronization operations (acquire,
//     release, fork, join, volatile, barrier) with the thread's epoch
//     at the time. Sync events are delivered under full exclusion, so
//     the rings are written race-free even in sharded mode, and may be
//     read from an access path (stripe lock only) because nothing can
//     be writing them concurrently;
//   - a per-thread ring of recent clock snapshots, one taken at every
//     synchronization operation that changes the thread's clock
//     (delivered under full exclusion, like the sync rings). A thread's
//     clock is constant between sync operations, so the snapshot at an
//     access's generation IS the accessor's clock at the access;
//   - a per-variable last-access record: the tid, event index, epoch,
//     and snapshot generation of the most recent non-redundant read and
//     write — four scalar stores, no copying. In sharded mode it hangs
//     off shardedVar so the access path stays stripe-confined; in
//     serial mode it is a dense slice parallel to the variable table.
//
// When a race fires, Detector.report enriches the rr.Report into an
// rr.DetailedReport: both accesses' clocks (the prior one reconstructed
// from the snapshot ring), the exact epoch comparison that failed, the
// racing threads' recent release/acquire chains, and a rendered
// explanation. Enrichment work happens only at report time (at most
// once per variable); the steady-state costs of the recorder are a few
// scalar stores per slow-path access and one clock copy per sync
// operation. With the recorder disabled (the default) the access paths
// pay a nil check.

// provRingSize bounds each thread's sync ring.
const provRingSize = 16

// provChainLen is how many of each racing thread's most recent sync
// records a report quotes.
const provChainLen = 4

// provSnapRing bounds each thread's ring of clock snapshots. A prior
// access whose thread has since performed provSnapRing clock-changing
// sync operations loses its clock snapshot (the report omits PrevClock
// but keeps every other field).
const provSnapRing = 16

// provAccess is the last-access record for one side (read or write) of
// a variable: who accessed it, when, at what epoch, and under which of
// the accessor's clock snapshots (gen). The clock itself lives in the
// thread's snapshot ring; recording an access is four scalar stores.
type provAccess struct {
	epoch vc.Epoch
	gen   uint64
	idx   int
	tid   int32
}

func (pa *provAccess) record(tid int32, i int, gen uint64, epoch vc.Epoch) {
	pa.tid, pa.idx, pa.gen, pa.epoch = tid, i, gen, epoch
}

// provVarRec is a variable's last-access record, both sides.
type provVarRec struct {
	w, r provAccess
}

// provSyncRec is a ring entry in raw form. Rendering the op name and
// epoch to the strings rr.SyncRecord carries is deferred to report time
// (recent), keeping the per-sync-op recording cost to a struct store.
type provSyncRec struct {
	idx    int
	target uint64
	epoch  vc.Epoch
	tid    int32
	kind   trace.Kind
}

// provRing is one thread's flight-recorder state: a bounded ring of
// recent sync operations, and a bounded ring of clock snapshots — gen
// counts clock-changing sync operations, and slot (gen-1)%provSnapRing
// holds the latest snapshot. Snapshot buffers are reused in place, so a
// snapshot is valid only until the ring wraps past it. Keeping both
// rings in one struct means a sync operation pays a single per-thread
// lookup to record itself and snapshot the changed clock.
type provRing struct {
	buf   [provRingSize]provSyncRec
	n     int // total records ever appended
	gen   uint64
	snaps [provSnapRing]vc.VC
}

func (r *provRing) add(rec provSyncRec) {
	r.buf[r.n%provRingSize] = rec
	r.n++
}

// recent appends the ring's last k records (oldest first) to out,
// rendering them into the report schema's form.
func (r *provRing) recent(k int, out []rr.SyncRecord) []rr.SyncRecord {
	if r == nil || r.n == 0 {
		return out
	}
	if k > provRingSize {
		k = provRingSize
	}
	if k > r.n {
		k = r.n
	}
	for j := r.n - k; j < r.n; j++ {
		rec := r.buf[j%provRingSize]
		out = append(out, rr.SyncRecord{
			Index: rec.idx, Tid: rec.tid, Op: rec.kind.String(),
			Target: rec.target, Clock: rec.epoch.String(),
		})
	}
	return out
}

// provState is the detector's flight-recorder state; nil when disabled.
type provState struct {
	rings   []*provRing                   // per-thread recorder state, indexed by tid
	vars    []provVarRec                  // serial-mode per-variable records
	details map[uint64]*rr.DetailedReport // serial-mode enriched reports, by variable
}

// EnableProvenance turns on the flight recorder (implying detailed
// reports): subsequent races are enriched into rr.DetailedReports
// available via DetailedRaces. Like EnableDetailedReports, accesses
// processed before the call have no recorded history. Costs roughly one
// vector-clock copy per non-redundant access while enabled.
func (d *Detector) EnableProvenance() {
	if d.prov != nil {
		return
	}
	d.EnableDetailedReports()
	d.prov = &provState{details: make(map[uint64]*rr.DetailedReport)}
}

// ProvenanceEnabled reports whether the flight recorder is on.
func (d *Detector) ProvenanceEnabled() bool { return d.prov != nil }

// provRecordSync appends one sync operation to the acting threads'
// rings with their post-operation epochs, and snapshots every clock the
// operation may have changed (both ends of a fork/join, every barrier
// participant). Called from HandleEvent under full exclusion, after the
// handler ran — it sees the post-operation clocks.
func (d *Detector) provRecordSync(i int, e trace.Event) {
	switch e.Kind {
	case trace.Acquire, trace.Release, trace.VolatileRead, trace.VolatileWrite,
		trace.ChanSend, trace.ChanRecv, trace.ChanClose:
		r, ts := d.provRing(e.Tid), d.thread(e.Tid)
		r.add(provSyncRec{
			idx: i, tid: e.Tid, kind: e.Kind, target: e.Target,
			epoch: ts.epoch,
		})
		r.snapshot(ts.c)
	case trace.Fork, trace.Join:
		r, ts := d.provRing(e.Tid), d.thread(e.Tid)
		r.add(provSyncRec{
			idx: i, tid: e.Tid, kind: e.Kind, target: e.Target,
			epoch: ts.epoch,
		})
		r.snapshot(ts.c)
		peer := int32(e.Target)
		d.provRing(peer).snapshot(d.thread(peer).c)
	case trace.BarrierRelease:
		for _, t := range e.Tids {
			r, ts := d.provRing(t), d.thread(t)
			r.add(provSyncRec{
				idx: i, tid: t, kind: e.Kind, target: e.Target,
				epoch: ts.epoch,
			})
			r.snapshot(ts.c)
		}
	}
}

// snapshot records the thread's (just-changed) clock into its snapshot
// ring, reusing the slot's buffer. Called only under full exclusion, so
// the write cannot race with the access paths reading gen.
func (r *provRing) snapshot(c vc.VC) {
	slot := &r.snaps[r.gen%provSnapRing]
	*slot = slot.CopyInto(c)
	r.gen++
}

// provGenOf reads thread t's snapshot generation without materializing,
// for the access paths (stripe lock only in sharded mode — the rings
// are written exclusively under full exclusion).
func (d *Detector) provGenOf(t int32) uint64 {
	if int(t) < len(d.prov.rings) {
		if r := d.prov.rings[t]; r != nil {
			return r.gen
		}
	}
	return 0
}

// provClockAt reconstructs the clock a recorded access ran under: the
// accessor's snapshot at the access's generation. A thread's clock is
// constant between sync operations, so the reconstruction is exact.
// Returns nil when the snapshot ring has wrapped past the generation.
func (d *Detector) provClockAt(pa *provAccess) []uint64 {
	if pa.gen == 0 {
		// No sync operation had touched the accessor's clock yet, so it
		// held exactly its own component — recoverable from the epoch.
		out := make([]uint64, pa.tid+1)
		out[pa.tid] = uint64(pa.epoch.Clock())
		return out
	}
	r := d.provRingOf(pa.tid)
	if r == nil || r.gen-pa.gen >= provSnapRing {
		return nil
	}
	return clockSnapshot(r.snaps[(pa.gen-1)%provSnapRing])
}

// provRing returns (materializing if needed) thread t's sync ring.
// Materialization happens only under full exclusion (sync delivery).
func (d *Detector) provRing(t int32) *provRing {
	for int(t) >= len(d.prov.rings) {
		d.prov.rings = append(d.prov.rings, nil)
	}
	if d.prov.rings[t] == nil {
		d.prov.rings[t] = &provRing{}
	}
	return d.prov.rings[t]
}

// provRingOf returns thread t's ring without materializing, for readers
// on the access path.
func (d *Detector) provRingOf(t int32) *provRing {
	if int(t) < len(d.prov.rings) {
		return d.prov.rings[t]
	}
	return nil
}

// provVarSerial returns (materializing if needed) variable x's
// last-access record in the serial layout; sharded records live in the
// variable's stripe-confined varCold (see varCold.provRec). Callers hold
// full exclusion, the same discipline as the serial shadow state itself.
func (d *Detector) provVarSerial(x uint64) *provVarRec {
	for x >= uint64(len(d.prov.vars)) {
		d.prov.vars = append(d.prov.vars, provVarRec{
			w: provAccess{idx: -1}, r: provAccess{idx: -1},
		})
	}
	return &d.prov.vars[x]
}

// clockSnapshot copies a vector clock into the plain []uint64 form the
// JSON report schema uses, dropping trailing zeros.
func clockSnapshot(c vc.VC) []uint64 {
	n := len(c)
	for n > 0 && c[n-1] == 0 {
		n--
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = uint64(c[i])
	}
	return out
}

// enrich builds the DetailedReport for a just-detected race and stores
// it where DetailedRaces will find it: the serial details map, or the
// variable's stripe-confined cold entry (s/slot identify it; s is nil in
// serial mode). w and r are the variable's pre-update history — w the
// prior write epoch, r (or a component of the rs store's clock it tags)
// the prior read history. It runs at most once per variable, under the
// same lock as the access that raced.
func (d *Detector) enrich(rep rr.Report, w, r vc.Epoch, rs *rvcStore, s *stripeState, slot int, ts *threadState) {
	det := &rr.DetailedReport{
		Report:      rep,
		AccessClock: clockSnapshot(ts.c),
		FailedCheck: d.failedCheck(rep, w, r, rs, ts),
	}

	var pv *provVarRec
	if s != nil {
		pv = s.tab.coldFor(slot).provRec()
	} else {
		pv = d.provVarSerial(rep.Var)
	}
	// The epoch and clock snapshot of the prior access.
	prev := vc.Tid(rep.PrevTid)
	var prevRec *provAccess
	switch rep.Kind {
	case rr.WriteWrite, rr.WriteRead:
		det.PrevEpoch = w.String()
		if pv.w.idx >= 0 {
			prevRec = &pv.w
		}
	case rr.ReadWrite:
		if isShared(r) {
			det.PrevEpoch = vc.MakeEpoch(prev, rs.get(sharedIdx(r), prev)).String()
		} else {
			det.PrevEpoch = r.String()
		}
		if pv.r.idx >= 0 {
			prevRec = &pv.r
		}
	}
	// Quote the snapshot only when it belongs to the thread the race
	// names: for read-shared histories the recorded reader may be a
	// different (later) reader than the one that exceeds C_t.
	if prevRec != nil && prevRec.tid == rep.PrevTid {
		det.PrevClock = d.provClockAt(prevRec)
	}

	// The racing threads' recent release/acquire chains, oldest first.
	det.SyncChain = d.provRingOf(rep.Tid).recent(provChainLen, det.SyncChain)
	if rep.PrevTid != rep.Tid {
		det.SyncChain = d.provRingOf(rep.PrevTid).recent(provChainLen, det.SyncChain)
	}
	sortSyncChain(det.SyncChain)

	det.Explanation = det.Render()

	if s != nil {
		s.tab.coldFor(slot).detail = det
	} else {
		d.prov.details[rep.Var] = det
	}
}

// failedCheck renders the FastTrack happens-before comparison the race
// failed, in the paper's notation. w/r/rs are the pre-update history, as
// in enrich.
func (d *Detector) failedCheck(rep rr.Report, w, r vc.Epoch, rs *rvcStore, ts *threadState) string {
	switch rep.Kind {
	case rr.WriteRead, rr.WriteWrite:
		// W_x ⋠ C_t: the write epoch's clock exceeds the reader's /
		// writer's component for that thread.
		return fmt.Sprintf("W_x%d = %s !<= C_%d (C_%d[%d] = %d)",
			rep.Var, w, rep.Tid, rep.Tid, w.Tid(), ts.c.Get(w.Tid()))
	case rr.ReadWrite:
		if isShared(r) {
			prev := vc.Tid(rep.PrevTid)
			return fmt.Sprintf("R_x%d[%d] = %d !<= C_%d[%d] = %d",
				rep.Var, prev, rs.get(sharedIdx(r), prev), rep.Tid, prev, ts.c.Get(prev))
		}
		return fmt.Sprintf("R_x%d = %s !<= C_%d (C_%d[%d] = %d)",
			rep.Var, r, rep.Tid, rep.Tid, r.Tid(), ts.c.Get(r.Tid()))
	}
	return ""
}

// sortSyncChain orders a small chain by event index (insertion sort:
// the chain is at most 2*provChainLen entries).
func sortSyncChain(chain []rr.SyncRecord) {
	for i := 1; i < len(chain); i++ {
		for j := i; j > 0 && chain[j].Index < chain[j-1].Index; j-- {
			chain[j], chain[j-1] = chain[j-1], chain[j]
		}
	}
}

// DetailedRaces implements rr.DetailedTool: one DetailedReport per
// Races() entry, in the same order, with the embedded Report identical.
// Races detected while the recorder was off (or reported by a detector
// without it) carry only the plain Report fields. Must be called under
// full exclusion, like Races.
func (d *Detector) DetailedRaces() []rr.DetailedReport {
	races := d.Races()
	out := make([]rr.DetailedReport, len(races))
	for i, r := range races {
		var det *rr.DetailedReport
		if d.prov != nil {
			if d.stripes != nil {
				tb := &d.stripeOf(r.Var).tab
				if slot := tb.find(r.Var); slot >= 0 {
					if c := tb.coldOf(slot); c != nil {
						det = c.detail
					}
				}
			} else {
				det = d.prov.details[r.Var]
			}
		}
		if det != nil && det.Report == r {
			out[i] = *det
		} else {
			out[i] = rr.DetailedReport{Report: r}
		}
	}
	return out
}

var _ rr.DetailedTool = (*Detector)(nil)
