package core

import (
	"testing"

	"fasttrack/trace"
)

// TestShardedRacesSnapshotCache: the merged sharded race view is sorted
// by event index, served from a cached snapshot while no stripe has
// appended, and rebuilt when one has.
func TestShardedRacesSnapshotCache(t *testing.T) {
	d := New(2, 0)
	d.EnableSharding(4)
	i := 0
	ev := func(e trace.Event) { d.HandleEvent(i, e); i++ }

	if got := d.Races(); got != nil {
		t.Fatalf("races before any event = %v", got)
	}
	for x := uint64(0); x < 8; x++ {
		ev(trace.Wr(0, x))
		ev(trace.Wr(1, x)) // unsynchronized: one write-write race per var
	}
	first := d.Races()
	if len(first) != 8 {
		t.Fatalf("races = %d, want 8", len(first))
	}
	for j := 1; j < len(first); j++ {
		if first[j-1].Index > first[j].Index {
			t.Fatalf("merged races not sorted by index: %v", first)
		}
	}
	if second := d.Races(); &second[0] != &first[0] {
		t.Error("clean repeat query rebuilt the snapshot instead of serving the cache")
	}

	ev(trace.Wr(0, 100))
	ev(trace.Wr(1, 100))
	third := d.Races()
	if len(third) != 9 {
		t.Fatalf("races after new conflict = %d, want 9", len(third))
	}
	if third[8].Var != 100 {
		t.Errorf("rebuilt snapshot missing the new race: %v", third[8])
	}
	if fourth := d.Races(); &fourth[0] != &third[0] {
		t.Error("second clean query after rebuild not served from cache")
	}
}
