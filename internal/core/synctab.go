package core

import "fasttrack/internal/vc"

// lockTab maps lock (and volatile) identifiers to their release clocks
// L_m. It replaces the built-in map on the synchronization paths:
// acquire and release are the hot sync operations ([FT ACQUIRE]/[FT
// RELEASE] run per critical section), and an open-addressing table with
// the murmur-finalizer probe hash answers them in one probe — no
// hashing twice for a lookup-then-store pair (release uses ref, a
// single probe that inserts on miss), no bucket chains, no map header.
// Like stripeTab it never deletes, so linear probing needs no
// tombstones; growth doubles at 3/4 load. The detector touches it only
// under full exclusion.
type lockTab struct {
	keys []uint64
	vcs  []vc.VC
	meta []uint8 // slotUsed bit, as in stripeTab
	mask uint64
	used int
}

// get returns lock m's clock, or (nil, false) if m was never released.
func (lt *lockTab) get(m uint64) (vc.VC, bool) {
	if lt.mask == 0 {
		return nil, false
	}
	h := mix64(m) & lt.mask
	for lt.meta[h]&slotUsed != 0 {
		if lt.keys[h] == m {
			return lt.vcs[h], true
		}
		h = (h + 1) & lt.mask
	}
	return nil, false
}

// ref returns a pointer to lock m's clock slot, inserting an empty slot
// (nil clock) on miss — the release path's single-probe lookup-or-
// insert. The pointer is invalidated by the next ref, so callers must
// not hold it across another table operation.
func (lt *lockTab) ref(m uint64) *vc.VC {
	if lt.mask == 0 || lt.used*4 >= len(lt.keys)*3 {
		lt.grow()
	}
	h := mix64(m) & lt.mask
	for lt.meta[h]&slotUsed != 0 {
		if lt.keys[h] == m {
			return &lt.vcs[h]
		}
		h = (h + 1) & lt.mask
	}
	lt.keys[h] = m
	lt.meta[h] = slotUsed
	lt.used++
	return &lt.vcs[h]
}

func (lt *lockTab) grow() {
	n := 2 * len(lt.keys)
	if n == 0 {
		n = 16
	}
	old := *lt
	lt.keys = make([]uint64, n)
	lt.vcs = make([]vc.VC, n)
	lt.meta = make([]uint8, n)
	lt.mask = uint64(n - 1)
	for i := range old.keys {
		if old.meta[i]&slotUsed == 0 {
			continue
		}
		h := mix64(old.keys[i]) & lt.mask
		for lt.meta[h]&slotUsed != 0 {
			h = (h + 1) & lt.mask
		}
		lt.keys[h] = old.keys[i]
		lt.vcs[h] = old.vcs[i]
		lt.meta[h] = slotUsed
	}
}

// eachRef visits every live entry with a mutable clock pointer, for the
// compaction and invariant walks.
func (lt *lockTab) eachRef(f func(m uint64, l *vc.VC)) {
	for i := range lt.keys {
		if lt.meta[i]&slotUsed != 0 {
			f(lt.keys[i], &lt.vcs[i])
		}
	}
}

// bytes is the table's contribution to the shadow footprint: the slot
// arrays (33 bytes per slot) plus each stored clock's backing array and
// the per-entry overhead the footprint model charges for sync objects.
func (lt *lockTab) bytes() int64 {
	b := int64(cap(lt.keys))*8 + int64(cap(lt.vcs))*24 + int64(cap(lt.meta))
	for i := range lt.vcs {
		b += int64(lt.vcs[i].Bytes())
	}
	return b
}
