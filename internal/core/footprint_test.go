package core

import (
	"runtime"
	"testing"

	"fasttrack/trace"
)

// liveBytes measures the live-heap growth attributable to f: GC to a
// quiescent baseline, run f, GC again, and diff HeapAlloc. Good to a few
// kilobytes, which is plenty against the megabytes the detectors below
// allocate.
func liveBytes(f func()) int64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	return int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
}

// TestFootprintTracksMeasuredAllocation is the regression test for the
// shadow-accounting bug: footprint() used to charge 24 bytes per
// variable against an actual cost of ~48, and ignored the detailed-mode
// index tables entirely, so a memory budget engaged its degradation
// rungs ~2x late. The accounting must now stay within a factor of two
// of the live heap the shadow state actually pins (the slack covers
// allocator rounding and growth headroom), in both directions.
func TestFootprintTracksMeasuredAllocation(t *testing.T) {
	const nvars = 200_000
	var d *Detector
	measured := liveBytes(func() {
		d = New(0, nvars)
		i := 0
		for x := 0; x < nvars; x++ {
			d.HandleEvent(i, trace.Wr(0, uint64(x)))
			i++
		}
		// A second thread's reads promote a slice of the space to
		// read-shared, so the store's clocks are in the measurement too.
		d.HandleEvent(i, trace.ForkOf(0, 1))
		i++
		for x := 0; x < nvars/10; x++ {
			d.HandleEvent(i, trace.Rd(1, uint64(x)))
			i++
		}
	})
	got := d.footprint()
	if got < measured/2 || got > measured*2 {
		t.Errorf("footprint() = %d bytes, measured live growth %d: accounting off by more than 2x", got, measured)
	}
	runtime.KeepAlive(d)
}

// TestFootprintCountsDetailedTables: the detailed-mode last-access index
// tables (16 bytes per variable) were previously invisible to the
// budget. Enabling detailed reports must now raise the accounted
// footprint by at least that much.
func TestFootprintCountsDetailedTables(t *testing.T) {
	const nvars = 50_000
	feed := func(d *Detector) {
		for x := 0; x < nvars; x++ {
			d.HandleEvent(x, trace.Wr(0, uint64(x)))
		}
	}
	plain := New(0, nvars)
	feed(plain)
	detailed := New(0, nvars)
	detailed.EnableDetailedReports()
	feed(detailed)
	delta := detailed.footprint() - plain.footprint()
	if want := int64(16 * nvars); delta < want {
		t.Errorf("detailed-mode footprint delta = %d bytes over %d vars, want >= %d (two index words per var)",
			delta, nvars, want)
	}
}

// TestFootprintCountsShardedTables: the sharded layout's accounting must
// scale with the variables actually inserted, and must also stay within
// 2x of the measured live heap.
func TestFootprintCountsShardedTables(t *testing.T) {
	const nvars = 100_000
	var d *Detector
	measured := liveBytes(func() {
		d = New(0, 0)
		d.EnableSharding(8)
		for x := 0; x < nvars; x++ {
			d.HandleEvent(x, trace.Wr(0, uint64(x)))
		}
	})
	got := d.footprint()
	if got < measured/2 || got > measured*2 {
		t.Errorf("sharded footprint() = %d bytes, measured live growth %d: accounting off by more than 2x", got, measured)
	}
	runtime.KeepAlive(d)
}
