package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fasttrack/internal/chaos"
	"fasttrack/internal/hb"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// replaySampled feeds tr through a fresh detector at the given sampling
// rate, optionally sharded, checking well-formedness at the end.
func replaySampled(t *testing.T, tr trace.Trace, rate float64, shards int) *Detector {
	t.Helper()
	d := New(4, 8)
	if shards > 1 {
		d.EnableSharding(shards)
	}
	d.SetSamplingRate(rate)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	if err := d.CheckWellFormed(); err != nil {
		t.Fatalf("rate %v shards %d: %v", rate, shards, err)
	}
	return d
}

func raceKeys(reports []rr.Report) map[rr.Report]bool {
	set := make(map[rr.Report]bool, len(reports))
	for _, r := range reports {
		r.PrevIndex = 0 // not tracked here; normalize
		set[r] = true
	}
	return set
}

// TestSampledRacesExactSubsetProperty: a sampled run's races are exactly
// the full run's races restricted to the sampled-in variables — never a
// false positive, never a miss inside the analyzed slice. This is the
// strong form of the soundness contract (per-variable analysis is
// independent, so skipping variable y cannot change variable x's
// verdict), property-tested over random feasible traces, serial and
// sharded.
func TestSampledRacesExactSubsetProperty(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 400
	cfg.Vars = 24
	rates := []float64{0.75, 0.5, 0.25, 0.1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := sim.RandomTrace(rng, cfg)
		for _, shards := range []int{0, 4} {
			full := replaySampled(t, tr, 1, shards)
			fullSet := raceKeys(full.Races())
			for _, rate := range rates {
				d := replaySampled(t, tr, rate, shards)
				got := raceKeys(d.Races())
				want := map[rr.Report]bool{}
				for r := range fullSet {
					if !d.sampledOut(r.Var) {
						want[r] = true
					}
				}
				if !reflect.DeepEqual(got, want) {
					t.Logf("seed %d rate %v shards %d: races %v, want %v (full %v)",
						seed, rate, shards, got, want, fullSet)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestSampledFullRateByteIdentical: sampled(1.0) is the identity — the
// same races and the same statistics as a detector that never heard of
// sampling, so enabling the tier costs nothing at full fidelity.
func TestSampledFullRateByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 500
	tr := sim.RandomTrace(rng, cfg)
	for _, shards := range []int{0, 4} {
		plain := New(4, 8)
		tuned := New(4, 8)
		if shards > 1 {
			plain.EnableSharding(shards)
			tuned.EnableSharding(shards)
		}
		tuned.SetSamplingRate(1.0)
		for i, e := range tr {
			plain.HandleEvent(i, e)
			tuned.HandleEvent(i, e)
		}
		if !reflect.DeepEqual(plain.Races(), tuned.Races()) {
			t.Errorf("shards %d: sampled(1.0) races differ from full", shards)
		}
		if !reflect.DeepEqual(plain.Stats(), tuned.Stats()) {
			t.Errorf("shards %d: sampled(1.0) stats differ from full:\n%+v\n%+v",
				shards, plain.Stats(), tuned.Stats())
		}
		if got := tuned.Stats().SampledOut; got != 0 {
			t.Errorf("shards %d: sampled(1.0) skipped %d accesses", shards, got)
		}
	}
}

// TestAdaptiveRateChangesSoundProperty: changing the rate mid-stream at
// arbitrary points (the governor's adaptive mode) never corrupts shadow
// state and never manufactures a false positive. The check is against
// the happens-before oracle, not against the full run's report set: a
// variable skipped for a while keeps a stale shadow word, and a later
// check against it can surface a genuine race that full FastTrack's
// last-access epoch state had already overwritten — a report the full
// run doesn't have, but a true one. What adaptive mode must never do is
// flag a variable with no race at all.
func TestAdaptiveRateChangesSoundProperty(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 400
	cfg.Vars = 24
	rates := []float64{1, 0.5, 0.1, 0, 0.25, 1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := sim.RandomTrace(rng, cfg)
		racy := hb.New(tr).RacyVars()
		for _, shards := range []int{0, 4} {
			d := New(4, 8)
			if shards > 1 {
				d.EnableSharding(shards)
			}
			for i, e := range tr {
				if rng.Intn(16) == 0 {
					d.SetSamplingRate(rates[rng.Intn(len(rates))])
					if err := d.CheckWellFormed(); err != nil {
						t.Logf("seed %d shards %d after rate change at %d: %v", seed, shards, i, err)
						return false
					}
				}
				d.HandleEvent(i, e)
			}
			if err := d.CheckWellFormed(); err != nil {
				t.Logf("seed %d shards %d: %v", seed, shards, err)
				return false
			}
			for _, r := range d.Races() {
				if !racy[r.Var] {
					t.Logf("seed %d shards %d: adaptive run invented false positive %+v", seed, shards, r)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestShedKeepsClocksWarm: at rate 0 no access is analyzed, but sync
// events still advance the happens-before frontier — so an upgrade back
// to full fidelity is immediately sound: properly synchronized accesses
// to fresh variables stay silent and unsynchronized ones are caught.
func TestShedKeepsClocksWarm(t *testing.T) {
	d := New(4, 8)
	d.SetSamplingRate(0)
	i := 0
	ev := func(e trace.Event) { d.HandleEvent(i, e); i++ }

	ev(trace.ForkOf(0, 1))
	ev(trace.ForkOf(0, 2))
	// Shed traffic: races offered here must not be reported...
	ev(trace.Wr(1, 10))
	ev(trace.Wr(2, 10))
	// ...and lock-transfer ordering must still be tracked.
	ev(trace.Acq(1, 1))
	ev(trace.Wr(1, 11))
	ev(trace.Rel(1, 1))
	if got := d.Races(); len(got) != 0 {
		t.Fatalf("races while shed: %v", got)
	}
	if st := d.Stats(); st.SampledOut != 3 {
		t.Fatalf("SampledOut = %d, want 3", st.SampledOut)
	}

	d.SetSamplingRate(1)
	// Synchronized handoff established while shed: no race.
	ev(trace.Acq(2, 1))
	ev(trace.Wr(2, 11))
	ev(trace.Rel(2, 1))
	// Unsynchronized pair on a fresh variable: caught immediately.
	ev(trace.Wr(1, 12))
	ev(trace.Wr(2, 12))
	got := d.Races()
	if len(got) != 1 || got[0].Var != 12 {
		t.Fatalf("races after upgrade = %v, want exactly the x=12 write-write race", got)
	}
	if err := d.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

// TestDetectionProbabilityTracksRate: the reported detection probability
// is the analyzed fraction of offered accesses and lands near the
// configured rate on a uniform variable population.
func TestDetectionProbabilityTracksRate(t *testing.T) {
	for _, rate := range []float64{1, 0.5, 0.1, 0} {
		d := New(2, 0)
		d.SetSamplingRate(rate)
		i := 0
		for x := uint64(0); x < 2000; x++ {
			d.HandleEvent(i, trace.Wr(0, x))
			i++
		}
		st := d.Stats()
		got := st.DetectionProbability()
		if rate == 1 && (got != 1 || st.SampledOut != 0) {
			t.Errorf("rate 1: probability %v sampledOut %d", got, st.SampledOut)
		}
		if rate == 0 && got != 0 {
			t.Errorf("rate 0: probability %v", got)
		}
		if diff := got - rate; diff < -0.05 || diff > 0.05 {
			t.Errorf("rate %v: detection probability %v drifted", rate, got)
		}
	}
}

// TestSampledSubsetUnderChaos: the subset guarantee holds even when the
// stream is hostile — mutated traces pushed through the resilience
// pipeline under PolicyRepair feed both detectors the same repaired
// stream, and the sampled run still reports a subset.
func TestSampledSubsetUnderChaos(t *testing.T) {
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 300
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := sim.RandomTrace(rng, cfg)
		for _, mode := range chaos.Modes() {
			full := New(4, 8)
			res := chaos.Run(full, tr, mode, seed, rr.PolicyRepair)
			if err := res.Check(); err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			fullSet := raceKeys(full.Races())
			sampled := New(4, 8)
			sampled.SetSamplingRate(0.25)
			if err := chaos.Run(sampled, tr, mode, seed, rr.PolicyRepair).Check(); err != nil {
				t.Fatalf("seed %d mode %v sampled: %v", seed, mode, err)
			}
			for r := range raceKeys(sampled.Races()) {
				if !fullSet[r] {
					t.Fatalf("seed %d mode %v: sampled race %+v not in full set", seed, mode, r)
				}
			}
			if err := sampled.CheckWellFormed(); err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
		}
	}
}
