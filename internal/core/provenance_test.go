package core

import (
	"strings"
	"testing"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// provTrace is a directed write-write race with a sync prologue: thread
// 0 writes x under lock m, thread 1 then writes x without acquiring m.
func provTrace() trace.Trace {
	return trace.Trace{
		trace.ForkOf(0, 1),  // 0
		trace.Acq(0, 5),     // 1
		trace.Wr(0, 3),      // 2
		trace.Rel(0, 5),     // 3
		trace.Wr(1, 3),      // 4: races with event 2
	}
}

// TestProvenanceDetailedReport checks every enrichment field on the
// directed race, serial layout.
func TestProvenanceDetailedReport(t *testing.T) {
	d := New(2, 4)
	d.EnableProvenance()
	for i, e := range provTrace() {
		d.HandleEvent(i, e)
	}
	races := wantRaces(t, d, 1)
	dets := d.DetailedRaces()
	if len(dets) != 1 {
		t.Fatalf("DetailedRaces returned %d reports, want 1", len(dets))
	}
	det := dets[0]
	if det.Report != races[0] {
		t.Errorf("embedded Report %+v != Races()[0] %+v", det.Report, races[0])
	}
	if det.Kind != rr.WriteWrite || det.Tid != 1 || det.PrevTid != 0 {
		t.Errorf("race attribution wrong: %+v", det.Report)
	}
	if det.Index != 4 || det.PrevIndex != 2 {
		t.Errorf("event indices = (%d, %d), want (4, 2)", det.Index, det.PrevIndex)
	}
	if len(det.AccessClock) == 0 {
		t.Error("AccessClock empty")
	}
	if len(det.PrevClock) == 0 {
		t.Error("PrevClock empty: the recorder saw the prior write")
	}
	// Thread 0's write happened at epoch 2@0 (fork incremented its clock).
	if det.PrevEpoch != "2@0" {
		t.Errorf("PrevEpoch = %q, want \"2@0\"", det.PrevEpoch)
	}
	if !strings.Contains(det.FailedCheck, "W_x3 = 2@0") {
		t.Errorf("FailedCheck = %q, want the write epoch comparison", det.FailedCheck)
	}
	// The sync chain must contain thread 0's release of m (the edge that
	// would have ordered the accesses had thread 1 acquired m).
	var sawRel bool
	for _, s := range det.SyncChain {
		if s.Tid == 0 && s.Op == "rel" && s.Target == 5 {
			sawRel = true
			if s.Index != 3 {
				t.Errorf("release record index = %d, want 3", s.Index)
			}
		}
	}
	if !sawRel {
		t.Errorf("SyncChain %+v missing thread 0's release of m5", det.SyncChain)
	}
	if det.Explanation == "" || !strings.Contains(det.Explanation, "failed happens-before check") {
		t.Errorf("Explanation = %q", det.Explanation)
	}
}

// TestProvenanceShardedMatchesSerial replays the directed race through
// the sharded layout and requires the identical detail.
func TestProvenanceShardedMatchesSerial(t *testing.T) {
	serial := New(2, 4)
	serial.EnableProvenance()
	sharded := New(2, 4)
	sharded.EnableProvenance()
	sharded.EnableSharding(4)
	for i, e := range provTrace() {
		serial.HandleEvent(i, e)
		sharded.HandleEvent(i, e)
	}
	sd := serial.DetailedRaces()
	hd := sharded.DetailedRaces()
	if len(sd) != 1 || len(hd) != 1 {
		t.Fatalf("detail counts: serial %d, sharded %d", len(sd), len(hd))
	}
	if sd[0].Explanation != hd[0].Explanation {
		t.Errorf("explanations diverge\n serial:  %s\n sharded: %s",
			sd[0].Explanation, hd[0].Explanation)
	}
}

// TestProvenanceReadWriteShared exercises the read-shared enrichment
// branch: two concurrent readers promote R_x to a vector clock, then an
// unordered write races against one of them.
func TestProvenanceReadWriteShared(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1), // 0
		trace.ForkOf(0, 2), // 1
		trace.Rd(1, 9),     // 2
		trace.Rd(2, 9),     // 3: promotes to read-shared
		trace.Wr(0, 9),     // 4: races with both reads
	}
	d := New(3, 16)
	d.EnableProvenance()
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	races := wantRaces(t, d, 1)
	if races[0].Kind != rr.ReadWrite {
		t.Fatalf("kind = %v, want read-write", races[0].Kind)
	}
	det := d.DetailedRaces()[0]
	if !strings.Contains(det.FailedCheck, "R_x9[") {
		t.Errorf("FailedCheck = %q, want the read-shared component comparison", det.FailedCheck)
	}
	if det.PrevEpoch == "" {
		t.Error("PrevEpoch empty for read-shared race")
	}
}

// TestProvenanceDisabledIsPlain: with the recorder off, DetailedRaces
// still mirrors Races() but carries no evidence.
func TestProvenanceDisabledIsPlain(t *testing.T) {
	d := run(t, provTrace())
	races := wantRaces(t, d, 1)
	dets := d.DetailedRaces()
	if len(dets) != 1 || dets[0].Report != races[0] {
		t.Fatalf("DetailedRaces = %+v, want plain mirror of %+v", dets, races)
	}
	if dets[0].Explanation != "" || dets[0].FailedCheck != "" || len(dets[0].AccessClock) != 0 {
		t.Errorf("disabled recorder produced evidence: %+v", dets[0])
	}
}

// TestProvenanceRingBounded: a thread performing far more sync
// operations than the ring holds quotes only the most recent ones.
func TestProvenanceRingBounded(t *testing.T) {
	d := New(2, 4)
	d.EnableProvenance()
	i := 0
	handle := func(e trace.Event) {
		d.HandleEvent(i, e)
		i++
	}
	handle(trace.ForkOf(0, 1))
	handle(trace.Acq(0, 5))
	handle(trace.Wr(0, 3))
	handle(trace.Rel(0, 5))
	for k := 0; k < 10*provRingSize; k++ {
		handle(trace.Acq(1, 7))
		handle(trace.Rel(1, 7))
	}
	handle(trace.Wr(1, 3))
	det := d.DetailedRaces()
	if len(det) != 1 {
		t.Fatalf("races = %d, want 1", len(det))
	}
	if len(det[0].SyncChain) > 2*provChainLen {
		t.Errorf("SyncChain has %d entries, want <= %d", len(det[0].SyncChain), 2*provChainLen)
	}
	// The quoted chain must be the most recent operations, in index order.
	last := -1
	for _, s := range det[0].SyncChain {
		if s.Index < last {
			t.Errorf("SyncChain out of order: %+v", det[0].SyncChain)
		}
		last = s.Index
	}
	if last < i-3 {
		t.Errorf("newest quoted sync is event %d; ring should quote recent history (last sync at %d)", last, i-2)
	}
}
