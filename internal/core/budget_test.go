package core

import (
	"testing"

	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// feedBudget drives d through a workload that (a) creates many
// read-shared vector clocks and (b) keeps touching fresh locations, so
// both rungs of the degradation ladder have something to do. Returns
// the number of events fed.
func feedBudget(d *Detector, vars int) int {
	i := 0
	feed := func(e trace.Event) {
		d.HandleEvent(i, e)
		i++
	}
	feed(trace.ForkOf(0, 1))
	feed(trace.ForkOf(0, 2))
	for x := 0; x < vars; x++ {
		// Unordered reads by three threads: x becomes read-shared.
		feed(trace.Rd(0, uint64(x)))
		feed(trace.Rd(1, uint64(x)))
		feed(trace.Rd(2, uint64(x)))
	}
	return i
}

func TestMemoryBudgetSqueezesReadShared(t *testing.T) {
	d := New(0, 0)
	d.SetMemoryBudget(1) // impossible budget: every check degrades
	feedBudget(d, 2000)  // 6002 events, several budget checks
	st := d.Stats()
	if st.MemSqueezes == 0 {
		t.Fatal("budget pressure never squeezed a read-shared vector clock")
	}
	if st.MemCoarse == 0 {
		t.Fatal("budget pressure never engaged the coarse fallback")
	}
	if d.coarseFrom == 0 {
		t.Fatal("coarseFrom not set under an impossible budget")
	}
}

func TestMemoryBudgetBoundsNewGrowth(t *testing.T) {
	d := New(0, 0)
	d.SetMemoryBudget(64 << 10)
	i := feedBudget(d, 4000)
	// Past the fold point, consecutive fresh locations share folded
	// shadow slots, so the var table grows FieldsPerObject times slower.
	d.HandleEvent(i, trace.Wr(0, 100000))
	i++
	before := len(d.r)
	for x := 1; x < 8000; x++ {
		d.HandleEvent(i, trace.Wr(0, uint64(100000+x)))
		i++
	}
	st := d.Stats()
	if st.MemCoarse == 0 {
		t.Fatalf("coarse fallback never fired (footprint %d, %d vars)", d.footprint(), len(d.r))
	}
	grew := len(d.r) - before
	if grew > 8000/rr.FieldsPerObject+1 {
		t.Fatalf("var table grew by %d for 8000 fresh locations; coarse fallback not bounding growth", grew)
	}
}

func TestMemoryBudgetKeepsDetecting(t *testing.T) {
	d := New(0, 0)
	d.SetMemoryBudget(1)
	i := feedBudget(d, 2000)
	// A planted unsynchronized write-write race after heavy degradation.
	target := uint64(500000)
	d.HandleEvent(i, trace.Wr(1, target))
	d.HandleEvent(i+1, trace.Wr(2, target))
	found := false
	for _, r := range d.Races() {
		if r.Kind == rr.WriteWrite && r.Tid == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("degraded detector missed a planted write-write race")
	}
}

func TestMemoryBudgetOffByDefault(t *testing.T) {
	d := New(0, 0)
	feedBudget(d, 500)
	st := d.Stats()
	if st.MemSqueezes != 0 || st.MemCoarse != 0 {
		t.Fatalf("degradation counters nonzero without a budget: %+v", st)
	}
}

func TestSqueezePreservesWellFormedness(t *testing.T) {
	d := New(0, 0)
	d.SetMemoryBudget(1)
	feedBudget(d, 2000)
	if err := d.CheckWellFormed(); err != nil {
		t.Fatalf("invariants violated after budget squeeze: %v", err)
	}
}
