// Package core implements the FastTrack dynamic race detection algorithm
// of Flanagan & Freund (PLDI 2009), Figures 2, 3 and 5, together with the
// Section 4 extensions for volatile variables, barriers and wait/notify.
//
// FastTrack is a precise, online happens-before race detector. Its key
// idea is the adaptive representation of per-variable access histories:
//
//   - the last write to each variable is recorded as a single epoch c@t
//     (all non-racy writes are totally ordered, so one epoch suffices);
//   - the read history is an epoch while reads remain totally ordered
//     (thread-local and lock-protected data) and is promoted to a full
//     vector clock only when reads become concurrent (read-shared data);
//     a subsequent write that happens after all those reads demotes the
//     history back to an epoch.
//
// The result is O(1) space per variable and O(1) time per access in the
// common case, with no loss of precision (Theorem 1).
package core

import (
	"sort"

	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// readShared marks a read history that has been promoted to a vector
// clock, mirroring the READ_SHARED sentinel of Figure 5.
const readShared = ^vc.Epoch(0)

// varState is the per-variable shadow state ("VarState" in Figure 5):
// the write epoch W, the read epoch R, and the read vector clock Rvc,
// which is in use iff r == readShared.
type varState struct {
	w, r    vc.Epoch
	rvc     vc.VC
	flagged bool // a race was already reported on this variable
}

// threadState caches each thread's vector clock C_t and current epoch
// E(t) = C_t(t)@t (the "epoch" field invariant of Figure 5).
type threadState struct {
	c     vc.VC
	epoch vc.Epoch
}

// Detector is the FastTrack analysis state σ = (C, L, R, W).
// It implements rr.Tool and rr.Prefilter.
type Detector struct {
	threads []threadState
	locks   map[uint64]vc.VC // L: lock -> VC of last release
	vols    map[uint64]vc.VC // L extended to volatiles (Section 4)
	vars    []varState       // R and W, indexed by variable id

	// Detailed error reporting (the "more precise error reporting" of
	// the paper's Section 4 implementation notes): when enabled, the
	// detector additionally tracks the event index of each variable's
	// most recent non-redundant read and write, so race reports carry
	// PrevIndex — the position of the prior racing access. Costs two
	// extra words per variable and one store per slow-path access.
	detailed     bool
	lastWriteIdx []int
	lastReadIdx  []int

	// Memory budget (see budget.go): when budget > 0 the detector keeps
	// its shadow footprint under budget bytes by degrading precision —
	// first squeezing read vector clocks back to epochs, then folding
	// locations at or above coarseFrom into coarse (per-object) shadow
	// locations.
	budget     int64
	coarseFrom uint64

	// extendedSameEpoch enables the extended [FT READ SAME EPOCH] rule
	// the paper describes (Section 3, "Read Operations"): it additionally
	// matches same-epoch reads of read-shared data (R_x ∈ VC with
	// R_x(t) = C_t(t)), raising the rule's coverage to DJIT+'s 78% of
	// reads. The paper reports it "does not improve performance of our
	// prototype perceptibly" — the default leaves it off, matching the
	// presented algorithm, and the stats counters let the claim be
	// re-checked here (see the rule-frequency tests).
	extendedSameEpoch bool

	// stripes, when non-nil, holds the per-stripe variable tables, access
	// counters and race lists used under the sharded Monitor's
	// stripe-locking discipline (see shard.go and rr.ShardedTool). Serial
	// detectors leave it nil and use the dense vars table below.
	stripes []stripeState

	// sampleThr is the sampling-tier threshold (see sampling.go): an
	// access to x is analyzed iff sampleHash(x) < sampleThr. The default
	// sampleFull (1<<32) is unreachable by the 32-bit hash, so full
	// fidelity pays one compare and never hashes.
	sampleThr uint64

	// prov is the provenance flight recorder (see provenance.go); nil —
	// the default — means race reports stay plain and the access paths
	// pay only this nil check.
	prov *provState

	races []rr.Report
	st    rr.Stats

	// raceSnap caches the merged, index-sorted view of the stripe race
	// lists; raceSnapN is the total race count it was built from. Stripe
	// race lists are append-only, so a changed sum of lengths is exactly
	// "some stripe appended" — a per-stripe generation counter folded
	// into one comparison. Guarded by the same full exclusion as Races.
	raceSnap  []rr.Report
	raceSnapN int
}

var (
	_ rr.Tool      = (*Detector)(nil)
	_ rr.Prefilter = (*Detector)(nil)
	_ rr.Sampled   = (*Detector)(nil)
)

// New returns a detector expecting roughly the given numbers of threads
// and variables (hints only; both grow on demand).
func New(threadHint, varHint int) *Detector {
	d := &Detector{
		locks:     make(map[uint64]vc.VC),
		vols:      make(map[uint64]vc.VC),
		sampleThr: sampleFull,
	}
	if threadHint > 0 {
		d.threads = make([]threadState, 0, threadHint)
	}
	if varHint > 0 {
		d.vars = make([]varState, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "FastTrack" }

// EnableExtendedSameEpoch turns on the extended [FT READ SAME EPOCH]
// rule; see the field comment. Precision is unaffected.
func (d *Detector) EnableExtendedSameEpoch() { d.extendedSameEpoch = true }

// EnableDetailedReports turns on per-variable access-history tracking so
// subsequent race reports carry PrevIndex. Accesses processed before the
// call have no history (their PrevIndex would report -1).
func (d *Detector) EnableDetailedReports() {
	d.detailed = true
	for len(d.lastWriteIdx) < len(d.vars) {
		d.lastWriteIdx = append(d.lastWriteIdx, -1)
		d.lastReadIdx = append(d.lastReadIdx, -1)
	}
}

// thread returns the state of thread t, initializing C_t = inc_t(⊥V)
// on first use (the initial analysis state σ0 of Section 3).
func (d *Detector) thread(t int32) *threadState {
	for int(t) >= len(d.threads) {
		u := vc.Tid(len(d.threads))
		cv := vc.New(len(d.threads) + 1).Inc(u)
		d.st.VCAlloc++
		d.threads = append(d.threads, threadState{c: cv, epoch: cv.Epoch(u)})
	}
	return &d.threads[t]
}

// variable returns the shadow state of variable x, growing the dense
// variable table on demand. Fresh variables have R = W = ⊥e.
func (d *Detector) variable(x uint64) *varState {
	for x >= uint64(len(d.vars)) {
		d.vars = append(d.vars, varState{})
		if d.detailed {
			d.lastWriteIdx = append(d.lastWriteIdx, -1)
			d.lastReadIdx = append(d.lastReadIdx, -1)
		}
	}
	return &d.vars[x]
}

// refreshEpoch re-caches E(t) after C_t(t) changed.
func (ts *threadState) refreshEpoch(t vc.Tid) { ts.epoch = ts.c.Epoch(t) }

// report records a warning, at most one per variable, into the
// detector's race list in serial mode or the variable's stripe in
// sharded mode (sv is the variable's sharded state then, nil otherwise).
func (d *Detector) report(x uint64, vs *varState, sv *shardedVar, ts *threadState, kind rr.RaceKind, t int32, prev vc.Tid, i int) {
	if vs.flagged {
		return
	}
	vs.flagged = true
	prevIdx := -1
	races := &d.races
	if sv != nil {
		races = &d.stripeOf(x).races
		if d.detailed {
			if kind == rr.ReadWrite {
				prevIdx = sv.lastR
			} else {
				prevIdx = sv.lastW
			}
		}
	} else if d.detailed {
		if kind == rr.ReadWrite {
			prevIdx = d.lastReadIdx[x]
		} else {
			prevIdx = d.lastWriteIdx[x]
		}
	}
	rep := rr.Report{
		Var: x, Kind: kind, Tid: t, PrevTid: int32(prev), Index: i, PrevIndex: prevIdx,
	}
	*races = append(*races, rep)
	if d.prov != nil {
		d.enrich(rep, vs, sv, ts)
	}
}

// HandleEvent implements rr.Tool. Accesses are handled entirely inside
// read/write (including the Events count), because in sharded mode every
// counter an access touches must live on the variable's stripe; all
// other kinds are delivered under full exclusion and use the detector's
// own counters.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	switch e.Kind {
	case trace.Read:
		d.read(i, e.Tid, e.Target, true)
		return
	case trace.Write:
		d.write(i, e.Tid, e.Target, true)
		return
	}
	d.st.Events++
	switch e.Kind {
	case trace.Acquire:
		d.st.CountKind(e.Kind)
		d.acquire(e.Tid, e.Target)
	case trace.Release:
		d.st.CountKind(e.Kind)
		d.release(e.Tid, e.Target)
	case trace.Fork:
		d.st.CountKind(e.Kind)
		d.fork(e.Tid, int32(e.Target))
	case trace.Join:
		d.st.CountKind(e.Kind)
		d.join(e.Tid, int32(e.Target))
	case trace.VolatileRead:
		d.st.CountKind(e.Kind)
		d.volatileRead(e.Tid, e.Target)
	case trace.VolatileWrite:
		d.st.CountKind(e.Kind)
		d.volatileWrite(e.Tid, e.Target)
	case trace.BarrierRelease:
		d.st.CountKind(e.Kind)
		d.barrier(e.Tids)
	case trace.TxBegin, trace.TxEnd:
		d.st.CountKind(e.Kind) // counted as markers, not syncs
	}
	// TxBegin/TxEnd/Notify carry no happens-before information.
	if d.prov != nil {
		d.provRecordSync(i, e)
	}
}

// HandleFilter implements rr.Prefilter: it processes the event and
// reports whether a downstream analysis still needs to see it. FastTrack
// filters out accesses it has proven race-free — the "millions of
// irrelevant, race-free memory accesses" of Section 5.2 — passing only
// accesses to variables on which a race has been detected. As the paper's
// footnote 6 notes, an access filtered now may later turn out to be
// involved in a race, so composition trades a small amount of coverage
// for a large speedup of the downstream analysis.
func (d *Detector) HandleFilter(i int, e trace.Event) bool {
	switch e.Kind {
	case trace.Read:
		d.read(i, e.Tid, e.Target, false)
		return d.flaggedOf(d.budgetVar(e.Target))
	case trace.Write:
		d.write(i, e.Tid, e.Target, false)
		return d.flaggedOf(d.budgetVar(e.Target))
	default:
		d.HandleEvent(i, e)
		return true
	}
}

// flaggedOf reports whether a race has already been recorded on variable
// x, without materializing shadow state in sharded mode.
func (d *Detector) flaggedOf(x uint64) bool {
	if d.stripes != nil {
		if sv := d.stripeOf(x).vars[x]; sv != nil {
			return sv.flagged
		}
		return false
	}
	return d.variable(x).flagged
}

// read implements the four read rules of Figure 2 / the read handler of
// Figure 5. countEvent distinguishes the Tool path (which counts the
// event) from the Prefilter path (which historically does not). In
// sharded mode the handler reads only thread tid's clock and mutates
// only state on x's stripe, so it is safe under that stripe's lock.
func (d *Detector) read(i int, tid int32, x uint64, countEvent bool) {
	if d.sampledOut(x) {
		d.skipAccess(x, true, countEvent)
		return
	}
	var (
		vs *varState
		st *rr.Stats
		sv *shardedVar // non-nil iff sharded
	)
	if d.stripes == nil {
		st = &d.st
		st.Reads++
		if d.budget > 0 {
			x = d.budgetAccess(x)
		}
		vs = d.variable(x)
	} else {
		var s *stripeState
		s, sv = d.stripeVar(x)
		vs, st = &sv.varState, &s.st
		st.Reads++
	}
	if countEvent {
		st.Events++
	}
	ts := d.thread(tid)

	// [FT READ SAME EPOCH] — 63.4% of reads in the paper's benchmarks.
	if vs.r == ts.epoch {
		st.ReadSameEpoch++
		return
	}
	// Extended rule (optional): same-epoch read of read-shared data.
	if d.extendedSameEpoch && vs.r == readShared && vs.rvc.Get(vc.Tid(tid)) == ts.c.Get(vc.Tid(tid)) {
		st.ReadSameEpoch++
		return
	}

	// Write-read race check: W_x � C_t.
	if !vs.w.LEq(ts.c) {
		d.report(x, vs, sv, ts, rr.WriteRead, tid, vs.w.Tid(), i)
	}
	if d.detailed {
		if sv != nil {
			sv.lastR = i
		} else {
			d.lastReadIdx[x] = i
		}
		if d.prov != nil {
			d.provVarOf(x, sv).r.record(tid, i, d.provGenOf(tid), ts.epoch)
		}
	}

	t := vc.Tid(tid)
	switch {
	case vs.r == readShared:
		// [FT READ SHARED] — update one component of R_x in place.
		vs.rvc = vs.rvc.Set(t, ts.c.Get(t))
		st.ReadShared++
	case vs.r.LEq(ts.c):
		// [FT READ EXCLUSIVE] — reads still totally ordered.
		vs.r = ts.epoch
		st.ReadExclusive++
	default:
		// [FT READ SHARE] — concurrent reads; inflate to a vector clock.
		// (The slow path of Figure 5: 0.1% of reads.)
		if vs.rvc == nil {
			vs.rvc = vc.New(len(d.threads))
			st.VCAlloc++
		} else {
			for j := range vs.rvc {
				vs.rvc[j] = 0
			}
		}
		vs.rvc = vs.rvc.Set(vs.r.Tid(), vs.r.Clock())
		vs.rvc = vs.rvc.Set(t, ts.c.Get(t))
		vs.r = readShared
		st.ReadShare++
	}
}

// write implements the three write rules of Figure 2 / the write handler
// of Figure 5. See read for the countEvent and sharding notes.
func (d *Detector) write(i int, tid int32, x uint64, countEvent bool) {
	if d.sampledOut(x) {
		d.skipAccess(x, false, countEvent)
		return
	}
	var (
		vs *varState
		st *rr.Stats
		sv *shardedVar // non-nil iff sharded
	)
	if d.stripes == nil {
		st = &d.st
		st.Writes++
		if d.budget > 0 {
			x = d.budgetAccess(x)
		}
		vs = d.variable(x)
	} else {
		var s *stripeState
		s, sv = d.stripeVar(x)
		vs, st = &sv.varState, &s.st
		st.Writes++
	}
	if countEvent {
		st.Events++
	}
	ts := d.thread(tid)

	// [FT WRITE SAME EPOCH] — 71.0% of writes.
	if vs.w == ts.epoch {
		st.WriteSameEpoch++
		return
	}

	// Write-write race check: W_x � C_t.
	if !vs.w.LEq(ts.c) {
		d.report(x, vs, sv, ts, rr.WriteWrite, tid, vs.w.Tid(), i)
	}

	if vs.r != readShared {
		// [FT WRITE EXCLUSIVE] — read-write race check against the read
		// epoch: R_x � C_t.
		if !vs.r.LEq(ts.c) {
			d.report(x, vs, sv, ts, rr.ReadWrite, tid, vs.r.Tid(), i)
		}
		st.WriteExclusive++
	} else {
		// [FT WRITE SHARED] — the one slow write path (0.1% of writes):
		// R_x ⊑ C_t is a full vector-clock comparison. The write then
		// happens after all reads, so the read history is demoted back
		// to the minimal epoch ⊥e, re-enabling the fast paths.
		st.VCOp++
		if prev := vs.rvc.FirstExceeding(ts.c); prev >= 0 {
			d.report(x, vs, sv, ts, rr.ReadWrite, tid, prev, i)
		}
		vs.r = vc.Bottom
		st.WriteShared++
	}
	if d.detailed {
		if sv != nil {
			sv.lastW = i
		} else {
			d.lastWriteIdx[x] = i
		}
		if d.prov != nil {
			d.provVarOf(x, sv).w.record(tid, i, d.provGenOf(tid), ts.epoch)
		}
	}
	vs.w = ts.epoch
}

// acquire implements [FT ACQUIRE]: C_t := C_t ⊔ L_m.
func (d *Detector) acquire(tid int32, m uint64) {
	ts := d.thread(tid)
	if lm, ok := d.locks[m]; ok {
		ts.c = ts.c.Join(lm)
		d.st.VCOp++
	}
}

// release implements [FT RELEASE]: L_m := C_t; C_t := inc_t(C_t).
func (d *Detector) release(tid int32, m uint64) {
	ts := d.thread(tid)
	lm, ok := d.locks[m]
	if !ok {
		d.st.VCAlloc++
	}
	d.locks[m] = lm.CopyInto(ts.c)
	d.st.VCOp++
	ts.c = ts.c.Inc(vc.Tid(tid))
	ts.refreshEpoch(vc.Tid(tid))
}

// fork implements [FT FORK]: C_u := C_u ⊔ C_t; C_t := inc_t(C_t).
func (d *Detector) fork(tid, u int32) {
	// Materialize both threads before taking pointers: thread() may grow
	// the slice and invalidate earlier pointers.
	d.thread(u)
	ts := d.thread(tid)
	us := d.thread(u)
	us.c = us.c.Join(ts.c)
	us.refreshEpoch(vc.Tid(u))
	d.st.VCOp++
	ts.c = ts.c.Inc(vc.Tid(tid))
	ts.refreshEpoch(vc.Tid(tid))
}

// join implements [FT JOIN]: C_t := C_t ⊔ C_u; C_u := inc_u(C_u).
func (d *Detector) join(tid, u int32) {
	d.thread(u)
	ts := d.thread(tid)
	us := d.thread(u)
	ts.c = ts.c.Join(us.c)
	ts.refreshEpoch(vc.Tid(tid))
	d.st.VCOp++
	us.c = us.c.Inc(vc.Tid(u))
	us.refreshEpoch(vc.Tid(u))
}

// volatileRead implements [FT READ VOLATILE]: C_t := C_t ⊔ L_vx.
func (d *Detector) volatileRead(tid int32, v uint64) {
	ts := d.thread(tid)
	if lv, ok := d.vols[v]; ok {
		ts.c = ts.c.Join(lv)
		d.st.VCOp++
	}
}

// volatileWrite implements [FT WRITE VOLATILE]:
// L_vx := C_t ⊔ L_vx; C_t := inc_t(C_t).
func (d *Detector) volatileWrite(tid int32, v uint64) {
	ts := d.thread(tid)
	lv, ok := d.vols[v]
	if !ok {
		d.st.VCAlloc++
	}
	d.vols[v] = lv.Join(ts.c)
	d.st.VCOp++
	ts.c = ts.c.Inc(vc.Tid(tid))
	ts.refreshEpoch(vc.Tid(tid))
}

// barrier implements [FT BARRIER RELEASE]: every released thread's clock
// becomes inc_t(⊔_{u∈T} C_u), so each thread's first post-barrier step
// happens after all pre-barrier steps of all participants.
func (d *Detector) barrier(tids []int32) {
	if len(tids) == 0 {
		return
	}
	join := vc.New(len(d.threads))
	d.st.VCAlloc++
	for _, u := range tids {
		join = join.Join(d.thread(u).c)
		d.st.VCOp++
	}
	for _, u := range tids {
		us := d.thread(u)
		us.c = us.c.CopyInto(join).Inc(vc.Tid(u))
		us.refreshEpoch(vc.Tid(u))
		d.st.VCOp++
	}
}

// Races implements rr.Tool. In sharded mode the per-stripe race lists
// are merged and ordered by event index — the same total order a serial
// run over the same delivered trace produces. Must be called under full
// exclusion; for incremental draining under a single stripe lock use
// StripeRaces.
func (d *Detector) Races() []rr.Report {
	if d.stripes == nil {
		return d.races
	}
	total := 0
	for i := range d.stripes {
		total += len(d.stripes[i].races)
	}
	// Queries (Monitor.Races, Metrics, Close) are far more frequent than
	// new races; re-merge and re-sort only when a stripe has appended
	// since the cached snapshot was built.
	if total == d.raceSnapN {
		return d.raceSnap
	}
	all := make([]rr.Report, 0, total)
	for i := range d.stripes {
		all = append(all, d.stripes[i].races...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Index < all[b].Index })
	d.raceSnap, d.raceSnapN = all, total
	return all
}

// footprint computes the live shadow-memory footprint in bytes; the
// memory budget (budget.go) compares it against the configured ceiling.
func (d *Detector) footprint() int64 {
	var bytes int64
	for i := range d.vars {
		bytes += 24 // w, r epochs + flag word
		bytes += int64(d.vars[i].rvc.Bytes())
	}
	for i := range d.stripes {
		for _, sv := range d.stripes[i].vars {
			bytes += 48 // map slot + w, r epochs, flag, history words
			bytes += int64(sv.rvc.Bytes())
			if sv.prov != nil {
				bytes += 64 // pointer + two scalar last-access records
			}
		}
	}
	if d.prov != nil {
		bytes += 56 * int64(len(d.prov.vars)) // two scalar last-access records each
		for _, r := range d.prov.rings {
			if r == nil {
				continue
			}
			bytes += provRingSize*40 + 16 // sync ring + gen + length
			for i := range r.snaps {
				bytes += int64(r.snaps[i].Bytes())
			}
		}
	}
	for i := range d.threads {
		bytes += int64(d.threads[i].c.Bytes()) + 8
	}
	for _, l := range d.locks {
		bytes += int64(l.Bytes())
	}
	for _, l := range d.vols {
		bytes += int64(l.Bytes())
	}
	return bytes
}

// Stats implements rr.Tool; ShadowBytes is computed from live state. In
// sharded mode the per-stripe counters are merged into the detector's
// own (which hold the sync-event accounting). Must be called under full
// exclusion.
func (d *Detector) Stats() rr.Stats {
	st := d.st
	for i := range d.stripes {
		st.Merge(d.stripes[i].st)
	}
	st.ShadowBytes = d.footprint()
	return st
}

// ClockOf exposes thread t's current vector clock for white-box tests of
// the worked examples in the paper (Sections 2.2, 3 and Figure 4).
func (d *Detector) ClockOf(t int32) vc.VC { return d.thread(t).c.Copy() }

// ReadStateOf exposes variable x's read history for white-box tests: the
// epoch and false, or the read vector clock and true when read-shared.
func (d *Detector) ReadStateOf(x uint64) (vc.Epoch, vc.VC, bool) {
	vs := d.varOf(x)
	if vs.r == readShared {
		return 0, vs.rvc.Copy(), true
	}
	return vs.r, nil, false
}

// WriteEpochOf exposes variable x's write epoch W_x for white-box tests.
func (d *Detector) WriteEpochOf(x uint64) vc.Epoch { return d.varOf(x).w }

// varOf returns variable x's shadow state in whichever layout is active,
// materializing it if needed.
func (d *Detector) varOf(x uint64) *varState {
	if d.stripes != nil {
		_, sv := d.stripeVar(x)
		return &sv.varState
	}
	return d.variable(x)
}
