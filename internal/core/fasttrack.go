// Package core implements the FastTrack dynamic race detection algorithm
// of Flanagan & Freund (PLDI 2009), Figures 2, 3 and 5, together with the
// Section 4 extensions for volatile variables, barriers and wait/notify.
//
// FastTrack is a precise, online happens-before race detector. Its key
// idea is the adaptive representation of per-variable access histories:
//
//   - the last write to each variable is recorded as a single epoch c@t
//     (all non-racy writes are totally ordered, so one epoch suffices);
//   - the read history is an epoch while reads remain totally ordered
//     (thread-local and lock-protected data) and is promoted to a full
//     vector clock only when reads become concurrent (read-shared data);
//     a subsequent write that happens after all those reads demotes the
//     history back to an epoch.
//
// The result is O(1) space per variable and O(1) time per access in the
// common case, with no loss of precision (Theorem 1).
//
// Shadow-state layout (DESIGN.md §13): the per-variable history is
// stored struct-of-arrays. The write and read epochs live in dense
// parallel w[]/r[] arrays — eight variables per cache line — so the
// same-epoch fast path (>96% of accesses in the paper's workloads)
// loads exactly one shadow word. Everything cold (read vector clocks,
// race flags, detailed-mode indices, provenance records) lives in side
// tables consulted only on the slow paths. A read-shared variable's r[]
// entry carries a tag (thread-id field all ones) whose low bits index
// the detector's read-VC store, so promotion costs no extra lookup
// structure and demotion recycles the backing array in place.
package core

import (
	"sort"

	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// epochClockMask masks the clock field of a packed epoch.
const epochClockMask = uint64(1)<<vc.ClockBits - 1

// sharedTagBase marks a read history promoted to a vector clock: every
// r[] value at or above it (thread-id field all ones — a tid no real
// program reaches, mirroring the READ_SHARED sentinel of Figure 5) is
// read-shared, and its clock field indexes the layout's rvcStore.
const sharedTagBase = vc.Epoch(uint64(vc.MaxTid) << vc.ClockBits)

// isShared reports whether a stored read history is the promoted form.
func isShared(e vc.Epoch) bool { return e >= sharedTagBase }

// sharedIdx extracts the rvcStore slot of a promoted read history.
func sharedIdx(e vc.Epoch) int { return int(uint64(e) & epochClockMask) }

// sharedTag builds the tagged r[] value for rvcStore slot idx.
func sharedTag(idx int) vc.Epoch { return sharedTagBase | vc.Epoch(idx) }

// rvcStore holds the read vector clocks of a layout's read-shared
// variables as regions of one flat, pointer-free clock slab, indexed by
// the tag in the variable's r[] entry. The slab layout is what makes
// the [FT READ SHARED] rule — the hottest slow path — a pair of int32
// loads and one word store: no per-variable clock allocation, no slice
// header to write back, no write barrier, and nothing for the garbage
// collector to scan. Releasing a slot (write-shared demotion) keeps its
// region for the next promotion, so the read-share inflation path
// allocates only when the store has never been this large; discarding
// (budget squeeze, accordion compaction) forgets the region, and
// compactSlab repacks the survivors so the memory actually returns to
// the allocator. Serial detectors own one store; in sharded mode each
// stripe owns its own, preserving stripe confinement.
type rvcStore struct {
	clocks  []vc.Clock  // flat slab of every slot's components
	regions []rvcRegion // slot -> region in clocks
	free    []int32     // recycled slot indices
}

// rvcRegion locates one slot's clock inside the slab. Packing offset
// and width together keeps a slot lookup to one 8-byte load.
type rvcRegion struct {
	off, width int32
}

// vcAt returns slot idx's clock as a zero-copy vector view into the
// slab. The three-index slice keeps an append by a caller from bleeding
// into the next region.
func (rs *rvcStore) vcAt(idx int) vc.VC {
	g := rs.regions[idx]
	return vc.VC(rs.clocks[g.off : g.off+g.width : g.off+g.width])
}

// get returns component t of slot idx (missing components are zero).
func (rs *rvcStore) get(idx int, t vc.Tid) vc.Clock {
	if g := rs.regions[idx]; int32(t) < g.width {
		return rs.clocks[g.off+int32(t)]
	}
	return 0
}

// set updates component t of slot idx in place. The region grows
// (rarely: only when threads were created after the promotion) by
// re-carving at the slab's end. The [FT READ SHARED] rule in readSlow
// open-codes the in-bounds store and only calls here to grow.
func (rs *rvcStore) set(idx int, t vc.Tid, c vc.Clock) {
	if int32(t) >= rs.regions[idx].width {
		rs.growSlot(idx, int(t)+1)
	}
	rs.clocks[rs.regions[idx].off+int32(t)] = c
}

// growSlot re-carves slot idx's region with at least n components,
// preserving its contents. The old region leaks inside the slab until
// the next compactSlab.
func (rs *rvcStore) growSlot(idx, n int) {
	g := rs.regions[idx]
	rs.regions[idx] = rvcRegion{off: int32(len(rs.clocks)), width: int32(n)}
	rs.clocks = append(rs.clocks, rs.clocks[g.off:g.off+g.width]...)
	for k := n - int(g.width); k > 0; k-- {
		rs.clocks = append(rs.clocks, 0)
	}
}

// promote services a read-share inflation in one call: it returns a
// slot of >= n components holding exactly {rt: rc, t: c} — the prior
// reader's epoch and the current reader — recycling a freed slot's
// region when one exists. Fusing the slot recycle, the zeroing and
// both component stores into one operation keeps the [FT READ SHARE]
// rule at a single region lookup.
func (rs *rvcStore) promote(n int, rt vc.Tid, rc vc.Clock, t vc.Tid, c vc.Clock) int {
	var idx int
	if k := len(rs.free); k > 0 {
		idx = int(rs.free[k-1])
		rs.free = rs.free[:k-1]
		if int(rs.regions[idx].width) < n {
			rs.growSlot(idx, n)
		}
		g := rs.regions[idx]
		v := rs.clocks[g.off : g.off+g.width]
		for i := range v {
			v[i] = 0
		}
	} else {
		idx = len(rs.regions)
		rs.regions = append(rs.regions, rvcRegion{off: int32(len(rs.clocks)), width: int32(n)})
		for k := n; k > 0; k-- {
			rs.clocks = append(rs.clocks, 0)
		}
	}
	o := rs.regions[idx].off
	rs.clocks[o+int32(rt)] = rc
	rs.clocks[o+int32(t)] = c
	return idx
}

// release retires a slot, keeping its region for reuse.
func (rs *rvcStore) release(idx int) { rs.free = append(rs.free, int32(idx)) }

// discard retires a slot and forgets its region, for the memory
// reclamation seams (budget squeeze, compaction). The slab space is
// reclaimed by the compactSlab those seams run afterwards.
func (rs *rvcStore) discard(idx int) {
	rs.regions[idx].width = 0
	rs.free = append(rs.free, int32(idx))
}

// compactSlab repacks the live regions into a fresh, exactly-sized slab
// so discarded and leaked regions go back to the allocator. Called by
// the reclamation seams, never on access paths.
func (rs *rvcStore) compactSlab() {
	freeSet := make(map[int32]bool, len(rs.free))
	for _, idx := range rs.free {
		freeSet[idx] = true
	}
	var live int32
	for idx := range rs.regions {
		if !freeSet[int32(idx)] {
			live += rs.regions[idx].width
		}
	}
	packed := make([]vc.Clock, 0, live)
	for idx := range rs.regions {
		if freeSet[int32(idx)] {
			rs.regions[idx] = rvcRegion{}
			continue
		}
		g := rs.regions[idx]
		rs.regions[idx].off = int32(len(packed))
		packed = append(packed, rs.clocks[g.off:g.off+g.width]...)
	}
	rs.clocks = packed
}

// bytes reports the store's footprint: the slab (leaked and free
// regions included — they are pinned until compactSlab) plus the slot
// and free-list tables.
func (rs *rvcStore) bytes() int64 {
	return int64(cap(rs.clocks))*8 +
		int64(cap(rs.regions))*8 + int64(cap(rs.free))*4
}

// threadState caches each thread's vector clock C_t and current epoch
// E(t) = C_t(t)@t (the "epoch" field invariant of Figure 5).
type threadState struct {
	c     vc.VC
	epoch vc.Epoch
}

// Detector is the FastTrack analysis state σ = (C, L, R, W).
// It implements rr.Tool and rr.Prefilter.
type Detector struct {
	threads []threadState
	locks   lockTab // L: lock -> VC of last release (see synctab.go)
	vols    lockTab // L extended to volatiles (Section 4)

	// chans holds the per-channel happens-before state (see channel.go).
	// Channel events are sync events, always delivered under full
	// exclusion, so sharded detectors share this table like locks.
	chans map[uint64]*chanState

	// Serial struct-of-arrays variable tables: W and R epochs indexed by
	// variable id (hot), the per-variable race flags as a bitset, and
	// the read-VC side store (cold). Sharded detectors leave these empty
	// and use the per-stripe tables instead (see shard.go).
	w, r    []vc.Epoch
	flagged []uint64
	shared  rvcStore

	// pool recycles vector-clock backing arrays across the allocation
	// sites that run under full exclusion (lock/volatile
	// materialization, barrier joins, thread creation); the reclamation
	// seams (Compact, budget trims) feed it.
	pool vc.Pool

	// Detailed error reporting (the "more precise error reporting" of
	// the paper's Section 4 implementation notes): when enabled, the
	// detector additionally tracks the event index of each variable's
	// most recent non-redundant read and write, so race reports carry
	// PrevIndex — the position of the prior racing access. Costs two
	// extra words per variable and one store per slow-path access.
	detailed     bool
	lastWriteIdx []int
	lastReadIdx  []int

	// Memory budget (see budget.go): when budget > 0 the detector keeps
	// its shadow footprint under budget bytes by degrading precision —
	// first squeezing read vector clocks back to epochs, then folding
	// locations at or above coarseFrom into coarse (per-object) shadow
	// locations.
	budget     int64
	coarseFrom uint64

	// extendedSameEpoch enables the extended [FT READ SAME EPOCH] rule
	// the paper describes (Section 3, "Read Operations"): it additionally
	// matches same-epoch reads of read-shared data (R_x ∈ VC with
	// R_x(t) = C_t(t)), raising the rule's coverage to DJIT+'s 78% of
	// reads. The paper reports it "does not improve performance of our
	// prototype perceptibly" — the default leaves it off, matching the
	// presented algorithm, and the stats counters let the claim be
	// re-checked here (see the rule-frequency tests).
	extendedSameEpoch bool

	// stripes, when non-nil, holds the per-stripe variable tables, access
	// counters and race lists used under the sharded Monitor's
	// stripe-locking discipline (see shard.go and rr.ShardedTool). Serial
	// detectors leave it nil and use the dense tables above.
	stripes []stripeState

	// sampleThr is the sampling-tier threshold (see sampling.go): an
	// access to x is analyzed iff sampleHash(x) < sampleThr. The default
	// sampleFull (1<<32) is unreachable by the 32-bit hash, so full
	// fidelity pays one compare and never hashes.
	sampleThr uint64

	// prov is the provenance flight recorder (see provenance.go); nil —
	// the default — means race reports stay plain and the access paths
	// pay only this nil check.
	prov *provState

	races []rr.Report
	st    rr.Stats

	// raceSnap caches the merged, index-sorted view of the stripe race
	// lists; raceSnapN is the total race count it was built from. Stripe
	// race lists are append-only, so a changed sum of lengths is exactly
	// "some stripe appended" — a per-stripe generation counter folded
	// into one comparison. Guarded by the same full exclusion as Races.
	raceSnap  []rr.Report
	raceSnapN int
}

var (
	_ rr.Tool      = (*Detector)(nil)
	_ rr.Prefilter = (*Detector)(nil)
	_ rr.Sampled   = (*Detector)(nil)
)

// New returns a detector expecting roughly the given numbers of threads
// and variables (hints only; both grow on demand).
func New(threadHint, varHint int) *Detector {
	d := &Detector{
		sampleThr: sampleFull,
	}
	if threadHint > 0 {
		d.threads = make([]threadState, 0, threadHint)
	}
	if varHint > 0 {
		d.w = make([]vc.Epoch, 0, varHint)
		d.r = make([]vc.Epoch, 0, varHint)
	}
	return d
}

// Name implements rr.Tool.
func (d *Detector) Name() string { return "FastTrack" }

// EnableExtendedSameEpoch turns on the extended [FT READ SAME EPOCH]
// rule; see the field comment. Precision is unaffected.
func (d *Detector) EnableExtendedSameEpoch() { d.extendedSameEpoch = true }

// EnableDetailedReports turns on per-variable access-history tracking so
// subsequent race reports carry PrevIndex. Accesses processed before the
// call have no history (their PrevIndex would report -1).
func (d *Detector) EnableDetailedReports() {
	d.detailed = true
	for len(d.lastWriteIdx) < len(d.r) {
		d.lastWriteIdx = append(d.lastWriteIdx, -1)
		d.lastReadIdx = append(d.lastReadIdx, -1)
	}
}

// thread returns the state of thread t, initializing C_t = inc_t(⊥V)
// on first use (the initial analysis state σ0 of Section 3).
func (d *Detector) thread(t int32) *threadState {
	for int(t) >= len(d.threads) {
		u := vc.Tid(len(d.threads))
		cv := d.pool.Get(len(d.threads) + 1).Inc(u)
		d.st.VCAlloc++
		d.threads = append(d.threads, threadState{c: cv, epoch: cv.Epoch(u)})
	}
	return &d.threads[t]
}

// growVars extends the dense serial tables so variable x is valid.
// Fresh variables have R = W = ⊥e (the zero epoch) and a clear flag.
// Growth doubles explicitly rather than relying on append: the runtime's
// large-slice growth factor (~1.25x) re-copies a multi-megabyte table
// dozens of times during a rapid-allocation phase, and per-element
// appends pay that for w and r separately. make zeroes the whole
// capacity and the tables never shrink, so extending within capacity is
// a pure reslice — fresh variables are born ⊥e for free.
func (d *Detector) growVars(x uint64) {
	n := int(x) + 1
	d.w = growEpochs(d.w, n)
	d.r = growEpochs(d.r, n)
	if d.detailed {
		for len(d.lastWriteIdx) < n {
			d.lastWriteIdx = append(d.lastWriteIdx, -1)
			d.lastReadIdx = append(d.lastReadIdx, -1)
		}
	}
	if nw := (n + 63) >> 6; len(d.flagged) < nw {
		if nw <= cap(d.flagged) {
			d.flagged = d.flagged[:nw]
		} else {
			c := 2 * cap(d.flagged)
			if c < 16 {
				c = 16
			}
			for c < nw {
				c *= 2
			}
			nf := make([]uint64, nw, c)
			copy(nf, d.flagged)
			d.flagged = nf
		}
	}
}

// growEpochs extends es to length n, doubling capacity as needed.
func growEpochs(es []vc.Epoch, n int) []vc.Epoch {
	if n <= cap(es) {
		return es[:n]
	}
	c := 2 * cap(es)
	if c < 64 {
		c = 64
	}
	for c < n {
		c *= 2
	}
	ns := make([]vc.Epoch, n, c)
	copy(ns, es)
	return ns
}

// flagBit reports whether variable x is flagged (serial layout).
func (d *Detector) flagBit(x uint64) bool {
	w := x >> 6
	return w < uint64(len(d.flagged)) && d.flagged[w]&(1<<(x&63)) != 0
}

// refreshEpoch re-caches E(t) after C_t(t) changed.
func (ts *threadState) refreshEpoch(t vc.Tid) { ts.epoch = ts.c.Epoch(t) }

// incThread implements inc_t with the overflow accounting: a thread
// whose scalar clock has pinned at vc.MaxClock keeps running (the
// increment saturates) but each further increment is counted, surfacing
// the precision loss through Stats instead of panicking the session.
// The common case mutates the component in place — a thread's own
// component always exists (thread() sizes the clock to include it and
// Trim cannot drop a nonzero tail) — so the sync paths that increment
// on every operation store one word instead of a slice header.
func (d *Detector) incThread(ts *threadState, t vc.Tid) {
	c := ts.c
	if int(t) < len(c) {
		if c[t] < vc.MaxClock {
			c[t]++
		}
		if c[t] >= vc.MaxClock {
			d.st.ClockSaturations++
		}
	} else {
		ts.c = c.Inc(t)
		if ts.c.Get(t) >= vc.MaxClock {
			d.st.ClockSaturations++
		}
	}
	ts.refreshEpoch(t)
}

// report records a warning, at most one per variable, into the
// detector's race list in serial mode or the variable's stripe in
// sharded mode (s/slot identify the stripe slot then; s is nil in
// serial mode and x is the dense index). w and r are the variable's
// pre-update history, rs the active read-VC store — the enricher needs
// them because the caller overwrites the history right after.
func (d *Detector) report(i int, x uint64, s *stripeState, slot int, w, r vc.Epoch, rs *rvcStore, ts *threadState, kind rr.RaceKind, tid int32, prev vc.Tid) {
	prevIdx := -1
	races := &d.races
	if s != nil {
		if s.tab.meta[slot]&slotFlagged != 0 {
			return
		}
		s.tab.meta[slot] |= slotFlagged
		races = &s.races
		if d.detailed {
			if c := s.tab.coldOf(slot); c != nil {
				if kind == rr.ReadWrite {
					prevIdx = c.lastR
				} else {
					prevIdx = c.lastW
				}
			}
		}
	} else {
		if d.flagBit(x) {
			return
		}
		d.flagged[x>>6] |= 1 << (x & 63)
		if d.detailed {
			if kind == rr.ReadWrite {
				prevIdx = d.lastReadIdx[x]
			} else {
				prevIdx = d.lastWriteIdx[x]
			}
		}
	}
	rep := rr.Report{
		Var: x, Kind: kind, Tid: tid, PrevTid: int32(prev), Index: i, PrevIndex: prevIdx,
	}
	*races = append(*races, rep)
	if d.prov != nil {
		d.enrich(rep, w, r, rs, s, slot, ts)
	}
}

// HandleEvent implements rr.Tool. Accesses are handled entirely inside
// read/write (including the Events count), because in sharded mode every
// counter an access touches must live on the variable's stripe; all
// other kinds are delivered under full exclusion and use the detector's
// own counters.
func (d *Detector) HandleEvent(i int, e trace.Event) {
	switch e.Kind {
	case trace.Read:
		d.read(i, e.Tid, e.Target, true)
		return
	case trace.Write:
		d.write(i, e.Tid, e.Target, true)
		return
	}
	d.st.Events++
	switch e.Kind {
	case trace.Acquire:
		d.st.CountKind(e.Kind)
		d.acquire(e.Tid, e.Target)
	case trace.Release:
		d.st.CountKind(e.Kind)
		d.release(e.Tid, e.Target)
	case trace.Fork:
		d.st.CountKind(e.Kind)
		d.fork(e.Tid, int32(e.Target))
	case trace.Join:
		d.st.CountKind(e.Kind)
		d.join(e.Tid, int32(e.Target))
	case trace.VolatileRead:
		d.st.CountKind(e.Kind)
		d.volatileRead(e.Tid, e.Target)
	case trace.VolatileWrite:
		d.st.CountKind(e.Kind)
		d.volatileWrite(e.Tid, e.Target)
	case trace.BarrierRelease:
		d.st.CountKind(e.Kind)
		d.barrier(e.Tids)
	case trace.ChanSend:
		d.st.CountKind(e.Kind)
		d.chanSend(e.Tid, e.Target, e.Cap)
	case trace.ChanRecv:
		d.st.CountKind(e.Kind)
		d.chanRecv(e.Tid, e.Target, e.Cap)
	case trace.ChanClose:
		d.st.CountKind(e.Kind)
		d.chanClose(e.Tid, e.Target, e.Cap)
	case trace.TxBegin, trace.TxEnd:
		d.st.CountKind(e.Kind) // counted as markers, not syncs
	}
	// TxBegin/TxEnd/Notify carry no happens-before information.
	if d.prov != nil {
		d.provRecordSync(i, e)
	}
}

// HandleFilter implements rr.Prefilter: it processes the event and
// reports whether a downstream analysis still needs to see it. FastTrack
// filters out accesses it has proven race-free — the "millions of
// irrelevant, race-free memory accesses" of Section 5.2 — passing only
// accesses to variables on which a race has been detected. As the paper's
// footnote 6 notes, an access filtered now may later turn out to be
// involved in a race, so composition trades a small amount of coverage
// for a large speedup of the downstream analysis.
func (d *Detector) HandleFilter(i int, e trace.Event) bool {
	switch e.Kind {
	case trace.Read:
		d.read(i, e.Tid, e.Target, false)
		return d.flaggedOf(d.budgetVar(e.Target))
	case trace.Write:
		d.write(i, e.Tid, e.Target, false)
		return d.flaggedOf(d.budgetVar(e.Target))
	default:
		d.HandleEvent(i, e)
		return true
	}
}

// flaggedOf reports whether a race has already been recorded on variable
// x, without materializing shadow state in either layout.
func (d *Detector) flaggedOf(x uint64) bool {
	if d.stripes != nil {
		s := d.stripeOf(x)
		if slot := s.tab.find(x); slot >= 0 {
			return s.tab.meta[slot]&slotFlagged != 0
		}
		return false
	}
	return d.flagBit(x)
}

// read implements the four read rules of Figure 2 / the read handler of
// Figure 5. countEvent distinguishes the Tool path (which counts the
// event) from the Prefilter path (which historically does not). The
// serial body is the zero-allocation fast path: counters, then a single
// r[] load against the thread's cached epoch; everything else defers to
// readSlow.
func (d *Detector) read(i int, tid int32, x uint64, countEvent bool) {
	if d.stripes != nil {
		d.readSharded(i, tid, x, countEvent)
		return
	}
	if d.sampleThr != sampleFull && sampleHash(x) >= d.sampleThr {
		d.skipAccess(x, true, countEvent)
		return
	}
	d.st.Reads++
	if countEvent {
		d.st.Events++
	}
	if d.budget > 0 {
		x = d.budgetAccess(x)
	}
	if x >= uint64(len(d.r)) {
		d.growVars(x)
	}
	if int(tid) >= len(d.threads) {
		d.thread(tid)
	}
	// [FT READ SAME EPOCH] — 63.4% of reads in the paper's benchmarks.
	ts := &d.threads[tid]
	r := d.r[x]
	if r == ts.epoch {
		d.st.ReadSameEpoch++
		return
	}
	// The remaining rules, open-coded for the serial layout (no extra
	// call on the non-fast-path reads). Mirrors readSlow, which serves
	// the sharded layout; the serial/sharded equivalence property tests
	// keep the two in lockstep.
	t := vc.Tid(tid)
	rs := &d.shared
	// Extended rule (optional): same-epoch read of read-shared data.
	if d.extendedSameEpoch && isShared(r) && rs.get(sharedIdx(r), t) == ts.c.Get(t) {
		d.st.ReadSameEpoch++
		return
	}
	// Write-read race check: W_x ⊑ C_t.
	w := d.w[x]
	if !w.LEq(ts.c) {
		d.report(i, x, nil, 0, w, r, rs, ts, rr.WriteRead, tid, w.Tid())
	}
	if d.detailed {
		d.noteRead(i, x, nil, 0, tid, ts)
	}
	switch {
	case isShared(r):
		// [FT READ SHARED] — one word store into the slab.
		idx := sharedIdx(r)
		if g := rs.regions[idx]; int32(t) < g.width {
			rs.clocks[g.off+int32(t)] = ts.c.Get(t)
		} else {
			rs.set(idx, t, ts.c.Get(t))
		}
		d.st.ReadShared++
	case r.LEq(ts.c):
		// [FT READ EXCLUSIVE].
		d.r[x] = ts.epoch
		d.st.ReadExclusive++
	default:
		// [FT READ SHARE] — inflate to a vector clock.
		idx := rs.promote(len(d.threads), r.Tid(), r.Clock(), t, ts.c.Get(t))
		d.st.VCAlloc++
		d.r[x] = sharedTag(idx)
		d.st.ReadShare++
	}
}

// readSlow runs the remaining read rules against the variable's
// history. wp/rp point into the active layout's epoch arrays and rs is
// that layout's read-VC store; s/slot identify the sharded slot (s nil
// in serial mode). In sharded mode everything it mutates is confined to
// x's stripe, so it is safe under that stripe's lock.
func (d *Detector) readSlow(i int, tid int32, x uint64, wp, rp *vc.Epoch, rs *rvcStore, st *rr.Stats, s *stripeState, slot int) {
	ts := &d.threads[tid]
	t := vc.Tid(tid)
	r := *rp
	// Extended rule (optional): same-epoch read of read-shared data.
	if d.extendedSameEpoch && isShared(r) && rs.get(sharedIdx(r), t) == ts.c.Get(t) {
		st.ReadSameEpoch++
		return
	}
	// Write-read race check: W_x � C_t.
	w := *wp
	if !w.LEq(ts.c) {
		d.report(i, x, s, slot, w, r, rs, ts, rr.WriteRead, tid, w.Tid())
	}
	if d.detailed {
		d.noteRead(i, x, s, slot, tid, ts)
	}
	switch {
	case isShared(r):
		// [FT READ SHARED] — update one component of R_x in place: one
		// word store into the slab, no allocation, no write barrier
		// (open-coded from rvcStore.set so it stays call-free; the grow
		// branch is only taken when threads appeared after promotion).
		idx := sharedIdx(r)
		if g := rs.regions[idx]; int32(t) < g.width {
			rs.clocks[g.off+int32(t)] = ts.c.Get(t)
		} else {
			rs.set(idx, t, ts.c.Get(t))
		}
		st.ReadShared++
	case r.LEq(ts.c):
		// [FT READ EXCLUSIVE] — reads still totally ordered.
		*rp = ts.epoch
		st.ReadExclusive++
	default:
		// [FT READ SHARE] — concurrent reads; inflate to a vector clock.
		// (The slow path of Figure 5: 0.1% of reads.) VCAlloc counts the
		// logical allocation even when the store recycles a demoted
		// variable's region — the counter tracks the algorithm's
		// allocation behavior, not the allocator's, so serial and sharded
		// layouts report identically.
		idx := rs.promote(len(d.threads), r.Tid(), r.Clock(), t, ts.c.Get(t))
		st.VCAlloc++
		*rp = sharedTag(idx)
		st.ReadShare++
	}
}

// write implements the three write rules of Figure 2 / the write handler
// of Figure 5. See read for the fast-path shape and sharding notes.
func (d *Detector) write(i int, tid int32, x uint64, countEvent bool) {
	if d.stripes != nil {
		d.writeSharded(i, tid, x, countEvent)
		return
	}
	if d.sampleThr != sampleFull && sampleHash(x) >= d.sampleThr {
		d.skipAccess(x, false, countEvent)
		return
	}
	d.st.Writes++
	if countEvent {
		d.st.Events++
	}
	if d.budget > 0 {
		x = d.budgetAccess(x)
	}
	if x >= uint64(len(d.r)) {
		d.growVars(x)
	}
	if int(tid) >= len(d.threads) {
		d.thread(tid)
	}
	// [FT WRITE SAME EPOCH] — 71.0% of writes.
	ts := &d.threads[tid]
	if d.w[x] == ts.epoch {
		d.st.WriteSameEpoch++
		return
	}
	// Remaining rules, open-coded for the serial layout; mirrors
	// writeSlow (the sharded path), kept in lockstep by the equivalence
	// property tests.
	w, r := d.w[x], d.r[x]
	rs := &d.shared
	// Write-write race check: W_x ⊑ C_t.
	if !w.LEq(ts.c) {
		d.report(i, x, nil, 0, w, r, rs, ts, rr.WriteWrite, tid, w.Tid())
	}
	if !isShared(r) {
		// [FT WRITE EXCLUSIVE] — read-write race check against the read
		// epoch: R_x ⊑ C_t.
		if !r.LEq(ts.c) {
			d.report(i, x, nil, 0, w, r, rs, ts, rr.ReadWrite, tid, r.Tid())
		}
		d.st.WriteExclusive++
	} else {
		// [FT WRITE SHARED] — full vector compare, then demote.
		d.st.VCOp++
		idx := sharedIdx(r)
		if prev := rs.vcAt(idx).FirstExceeding(ts.c); prev >= 0 {
			d.report(i, x, nil, 0, w, r, rs, ts, rr.ReadWrite, tid, prev)
		}
		rs.release(idx)
		d.r[x] = vc.Bottom
		d.st.WriteShared++
	}
	if d.detailed {
		d.noteWrite(i, x, nil, 0, tid, ts)
	}
	d.w[x] = ts.epoch
}

// writeSlow runs the remaining write rules; see readSlow for the
// parameter and confinement notes.
func (d *Detector) writeSlow(i int, tid int32, x uint64, wp, rp *vc.Epoch, rs *rvcStore, st *rr.Stats, s *stripeState, slot int) {
	ts := &d.threads[tid]
	w, r := *wp, *rp
	// Write-write race check: W_x � C_t.
	if !w.LEq(ts.c) {
		d.report(i, x, s, slot, w, r, rs, ts, rr.WriteWrite, tid, w.Tid())
	}
	if !isShared(r) {
		// [FT WRITE EXCLUSIVE] — read-write race check against the read
		// epoch: R_x � C_t.
		if !r.LEq(ts.c) {
			d.report(i, x, s, slot, w, r, rs, ts, rr.ReadWrite, tid, r.Tid())
		}
		st.WriteExclusive++
	} else {
		// [FT WRITE SHARED] — the one slow write path (0.1% of writes):
		// R_x ⊑ C_t is a full vector-clock comparison. The write then
		// happens after all reads, so the read history is demoted back
		// to the minimal epoch ⊥e, re-enabling the fast paths; the
		// vector's backing array goes back to the store for the next
		// promotion.
		st.VCOp++
		idx := sharedIdx(r)
		if prev := rs.vcAt(idx).FirstExceeding(ts.c); prev >= 0 {
			d.report(i, x, s, slot, w, r, rs, ts, rr.ReadWrite, tid, prev)
		}
		rs.release(idx)
		*rp = vc.Bottom
		st.WriteShared++
	}
	if d.detailed {
		d.noteWrite(i, x, s, slot, tid, ts)
	}
	*wp = ts.epoch
}

// noteRead records the detailed-mode read history (and, when the flight
// recorder is on, the provenance last-access record) for the layout the
// access ran under.
func (d *Detector) noteRead(i int, x uint64, s *stripeState, slot int, tid int32, ts *threadState) {
	if s != nil {
		c := s.tab.coldFor(slot)
		c.lastR = i
		if d.prov != nil {
			c.provRec().r.record(tid, i, d.provGenOf(tid), ts.epoch)
		}
		return
	}
	d.lastReadIdx[x] = i
	if d.prov != nil {
		d.provVarSerial(x).r.record(tid, i, d.provGenOf(tid), ts.epoch)
	}
}

// noteWrite is noteRead's write-side twin.
func (d *Detector) noteWrite(i int, x uint64, s *stripeState, slot int, tid int32, ts *threadState) {
	if s != nil {
		c := s.tab.coldFor(slot)
		c.lastW = i
		if d.prov != nil {
			c.provRec().w.record(tid, i, d.provGenOf(tid), ts.epoch)
		}
		return
	}
	d.lastWriteIdx[x] = i
	if d.prov != nil {
		d.provVarSerial(x).w.record(tid, i, d.provGenOf(tid), ts.epoch)
	}
}

// acquire implements [FT ACQUIRE]: C_t := C_t ⊔ L_m.
func (d *Detector) acquire(tid int32, m uint64) {
	ts := d.thread(tid)
	if lm, ok := d.locks.get(m); ok {
		ts.c = ts.c.Join(lm)
		d.st.VCOp++
	}
}

// release implements [FT RELEASE]: L_m := C_t; C_t := inc_t(C_t). One
// table probe resolves the lock; its clock is materialized from the
// slab pool on first release and copied into in place afterwards, so
// steady-state releases do not allocate.
func (d *Detector) release(tid int32, m uint64) {
	ts := d.thread(tid)
	p := d.locks.ref(m)
	lm := *p
	if lm == nil {
		lm = d.pool.Get(len(ts.c))
		d.st.VCAlloc++
	}
	*p = lm.CopyInto(ts.c)
	d.st.VCOp++
	d.incThread(ts, vc.Tid(tid))
}

// fork implements [FT FORK]: C_u := C_u ⊔ C_t; C_t := inc_t(C_t).
func (d *Detector) fork(tid, u int32) {
	// Materialize both threads before taking pointers: thread() may grow
	// the slice and invalidate earlier pointers.
	d.thread(u)
	ts := d.thread(tid)
	us := d.thread(u)
	us.c = us.c.Join(ts.c)
	us.refreshEpoch(vc.Tid(u))
	d.st.VCOp++
	d.incThread(ts, vc.Tid(tid))
}

// join implements [FT JOIN]: C_t := C_t ⊔ C_u; C_u := inc_u(C_u).
func (d *Detector) join(tid, u int32) {
	d.thread(u)
	ts := d.thread(tid)
	us := d.thread(u)
	ts.c = ts.c.Join(us.c)
	ts.refreshEpoch(vc.Tid(tid))
	d.st.VCOp++
	d.incThread(us, vc.Tid(u))
}

// volatileRead implements [FT READ VOLATILE]: C_t := C_t ⊔ L_vx.
func (d *Detector) volatileRead(tid int32, v uint64) {
	ts := d.thread(tid)
	if lv, ok := d.vols.get(v); ok {
		ts.c = ts.c.Join(lv)
		d.st.VCOp++
	}
}

// volatileWrite implements [FT WRITE VOLATILE]:
// L_vx := C_t ⊔ L_vx; C_t := inc_t(C_t).
func (d *Detector) volatileWrite(tid int32, v uint64) {
	ts := d.thread(tid)
	p := d.vols.ref(v)
	lv := *p
	if lv == nil {
		lv = d.pool.Get(len(ts.c))
		d.st.VCAlloc++
	}
	*p = lv.Join(ts.c)
	d.st.VCOp++
	d.incThread(ts, vc.Tid(tid))
}

// barrier implements [FT BARRIER RELEASE]: every released thread's clock
// becomes inc_t(⊔_{u∈T} C_u), so each thread's first post-barrier step
// happens after all pre-barrier steps of all participants. The join
// scratch comes from (and returns to) the slab pool.
func (d *Detector) barrier(tids []int32) {
	if len(tids) == 0 {
		return
	}
	join := d.pool.Get(len(d.threads))
	d.st.VCAlloc++
	for _, u := range tids {
		join = join.Join(d.thread(u).c)
		d.st.VCOp++
	}
	for _, u := range tids {
		us := d.thread(u)
		us.c = us.c.CopyInto(join)
		d.incThread(us, vc.Tid(u))
		d.st.VCOp++
	}
	d.pool.Put(join)
}

// Races implements rr.Tool. In sharded mode the per-stripe race lists
// are merged and ordered by event index — the same total order a serial
// run over the same delivered trace produces. Must be called under full
// exclusion; for incremental draining under a single stripe lock use
// StripeRaces.
func (d *Detector) Races() []rr.Report {
	if d.stripes == nil {
		return d.races
	}
	total := 0
	for i := range d.stripes {
		total += len(d.stripes[i].races)
	}
	// Queries (Monitor.Races, Metrics, Close) are far more frequent than
	// new races; re-merge and re-sort only when a stripe has appended
	// since the cached snapshot was built.
	if total == d.raceSnapN {
		return d.raceSnap
	}
	all := make([]rr.Report, 0, total)
	for i := range d.stripes {
		all = append(all, d.stripes[i].races...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Index < all[b].Index })
	d.raceSnap, d.raceSnapN = all, total
	return all
}

// footprint computes the live shadow-memory footprint in bytes; the
// memory budget (budget.go) compares it against the configured ceiling.
// Every retained byte is charged to the structure that pins it: the
// dense epoch arrays (16 bytes per variable across w and r), the flag
// bitset, the detailed-mode index tables, read-VC stores (free slots
// included — their arrays are still held), stripe tables, provenance
// state, thread/lock/volatile clocks, and the slab pool's free lists.
func (d *Detector) footprint() int64 {
	var bytes int64
	bytes += int64(cap(d.w)+cap(d.r)) * 8
	bytes += int64(cap(d.flagged)) * 8
	bytes += int64(cap(d.lastWriteIdx)+cap(d.lastReadIdx)) * 8
	bytes += d.shared.bytes()
	for i := range d.stripes {
		bytes += d.stripes[i].tab.bytes()
		bytes += d.stripes[i].shared.bytes()
	}
	if d.prov != nil {
		bytes += provVarRecBytes * int64(len(d.prov.vars))
		for _, r := range d.prov.rings {
			if r == nil {
				continue
			}
			bytes += provRingSize*40 + 16 // sync ring + gen + length
			for i := range r.snaps {
				bytes += int64(r.snaps[i].Bytes())
			}
		}
	}
	for i := range d.threads {
		bytes += int64(d.threads[i].c.Bytes()) + 32 // VC header + cached epoch
	}
	bytes += d.locks.bytes()
	bytes += d.vols.bytes()
	bytes += d.chanBytes()
	bytes += d.pool.Bytes()
	return bytes
}

// provVarRecBytes is the size of a provVarRec (two provAccess records
// of four scalars each).
const provVarRecBytes = 64

// Stats implements rr.Tool; ShadowBytes is computed from live state. In
// sharded mode the per-stripe counters are merged into the detector's
// own (which hold the sync-event accounting). Must be called under full
// exclusion.
func (d *Detector) Stats() rr.Stats {
	st := d.st
	for i := range d.stripes {
		st.Merge(d.stripes[i].st)
	}
	st.ShadowBytes = d.footprint()
	return st
}

// ClockOf exposes thread t's current vector clock for white-box tests of
// the worked examples in the paper (Sections 2.2, 3 and Figure 4).
func (d *Detector) ClockOf(t int32) vc.VC { return d.thread(t).c.Copy() }

// ReadStateOf exposes variable x's read history for white-box tests: the
// epoch and false, or the read vector clock and true when read-shared.
func (d *Detector) ReadStateOf(x uint64) (vc.Epoch, vc.VC, bool) {
	_, rp, rs := d.histOf(x)
	if isShared(*rp) {
		return 0, rs.vcAt(sharedIdx(*rp)).Copy(), true
	}
	return *rp, nil, false
}

// WriteEpochOf exposes variable x's write epoch W_x for white-box tests.
func (d *Detector) WriteEpochOf(x uint64) vc.Epoch {
	wp, _, _ := d.histOf(x)
	return *wp
}

// histOf returns pointers to variable x's epoch history and the read-VC
// store of whichever layout is active, materializing the slot if needed.
func (d *Detector) histOf(x uint64) (wp, rp *vc.Epoch, rs *rvcStore) {
	if d.stripes != nil {
		s := d.stripeOf(x)
		slot := s.tab.lookup(x)
		return &s.tab.w[slot], &s.tab.r[slot], &s.shared
	}
	if x >= uint64(len(d.r)) {
		d.growVars(x)
	}
	return &d.w[x], &d.r[x], &d.shared
}
