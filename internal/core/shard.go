package core

import (
	"fmt"

	"fasttrack/internal/rr"
)

// This file holds the detector's sharded storage layout, the back half
// of the lock-striped ingestion path (see rr/stripe.go for the locking
// contract and the legality argument). The Monitor owns the stripe
// locks; the detector owns per-stripe variable tables so that the state
// an access handler mutates — the variable's shadow word, the stripe's
// access counters, the stripe's race list — is confined to the stripe
// whose lock the caller holds. Thread, lock and volatile clocks stay on
// the detector: the access path only reads them, and every event that
// writes them is delivered under full exclusion.

// stripeState is one stripe's share of the analysis state: the shadow
// states of the variables mapping onto the stripe, the access-path
// counters those variables' accesses are counted into, and the races
// detected on them. Everything in it is guarded by the caller-held
// stripe lock.
type stripeState struct {
	vars  map[uint64]*shardedVar
	st    rr.Stats
	races []rr.Report
}

// shardedVar is a variable's shadow state in the sharded layout. The
// detailed-report history — and, when the flight recorder is enabled,
// the provenance last-access record and the enriched report — lives
// here rather than in detector-wide tables, keeping the access path
// stripe-confined.
type shardedVar struct {
	varState
	lastR, lastW int
	prov         *provVarRec
	detail       *rr.DetailedReport
}

// EnableSharding switches the detector's access-path storage to n
// per-stripe variable tables, implementing rr.ShardedTool. n < 2 keeps
// the serial dense-table layout. It must be called on a fresh detector:
// remapping already-populated shadow state across stripes is not
// supported. The shadow-memory budget is incompatible with sharding —
// its coarse fallback remaps variable ids, which would silently move a
// variable to a different stripe than the one the caller locked.
func (d *Detector) EnableSharding(n int) {
	if n < 2 {
		return
	}
	if d.budget > 0 {
		panic("core: EnableSharding is incompatible with a memory budget")
	}
	if d.st.Events != 0 || len(d.vars) > 0 || len(d.threads) > 0 {
		panic("core: EnableSharding called after events were handled")
	}
	d.stripes = make([]stripeState, n)
	for i := range d.stripes {
		d.stripes[i].vars = make(map[uint64]*shardedVar)
	}
}

// stripeOf returns the stripe owning variable x. Must agree with the
// lock the caller chose, so it uses the shared rr.StripeOf mapping.
func (d *Detector) stripeOf(x uint64) *stripeState {
	return &d.stripes[rr.StripeOf(x, len(d.stripes))]
}

// stripeVar returns (materializing if needed) variable x's stripe and
// sharded shadow state. Caller must hold x's stripe lock or full
// exclusion.
func (d *Detector) stripeVar(x uint64) (*stripeState, *shardedVar) {
	s := d.stripeOf(x)
	sv := s.vars[x]
	if sv == nil {
		sv = &shardedVar{lastR: -1, lastW: -1}
		s.vars[x] = sv
	}
	return s, sv
}

// ThreadsMaterialized implements rr.ShardedTool: the number of thread
// states created so far. The sharded Monitor uses it as the watermark
// below which an access's thread lookup is guaranteed read-only.
func (d *Detector) ThreadsMaterialized() int { return len(d.threads) }

// StripeRaces implements rr.ShardedTool: the races recorded on stripe s
// in detection order. The returned slice is the stripe's backing store;
// callers must hold stripe lock s (or full exclusion) and must not
// retain it across unlocks.
func (d *Detector) StripeRaces(s int) []rr.Report {
	if d.stripes == nil {
		if s == 0 {
			return d.races
		}
		return nil
	}
	if s < 0 || s >= len(d.stripes) {
		panic(fmt.Sprintf("core: StripeRaces(%d) with %d stripes", s, len(d.stripes)))
	}
	return d.stripes[s].races
}

var _ rr.ShardedTool = (*Detector)(nil)
