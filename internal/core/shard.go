package core

import (
	"fmt"

	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
)

// This file holds the detector's sharded storage layout, the back half
// of the lock-striped ingestion path (see rr/stripe.go for the locking
// contract and the legality argument). The Monitor owns the stripe
// locks; the detector owns per-stripe variable tables so that the state
// an access handler mutates — the variable's shadow word, the stripe's
// access counters, the stripe's race list — is confined to the stripe
// whose lock the caller holds. Thread, lock and volatile clocks stay on
// the detector: the access path only reads them, and every event that
// writes them is delivered under full exclusion.
//
// Storage mirrors the serial struct-of-arrays layout (DESIGN.md §13):
// each stripe owns an open-addressing table whose parallel arrays hold
// the hot epoch pair next to the key, so the same-epoch fast path costs
// one probe and one epoch compare — no map header chase, no per-variable
// heap node. Cold per-variable state (detailed-mode indices, provenance
// records, enriched reports) lives in a side slice reached through a
// per-slot index, materialized only for variables that need it.

// meta bits of a stripeTab slot.
const (
	slotUsed    = 1 << 0 // key/w/r are live
	slotFlagged = 1 << 1 // a race was recorded on this variable
)

// stripeTab is one stripe's variable table: open addressing with linear
// probing over power-of-two parallel arrays. Variables are never
// deleted (compaction rewrites values, not keys), so probing needs no
// tombstones. Growth doubles at 3/4 load.
type stripeTab struct {
	keys    []uint64
	meta    []uint8
	w, r    []vc.Epoch
	coldIdx []int32 // slot -> cold index, -1 if none; junk for unused slots
	cold    []varCold
	mask    uint64
	used    int
}

// varCold is the rarely-touched per-variable state of the sharded
// layout: detailed-report access indices and, when the flight recorder
// is on, the provenance record and the enriched report. Stripe-confined
// like the rest of the table.
type varCold struct {
	lastR, lastW int
	prov         *provVarRec
	detail       *rr.DetailedReport
}

// provRec returns (materializing if needed) the cold entry's provenance
// last-access record.
func (c *varCold) provRec() *provVarRec {
	if c.prov == nil {
		c.prov = &provVarRec{w: provAccess{idx: -1}, r: provAccess{idx: -1}}
	}
	return c.prov
}

// mix64 is the 64-bit murmur finalizer, the probe hash of stripeTab.
// Raw variable ids are often sequential, which linear probing punishes;
// the finalizer's avalanche spreads them across the table. sampleHash
// (sampling.go) uses the top half of the same mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// lookup returns variable x's slot, inserting a fresh history (R = W =
// ⊥e, unflagged) if the table does not have one.
func (tb *stripeTab) lookup(x uint64) int {
	if tb.mask != 0 {
		h := mix64(x) & tb.mask
		for tb.meta[h]&slotUsed != 0 {
			if tb.keys[h] == x {
				return int(h)
			}
			h = (h + 1) & tb.mask
		}
	}
	return tb.insert(x)
}

// find returns variable x's slot, or -1 without inserting.
func (tb *stripeTab) find(x uint64) int {
	if tb.mask == 0 {
		return -1
	}
	h := mix64(x) & tb.mask
	for tb.meta[h]&slotUsed != 0 {
		if tb.keys[h] == x {
			return int(h)
		}
		h = (h + 1) & tb.mask
	}
	return -1
}

func (tb *stripeTab) insert(x uint64) int {
	if tb.mask == 0 || tb.used*4 >= len(tb.keys)*3 {
		tb.grow()
	}
	h := mix64(x) & tb.mask
	for tb.meta[h]&slotUsed != 0 {
		h = (h + 1) & tb.mask
	}
	tb.keys[h] = x
	tb.meta[h] = slotUsed
	tb.coldIdx[h] = -1
	tb.used++
	return int(h)
}

// grow rehashes into arrays of double the size (64 slots to start). The
// cold slice is carried by index, so only the slot arrays move. Fresh
// slots are zero: W = R = ⊥e is exactly a fresh variable's history.
func (tb *stripeTab) grow() {
	n := 2 * len(tb.keys)
	if n == 0 {
		n = 64
	}
	old := *tb
	tb.keys = make([]uint64, n)
	tb.meta = make([]uint8, n)
	tb.w = make([]vc.Epoch, n)
	tb.r = make([]vc.Epoch, n)
	tb.coldIdx = make([]int32, n)
	tb.mask = uint64(n - 1)
	for i := range old.keys {
		if old.meta[i]&slotUsed == 0 {
			continue
		}
		h := mix64(old.keys[i]) & tb.mask
		for tb.meta[h]&slotUsed != 0 {
			h = (h + 1) & tb.mask
		}
		tb.keys[h] = old.keys[i]
		tb.meta[h] = old.meta[i]
		tb.w[h] = old.w[i]
		tb.r[h] = old.r[i]
		tb.coldIdx[h] = old.coldIdx[i]
	}
}

// coldOf returns slot's cold entry, or nil if none was materialized.
func (tb *stripeTab) coldOf(slot int) *varCold {
	if ci := tb.coldIdx[slot]; ci >= 0 {
		return &tb.cold[ci]
	}
	return nil
}

// coldFor returns (materializing if needed) slot's cold entry.
func (tb *stripeTab) coldFor(slot int) *varCold {
	if ci := tb.coldIdx[slot]; ci >= 0 {
		return &tb.cold[ci]
	}
	tb.cold = append(tb.cold, varCold{lastR: -1, lastW: -1})
	tb.coldIdx[slot] = int32(len(tb.cold) - 1)
	return &tb.cold[len(tb.cold)-1]
}

// bytes is the table's contribution to the shadow footprint: the
// parallel slot arrays (29 bytes per slot), the cold entries, and the
// provenance records hanging off them.
func (tb *stripeTab) bytes() int64 {
	b := int64(cap(tb.keys))*8 + int64(cap(tb.meta)) +
		int64(cap(tb.w)+cap(tb.r))*8 + int64(cap(tb.coldIdx))*4 +
		int64(cap(tb.cold))*48
	for i := range tb.cold {
		if tb.cold[i].prov != nil {
			b += provVarRecBytes
		}
	}
	return b
}

// stripeState is one stripe's share of the analysis state: the variable
// table, the read-VC store backing its read-shared variables, the
// access-path counters those variables' accesses are counted into, and
// the races detected on them. Everything in it is guarded by the
// caller-held stripe lock.
type stripeState struct {
	tab    stripeTab
	shared rvcStore
	st     rr.Stats
	races  []rr.Report
}

// readSharded is the sharded read access path: everything it touches —
// the slot, the stripe's store, counters and race list — is confined to
// x's stripe. Thread state is read-only here (the sharded Monitor's
// watermark guarantees the thread is materialized).
func (d *Detector) readSharded(i int, tid int32, x uint64, countEvent bool) {
	s := d.stripeOf(x)
	st := &s.st
	st.Reads++
	if countEvent {
		st.Events++
	}
	if d.sampleThr != sampleFull && sampleHash(x) >= d.sampleThr {
		st.SampledOut++
		return
	}
	slot := s.tab.lookup(x)
	if int(tid) >= len(d.threads) {
		d.thread(tid)
	}
	// [FT READ SAME EPOCH], sharded: one probe, one compare.
	if s.tab.r[slot] == d.threads[tid].epoch {
		st.ReadSameEpoch++
		return
	}
	d.readSlow(i, tid, x, &s.tab.w[slot], &s.tab.r[slot], &s.shared, st, s, slot)
}

// writeSharded is readSharded's write-side twin.
func (d *Detector) writeSharded(i int, tid int32, x uint64, countEvent bool) {
	s := d.stripeOf(x)
	st := &s.st
	st.Writes++
	if countEvent {
		st.Events++
	}
	if d.sampleThr != sampleFull && sampleHash(x) >= d.sampleThr {
		st.SampledOut++
		return
	}
	slot := s.tab.lookup(x)
	if int(tid) >= len(d.threads) {
		d.thread(tid)
	}
	if s.tab.w[slot] == d.threads[tid].epoch {
		st.WriteSameEpoch++
		return
	}
	d.writeSlow(i, tid, x, &s.tab.w[slot], &s.tab.r[slot], &s.shared, st, s, slot)
}

// EnableSharding switches the detector's access-path storage to n
// per-stripe variable tables, implementing rr.ShardedTool. n < 2 keeps
// the serial dense-table layout. It must be called on a fresh detector:
// remapping already-populated shadow state across stripes is not
// supported. The shadow-memory budget is incompatible with sharding —
// its coarse fallback remaps variable ids, which would silently move a
// variable to a different stripe than the one the caller locked.
func (d *Detector) EnableSharding(n int) {
	if n < 2 {
		return
	}
	if d.budget > 0 {
		panic("core: EnableSharding is incompatible with a memory budget")
	}
	if d.st.Events != 0 || len(d.r) > 0 || len(d.threads) > 0 {
		panic("core: EnableSharding called after events were handled")
	}
	d.stripes = make([]stripeState, n)
}

// stripeOf returns the stripe owning variable x. Must agree with the
// lock the caller chose, so it uses the shared rr.StripeOf mapping.
func (d *Detector) stripeOf(x uint64) *stripeState {
	return &d.stripes[rr.StripeOf(x, len(d.stripes))]
}

// ThreadsMaterialized implements rr.ShardedTool: the number of thread
// states created so far. The sharded Monitor uses it as the watermark
// below which an access's thread lookup is guaranteed read-only.
func (d *Detector) ThreadsMaterialized() int { return len(d.threads) }

// StripeRaces implements rr.ShardedTool: the races recorded on stripe s
// in detection order. The returned slice is the stripe's backing store;
// callers must hold stripe lock s (or full exclusion) and must not
// retain it across unlocks.
func (d *Detector) StripeRaces(s int) []rr.Report {
	if d.stripes == nil {
		if s == 0 {
			return d.races
		}
		return nil
	}
	if s < 0 || s >= len(d.stripes) {
		panic(fmt.Sprintf("core: StripeRaces(%d) with %d stripes", s, len(d.stripes)))
	}
	return d.stripes[s].races
}

var _ rr.ShardedTool = (*Detector)(nil)
