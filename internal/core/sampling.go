package core

// This file implements the detector's sampling tier — the degraded
// fidelity mode behind the racedetectd fidelity ladder (full →
// sampled(p) → coarse → shed), after the sampled race detectors of
// PAPERS.md ("Dynamic Race Detection With O(1) Samples", LiteRace,
// Pacer): analyze a deterministic p-fraction of the variable space at
// full FastTrack fidelity and spend O(1) on every other access.
//
// Mechanism. Each variable id is hashed once (the same MurmurHash3
// finalizer rr.StripeOf mixes with) and compared against a threshold
// thr = p·2³²: the variable is in the sampled set iff hash(x) < thr.
// Accesses to unsampled variables take the skip path at the very top of
// read/write — before the memory budget, before the variable table —
// so they never materialize shadow state (a downgraded session's shadow
// footprint stops growing immediately) and never touch a vector clock.
// The skip path still performs the cheap timestamping the fidelity
// report needs: the access is counted into Events/Reads/Writes and
// SampledOut, from which Stats.DetectionProbability derives. The
// accessing thread's clocks are untouched — they are maintained
// exclusively by synchronization events, which are never sampled, so
// the happens-before frontier stays exact at every rate.
//
// Why dynamic rate changes are safe (the rr.Sampled contract):
//
//   - The decision is hash(x) < thr — a pure function of the id and the
//     current threshold. Raising p only adds variables to the sampled
//     set (monotone), and no decision ever consults shadow state.
//   - The skip path mutates nothing but counters, so a variable that
//     drops out of the sampled set keeps its shadow state frozen. If it
//     is later re-admitted, its state is merely stale: epochs recorded
//     at or before the moment it froze. Every FastTrack race check
//     (epoch-not-ordered-before-C_t) on stale state that fires corresponds to a genuinely
//     unordered pair of accesses that both actually occurred — the
//     paper's Theorem 1 precision argument does not depend on the
//     history being complete, only on every recorded epoch being real.
//     Hence no rate schedule can introduce a false positive: races
//     reported under sampling are a subset (per variable) of the full
//     run's, which the property tests assert trace-by-trace.
//   - At p = 1.0 the threshold is 2³², no 32-bit hash reaches it, the
//     skip path never fires, and the run is byte-identical to one that
//     never enabled sampling (also asserted).
//
// Sharded mode: the threshold is written only under the Monitor's full
// write lock (the same exclusion as sync events) and read on the access
// path under the stripe discipline, so it needs no atomics; the skip
// path's counters live on the accessed variable's stripe.

// sampleFull is the threshold meaning "every variable sampled": no
// 32-bit hash value reaches 1<<32, so the skip path is unreachable and
// full fidelity is exactly the pre-sampling behavior.
const sampleFull = uint64(1) << 32

// sampleHash mixes a variable id to a uniform 32-bit value with the
// finalizer of MurmurHash3 (mix64, shared with the stripe tables) — the
// same mixer as rr.StripeOf, but keeping the high word so stripe choice
// and sampling verdict stay independent.
func sampleHash(x uint64) uint64 { return mix64(x) >> 32 }

// SetSamplingRate implements rr.Sampled: the fraction of the variable
// space analyzed at full fidelity. p >= 1 restores full fidelity; p <= 0
// sheds every access; callers must hold the same exclusion as a
// synchronization event (serial detectors and tests: any; under a
// sharded Monitor: its full write lock).
func (d *Detector) SetSamplingRate(p float64) {
	switch {
	case p >= 1:
		d.sampleThr = sampleFull
	case p <= 0:
		d.sampleThr = 0
	default:
		d.sampleThr = uint64(p * float64(sampleFull))
	}
}

// SamplingRate implements rr.Sampled.
func (d *Detector) SamplingRate() float64 {
	return float64(d.sampleThr) / float64(sampleFull)
}

// sampledOut reports whether an access to variable x must take the skip
// path under the current rate. Hot-path shape: one compare at full
// fidelity (the common case), hash + compare otherwise.
func (d *Detector) sampledOut(x uint64) bool {
	thr := d.sampleThr
	return thr != sampleFull && sampleHash(x) >= thr
}

// skipAccess is the O(1) path for an access outside the sampled set:
// count it (into the variable's stripe in sharded mode) and stop before
// any shadow state exists or is read. isRead selects the Reads/Writes
// counter; countEvent mirrors the read/write handlers' Tool-vs-Prefilter
// distinction.
func (d *Detector) skipAccess(x uint64, isRead, countEvent bool) {
	st := &d.st
	if d.stripes != nil {
		st = &d.stripeOf(x).st
	}
	if isRead {
		st.Reads++
	} else {
		st.Writes++
	}
	if countEvent {
		st.Events++
	}
	st.SampledOut++
}
