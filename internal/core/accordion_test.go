package core

import (
	"testing"

	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// waveTrace forks `workers` threads that each write their own variables
// plus one shared (fork/join ordered) variable, then joins them all.
func waveTrace(workers int) trace.Trace {
	var tr trace.Trace
	for w := 1; w <= workers; w++ {
		tr = append(tr, trace.ForkOf(0, int32(w)))
	}
	for w := 1; w <= workers; w++ {
		tid := int32(w)
		for j := 0; j < 4; j++ {
			tr = append(tr, trace.Wr(tid, uint64(w*10+j)), trace.Rd(tid, uint64(w*10+j)))
		}
	}
	for w := 1; w <= workers; w++ {
		tr = append(tr, trace.JoinOf(0, int32(w)))
	}
	return tr
}

func TestCompactReclaimsJoinedWave(t *testing.T) {
	d := New(8, 64)
	tr := waveTrace(6)
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	before := d.Stats().ShadowBytes
	dead := []int32{1, 2, 3, 4, 5, 6}
	st := d.Compact(dead)
	if st.DroppedThreads != 6 {
		t.Errorf("DroppedThreads = %d, want 6 (%+v)", st.DroppedThreads, st)
	}
	if st.RetainedThreads != 0 {
		t.Errorf("RetainedThreads = %d, want 0", st.RetainedThreads)
	}
	if st.ClearedWriteEpochs == 0 || st.ClearedReadRefs == 0 {
		t.Errorf("nothing cleared: %+v", st)
	}
	after := d.Stats().ShadowBytes
	if after >= before {
		t.Errorf("ShadowBytes %d -> %d, want reduction", before, after)
	}
	if err := d.CheckWellFormed(); err != nil {
		t.Errorf("state ill-formed after compaction: %v", err)
	}
	// The main thread continues; accesses to the reclaimed variables are
	// race-free (join-ordered) and must stay silent.
	base := len(tr)
	for w := 1; w <= 6; w++ {
		for j := 0; j < 4; j++ {
			d.HandleEvent(base, trace.Wr(0, uint64(w*10+j)))
			base++
		}
	}
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarms after compaction: %v", races)
	}
}

func TestCompactRetainsUnjoinedReferences(t *testing.T) {
	d := New(4, 8)
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(1, 5),
		trace.JoinOf(0, 1), // thread 0 knows about the write; thread 2 doesn't
	}
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	st := d.Compact([]int32{1})
	if st.DroppedThreads != 0 || st.RetainedThreads != 1 {
		t.Errorf("stats = %+v, want retained", st)
	}
	// The write epoch must survive: thread 2 can still race with it.
	d.HandleEvent(10, trace.Wr(2, 5))
	races := d.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want the race against the dead thread's write", races)
	}
	if races[0].PrevTid != 1 {
		t.Errorf("PrevTid = %d, want 1", races[0].PrevTid)
	}
}

func TestCompactReclaimsAfterAllLiveCatchUp(t *testing.T) {
	d := New(4, 8)
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Wr(1, 5),
		trace.JoinOf(0, 1),
		// Thread 2 catches up through a lock handoff from thread 0.
		trace.Acq(0, 9),
		trace.Rel(0, 9),
		trace.Acq(2, 9),
		trace.Rel(2, 9),
	}
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	st := d.Compact([]int32{1})
	if st.DroppedThreads != 1 {
		t.Errorf("stats = %+v, want thread 1 dropped", st)
	}
	// Now ordered for everyone: no race.
	d.HandleEvent(10, trace.Wr(2, 5))
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarm after full catch-up: %v", races)
	}
}

func TestCompactReadSharedDemotion(t *testing.T) {
	d := New(4, 8)
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.ForkOf(0, 2),
		trace.Rd(1, 5),
		trace.Rd(2, 5), // read-shared: R_5 is a vector clock
		trace.JoinOf(0, 1),
		trace.JoinOf(0, 2),
	}
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	st := d.Compact([]int32{1, 2})
	if st.ClearedReadRefs != 2 {
		t.Errorf("ClearedReadRefs = %d, want 2", st.ClearedReadRefs)
	}
	// With every recorded reader reclaimed the variable returns to epoch
	// mode with R = bottom.
	e, rvc, shared := d.ReadStateOf(5)
	if shared || rvc != nil || e != vc.Bottom {
		t.Errorf("read state = (%v, %v, shared=%v), want bottom epoch", e, rvc, shared)
	}
	if err := d.CheckWellFormed(); err != nil {
		t.Errorf("ill-formed: %v", err)
	}
}

func TestCompactNoDeadThreadsIsNoop(t *testing.T) {
	d := New(2, 2)
	d.HandleEvent(0, trace.Wr(0, 1))
	if st := d.Compact(nil); st != (CompactStats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
	if st := d.Compact([]int32{42}); st != (CompactStats{}) {
		t.Errorf("unknown thread id: stats = %+v, want zero", st)
	}
}

func TestCompactLockClocks(t *testing.T) {
	d := New(4, 8)
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(1, 9),
		trace.Rel(1, 9), // L_9 references thread 1
		trace.JoinOf(0, 1),
	}
	for i, e := range tr {
		d.HandleEvent(i, e)
	}
	// Thread 0 joined thread 1, so L_9's component for thread 1 is
	// dominated and reclaimable.
	st := d.Compact([]int32{1})
	if st.DroppedThreads != 1 {
		t.Errorf("stats = %+v, want thread 1 dropped", st)
	}
	// Lock still functions.
	d.HandleEvent(10, trace.Acq(0, 9))
	d.HandleEvent(11, trace.Wr(0, 5))
	d.HandleEvent(12, trace.Rel(0, 9))
	if races := d.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
}
