package core

import (
	"fmt"

	"fasttrack/internal/vc"
)

// CheckWellFormed verifies Definition 1 of the paper's Appendix A on the
// current analysis state σ = (C, L, R, W):
//
//  1. for all u ≠ t: C_u(t) < C_t(t) — a thread's own clock entry is
//     strictly ahead of every other thread's view of it;
//  2. for all locks m, threads t: L_m(t) < C_t(t);
//  3. for all variables x, threads t: R_x(t) ≤ C_t(t);
//  4. for all variables x, threads t: W_x(t) ≤ C_t(t).
//
// Lemma 1 states σ0 is well-formed and Lemma 2 that every transition
// preserves well-formedness; the soundness proof (Theorem 2) rests on
// these invariants. The property tests drive random feasible traces
// through the detector and call this after every step. It returns the
// first violation found, or nil.
//
// An epoch is interpreted as the vector clock λu. if u = t then c else 0
// (Appendix A), so conditions 3 and 4 reduce to a single component check
// for epoch-mode variables.
func (d *Detector) CheckWellFormed() error {
	// Condition 1. Threads dropped by Compact (nil clock) are no longer
	// part of the analysis state and are skipped, as are threads whose
	// scalar clock has pinned at vc.MaxClock: inc_t saturates there (see
	// vc.Inc), so the strict inequalities 1 and 2 degrade to non-strict
	// ones by design — the precision loss Stats.ClockSaturations counts.
	for u := range d.threads {
		cu := d.threads[u].c
		if cu == nil {
			continue
		}
		for t := range d.threads {
			if t == u || d.threads[t].c == nil || d.threads[t].c.Get(vc.Tid(t)) >= vc.MaxClock {
				continue
			}
			if cu.Get(vc.Tid(t)) >= d.threads[t].c.Get(vc.Tid(t)) {
				return fmt.Errorf("C_%d(%d) = %d >= C_%d(%d) = %d",
					u, t, cu.Get(vc.Tid(t)), t, t, d.threads[t].c.Get(vc.Tid(t)))
			}
		}
	}
	// Condition 2 (locks and volatiles both instantiate L).
	check2 := func(kind string, id uint64, l vc.VC) error {
		for t := range d.threads {
			if d.threads[t].c == nil || d.threads[t].c.Get(vc.Tid(t)) >= vc.MaxClock {
				continue
			}
			if l.Get(vc.Tid(t)) >= d.threads[t].c.Get(vc.Tid(t)) {
				return fmt.Errorf("L_%s%d(%d) = %d >= C_%d(%d) = %d",
					kind, id, t, l.Get(vc.Tid(t)), t, t, d.threads[t].c.Get(vc.Tid(t)))
			}
		}
		return nil
	}
	var lerr error
	d.locks.eachRef(func(m uint64, l *vc.VC) {
		if lerr == nil {
			lerr = check2("m", m, *l)
		}
	})
	d.vols.eachRef(func(v uint64, l *vc.VC) {
		if lerr == nil {
			lerr = check2("v", v, *l)
		}
	})
	if lerr != nil {
		return lerr
	}
	// Channel snapshots are release clocks too (captured before the
	// sender/receiver/closer incremented), so condition 2 extends to them.
	for ch, cs := range d.chans {
		for _, ring := range [][]chanSlot{cs.sendRing, cs.recvRing} {
			for i := range ring {
				if ring[i].seq == 0 || ring[i].clk == nil {
					continue
				}
				if err := check2("c", ch, ring[i].clk); err != nil {
					return err
				}
			}
		}
		for _, acc := range []vc.VC{cs.sendAcc, cs.recvAcc, cs.closeClk} {
			if acc == nil {
				continue
			}
			if err := check2("c", ch, acc); err != nil {
				return err
			}
		}
	}
	// Conditions 3 and 4.
	checkEpoch := func(what string, x uint64, e vc.Epoch) error {
		t := e.Tid()
		if int(t) >= len(d.threads) || d.threads[t].c == nil {
			if e != vc.Bottom {
				return fmt.Errorf("%s_%d = %v refers to unknown or dropped thread", what, x, e)
			}
			return nil
		}
		if e.Clock() > d.threads[t].c.Get(t) {
			return fmt.Errorf("%s_%d = %v > C_%d(%d) = %d",
				what, x, e, t, t, d.threads[t].c.Get(t))
		}
		return nil
	}
	checkVar := func(x uint64, w, r vc.Epoch, rs *rvcStore) error {
		if err := checkEpoch("W", x, w); err != nil {
			return err
		}
		if isShared(r) {
			rvc := rs.vcAt(sharedIdx(r))
			for t := range d.threads {
				if d.threads[t].c == nil {
					if rvc.Get(vc.Tid(t)) > 0 {
						return fmt.Errorf("R_%d(%d) references dropped thread", x, t)
					}
					continue
				}
				if rvc.Get(vc.Tid(t)) > d.threads[t].c.Get(vc.Tid(t)) {
					return fmt.Errorf("R_%d(%d) = %d > C_%d(%d) = %d",
						x, t, rvc.Get(vc.Tid(t)), t, t, d.threads[t].c.Get(vc.Tid(t)))
				}
			}
			return nil
		}
		return checkEpoch("R", x, r)
	}
	for x := range d.r {
		if err := checkVar(uint64(x), d.w[x], d.r[x], &d.shared); err != nil {
			return err
		}
	}
	// Sharded layout: the same conditions over every stripe's table.
	for i := range d.stripes {
		s := &d.stripes[i]
		for slot := range s.tab.keys {
			if s.tab.meta[slot]&slotUsed == 0 {
				continue
			}
			if err := checkVar(s.tab.keys[slot], s.tab.w[slot], s.tab.r[slot], &s.shared); err != nil {
				return err
			}
		}
	}
	return nil
}
