package core

import (
	"fasttrack/internal/rr"
	"fasttrack/internal/vc"
)

// This file implements the detector's shadow-memory budget: an optional
// byte ceiling under which FastTrack degrades precision instead of
// growing without bound on adversarial workloads. The degradation
// ladder has two rungs, both accounted in Stats:
//
//  1. Squeeze: every read-shared vector clock is demoted back to an
//     epoch — the most advanced reader survives, the rest of the read
//     history is forgotten (the accordion-clock idea of Sections 4/6
//     applied under pressure rather than at a write). Races against the
//     forgotten readers may be missed; nothing unsound is reported,
//     because the kept component already satisfied R_x(t) <= C_t(t)
//     (the Appendix A invariants are preserved).
//  2. Coarse fallback: if squeezing is not enough, locations not yet
//     shadowed are folded rr.FieldsPerObject-to-one into per-object
//     shadow locations, as under Coarse granularity. This bounds new
//     growth at the cost of possible false sharing on new locations;
//     already-shadowed locations keep their precise state.
//
// The footprint is re-checked every budgetCheckInterval accesses, so
// between checks the footprint can overshoot by the shadow cost of that
// many fresh locations (tens of kilobytes), never unboundedly.

// budgetCheckInterval is the number of accesses between footprint
// checks.
const budgetCheckInterval = 1024

// SetMemoryBudget caps the detector's shadow footprint at the given
// number of bytes (0 disables the budget). The cap is enforced by
// degrading precision, never by aborting; see Stats.MemSqueezes and
// Stats.MemCoarse for how often each rung fired.
func (d *Detector) SetMemoryBudget(bytes int64) {
	if bytes > 0 && d.stripes != nil {
		// The coarse fallback remaps variable ids, which would move
		// variables across stripes behind the stripe locks' back.
		panic("core: memory budget is incompatible with sharding")
	}
	d.budget = bytes
}

// budgetAccess remaps an accessed variable under the budget's coarse
// fallback and periodically re-checks the footprint. Called from the
// read/write handlers only when a budget is set.
func (d *Detector) budgetAccess(x uint64) uint64 {
	if (d.st.Reads+d.st.Writes)%budgetCheckInterval == 0 {
		d.enforceBudget()
	}
	if mapped := d.budgetVar(x); mapped != x {
		d.st.MemCoarse++
		return mapped
	}
	return x
}

// budgetVar applies the coarse-fallback remap to a variable id without
// counting anything.
func (d *Detector) budgetVar(x uint64) uint64 {
	if d.coarseFrom == 0 || x < d.coarseFrom {
		return x
	}
	return d.coarseFrom + (x-d.coarseFrom)/rr.FieldsPerObject
}

// enforceBudget walks the degradation ladder until the footprint is
// back under the budget or both rungs are exhausted.
func (d *Detector) enforceBudget() {
	if d.footprint() <= d.budget {
		return
	}
	// Rung 1: squeeze read vector clocks back to epochs and shed slack.
	// The store slots are discarded, not released, and the slab repacked:
	// the point is to give the memory back to the allocator, not keep it
	// pooled.
	for x := range d.r {
		rx := d.r[x]
		if !isShared(rx) {
			continue
		}
		idx := sharedIdx(rx)
		d.r[x] = squeezeEpoch(d.shared.vcAt(idx))
		d.shared.discard(idx)
		d.st.MemSqueezes++
	}
	d.shared.compactSlab()
	for i := range d.threads {
		if d.threads[i].c != nil {
			d.threads[i].c = d.threads[i].c.Trim()
		}
	}
	d.pool.Drain()
	if d.footprint() <= d.budget {
		return
	}
	// Rung 2: fold locations not yet shadowed into coarse shadow
	// locations. Locations below coarseFrom keep their precise state.
	if d.coarseFrom == 0 {
		d.coarseFrom = uint64(len(d.r))
		if d.coarseFrom == 0 {
			d.coarseFrom = 1
		}
	}
}

// squeezeEpoch demotes a read vector clock to the epoch of its most
// advanced component (⊥e if the clock is empty).
func squeezeEpoch(rvc vc.VC) vc.Epoch {
	var (
		bt vc.Tid
		bc vc.Clock
	)
	for t, c := range rvc {
		if c > bc {
			bc, bt = c, vc.Tid(t)
		}
	}
	if bc == 0 {
		return vc.Bottom
	}
	return vc.MakeEpoch(bt, bc)
}
