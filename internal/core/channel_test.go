package core

import (
	"testing"

	"fasttrack/trace"
)

// TestChanUnbufferedOrders checks the rendezvous edge: a write before a
// send on a capacity-0 channel happens before an access after the
// matching receive.
func TestChanUnbufferedOrders(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.Wr(0, x),
		trace.ChSend(0, ch, 0),
		trace.ChRecv(1, ch, 0),
		trace.Wr(1, x),
	})
	wantRaces(t, d, 0)
	if err := d.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

// TestChanUnbufferedReverseEdge checks the receive-side release: on a
// rendezvous channel the receiver's history is ordered before a later
// send completing (send cannot complete until a receiver engages).
func TestChanUnbufferedReverseEdge(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.ChSend(1, ch, 0),
		trace.Wr(0, x),
		trace.ChRecv(0, ch, 0),
		trace.ChSend(1, ch, 0), // joins recvAcc: recv 1 happened before
		trace.Wr(1, x),
	})
	wantRaces(t, d, 0)
}

// TestChanBufferedPublish checks the k-th-send → k-th-recv edge on a
// buffered channel: a write before send k is visible to the thread that
// performs receive k.
func TestChanBufferedPublish(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.Wr(0, x),
		trace.ChSend(0, ch, 4),
		trace.ChRecv(1, ch, 4),
		trace.Wr(1, x),
	})
	wantRaces(t, d, 0)
	if err := d.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

// TestChanBufferedNoReverseEdgeUnderCapacity is the precision half of
// the capacity-aware semantics: on a capacity-2 channel, two sends do
// not wait for any receive, so the receiver's prior write is NOT
// ordered before the sender's later write — that is a race the old
// conservative (lock-like) encoding missed.
func TestChanBufferedNoReverseEdgeUnderCapacity(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.ChSend(0, ch, 2),
		trace.ChRecv(1, ch, 2),
		trace.Wr(1, x),
		trace.ChSend(0, ch, 2), // send 2 ≤ capacity: no edge from recv 1
		trace.Wr(0, x),
	})
	wantRaces(t, d, 1)
}

// TestChanBufferedReverseEdgeAtCapacity checks the (k-C)-th-recv →
// k-th-send edge: send k on a capacity-C channel can only proceed once
// receive k-C freed a slot, so the receiver's history is ordered before
// the sender's subsequent accesses.
func TestChanBufferedReverseEdgeAtCapacity(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.ChSend(0, ch, 1),
		trace.Wr(1, x),         // before the receive, so recv 1's clock covers it
		trace.ChRecv(1, ch, 1),
		trace.ChSend(0, ch, 1), // send 2, cap 1: joins recv 1's clock
		trace.Wr(0, x),
	})
	wantRaces(t, d, 0)
	if err := d.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

// TestChanCloseOrdersDrainingRecv checks close → recv-observing-closed:
// a receive that drains past the values sent before close observes the
// closed state, so the closer's prior writes are ordered before it.
func TestChanCloseOrdersDrainingRecv(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.ChSend(0, ch, 4), // one buffered value
		trace.Wr(0, x),
		trace.ChClose(0, ch, 4),
		trace.ChRecv(1, ch, 4), // recv 1 ≤ sendsAtClose: only send 1's clock
		trace.ChRecv(1, ch, 4), // recv 2 > sendsAtClose: observes closed, joins close clock
		trace.Wr(1, x),
	})
	wantRaces(t, d, 0)
}

// TestChanRecvBeforeCloseNotOrdered is the precision complement: a
// receive of a value sent BEFORE the close does not observe the closed
// state, so the closer's writes between that send and the close are not
// ordered before the receiver's accesses.
func TestChanRecvBeforeCloseNotOrdered(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.ChSend(0, ch, 4),
		trace.Wr(0, x),          // after send 1, before close
		trace.ChClose(0, ch, 4), // close clock includes the write
		trace.ChRecv(1, ch, 4),  // recv 1 ≤ sendsAtClose: only send 1's clock
		trace.Wr(1, x),          // races with thread 0's write
	})
	wantRaces(t, d, 1)
}

// TestChanUnbufferedCloseRecv checks close → recv on a rendezvous
// channel (every receive after close observes closed).
func TestChanUnbufferedCloseRecv(t *testing.T) {
	const x, ch = 0, 1
	d := run(t, trace.Trace{
		trace.Wr(0, x),
		trace.ChClose(0, ch, 0),
		trace.ChRecv(1, ch, 0),
		trace.Wr(1, x),
	})
	wantRaces(t, d, 0)
}

// TestChanCapacityMismatchIgnored: the capacity is fixed by the first
// event naming the channel; a disagreeing later value must not
// re-materialize state.
func TestChanCapacityMismatchIgnored(t *testing.T) {
	const ch = 1
	d := run(t, trace.Trace{
		trace.ChSend(0, ch, 3),
		trace.ChRecv(1, ch, 7), // disagrees; treated as the same cap-3 channel
	})
	if cs := d.chans[ch]; cs.capacity != 3 {
		t.Fatalf("capacity = %d, want 3 (fixed by first event)", cs.capacity)
	}
	sends, recvs, closed := d.ChanStateOf(ch)
	if sends != 1 || recvs != 1 || closed {
		t.Fatalf("state = (%d,%d,%v), want (1,1,false)", sends, recvs, closed)
	}
}

// TestChanRingEviction floods a buffered channel with more outstanding
// sends than its ring holds, then checks the degradation contract: the
// publish edge survives via the accumulator (no false positive).
func TestChanRingEviction(t *testing.T) {
	const x, ch = 0, 1
	tr := trace.Trace{trace.Wr(0, x)}
	// Capacity large enough that sends never wait on receives; ring is
	// min(cap+8, 1024) so > 1100 outstanding sends force evictions.
	const capC = 1024
	for i := 0; i < 1200; i++ {
		tr = append(tr, trace.ChSend(0, ch, capC))
	}
	tr = append(tr, trace.ChRecv(1, ch, capC), trace.Wr(1, x))
	d := run(t, tr)
	// Receive 1's exact slot was evicted; the accumulator fallback must
	// still order thread 0's write before thread 1's.
	wantRaces(t, d, 0)
	if err := d.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}

// TestChanStatsAccounting checks the Stats plumbing: channel events are
// counted as syncs and in the per-kind channel counter.
func TestChanStatsAccounting(t *testing.T) {
	const ch = 1
	d := run(t, trace.Trace{
		trace.ChSend(0, ch, 0),
		trace.ChRecv(1, ch, 0),
		trace.ChClose(0, ch, 0),
	})
	st := d.Stats()
	if st.Channels != 3 {
		t.Fatalf("Channels = %d, want 3", st.Channels)
	}
	if st.Syncs != st.SyncKindSum() {
		t.Fatalf("Syncs = %d, SyncKindSum = %d", st.Syncs, st.SyncKindSum())
	}
}

// TestChanShardedMatchesSerial replays a mixed channel workload through
// a serial and a sharded detector and requires identical warnings.
func TestChanShardedMatchesSerial(t *testing.T) {
	const ch, ch2 = 100, 101
	tr := trace.Trace{
		trace.Wr(0, 0),
		trace.ChSend(0, ch, 0),
		trace.ChRecv(1, ch, 0),
		trace.Wr(1, 0),
		trace.Wr(1, 1),
		trace.ChSend(1, ch2, 2),
		trace.ChRecv(2, ch2, 2),
		trace.Wr(2, 1),
		trace.Wr(2, 2),
		trace.ChSend(2, ch2, 2), // send 2 ≤ cap: no reverse edge
		trace.Wr(0, 2),          // races with thread 2's write
	}
	serial := run(t, tr)
	sharded := New(4, 16)
	sharded.EnableSharding(4)
	for i, e := range tr {
		sharded.HandleEvent(i, e)
	}
	a, b := serial.Races(), sharded.Races()
	if len(a) != len(b) {
		t.Fatalf("serial %d races, sharded %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Var != b[i].Var {
			t.Errorf("race %d: serial var %d, sharded var %d", i, a[i].Var, b[i].Var)
		}
	}
	wantRaces(t, serial, 1)
}

// TestChanFootprintCounted checks that channel state shows up in the
// detector's footprint estimate.
func TestChanFootprintCounted(t *testing.T) {
	d := New(2, 2)
	base := d.footprint()
	d.HandleEvent(0, trace.ChSend(0, 1, 64))
	if got := d.footprint(); got <= base {
		t.Fatalf("footprint %d after channel event, want > %d", got, base)
	}
}
