package core

import (
	"testing"

	"fasttrack/internal/vc"
	"fasttrack/trace"
)

// These tests pin the zero-allocation contract of the access paths
// (DESIGN.md §13): once a variable's shadow slot and the acting thread
// exist, the same-epoch and exclusive paths — >99% of accesses in the
// paper's workloads — must not touch the Go allocator, in either
// storage layout. testing.AllocsPerRun is exact for serial code, so any
// regression (a map rehash on the hot path, an escaped closure, a
// forgotten pool) fails loudly.

// allocDetectors builds a serial and a sharded detector with thread 0
// and variable 5 pre-materialized, so the measured loops exercise
// steady-state paths rather than first-touch growth.
func allocDetectors() map[string]*Detector {
	ds := map[string]*Detector{"serial": New(0, 0), "sharded": New(0, 0)}
	ds["sharded"].EnableSharding(4)
	for _, d := range ds {
		d.HandleEvent(0, trace.Wr(0, 5))
		d.HandleEvent(1, trace.Rd(0, 5))
		d.HandleEvent(2, trace.Acq(0, 9))
		d.HandleEvent(3, trace.Rel(0, 9))
	}
	return ds
}

func assertZeroAllocs(t *testing.T, layout, path string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, f); n != 0 {
		t.Errorf("%s %s path: %.1f allocs per event, want 0", layout, path, n)
	}
}

func TestSameEpochPathsAllocateNothing(t *testing.T) {
	for layout, d := range allocDetectors() {
		i := 100
		assertZeroAllocs(t, layout, "read same-epoch", func() {
			d.HandleEvent(i, trace.Rd(0, 5))
			i++
		})
		assertZeroAllocs(t, layout, "write same-epoch", func() {
			d.HandleEvent(i, trace.Wr(0, 5))
			i++
		})
	}
}

func TestExclusivePathsAllocateNothing(t *testing.T) {
	// A release between accesses advances the thread's epoch, so every
	// access misses the same-epoch compare and takes the exclusive rule —
	// still required to be allocation-free (epoch store plus, on the
	// release, a pooled/materialized lock-clock copy).
	for layout, d := range allocDetectors() {
		i := 100
		assertZeroAllocs(t, layout, "read-exclusive", func() {
			d.HandleEvent(i, trace.Rel(0, 9))
			d.HandleEvent(i+1, trace.Rd(0, 5))
			i += 2
		})
		assertZeroAllocs(t, layout, "write-exclusive", func() {
			d.HandleEvent(i, trace.Rel(0, 9))
			d.HandleEvent(i+1, trace.Wr(0, 5))
			i += 2
		})
	}
}

func TestSyncSteadyStateAllocatesNothing(t *testing.T) {
	// Steady-state lock traffic: acquire joins into the thread's clock,
	// release copies into the lock's pooled clock in place.
	for layout, d := range allocDetectors() {
		i := 100
		assertZeroAllocs(t, layout, "acquire/release", func() {
			d.HandleEvent(i, trace.Acq(0, 9))
			d.HandleEvent(i+1, trace.Rel(0, 9))
			i += 2
		})
	}
}

// TestReadShareRecyclesStoreSlots: the promote/demote cycle — inflate to
// a read VC, demote at the next write-shared, inflate again — must reach
// a fixed point in the store instead of growing it, and must stay sound.
func TestReadShareRecyclesStoreSlots(t *testing.T) {
	d := New(0, 0)
	x := uint64(7)
	i := 0
	ev := func(e trace.Event) {
		d.HandleEvent(i, e)
		i++
	}
	// Each cycle: thread 0 writes and publishes via lock 1; thread 1
	// reads after acquiring it; thread 0 then reads concurrently with
	// thread 1's read (it has not absorbed it yet), promoting the
	// history; lock 2 then orders both reads before the next cycle's
	// write, which demotes. Every happens-before edge a check needs
	// exists, so the trace is race-free.
	ev(trace.ForkOf(0, 1))
	cycle := func() {
		ev(trace.Wr(0, x)) // from cycle 2 on: write-shared, demote, recycle
		ev(trace.Rel(0, 1))
		ev(trace.Acq(1, 1))
		ev(trace.Rd(1, x))
		ev(trace.Rd(0, x)) // unordered with thread 1's read: promote
		ev(trace.Rel(1, 2))
		ev(trace.Acq(0, 2)) // thread 0 absorbs thread 1's read
	}
	cycle()
	if len(d.shared.regions) != 1 {
		t.Fatalf("after first promotion: %d store slots, want 1", len(d.shared.regions))
	}
	for n := 0; n < 50; n++ {
		cycle()
	}
	if len(d.shared.regions) != 1 {
		t.Fatalf("after 51 promote/demote cycles: %d store slots, want 1 (slot not recycled)", len(d.shared.regions))
	}
	if err := d.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness after recycling: %v", err)
	}
	if got := len(d.Races()); got != 0 {
		t.Fatalf("%d races on a synchronized trace", got)
	}
	if d.st.ReadShare != 51 || d.st.WriteShared != 50 {
		t.Fatalf("rule counts: ReadShare %d, WriteShared %d, want 51 and 50",
			d.st.ReadShare, d.st.WriteShared)
	}
}

// TestRecyclingSoundAcrossCompact: a compaction pass between cycles
// discards store slots; later promotions must re-allocate cleanly and
// the analysis must stay well-formed and race-equivalent.
func TestRecyclingSoundAcrossCompact(t *testing.T) {
	d := New(0, 0)
	i := 0
	ev := func(e trace.Event) {
		d.HandleEvent(i, e)
		i++
	}
	ev(trace.ForkOf(0, 1))
	ev(trace.Rd(0, 3))
	ev(trace.Rd(1, 3)) // promote x3
	ev(trace.JoinOf(0, 1))
	d.Compact([]int32{1})
	if err := d.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness after Compact: %v", err)
	}
	// The dead reader's component is reclaimed; the next promotion must
	// take a fresh (or recycled) store slot without resurrecting stale
	// clock values for the dropped thread.
	ev(trace.ForkOf(0, 2))
	ev(trace.Rd(0, 4))
	ev(trace.Rd(2, 4)) // promote x4
	if _, rvc, shared := d.ReadStateOf(4); !shared {
		t.Fatal("x4 not promoted after Compact")
	} else if rvc.Get(1) != 0 {
		t.Fatalf("recycled slot leaked dead thread's clock: R_x4(1) = %d", rvc.Get(1))
	}
	if err := d.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness after post-Compact promotion: %v", err)
	}
	if got := len(d.Races()); got != 0 {
		t.Fatalf("%d races on a synchronized trace", got)
	}
}

// TestClockSaturationSurfacesInStats: a thread pinned at the epoch
// format's MaxClock keeps the session alive (no panic — the pre-fix
// behavior) and each further increment is surfaced through the stats
// counter the downgrade machinery watches.
func TestClockSaturationSurfacesInStats(t *testing.T) {
	d := New(0, 0)
	d.HandleEvent(0, trace.Wr(0, 1))
	// White-box: pin thread 0's scalar clock just below the cap, as a
	// session with ~10^12 release operations by one thread would.
	d.threads[0].c = d.threads[0].c.Set(0, vc.MaxClock-1)
	d.threads[0].refreshEpoch(0)
	for k := 1; k <= 3; k++ {
		d.HandleEvent(k, trace.Rel(0, 9)) // inc_t each release
	}
	if got := d.Stats().ClockSaturations; got < 2 {
		t.Fatalf("ClockSaturations = %d after incrementing past the cap, want >= 2", got)
	}
	if c := d.threads[0].c.Get(0); c != vc.MaxClock {
		t.Fatalf("thread clock = %d, want saturation at %d", c, vc.MaxClock)
	}
	// The detector still works: a planted race is still caught.
	d.HandleEvent(10, trace.Wr(1, 1))
	if len(d.Races()) != 1 {
		t.Fatalf("%d races after saturation, want 1", len(d.Races()))
	}
	if err := d.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness at the clock cap: %v", err)
	}
}
