package core

import "fasttrack/internal/vc"

// This file implements an accordion-clock-style compaction pass
// (Christiaens & De Bosschere, Euro-Par 2001 — cited in the paper's
// Sections 4 and 6 as a complementary space optimization): programs with
// many short-lived threads accumulate shadow state referring to dead
// threads, and that state can be reclaimed once it is dominated by every
// live thread's clock.
//
// The key observation: a reference to dead thread u — a write epoch
// c@u, a read-vector component R_x(u) = c, or a lock component
// L_m(u) = c — only ever participates in future checks against live
// threads' clocks. If c <= C_t(u) for every live thread t (and every
// thread created later inherits its knowledge of u from live threads, so
// the bound persists), each such check is guaranteed to pass, and the
// reference can be replaced by the minimal value without changing any
// future analysis outcome. Once nothing references u, its own clock
// C_u can be dropped entirely.
//
// Compaction is sound but changes nothing about precision — the
// conformance property tests replay random traces with compaction
// injected at arbitrary points and require identical warnings.

// CompactStats reports what a compaction pass reclaimed.
type CompactStats struct {
	// DroppedThreads is the number of dead threads whose clocks were
	// fully reclaimed.
	DroppedThreads int
	// ClearedWriteEpochs and ClearedReadRefs count shadow references
	// rewritten to the minimal value.
	ClearedWriteEpochs int
	ClearedReadRefs    int
	// RetainedThreads counts dead threads still referenced above the
	// live-dominated bound (they stay until a later pass).
	RetainedThreads int
}

// Compact reclaims shadow state referring to the given dead threads.
// The caller asserts that each listed thread has terminated and been
// joined (or synchronized past a barrier) — i.e. no further events by it
// will arrive; feeding an event for a dropped thread afterwards yields
// unspecified analysis results, exactly as an infeasible trace would.
//
// The pass is O(vars + locks + threads) and intended to be run
// occasionally (e.g. after a wave of worker threads exits), not per
// event.
func (d *Detector) Compact(dead []int32) CompactStats {
	var st CompactStats
	deadSet := make(map[vc.Tid]bool, len(dead))
	for _, u := range dead {
		if int(u) < len(d.threads) {
			deadSet[vc.Tid(u)] = true
		}
	}
	if len(deadSet) == 0 {
		return st
	}

	// minLive[u] = min over live threads t of C_t(u): the clock of u
	// that every live thread has already absorbed.
	minLive := make(map[vc.Tid]vc.Clock, len(deadSet))
	for u := range deadSet {
		first := true
		var m vc.Clock
		for t := range d.threads {
			if deadSet[vc.Tid(t)] || d.threads[t].c == nil {
				continue
			}
			c := d.threads[t].c.Get(u)
			if first || c < m {
				m = c
				first = false
			}
		}
		if first {
			m = 0 // no live threads at all: nothing is dominated
		}
		minLive[u] = m
	}

	dominated := func(e vc.Epoch) bool {
		return deadSet[e.Tid()] && e.Clock() <= minLive[e.Tid()]
	}
	// retained marks dead threads still referenced somewhere.
	retained := map[vc.Tid]bool{}

	compactVar := func(wp, rp *vc.Epoch, rs *rvcStore) {
		w := *wp
		if w != vc.Bottom && deadSet[w.Tid()] {
			if dominated(w) {
				*wp = vc.Bottom
				st.ClearedWriteEpochs++
			} else {
				retained[w.Tid()] = true
			}
		}
		r := *rp
		if isShared(r) {
			idx := sharedIdx(r)
			rvc := rs.vcAt(idx)
			changed := false
			for u := range deadSet {
				if c := rvc.Get(u); c > 0 {
					if c <= minLive[u] {
						rvc[u] = 0
						st.ClearedReadRefs++
						changed = true
					} else {
						retained[u] = true
					}
				}
			}
			if changed {
				// Trim the region to its live width (the slab equivalent
				// of VC.Trim); the compactSlab at the end of the pass
				// reclaims the slack.
				n := len(rvc)
				for n > 0 && rvc[n-1] == 0 {
					n--
				}
				if n == 0 {
					// All recorded readers reclaimed: back to epoch mode;
					// the store slot's region is dropped, not pooled —
					// compaction is a reclamation seam.
					rs.discard(idx)
					*rp = vc.Bottom
				} else {
					rs.regions[idx].width = int32(n)
				}
			}
		} else if r != vc.Bottom && deadSet[r.Tid()] {
			if dominated(r) {
				*rp = vc.Bottom
				st.ClearedReadRefs++
			} else {
				retained[r.Tid()] = true
			}
		}
	}
	for x := range d.r {
		compactVar(&d.w[x], &d.r[x], &d.shared)
	}
	d.shared.compactSlab()
	for i := range d.stripes {
		s := &d.stripes[i]
		for slot := range s.tab.keys {
			if s.tab.meta[slot]&slotUsed != 0 {
				compactVar(&s.tab.w[slot], &s.tab.r[slot], &s.shared)
			}
		}
		s.shared.compactSlab()
	}

	// Lock and volatile clocks: dominated dead components are zeroed.
	compactL := func(lt *lockTab) {
		lt.eachRef(func(_ uint64, p *vc.VC) {
			l := *p
			changed := false
			for u := range deadSet {
				if c := l.Get(u); c > 0 {
					if c <= minLive[u] {
						l = l.Set(u, 0)
						changed = true
					} else {
						retained[u] = true
					}
				}
			}
			if changed {
				*p = l.Trim()
			}
		})
	}
	compactL(&d.locks)
	compactL(&d.vols)

	// Drop fully-unreferenced dead threads' own clocks. Dropped, not
	// pooled: compaction's contract is that the footprint shrinks, and
	// pooled slabs would stay pinned (and counted).
	for u := range deadSet {
		if retained[u] {
			st.RetainedThreads++
			continue
		}
		if d.threads[u].c != nil {
			d.threads[u].c = nil
			d.threads[u].epoch = vc.Bottom
			st.DroppedThreads++
		}
	}
	// Live threads' vectors can shed trailing zeros too.
	for t := range d.threads {
		if d.threads[t].c != nil {
			d.threads[t].c = d.threads[t].c.Trim()
		}
	}
	return st
}
