// Package sim generates deterministic synthetic workloads: the sixteen
// benchmark-shaped traces of the FastTrack paper's Table 1, the
// Eclipse-shaped traces of Section 5.3, and random feasible traces for
// property-testing the detectors against the happens-before oracle.
//
// The Java benchmarks themselves are not runnable here; what the
// detectors consume is their event mix, which these generators reproduce
// (see DESIGN.md, "Substitutions").
package sim

import (
	"math/rand"

	"fasttrack/trace"
)

// RandomConfig tunes the random feasible-trace generator.
type RandomConfig struct {
	Threads   int // maximum number of threads (>= 1)
	Vars      int // number of ordinary variables
	Locks     int // number of locks
	Volatiles int // number of volatile variables
	Chans     int // number of channels (capacity 0-2, fixed per channel)
	Events    int // approximate number of events to generate

	// PAcquire etc. weight the non-access operations; accesses take the
	// remaining probability mass. Zero-valued weights disable the
	// operation. Reads are 4x as likely as writes among accesses,
	// mirroring the paper's 82%/15% split.
	PAcquire float64
	PFork    float64
	PJoin    float64
	PVol     float64
	PBarrier float64
	PChan    float64
}

// DefaultRandomConfig returns a configuration that exercises every
// operation kind on small traces, suitable for property tests.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		Threads:   4,
		Vars:      6,
		Locks:     3,
		Volatiles: 2,
		Chans:     2,
		Events:    120,
		PAcquire:  0.10,
		PFork:     0.03,
		PJoin:     0.02,
		PVol:      0.04,
		PBarrier:  0.01,
		PChan:     0.05,
	}
}

// RandomTrace generates a feasible trace: it respects the constraints of
// Section 2.1 (lock discipline, fork-before-run, run-before-join, no
// empty-bodied joins). The result is deterministic in rng's stream.
func RandomTrace(rng *rand.Rand, cfg RandomConfig) trace.Trace {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Vars < 1 {
		cfg.Vars = 1
	}

	const (
		unborn = iota
		alive
		dead
	)
	state := make([]int, cfg.Threads)
	state[0] = alive
	active := make([]bool, cfg.Threads) // executed >= 1 instruction
	lockOwner := map[uint64]int32{}
	held := make([][]uint64, cfg.Threads)

	// Per-channel bookkeeping keeps channel streams feasible: the shim
	// records sends pre-operation and receives post-operation, so the
	// k-th receive event can only appear once k sends were recorded (or
	// the channel is closed — draining receives always complete); sends
	// and closes never follow a close (they would panic).
	type chanSim struct {
		capacity     int32
		sends, recvs uint64
		closed, init bool
	}
	chanStates := make([]chanSim, cfg.Chans)

	var tr trace.Trace
	aliveThreads := func() []int32 {
		var out []int32
		for t, s := range state {
			if s == alive {
				out = append(out, int32(t))
			}
		}
		return out
	}

	for len(tr) < cfg.Events {
		ts := aliveThreads()
		t := ts[rng.Intn(len(ts))]
		r := rng.Float64()
		switch {
		case r < cfg.PAcquire:
			// Acquire a free lock or release a held one, 50/50.
			if len(held[t]) > 0 && rng.Intn(2) == 0 {
				m := held[t][rng.Intn(len(held[t]))]
				tr = append(tr, trace.Rel(t, m))
				delete(lockOwner, m)
				held[t] = remove(held[t], m)
			} else if cfg.Locks > 0 {
				m := uint64(rng.Intn(cfg.Locks))
				if _, taken := lockOwner[m]; !taken {
					tr = append(tr, trace.Acq(t, m))
					lockOwner[m] = t
					held[t] = append(held[t], m)
				} else {
					continue // would deadlock or violate discipline
				}
			} else {
				continue
			}
		case r < cfg.PAcquire+cfg.PFork:
			u := int32(-1)
			for w := range state {
				if state[w] == unborn {
					u = int32(w)
					break
				}
			}
			if u < 0 {
				continue
			}
			tr = append(tr, trace.ForkOf(t, u))
			state[u] = alive
		case r < cfg.PAcquire+cfg.PFork+cfg.PJoin:
			u := int32(-1)
			for w := range state {
				if int32(w) != t && state[w] == alive && active[w] && len(held[w]) == 0 {
					u = int32(w)
					break
				}
			}
			if u < 0 {
				continue
			}
			tr = append(tr, trace.JoinOf(t, u))
			state[u] = dead
		case r < cfg.PAcquire+cfg.PFork+cfg.PJoin+cfg.PVol:
			if cfg.Volatiles == 0 {
				continue
			}
			v := uint64(rng.Intn(cfg.Volatiles))
			if rng.Intn(2) == 0 {
				tr = append(tr, trace.VWr(t, v))
			} else {
				tr = append(tr, trace.VRd(t, v))
			}
		case r < cfg.PAcquire+cfg.PFork+cfg.PJoin+cfg.PVol+cfg.PBarrier:
			ts := aliveThreads()
			if len(ts) < 2 {
				continue
			}
			tr = append(tr, trace.Barrier(0, ts...))
			for _, u := range ts {
				active[u] = true
			}
			continue // barrier has no single Tid; skip the marker below
		case r < cfg.PAcquire+cfg.PFork+cfg.PJoin+cfg.PVol+cfg.PBarrier+cfg.PChan:
			if cfg.Chans == 0 {
				continue
			}
			c := rng.Intn(cfg.Chans)
			cs := &chanStates[c]
			if !cs.init {
				cs.capacity = int32(rng.Intn(3))
				cs.init = true
			}
			id := uint64(c)
			switch rng.Intn(6) {
			case 0: // close
				if cs.closed {
					continue
				}
				tr = append(tr, trace.ChClose(t, id, cs.capacity))
				cs.closed = true
			case 1, 2: // send
				if cs.closed {
					continue
				}
				tr = append(tr, trace.ChSend(t, id, cs.capacity))
				cs.sends++
			default: // recv
				if cs.recvs >= cs.sends && !cs.closed {
					continue
				}
				tr = append(tr, trace.ChRecv(t, id, cs.capacity))
				cs.recvs++
			}
		default:
			x := uint64(rng.Intn(cfg.Vars))
			if rng.Intn(5) == 0 {
				tr = append(tr, trace.Wr(t, x))
			} else {
				tr = append(tr, trace.Rd(t, x))
			}
		}
		active[t] = true
	}
	return tr
}

func remove(s []uint64, m uint64) []uint64 {
	for i, v := range s {
		if v == m {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
