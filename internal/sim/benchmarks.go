package sim

import "fasttrack/trace"

// Benchmark is a named workload: a profile plus the seed that makes its
// trace deterministic.
type Benchmark struct {
	Profile
	Seed int64
}

// Trace generates the benchmark's trace at the given scale (1 = default
// size).
func (b Benchmark) Trace(scale float64) trace.Trace {
	return b.Profile.Generate(b.Seed, scale)
}

// Benchmarks returns workloads shaped after the sixteen programs of the
// paper's Table 1. Thread counts match the paper; the pattern volumes
// are tuned to each benchmark's published characterization (see
// DESIGN.md):
//
//   - crypt/montecarlo/series: large thread-local arrays (the programs
//     whose vector-clock detectors exhaust memory or allocate hundreds of
//     millions of VCs);
//   - lufact/moldyn/sor: barrier-phased numeric kernels;
//   - mtrt/raja/raytracer/sparse: read-shared scene/index data;
//   - tsp/elevator/philo: lock-dominated;
//   - hedc/jbb: irregular mixes with the paper's known races (three
//     one-shot races in hedc, two races in jbb, one each in mtrt,
//     raytracer, tsp);
//   - colt/lufact/series/sor/tsp/hedc/jbb: fork-join or initialization
//     idioms that draw spurious Eraser warnings.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Seed: 101, Profile: Profile{
			Name: "colt", RandomSweep: true, Threads: 11, ComputeBound: true,
			ThreadLocalVars: 220, ThreadLocalReps: 18, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 4, LockVars: 60, LockReps: 150, CSAccesses: 6, Tx: true,
			SharedVars: 300, SharedReps: 2,
			HandoffVars: 3,
		}},
		{Seed: 102, Profile: Profile{
			Name: "crypt", Threads: 7, ComputeBound: true,
			ThreadLocalVars: 8000, ThreadLocalReps: 3, ReadsPerSweep: 4, WritesPerSweep: 1,
			SharedVars: 400, SharedReps: 2,
		}},
		{Seed: 103, Profile: Profile{
			Name: "lufact", Threads: 4, ComputeBound: true,
			ThreadLocalVars: 1200, ThreadLocalReps: 2, ReadsPerSweep: 3, WritesPerSweep: 1,
			SharedVars: 2200, SharedReps: 3,
			Phases: 8,
			Locks:  2, LockVars: 30, LockReps: 90, CSAccesses: 6,
			HandoffVars: 4,
		}},
		{Seed: 104, Profile: Profile{
			Name: "moldyn", Threads: 4, ComputeBound: true,
			ThreadLocalVars: 900, ThreadLocalReps: 3, ReadsPerSweep: 3, WritesPerSweep: 1,
			SharedVars: 1500, SharedReps: 3,
			Phases: 6,
			Locks:  1, LockVars: 20, LockReps: 100, CSAccesses: 5, Tx: true,
		}},
		{Seed: 105, Profile: Profile{
			Name: "montecarlo", RandomSweep: true, Threads: 4, ComputeBound: true,
			ThreadLocalVars: 10000, ThreadLocalReps: 3, ReadsPerSweep: 4, WritesPerSweep: 1,
			Locks: 1, LockVars: 40, LockReps: 200, CSAccesses: 6, Tx: true,
			SharedVars: 500, SharedReps: 2,
		}},
		{Seed: 106, Profile: Profile{
			Name: "mtrt", RandomSweep: true, Threads: 5, ComputeBound: true,
			ThreadLocalVars: 400, ThreadLocalReps: 4, ReadsPerSweep: 3, WritesPerSweep: 1,
			SharedVars: 3000, SharedReps: 12,
			Locks: 2, LockVars: 30, LockReps: 100, CSAccesses: 5,
			RecurringRaces: 1,
		}},
		{Seed: 107, Profile: Profile{
			Name: "raja", Threads: 2, ComputeBound: true,
			ThreadLocalVars: 600, ThreadLocalReps: 5, ReadsPerSweep: 3, WritesPerSweep: 1,
			SharedVars: 1500, SharedReps: 8,
		}},
		{Seed: 108, Profile: Profile{
			Name: "raytracer", RandomSweep: true, Threads: 4, ComputeBound: true,
			ThreadLocalVars: 700, ThreadLocalReps: 4, ReadsPerSweep: 3, WritesPerSweep: 1,
			SharedVars: 2500, SharedReps: 10,
			RecurringRaces: 1, // the checksum race
		}},
		{Seed: 109, Profile: Profile{
			Name: "sparse", RandomSweep: true, Threads: 4, ComputeBound: true,
			ThreadLocalVars: 2000, ThreadLocalReps: 2, ReadsPerSweep: 4, WritesPerSweep: 1,
			SharedVars: 5000, SharedReps: 6,
		}},
		{Seed: 110, Profile: Profile{
			Name: "series", Threads: 4, ComputeBound: true,
			ThreadLocalVars: 5000, ThreadLocalReps: 6, ReadsPerSweep: 4, WritesPerSweep: 1,
			HandoffVars: 1,
		}},
		{Seed: 111, Profile: Profile{
			Name: "sor", Threads: 4, ComputeBound: true,
			ThreadLocalVars: 800, ThreadLocalReps: 2, ReadsPerSweep: 2, WritesPerSweep: 1,
			SharedVars: 1200, SharedReps: 2,
			Phases:      12,
			HandoffVars: 3,
		}},
		{Seed: 112, Profile: Profile{
			Name: "tsp", Threads: 5, ComputeBound: true,
			ThreadLocalVars: 300, ThreadLocalReps: 6, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 2, LockVars: 120, LockReps: 500, CSAccesses: 10, Tx: true,
			SharedVars: 400, SharedReps: 3,
			HandoffVars: 8, RecurringRaces: 1, // the shared-bound race
		}},
		{Seed: 113, Profile: Profile{
			Name: "elevator", Threads: 5,
			ThreadLocalVars: 60, ThreadLocalReps: 4, ReadsPerSweep: 2, WritesPerSweep: 1,
			Locks: 3, LockVars: 80, LockReps: 300, CSAccesses: 8, Tx: true,
			WaitNotify: 60,
		}},
		{Seed: 114, Profile: Profile{
			Name: "philo", Threads: 6,
			ThreadLocalVars: 20, ThreadLocalReps: 3, ReadsPerSweep: 2, WritesPerSweep: 1,
			Locks: 6, LockVars: 24, LockReps: 250, CSAccesses: 4, Tx: true,
		}},
		{Seed: 115, Profile: Profile{
			Name: "hedc", RandomSweep: true, Threads: 6,
			ThreadLocalVars: 300, ThreadLocalReps: 3, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 3, LockVars: 60, LockReps: 60, CSAccesses: 6, Tx: true,
			SharedVars: 400, SharedReps: 2,
			HandoffVars: 1, OneShotRaces: 2, EraserVisibleOneShots: 1,
		}},
		{Seed: 116, Profile: Profile{
			Name: "jbb", RandomSweep: true, Threads: 5,
			ThreadLocalVars: 900, ThreadLocalReps: 4, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 6, LockVars: 300, LockReps: 400, CSAccesses: 8, Tx: true,
			SharedVars: 800, SharedReps: 3,
			Volatiles: 4, VolatileReps: 30,
			WaitNotify:  40,
			HandoffVars: 1, RecurringRaces: 2,
		}},
	}
}

// EclipseOps returns the five Eclipse-operation workloads of Section 5.3:
// large, irregular, 24-thread traces with ~30 seeded real races across
// the suite and enough initialization/fork-join idioms to draw Eraser's
// ~960 warnings.
func EclipseOps() []Benchmark {
	return []Benchmark{
		{Seed: 201, Profile: Profile{
			Name: "eclipse-startup", RandomSweep: true, Threads: 24, ComputeBound: true,
			ThreadLocalVars: 900, ThreadLocalReps: 3, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 12, LockVars: 600, LockReps: 120, CSAccesses: 8, Tx: true,
			SharedVars: 2500, SharedReps: 3,
			Volatiles: 8, VolatileReps: 20,
			HandoffVars: 400, OneShotRaces: 2, RecurringRaces: 7,
		}},
		{Seed: 202, Profile: Profile{
			Name: "eclipse-import", RandomSweep: true, Threads: 24, ComputeBound: true,
			ThreadLocalVars: 400, ThreadLocalReps: 3, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 8, LockVars: 400, LockReps: 80, CSAccesses: 8, Tx: true,
			SharedVars: 1500, SharedReps: 3,
			HandoffVars: 150, OneShotRaces: 1, RecurringRaces: 5,
		}},
		{Seed: 203, Profile: Profile{
			Name: "eclipse-clean-small", RandomSweep: true, Threads: 24, ComputeBound: true,
			ThreadLocalVars: 400, ThreadLocalReps: 3, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 8, LockVars: 400, LockReps: 80, CSAccesses: 8, Tx: true,
			SharedVars: 1500, SharedReps: 3,
			HandoffVars: 150, RecurringRaces: 5,
		}},
		{Seed: 204, Profile: Profile{
			Name: "eclipse-clean-large", RandomSweep: true, Threads: 24, ComputeBound: true,
			ThreadLocalVars: 900, ThreadLocalReps: 4, ReadsPerSweep: 3, WritesPerSweep: 1,
			Locks: 12, LockVars: 600, LockReps: 150, CSAccesses: 8, Tx: true,
			SharedVars: 3000, SharedReps: 4,
			HandoffVars: 250, OneShotRaces: 1, RecurringRaces: 6,
		}},
		{Seed: 205, Profile: Profile{
			Name: "eclipse-debug", RandomSweep: true, Threads: 24,
			ThreadLocalVars: 80, ThreadLocalReps: 2, ReadsPerSweep: 2, WritesPerSweep: 1,
			Locks: 6, LockVars: 100, LockReps: 20, CSAccesses: 6, Tx: true,
			WaitNotify:  20,
			HandoffVars: 10, RecurringRaces: 3,
		}},
	}
}

// Waves generates the short-lived-thread workload of the accordion
// experiment (TRaDE's motivating pattern, paper Section 6): `waves`
// successive generations of `workers` threads, each of which writes and
// reads its own `vars` variables `reps` times and is then joined before
// the next wave starts. Thread ids are never reused, so the shadow state
// of a vector-clock detector grows with the total thread count unless it
// is compacted.
func Waves(waves, workers, vars, reps int) trace.Trace {
	var tr trace.Trace
	next := int32(1)
	varBase := uint64(0)
	for w := 0; w < waves; w++ {
		tids := make([]int32, workers)
		for i := range tids {
			tids[i] = next
			next++
			tr = append(tr, trace.ForkOf(0, tids[i]))
		}
		for rep := 0; rep < reps; rep++ {
			for i, tid := range tids {
				for v := 0; v < vars; v++ {
					x := varBase + uint64(i*vars+v)
					tr = append(tr, trace.Wr(tid, x), trace.Rd(tid, x))
				}
			}
		}
		for _, tid := range tids {
			tr = append(tr, trace.JoinOf(0, tid))
		}
		// Each wave works on a fresh variable region (the previous
		// wave's data remains in shadow state, referencing dead threads).
		varBase += uint64(workers * vars)
	}
	return tr
}

// ByName finds a benchmark among Benchmarks() and EclipseOps().
func ByName(name string) (Benchmark, bool) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range EclipseOps() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
