package sim

import (
	"math/rand"

	"fasttrack/trace"
)

// Profile describes a benchmark-shaped workload as volumes of the access
// patterns that dominate multithreaded Java programs (Section 3 of the
// paper): thread-local data, lock-protected data, read-shared data,
// barrier phases, volatile publication, fork-join handoffs — plus the
// seeded real races and Eraser-confusing idioms each benchmark is known
// for. Generate deterministically expands a profile into a feasible
// trace.
type Profile struct {
	Name         string
	Threads      int  // total threads, including the initial thread 0
	ComputeBound bool // false for the '*' rows excluded from averages

	// Thread-local data: each thread owns ThreadLocalVars variables and
	// sweeps them ThreadLocalReps times per phase with WritesPerSweep
	// writes and ReadsPerSweep reads per variable. No synchronization
	// intervenes, so repeats hit the same-epoch fast paths.
	ThreadLocalVars int
	ThreadLocalReps int
	ReadsPerSweep   int
	WritesPerSweep  int

	// RandomSweep makes the thread-local and read-shared sweeps visit
	// variables in a shuffled order instead of sequentially, modeling the
	// irregular access patterns of sparse-matrix, Monte-Carlo and
	// ray-tracing codes. Random order defeats the hardware prefetcher, so
	// detectors with larger shadow state (per-variable vector clocks) pay
	// the cache penalty the paper describes for "programs that perform
	// random accesses to large arrays".
	RandomSweep bool

	// Lock-protected data: LockVars variables shared under Locks locks.
	// Each thread runs LockReps critical sections per phase, touching
	// CSAccesses variables per section (one read and, for every fourth
	// access, a write). Sections are wrapped in transactions when Tx is
	// set, feeding the atomicity checkers.
	Locks      int
	LockVars   int
	LockReps   int
	CSAccesses int
	Tx         bool

	// Read-shared data: SharedVars variables initialized by thread 0
	// before forking and then read by every thread SharedReps times per
	// phase.
	SharedVars int
	SharedReps int

	// Phases > 1 inserts a barrier release between phases (sor, lufact,
	// moldyn).
	Phases int

	// Volatiles adds VolatileReps volatile write/read pairs per phase as
	// synchronization noise.
	Volatiles    int
	VolatileReps int

	// WaitNotify producer/consumer handoffs per phase (elevator, jbb).
	WaitNotify int

	// HandoffVars are written by thread 0, then by a child (fork-ordered),
	// then by thread 0 again after the join. Race-free, but classic
	// Eraser reports one spurious empty-lockset warning per variable.
	HandoffVars int

	// OneShotRaces seeds hedc-style real races: thread 0 writes the
	// variable after forking, and one child touches it exactly once while
	// holding a covering lock. Only the precise detectors catch these.
	OneShotRaces int

	// EraserVisibleOneShots are one-shot races where the child's single
	// write holds no lock, so Eraser (but not MultiRace or Goldilocks)
	// also reports them.
	EraserVisibleOneShots int

	// RecurringRaces seeds races where every thread repeatedly accesses
	// the variable with no synchronization; every detector reports them.
	RecurringRaces int
}

// KnownRaces returns the number of real races seeded in the profile.
func (p Profile) KnownRaces() int {
	return p.OneShotRaces + p.EraserVisibleOneShots + p.RecurringRaces
}

// blockList is one thread's schedule: a sequence of atomic event blocks.
// The mixer interleaves blocks of different threads but never splits a
// block, so critical sections stay contiguous and the trace feasible.
type blockList [][]trace.Event

// mix interleaves the threads' block lists into the trace, preserving
// each thread's block order and choosing the next thread uniformly at
// random among those with blocks remaining.
func mix(r *rand.Rand, emit func(trace.Event), per []blockList) {
	idx := make([]int, len(per))
	remaining := 0
	for _, bl := range per {
		remaining += len(bl)
	}
	live := make([]int, 0, len(per))
	for t, bl := range per {
		if len(bl) > 0 {
			live = append(live, t)
		}
	}
	for remaining > 0 {
		k := r.Intn(len(live))
		t := live[k]
		for _, e := range per[t][idx[t]] {
			emit(e)
		}
		idx[t]++
		remaining--
		if idx[t] == len(per[t]) {
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}

// Generate expands the profile into a trace. scale multiplies the
// repetition counts (not the variable counts), so scale=2 roughly doubles
// the event count with the same memory shape. The result is
// deterministic in seed.
func (p Profile) Generate(seed int64, scale float64) trace.Trace {
	if scale <= 0 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	var tr trace.Trace
	emit := func(e trace.Event) { tr = append(tr, e) }
	T := p.Threads
	if T < 1 {
		T = 1
	}
	sc := func(n int) int {
		if n == 0 {
			return 0
		}
		m := int(float64(n) * scale)
		if m < 1 {
			m = 1
		}
		return m
	}

	// Variable-id layout. Thread-local regions come first and are laid
	// out per thread so that coarse granularity folds a thread's own
	// fields together (they belong to the thread's own objects).
	next := uint64(0)
	alloc := func(n int) uint64 {
		base := next
		next += uint64(n)
		return base
	}
	tlBase := alloc(T * p.ThreadLocalVars)
	lockBase := alloc(p.LockVars)
	sharedBase := alloc(p.SharedVars)
	handoffBase := alloc(p.HandoffVars)
	oneShotBase := alloc(p.OneShotRaces)
	evOneShotBase := alloc(p.EraserVisibleOneShots)
	recurBase := alloc(p.RecurringRaces)
	waitBase := alloc(maxInt(p.WaitNotify, 0))

	tlVar := func(t int, j int) uint64 { return tlBase + uint64(t*p.ThreadLocalVars+j) }

	// Lock-id layout: user locks, one-shot cover locks, wait monitors.
	lockID := func(i int) uint64 { return uint64(i) }
	coverLock := func(k int) uint64 { return uint64(p.Locks + k) }
	waitLock := func(k int) uint64 { return uint64(p.Locks + p.OneShotRaces + k) }

	// --- Initialization by thread 0, before forking (ordered). ---
	for v := uint64(0); v < uint64(p.SharedVars); v++ {
		emit(trace.Wr(0, sharedBase+v))
	}
	for v := uint64(0); v < uint64(p.HandoffVars); v++ {
		emit(trace.Wr(0, handoffBase+v))
	}

	// --- Fork the workers. ---
	for u := int32(1); u < int32(T); u++ {
		emit(trace.ForkOf(0, u))
	}

	// --- Post-fork writes by thread 0: the racing halves of the seeded
	// one-shot races (concurrent with the children's accesses). ---
	for v := uint64(0); v < uint64(p.OneShotRaces); v++ {
		emit(trace.Wr(0, oneShotBase+v))
	}
	for v := uint64(0); v < uint64(p.EraserVisibleOneShots); v++ {
		emit(trace.Wr(0, evOneShotBase+v))
	}

	phases := p.Phases
	if phases < 1 {
		phases = 1
	}
	allTids := make([]int32, T)
	for t := range allTids {
		allTids[t] = int32(t)
	}

	for phase := 0; phase < phases; phase++ {
		per := make([]blockList, T)

		for t := 0; t < T; t++ {
			tid := int32(t)

			// Thread-local sweeps, chunked into blocks. Random sweeps use
			// a fresh permutation per pass, so no allocation order can
			// make the shadow state prefetch-friendly.
			for rep := 0; rep < sc(p.ThreadLocalReps); rep++ {
				var perm []int
				if p.RandomSweep && p.ThreadLocalVars > 0 {
					perm = r.Perm(p.ThreadLocalVars)
				}
				var blk []trace.Event
				for j := 0; j < p.ThreadLocalVars; j++ {
					idx := j
					if perm != nil {
						idx = perm[j]
					}
					x := tlVar(t, idx)
					for w := 0; w < maxInt(p.WritesPerSweep, 1); w++ {
						blk = append(blk, trace.Wr(tid, x))
					}
					for rd := 0; rd < maxInt(p.ReadsPerSweep, 1); rd++ {
						blk = append(blk, trace.Rd(tid, x))
					}
					if len(blk) >= 64 {
						per[t] = append(per[t], blk)
						blk = nil
					}
				}
				if len(blk) > 0 {
					per[t] = append(per[t], blk)
				}
			}

			// Lock-protected critical sections. Each lock consistently
			// protects its own stripe of the lock-protected variables —
			// the locking discipline every tool must accept.
			for rep := 0; rep < sc(p.LockReps); rep++ {
				if p.Locks == 0 || p.LockVars == 0 {
					break
				}
				li := r.Intn(p.Locks)
				stripe := p.LockVars / p.Locks
				if stripe == 0 {
					stripe = 1
					li = 0
				}
				var blk []trace.Event
				if p.Tx {
					blk = append(blk, trace.Event{Kind: trace.TxBegin, Tid: tid})
				}
				blk = append(blk, trace.Acq(tid, lockID(li)))
				for a := 0; a < maxInt(p.CSAccesses, 1); a++ {
					x := lockBase + uint64(li*stripe+r.Intn(stripe))
					blk = append(blk, trace.Rd(tid, x))
					if a%4 == 0 {
						blk = append(blk, trace.Wr(tid, x))
					}
				}
				blk = append(blk, trace.Rel(tid, lockID(li)))
				if p.Tx {
					blk = append(blk, trace.Event{Kind: trace.TxEnd, Tid: tid})
				}
				per[t] = append(per[t], blk)
			}

			// Read-shared sweeps.
			for rep := 0; rep < sc(p.SharedReps); rep++ {
				if p.SharedVars == 0 {
					break
				}
				var sharedPerm []int
				if p.RandomSweep {
					sharedPerm = r.Perm(p.SharedVars)
				}
				var blk []trace.Event
				for v := 0; v < p.SharedVars; v++ {
					idx := v
					if sharedPerm != nil {
						idx = sharedPerm[v]
					}
					blk = append(blk, trace.Rd(tid, sharedBase+uint64(idx)))
					if len(blk) >= 64 {
						per[t] = append(per[t], blk)
						blk = nil
					}
				}
				if len(blk) > 0 {
					per[t] = append(per[t], blk)
				}
			}

			// Volatile synchronization noise: thread 0 publishes, workers
			// consume.
			for rep := 0; rep < sc(p.VolatileReps); rep++ {
				if p.Volatiles == 0 {
					break
				}
				v := uint64(r.Intn(p.Volatiles))
				if t == 0 {
					per[t] = append(per[t], []trace.Event{trace.VWr(tid, v)})
				} else {
					per[t] = append(per[t], []trace.Event{trace.VRd(tid, v)})
				}
			}

			// Recurring seeded races: unsynchronized read-modify-write.
			for k := 0; k < p.RecurringRaces; k++ {
				x := recurBase + uint64(k)
				per[t] = append(per[t],
					[]trace.Event{trace.Rd(tid, x), trace.Wr(tid, x)},
					[]trace.Event{trace.Rd(tid, x), trace.Wr(tid, x)},
				)
			}
		}

		// One-shot races happen in the first phase only: one child
		// touches each variable exactly once, as its very first blocks —
		// before the child acquires any shared lock, so no release/
		// acquire chain can accidentally order the access after thread
		// 0's post-fork write and the race stays a race.
		if phase == 0 && T > 1 {
			prelude := make([]blockList, T)
			for k := 0; k < p.OneShotRaces; k++ {
				child := 1 + k%(T-1)
				x := oneShotBase + uint64(k)
				prelude[child] = append(prelude[child], []trace.Event{
					trace.Acq(int32(child), coverLock(k)),
					trace.Rd(int32(child), x),
					trace.Rel(int32(child), coverLock(k)),
				})
			}
			for k := 0; k < p.EraserVisibleOneShots; k++ {
				child := 1 + k%(T-1)
				x := evOneShotBase + uint64(k)
				prelude[child] = append(prelude[child], []trace.Event{
					trace.Wr(int32(child), x),
				})
			}
			// Handoff variables: one child writes each (fork-ordered; the
			// position in the child's schedule is immaterial).
			for k := 0; k < p.HandoffVars; k++ {
				child := 1 + k%(T-1)
				x := handoffBase + uint64(k)
				prelude[child] = append(prelude[child], []trace.Event{
					trace.Wr(int32(child), x),
				})
			}
			for t := 0; t < T; t++ {
				if len(prelude[t]) > 0 {
					per[t] = append(prelude[t], per[t]...)
				}
			}
		}

		// Wait/notify producer-consumer handoffs (emitted before the
		// mixed blocks; they impose a strict cross-thread order).
		if T > 1 {
			for k := 0; k < sc(p.WaitNotify); k++ {
				consumer := int32(1 + k%(T-1))
				m := waitLock(k % maxInt(p.WaitNotify, 1))
				x := waitBase + uint64(k%maxInt(p.WaitNotify, 1))
				emit(trace.Acq(consumer, m))
				emit(trace.Event{Kind: trace.Wait, Tid: consumer, Target: m})
				emit(trace.Acq(0, m))
				emit(trace.Wr(0, x))
				emit(trace.Event{Kind: trace.Notify, Tid: 0, Target: m})
				emit(trace.Rel(0, m))
				emit(trace.Acq(consumer, m)) // wake-up re-acquisition
				emit(trace.Rd(consumer, x))
				emit(trace.Rel(consumer, m))
			}
		}

		mix(r, emit, per)

		if phase < phases-1 {
			emit(trace.Barrier(uint64(phase), allTids...))
		}
	}

	// --- Join and post-join accesses by thread 0 (all ordered). ---
	for u := int32(1); u < int32(T); u++ {
		emit(trace.JoinOf(0, u))
	}
	for v := uint64(0); v < uint64(p.HandoffVars); v++ {
		emit(trace.Wr(0, handoffBase+v))
	}
	for v := uint64(0); v < uint64(p.SharedVars); v++ {
		emit(trace.Rd(0, sharedBase+v))
	}
	return tr
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
