package sim

import "fasttrack/trace"

// ChanEncoding selects how a channel workload's operations appear in
// the generated trace.
type ChanEncoding int

const (
	// ChanNative emits first-class chsend/chrecv/chclose events, the
	// capacity-aware happens-before of DESIGN.md §14.
	ChanNative ChanEncoding = iota
	// ChanVolatile emits the legacy encoding that predates the channel
	// kinds: each channel is a single volatile, a send is a volatile
	// write (release) and a receive a volatile read (acquire). Every
	// receive is thereby ordered after every preceding send regardless
	// of capacity — the over-ordering that suppresses buffered-slack
	// races — and no receive ever orders a later send, so the back
	// edges a full buffer creates are lost entirely.
	ChanVolatile
)

// ChanProfile describes a channel-heavy workload: Pairs independent
// producer/consumer goroutine pairs, each mixing the three channel
// idioms the detector's rules exist for. Per pair and iteration:
//
//   - Handoffs ping-pong rounds through two unbuffered channels (data
//     forward, ack back): the producer writes a shared cell, sends,
//     and waits for the ack before reusing the cell. Race-free under
//     both encodings.
//   - RingOps items through a classic bounded buffer: a data channel
//     of capacity RingCap plus a free-token channel of the same
//     capacity, RingCap shared slots reused in rotation. Slot reuse
//     is ordered by the token's round trip, which the capacity-aware
//     rules see as ring snapshots. Race-free.
//   - SlackRaces seeded buffered-slack races: the producer sends into
//     a capacity-2 channel, writes a fresh cell, sends again (the
//     buffer never fills, so neither send waits), and the consumer
//     reads the cell after receiving only the first item. Only the
//     first send happens before that receive, so the write and the
//     read race. ChanNative reports each; ChanVolatile orders the
//     write's trailing send before the receive and suppresses them
//     all — the precision gap racebench -table chan measures.
type ChanProfile struct {
	Name       string
	Pairs      int
	Handoffs   int
	RingCap    int
	RingOps    int
	SlackRaces int
}

// KnownRaces returns the number of real races seeded in the profile
// (what ChanNative reports; ChanVolatile reports none of them).
func (p ChanProfile) KnownRaces() int {
	return p.Pairs * p.SlackRaces
}

// Threads returns the total thread count including the initial thread.
func (p ChanProfile) Threads() int { return 1 + 2*p.Pairs }

// ChanMix is the default channel-heavy profile (tracegen -workload
// chan; racebench -table chan scales its repetition counts).
func ChanMix() ChanProfile {
	return ChanProfile{
		Name:       "chan",
		Pairs:      4,
		Handoffs:   300,
		RingCap:    8,
		RingOps:    600,
		SlackRaces: 3,
	}
}

// Generate expands the profile into a feasible trace. scale multiplies
// the repetition counts (Handoffs, RingOps), not the pair or race
// counts, so scale=2 roughly doubles the event count with the same
// shape. The trace is deterministic (the interleaving is the fixed
// lockstep schedule that keeps every channel operation feasible), and
// identical between encodings except for the channel events
// themselves, so a timing comparison measures only the encoding.
func (p ChanProfile) Generate(scale float64, enc ChanEncoding) trace.Trace {
	if scale <= 0 {
		scale = 1
	}
	sc := func(n int) int {
		if n == 0 {
			return 0
		}
		m := int(float64(n) * scale)
		if m < 1 {
			m = 1
		}
		return m
	}

	var tr trace.Trace
	emit := func(e trace.Event) { tr = append(tr, e) }

	// Channel ids: 4 per pair (data, ack, ring data, ring tokens, slack
	// shares the 5th). Ids live in the channel namespace for ChanNative
	// and the volatile namespace for ChanVolatile; either way they only
	// need to be distinct among themselves.
	const chansPerPair = 5
	chanID := func(pair, which int) uint64 { return uint64(pair*chansPerPair + which) }
	send := func(t int32, pair, which int, capacity int32) trace.Event {
		if enc == ChanVolatile {
			return trace.VWr(t, chanID(pair, which))
		}
		return trace.ChSend(t, chanID(pair, which), capacity)
	}
	recv := func(t int32, pair, which int, capacity int32) trace.Event {
		if enc == ChanVolatile {
			return trace.VRd(t, chanID(pair, which))
		}
		return trace.ChRecv(t, chanID(pair, which), capacity)
	}

	// Variable layout per pair: one ping-pong cell, RingCap ring slots,
	// SlackRaces slack cells.
	varsPerPair := 1 + p.RingCap + p.SlackRaces
	pingVar := func(pair int) uint64 { return uint64(pair * varsPerPair) }
	ringVar := func(pair, slot int) uint64 { return uint64(pair*varsPerPair+1) + uint64(slot) }
	slackVar := func(pair, k int) uint64 {
		return uint64(pair*varsPerPair+1+p.RingCap) + uint64(k)
	}

	const (
		chData  = iota // unbuffered: producer -> consumer
		chAck          // unbuffered: consumer -> producer
		chRing         // capacity RingCap: items
		chFree         // capacity RingCap: free-slot tokens
		chSlack        // capacity 2: the seeded-race channel
	)
	ringCap := int32(p.RingCap)

	// Thread 0 seeds each pair's free-token channel before forking (the
	// fork edge orders the tokens before both workers), then forks
	// producer 2i+1 and consumer 2i+2.
	for pair := 0; pair < p.Pairs; pair++ {
		for i := 0; i < p.RingCap; i++ {
			emit(send(0, pair, chFree, ringCap))
		}
	}
	for pair := 0; pair < p.Pairs; pair++ {
		emit(trace.ForkOf(0, int32(1+2*pair)))
		emit(trace.ForkOf(0, int32(2+2*pair)))
	}

	handoffs, ringOps := sc(p.Handoffs), sc(p.RingOps)
	for pair := 0; pair < p.Pairs; pair++ {
		prod, cons := int32(1+2*pair), int32(2+2*pair)

		// Ping-pong: the ack's rendezvous orders the consumer's read
		// before the producer's next write to the same cell.
		x := pingVar(pair)
		for i := 0; i < handoffs; i++ {
			emit(trace.Wr(prod, x))
			emit(send(prod, pair, chData, 0))
			emit(recv(cons, pair, chData, 0))
			emit(trace.Rd(cons, x))
			emit(send(cons, pair, chAck, 0))
			emit(recv(prod, pair, chAck, 0))
		}

		// Bounded buffer: the producer takes a free token, fills the
		// slot, sends; the consumer receives, drains the slot, returns
		// the token. The token's trip through chFree carries the
		// consumer's drain to the producer's next write of that slot.
		for k := 0; k < ringOps; k++ {
			slot := k % p.RingCap
			emit(recv(prod, pair, chFree, ringCap))
			emit(trace.Wr(prod, ringVar(pair, slot)))
			emit(send(prod, pair, chRing, ringCap))
			emit(recv(cons, pair, chRing, ringCap))
			emit(trace.Rd(cons, ringVar(pair, slot)))
			emit(trace.Wr(cons, ringVar(pair, slot)))
			emit(send(cons, pair, chFree, ringCap))
		}

		// Seeded buffered-slack races: both sends fit the capacity-2
		// buffer, so only send 2k+1 happens before receive 2k+1 and the
		// write between the sends races with the consumer's read.
		for k := 0; k < p.SlackRaces; k++ {
			v := slackVar(pair, k)
			emit(send(prod, pair, chSlack, 2))
			emit(trace.Wr(prod, v))
			emit(send(prod, pair, chSlack, 2))
			emit(recv(cons, pair, chSlack, 2))
			emit(trace.Rd(cons, v))
			emit(recv(cons, pair, chSlack, 2))
		}
	}

	for pair := 0; pair < p.Pairs; pair++ {
		emit(trace.JoinOf(0, int32(1+2*pair)))
		emit(trace.JoinOf(0, int32(2+2*pair)))
	}
	return tr
}
