package sim_test

import (
	"reflect"
	"testing"

	"fasttrack"
	"fasttrack/internal/sim"
)

func serialRaces(t *testing.T, p sim.ChanProfile, enc sim.ChanEncoding) int {
	t.Helper()
	tr := p.Generate(1, enc)
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s/%d: infeasible trace: %v", p.Name, enc, err)
	}
	tool, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
	if err != nil {
		t.Fatal(err)
	}
	return len(fasttrack.Replay(tr, tool, fasttrack.Fine))
}

func shardedRaces(t *testing.T, p sim.ChanProfile, enc sim.ChanEncoding) int {
	t.Helper()
	tr := p.Generate(1, enc)
	m := fasttrack.NewMonitor(fasttrack.WithShards(4))
	if _, err := m.IngestBatch(tr); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return len(m.Races())
}

// TestChanWorkloadSeededRaces is the acceptance property for the
// capacity-aware rules on the generated workload: the native encoding
// reports exactly the seeded buffered-slack races, the conservative
// volatile encoding reports a subset (here: none) on buffered
// workloads, and on the unbuffered-only workload the two agree —
// serial and sharded alike.
func TestChanWorkloadSeededRaces(t *testing.T) {
	buffered := sim.ChanMix()
	unbuffered := sim.ChanProfile{Name: "handoff-only", Pairs: 2, Handoffs: 50}

	for _, run := range []struct {
		name  string
		races func(*testing.T, sim.ChanProfile, sim.ChanEncoding) int
	}{
		{"serial", serialRaces},
		{"sharded", shardedRaces},
	} {
		t.Run(run.name, func(t *testing.T) {
			native := run.races(t, buffered, sim.ChanNative)
			conservative := run.races(t, buffered, sim.ChanVolatile)
			if want := buffered.KnownRaces(); native != want {
				t.Errorf("native races = %d, want the %d seeded", native, want)
			}
			if conservative != 0 {
				t.Errorf("volatile encoding races = %d, want 0 (over-ordering suppresses them)", conservative)
			}
			if native < conservative {
				t.Errorf("capacity-aware races (%d) not a superset of conservative (%d)", native, conservative)
			}

			un := run.races(t, unbuffered, sim.ChanNative)
			uv := run.races(t, unbuffered, sim.ChanVolatile)
			if un != 0 || uv != 0 {
				t.Errorf("unbuffered workload: native %d, volatile %d races, want 0 == 0", un, uv)
			}
		})
	}
}

// TestChanWorkloadDeterministic pins that the generator is a pure
// function of its inputs (tracegen and racebench depend on it).
func TestChanWorkloadDeterministic(t *testing.T) {
	p := sim.ChanMix()
	a := p.Generate(1, sim.ChanNative)
	b := p.Generate(1, sim.ChanNative)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate not deterministic in its inputs")
	}
	if v := p.Generate(1, sim.ChanVolatile); len(v) != len(a) {
		t.Fatalf("encodings differ in event count: native %d, volatile %d", len(a), len(v))
	}
}
