package sim

import (
	"testing"

	"fasttrack/trace"
)

// count tallies events of a kind in a trace.
func count(tr trace.Trace, k trace.Kind) int {
	n := 0
	for _, e := range tr {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func TestProfileForkJoinStructure(t *testing.T) {
	p := Profile{Name: "t", Threads: 5, ThreadLocalVars: 4, ThreadLocalReps: 1}
	tr := p.Generate(1, 1)
	if got := count(tr, trace.Fork); got != 4 {
		t.Errorf("forks = %d, want 4", got)
	}
	if got := count(tr, trace.Join); got != 4 {
		t.Errorf("joins = %d, want 4", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileBarrierPhases(t *testing.T) {
	p := Profile{Name: "t", Threads: 3, ThreadLocalVars: 2, ThreadLocalReps: 1, Phases: 4}
	tr := p.Generate(1, 1)
	if got := count(tr, trace.BarrierRelease); got != 3 { // phases-1
		t.Errorf("barriers = %d, want 3", got)
	}
	for _, e := range tr {
		if e.Kind == trace.BarrierRelease && len(e.Tids) != 3 {
			t.Errorf("barrier releases %d threads, want 3", len(e.Tids))
		}
	}
}

func TestProfileWaitNotifyEmission(t *testing.T) {
	p := Profile{Name: "t", Threads: 3, WaitNotify: 5}
	tr := p.Generate(1, 1)
	if got := count(tr, trace.Wait); got != 5 {
		t.Errorf("waits = %d, want 5", got)
	}
	if got := count(tr, trace.Notify); got != 5 {
		t.Errorf("notifies = %d, want 5", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileVolatiles(t *testing.T) {
	p := Profile{Name: "t", Threads: 3, Volatiles: 2, VolatileReps: 4}
	tr := p.Generate(1, 1)
	// Thread 0 publishes, threads 1..2 consume: 4 writes + 8 reads.
	if got := count(tr, trace.VolatileWrite); got != 4 {
		t.Errorf("volatile writes = %d, want 4", got)
	}
	if got := count(tr, trace.VolatileRead); got != 8 {
		t.Errorf("volatile reads = %d, want 8", got)
	}
}

func TestProfileTransactionsBalance(t *testing.T) {
	p := Profile{Name: "t", Threads: 2, Locks: 1, LockVars: 4, LockReps: 6, CSAccesses: 3, Tx: true}
	tr := p.Generate(1, 1)
	begins, ends := count(tr, trace.TxBegin), count(tr, trace.TxEnd)
	if begins == 0 || begins != ends {
		t.Errorf("tx markers unbalanced: %d begins, %d ends", begins, ends)
	}
	if begins != count(tr, trace.Acquire) {
		t.Errorf("each critical section should be one transaction: %d vs %d",
			begins, count(tr, trace.Acquire))
	}
}

func TestProfileScaleAffectsRepsNotVars(t *testing.T) {
	p := Profile{Name: "t", Threads: 2, ThreadLocalVars: 10, ThreadLocalReps: 2}
	small := p.Generate(1, 1)
	big := p.Generate(1, 4)
	if len(big) <= len(small) {
		t.Errorf("scale did not grow events: %d vs %d", len(big), len(small))
	}
	if sv, bv := len(small.Vars()), len(big.Vars()); sv != bv {
		t.Errorf("scale changed variable count: %d vs %d", sv, bv)
	}
}

func TestProfileDegenerate(t *testing.T) {
	// Zero-valued profile still produces a feasible (possibly tiny) trace.
	tr := Profile{Name: "empty"}.Generate(1, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Single-threaded profile: no forks.
	tr = Profile{Name: "solo", Threads: 1, ThreadLocalVars: 3, ThreadLocalReps: 2}.Generate(1, 1)
	if count(tr, trace.Fork) != 0 {
		t.Error("single-threaded profile forked")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileKnownRacesArithmetic(t *testing.T) {
	p := Profile{OneShotRaces: 2, EraserVisibleOneShots: 1, RecurringRaces: 3}
	if got := p.KnownRaces(); got != 6 {
		t.Errorf("KnownRaces = %d, want 6", got)
	}
}
