package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestRandomTraceIsFeasible(t *testing.T) {
	cfg := DefaultRandomConfig()
	for seed := int64(0); seed < 50; seed++ {
		tr := RandomTrace(rand.New(rand.NewSource(seed)), cfg)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(tr) < cfg.Events {
			t.Fatalf("seed %d: %d events, want >= %d", seed, len(tr), cfg.Events)
		}
	}
}

func TestRandomTraceDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig()
	a := RandomTrace(rand.New(rand.NewSource(7)), cfg)
	b := RandomTrace(rand.New(rand.NewSource(7)), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Error("RandomTrace not deterministic in the seed")
	}
}

func TestRandomTraceDegenerateConfig(t *testing.T) {
	tr := RandomTrace(rand.New(rand.NewSource(1)), RandomConfig{Events: 10})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Threads() != 1 {
		t.Errorf("Threads = %d, want 1", tr.Threads())
	}
}

func TestBenchmarksAreFeasible(t *testing.T) {
	for _, b := range append(Benchmarks(), EclipseOps()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			tr := b.Trace(0.2)
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s: infeasible: %v", b.Name, err)
			}
			if n := tr.Threads(); n != b.Threads {
				t.Errorf("%s: trace has %d threads, profile says %d", b.Name, n, b.Threads)
			}
			if len(tr) == 0 {
				t.Errorf("%s: empty trace", b.Name)
			}
		})
	}
}

func TestBenchmarkTracesDeterministic(t *testing.T) {
	b, ok := ByName("tsp")
	if !ok {
		t.Fatal("tsp not found")
	}
	a1 := b.Trace(0.3)
	a2 := b.Trace(0.3)
	if !reflect.DeepEqual(a1, a2) {
		t.Error("benchmark trace not deterministic")
	}
}

func TestScaleGrowsTrace(t *testing.T) {
	b, _ := ByName("raja")
	small := len(b.Trace(0.5))
	big := len(b.Trace(2))
	if big <= small {
		t.Errorf("scale 2 (%d events) not larger than scale 0.5 (%d)", big, small)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Error("ByName accepted a bogus name")
	}
	b, ok := ByName("eclipse-debug")
	if !ok || b.Threads != 24 {
		t.Errorf("eclipse-debug lookup = %+v, %v", b, ok)
	}
}

func TestBenchmarkNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range append(Benchmarks(), EclipseOps()...) {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Seed == 0 {
			t.Errorf("%s: zero seed", b.Name)
		}
	}
	if len(seen) != 21 {
		t.Errorf("expected 16 benchmarks + 5 eclipse ops, got %d", len(seen))
	}
}

func TestKnownRaceCounts(t *testing.T) {
	wantRaces := map[string]int{
		"colt": 0, "crypt": 0, "lufact": 0, "moldyn": 0, "montecarlo": 0,
		"mtrt": 1, "raja": 0, "raytracer": 1, "sparse": 0, "series": 0,
		"sor": 0, "tsp": 1, "elevator": 0, "philo": 0, "hedc": 3, "jbb": 2,
	}
	total := 0
	for _, b := range Benchmarks() {
		if got := b.KnownRaces(); got != wantRaces[b.Name] {
			t.Errorf("%s: KnownRaces = %d, want %d", b.Name, got, wantRaces[b.Name])
		}
		total += b.KnownRaces()
	}
	if total != 8 {
		t.Errorf("total seeded races = %d, want 8 (the paper's Table 1 total)", total)
	}
	eclipseTotal := 0
	for _, b := range EclipseOps() {
		eclipseTotal += b.KnownRaces()
	}
	if eclipseTotal != 30 {
		t.Errorf("eclipse seeded races = %d, want 30 (the paper's Section 5.3 count)", eclipseTotal)
	}
}

func TestWavesFeasibleAndRaceFree(t *testing.T) {
	tr := Waves(5, 4, 8, 2)
	if err := tr.Validate(); err != nil {
		t.Fatalf("waves trace infeasible: %v", err)
	}
	if got := tr.Threads(); got != 21 {
		t.Errorf("Threads = %d, want 21 (5 waves x 4 workers + main)", got)
	}
	// Wave w+1's workers reuse nothing from wave w: all variables are
	// fresh per wave, so each is accessed by exactly one thread.
	seen := map[uint64]int32{}
	for _, e := range tr {
		if !e.Kind.IsAccess() {
			continue
		}
		if owner, ok := seen[e.Target]; ok && owner != e.Tid {
			t.Fatalf("variable %d accessed by threads %d and %d", e.Target, owner, e.Tid)
		}
		seen[e.Target] = e.Tid
	}
}

func TestOperationMixShape(t *testing.T) {
	// Aggregate over all benchmarks: reads should dominate (paper: 82.3%
	// reads, 14.5% writes, 3.3% other). Allow generous tolerances — the
	// shape matters, not the digit.
	var reads, writes, other int
	for _, b := range Benchmarks() {
		c := b.Trace(0.2).Count()
		reads += c.Reads
		writes += c.Writes
		other += c.Other
	}
	total := reads + writes + other
	readFrac := float64(reads) / float64(total)
	writeFrac := float64(writes) / float64(total)
	otherFrac := float64(other) / float64(total)
	if readFrac < 0.60 || readFrac > 0.92 {
		t.Errorf("read fraction %.1f%% outside [60,92]", readFrac*100)
	}
	if writeFrac < 0.05 || writeFrac > 0.35 {
		t.Errorf("write fraction %.1f%% outside [5,35]", writeFrac*100)
	}
	if otherFrac > 0.12 {
		t.Errorf("sync fraction %.1f%% above 12%%", otherFrac*100)
	}
}
