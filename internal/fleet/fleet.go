// Package fleet is the routing brain of a racedetectd fleet: it decides
// which daemon owns a session and which daemons are currently worth
// dialing at all.
//
// One racedetectd box hard-caps concurrent sessions long before it runs
// out of cycles — per-session detector state (shadow words, vector-clock
// slabs, lock tables) is the scarce resource — so the "millions of
// users" shape is many small sessions spread over many small nodes. The
// fleet tier keeps that spreading stable and load-aware without any
// central coordinator:
//
//   - Placement is rendezvous (highest-random-weight) hashing: every
//     (node, session-key) pair gets a deterministic weight and the
//     highest-weighted node owns the key. Unlike modulo placement,
//     adding or removing one node moves only ~K/N of K keys — the keys
//     the node itself owned — so a fleet resize never reshuffles
//     sessions that were happy where they were.
//
//   - Health is tracked per node from two independent signals: the
//     control plane (polling each node's /readyz, which publishes
//     draining, session-cap, soft-limit, and shed-rung pressure) and
//     the data plane (admission refusals carrying Retry-After hints,
//     observed by the dialing client itself). Either signal alone is
//     enough to steer; together they cover the window between a node
//     getting sick and the next probe noticing.
//
//   - Routing is ranking, not filtering: Route returns every node
//     ordered best-first (healthy ones in rendezvous order, then
//     pressured, then refused/capped, then draining/down), so a caller
//     with a retry budget can walk the list and the fleet degrades to
//     "any node that will have us" instead of failing closed when all
//     nodes look bad.
//
// The package deliberately depends on nothing above the standard
// library: the client package layers its dial/reconnect machinery on
// top, and cmd/racedetectfleet layers the aggregation endpoints on top.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Node names one racedetectd daemon: the TCP ingestion address clients
// dial, and optionally the HTTP introspection address whose /readyz the
// tracker polls ("" = data-plane signals only).
type Node struct {
	Addr string
	HTTP string
}

// ParseNode parses one node spec: "addr" or "addr=httpaddr", e.g.
// "127.0.0.1:7766=127.0.0.1:7767".
func ParseNode(spec string) (Node, error) {
	spec = strings.TrimSpace(spec)
	addr, httpAddr, _ := strings.Cut(spec, "=")
	n := Node{Addr: strings.TrimSpace(addr), HTTP: strings.TrimSpace(httpAddr)}
	if n.Addr == "" {
		return Node{}, fmt.Errorf("fleet: empty node address in spec %q", spec)
	}
	return n, nil
}

// ParseNodes parses a comma-separated node list, e.g.
// "a:7766,b:7766=b:7767,c:7766". Duplicate dial addresses are an error:
// a node listed twice would get double its rendezvous weight share.
func ParseNodes(spec string) ([]Node, error) {
	parts := strings.Split(spec, ",")
	nodes := make([]Node, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		if strings.TrimSpace(p) == "" {
			continue
		}
		n, err := ParseNode(p)
		if err != nil {
			return nil, err
		}
		if seen[n.Addr] {
			return nil, fmt.Errorf("fleet: duplicate node address %q", n.Addr)
		}
		seen[n.Addr] = true
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes in spec %q", spec)
	}
	return nodes, nil
}

// Status is the tracker's current view of one node, for the aggregator
// and for debugging steering decisions.
type Status struct {
	Node
	// Probed reports whether at least one /readyz probe has completed
	// (successfully or not); before that the control-plane fields are
	// unknown and the node is routed optimistically.
	Probed bool `json:"probed"`
	// Down means the last probe could not reach the node at all.
	Down bool `json:"down,omitempty"`
	// Control-plane state from the last successful /readyz probe.
	// Ready is additionally forced false while the node is Down.
	Ready          bool   `json:"ready"`
	Draining       bool   `json:"draining,omitempty"`
	SoftLimited    bool   `json:"softLimited,omitempty"`
	Shedding       bool   `json:"shedding,omitempty"`
	ActiveSessions int    `json:"activeSessions"`
	MaxSessions    int    `json:"maxSessions"`
	ShedSessions   int    `json:"shedSessions,omitempty"`
	NodeID         string `json:"nodeId,omitempty"`
	// RefusedUntil is the data-plane backoff deadline learned from an
	// admission refusal's Retry-After hint (zero when none is active).
	RefusedUntil time.Time `json:"refusedUntil,omitempty"`
	LastProbe    time.Time `json:"lastProbe,omitempty"`
	LastErr      string    `json:"lastErr,omitempty"`
}

// Readyz mirrors the JSON body of racedetectd's /readyz endpoint (see
// internal/svc); unknown fields are ignored so tracker and daemon can
// version independently.
type Readyz struct {
	Ready          bool   `json:"ready"`
	Draining       bool   `json:"draining"`
	ActiveSessions int    `json:"activeSessions"`
	MaxSessions    int    `json:"maxSessions"`
	SoftLimited    bool   `json:"softLimited"`
	Shedding       bool   `json:"shedding"`
	ShedSessions   int    `json:"shedSessions"`
	Quarantined    int64  `json:"quarantined"`
	Node           string `json:"node"`
}

// nodeState is the tracker's mutable per-node record; all fields are
// guarded by the tracker mutex.
type nodeState struct {
	Node
	probed       bool
	down         bool
	rz           Readyz
	refusedUntil time.Time
	lastProbe    time.Time
	lastErr      string
}

// DefaultRefusalBackoff is how long a node stays deprioritized after an
// admission refusal that carried no Retry-After hint.
const DefaultRefusalBackoff = time.Second

// Tracker routes session keys across a fixed node set with live health.
// All methods are safe for concurrent use.
type Tracker struct {
	mu    sync.Mutex
	nodes []*nodeState // rendezvous order is per-key, so slice order is arbitrary

	httpc *http.Client
	now   func() time.Time // injectable clock for tests

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a tracker over the given nodes. Polling does not start
// until Start is called; until then (and for nodes without an HTTP
// address) only data-plane signals steer.
func New(nodes []Node) *Tracker {
	t := &Tracker{
		httpc: &http.Client{Timeout: 2 * time.Second},
		now:   time.Now,
		stop:  make(chan struct{}),
	}
	for _, n := range nodes {
		t.nodes = append(t.nodes, &nodeState{Node: n})
	}
	return t
}

// Start begins polling every node's /readyz at the given interval
// (clamped to at least 10ms). Stop tears the poller down; it is also
// safe to call on a tracker that never started.
func (t *Tracker) Start(interval time.Duration) {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		t.PollOnce(context.Background())
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.PollOnce(context.Background())
			}
		}
	}()
}

// Stop ends polling and waits for in-flight probes to finish.
func (t *Tracker) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.wg.Wait()
}

// PollOnce probes every node with an HTTP address once, in parallel,
// and updates the tracker's view. Nodes without an HTTP address are
// untouched.
func (t *Tracker) PollOnce(ctx context.Context) {
	t.mu.Lock()
	targets := make([]*nodeState, 0, len(t.nodes))
	for _, n := range t.nodes {
		if n.HTTP != "" {
			targets = append(targets, n)
		}
	}
	t.mu.Unlock()
	var wg sync.WaitGroup
	for _, n := range targets {
		wg.Add(1)
		go func(n *nodeState) {
			defer wg.Done()
			rz, err := t.probe(ctx, n.HTTP)
			t.mu.Lock()
			defer t.mu.Unlock()
			n.probed = true
			n.lastProbe = t.now()
			if err != nil {
				n.down = true
				n.lastErr = err.Error()
				return
			}
			n.down = false
			n.lastErr = ""
			n.rz = rz
		}(n)
	}
	wg.Wait()
}

// probe fetches one node's /readyz. A 503 is a healthy answer (the node
// is telling us it is not ready), only transport failures mark a node
// down.
func (t *Tracker) probe(ctx context.Context, httpAddr string) (Readyz, error) {
	url := httpAddr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return Readyz{}, err
	}
	resp, err := t.httpc.Do(req)
	if err != nil {
		return Readyz{}, err
	}
	defer resp.Body.Close()
	var rz Readyz
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		return Readyz{}, fmt.Errorf("fleet: decoding /readyz from %s: %w", httpAddr, err)
	}
	return rz, nil
}

// MarkRefused records a data-plane admission refusal: the node is
// deprioritized until the Retry-After hint expires (DefaultRefusalBackoff
// when the server gave none). Unknown addresses are ignored.
func (t *Tracker) MarkRefused(addr string, retryAfter time.Duration) {
	if retryAfter <= 0 {
		retryAfter = DefaultRefusalBackoff
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := t.findLocked(addr); n != nil {
		n.refusedUntil = t.now().Add(retryAfter)
	}
}

// MarkDown records a data-plane connection failure: dialing the node
// did not even reach a handshake.
func (t *Tracker) MarkDown(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Note: probed stays as-is — it tracks /readyz probes only, so a
	// dial failure on a never-probed node does not make its zero-value
	// control-plane state look authoritative.
	if n := t.findLocked(addr); n != nil {
		n.down = true
		n.lastErr = "dial failed"
	}
}

// MarkUp records a successful handshake with the node, clearing a
// data-plane down mark (the next probe refreshes the rest).
func (t *Tracker) MarkUp(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := t.findLocked(addr); n != nil {
		n.down = false
		n.lastErr = ""
	}
}

func (t *Tracker) findLocked(addr string) *nodeState {
	for _, n := range t.nodes {
		if n.Addr == addr {
			return n
		}
	}
	return nil
}

// Nodes returns the tracker's current per-node view, in the order the
// nodes were configured.
func (t *Tracker) Nodes() []Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]Status, 0, len(t.nodes))
	for _, n := range t.nodes {
		st := Status{
			Node:           n.Node,
			Probed:         n.probed,
			Down:           n.down,
			// A down node's rz is its last successful probe; don't let a
			// stale ready=true outlive reachability.
			Ready:          n.rz.Ready && !n.down,
			Draining:       n.rz.Draining,
			SoftLimited:    n.rz.SoftLimited,
			Shedding:       n.rz.Shedding,
			ActiveSessions: n.rz.ActiveSessions,
			MaxSessions:    n.rz.MaxSessions,
			ShedSessions:   n.rz.ShedSessions,
			NodeID:         n.rz.Node,
			LastProbe:      n.lastProbe,
			LastErr:        n.lastErr,
		}
		if n.refusedUntil.After(now) {
			st.RefusedUntil = n.refusedUntil
		}
		out = append(out, st)
	}
	return out
}

// Routing tiers, best first. Within a tier candidates keep rendezvous
// order, so tier demotion never reshuffles the placement of the nodes
// that stayed healthy.
const (
	tierHealthy  = iota // admitting, no pressure signals
	tierPressure        // admitting but soft-limited or shedding
	tierRefused         // recently refused, or /readyz says not ready
	tierLast            // draining or down: last resort only
)

// tierLocked classifies one node for routing at time now.
func (n *nodeState) tierLocked(now time.Time) int {
	switch {
	case n.down, n.probed && !n.down && n.rz.Draining:
		return tierLast
	case n.refusedUntil.After(now):
		return tierRefused
	case n.probed && !n.rz.Ready:
		return tierRefused
	case n.probed && (n.rz.SoftLimited || n.rz.Shedding):
		return tierPressure
	default:
		return tierHealthy
	}
}

// Route returns every node's dial address ranked for the given session
// key: the healthy rendezvous owner first, then the remaining healthy
// nodes in rendezvous order, then pressured, refused/capped, and
// finally draining/down nodes. A dialer with a retry budget walks the
// list in order; Owner is Route's first element.
func (t *Tracker) Route(key string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	type cand struct {
		addr   string
		tier   int
		weight uint64
	}
	cands := make([]cand, 0, len(t.nodes))
	for _, n := range t.nodes {
		cands = append(cands, cand{n.Addr, n.tierLocked(now), rendezvousWeight(n.Addr, key)})
	}
	// Insertion sort: node counts are small and the candidate set must
	// sort stably by (tier asc, weight desc).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.tier < a.tier || (b.tier == a.tier && b.weight > a.weight) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.addr
	}
	return out
}

// Owner returns the node that currently owns the key: the best-ranked
// routable node. ok is false only on an empty tracker.
func (t *Tracker) Owner(key string) (string, bool) {
	r := t.Route(key)
	if len(r) == 0 {
		return "", false
	}
	return r[0], true
}

// rendezvousWeight is the highest-random-weight score of placing key on
// node: a 64-bit mix of the two names. fnv64a gives per-name diffusion
// and the final avalanche (the murmur3 finalizer) decorrelates the
// combination, so one node's weights across keys and one key's weights
// across nodes both look uniform.
func rendezvousWeight(node, key string) uint64 {
	h := fnv64a(node) ^ (fnv64a(key) * 0x9e3779b97f4a7c15)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
