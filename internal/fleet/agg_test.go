package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fasttrack/internal/obs"
)

// stubDaemon mimics the slice of racedetectd's HTTP surface the
// aggregator consumes.
type stubDaemon struct {
	node     string
	sessions []map[string]any
	reg      *obs.Registry
}

func (d *stubDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch r.URL.Path {
	case "/readyz":
		json.NewEncoder(w).Encode(Readyz{Ready: true, MaxSessions: 8, Node: d.node})
	case "/sessions":
		json.NewEncoder(w).Encode(d.sessions)
	case "/metrics":
		d.reg.WriteJSON(w)
	default:
		http.NotFound(w, r)
	}
}

func TestAggregator(t *testing.T) {
	daemons := make([]*stubDaemon, 3)
	nodes := make([]Node, 3)
	for i := range daemons {
		reg := obs.NewRegistry()
		reg.Counter("svc.eventsTotal").Add(int64(100 * (i + 1)))
		reg.Gauge("svc.sessionsActive").Set(int64(i))
		// n0's daemon stamps its node id in SessionInfo (new daemon);
		// n1/n2's entries are unstamped (old daemon) — the aggregator
		// must attribute both.
		sess := map[string]any{"id": fmt.Sprintf("s%06d", i+1), "state": "streaming"}
		if i == 0 {
			sess["node"] = "n0"
		}
		daemons[i] = &stubDaemon{
			node:     fmt.Sprintf("n%d", i),
			sessions: []map[string]any{sess},
			reg:      reg,
		}
		srv := httptest.NewServer(daemons[i])
		defer srv.Close()
		nodes[i] = Node{
			Addr: fmt.Sprintf("dial-%d:7766", i),
			HTTP: strings.TrimPrefix(srv.URL, "http://"),
		}
	}
	agg, err := NewAggregator(nodes, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	hs := httptest.NewServer(agg.Handler())
	defer hs.Close()

	get := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}

	// Wait for the first probe round to land.
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, st := range agg.Tracker().Nodes() {
			if !st.Probed || st.NodeID == "" {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probes never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var nv struct {
		Nodes []Status `json:"nodes"`
	}
	get("/fleet/nodes", &nv)
	if len(nv.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3", len(nv.Nodes))
	}
	for _, st := range nv.Nodes {
		if !st.Ready || st.MaxSessions != 8 {
			t.Errorf("node view lost probe state: %+v", st)
		}
	}

	var sv struct {
		Sessions []map[string]any `json:"sessions"`
		Errors   []any            `json:"errors"`
	}
	get("/fleet/sessions", &sv)
	if len(sv.Sessions) != 3 {
		t.Fatalf("got %d sessions, want 3: %+v", len(sv.Sessions), sv)
	}
	if len(sv.Errors) != 0 {
		t.Fatalf("unexpected errors: %+v", sv.Errors)
	}
	seen := map[string]string{}
	for _, sess := range sv.Sessions {
		seen[sess["id"].(string)] = sess["node"].(string)
	}
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%06d", i+1)
		if seen[id] != fmt.Sprintf("n%d", i) {
			t.Errorf("session %s attributed to %q, want n%d", id, seen[id], i)
		}
	}

	var mv struct {
		Fleet  obs.Snapshot            `json:"fleet"`
		Nodes  map[string]obs.Snapshot `json:"nodes"`
		Errors map[string]string       `json:"errors"`
	}
	get("/fleet/metrics", &mv)
	if got := mv.Fleet.Counter("svc.eventsTotal"); got != 600 {
		t.Errorf("merged eventsTotal = %d, want 600", got)
	}
	if got := mv.Fleet.Gauge("svc.sessionsActive"); got != 3 {
		t.Errorf("merged sessionsActive = %d, want 3", got)
	}
	if len(mv.Nodes) != 3 {
		t.Fatalf("per-node snapshots = %d, want 3", len(mv.Nodes))
	}
	if got := mv.Nodes["n1"].Counter("svc.eventsTotal"); got != 200 {
		t.Errorf("n1 eventsTotal = %d, want 200", got)
	}
}

// A node that cannot be reached lands in errors, not silently absent.
func TestAggregatorNodeFailure(t *testing.T) {
	live := &stubDaemon{node: "alive", sessions: []map[string]any{{"id": "s1", "node": "alive"}}, reg: obs.NewRegistry()}
	liveSrv := httptest.NewServer(live)
	defer liveSrv.Close()
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(deadSrv.URL, "http://")
	deadSrv.Close()

	agg, err := NewAggregator([]Node{
		{Addr: "a:1", HTTP: strings.TrimPrefix(liveSrv.URL, "http://")},
		{Addr: "b:1", HTTP: deadAddr},
	}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	hs := httptest.NewServer(agg.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/fleet/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sv struct {
		Sessions []map[string]any `json:"sessions"`
		Errors   []struct {
			Node string `json:"node"`
			Err  string `json:"err"`
		} `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if len(sv.Sessions) != 1 || sv.Sessions[0]["id"] != "s1" {
		t.Fatalf("live node's sessions lost: %+v", sv)
	}
	if len(sv.Errors) != 1 {
		t.Fatalf("dead node not reported in errors: %+v", sv)
	}

	// NewAggregator refuses nodes without an HTTP address.
	if _, err := NewAggregator([]Node{{Addr: "a:1"}}, 0); err == nil {
		t.Fatal("aggregator accepted a node without an HTTP address")
	}
}
